(* Flight recorder tests: ring semantics, zero-overhead appends,
   request-context attribution, and dump formats. *)

module F = Telemetry.Flight

let reset () =
  Telemetry.reset ();
  Telemetry.set_enabled false;
  F.set_auto_dump None;
  F.clear_context ()

(* -- ring ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  reset ();
  for i = 0 to 4999 do
    F.record ~value:(float_of_int i) F.Note "tick"
  done;
  Alcotest.(check int) "total" 5000 (F.total_recorded ());
  Alcotest.(check int) "retained" F.capacity (F.size ());
  let evs = F.events () in
  Alcotest.(check int) "events list" F.capacity (List.length evs);
  let first = List.hd evs and last = List.nth evs (F.capacity - 1) in
  Alcotest.(check int) "oldest seq" (5000 - F.capacity) first.F.seq;
  Alcotest.(check int) "newest seq" 4999 last.F.seq;
  (* slots really wrapped: the retained values match their seqs *)
  Alcotest.(check (float 0.0)) "oldest value" (float_of_int first.F.seq) first.F.value;
  Alcotest.(check (float 0.0)) "newest value" 4999.0 last.F.value;
  F.clear ();
  Alcotest.(check int) "cleared" 0 (F.size ())

(* -- no overhead beyond the ring slot -------------------------------------- *)

let test_append_adds_no_spans_or_counters () =
  reset ();
  Telemetry.set_enabled true;
  let c = Telemetry.Counter.make "flight.test.count" in
  let spans_before = List.length (Telemetry.spans ()) in
  let ring_before = F.total_recorded () in
  for _ = 1 to 100 do
    F.record F.Note "raw append"
  done;
  Alcotest.(check int) "ring grew" (ring_before + 100) (F.total_recorded ());
  Alcotest.(check int) "no spans created" spans_before
    (List.length (Telemetry.spans ()));
  Alcotest.(check int) "no counters bumped" 0 (Telemetry.Counter.value c);
  (* and the converse: metric writes land in the ring exactly once *)
  let ring_before = F.total_recorded () in
  Telemetry.Counter.incr c ~by:3;
  Telemetry.Gauge.set "flight.test.gauge" 1.5;
  Alcotest.(check int) "one ring event per write" (ring_before + 2)
    (F.total_recorded ());
  Alcotest.(check int) "counter value unaffected" 3 (Telemetry.Counter.value c)

let test_metrics_recorded_while_spans_disabled () =
  reset ();
  Telemetry.set_enabled false;
  let before = F.total_recorded () in
  let s = Telemetry.Span.enter "off.span" in
  Telemetry.Span.exit s;
  Alcotest.(check int) "disabled spans stay out of the ring" before
    (F.total_recorded ());
  Telemetry.Counter.incr (Telemetry.Counter.make "flight.test.off");
  Alcotest.(check int) "counters still flow" (before + 1) (F.total_recorded ());
  Alcotest.(check int) "no completed spans" 0 (List.length (Telemetry.spans ()))

(* -- context --------------------------------------------------------------- *)

let test_context_attribution () =
  reset ();
  F.record F.Note "outside";
  F.set_context ~client:3 ~request:9;
  F.record F.Note "inside";
  F.clear_context ();
  F.record F.Note "after";
  match F.events () with
  | [ a; b; c ] ->
      Alcotest.(check (pair int int)) "outside" (-1, -1) (a.F.client, a.F.request);
      Alcotest.(check (pair int int)) "inside" (3, 9) (b.F.client, b.F.request);
      Alcotest.(check (pair int int)) "after" (-1, -1) (c.F.client, c.F.request)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_request_nesting_and_ids () =
  reset ();
  Telemetry.Request.set_client 7;
  Alcotest.(check int) "no request yet" (-1) (Telemetry.Request.current_request ());
  let outer = ref (-1) and inner = ref (-1) and inner_client = ref (-1) in
  Telemetry.Request.with_request "outer" (fun () ->
      outer := Telemetry.Request.current_request ();
      Alcotest.(check int) "ambient client inherited" 7
        (Telemetry.Request.current_client ());
      Telemetry.Request.with_request "inner" (fun () ->
          inner := Telemetry.Request.current_request ();
          inner_client := Telemetry.Request.current_client ());
      Alcotest.(check int) "outer restored" !outer
        (Telemetry.Request.current_request ()));
  Alcotest.(check bool) "ids monotonic" true (!inner > !outer);
  Alcotest.(check int) "nested inherits client" 7 !inner_client;
  Alcotest.(check int) "context cleared" (-1)
    (Telemetry.Request.current_request ());
  Alcotest.(check int) "last id" !inner (Telemetry.Request.last_id ());
  (* begin/end events landed in the ring with their own attribution *)
  let begins =
    List.filter (fun e -> e.F.kind = F.Request_begin) (F.events ())
  in
  Alcotest.(check int) "two begins" 2 (List.length begins);
  List.iter
    (fun e -> Alcotest.(check int) "begin carries client" 7 e.F.client)
    begins

(* -- dumps ----------------------------------------------------------------- *)

let test_dump_files_parse () =
  reset ();
  F.set_context ~client:1 ~request:4;
  F.record ~detail:"placed" F.Transition "/lib/libc";
  F.record_violation ~name:"overlap" ~detail:"0x1000..0x2000";
  F.clear_context ();
  let prefix = Filename.concat (Filename.get_temp_dir_name ()) "flight_test" in
  F.dump ~reason:"unit test" ~prefix;
  let read p =
    let ic = open_in p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let json = read (prefix ^ ".json") in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' json)
  in
  Alcotest.(check int) "header + 2 events" 3 (List.length lines);
  List.iter
    (fun l -> ignore (Telemetry.Json.parse l))
    lines;
  (match Telemetry.Json.parse (List.hd lines) with
  | j -> (
      match Telemetry.Json.member "reason" j with
      | Some (Telemetry.Json.Str r) ->
          Alcotest.(check string) "reason" "unit test" r
      | _ -> Alcotest.fail "header has no reason"));
  (match Telemetry.Json.parse (List.nth lines 2) with
  | j -> (
      match
        (Telemetry.Json.member "kind" j, Telemetry.Json.member "client" j)
      with
      | Some (Telemetry.Json.Str k), Some (Telemetry.Json.Num c) ->
          Alcotest.(check string) "violation kind" "violation" k;
          Alcotest.(check (float 0.0)) "violation client" 1.0 c
      | _ -> Alcotest.fail "event fields missing"));
  let txt = read (prefix ^ ".txt") in
  Alcotest.(check bool) "transcript header" true
    (String.length txt > 0 && String.get txt 0 = '#');
  Alcotest.(check bool) "transcript names the request" true
    (Astring.String.is_infix ~affix:"client=1 request=4" txt);
  Sys.remove (prefix ^ ".json");
  Sys.remove (prefix ^ ".txt")

let test_trip_auto_dump () =
  reset ();
  Alcotest.(check bool) "no auto prefix -> no dump" false
    (F.trip ~reason:"x" ());
  let prefix = Filename.concat (Filename.get_temp_dir_name ()) "flight_trip" in
  F.set_auto_dump (Some prefix);
  Alcotest.(check bool) "empty ring -> no dump" false (F.trip ~reason:"x" ());
  F.record F.Note "something";
  Alcotest.(check bool) "armed + non-empty -> dump" true (F.trip ~reason:"y" ());
  Alcotest.(check bool) "json written" true (Sys.file_exists (prefix ^ ".json"));
  Alcotest.(check bool) "txt written" true (Sys.file_exists (prefix ^ ".txt"));
  Sys.remove (prefix ^ ".json");
  Sys.remove (prefix ^ ".txt");
  F.set_auto_dump None

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "no span/counter overhead" `Quick
            test_append_adds_no_spans_or_counters;
          Alcotest.test_case "metrics while spans disabled" `Quick
            test_metrics_recorded_while_spans_disabled;
        ] );
      ( "context",
        [
          Alcotest.test_case "attribution" `Quick test_context_attribution;
          Alcotest.test_case "request nesting" `Quick
            test_request_nesting_and_ids;
        ] );
      ( "dump",
        [
          Alcotest.test_case "files parse" `Quick test_dump_files_parse;
          Alcotest.test_case "trip" `Quick test_trip_auto_dump;
        ] );
    ]
