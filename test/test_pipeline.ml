(* The staged async request pipeline: submit/await semantics, batched
   placement, admission control, and scheduler determinism. *)

let fresh_world () =
  let w = Omos.World.create () in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  w.Omos.World.server

(* -- submit / await / poll ------------------------------------------------- *)

let test_submit_await () =
  let s = fresh_world () in
  let t1 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
  let t2 = Omos.Server.submit s (Omos.Server.library "/lib/libl") in
  Alcotest.(check int) "two in flight" 2 (Omos.Server.in_flight s);
  Alcotest.(check bool) "poll pending" true (Omos.Server.poll s t1 = None);
  let r1 = Omos.Server.await s t1 in
  let r2 = Omos.Server.await s t2 in
  Alcotest.(check int) "none in flight" 0 (Omos.Server.in_flight s);
  Alcotest.(check bool) "miss 1" false r1.Omos.Server.cache_hit;
  Alcotest.(check bool) "miss 2" false r2.Omos.Server.cache_hit;
  Alcotest.(check bool) "work charged" true (r1.Omos.Server.sim_us > 0.0);
  List.iter
    (fun (r : Omos.Server.response) ->
      Alcotest.(check bool) "queue wait within total" true
        (r.Omos.Server.queue_us >= 0.0
        && r.Omos.Server.queue_us <= r.Omos.Server.sim_us))
    [ r1; r2 ];
  (* a consumed ticket is gone *)
  match Omos.Server.poll s t1 with
  | exception Omos.Server.Server_error _ -> ()
  | _ -> Alcotest.fail "consumed ticket should be unknown"

let test_sync_wrapper_unchanged () =
  let s = fresh_world () in
  let r = Omos.Server.instantiate s (Omos.Server.library "/lib/libm") in
  Alcotest.(check bool) "serial miss" false r.Omos.Server.cache_hit;
  Alcotest.(check (float 0.0)) "serial has no queue wait" 0.0 r.Omos.Server.queue_us;
  let r2 = Omos.Server.instantiate s (Omos.Server.library "/lib/libm") in
  Alcotest.(check bool) "serial hit" true r2.Omos.Server.cache_hit

(* -- coalescing ------------------------------------------------------------ *)

let test_coalescing () =
  let s = fresh_world () in
  let links0 = (Omos.Server.stats s).Omos.Server.links in
  let t1 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
  let t2 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
  let t3 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
  Omos.Server.drain s;
  let r1 = Omos.Server.await s t1 in
  let r2 = Omos.Server.await s t2 in
  let r3 = Omos.Server.await s t3 in
  Alcotest.(check bool) "first builds" false r1.Omos.Server.cache_hit;
  Alcotest.(check bool) "second coalesces to a hit" true r2.Omos.Server.cache_hit;
  Alcotest.(check bool) "third coalesces to a hit" true r3.Omos.Server.cache_hit;
  Alcotest.(check int) "one link for three requests" (links0 + 1)
    (Omos.Server.stats s).Omos.Server.links;
  Alcotest.(check int) "coalesced counter" 2
    (Telemetry.Counter.get "pipeline.coalesced")

(* -- batched placement ----------------------------------------------------- *)

(* On a contiguous free region, one batched pass must reproduce exactly
   the decisions N serial first-fit solves would make. *)
let test_batch_equals_serial () =
  let open Constraints.Placement in
  let mk () = create ~region_lo:0x1000 ~region_hi:0x100000 ~align:0x1000 () in
  let sizes = [ 0x1800; 0x400; 0x3000; 0x1000; 0x2200 ] in
  let items =
    List.mapi
      (fun i size ->
        {
          bi_size = size;
          bi_owner = Printf.sprintf "lib%d" i;
          bi_existing = None;
          bi_prefs = [];
        })
      sizes
  in
  let serial_arena = mk () in
  let serial =
    List.map
      (fun (i : batch_item) ->
        place serial_arena ~size:i.bi_size ~owner:i.bi_owner ())
      items
  in
  let batch_arena = mk () in
  let batch = place_batch batch_arena items in
  List.iteri
    (fun i ((a : decision), (b : decision)) ->
      Alcotest.(check int)
        (Printf.sprintf "base %d" i)
        a.base b.base)
    (List.combine serial batch);
  Alcotest.(check bool) "arenas end identical" true
    (intervals serial_arena = intervals batch_arena)

(* Items with preferences or reuse candidates fall out of the packed
   run but still solve to the serial answers, in order. *)
let test_batch_mixed_prefs () =
  let open Constraints.Placement in
  let mk () = create ~region_lo:0x1000 ~region_hi:0x100000 ~align:0x1000 () in
  let items =
    [
      { bi_size = 0x1000; bi_owner = "a"; bi_existing = None; bi_prefs = [] };
      {
        bi_size = 0x2000;
        bi_owner = "b";
        bi_existing = None;
        bi_prefs = [ (1, At 0x40000) ];
      };
      { bi_size = 0x1000; bi_owner = "c"; bi_existing = None; bi_prefs = [] };
      { bi_size = 0x1000; bi_owner = "d"; bi_existing = None; bi_prefs = [] };
    ]
  in
  let serial_arena = mk () in
  let serial =
    List.map
      (fun (i : batch_item) ->
        place serial_arena ~size:i.bi_size ~owner:i.bi_owner
          ~prefs:i.bi_prefs ())
      items
  in
  let batch_arena = mk () in
  let batch = place_batch batch_arena items in
  List.iteri
    (fun i ((a : decision), (b : decision)) ->
      Alcotest.(check int) (Printf.sprintf "base %d" i) a.base b.base;
      Alcotest.(check bool)
        (Printf.sprintf "satisfied %d" i)
        true
        (a.satisfied = b.satisfied))
    (List.combine serial batch)

(* Concurrent misses must meet at the place barrier: one constraint
   pass solves >= 2 queued requests, visible in place.batch_size. *)
let test_batch_size_histogram () =
  let s = fresh_world () in
  let t1 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
  let t2 = Omos.Server.submit s (Omos.Server.library "/lib/libl") in
  Omos.Server.drain s;
  ignore (Omos.Server.await s t1);
  ignore (Omos.Server.await s t2);
  let h = Telemetry.Histogram.make "place.batch_size" in
  Alcotest.(check bool) "a batched pass happened" true
    (Telemetry.Histogram.count h >= 1);
  Alcotest.(check bool) "batch covered both requests" true
    (Telemetry.Histogram.max_value h >= 2.0);
  Alcotest.(check bool) "one solver pass counted" true
    (Telemetry.Counter.get "constraints.batch_solves" >= 1)

let test_unbatched_knob () =
  let s = fresh_world () in
  Omos.Server.set_batch_placement s false;
  let t1 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
  let t2 = Omos.Server.submit s (Omos.Server.library "/lib/libl") in
  Omos.Server.drain s;
  ignore (Omos.Server.await s t1);
  ignore (Omos.Server.await s t2);
  let h = Telemetry.Histogram.make "place.batch_size" in
  Alcotest.(check (float 0.0)) "every pass solved one request" 1.0
    (Telemetry.Histogram.max_value h);
  Alcotest.(check int) "no batched pass" 0
    (Telemetry.Counter.get "constraints.batch_solves")

(* -- admission control ----------------------------------------------------- *)

let test_overload () =
  let s = fresh_world () in
  Omos.Server.set_queue_limit s 2;
  let t1 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
  let t2 = Omos.Server.submit s (Omos.Server.library "/lib/libl") in
  (match Omos.Server.submit s (Omos.Server.library "/demo/hello") with
  | exception Omos.Server.Overload _ -> ()
  | _ -> Alcotest.fail "third submit should overload");
  Alcotest.(check int) "rejection counted" 1
    (Telemetry.Counter.get "server.overloads");
  (* rejected request left no residue; the queue drains and recovers *)
  ignore (Omos.Server.await s t1);
  ignore (Omos.Server.await s t2);
  let t3 = Omos.Server.submit s (Omos.Server.library "/demo/hello") in
  let r3 = Omos.Server.await s t3 in
  Alcotest.(check bool) "recovered" false r3.Omos.Server.cache_hit

(* -- determinism ----------------------------------------------------------- *)

let conc_spec concurrency =
  {
    Omos.Workload.default with
    Omos.Workload.requests = 24;
    seed = 11;
    concurrency;
    mix = [ ("instantiate", 1) ];
  }

let test_concurrent_determinism () =
  let a = Omos.Workload.run (conc_spec 8) in
  let b = Omos.Workload.run (conc_spec 8) in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Omos.Workload.event) (y : Omos.Workload.event) ->
      Alcotest.(check bool) "events byte-identical" true (x = y))
    a b

let test_concurrent_matches_serial () =
  let conc = Omos.Workload.run (conc_spec 8) in
  let serial = Omos.Workload.run (conc_spec 1) in
  (* same requests, same clients, same cache outcomes — only the
     timings differ (queue wait, batch amortization) *)
  List.iter2
    (fun (x : Omos.Workload.event) (y : Omos.Workload.event) ->
      Alcotest.(check int) "req" y.Omos.Workload.w_req x.Omos.Workload.w_req;
      Alcotest.(check int) "client" y.Omos.Workload.w_client x.Omos.Workload.w_client;
      Alcotest.(check string) "op" y.Omos.Workload.w_op x.Omos.Workload.w_op;
      Alcotest.(check string) "target" y.Omos.Workload.w_target x.Omos.Workload.w_target;
      Alcotest.(check bool) "hit" true (x.Omos.Workload.w_hit = y.Omos.Workload.w_hit))
    conc serial

let test_seeded_interleaving_reproducible () =
  let run () =
    let s = fresh_world () in
    Omos.Server.set_sched_seed s 42;
    let ts =
      List.map
        (fun m -> Omos.Server.submit s (Omos.Server.library m))
        [ "/lib/libm"; "/lib/libl"; "/demo/hello" ]
    in
    List.map
      (fun t ->
        let r = Omos.Server.await s t in
        (r.Omos.Server.cache_hit, r.Omos.Server.sim_us, r.Omos.Server.queue_us))
      ts
  in
  Alcotest.(check bool) "seed 42 twice: identical" true (run () = run ())

let () =
  Alcotest.run "pipeline"
    [
      ( "api",
        [
          Alcotest.test_case "submit/await/poll" `Quick test_submit_await;
          Alcotest.test_case "sync wrapper" `Quick test_sync_wrapper_unchanged;
          Alcotest.test_case "coalescing" `Quick test_coalescing;
        ] );
      ( "batch",
        [
          Alcotest.test_case "batch = serial solves" `Quick test_batch_equals_serial;
          Alcotest.test_case "mixed prefs" `Quick test_batch_mixed_prefs;
          Alcotest.test_case "batch_size histogram" `Quick test_batch_size_histogram;
          Alcotest.test_case "unbatched knob" `Quick test_unbatched_knob;
        ] );
      ( "backpressure",
        [ Alcotest.test_case "overload + recovery" `Quick test_overload ] );
      ( "determinism",
        [
          Alcotest.test_case "concurrency=8 reproducible" `Quick
            test_concurrent_determinism;
          Alcotest.test_case "concurrent = serial results" `Quick
            test_concurrent_matches_serial;
          Alcotest.test_case "seeded interleaving" `Quick
            test_seeded_interleaving_reproducible;
        ] );
    ]
