(* Tests of the #!/bin/omos interpreter path (§5) and the i386 Mach
   personality (§8.2's "33% faster" note). *)

let test_publish_and_exec () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let k = w.Omos.World.kernel in
  let reg = Omos.Boot.install_interpreter s in
  (* build ls self-contained and export it as /bin/ls *)
  let libc = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  let client =
    Omos.Server.build s @@ Omos.Server.static ~name:"ls"
      ~externals:[ libc.Omos.Server.entry.Omos.Cache.image ]
      (Omos.Schemes.graph_of_objs (Omos.World.ls_client w))
  in
  Omos.Boot.publish reg ~path:"/bin/ls" ~name:"/bin/ls-meta" (fun () ->
      Omos.Server.loadable_entry [ libc; client ]);
  (* the script is an ordinary file ... *)
  Alcotest.(check bool) "script on disk" true
    (Astring.String.is_prefix ~affix:"#! /bin/omos"
       (Bytes.to_string (Simos.Fs.read_file k.Simos.Kernel.fs "/bin/ls")));
  (* ... and plain exec reaches OMOS through it *)
  let p = Simos.Kernel.exec k ~path:"/bin/ls" ~args:Omos.World.ls_single_args in
  let code = Simos.Kernel.run k p () in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check string) "listing" "README\n" (Simos.Proc.stdout_contents p)

let test_unknown_program () =
  let w = Omos.World.create () in
  let reg = Omos.Boot.install_interpreter w.Omos.World.server in
  ignore reg;
  Simos.Fs.write_file w.Omos.World.kernel.Simos.Kernel.fs "/bin/ghost"
    (Bytes.of_string "#! /bin/omos /no/such/meta\n");
  try
    ignore (Simos.Kernel.exec w.Omos.World.kernel ~path:"/bin/ghost" ~args:[]);
    Alcotest.fail "expected Exec_error"
  with Simos.Kernel.Exec_error msg ->
    Alcotest.(check bool) "names the program" true
      (Astring.String.is_infix ~affix:"/no/such/meta" msg)

let test_unknown_interpreter () =
  let k = Simos.Kernel.create () in
  Simos.Fs.write_file k.Simos.Kernel.fs "/bin/odd"
    (Bytes.of_string "#! /bin/missing\n");
  try
    ignore (Simos.Kernel.exec k ~path:"/bin/odd" ~args:[]);
    Alcotest.fail "expected Exec_error"
  with Simos.Kernel.Exec_error _ -> ()

let test_script_exec_charges_less_than_build () =
  (* second exec through the script is a pure cache hit *)
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let k = w.Omos.World.kernel in
  let reg = Omos.Boot.install_interpreter s in
  let libc = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  let client =
    Omos.Server.build s @@ Omos.Server.static ~name:"ls"
      ~externals:[ libc.Omos.Server.entry.Omos.Cache.image ]
      (Omos.Schemes.graph_of_objs (Omos.World.ls_client w))
  in
  Omos.Boot.publish reg ~path:"/bin/ls" ~name:"ls" (fun () ->
      Omos.Server.loadable_entry [ libc; client ]);
  let run () =
    let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
    let p = Simos.Kernel.exec k ~path:"/bin/ls" ~args:Omos.World.ls_single_args in
    ignore (Simos.Kernel.run k p ());
    Simos.Kernel.reap k p;
    let _, _, e = Simos.Clock.since k.Simos.Kernel.clock snap in
    e
  in
  let first = run () in
  let second = run () in
  Alcotest.(check bool) "steady state cheaper" true (second <= first)

(* -- the i386 Mach data point ----------------------------------------------- *)

let test_mach_386_integrated_ratio () =
  (* §8.2: "On tests made on the 386 version of Mach, OMOS integrated
     exec performed 33% faster than the native version" — ratio ~0.67,
     smaller than PA-RISC's 0.44. *)
  let kernel = Simos.Kernel.create ~cost:Simos.Cost.mach_386 () in
  Workloads.Dataset.install kernel.Simos.Kernel.fs;
  let server = Omos.Server.create ~kernel () in
  List.iter
    (fun (path, o) -> Omos.Server.add_fragment server path o)
    (Workloads.Libc_gen.objects ());
  Omos.Server.add_fragment server "/lib/crt0.o" (Workloads.Crt0.obj ());
  Omos.Server.add_fragment server "/obj/ls.o" (Workloads.Ls_gen.obj ());
  Omos.Server.register_meta_source server "/lib/libc" Omos.World.libc_meta_source;
  let upcalls = Omos.Upcalls.install kernel in
  let rt = Omos.Schemes.runtime ~upcalls server in
  let client = [ Workloads.Crt0.obj (); Workloads.Ls_gen.obj () ] in
  let base = Omos.Schemes.dynamic_program rt ~name:"ls" ~client ~libs:[ "/lib/libc" ] in
  let integ =
    Omos.Schemes.self_contained_program rt ~style:Omos.Schemes.Integrated ~name:"ls"
      ~client ~libs:[ "/lib/libc" ] ()
  in
  let time prog =
    ignore (Omos.Schemes.invoke rt prog ~args:Omos.World.ls_single_args);
    let snap = Simos.Clock.snapshot kernel.Simos.Kernel.clock in
    for _ = 1 to 10 do
      ignore (Omos.Schemes.invoke rt prog ~args:Omos.World.ls_single_args)
    done;
    let _, _, e = Simos.Clock.since kernel.Simos.Kernel.clock snap in
    e
  in
  let tb = time base and ti = time integ in
  let ratio = ti /. tb in
  Alcotest.(check bool)
    (Printf.sprintf "386 ratio %.2f in [0.55, 0.80] (paper ~0.67)" ratio)
    true
    (ratio >= 0.55 && ratio <= 0.80);
  (* and weaker than the PA-RISC Mach win, as the paper reports *)
  Alcotest.(check bool) "weaker than PA-RISC's 0.44" true (ratio > 0.46)

let () =
  Alcotest.run "interp"
    [
      ( "hashbang",
        [
          Alcotest.test_case "publish and exec" `Quick test_publish_and_exec;
          Alcotest.test_case "unknown program" `Quick test_unknown_program;
          Alcotest.test_case "unknown interpreter" `Quick test_unknown_interpreter;
          Alcotest.test_case "cache across execs" `Quick test_script_exec_charges_less_than_build;
        ] );
      ( "mach386",
        [ Alcotest.test_case "integrated ratio" `Quick test_mach_386_integrated_ratio ] );
    ]
