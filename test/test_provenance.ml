(* The observability layer: the binding journal attached to cache
   entries, the simulated-cost profiler, and the percentile/exporter
   additions — the acceptance tests of the provenance work. *)

module T = Telemetry

let world () =
  let w = Omos.World.create () in
  (* world construction does no instantiation work; start the journal
     and the metrics from zero *)
  T.reset ();
  w

let provenance_of (resp : Omos.Server.response) : T.Provenance.t =
  match resp.Omos.Server.built.Omos.Server.entry.Omos.Cache.provenance with
  | Some p -> p
  | None -> Alcotest.fail "no provenance on cache entry"

(* -- the binding journal ---------------------------------------------------- *)

(* /demo/hello is (rename "^greet$" "hello" (override /demo/base.o
   /demo/impl.o)): the journal must name the interposition winner, the
   loser, and the operator chain, and a query for the exported name
   must follow the rename back to the decisions made under "greet". *)
let test_override_rename_chain () =
  let w = world () in
  let s = w.Omos.World.server in
  T.Provenance.set_enabled true;
  let resp = Omos.Server.instantiate s (Omos.Server.library "/demo/hello") in
  T.Provenance.set_enabled false;
  Alcotest.(check bool) "cold build" false resp.Omos.Server.cache_hit;
  let prov = provenance_of resp in
  Alcotest.(check bool) "override in operator chain" true
    (List.mem "override" prov.T.Provenance.p_ops);
  Alcotest.(check bool) "rename in operator chain" true
    (List.mem "rename" prov.T.Provenance.p_ops);
  let evs = T.Provenance.events_for prov "hello" in
  (match
     List.find_map
       (function
         | T.Provenance.Interpose { symbol; winner; loser; how } ->
             Some (symbol, winner, loser, how)
         | _ -> None)
       evs
   with
  | Some (symbol, winner, loser, how) ->
      Alcotest.(check string) "interposed symbol" "greet" symbol;
      Alcotest.(check string) "winning definition" "/demo/impl.o" winner;
      Alcotest.(check string) "losing definition" "/demo/base.o" loser;
      Alcotest.(check string) "interposing operator" "override" how
  | None -> Alcotest.fail "no interposition surfaced for hello");
  Alcotest.(check bool) "rename recorded with the prior name" true
    (List.exists
       (function
         | T.Provenance.Sym { op = "rename"; symbol = "hello"; prior = Some "greet"; _ }
           ->
             true
         | _ -> false)
       evs);
  Alcotest.(check bool) "final binding comes from the winner" true
    (List.exists
       (function
         | T.Provenance.Bind { symbol = "hello"; frag = "/demo/impl.o"; _ } -> true
         | _ -> false)
       evs)

(* A hit serves the stored record: no relink, no link-phase spans, the
   very same provenance value the cold build captured. *)
let test_cache_hit_serves_provenance () =
  let w = world () in
  let s = w.Omos.World.server in
  T.Provenance.set_enabled true;
  let cold = Omos.Server.instantiate s (Omos.Server.library "/demo/hello") in
  let cold_prov = provenance_of cold in
  let cold_digest = T.Provenance.digest cold_prov in
  (* zero every counter and span; the warm request must add none back *)
  T.reset ();
  T.set_enabled true;
  let warm = Omos.Server.instantiate s (Omos.Server.library "/demo/hello") in
  T.set_enabled false;
  T.Provenance.set_enabled false;
  Alcotest.(check bool) "warm hit" true warm.Omos.Server.cache_hit;
  Alcotest.(check int) "no links performed" 0 (T.Counter.get "linker.links");
  Alcotest.(check int) "no link-phase spans" 0
    (List.length (T.spans_named "linker.link")
    + List.length (T.spans_named "server.link"));
  let warm_prov = provenance_of warm in
  Alcotest.(check bool) "the stored record itself, not a rebuild" true
    (warm_prov == cold_prov);
  Alcotest.(check string) "digest stable across the hit" cold_digest
    (T.Provenance.digest warm_prov)

(* Eviction leaves its mark in the residency transitions. *)
let test_residency_transitions () =
  let w = world () in
  let s = w.Omos.World.server in
  T.Provenance.set_enabled true;
  let b = Omos.Server.instantiate s (Omos.Server.library "/lib/libc") in
  let prov = provenance_of b in
  ignore (Omos.Server.evict_to_budget s ~bytes:0);
  T.Provenance.set_enabled false;
  let states = List.map snd prov.T.Provenance.p_transitions in
  Alcotest.(check bool) "placed then evicted" true
    (List.mem "placed" states && List.mem "evicted" states)

(* Bench snapshots carry construction digests. *)
let test_built_digests () =
  let w = world () in
  let s = w.Omos.World.server in
  T.Provenance.set_enabled true;
  ignore (Omos.Server.instantiate s (Omos.Server.library "/demo/hello"));
  ignore (Omos.Server.instantiate s (Omos.Server.library "/lib/libc"));
  T.Provenance.set_enabled false;
  let digests = T.Provenance.built_digests () in
  Alcotest.(check (list string)) "owners recorded, sorted"
    [ "/demo/hello"; "/lib/libc" ]
    (List.map fst digests);
  List.iter
    (fun (_, d) -> Alcotest.(check int) "hex digest" 32 (String.length d))
    digests

(* -- the simulated-cost profiler -------------------------------------------- *)

let test_profile_folded_sums_and_attribution () =
  let w = world () in
  let s = w.Omos.World.server in
  let k = Omos.Server.kernel s in
  T.set_enabled true;
  T.Profile.set_enabled true;
  let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
  let root = T.Span.enter "prof.root" in
  let resp = Omos.Server.instantiate s (Omos.Server.library "/lib/libc") in
  let p = Simos.Kernel.create_process k ~args:[ "prof" ] in
  Omos.Server.map_into s p resp.Omos.Server.built;
  T.Span.exit root;
  T.Profile.set_enabled false;
  T.set_enabled false;
  let total = T.Profile.total () in
  let folded_sum =
    List.fold_left (fun a (_, v) -> a +. v) 0.0 (T.Profile.folded ())
  in
  Alcotest.(check bool) "workload charged something" true (total > 0.0);
  Alcotest.(check (float 0.001)) "folded stacks sum to the total charged cost"
    total folded_sum;
  let _, _, elapsed = Simos.Clock.since k.Simos.Kernel.clock snap in
  Alcotest.(check (float 0.001)) "profiler total equals the clock delta" elapsed
    total;
  (* >= 95% of the cost lands under a named phase span (depth >= 2:
     root;phase;...), not just at the request root or unattributed *)
  Alcotest.(check bool) "per-operator attribution >= 95%" true
    (T.Profile.attributed_at_depth 2 >= 0.95 *. total)

let test_profile_unattributed_and_disabled () =
  T.reset ();
  T.set_enabled true;
  T.Profile.set_enabled true;
  T.Profile.charge T.Profile.User 7.0;
  T.with_span "phase" (fun () -> T.Profile.charge T.Profile.System 5.0);
  T.Profile.set_enabled false;
  T.Profile.charge T.Profile.Io 100.0;
  T.set_enabled false;
  Alcotest.(check (float 0.001)) "disabled charges are dropped" 12.0
    (T.Profile.total ());
  Alcotest.(check bool) "outside-span charge lands under (unattributed)" true
    (List.mem_assoc "(unattributed)" (T.Profile.folded ()));
  let rows = T.Profile.rows () in
  let _, _, sys, _ = List.find (fun (path, _, _, _) -> path = "phase") rows in
  Alcotest.(check (float 0.001)) "kind split preserved" 5.0 sys

(* -- percentiles ------------------------------------------------------------- *)

let test_histogram_percentiles () =
  T.reset ();
  let h = T.Histogram.make "ztest.us.pctl" in
  for v = 1 to 100 do
    T.Histogram.observe h (float_of_int v)
  done;
  Alcotest.(check (float 0.001)) "p50" 50.0 (T.Histogram.percentile h 50.0);
  Alcotest.(check (float 0.001)) "p95" 95.0 (T.Histogram.percentile h 95.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (T.Histogram.percentile h 99.0);
  Alcotest.(check (float 0.001)) "p100" 100.0 (T.Histogram.percentile h 100.0);
  (* the events exporter carries the same three percentile keys *)
  let lines = String.split_on_char '\n' (T.Export.events_json ()) in
  let hist_line =
    List.find (fun l -> Astring.String.is_infix ~affix:"ztest.us.pctl" l) lines
  in
  let j = T.Json.parse hist_line in
  (match T.Json.member "p95" j with
  | Some (T.Json.Num v) -> Alcotest.(check (float 0.001)) "events p95" 95.0 v
  | _ -> Alcotest.fail "events_json histogram line lacks p95");
  (* deterministic reservoir: the same observation stream always yields
     the same percentiles, even past the reservoir size *)
  let obs n seed_name =
    let h = T.Histogram.make seed_name in
    for v = 1 to n do
      T.Histogram.observe h (float_of_int (((v * 7919) mod 1000) + 1))
    done;
    (T.Histogram.percentile h 50.0, T.Histogram.percentile h 99.0)
  in
  let a = obs 5000 "ztest.us.stream_a" in
  T.reset ();
  let b = obs 5000 "ztest.us.stream_a" in
  Alcotest.(check (pair (float 0.001) (float 0.001)))
    "reservoir replacement is deterministic" a b

let () =
  Alcotest.run "provenance"
    [
      ( "journal",
        [
          Alcotest.test_case "override + rename chain" `Quick
            test_override_rename_chain;
          Alcotest.test_case "cache hit serves stored record" `Quick
            test_cache_hit_serves_provenance;
          Alcotest.test_case "residency transitions" `Quick
            test_residency_transitions;
          Alcotest.test_case "built digests" `Quick test_built_digests;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "folded sums and attribution" `Quick
            test_profile_folded_sums_and_attribution;
          Alcotest.test_case "unattributed and disabled charges" `Quick
            test_profile_unattributed_and_disabled;
        ] );
      ( "percentiles",
        [ Alcotest.test_case "histogram and exporters" `Quick test_histogram_percentiles ] );
    ]
