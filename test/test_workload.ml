(* Workload driver tests: spec parsing, determinism, request-id
   threading, and fault runs tripping the flight recorder. *)

module W = Omos.Workload
module F = Telemetry.Flight

let small_spec = { W.default with W.requests = 15 }

let event_line (e : W.event) : string =
  Printf.sprintf "%d %d %s %s %s %.1f" e.W.w_req e.W.w_client e.W.w_op
    e.W.w_target
    (match e.W.w_hit with Some b -> string_of_bool b | None -> "-")
    e.W.w_cost_us

let test_two_runs_identical () =
  let r1 = W.run small_spec in
  let s1 = Telemetry.Health.snapshot () in
  let r2 = W.run small_spec in
  let s2 = Telemetry.Health.snapshot () in
  Alcotest.(check (list string))
    "event streams byte-identical"
    (List.map event_line r1) (List.map event_line r2);
  Alcotest.(check bool) "health snapshots identical" true (s1 = s2)

let test_request_ids_strictly_increase () =
  let evs = W.run small_spec in
  Alcotest.(check int) "one event per request" small_spec.W.requests
    (List.length evs);
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "strictly increasing" true (a.W.w_req < b.W.w_req);
        check rest
    | _ -> ()
  in
  check evs;
  List.iter
    (fun e ->
      Alcotest.(check bool) "client in range" true
        (e.W.w_client >= 0 && e.W.w_client < small_spec.W.clients))
    evs

let test_spec_parse () =
  let s =
    W.parse
      "# scenario\nclients 4\nrequests 9\nseed 11\nmeta /demo/hello\n\
       meta /lib/libm\nmix instantiate=3 evict=1\nevict_bytes 128\n\
       fault_seed 5\nfault place_conflict 0.25\n"
  in
  Alcotest.(check int) "clients" 4 s.W.clients;
  Alcotest.(check int) "requests" 9 s.W.requests;
  Alcotest.(check int) "seed" 11 s.W.seed;
  Alcotest.(check (list string)) "metas" [ "/demo/hello"; "/lib/libm" ] s.W.metas;
  Alcotest.(check (list (pair string int)))
    "mix"
    [ ("instantiate", 3); ("evict", 1) ]
    s.W.mix;
  Alcotest.(check int) "evict_bytes" 128 s.W.evict_bytes;
  (match s.W.faults with
  | Some f ->
      Alcotest.(check int) "fault seed" 5 f.Omos.Residency.seed;
      Alcotest.(check (float 0.0)) "rate" 0.25 f.Omos.Residency.place_conflict
  | None -> Alcotest.fail "faults expected");
  let d = W.parse "" in
  Alcotest.(check bool) "empty spec = default" true (d = W.default)

(* Every rejection pins its exact message: error text is part of the
   spec-language surface (scripts grep it, the fuzzer replays it). *)
let test_spec_errors () =
  let expect_error text msg =
    try
      ignore (W.parse text);
      Alcotest.failf "accepted: %s" text
    with W.Spec_error m -> Alcotest.(check string) "message" msg m
  in
  expect_error "clientz 3\n" "line 1: unknown directive: clientz";
  expect_error "clients many\n" "line 1: clients: not an integer: many";
  expect_error "clients 0\n" "clients must be >= 1";
  expect_error "requests -1\n" "requests must be >= 0";
  expect_error "concurrency 0\n" "concurrency must be >= 1";
  expect_error "mix instantiate=0\n"
    "line 1: mix weight must be positive: instantiate=0";
  expect_error "mix frobnicate=2\n" "line 1: unknown op in mix: frobnicate";
  expect_error "mix instantiate\n"
    "line 1: mix entries are op=weight, got: instantiate";
  expect_error "fault gamma 0.5\n" "line 1: unknown fault: gamma";
  expect_error "fault place_conflict often\n"
    "line 1: fault rate: not a number: often";
  (* validation gaps closed by the fuzzer PR: out-of-range fault
     rates, negative eviction budgets, duplicate mix ops, and a second
     mix line were all silently accepted before *)
  expect_error "fault place_conflict 1.5\n"
    "line 1: fault rate must be in [0,1]: 1.5";
  expect_error "fault evict_storm -0.1\n"
    "line 1: fault rate must be in [0,1]: -0.1";
  expect_error "fault reserve_fail 2\n" "line 1: fault rate must be in [0,1]: 2";
  expect_error "evict_bytes -5\n" "line 1: evict_bytes must be >= 0: -5";
  expect_error "mix instantiate=2 instantiate=1\n"
    "line 1: duplicate op in mix: instantiate";
  expect_error "clients 2\nmix instantiate=2\nmix evict=1\n"
    "line 3: duplicate mix line (mix may appear once)"

(* The run must never *lower* a configured admission limit, and must
   restore it afterwards — a scenario that silently widened the queue
   masked Overload in fault runs. *)
let test_queue_limit_preserved () =
  let captured = ref None in
  let spec =
    { small_spec with W.requests = 8; W.concurrency = 4; W.mix = [ ("instantiate", 1) ] }
  in
  (* configured limit below the pipeline depth: raised for the run,
     restored after *)
  let setup w =
    let s = w.Omos.World.server in
    captured := Some s;
    Omos.Server.set_queue_limit s 2
  in
  ignore (W.run ~setup spec);
  (match !captured with
  | Some s -> Alcotest.(check int) "restored" 2 (Omos.Server.queue_limit s)
  | None -> Alcotest.fail "setup did not run");
  (* configured limit above the pipeline depth: never touched *)
  let setup w =
    let s = w.Omos.World.server in
    captured := Some s;
    Omos.Server.set_queue_limit s 100
  in
  ignore (W.run ~setup spec);
  match !captured with
  | Some s -> Alcotest.(check int) "untouched" 100 (Omos.Server.queue_limit s)
  | None -> Alcotest.fail "setup did not run"

let test_fault_run_trips_flight_dump () =
  let prefix =
    Filename.concat (Filename.get_temp_dir_name ()) "workload_fault_flight"
  in
  List.iter
    (fun ext -> if Sys.file_exists (prefix ^ ext) then Sys.remove (prefix ^ ext))
    [ ".json"; ".txt" ];
  F.set_auto_dump (Some prefix);
  let spec =
    {
      small_spec with
      W.requests = 20;
      W.faults =
        Some
          {
            Omos.Residency.no_faults with
            Omos.Residency.seed = 11;
            place_conflict = 0.6;
            evict_storm = 0.3;
          };
    }
  in
  ignore (W.run spec);
  F.set_auto_dump None;
  Alcotest.(check bool) "json dumped" true (Sys.file_exists (prefix ^ ".json"));
  Alcotest.(check bool) "txt dumped" true (Sys.file_exists (prefix ^ ".txt"));
  (* the recorded faults are attributed to a live (client, request) *)
  let faults = List.filter (fun e -> e.F.kind = F.Fault) (F.events ()) in
  Alcotest.(check bool) "faults fired" true (faults <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "fault names its client" true (e.F.client >= 0);
      Alcotest.(check bool) "fault names its request" true (e.F.request >= 0))
    faults;
  Sys.remove (prefix ^ ".json");
  Sys.remove (prefix ^ ".txt")

let () =
  Alcotest.run "workload"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "errors" `Quick test_spec_errors;
        ] );
      ( "run",
        [
          Alcotest.test_case "deterministic" `Quick test_two_runs_identical;
          Alcotest.test_case "request ids" `Quick
            test_request_ids_strictly_increase;
          Alcotest.test_case "queue limit preserved" `Quick
            test_queue_limit_preserved;
          Alcotest.test_case "fault trips dump" `Quick
            test_fault_run_trips_flight_dump;
        ] );
    ]
