(* The continuous hotness store, the layout-locality auditor, and the
   observability satellites that ride along: overload flight dumps,
   snapshot run metadata, and the pipeline profile-identity property. *)

module T = Telemetry

let fresh_world () =
  let w = Omos.World.create () in
  T.reset ();
  T.set_enabled true;
  w

(* The E1 monitored run: ls -laF against the monitored libc. *)
let monitored_ls_trace () : Omos.Monitor.trace =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let graph =
    Blueprint.Mgraph.Merge
      [
        Omos.Schemes.graph_of_objs (Omos.World.ls_client w);
        Blueprint.Mgraph.parse "(specialize \"monitor\" /lib/libc)";
      ]
  in
  let b = Omos.Server.build s (Omos.Server.static ~name:"ls-mon" graph) in
  let p =
    Omos.Boot.integrated_exec s
      (Omos.Server.loadable_entry [ b ])
      ~args:Omos.World.ls_laf_args
  in
  ignore (Simos.Kernel.run w.Omos.World.kernel p ());
  match Omos.Specializers.last_trace w.Omos.World.specializers with
  | Some t -> t
  | None -> Alcotest.fail "no monitor trace"

let split_libc () =
  List.concat_map Workloads.Libc_gen.split_objects Workloads.Libc_gen.section_names

(* -- hotness store ----------------------------------------------------------- *)

let test_hotness_window_stats () =
  T.reset ();
  List.iter
    (fun fn -> T.Hotness.record_call ~key:"/lib/k" fn)
    [ "a"; "b"; "a"; "c"; "a"; "b" ];
  T.Hotness.record_call ~key:"/lib/other" "z";
  Alcotest.(check int) "events" 7 (T.Hotness.total_events ());
  Alcotest.(check (list string)) "keys" [ "/lib/k"; "/lib/other" ] (T.Hotness.keys ());
  let st =
    match T.Hotness.stat_for "/lib/k" with
    | Some s -> s
    | None -> Alcotest.fail "missing stat"
  in
  Alcotest.(check int) "calls" 6 st.T.Hotness.hs_calls;
  Alcotest.(check (list (pair string int))) "counts hottest-first"
    [ ("a", 3); ("b", 2); ("c", 1) ]
    st.T.Hotness.hs_functions;
  Alcotest.(check (list string)) "first-call order" [ "a"; "b"; "c" ]
    st.T.Hotness.hs_first_call;
  Alcotest.(check int) "a->b transitions seen twice" 2
    (List.assoc ("a", "b") st.T.Hotness.hs_transitions);
  (match T.Hotness.hottest () with
  | Some ("/lib/k", "a", 3) -> ()
  | other ->
      Alcotest.failf "unexpected hottest %s"
        (match other with
        | Some (k, f, n) -> Printf.sprintf "(%s,%s,%d)" k f n
        | None -> "None"));
  (* churn: b overtaking a changes the top identity exactly once *)
  let chg0 = T.Counter.get "hotness.top_changes" in
  List.iter (fun fn -> T.Hotness.record_call ~key:"/lib/k" fn) [ "b"; "b" ];
  Alcotest.(check int) "one top change" (chg0 + 1)
    (T.Counter.get "hotness.top_changes");
  T.reset ();
  Alcotest.(check int) "reset clears the window" 0 (T.Hotness.total_events ())

let test_hotness_rolling_window () =
  T.reset ();
  for i = 1 to T.Hotness.window_cap + 100 do
    T.Hotness.record_call ~key:"/lib/k" (if i <= 100 then "old" else "new")
  done;
  let st = Option.get (T.Hotness.stat_for "/lib/k") in
  Alcotest.(check int) "window holds cap events" T.Hotness.window_cap
    st.T.Hotness.hs_calls;
  Alcotest.(check bool) "rolled-out function is gone" false
    (List.mem_assoc "old" st.T.Hotness.hs_functions);
  Alcotest.(check int) "total keeps counting" (T.Hotness.window_cap + 100)
    (T.Hotness.total_events ())

(* -- the auditor ------------------------------------------------------------- *)

(* Synthetic per-function layout: two small hot routines separated by a
   page of cold code each, so the actual order touches 2 pages while
   the packed optimum (and the reordered layout) fits in 1. *)
let test_audit_math_synthetic () =
  T.reset ();
  let page = Simos.Cost.page_size in
  let mk name size fns =
    let text = Bytes.make size '\x00' in
    let symbols =
      List.map
        (fun (n, v) -> Sof.Symbol.make ~kind:Sof.Symbol.Text ~value:v n)
        fns
    in
    Sof.Object_file.make ~name ~text symbols
  in
  let frags =
    [
      mk "f0" 64 [ ("hot0", 0) ];
      mk "c0" page [ ("cold0", 0) ];
      mk "f1" 64 [ ("hot1", 0) ];
      mk "c1" page [ ("cold1", 0) ];
    ]
  in
  let ranges = Omos.Hotspots.function_ranges frags in
  Alcotest.(check int) "ranges cover all exported functions" 4 (List.length ranges);
  Alcotest.(check bool) "hot1 offset past the first cold page" true
    (List.assoc "hot1" ranges = (64 + page, 128 + page));
  Alcotest.(check int) "scattered calls touch two pages" 2
    (Omos.Hotspots.distinct_pages ranges [ "hot0"; "hot1" ]);
  Alcotest.(check int) "packed lower bound is one page" 1
    (Omos.Hotspots.packed_pages ranges [ "hot0"; "hot1" ]);
  let trace =
    {
      Omos.Monitor.names = [| "hot0"; "hot1" |];
      events = List.rev [ Omos.Monitor.Enter 0; Omos.Monitor.Enter 1 ];
      stamps = [ (-1, -1); (-1, -1) ];
      count = 2;
    }
  in
  let a = Omos.Hotspots.audit ~key:"/syn" ~trace frags in
  Alcotest.(check int) "headroom" 1 (Omos.Hotspots.headroom a);
  Alcotest.(check int) "reorder reclaims everything" 0 (Omos.Hotspots.residual a);
  Alcotest.(check int) "bytes touched" 128 a.Omos.Hotspots.a_bytes_touched;
  (* recorded in the store: gauge + audit pages + health headroom *)
  Alcotest.(check (option (triple int int int))) "audit recorded"
    (Some (2, 1, 1))
    (T.Hotness.audit_pages "/syn");
  Alcotest.(check int) "max headroom" 1 (T.Hotness.max_headroom ())

(* The acceptance property on the real E1 workload: strictly positive
   headroom under the original section order, zero after reordering. *)
let test_audit_e1_headroom () =
  T.reset ();
  let trace = monitored_ls_trace () in
  let frags = split_libc () in
  let before = Omos.Hotspots.audit ~key:"/lib/libc" ~trace frags in
  let after =
    Omos.Hotspots.audit ~key:"/lib/libc(reordered)" ~trace
      (Omos.Reorder.from_trace ~trace frags)
  in
  Alcotest.(check bool) "headroom strictly positive before reorder" true
    (Omos.Hotspots.headroom before > 0);
  Alcotest.(check int) "headroom zero after reorder" 0
    (Omos.Hotspots.headroom after);
  Alcotest.(check bool) "optimal is a lower bound" true
    (before.Omos.Hotspots.a_pages_optimal <= before.Omos.Hotspots.a_pages_actual);
  (* the health window surfaces the same numbers *)
  let snap = T.Health.snapshot () in
  Alcotest.(check (float 0.001)) "health headroom"
    (float_of_int (Omos.Hotspots.headroom before))
    snap.T.Health.headroom_pages;
  Alcotest.(check bool) "health names a hot function" true
    (snap.T.Health.hot_fn <> "-")

(* -- satellite: overload rejections dump the flight ring --------------------- *)

let test_overload_dumps_flight () =
  let w = fresh_world () in
  let s = w.Omos.World.server in
  let prefix = Filename.concat (Filename.get_temp_dir_name ()) "hs_overload_flight" in
  List.iter
    (fun ext -> try Sys.remove (prefix ^ ext) with Sys_error _ -> ())
    [ ".json"; ".txt" ];
  let saved = T.Flight.auto_dump_prefix () in
  Fun.protect
    ~finally:(fun () -> T.Flight.set_auto_dump saved)
    (fun () ->
      T.Flight.set_auto_dump (Some prefix);
      Omos.Server.set_queue_limit s 1;
      let t1 = Omos.Server.submit s (Omos.Server.library "/lib/libm") in
      (match Omos.Server.submit s (Omos.Server.library "/lib/libl") with
      | exception Omos.Server.Overload _ -> ()
      | _ -> Alcotest.fail "second submit should overload");
      ignore (Omos.Server.await s t1));
  Alcotest.(check bool) "flight.json written" true (Sys.file_exists (prefix ^ ".json"));
  Alcotest.(check bool) "dump counted" true (T.Counter.get "flight.dumps" >= 1);
  Alcotest.(check bool) "cause labeled" true
    (T.Counter.get "flight.dumps.overload" >= 1);
  (* the ring carries the fault event naming the rejection *)
  let ic = open_in (prefix ^ ".json") in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool) "fault event in dump" true
    (Astring.String.is_infix ~affix:"server.overload" contents)

(* -- satellite: snapshot carries the pipeline knobs -------------------------- *)

let meta_member key json =
  match T.Json.member "meta" json with Some m -> T.Json.member key m | None -> None

let test_runinfo_in_snapshot () =
  let w = fresh_world () in
  let s = w.Omos.World.server in
  let snap () = T.Json.parse (T.Export.metrics_json ()) in
  Alcotest.(check bool) "queue limit defaults into the snapshot" true
    (meta_member "queue_limit" (snap ()) = Some (T.Json.Num 64.0));
  Alcotest.(check bool) "batch placement recorded" true
    (meta_member "batch_placement" (snap ()) = Some (T.Json.Bool true));
  Omos.Server.set_queue_limit s 5;
  Omos.Server.set_sched_seed s 42;
  Omos.Server.set_batch_placement s false;
  Alcotest.(check bool) "knob changes tracked" true
    (meta_member "queue_limit" (snap ()) = Some (T.Json.Num 5.0)
    && meta_member "sched_seed" (snap ()) = Some (T.Json.Num 42.0)
    && meta_member "batch_placement" (snap ()) = Some (T.Json.Bool false));
  T.reset ();
  Alcotest.(check bool) "metadata survives reset (configuration, not measurement)"
    true
    (meta_member "queue_limit" (snap ()) = Some (T.Json.Num 5.0))

(* -- property: folded profile totals = charged clock cost through the
   pipeline's suspend/resume stages --------------------------------------- *)

let pipeline_metas = [| "/lib/libm"; "/lib/libl"; "/lib/libC"; "/demo/hello" |]

let prop_profile_total_identity =
  QCheck.Test.make ~count:12 ~name:"pipeline profile identity"
    QCheck.(pair (int_bound 1000) (int_range 1 8))
    (fun (seed, n) ->
      let w = fresh_world () in
      let s = w.Omos.World.server in
      Omos.Server.set_sched_seed s seed;
      let k = Omos.Server.kernel s in
      T.Profile.set_enabled true;
      let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
      Fun.protect
        ~finally:(fun () ->
          T.Profile.set_enabled false;
          T.set_enabled false)
        (fun () ->
          (* interleaved stages: n submissions drain through the
             cooperative scheduler, each suspending and resuming its
             detached request around every stage *)
          let ts =
            List.init n (fun i ->
                Omos.Server.submit s
                  (Omos.Server.library
                     pipeline_metas.((seed + i) mod Array.length pipeline_metas)))
          in
          Omos.Server.drain s;
          List.iter (fun t -> ignore (Omos.Server.await s t)) ts);
      let total = T.Profile.total () in
      let folded_sum =
        List.fold_left (fun a (_, v) -> a +. v) 0.0 (T.Profile.folded ())
      in
      let _, _, elapsed = Simos.Clock.since k.Simos.Kernel.clock snap in
      abs_float (total -. folded_sum) < 0.001
      && abs_float (total -. elapsed) < 0.001)

(* -- property: hotness aggregation is byte-deterministic under workload
   concurrency ------------------------------------------------------------- *)

let conc_spec concurrency =
  {
    Omos.Workload.default with
    Omos.Workload.requests = 16;
    seed = 7;
    concurrency;
    mix = [ ("instantiate", 1) ];
  }

let hotspots_bytes concurrency =
  (* the workload driver resets telemetry internally, so it runs first;
     the monitored run then feeds the store the export serializes *)
  ignore (Omos.Workload.run (conc_spec concurrency));
  ignore (monitored_ls_trace ());
  T.Export.hotspots_json ()

let prop_hotness_deterministic =
  QCheck.Test.make ~count:4 ~name:"hotness byte-deterministic under concurrency"
    QCheck.(int_range 2 8)
    (fun concurrency ->
      let serial = hotspots_bytes 1 in
      hotspots_bytes concurrency = serial && hotspots_bytes concurrency = serial)

let () =
  Alcotest.run "hotspots"
    [
      ( "hotness",
        [
          Alcotest.test_case "window stats" `Quick test_hotness_window_stats;
          Alcotest.test_case "rolling window" `Quick test_hotness_rolling_window;
        ] );
      ( "audit",
        [
          Alcotest.test_case "synthetic math" `Quick test_audit_math_synthetic;
          Alcotest.test_case "E1 headroom" `Quick test_audit_e1_headroom;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "overload dumps flight" `Quick test_overload_dumps_flight;
          Alcotest.test_case "runinfo in snapshot" `Quick test_runinfo_in_snapshot;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_profile_total_identity;
          QCheck_alcotest.to_alcotest prop_hotness_deterministic;
        ] );
    ]
