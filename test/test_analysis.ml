(* Tests of the symbol-flow analyzer: every diagnostic code pinned by a
   minimal triggering graph, the differential self-check over the whole
   quickstart world, the no-cost/no-materialization guarantee, and the
   restrict/project partition properties. *)

module L = Analysis.Lint
module Mg = Blueprint.Mgraph

(* a section-less object: Abs definitions only *)
let obj name syms =
  Sof.Object_file.make ~name ~text:Bytes.empty
    (List.map
       (fun (n, b) -> Sof.Symbol.make ~binding:b ~kind:Sof.Symbol.Abs ~value:0 n)
       syms)

(* helper + a caller, so removing the definition leaves a live reloc ref *)
let base_obj () =
  let a = Sof.Asm.create "/t/base.o" in
  Sof.Asm.label a "helper";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.label a "g";
  Sof.Asm.call a "helper";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.finish a

let no_resolve _ = Error "no resolver"
let analyze ?gensym_base g = L.analyze ~resolve:no_resolve ?gensym_base g

let codes (r : L.report) : string list =
  List.map (fun (f : L.finding) -> f.L.code) r.L.findings

let find_code (r : L.report) (code : string) : L.finding =
  match List.find_opt (fun (f : L.finding) -> f.L.code = code) r.L.findings with
  | Some f -> f
  | None ->
      Alcotest.failf "no %s finding (got: %s)" code
        (String.concat ", " (codes r))

(* -- the diagnostic codes ---------------------------------------------------- *)

let test_e001_unresolved_at_root () =
  let g = Mg.Restrict ("^helper$", Mg.Leaf (base_obj ())) in
  let r = analyze g in
  let f = find_code r "E001" in
  Alcotest.(check (list string)) "offending symbol" [ "helper" ] f.L.symbols;
  Alcotest.(check bool) "eval still succeeds" false r.L.eval_fails;
  Alcotest.(check (list string)) "undefined predicted" [ "helper" ] r.L.undefined;
  (* a reference that never had a definition is an import, not an error *)
  let importer =
    let a = Sof.Asm.create "/t/imp.o" in
    Sof.Asm.label a "f";
    Sof.Asm.call a "external_thing";
    Sof.Asm.instr a Svm.Isa.Ret;
    Sof.Asm.finish a
  in
  let r = analyze (Mg.Merge [ Mg.Leaf importer ]) in
  Alcotest.(check (list string)) "import is clean" [] (codes r);
  Alcotest.(check (list string)) "but still undefined" [ "external_thing" ]
    r.L.undefined

let test_e002_duplicate_global () =
  let a = obj "/t/a.o" [ ("f", Sof.Symbol.Global) ] in
  let b = obj "/t/b.o" [ ("f", Sof.Symbol.Global) ] in
  let r = analyze (Mg.Merge [ Mg.Leaf a; Mg.Leaf b ]) in
  let f = find_code r "E002" in
  Alcotest.(check (list string)) "symbol" [ "f" ] f.L.symbols;
  Alcotest.(check bool) "eval fails" true r.L.eval_fails;
  (* and evaluation really does fail *)
  (try
     ignore
       (Blueprint.Mgraph.eval
          (Blueprint.Mgraph.make_env ())
          (Mg.Merge [ Mg.Leaf a; Mg.Leaf b ]));
     Alcotest.fail "eval should raise"
   with Jigsaw.Module_ops.Module_error _ -> ());
  (* a weak duplicate is not an error *)
  let w = obj "/t/w.o" [ ("f", Sof.Symbol.Weak) ] in
  let r = analyze (Mg.Merge [ Mg.Leaf a; Mg.Leaf w ]) in
  Alcotest.(check bool) "no E002 for weak" true
    (not (List.mem "E002" (codes r)))

let test_e003_rename_collision () =
  let o = obj "/t/fg.o" [ ("f", Sof.Symbol.Global); ("g", Sof.Symbol.Global) ] in
  let r = analyze (Mg.Copy_as ("^f$", "g", Mg.Leaf o)) in
  let f = find_code r "E003" in
  Alcotest.(check (list string)) "symbol" [ "g" ] f.L.symbols;
  let r = analyze (Mg.Rename (Jigsaw.Module_ops.Defs_only, "^f$", "g", Mg.Leaf o)) in
  ignore (find_code r "E003");
  (* a refs-only rename cannot collide definitions *)
  let r = analyze (Mg.Rename (Jigsaw.Module_ops.Refs_only, "^f$", "g", Mg.Leaf o)) in
  Alcotest.(check (list string)) "refs-only clean" [] (codes r)

let test_e004_conflicting_constraints () =
  let o = obj "/t/c.o" [ ("f", Sof.Symbol.Global) ] in
  let g =
    Mg.Constrain (Mg.Seg_text, 0x1000, Mg.Constrain (Mg.Seg_text, 0x2000, Mg.Leaf o))
  in
  ignore (find_code (analyze g) "E004");
  (* same address twice is no conflict; different segments neither *)
  let g = Mg.Constrain (Mg.Seg_text, 0x1000, Mg.Constrain (Mg.Seg_text, 0x1000, Mg.Leaf o)) in
  Alcotest.(check (list string)) "same addr clean" [] (codes (analyze g));
  let g = Mg.Constrain (Mg.Seg_text, 0x1000, Mg.Constrain (Mg.Seg_data, 0x2000, Mg.Leaf o)) in
  Alcotest.(check (list string)) "cross-seg clean" [] (codes (analyze g))

let test_e005_unknown_and_cycle () =
  let r = analyze (Mg.Name "/no/such") in
  let f = find_code r "E005" in
  Alcotest.(check (list string)) "names the path" [ "/no/such" ] f.L.symbols;
  Alcotest.(check bool) "eval fails" true r.L.eval_fails;
  let resolve = function
    | "/a" -> Ok (Mg.Name "/b")
    | "/b" -> Ok (Mg.Name "/a")
    | p -> Error ("unknown " ^ p)
  in
  let r = L.analyze ~resolve (Mg.Name "/a") in
  ignore (find_code r "E005")

let test_e006_invalid_selector () =
  let o = obj "/t/f.o" [ ("f", Sof.Symbol.Global) ] in
  let r = analyze (Mg.Restrict ("^[", Mg.Leaf o)) in
  ignore (find_code r "E006");
  Alcotest.(check bool) "eval fails" true r.L.eval_fails

let test_e007_source_errors () =
  let r = analyze (Mg.Merge [ Mg.Source ("c", "int broken( {") ]) in
  ignore (find_code r "E007");
  let r = analyze (Mg.Merge [ Mg.Source ("fortran", "") ]) in
  ignore (find_code r "E007");
  (* valid source analyzes into its namespace *)
  let r = analyze (Mg.Merge [ Mg.Source ("c", "int f() { return 1; }") ]) in
  Alcotest.(check (list string)) "clean" [] (codes r);
  Alcotest.(check bool) "f exported" true (List.mem "f" r.L.exports)

let test_e008_malformed_graph () =
  let o = obj "/t/f.o" [ ("f", Sof.Symbol.Global) ] in
  ignore (find_code (analyze (Mg.Specialize ("no-such", [], Mg.Leaf o))) "E008");
  ignore (find_code (analyze (Mg.Lst [ Mg.Leaf o ])) "E008");
  ignore (find_code (analyze (Mg.Merge [])) "E008");
  ignore
    (find_code
       (analyze (Mg.Specialize ("lib-constrained", [ Mg.Vstr "T" ], Mg.Leaf o)))
       "E008")

let test_w101_dead_selectors () =
  let o = obj "/t/fg.o" [ ("f", Sof.Symbol.Global); ("g", Sof.Symbol.Global) ] in
  let dead op title =
    let f = find_code (analyze (op (Mg.Leaf o))) "W101" in
    Alcotest.(check string) title title f.L.title
  in
  dead (fun x -> Mg.Restrict ("^zz", x)) "dead-restrict";
  dead (fun x -> Mg.Hide ("^zz", x)) "dead-hide";
  dead (fun x -> Mg.Show (".", x)) "dead-show";
  dead (fun x -> Mg.Project (".", x)) "dead-project";
  (* live selectors stay silent *)
  Alcotest.(check (list string)) "live restrict" []
    (codes (analyze (Mg.Restrict ("^f$", Mg.Leaf o))))

let test_w102_override_overrides_nothing () =
  let a = obj "/t/a.o" [ ("f", Sof.Symbol.Global) ] in
  let b = obj "/t/b.o" [ ("h", Sof.Symbol.Global) ] in
  ignore (find_code (analyze (Mg.Override (Mg.Leaf a, Mg.Leaf b))) "W102");
  let b' = obj "/t/b2.o" [ ("f", Sof.Symbol.Global) ] in
  Alcotest.(check (list string)) "real override clean" []
    (codes (analyze (Mg.Override (Mg.Leaf a, Mg.Leaf b'))))

let test_w103_refreeze () =
  let o = obj "/t/f.o" [ ("f", Sof.Symbol.Global) ] in
  let g = Mg.Freeze ("^f$", Mg.Freeze ("^f$", Mg.Leaf o)) in
  let f = find_code (analyze g) "W103" in
  Alcotest.(check (list string)) "symbol" [ "f" ] f.L.symbols;
  (* a single live freeze is W103-clean (only the W105 instability
     warning remains: it mints a mangling-dependent alias) *)
  Alcotest.(check (list string)) "single freeze clean" [ "W105" ]
    (codes (analyze (Mg.Freeze ("^f$", Mg.Leaf o))))

let test_w104_shadowed_weak () =
  let a = obj "/t/weak.o" [ ("f", Sof.Symbol.Weak) ] in
  let b = obj "/t/strong.o" [ ("f", Sof.Symbol.Global) ] in
  let f = find_code (analyze (Mg.Merge [ Mg.Leaf a; Mg.Leaf b ])) "W104" in
  Alcotest.(check (list string)) "symbol" [ "f" ] f.L.symbols;
  (* two weaks coexist silently *)
  let b' = obj "/t/weak2.o" [ ("f", Sof.Symbol.Weak) ] in
  Alcotest.(check (list string)) "weak+weak clean" []
    (codes (analyze (Mg.Merge [ Mg.Leaf a; Mg.Leaf b' ])))

(* -- exactness --------------------------------------------------------------- *)

let test_verify_all_world_metas () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let metas = Omos.Namespace.all_metas (Omos.Server.namespace s) in
  Alcotest.(check bool) "world has metas" true (metas <> []);
  List.iter
    (fun path ->
      let meta = Omos.Server.find_meta s path in
      let graph = Blueprint.Meta.effective_graph meta ~spec:None in
      let _, outcome =
        L.verify_against ~eval:(Omos.Server.eval s)
          ~resolve:(Omos.Server.resolve_graph s) graph
      in
      match outcome with
      | L.Verified _ -> ()
      | L.Skipped reason -> Alcotest.failf "%s: skipped: %s" path reason
      | L.Mismatch { field; predicted; actual } ->
          Alcotest.failf "%s: %s mismatch: predicted [%s] actual [%s]" path
            field
            (String.concat " " predicted)
            (String.concat " " actual)
      | L.Eval_raised msg -> Alcotest.failf "%s: eval raised: %s" path msg)
    metas

let test_gensym_replay_after_prior_evals () =
  (* the analyzer predicts mangled freeze/hide aliases exactly even when
     earlier evaluations already advanced the global mangling counter *)
  let o =
    obj "/t/fgh.o"
      [ ("f", Sof.Symbol.Global); ("g", Sof.Symbol.Global); ("h", Sof.Symbol.Global) ]
  in
  ignore
    (Jigsaw.Module_ops.freeze
       (Jigsaw.Select.compile "f")
       (Jigsaw.Module_ops.of_object o));
  let graph = Mg.Show ("^f$", Mg.Freeze ("^g$", Mg.Leaf o)) in
  let env = Blueprint.Mgraph.make_env () in
  let report, outcome =
    L.verify_against ~eval:(Blueprint.Mgraph.eval env) ~resolve:no_resolve graph
  in
  (match outcome with
  | L.Verified _ -> ()
  | L.Skipped r -> Alcotest.failf "skipped: %s" r
  | L.Mismatch { field; predicted; actual } ->
      Alcotest.failf "%s mismatch: predicted [%s] actual [%s]" field
        (String.concat " " predicted)
        (String.concat " " actual)
  | L.Eval_raised m -> Alcotest.failf "eval raised: %s" m);
  Alcotest.(check bool) "f stays public" true (List.mem "f" report.L.exports);
  Alcotest.(check bool) "g demoted" false (List.mem "g" report.L.exports);
  Alcotest.(check bool) "h demoted" false (List.mem "h" report.L.exports);
  Alcotest.(check bool) "g tracked frozen" true (List.mem "g" report.L.frozen)

let test_analysis_is_free () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let k = Omos.Server.kernel s in
  let clock0 = Simos.Clock.elapsed k.Simos.Kernel.clock in
  let mat0 = Sof.View.materializations () in
  let compiles0 = Telemetry.Counter.get "blueprint.source_compiles" in
  List.iter
    (fun path ->
      let meta = Omos.Server.find_meta s path in
      ignore (L.analyze_meta ~resolve:(Omos.Server.resolve_graph s) meta))
    (Omos.Namespace.all_metas (Omos.Server.namespace s));
  (* source nodes compile host-side but charge nothing and do not count
     as evaluator compiles *)
  ignore (analyze (Mg.Merge [ Mg.Source ("c", "int f() { return 1; }") ]));
  Alcotest.(check (float 0.0)) "zero simulated cost" clock0
    (Simos.Clock.elapsed k.Simos.Kernel.clock);
  Alcotest.(check int) "zero views materialized" mat0
    (Sof.View.materializations ());
  Alcotest.(check int) "zero evaluator compiles" compiles0
    (Telemetry.Counter.get "blueprint.source_compiles")

(* -- registration & provenance ----------------------------------------------- *)

let test_registration_counters_and_provenance () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let errs0 = Telemetry.Counter.get "lint.errors" in
  let warns0 = Telemetry.Counter.get "lint.warnings" in
  Omos.Server.register_meta_source s "/test/warny" "(override /demo/impl.o /lib/libm.o)";
  Omos.Server.register_meta_source s "/test/broken" "(merge /demo/base.o /demo/base.o)";
  Alcotest.(check int) "warning counter" (warns0 + 1)
    (Telemetry.Counter.get "lint.warnings");
  Alcotest.(check int) "error counter" (errs0 + 1)
    (Telemetry.Counter.get "lint.errors");
  (match Omos.Server.lint_report s "/test/broken" with
  | Some rep ->
      Alcotest.(check bool) "E002 recorded" true (List.mem "E002" (codes rep));
      Alcotest.(check bool) "eval_fails" true rep.L.eval_fails
  | None -> Alcotest.fail "no lint report for /test/broken");
  (* findings replay into the provenance journal of the build, without
     perturbing the operator chain *)
  Telemetry.set_enabled true;
  Telemetry.Provenance.set_enabled true;
  let resp = Omos.Server.instantiate s (Omos.Server.library "/test/warny") in
  Telemetry.Provenance.set_enabled false;
  Telemetry.set_enabled false;
  let e = resp.Omos.Server.built.Omos.Server.entry in
  match e.Omos.Cache.provenance with
  | None -> Alcotest.fail "no provenance"
  | Some p ->
      Alcotest.(check bool) "W102 in journal" true
        (List.exists
           (function
             | Telemetry.Provenance.Lint { code; _ } -> code = "W102"
             | _ -> false)
           p.Telemetry.Provenance.p_events);
      Alcotest.(check bool) "operator chain untouched" true
        (not (List.mem "lint" p.Telemetry.Provenance.p_ops))

(* -- the partition and dead-selector properties ------------------------------- *)

let name_pool = [| "alpha"; "beta"; "gamma"; "delta"; "omega"; "mu" |]
let sel_pool = [| "^alpha$"; "^a"; "a$"; "^zz"; "."; "^(alpha|mu)$"; "ta" |]

let gen_names =
  QCheck.Gen.map
    (fun bits ->
      List.filteri
        (fun i _ -> bits land (1 lsl i) <> 0)
        (Array.to_list name_pool))
    (QCheck.Gen.int_bound 63)

let gen_sel = QCheck.Gen.oneofa sel_pool

let arb_case =
  QCheck.make
    ~print:(fun (ns, sel) -> String.concat "," ns ^ " / " ^ sel)
    (QCheck.Gen.pair gen_names gen_sel)

let prop_partition =
  QCheck.Test.make ~name:"restrict+project partition exports" ~count:300
    arb_case (fun (names, sel_s) ->
      let o = obj "/t/p.o" (List.map (fun n -> (n, Sof.Symbol.Global)) names) in
      let m = Jigsaw.Module_ops.of_object o in
      let sel = Jigsaw.Select.compile sel_s in
      let er = Jigsaw.Module_ops.exports (Jigsaw.Module_ops.restrict sel m) in
      let ep = Jigsaw.Module_ops.exports (Jigsaw.Module_ops.project sel m) in
      List.sort_uniq compare (er @ ep) = Jigsaw.Module_ops.exports m
      && List.for_all (fun n -> not (List.mem n ep)) er)

let prop_dead_restrict_noop =
  QCheck.Test.make ~name:"lint-dead restrict is a concrete no-op" ~count:300
    arb_case (fun (names, sel_s) ->
      let o = obj "/t/d.o" (List.map (fun n -> (n, Sof.Symbol.Global)) names) in
      let rep = analyze (Mg.Restrict (sel_s, Mg.Leaf o)) in
      (not (List.mem "W101" (codes rep)))
      ||
      let m = Jigsaw.Module_ops.of_object o in
      let m' = Jigsaw.Module_ops.restrict (Jigsaw.Select.compile sel_s) m in
      Jigsaw.Module_ops.exports m' = Jigsaw.Module_ops.exports m
      && Jigsaw.Module_ops.undefined m' = Jigsaw.Module_ops.undefined m)

let prop_dead_hide_noop =
  QCheck.Test.make ~name:"lint-dead hide is a concrete no-op" ~count:300
    arb_case (fun (names, sel_s) ->
      let o = obj "/t/h.o" (List.map (fun n -> (n, Sof.Symbol.Global)) names) in
      let rep = analyze (Mg.Hide (sel_s, Mg.Leaf o)) in
      (not (List.mem "W101" (codes rep)))
      ||
      let m = Jigsaw.Module_ops.of_object o in
      let m' = Jigsaw.Module_ops.hide (Jigsaw.Select.compile sel_s) m in
      Jigsaw.Module_ops.exports m' = Jigsaw.Module_ops.exports m)

(* -- subtree dependence (impact) ---------------------------------------------- *)

module I = Analysis.Impact

let ianalyze g = I.analyze ~resolve:no_resolve g
let iroot g = (ianalyze g).I.t_root

let test_w105_unstable_subtree () =
  let o = obj "/t/fg.o" [ ("f", Sof.Symbol.Global); ("g", Sof.Symbol.Global) ] in
  (* a live freeze mints a mangling-dependent alias: W105 names the
     selected symbols *)
  let f = find_code (analyze (Mg.Freeze ("^f$", Mg.Leaf o))) "W105" in
  Alcotest.(check (list string)) "freeze symbols" [ "f" ] f.L.symbols;
  ignore (find_code (analyze (Mg.Hide ("^g$", Mg.Leaf o))) "W105");
  (* show warns on the victims it hides, not the survivors *)
  let f = find_code (analyze (Mg.Show ("^f$", Mg.Leaf o))) "W105" in
  Alcotest.(check (list string)) "show victims" [ "g" ] f.L.symbols;
  (* a dead freeze mints nothing: fully clean (it only burns an id) *)
  let r = analyze (Mg.Freeze ("^zz", Mg.Leaf o)) in
  Alcotest.(check (list string)) "dead freeze clean" [] (codes r);
  (* non-minting operators stay quiet *)
  Alcotest.(check bool) "restrict no W105" false
    (List.mem "W105" (codes (analyze (Mg.Restrict ("^f$", Mg.Leaf o)))))

let test_impact_digests_and_stability () =
  let a = obj "/t/ia.o" [ ("f", Sof.Symbol.Global) ] in
  let b = obj "/t/ib.o" [ ("g", Sof.Symbol.Global) ] in
  let g = Mg.Merge [ Mg.Leaf a; Mg.Leaf b ] in
  let r1 = iroot g and r2 = iroot g in
  Alcotest.(check string) "digest deterministic" r1.I.i_digest r2.I.i_digest;
  Alcotest.(check bool) "merge of plain leaves is stable" true r1.I.i_stable;
  Alcotest.(check int) "two children" 2 (List.length r1.I.i_children);
  (* content-addressed: same shape, different leaf content *)
  let b' = obj "/t/ib.o" [ ("h", Sof.Symbol.Global) ] in
  let r3 = iroot (Mg.Merge [ Mg.Leaf a; Mg.Leaf b' ]) in
  Alcotest.(check bool) "content moves the digest" true
    (r1.I.i_digest <> r3.I.i_digest);
  (* a live freeze leaks its minted alias: unstable, one id drawn *)
  let rf = iroot (Mg.Freeze ("^f$", Mg.Leaf a)) in
  Alcotest.(check bool) "live freeze unstable" false rf.I.i_stable;
  Alcotest.(check int) "one id consumed" 1 rf.I.i_summary.I.s_gensym;
  (* a dead freeze consumes the id but mints no name: stable *)
  let rd = iroot (Mg.Freeze ("^zz", Mg.Leaf a)) in
  Alcotest.(check bool) "dead freeze stable" true rd.I.i_stable;
  Alcotest.(check int) "id still consumed" 1 rd.I.i_summary.I.s_gensym;
  (* an unresolvable name poisons stability up the spine *)
  let t = ianalyze (Mg.Merge [ Mg.Leaf a; Mg.Name "/no/such" ]) in
  Alcotest.(check bool) "approximate tree" true t.I.t_approximate;
  Alcotest.(check bool) "root unstable" false t.I.t_root.I.i_stable

let test_impact_diff_verdicts () =
  let a = obj "/t/ia.o" [ ("f", Sof.Symbol.Global) ] in
  let b = obj "/t/ib.o" [ ("g", Sof.Symbol.Global) ] in
  let c = obj "/t/ic.o" [ ("h", Sof.Symbol.Global) ] in
  let c' = obj "/t/ic.o" [ ("h2", Sof.Symbol.Global) ] in
  let old_tree = ianalyze (Mg.Merge [ Mg.Leaf a; Mg.Leaf b; Mg.Leaf c ]) in
  let new_tree = ianalyze (Mg.Merge [ Mg.Leaf a; Mg.Leaf b; Mg.Leaf c' ]) in
  let d = I.diff ~old_tree ~new_tree in
  Alcotest.(check bool) "root digest moved" true
    (d.I.d_old_digest <> d.I.d_new_digest);
  Alcotest.(check int) "siblings reused" 2 d.I.d_reused;
  Alcotest.(check int) "spine respun" 2 d.I.d_respun;
  Alcotest.(check (list string)) "spine = root + edited leaf"
    [ "merge"; "merge[2].leaf:/t/ic.o" ] d.I.d_spine;
  (* the edited leaf's reason names the first differing interface fact *)
  let leaf_verdict =
    List.find (fun v -> v.I.v_path = "merge[2].leaf:/t/ic.o") d.I.d_nodes
  in
  (match leaf_verdict.I.v_verdict with
  | I.Respin { reason } ->
      Alcotest.(check bool)
        (Printf.sprintf "reason mentions the export (%s)" reason)
        true
        (Astring.String.is_infix ~affix:"export" reason)
  | I.Reused _ -> Alcotest.fail "edited leaf must respin");
  (* verify discharges the byte-identity obligation of both reuses *)
  let env = Blueprint.Mgraph.make_env () in
  let eval n = (Blueprint.Mgraph.eval env n).Blueprint.Mgraph.m in
  let vo = I.verify ~eval ~old_tree ~new_tree d in
  Alcotest.(check int) "two digests checked" 2 vo.I.vo_checked;
  Alcotest.(check (list (pair string string))) "no failures" []
    vo.I.vo_failures;
  (* identical trees: one reused root, empty spine *)
  let d0 = I.diff ~old_tree ~new_tree:old_tree in
  Alcotest.(check int) "self-diff reuses the root" 1 d0.I.d_reused;
  Alcotest.(check int) "nothing respun" 0 d0.I.d_respun;
  Alcotest.(check (list string)) "empty spine" [] d0.I.d_spine

(* an assembled fragment: one label per (name, optional callee) *)
let asm_obj name defs =
  let a = Sof.Asm.create name in
  List.iter
    (fun (lbl, callee) ->
      Sof.Asm.label a lbl;
      (match callee with Some c -> Sof.Asm.call a c | None -> ());
      Sof.Asm.instr a Svm.Isa.Ret)
    defs;
  Sof.Asm.finish a

(* A dead freeze in a reusable subtree consumes a mangling id without
   minting a name; reusing that subtree must still skip the id so the
   live freeze downstream mints exactly the alias a from-scratch
   evaluation would. Exports (aliases included) and the flattened
   object must come out byte-identical. *)
let test_gensym_replay_after_partial_reuse () =
  let source tail =
    Printf.sprintf
      "(merge (freeze \"^zz$\" /t/ra.o) (freeze \"^bb$\" /t/rb.o) %s)" tail
  in
  let install s =
    Omos.Server.add_fragment s "/t/ra.o" (asm_obj "/t/ra.o" [ ("ra", None) ]);
    Omos.Server.add_fragment s "/t/rb.o"
      (asm_obj "/t/rb.o" [ ("bb", None); ("bb_caller", Some "bb") ]);
    Omos.Server.add_fragment s "/t/rc.o" (asm_obj "/t/rc.o" [ ("cc", None) ]);
    Omos.Server.add_fragment s "/t/rd.o" (asm_obj "/t/rd.o" [ ("dd", None) ])
  in
  let graph s = Blueprint.Meta.effective_graph (Omos.Server.find_meta s "/t/rlib") ~spec:None in
  (* world A: cold build fills the memo table, then an edited sibling *)
  let sa = (Omos.World.create ()).Omos.World.server in
  install sa;
  Omos.Server.register_meta_source sa "/t/rlib" (source "/t/rc.o");
  ignore (Omos.Server.eval sa (graph sa));
  Omos.Server.register_meta_source sa "/t/rlib" (source "/t/rd.o");
  (match Omos.Server.impact_diff sa "/t/rlib" with
  | None -> Alcotest.fail "no impact diff after re-registration"
  | Some d ->
      Alcotest.(check bool) "dead-freeze subtree reused" true
        (List.exists
           (fun v ->
             match v.I.v_verdict with
             | I.Reused _ -> v.I.v_op <> "leaf" && v.I.v_op <> "name"
             | I.Respin _ -> false)
           d.I.d_nodes));
  let g0 = Jigsaw.Module_ops.gensym_current () in
  let m_incr = (Omos.Server.eval sa (graph sa)).Blueprint.Mgraph.m in
  (* world B: same edited blueprint from scratch, reuse off, aligned to
     the same mangling baseline *)
  let sb = (Omos.World.create ()).Omos.World.server in
  Omos.Server.set_subtree_reuse sb false;
  install sb;
  Omos.Server.register_meta_source sb "/t/rlib" (source "/t/rd.o");
  let gb = graph sb in
  Jigsaw.Module_ops.gensym_set g0;
  let m_scratch = (Omos.Server.eval sb gb).Blueprint.Mgraph.m in
  Alcotest.(check (list string)) "exports identical (aliases included)"
    (Jigsaw.Module_ops.exports m_scratch)
    (Jigsaw.Module_ops.exports m_incr);
  Alcotest.(check bool) "minted alias present" true
    (List.exists
       (fun n -> Astring.String.is_prefix ~affix:"bb$frz" n)
       (Jigsaw.Module_ops.exports m_incr));
  Alcotest.(check string) "flattened object byte-identical"
    (Sof.Codec.digest (Jigsaw.Module_ops.to_object m_scratch))
    (Sof.Codec.digest (Jigsaw.Module_ops.to_object m_incr))

(* every Reused verdict over a fuzzed single-edit pair materializes
   byte-identically — the proof obligation discharged over the same
   edit distribution the incremental-relink oracle replays *)
let prop_edit_pairs_reused_byte_identical =
  QCheck.Test.make ~name:"fuzzed edit pairs: reused nodes byte-identical"
    ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c = Workloads.Fuzz.generate ~max_modules:8 ~max_libs:4 ~seed () in
      match Workloads.Fuzz.mutate ~seed c with
      | None -> true
      | Some (c', _edit) ->
          let w = Omos.World.create () in
          let s = w.Omos.World.server in
          Omos.Fuzzer.install c w;
          let changed =
            List.filter
              (fun ((a : Workloads.Fuzz.libdef), b) -> a <> b)
              (List.combine c.Workloads.Fuzz.f_libs c'.Workloads.Fuzz.f_libs)
          in
          changed <> []
          && List.for_all
               (fun ((lold : Workloads.Fuzz.libdef), lnew) ->
                 let path = Workloads.Fuzz.lib_path lold in
                 let resolve = Omos.Server.resolve_graph s in
                 let graph () =
                   Blueprint.Meta.effective_graph
                     (Omos.Server.find_meta s path) ~spec:None
                 in
                 let old_tree = I.analyze ~resolve (graph ()) in
                 Omos.Server.register_meta_source s path
                   (Workloads.Fuzz.meta_source lnew);
                 let new_tree = I.analyze ~resolve (graph ()) in
                 let d = I.diff ~old_tree ~new_tree in
                 let eval n = (Omos.Server.eval s n).Blueprint.Mgraph.m in
                 let vo = I.verify ~eval ~old_tree ~new_tree d in
                 vo.I.vo_failures = [])
               changed)

let () =
  Alcotest.run "analysis"
    [
      ( "codes",
        [
          Alcotest.test_case "E001 unresolved-at-root" `Quick
            test_e001_unresolved_at_root;
          Alcotest.test_case "E002 duplicate-global" `Quick
            test_e002_duplicate_global;
          Alcotest.test_case "E003 rename-collision" `Quick
            test_e003_rename_collision;
          Alcotest.test_case "E004 conflicting-constraints" `Quick
            test_e004_conflicting_constraints;
          Alcotest.test_case "E005 unknown+cycle" `Quick
            test_e005_unknown_and_cycle;
          Alcotest.test_case "E006 invalid-selector" `Quick
            test_e006_invalid_selector;
          Alcotest.test_case "E007 source errors" `Quick test_e007_source_errors;
          Alcotest.test_case "E008 malformed graph" `Quick
            test_e008_malformed_graph;
          Alcotest.test_case "W101 dead selectors" `Quick
            test_w101_dead_selectors;
          Alcotest.test_case "W102 override nothing" `Quick
            test_w102_override_overrides_nothing;
          Alcotest.test_case "W103 refreeze" `Quick test_w103_refreeze;
          Alcotest.test_case "W104 shadowed weak" `Quick test_w104_shadowed_weak;
          Alcotest.test_case "W105 unstable subtree" `Quick
            test_w105_unstable_subtree;
        ] );
      ( "exactness",
        [
          Alcotest.test_case "verify all world metas" `Quick
            test_verify_all_world_metas;
          Alcotest.test_case "gensym replay" `Quick
            test_gensym_replay_after_prior_evals;
          Alcotest.test_case "analysis is free" `Quick test_analysis_is_free;
        ] );
      ( "registration",
        [
          Alcotest.test_case "counters + provenance" `Quick
            test_registration_counters_and_provenance;
        ] );
      ( "impact",
        [
          Alcotest.test_case "digests + stability" `Quick
            test_impact_digests_and_stability;
          Alcotest.test_case "diff verdicts + verify" `Quick
            test_impact_diff_verdicts;
          Alcotest.test_case "gensym replay after partial reuse" `Quick
            test_gensym_replay_after_partial_reuse;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_partition;
          QCheck_alcotest.to_alcotest prop_dead_restrict_noop;
          QCheck_alcotest.to_alcotest prop_dead_hide_noop;
          QCheck_alcotest.to_alcotest prop_edit_pairs_reused_byte_identical;
        ] );
    ]
