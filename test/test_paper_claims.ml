(* Regression tests pinning the paper's quantitative claims: each
   Table 1 ratio (within a tolerance band) plus the prose claims the
   benches reproduce. These catch cost-model or workload drift that the
   functional suites would miss. Iteration counts are kept small; the
   bands are wide enough for measurement noise-free simulated time. *)

let ratio_of (w : Omos.World.t) base omos ~args ~n =
  let time prog =
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args);
    let snap = Simos.Clock.snapshot w.Omos.World.kernel.Simos.Kernel.clock in
    for _ = 1 to n do
      ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args)
    done;
    let _, _, e = Simos.Clock.since w.Omos.World.kernel.Simos.Kernel.clock snap in
    e
  in
  let tb = time base in
  let to_ = time omos in
  to_ /. tb

let check_band name lo hi ratio =
  Alcotest.(check bool)
    (Printf.sprintf "%s: ratio %.3f in [%.2f, %.2f]" name ratio lo hi)
    true
    (ratio >= lo && ratio <= hi)

let hpux_programs (w : Omos.World.t) which =
  let client, libs =
    match which with
    | `Ls -> (Omos.World.ls_client w, Omos.World.ls_libs)
    | `Codegen -> (Omos.World.codegen_client w, Omos.World.codegen_libs)
  in
  let name = match which with `Ls -> "ls" | `Codegen -> "codegen" in
  ( Omos.Schemes.dynamic_program w.Omos.World.rt ~name ~client ~libs,
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name ~client ~libs () )

let test_t1a () =
  (* paper 1.007: parity *)
  let w = Omos.World.create () in
  let base, omos = hpux_programs w `Ls in
  check_band "T1a ls" 0.92 1.12
    (ratio_of w base omos ~args:Omos.World.ls_single_args ~n:25)

let test_t1b () =
  (* paper 0.93: OMOS modestly faster on -laF *)
  let w = Omos.World.create () in
  let base, omos = hpux_programs w `Ls in
  check_band "T1b ls -laF" 0.88 0.98
    (ratio_of w base omos ~args:Omos.World.ls_laf_args ~n:8)

let test_t1c () =
  (* paper 0.82: clear win on the relocation-heavy program *)
  let w = Omos.World.create () in
  let base, omos = hpux_programs w `Codegen in
  check_band "T1c codegen" 0.75 0.92
    (ratio_of w base omos ~args:Omos.World.codegen_args ~n:4)

let test_t1d () =
  (* paper 0.60 bootstrap / 0.44 integrated on Mach+OSF/1 *)
  let w = Omos.World.create ~personality:Omos.World.Mach_osf1 () in
  let client = Omos.World.ls_client w and libs = Omos.World.ls_libs in
  let base = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let boot =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls" ~client ~libs ()
  in
  let integ =
    Omos.Schemes.self_contained_program w.Omos.World.rt
      ~style:Omos.Schemes.Integrated ~name:"ls" ~client ~libs ()
  in
  check_band "T1d bootstrap" 0.52 0.68
    (ratio_of w base boot ~args:Omos.World.ls_single_args ~n:25);
  check_band "T1d integrated" 0.36 0.52
    (ratio_of w base integ ~args:Omos.World.ls_single_args ~n:25);
  (* the structural claim: integrated strictly beats bootstrap *)
  let rb = ratio_of w base boot ~args:Omos.World.ls_single_args ~n:10 in
  let ri = ratio_of w base integ ~args:Omos.World.ls_single_args ~n:10 in
  Alcotest.(check bool) "integrated < bootstrap" true (ri < rb)

let test_t1_user_system_structure () =
  (* T1a's signature structure: the baseline's extra time is user
     (loader work), OMOS's is system (IPC) — visible in the paper's
     HP-UX rows (user 4.16 vs 1.63; system 2.23 vs 14.57) *)
  let w = Omos.World.create () in
  let base, omos = hpux_programs w `Ls in
  let split prog =
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args);
    let snap = Simos.Clock.snapshot w.Omos.World.kernel.Simos.Kernel.clock in
    for _ = 1 to 10 do
      ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args)
    done;
    let u, s, _ = Simos.Clock.since w.Omos.World.kernel.Simos.Kernel.clock snap in
    (u, s)
  in
  let bu, bs = split base in
  let ou, os = split omos in
  Alcotest.(check bool) "baseline has more user time" true (bu > ou);
  Alcotest.(check bool) "omos has more system time" true (os > bs)

let test_reorder_speedup_band () =
  (* paper: >10% average; assert the cold-start speedup clears 10% *)
  let frags =
    List.concat_map Workloads.Libc_gen.split_objects Workloads.Libc_gen.section_names
  in
  (* trace via the monitor specializer *)
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let graph =
    Blueprint.Mgraph.Merge
      [
        Omos.Schemes.graph_of_objs (Omos.World.ls_client w);
        Blueprint.Mgraph.parse "(specialize \"monitor\" /lib/libc)";
      ]
  in
  let b = Omos.Server.build s @@ Omos.Server.static ~name:"ls-mon" graph in
  let p =
    Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ])
      ~args:Omos.World.ls_laf_args
  in
  ignore (Simos.Kernel.run w.Omos.World.kernel p ());
  let trace = Option.get (Omos.Specializers.last_trace w.Omos.World.specializers) in
  let reordered = Omos.Reorder.from_trace ~trace frags in
  let used = Omos.Monitor.first_call_order trace in
  let before = Omos.Reorder.prefix_text_pages frags used in
  let after = Omos.Reorder.prefix_text_pages reordered used in
  Alcotest.(check bool)
    (Printf.sprintf "working set shrinks >2x (%d -> %d pages)" before after)
    true
    (after * 2 < before)

let test_dispatch_table_exceeds_code_saved () =
  (* the Kohl/Paxson claim for small programs *)
  let w = Omos.World.create () in
  let client = Omos.World.ls_client w in
  let members =
    List.concat_map Workloads.Libc_gen.split_objects Workloads.Libc_gen.section_names
  in
  let pulled = Linker.Archive.select ~roots:client ~available:members in
  let code_saved =
    List.fold_left (fun a (o : Sof.Object_file.t) -> a + Sof.Object_file.total_size o) 0 pulled
  in
  let exports =
    List.fold_left
      (fun a (_, (o : Sof.Object_file.t)) ->
        a
        + List.length
            (List.filter
               (fun (s : Sof.Symbol.t) -> s.Sof.Symbol.kind = Sof.Symbol.Text)
               (Sof.Object_file.exported o)))
      0 (Workloads.Libc_gen.objects ())
  in
  let tables = Omos.Stubs.dispatch_bytes exports in
  Alcotest.(check bool)
    (Printf.sprintf "tables %d > code saved %d" tables code_saved)
    true (tables > code_saved)

let test_load_work_scales_with_references () =
  (* §4.1: "The amount of work required to load a cached executable is
     constant, where schemes that do dynamic link resolution ... must
     do work in proportion to the number of external references made by
     the client, every time the library is loaded." Vary the number of
     distinct library routines a client touches and compare the
     per-invocation cost growth of the two schemes. *)
  let client_calling k =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "int main() { int s; s = 0;\n";
    for i = 0 to k - 1 do
      Buffer.add_string buf (Printf.sprintf "  s = s + libc_hppa_%d(%d);\n" i i)
    done;
    Buffer.add_string buf "  return s & 63;\n}\n";
    [ Workloads.Crt0.obj ();
      Minic.Driver.compile ~name:(Printf.sprintf "/obj/cal%d.o" k) (Buffer.contents buf) ]
  in
  let per_invocation scheme_of k =
    let w = Omos.World.create () in
    let prog = scheme_of w (Printf.sprintf "cal%d" k) (client_calling k) in
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:[ "c" ]);
    let snap = Simos.Clock.snapshot w.Omos.World.kernel.Simos.Kernel.clock in
    for _ = 1 to 5 do
      ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:[ "c" ])
    done;
    let _, _, e = Simos.Clock.since w.Omos.World.kernel.Simos.Kernel.clock snap in
    e /. 5.0
  in
  let dynamic w name client =
    Omos.Schemes.dynamic_program w.Omos.World.rt ~name ~client ~libs:[ "/lib/libc" ]
  in
  let omos w name client =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name ~client
      ~libs:[ "/lib/libc" ] ()
  in
  (* growth from 4 to 48 referenced routines, net of the work the
     program itself does (identical under both schemes) *)
  let d_growth = per_invocation dynamic 48 -. per_invocation dynamic 4 in
  let o_growth = per_invocation omos 48 -. per_invocation omos 4 in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic grows %.0fus, omos grows %.0fus" d_growth o_growth)
    true
    (d_growth > 2.0 *. o_growth)

let test_static_link_write_dominated () =
  (* §2.1: the majority of static-link cost is writing the binary *)
  let w = Omos.World.create () in
  let k = w.Omos.World.kernel in
  let io0 = k.Simos.Kernel.clock.Simos.Clock.io in
  let sys0 = k.Simos.Kernel.clock.Simos.Clock.system in
  ignore
    (Omos.Schemes.static_program w.Omos.World.rt ~name:"codegen"
       ~client:(Omos.World.codegen_client w) ~libs:Omos.World.codegen_libs);
  let io = k.Simos.Kernel.clock.Simos.Clock.io -. io0 in
  let sys = k.Simos.Kernel.clock.Simos.Clock.system -. sys0 in
  Alcotest.(check bool) "write I/O dominates link cpu" true (io > sys)

let () =
  Alcotest.run "paper_claims"
    [
      ( "table1",
        [
          Alcotest.test_case "T1a parity" `Quick test_t1a;
          Alcotest.test_case "T1b -laF" `Quick test_t1b;
          Alcotest.test_case "T1c codegen" `Quick test_t1c;
          Alcotest.test_case "T1d mach" `Quick test_t1d;
          Alcotest.test_case "user/system structure" `Quick test_t1_user_system_structure;
        ] );
      ( "prose",
        [
          Alcotest.test_case "reorder working set" `Quick test_reorder_speedup_band;
          Alcotest.test_case "dispatch vs code saved" `Quick test_dispatch_table_exceeds_code_saved;
          Alcotest.test_case "load work scales with refs" `Quick test_load_work_scales_with_references;
          Alcotest.test_case "static link io" `Quick test_static_link_write_dominated;
        ] );
    ]
