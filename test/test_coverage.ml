(* Additional coverage: PCREL32 relocation application (unused by the
   compiler's code paths, but part of the format), the __icall builtin,
   kernel fd edge cases, cache eviction, and assorted corners. *)

let layout = { Linker.Link.text_base = 0x1000; data_base = 0x8000 }

(* -- PCREL32 relocations --------------------------------------------------- *)

let test_pcrel_text_cross_fragment () =
  (* fragment A branches pc-relative to a symbol in fragment B; the
     displacement is only computable at link time *)
  let a = Sof.Asm.create "a.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.instr a (Svm.Isa.Movi (5, 1l));
  Sof.Asm.instr_reloc a (Svm.Isa.Br 0l) Sof.Reloc.Pcrel32 "landing" 0;
  (* skipped if the branch works *)
  Sof.Asm.instr a (Svm.Isa.Movi (5, 99l));
  Sof.Asm.instr a Svm.Isa.Halt;
  let fa = Sof.Asm.finish a in
  let b = Sof.Asm.create "b.o" in
  Sof.Asm.label b "landing";
  Sof.Asm.instr b (Svm.Isa.Movi (6, 42l));
  Sof.Asm.instr b Svm.Isa.Halt;
  let fb = Sof.Asm.finish b in
  let img, _ = Linker.Link.link ~layout [ fa; fb ] in
  let mem, buf = Svm.Cpu.flat_mem 0x10000 in
  Linker.Image.load_into_flat img buf;
  let cpu = Svm.Cpu.create mem in
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  ignore (Svm.Cpu.run ~fuel:100 cpu);
  Alcotest.(check int32) "branch taken" 1l (Svm.Cpu.get_reg cpu 5);
  Alcotest.(check int32) "landed" 42l (Svm.Cpu.get_reg cpu 6)

let test_pcrel_with_addend () =
  (* branch to landing+8: skips the first instruction there *)
  let a = Sof.Asm.create "a.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.instr_reloc a (Svm.Isa.Br 0l) Sof.Reloc.Pcrel32 "landing" Svm.Isa.width;
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.label a "landing";
  Sof.Asm.instr a (Svm.Isa.Movi (5, 1l));
  Sof.Asm.instr a (Svm.Isa.Movi (6, 2l));
  Sof.Asm.instr a Svm.Isa.Halt;
  let img, _ = Linker.Link.link ~layout [ Sof.Asm.finish a ] in
  let mem, buf = Svm.Cpu.flat_mem 0x10000 in
  Linker.Image.load_into_flat img buf;
  let cpu = Svm.Cpu.create mem in
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  ignore (Svm.Cpu.run ~fuel:100 cpu);
  Alcotest.(check int32) "first skipped" 0l (Svm.Cpu.get_reg cpu 5);
  Alcotest.(check int32) "second ran" 2l (Svm.Cpu.get_reg cpu 6)

let test_pcrel_in_data () =
  (* a data word holding the pc-relative distance from itself to a
     symbol — the self-relative pointer idiom *)
  let a = Sof.Asm.create "d.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.data_label a "rel_ptr";
  let offset = Sof.Asm.here_data a in
  a.Sof.Asm.relocs <-
    Sof.Reloc.make ~target:Sof.Reloc.In_data ~offset ~kind:Sof.Reloc.Pcrel32 "target"
    :: a.Sof.Asm.relocs;
  Sof.Asm.data_word a 0l;
  Sof.Asm.data_label a "target";
  Sof.Asm.data_word a 77l;
  let img, _ = Linker.Link.link ~layout [ Sof.Asm.finish a ] in
  let mem, buf = Svm.Cpu.flat_mem 0x10000 in
  Linker.Image.load_into_flat img buf;
  let rel_addr = Option.get (Linker.Image.find_symbol img "rel_ptr") in
  let tgt_addr = Option.get (Linker.Image.find_symbol img "target") in
  let stored = Int32.to_int (mem.Svm.Cpu.load32 rel_addr) in
  Alcotest.(check int) "self-relative distance" (tgt_addr - rel_addr) stored

(* -- __icall ------------------------------------------------------------------ *)

let run_src src =
  let obj = Minic.Driver.compile ~name:"t.o" src in
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x20000 }
      [ Workloads.Crt0.obj (); obj ]
  in
  let k = Simos.Kernel.create () in
  let p = Simos.Kernel.create_process k ~args:[ "t" ] in
  Simos.Kernel.map_image k p ~key:"t" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  (Simos.Kernel.run k p (), Simos.Proc.stdout_contents p)

let test_icall_basic () =
  let code, _ =
    run_src
      "int triple(int x) { return x * 3; } \
       int main() { int f; f = triple; return __icall(f, 14); }"
  in
  Alcotest.(check int) "indirect call" 42 code

let test_icall_multiple_args () =
  let code, _ =
    run_src
      "int combine(int a, int b, int c) { return a * 100 + b * 10 + c; } \
       int main() { int f; f = combine; return __icall(f, 1, 2, 3) % 200; }"
  in
  Alcotest.(check int) "three args" 123 code

let test_icall_through_table () =
  (* function-pointer table dispatch *)
  let code, _ =
    run_src
      "int inc(int x) { return x + 1; } \
       int dec(int x) { return x - 1; } \
       int tbl[2]; \
       int main() { tbl[0] = inc; tbl[1] = dec; \
       return __icall(tbl[0], 10) + __icall(tbl[1], 10); }"
  in
  Alcotest.(check int) "table dispatch" 20 code

(* -- kernel fd corners ----------------------------------------------------------- *)

let test_fd_read_file_and_close () =
  let k = Simos.Kernel.create () in
  Simos.Fs.write_file k.Simos.Kernel.fs "/f" (Bytes.of_string "hello world");
  let a = Sof.Asm.create "r.o" in
  Sof.Asm.label a "_start";
  (* fd = open("/f") *)
  Sof.Asm.lea a 1 "path";
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_open));
  Sof.Asm.instr a (Svm.Isa.Mov (5, 0));
  (* read(fd, buf, 5) twice: sequential positions *)
  Sof.Asm.instr a (Svm.Isa.Mov (1, 5));
  Sof.Asm.lea a 2 "buf";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 5l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_read));
  Sof.Asm.instr a (Svm.Isa.Mov (1, 5));
  Sof.Asm.lea a 2 "buf2";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 6l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_read));
  (* close, then read again must fail (-1) *)
  Sof.Asm.instr a (Svm.Isa.Mov (1, 5));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_close));
  Sof.Asm.instr a (Svm.Isa.Mov (1, 5));
  Sof.Asm.lea a 2 "buf";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 1l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_read));
  Sof.Asm.instr a (Svm.Isa.Mov (6, 0));
  (* write both buffers to stdout *)
  Sof.Asm.instr a (Svm.Isa.Movi (1, 1l));
  Sof.Asm.lea a 2 "buf";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 5l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_write));
  Sof.Asm.instr a (Svm.Isa.Movi (1, 1l));
  Sof.Asm.lea a 2 "buf2";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 6l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_write));
  (* exit(read-after-close result + 10) *)
  Sof.Asm.instr a (Svm.Isa.Movi (2, 10l));
  Sof.Asm.instr a (Svm.Isa.Add (1, 6, 2));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_exit));
  Sof.Asm.data_label a "path";
  Sof.Asm.data_string a "/f";
  Sof.Asm.bss a "buf" 16;
  Sof.Asm.bss a "buf2" 16;
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x100000; data_base = 0x200000 }
      [ Sof.Asm.finish a ]
  in
  let p = Simos.Kernel.create_process k ~args:[ "r" ] in
  Simos.Kernel.map_image k p ~key:"r" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  let code = Simos.Kernel.run k p () in
  Alcotest.(check string) "sequential reads" "hello world" (Simos.Proc.stdout_contents p);
  Alcotest.(check int) "read after close = -1" 9 code

let test_write_bad_fd () =
  let k = Simos.Kernel.create () in
  let a = Sof.Asm.create "w.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.instr a (Svm.Isa.Movi (1, 7l));
  Sof.Asm.lea a 2 "msg";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 3l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_write));
  Sof.Asm.instr a (Svm.Isa.Movi (2, 5l));
  Sof.Asm.instr a (Svm.Isa.Add (1, 0, 2));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_exit));
  Sof.Asm.data_label a "msg";
  Sof.Asm.data_string a "abc";
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x100000; data_base = 0x200000 }
      [ Sof.Asm.finish a ]
  in
  let p = Simos.Kernel.create_process k ~args:[] in
  Simos.Kernel.map_image k p ~key:"w" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  (* write(7,...) returns -1; exit code = -1 + 5 = 4 *)
  Alcotest.(check int) "bad fd" 4 (Simos.Kernel.run k p ());
  Alcotest.(check string) "nothing written" "" (Simos.Proc.stdout_contents p)

(* -- cache eviction ------------------------------------------------------------------ *)

let dummy_image name size =
  let a = Sof.Asm.create name in
  Sof.Asm.label a "e";
  for _ = 1 to size do
    Sof.Asm.instr a Svm.Isa.Nop
  done;
  Sof.Asm.instr a Svm.Isa.Halt;
  fst
    (Linker.Link.link ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x40000 }
       [ Sof.Asm.finish a ])

let test_cache_eviction_by_use () =
  let c = Omos.Cache.create () in
  ignore (Omos.Cache.insert c ~key:"hot" ~text_base:0 ~data_base:0 (dummy_image "hot" 200));
  ignore (Omos.Cache.insert c ~key:"cold" ~text_base:0 ~data_base:0 (dummy_image "cold" 200));
  (* make "hot" popular *)
  for _ = 1 to 5 do
    ignore (Omos.Cache.find c "hot" ~acceptable:(fun _ -> true))
  done;
  let total = (Omos.Cache.stats c).Omos.Cache.disk_bytes_total in
  let victims = Omos.Cache.evict_to_budget c ~bytes:(total - 100) in
  Alcotest.(check bool) "something evicted" true (victims <> []);
  Alcotest.(check bool) "cold evicted first" true
    (List.exists (fun (e : Omos.Cache.entry) -> e.Omos.Cache.key = "cold") victims);
  Alcotest.(check bool) "hot survives" true (Omos.Cache.candidates c "hot" <> []);
  Alcotest.(check bool) "cold gone" true (Omos.Cache.candidates c "cold" = [])

let test_cache_eviction_noop_within_budget () =
  let c = Omos.Cache.create () in
  ignore (Omos.Cache.insert c ~key:"k" ~text_base:0 ~data_base:0 (dummy_image "k" 10));
  Alcotest.(check bool) "no eviction needed" true
    (Omos.Cache.evict_to_budget c ~bytes:1_000_000 = [])

(* -- ctor end-to-end: minic `ctor` + the initializers operator ------------- *)

let test_ctor_end_to_end () =
  (* a minic constructor must run before main when the program is built
     through (initializers ...) — the paper's C++ static-initializer
     story, §2.2/§3.3 *)
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/obj/crt0.o" (Workloads.Crt0.obj ());
  Omos.Server.add_fragment s "/obj/app.o"
    (Minic.Driver.compile ~name:"/obj/app.o"
       "int ready = 0; \
        ctor int setup() { ready = 41; return 0; } \
        int main() { return ready + 1; }");
  let graph =
    Blueprint.Mgraph.parse "(initializers (merge /obj/crt0.o /obj/app.o))"
  in
  let b = Omos.Server.build s @@ Omos.Server.static ~name:"ctors" graph in
  let p =
    Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ]) ~args:[ "c" ]
  in
  Alcotest.(check int) "ctor ran before main" 42
    (Simos.Kernel.run w.Omos.World.kernel p ());
  (* without the initializers operator, the weak empty __init wins and
     the constructor does not run *)
  let plain =
    Omos.Server.build s @@ Omos.Server.static ~name:"noctors"
      (Blueprint.Mgraph.parse "(merge /obj/crt0.o /obj/app.o)")
  in
  let p2 =
    Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ plain ]) ~args:[ "c" ]
  in
  Alcotest.(check int) "no initializers, no ctor" 1
    (Simos.Kernel.run w.Omos.World.kernel p2 ())

(* -- abs symbols through the pipeline ---------------------------------------- *)

let test_abs_symbols_link_and_execute () =
  let a = Sof.Asm.create "abs.o" in
  Sof.Asm.abs_symbol a "MAGIC" 0x1234;
  Sof.Asm.label a "_start";
  Sof.Asm.lea a 5 "MAGIC";
  Sof.Asm.instr a Svm.Isa.Halt;
  let img, _ = Linker.Link.link ~layout [ Sof.Asm.finish a ] in
  Alcotest.(check (option int)) "abs in symtab" (Some 0x1234)
    (Linker.Image.find_symbol img "MAGIC");
  let mem, buf = Svm.Cpu.flat_mem 0x10000 in
  Linker.Image.load_into_flat img buf;
  let cpu = Svm.Cpu.create mem in
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  ignore (Svm.Cpu.run ~fuel:10 cpu);
  Alcotest.(check int32) "abs loaded" 0x1234l (Svm.Cpu.get_reg cpu 5)

(* -- image codec ---------------------------------------------------------------- *)

let prop_image_codec_roundtrip =
  QCheck.Test.make ~count:40 ~name:"image encode/decode roundtrip"
    (QCheck.int_range 1 40)
    (fun n ->
      let a = Sof.Asm.create "r.o" in
      Sof.Asm.label a "_start";
      for i = 1 to n do
        Sof.Asm.instr a (Svm.Isa.Movi (1, Int32.of_int i))
      done;
      Sof.Asm.instr a Svm.Isa.Halt;
      Sof.Asm.data_label a "d";
      Sof.Asm.data_word a (Int32.of_int n);
      Sof.Asm.bss a "b" (n * 8);
      let img, _ = Linker.Link.link ~layout [ Sof.Asm.finish a ] in
      let img' = Linker.Image.decode (Linker.Image.encode img) in
      Linker.Image.digest img = Linker.Image.digest img'
      && img'.Linker.Image.entry = img.Linker.Image.entry
      && img'.Linker.Image.symtab = img.Linker.Image.symtab)

(* -- argv edge cases --------------------------------------------------------------- *)

let test_argv_overflow_returns_error () =
  let k = Simos.Kernel.create () in
  let a = Sof.Asm.create "av.o" in
  Sof.Asm.label a "_start";
  (* getarg(0, buf, 2): "longname" does not fit -> -1 *)
  Sof.Asm.instr a (Svm.Isa.Movi (1, 0l));
  Sof.Asm.lea a 2 "buf";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 2l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_argv));
  Sof.Asm.instr a (Svm.Isa.Movi (2, 3l));
  Sof.Asm.instr a (Svm.Isa.Add (1, 0, 2));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_exit));
  Sof.Asm.bss a "buf" 8;
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x100000; data_base = 0x200000 }
      [ Sof.Asm.finish a ]
  in
  let p = Simos.Kernel.create_process k ~args:[ "longname" ] in
  Simos.Kernel.map_image k p ~key:"av" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  (* -1 + 3 = 2 *)
  Alcotest.(check int) "overflow -> -1" 2 (Simos.Kernel.run k p ())

(* -- lib-dynamic-impl specializer ----------------------------------------------------- *)

let test_lib_dynamic_impl_is_full_library () =
  let w = Omos.World.create () in
  let r =
    Omos.Server.eval w.Omos.World.server
      (Blueprint.Mgraph.parse "(specialize \"lib-dynamic-impl\" /lib/libc)")
  in
  Alcotest.(check bool) "real implementation" true
    (List.mem "strlen" (Jigsaw.Module_ops.exports r.Blueprint.Mgraph.m));
  let text =
    List.fold_left
      (fun a (o : Sof.Object_file.t) -> a + Bytes.length o.Sof.Object_file.text)
      0
      (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
  in
  Alcotest.(check bool) "full code, not stubs" true (text > 100_000)

(* -- failure injection ----------------------------------------------------------- *)

let test_corrupted_executable_rejected () =
  let k = Simos.Kernel.create () in
  Simos.Fs.mkdir_p k.Simos.Kernel.fs "/bin";
  (* a valid image, truncated on disk *)
  let a = Sof.Asm.create "x.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.instr a Svm.Isa.Halt;
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x8000 }
      [ Sof.Asm.finish a ]
  in
  let full = Linker.Image.encode img in
  Simos.Fs.write_file k.Simos.Kernel.fs "/bin/x"
    (Bytes.sub full 0 (Bytes.length full / 2));
  (try
     ignore (Simos.Kernel.exec k ~path:"/bin/x" ~args:[]);
     Alcotest.fail "expected Exec_error"
   with Simos.Kernel.Exec_error _ -> ());
  (* garbage entirely *)
  Simos.Fs.write_file k.Simos.Kernel.fs "/bin/junk" (Bytes.of_string "not an image");
  try
    ignore (Simos.Kernel.exec k ~path:"/bin/junk" ~args:[]);
    Alcotest.fail "expected Exec_error"
  with Simos.Kernel.Exec_error _ -> ()

let test_stack_overflow_faults () =
  (* runaway recursion runs off the 256 KB stack region and faults
     instead of silently corrupting neighbouring memory *)
  let obj =
    Minic.Driver.compile ~name:"deep.o"
      "int down(int n) { return down(n + 1); } int main() { return down(0); }"
  in
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x20000 }
      [ Workloads.Crt0.obj (); obj ]
  in
  let k = Simos.Kernel.create () in
  let p = Simos.Kernel.create_process k ~args:[ "deep" ] in
  Simos.Kernel.map_image k p ~key:"deep" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  try
    ignore (Simos.Kernel.run k p ());
    Alcotest.fail "expected a fault"
  with Simos.Addr_space.Fault _ -> ()

(* -- layout independence ------------------------------------------------------------ *)

let prop_fragment_order_is_behaviour_invariant =
  (* shuffling the library members changes every address, but a fully
     symbolic program must behave identically *)
  QCheck.Test.make ~count:15 ~name:"library member order does not change behaviour"
    (QCheck.int_range 1 10000)
    (fun seed ->
      let members = List.map snd (Workloads.Libc_gen.objects ()) in
      (* deterministic shuffle from the seed *)
      let arr = Array.of_list members in
      let st = ref seed in
      for i = Array.length arr - 1 downto 1 do
        st := ((!st * 48271) + 13) land 0xFFFFFF;
        let j = !st mod (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      let run frags =
        let roots =
          [ Workloads.Crt0.obj ();
            Minic.Driver.compile ~name:"m.o"
              "int main() { putint(imax(3, strlen(\"hello\"))); putstr(\"!\"); return 0; }" ]
        in
        let img, _ =
          Linker.Link.link
            ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x40000000 }
            (roots @ frags)
        in
        let k = Simos.Kernel.create () in
        let p = Simos.Kernel.create_process k ~args:[ "m" ] in
        Simos.Kernel.map_image k p ~key:(string_of_int seed) img;
        Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
        let code = Simos.Kernel.run k p () in
        (code, Simos.Proc.stdout_contents p)
      in
      run members = run (Array.to_list arr))

(* -- misc corners ----------------------------------------------------------------------- *)

let test_minic_deep_expression () =
  (* stack-machine codegen must handle deep nesting *)
  let expr = String.concat "" (List.init 40 (fun _ -> "(1 + ")) ^ "2"
             ^ String.concat "" (List.init 40 (fun _ -> ")")) in
  let code, _ = run_src (Printf.sprintf "int main() { return (%s) %% 64; }" expr) in
  Alcotest.(check int) "deep nesting" (42 mod 64) code

let test_minic_args_evaluated_left_to_right () =
  let code, _ =
    run_src
      "int g = 0; \
       int bump(int v) { g = g * 10 + v; return v; } \
       int three(int a, int b, int c) { return g; } \
       int main() { return three(bump(1), bump(2), bump(3)); }"
  in
  (* arguments are pushed right-to-left but each argument expression is
     evaluated at push time: order is 3, 2, 1 *)
  Alcotest.(check int) "evaluation order" 321 code

let test_view_depth_and_push_cheapness () =
  let o = Minic.Driver.compile ~name:"v.o" "int f() { return 1; }" in
  let v = ref (Sof.View.of_object o) in
  for i = 1 to 100 do
    v := Sof.View.push !v
        (Sof.View.Copy_defs (fun n -> if n = "f" then Some (Printf.sprintf "f%d" i) else None))
  done;
  Alcotest.(check int) "depth" 100 (Sof.View.depth !v);
  let m = Sof.View.materialize !v in
  Alcotest.(check bool) "all copies present" true (Sof.Object_file.defines m "f100");
  Alcotest.(check bool) "bytes still shared" true
    (m.Sof.Object_file.text == o.Sof.Object_file.text)

let () =
  Alcotest.run "coverage"
    [
      ( "pcrel",
        [
          Alcotest.test_case "cross fragment" `Quick test_pcrel_text_cross_fragment;
          Alcotest.test_case "with addend" `Quick test_pcrel_with_addend;
          Alcotest.test_case "in data" `Quick test_pcrel_in_data;
        ] );
      ( "icall",
        [
          Alcotest.test_case "basic" `Quick test_icall_basic;
          Alcotest.test_case "multiple args" `Quick test_icall_multiple_args;
          Alcotest.test_case "table" `Quick test_icall_through_table;
        ] );
      ( "fds",
        [
          Alcotest.test_case "read/close" `Quick test_fd_read_file_and_close;
          Alcotest.test_case "bad fd write" `Quick test_write_bad_fd;
        ] );
      ( "cache-eviction",
        [
          Alcotest.test_case "least-used first" `Quick test_cache_eviction_by_use;
          Alcotest.test_case "noop within budget" `Quick test_cache_eviction_noop_within_budget;
        ] );
      ( "integration",
        [
          Alcotest.test_case "ctor end-to-end" `Quick test_ctor_end_to_end;
          Alcotest.test_case "abs symbols" `Quick test_abs_symbols_link_and_execute;
          Alcotest.test_case "argv overflow" `Quick test_argv_overflow_returns_error;
          Alcotest.test_case "lib-dynamic-impl" `Quick test_lib_dynamic_impl_is_full_library;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "corrupted executables" `Quick test_corrupted_executable_rejected;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow_faults;
        ] );
      ( "misc",
        [
          Alcotest.test_case "deep expressions" `Quick test_minic_deep_expression;
          Alcotest.test_case "argument order" `Quick test_minic_args_evaluated_left_to_right;
          Alcotest.test_case "view stacking" `Quick test_view_depth_and_push_cheapness;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_image_codec_roundtrip; prop_fragment_order_is_behaviour_invariant ] );
    ]
