(* Tests of the blueprint layer: s-expression reader, m-graph
   construction, evaluation, specialization, and meta-object files. *)

let sel = Jigsaw.Select.compile

let _ = sel

(* tiny fragments for resolution *)
let frag_f () =
  let a = Sof.Asm.create "/obj/f.o" in
  Sof.Asm.label a "f";
  Sof.Asm.instrs a [ Svm.Isa.Movi (0, 7l); Svm.Isa.Ret ];
  Sof.Asm.finish a

let frag_main () =
  let a = Sof.Asm.create "/obj/main.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.call a "f";
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.finish a

let env_with_frags () =
  let table = Hashtbl.create 8 in
  Hashtbl.replace table "/obj/f.o" (frag_f ());
  Hashtbl.replace table "/obj/main.o" (frag_main ());
  Blueprint.Mgraph.make_env
    ~resolve:(fun path ->
      match Hashtbl.find_opt table path with
      | Some o -> Blueprint.Mgraph.Leaf o
      | None -> raise (Blueprint.Mgraph.Eval_error ("unknown " ^ path)))
    ()

(* -- sexp ---------------------------------------------------------------- *)

let test_sexp_atoms () =
  (match Blueprint.Sexp.parse_one "/lib/libc" with
  | Blueprint.Sexp.Sym "/lib/libc" -> ()
  | _ -> Alcotest.fail "sym");
  (match Blueprint.Sexp.parse_one "0x100000" with
  | Blueprint.Sexp.Int 0x100000 -> ()
  | _ -> Alcotest.fail "hex int");
  (match Blueprint.Sexp.parse_one "\"a b\"" with
  | Blueprint.Sexp.Str "a b" -> ()
  | _ -> Alcotest.fail "string");
  match Blueprint.Sexp.parse_one "(merge /a /b)" with
  | Blueprint.Sexp.List [ Blueprint.Sexp.Sym "merge"; Blueprint.Sexp.Sym "/a"; Blueprint.Sexp.Sym "/b" ] -> ()
  | _ -> Alcotest.fail "list"

let test_sexp_comments_and_nesting () =
  let src = "(merge ; a comment\n  /a (override /b /c)) ; trailing" in
  match Blueprint.Sexp.parse_one src with
  | Blueprint.Sexp.List
      [ Blueprint.Sexp.Sym "merge"; Blueprint.Sexp.Sym "/a";
        Blueprint.Sexp.List [ Blueprint.Sexp.Sym "override"; Blueprint.Sexp.Sym "/b"; Blueprint.Sexp.Sym "/c" ] ] ->
      ()
  | s -> Alcotest.failf "got %s" (Blueprint.Sexp.to_string s)

let test_sexp_errors () =
  let expect src =
    try
      ignore (Blueprint.Sexp.parse_one src);
      Alcotest.fail ("no error for " ^ src)
    with Blueprint.Sexp.Parse_error _ -> ()
  in
  expect "(merge /a";
  expect "\"unterminated";
  expect ")";
  expect "(a) trailing"

let test_sexp_parse_many () =
  let forms = Blueprint.Sexp.parse_many "(a 1)\n;; c\n(b 2)" in
  Alcotest.(check int) "two forms" 2 (List.length forms)

let test_sexp_roundtrip_pp () =
  let src = "(specialize \"lib-constrained\" (list \"T\" 0x1000000) /lib/libc)" in
  let s = Blueprint.Sexp.parse_one src in
  let s2 = Blueprint.Sexp.parse_one (Blueprint.Sexp.to_string s) in
  Alcotest.(check bool) "pp roundtrip" true (s = s2)

(* -- mgraph construction -------------------------------------------------- *)

let test_graph_figure1 () =
  (* the paper's ls meta-object *)
  let g = Blueprint.Mgraph.parse "(merge /lib/crt0.o /obj/ls.o /lib/libc)" in
  match g with
  | Blueprint.Mgraph.Merge
      [ Blueprint.Mgraph.Name "/lib/crt0.o"; Blueprint.Mgraph.Name "/obj/ls.o";
        Blueprint.Mgraph.Name "/lib/libc" ] ->
      ()
  | _ -> Alcotest.fail "unexpected graph"

let test_graph_figure2_shape () =
  (* Figure 2 parses into the interposition graph *)
  let src =
    "(hide \"_REAL_malloc\"\n\
     (merge\n\
     (restrict \"^_malloc$\"\n\
     (copy_as \"^_malloc$\" \"_REAL_malloc\"\n\
     (merge /bin/ls.o /lib/libc.o)))\n\
     /lib/test_malloc.o))"
  in
  match Blueprint.Mgraph.parse src with
  | Blueprint.Mgraph.Hide (_, Blueprint.Mgraph.Merge [ Blueprint.Mgraph.Restrict (_, _); _ ]) -> ()
  | _ -> Alcotest.fail "unexpected graph"

let test_graph_bad_op () =
  try
    ignore (Blueprint.Mgraph.parse "(frobnicate /a)");
    Alcotest.fail "expected error"
  with Blueprint.Mgraph.Eval_error _ -> ()

let test_graph_hyphen_normalization () =
  match Blueprint.Mgraph.parse "(copy-as \"^a$\" \"b\" /obj/f.o)" with
  | Blueprint.Mgraph.Copy_as ("^a$", "b", _) -> ()
  | _ -> Alcotest.fail "hyphen operator not normalized"

(* -- evaluation ------------------------------------------------------------ *)

let test_eval_merge_and_names () =
  let env = env_with_frags () in
  let g = Blueprint.Mgraph.parse "(merge /obj/main.o /obj/f.o)" in
  let r = Blueprint.Mgraph.eval env g in
  Alcotest.(check (list string)) "nothing undefined" []
    (Jigsaw.Module_ops.undefined r.Blueprint.Mgraph.m)

let test_eval_source_operator () =
  let env = env_with_frags () in
  let g =
    Blueprint.Mgraph.parse "(source \"c\" \"int undef_var = 0;\")"
  in
  let r = Blueprint.Mgraph.eval env g in
  Alcotest.(check bool) "defines undef_var" true
    (List.mem "undef_var" (Jigsaw.Module_ops.exports r.Blueprint.Mgraph.m))

let test_eval_figure3 () =
  (* Figure 3: source fills a data hole; rename reroutes a routine *)
  let broken =
    let a = Sof.Asm.create "/lib/lib-with-problems" in
    Sof.Asm.label a "entry";
    Sof.Asm.lea a 2 "undef_var";
    Sof.Asm.call a "_undefined_routine";
    Sof.Asm.instr a Svm.Isa.Ret;
    Sof.Asm.finish a
  in
  let env =
    Blueprint.Mgraph.make_env
      ~resolve:(fun path ->
        if path = "/lib/lib-with-problems" then Blueprint.Mgraph.Leaf broken
        else raise (Blueprint.Mgraph.Eval_error "unknown"))
      ()
  in
  let g =
    Blueprint.Mgraph.parse
      "(merge (source \"c\" \"int undef_var = 0;\")\n\
       (rename \"^_undefined_routine$\" \"_abort\" /lib/lib-with-problems))"
  in
  let r = Blueprint.Mgraph.eval env g in
  Alcotest.(check (list string)) "only _abort missing" [ "_abort" ]
    (Jigsaw.Module_ops.undefined r.Blueprint.Mgraph.m)

let test_eval_constrain_collects_prefs () =
  let env = env_with_frags () in
  let g = Blueprint.Mgraph.parse "(constrain \"T\" 0x200000 /obj/f.o)" in
  let r = Blueprint.Mgraph.eval env g in
  Alcotest.(check bool) "text prefs present" true
    (List.exists
       (fun (c : Blueprint.Mgraph.constraint_pref) ->
         c.Blueprint.Mgraph.seg = Blueprint.Mgraph.Seg_text
         && c.pref = Constraints.Placement.At 0x200000)
       r.Blueprint.Mgraph.constraints)

let test_eval_lib_constrained_spec () =
  let env = env_with_frags () in
  let g =
    Blueprint.Mgraph.parse
      "(specialize \"lib-constrained\" (list \"T\" 0x1000000) /obj/f.o)"
  in
  let r = Blueprint.Mgraph.eval env g in
  Alcotest.(check bool) "constraint attached" true
    (List.exists
       (fun (c : Blueprint.Mgraph.constraint_pref) ->
         c.Blueprint.Mgraph.pref = Constraints.Placement.At 0x1000000)
       r.Blueprint.Mgraph.constraints)

let test_eval_unknown_spec () =
  let env = env_with_frags () in
  let g = Blueprint.Mgraph.parse "(specialize \"no-such-style\" /obj/f.o)" in
  try
    ignore (Blueprint.Mgraph.eval env g);
    Alcotest.fail "expected error"
  with Blueprint.Mgraph.Eval_error _ -> ()

let test_eval_cycle_detection () =
  let env =
    Blueprint.Mgraph.make_env
      ~resolve:(fun _ -> Blueprint.Mgraph.parse "(merge /self)")
      ()
  in
  try
    ignore (Blueprint.Mgraph.eval env (Blueprint.Mgraph.Name "/self"));
    Alcotest.fail "expected cycle error"
  with Blueprint.Mgraph.Eval_error msg ->
    Alcotest.(check bool) "mentions cycle" true
      (Str.string_match (Str.regexp ".*cyclic.*") msg 0)

let test_eval_list_flattening () =
  let env = env_with_frags () in
  let g = Blueprint.Mgraph.parse "(merge (list /obj/main.o /obj/f.o))" in
  let r = Blueprint.Mgraph.eval env g in
  Alcotest.(check (list string)) "resolved" []
    (Jigsaw.Module_ops.undefined r.Blueprint.Mgraph.m)

(* -- graph utilities --------------------------------------------------------- *)

let test_names_extraction () =
  let g = Blueprint.Mgraph.parse "(merge /a (override /b (hide \"x\" /c)))" in
  Alcotest.(check (list string)) "names" [ "/a"; "/b"; "/c" ] (Blueprint.Mgraph.names g)

let test_digest_stability_and_sensitivity () =
  let g1 = Blueprint.Mgraph.parse "(merge /a /b)" in
  let g2 = Blueprint.Mgraph.parse "(merge /a /b)" in
  let g3 = Blueprint.Mgraph.parse "(merge /b /a)" in
  Alcotest.(check string) "stable" (Blueprint.Mgraph.digest g1) (Blueprint.Mgraph.digest g2);
  Alcotest.(check bool) "order-sensitive" true
    (Blueprint.Mgraph.digest g1 <> Blueprint.Mgraph.digest g3)

(* -- meta files ---------------------------------------------------------------- *)

let test_meta_figure1 () =
  let src =
    "(constraint-list \"T\" 0x100000 \"D\" 0x40200000) ; default address constraint\n\
     (merge\n\
     /libc/gen /libc/stdio /libc/string /libc/stdlib\n\
     /libc/hppa /libc/net /libc/quad /libc/rpc)"
  in
  let meta = Blueprint.Meta.parse ~name:"/lib/libc" src in
  Alcotest.(check int) "two constraints" 2 (List.length meta.Blueprint.Meta.constraints);
  match Blueprint.Meta.effective_graph meta ~spec:None with
  | Blueprint.Mgraph.Constrain (_, _, Blueprint.Mgraph.Constrain (_, _, Blueprint.Mgraph.Merge ops)) ->
      Alcotest.(check int) "eight members" 8 (List.length ops)
  | _ -> Alcotest.fail "unexpected effective graph"

let test_meta_default_spec () =
  let src = "(default-specialization \"lib-dynamic\")\n(merge /obj/f.o)" in
  let meta = Blueprint.Meta.parse ~name:"/lib/x" src in
  (match meta.Blueprint.Meta.default_spec with
  | Some ("lib-dynamic", []) -> ()
  | _ -> Alcotest.fail "default spec missing");
  (* explicit request beats the default *)
  match Blueprint.Meta.effective_graph meta ~spec:(Some ("identity", [])) with
  | Blueprint.Mgraph.Specialize ("identity", _, _) -> ()
  | _ -> Alcotest.fail "explicit spec should win"

let test_meta_multiple_roots_merged () =
  let meta = Blueprint.Meta.parse ~name:"/m" "(merge /a)\n(merge /b)" in
  match meta.Blueprint.Meta.root with
  | Blueprint.Mgraph.Merge [ _; _ ] -> ()
  | _ -> Alcotest.fail "roots not merged"

let test_meta_empty_fails () =
  try
    ignore (Blueprint.Meta.parse ~name:"/m" "; nothing here\n");
    Alcotest.fail "expected Meta_error"
  with Blueprint.Meta.Meta_error _ -> ()

let test_meta_digest_varies_with_spec () =
  let meta = Blueprint.Meta.parse ~name:"/m" "(merge /a)" in
  let d1 = Blueprint.Meta.digest meta ~spec:None in
  let d2 = Blueprint.Meta.digest meta ~spec:(Some ("identity", [])) in
  Alcotest.(check bool) "spec in key" true (d1 <> d2)

let test_meta_duplicate_constraint_segment () =
  let expect src =
    try
      ignore (Blueprint.Meta.parse ~name:"/m" src);
      Alcotest.fail "expected Meta_error"
    with Blueprint.Meta.Meta_error msg ->
      Alcotest.(check bool) "names the segment" true
        (Astring.String.is_infix ~affix:"duplicate constraint-list segment" msg)
  in
  (* within one constraint-list *)
  expect "(constraint-list \"T\" 0x1000 \"T\" 0x2000)\n(merge /a)";
  (* across several, and case-insensitively: "t" is segment T too *)
  expect "(constraint-list \"T\" 0x1000)\n(constraint-list \"t\" 0x2000)\n(merge /a)";
  (* distinct segments still parse *)
  let m =
    Blueprint.Meta.parse ~name:"/m"
      "(constraint-list \"T\" 0x1000 \"D\" 0x2000)\n(merge /a)"
  in
  Alcotest.(check int) "two segments" 2
    (List.length m.Blueprint.Meta.constraints)

let () =
  Alcotest.run "blueprint"
    [
      ( "sexp",
        [
          Alcotest.test_case "atoms" `Quick test_sexp_atoms;
          Alcotest.test_case "comments+nesting" `Quick test_sexp_comments_and_nesting;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          Alcotest.test_case "parse_many" `Quick test_sexp_parse_many;
          Alcotest.test_case "pp roundtrip" `Quick test_sexp_roundtrip_pp;
        ] );
      ( "graph",
        [
          Alcotest.test_case "figure 1" `Quick test_graph_figure1;
          Alcotest.test_case "figure 2 shape" `Quick test_graph_figure2_shape;
          Alcotest.test_case "bad op" `Quick test_graph_bad_op;
          Alcotest.test_case "hyphen ops" `Quick test_graph_hyphen_normalization;
          Alcotest.test_case "names" `Quick test_names_extraction;
          Alcotest.test_case "digest" `Quick test_digest_stability_and_sensitivity;
        ] );
      ( "eval",
        [
          Alcotest.test_case "merge+resolve" `Quick test_eval_merge_and_names;
          Alcotest.test_case "source" `Quick test_eval_source_operator;
          Alcotest.test_case "figure 3" `Quick test_eval_figure3;
          Alcotest.test_case "constrain" `Quick test_eval_constrain_collects_prefs;
          Alcotest.test_case "lib-constrained" `Quick test_eval_lib_constrained_spec;
          Alcotest.test_case "unknown spec" `Quick test_eval_unknown_spec;
          Alcotest.test_case "cycles" `Quick test_eval_cycle_detection;
          Alcotest.test_case "list flattening" `Quick test_eval_list_flattening;
        ] );
      ( "meta",
        [
          Alcotest.test_case "figure 1 meta" `Quick test_meta_figure1;
          Alcotest.test_case "default spec" `Quick test_meta_default_spec;
          Alcotest.test_case "multiple roots" `Quick test_meta_multiple_roots_merged;
          Alcotest.test_case "empty" `Quick test_meta_empty_fails;
          Alcotest.test_case "digest spec" `Quick test_meta_digest_varies_with_spec;
          Alcotest.test_case "duplicate constraint segment" `Quick
            test_meta_duplicate_constraint_segment;
        ] );
    ]
