(* Health window and SLO gate tests. *)

module H = Telemetry.Health

let reset () = Telemetry.reset ()

let test_empty_snapshot () =
  reset ();
  let s = H.snapshot () in
  Alcotest.(check int) "requests" 0 s.H.requests;
  Alcotest.(check int) "window" 0 s.H.window;
  Alcotest.(check (float 0.0)) "hit ratio defaults high" 1.0 s.H.hit_ratio;
  Alcotest.(check (float 0.0)) "p95" 0.0 s.H.p95_us

let test_basic_stats () =
  reset ();
  H.record ~hit:false ~cost_us:100.0 ();
  H.record ~hit:true ~cost_us:0.0 ();
  H.record ~hit:true ~cost_us:0.0 ();
  H.record ~hit:false ~cost_us:300.0 ();
  let s = H.snapshot () in
  Alcotest.(check int) "requests" 4 s.H.requests;
  Alcotest.(check int) "window" 4 s.H.window;
  Alcotest.(check (float 1e-6)) "hit ratio" 0.5 s.H.hit_ratio;
  Alcotest.(check (float 1e-6)) "mean" 100.0 s.H.mean_us;
  Alcotest.(check (float 1e-6)) "max" 300.0 s.H.max_us;
  Alcotest.(check (float 1e-6)) "p99 = max" 300.0 s.H.p99_us;
  Alcotest.(check (float 1e-6)) "p50" 0.0 s.H.p50_us

let test_window_rolls () =
  reset ();
  (* 300 misses at 10us, then window_cap hits at 1us: the window only
     sees the recent hits *)
  for _ = 1 to 300 do
    H.record ~hit:false ~cost_us:10.0 ()
  done;
  for _ = 1 to H.window_cap do
    H.record ~hit:true ~cost_us:1.0 ()
  done;
  let s = H.snapshot () in
  Alcotest.(check int) "requests counts all" (300 + H.window_cap) s.H.requests;
  Alcotest.(check int) "window capped" H.window_cap s.H.window;
  Alcotest.(check (float 1e-6)) "window all hits" 1.0 s.H.hit_ratio;
  Alcotest.(check (float 1e-6)) "window costs" 1.0 s.H.max_us

let test_conflict_rate_from_counter () =
  reset ();
  let c = Telemetry.Counter.make "server.arena_conflicts" in
  H.record ~hit:true ~cost_us:1.0 ();
  Telemetry.Counter.incr c;
  H.record ~hit:true ~cost_us:1.0 ();
  Telemetry.Counter.incr c;
  H.record ~hit:true ~cost_us:1.0 ();
  H.record ~hit:true ~cost_us:1.0 ();
  let s = H.snapshot () in
  (* 2 conflicts across a 4-request window *)
  Alcotest.(check (float 1e-6)) "conflict rate" 0.5 s.H.conflict_rate;
  Alcotest.(check (float 1e-6)) "violation rate" 0.0 s.H.violation_rate

let test_parse_slo () =
  let slo =
    H.parse_slo
      "# comment\nhit_ratio_min 0.5\np95_us_max 200\np99_us_max 400\n\
       conflict_rate_max 0.1\nviolation_rate_max 0\n"
  in
  Alcotest.(check (option (float 0.0))) "hit" (Some 0.5) slo.H.hit_ratio_min;
  Alcotest.(check (option (float 0.0))) "p95" (Some 200.0) slo.H.p95_us_max;
  Alcotest.(check (option (float 0.0))) "p99" (Some 400.0) slo.H.p99_us_max;
  Alcotest.(check (option (float 0.0)))
    "conflicts" (Some 0.1) slo.H.conflict_rate_max;
  Alcotest.(check (option (float 0.0)))
    "violations" (Some 0.0) slo.H.violation_rate_max;
  let empty = H.parse_slo "# only comments\n" in
  Alcotest.(check bool) "all optional" true (empty = H.empty_slo);
  (try
     ignore (H.parse_slo "p95_us_maximum 5\n");
     Alcotest.fail "unknown key accepted"
   with H.Slo_error _ -> ());
  try
    ignore (H.parse_slo "p95_us_max banana\n");
    Alcotest.fail "bad value accepted"
  with H.Slo_error _ -> ()

let test_check_and_ok () =
  reset ();
  H.record ~hit:true ~cost_us:10.0 ();
  H.record ~hit:false ~cost_us:500.0 ();
  let snap = H.snapshot () in
  let pass = H.parse_slo "hit_ratio_min 0.3\np95_us_max 1000\n" in
  let checks = H.check pass snap in
  Alcotest.(check int) "one row per bound" 2 (List.length checks);
  Alcotest.(check bool) "passes" true (H.ok checks);
  let fail = H.parse_slo "hit_ratio_min 0.9\np95_us_max 1000\n" in
  let checks = H.check fail snap in
  Alcotest.(check bool) "fails" false (H.ok checks);
  let bad =
    List.filter (fun (_, _, _, ok) -> not ok) checks |> List.map (fun (n, _, _, _) -> n)
  in
  Alcotest.(check (list string)) "the breached bound" [ "hit_ratio_min" ] bad

let () =
  Alcotest.run "health"
    [
      ( "window",
        [
          Alcotest.test_case "empty" `Quick test_empty_snapshot;
          Alcotest.test_case "basic stats" `Quick test_basic_stats;
          Alcotest.test_case "rolls over" `Quick test_window_rolls;
          Alcotest.test_case "conflict rate" `Quick
            test_conflict_rate_from_counter;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse" `Quick test_parse_slo;
          Alcotest.test_case "check" `Quick test_check_and_ok;
        ] );
    ]
