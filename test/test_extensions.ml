(* Tests of the extension features the paper lists as related/future
   work, implemented here: the second object format + BFD-style switch
   (§7), dynamic unlinking (§9, "could be added"), partial-image
   interface versioning (§4.2, "should be implemented"), and
   constraint-conflict recording/feedback (§4.1). *)

let compile name src = Minic.Driver.compile ~name src

let sample_object () =
  let a = Sof.Asm.create "/obj/sample.o" in
  Sof.Asm.label a "fn";
  Sof.Asm.call a "ext";
  Sof.Asm.lea a 2 "tbl";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.label ~binding:Sof.Symbol.Weak a "weak_fn";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.label ~binding:Sof.Symbol.Local a "local_fn";
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.data_label a "tbl";
  Sof.Asm.data_word a 7l;
  Sof.Asm.data_word_sym a ~addend:4 "fn";
  Sof.Asm.bss a "buf" 100;
  Sof.Asm.ctor a "fn";
  Sof.Asm.finish a

(* -- a.out backend ---------------------------------------------------------- *)

let objects_equal (a : Sof.Object_file.t) (b : Sof.Object_file.t) : bool =
  a.Sof.Object_file.name = b.Sof.Object_file.name
  && Bytes.equal a.Sof.Object_file.text b.Sof.Object_file.text
  && Bytes.equal a.Sof.Object_file.data b.Sof.Object_file.data
  && a.Sof.Object_file.bss_size = b.Sof.Object_file.bss_size
  && a.Sof.Object_file.symbols = b.Sof.Object_file.symbols
  && a.Sof.Object_file.relocs = b.Sof.Object_file.relocs
  && a.Sof.Object_file.ctors = b.Sof.Object_file.ctors

let test_aout_roundtrip () =
  let o = sample_object () in
  let o' = Sof.Aout.decode (Sof.Aout.encode o) in
  Alcotest.(check bool) "roundtrip exact" true (objects_equal o o')

let test_aout_roundtrip_compiled () =
  let o = compile "/obj/c.o" "int g = 9; int f(int x) { return x + g; }" in
  Alcotest.(check bool) "compiled roundtrip" true
    (objects_equal o (Sof.Aout.decode (Sof.Aout.encode o)))

let test_aout_string_interning () =
  (* the same name used as symbol + reloc target + ctor appears once in
     the string table; the file stays compact *)
  let o = sample_object () in
  let encoded = Sof.Aout.encode o in
  let native = Sof.Codec.encode o in
  Alcotest.(check bool) "within 2x of native" true
    (Bytes.length encoded < 2 * Bytes.length native + 256)

let test_aout_errors () =
  (try
     ignore (Sof.Aout.decode (Bytes.of_string "NOPE"));
     Alcotest.fail "expected error"
   with Sof.Aout.Decode_error _ -> ());
  let full = Sof.Aout.encode (sample_object ()) in
  try
    ignore (Sof.Aout.decode (Bytes.sub full 0 (Bytes.length full - 10)));
    Alcotest.fail "expected error"
  with Sof.Aout.Decode_error _ -> ()

(* -- bfd switch --------------------------------------------------------------- *)

let test_bfd_detect_and_decode () =
  let o = sample_object () in
  let native = Sof.Codec.encode o in
  let aout = Sof.Aout.encode o in
  Alcotest.(check bool) "native detected" true (Sof.Bfd.detect native = Some Sof.Bfd.Native);
  Alcotest.(check bool) "aout detected" true (Sof.Bfd.detect aout = Some Sof.Bfd.Aout_style);
  Alcotest.(check bool) "junk rejected" true (Sof.Bfd.detect (Bytes.of_string "????....") = None);
  Alcotest.(check bool) "decode native" true (objects_equal o (Sof.Bfd.decode native));
  Alcotest.(check bool) "decode aout" true (objects_equal o (Sof.Bfd.decode aout))

let test_bfd_convert () =
  let o = sample_object () in
  let converted = Sof.Bfd.convert ~to_:Sof.Bfd.Aout_style (Sof.Codec.encode o) in
  Alcotest.(check bool) "converted is aout" true
    (Sof.Bfd.detect converted = Some Sof.Bfd.Aout_style);
  Alcotest.(check bool) "content preserved" true
    (objects_equal o (Sof.Bfd.decode converted))

let test_bfd_unknown () =
  try
    ignore (Sof.Bfd.decode (Bytes.of_string "XXXXjunkjunk"));
    Alcotest.fail "expected Unknown_format"
  with Sof.Bfd.Unknown_format _ -> ()

let test_bfd_linked_from_aout () =
  (* objects that travelled through the a.out backend still link and run *)
  let o =
    compile "/obj/m.o" "int main() { return 29; }"
  in
  let o' = Sof.Aout.decode (Sof.Aout.encode o) in
  let img, _ =
    Linker.Link.link
      ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x8000 }
      [ Workloads.Crt0.obj (); o' ]
  in
  let k = Simos.Kernel.create () in
  let p = Simos.Kernel.create_process k ~args:[ "m" ] in
  Simos.Kernel.map_image k p ~key:"m" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  Alcotest.(check int) "runs" 29 (Simos.Kernel.run k p ())

let prop_aout_roundtrip_random =
  QCheck.Test.make ~count:100 ~name:"a.out roundtrips arbitrary symbols"
    QCheck.(pair (string_gen_of_size (QCheck.Gen.int_range 1 12) QCheck.Gen.printable) small_nat)
    (fun (name, value) ->
      QCheck.assume (name <> "");
      let o =
        Sof.Object_file.make ~name:"p.o" ~text:Bytes.empty
          [ Sof.Symbol.make ~kind:Sof.Symbol.Abs ~value name ]
      in
      objects_equal o (Sof.Aout.decode (Sof.Aout.encode o)))

(* -- dynamic unlinking ---------------------------------------------------------- *)

let test_unload () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/obj/k.o" (compile "/obj/k.o" "int kfn(int x) { return x + 1; }");
  let b =
    Omos.Server.build s @@ Omos.Server.static ~name:"host"
      (Omos.Schemes.graph_of_objs
         [ Workloads.Crt0.obj (); compile "/obj/h.o" "int main() { return 0; }" ])
  in
  let dl = Omos.Dynload.create s in
  let p =
    Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ]) ~args:[ "host" ]
  in
  let regions0 = List.length (Simos.Addr_space.regions p.Simos.Proc.aspace) in
  let bound =
    Omos.Dynload.load dl p
      ~client_images:[ b.Omos.Server.entry.Omos.Cache.image ]
      ~graph:(Blueprint.Mgraph.parse "(merge /obj/k.o)")
      ~symbols:[ "kfn" ]
  in
  let addr = List.assoc "kfn" bound in
  Alcotest.(check bool) "mapped" true
    (List.length (Simos.Addr_space.regions p.Simos.Proc.aspace) > regions0);
  (* the class is readable while loaded *)
  ignore (Simos.Addr_space.load32 p.Simos.Proc.aspace addr);
  let img = List.hd (Omos.Dynload.loaded dl p) in
  Omos.Dynload.unload dl p img;
  Alcotest.(check int) "regions restored" regions0
    (List.length (Simos.Addr_space.regions p.Simos.Proc.aspace));
  Alcotest.(check bool) "no longer tracked" true (Omos.Dynload.loaded dl p = []);
  (* the unmapped address now faults *)
  (try
     ignore (Simos.Addr_space.load32 p.Simos.Proc.aspace addr);
     Alcotest.fail "expected fault after unload"
   with Simos.Addr_space.Fault _ -> ());
  (* and the arena space can be reused: loading again succeeds *)
  let bound2 =
    Omos.Dynload.load dl p
      ~client_images:[ b.Omos.Server.entry.Omos.Cache.image ]
      ~graph:(Blueprint.Mgraph.parse "(merge /obj/k.o)")
      ~symbols:[ "kfn" ]
  in
  Alcotest.(check bool) "reloadable" true (List.mem_assoc "kfn" bound2)

let test_unload_not_loaded () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let b =
    Omos.Server.build s @@ Omos.Server.static ~name:"host2"
      (Omos.Schemes.graph_of_objs
         [ Workloads.Crt0.obj (); compile "/obj/h.o" "int main() { return 0; }" ])
  in
  let dl = Omos.Dynload.create s in
  let p =
    Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ]) ~args:[ "host2" ]
  in
  try
    Omos.Dynload.unload dl p b.Omos.Server.entry.Omos.Cache.image;
    Alcotest.fail "expected Dynload_error"
  with Omos.Dynload.Dynload_error _ -> ()

(* -- partial-image versioning ------------------------------------------------------ *)

let test_version_accepted_when_unchanged () =
  let w = Omos.World.create () in
  let prog =
    Omos.Schemes.partial_image_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let code, out = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args in
  Alcotest.(check int) "runs" 0 code;
  Alcotest.(check string) "lists" "README\n" out

let test_version_mismatch_detected () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  (* build the client against today's libc *)
  let prog =
    Omos.Schemes.partial_image_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  (* the library evolves: a new export changes the interface *)
  Omos.Server.add_fragment s "/libc/extra"
    (compile "/libc/extra" "int brand_new_routine(int x) { return x; }");
  Omos.Server.register_meta_source s "/lib/libc"
    ("(constraint-list \"T\" 0x100000 \"D\" 0x40200000)\n\
      (merge /libc/gen /libc/stdio /libc/string /libc/stdlib\n\
      /libc/hppa /libc/net /libc/quad /libc/rpc /libc/extra)");
  (* the stale client must be refused at load time, not run with a
     mismatched library *)
  let p = prog.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  (try
     ignore (Simos.Kernel.run w.Omos.World.kernel p ());
     Alcotest.fail "expected version mismatch"
   with Omos.Schemes.Scheme_error msg ->
     Alcotest.(check bool) "mentions version" true
       (Astring.String.is_infix ~affix:"version" msg));
  (* a freshly built client works against the new library *)
  let prog2 =
    Omos.Schemes.partial_image_program w.Omos.World.rt ~name:"ls2"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let code, _ = Omos.Schemes.invoke w.Omos.World.rt prog2 ~args:Omos.World.ls_single_args in
  Alcotest.(check int) "new client runs" 0 code

(* -- conflict recording --------------------------------------------------------------- *)

let greedy_meta path = Printf.sprintf
    "(constraint-list \"T\" 0x100000 \"D\" 0x40200000)\n(merge %s.o)" path

let test_conflicts_recorded () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let libs = Workloads.Codegen_gen.libraries () in
  List.iter
    (fun (path, _) -> Omos.Server.register_meta_source s (path ^ "-g") (greedy_meta path))
    libs;
  List.iter
    (fun (path, _) -> ignore (Omos.Server.build s @@ Omos.Server.library (path ^ "-g")))
    libs;
  (* the first library won the base; the other four conflicted (text +
     data each) *)
  let cs = Omos.Server.conflicts s in
  Alcotest.(check bool) "conflicts recorded" true (List.length cs >= 4);
  Alcotest.(check bool) "owners named" true
    (List.exists (fun c -> c.Omos.Server.c_owner = "/lib/libl-g") cs)

let test_conflict_feedback_loop () =
  (* apply suggest_placements as new constraint-lists on a fresh
     server: every library then gets its preferred base, no conflicts *)
  let build_all s libs metas =
    List.iter (fun (path, meta) -> Omos.Server.register_meta_source s path meta)
      (List.combine (List.map (fun (p, _) -> p ^ "-g") libs) metas);
    List.map
      (fun (path, _) ->
        let b = Omos.Server.build s @@ Omos.Server.library (path ^ "-g") in
        b.Omos.Server.entry.Omos.Cache.text_base)
      libs
  in
  let libs = Workloads.Codegen_gen.libraries () in
  let w1 = Omos.World.create () in
  let _ = build_all w1.Omos.World.server libs (List.map (fun (p, _) -> greedy_meta p) libs) in
  let suggestions = Omos.Server.suggest_placements w1.Omos.World.server in
  (* rewrite each library's constraint-list from the suggestions *)
  let metas =
    List.map
      (fun (path, _) ->
        let tbase =
          match
            List.find_opt
              (fun (o, seg, _) -> o = path ^ "-g" && seg = Blueprint.Mgraph.Seg_text)
              suggestions
          with
          | Some (_, _, base) -> base
          | None -> 0x100000 (* the original winner keeps its base *)
        in
        let dbase =
          match
            List.find_opt
              (fun (o, seg, _) -> o = path ^ "-g" && seg = Blueprint.Mgraph.Seg_data)
              suggestions
          with
          | Some (_, _, base) -> base
          | None -> 0x40200000
        in
        Printf.sprintf "(constraint-list \"T\" %d \"D\" %d)\n(merge %s.o)" tbase dbase path)
      libs
  in
  let w2 = Omos.World.create () in
  ignore (build_all w2.Omos.World.server libs metas);
  Alcotest.(check int) "second generation conflict-free" 0
    (List.length (Omos.Server.conflicts w2.Omos.World.server))

let () =
  Alcotest.run "extensions"
    [
      ( "aout",
        [
          Alcotest.test_case "roundtrip" `Quick test_aout_roundtrip;
          Alcotest.test_case "compiled roundtrip" `Quick test_aout_roundtrip_compiled;
          Alcotest.test_case "string interning" `Quick test_aout_string_interning;
          Alcotest.test_case "errors" `Quick test_aout_errors;
        ] );
      ( "bfd",
        [
          Alcotest.test_case "detect/decode" `Quick test_bfd_detect_and_decode;
          Alcotest.test_case "convert" `Quick test_bfd_convert;
          Alcotest.test_case "unknown" `Quick test_bfd_unknown;
          Alcotest.test_case "link from aout" `Quick test_bfd_linked_from_aout;
        ] );
      ( "unload",
        [
          Alcotest.test_case "load/unload/reload" `Quick test_unload;
          Alcotest.test_case "not loaded" `Quick test_unload_not_loaded;
        ] );
      ( "versioning",
        [
          Alcotest.test_case "unchanged accepted" `Quick test_version_accepted_when_unchanged;
          Alcotest.test_case "mismatch detected" `Quick test_version_mismatch_detected;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "recorded" `Quick test_conflicts_recorded;
          Alcotest.test_case "feedback loop" `Quick test_conflict_feedback_loop;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_aout_roundtrip_random ]);
    ]
