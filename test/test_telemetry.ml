(* The telemetry subsystem: span nesting, metric semantics, reset
   behaviour, and exporter round-trips through the built-in JSON
   parser. *)

module T = Telemetry

(* A fake clock the tests can step manually. *)
let now = ref 0.0
let install_clock () = T.set_clock (fun () -> !now)
let tick us = now := !now +. us

let fresh () =
  install_clock ();
  now := 0.0;
  T.reset ();
  T.set_enabled true

(* -- spans ----------------------------------------------------------------- *)

let test_span_nesting () =
  fresh ();
  let a = T.Span.enter "a" in
  tick 10.0;
  let b = T.Span.enter "b" in
  tick 5.0;
  let c = T.Span.enter "c" in
  tick 1.0;
  T.Span.exit c;
  T.Span.exit b;
  tick 4.0;
  T.Span.exit a;
  let spans = T.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find n = List.find (fun (s : T.span) -> s.T.name = n) spans in
  let sa = find "a" and sb = find "b" and sc = find "c" in
  Alcotest.(check int) "a is a root" (-1) sa.T.parent;
  Alcotest.(check int) "b under a" sa.T.id sb.T.parent;
  Alcotest.(check int) "c under b" sb.T.id sc.T.parent;
  Alcotest.(check int) "depths" 2 sc.T.depth;
  Alcotest.(check (float 0.001)) "a start" 0.0 sa.T.start_us;
  Alcotest.(check (float 0.001)) "a duration" 20.0 (sa.T.end_us -. sa.T.start_us);
  Alcotest.(check (float 0.001)) "b duration" 6.0 (sb.T.end_us -. sb.T.start_us)

let test_span_disabled () =
  fresh ();
  T.set_enabled false;
  T.with_span "ghost" (fun () -> ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (T.spans ()));
  T.set_enabled true

let test_span_exception_unwind () =
  fresh ();
  (try
     T.with_span "outer" (fun () ->
         let inner = T.Span.enter "inner" in
         ignore inner;
         failwith "boom")
   with Failure _ -> ());
  (* with_span closed "outer" on the way out; the abandoned "inner" was
     force-closed with it *)
  Alcotest.(check int) "both closed" 2 (List.length (T.spans ()));
  let names =
    List.sort compare (List.map (fun (s : T.span) -> s.T.name) (T.spans ()))
  in
  Alcotest.(check (list string)) "names" [ "inner"; "outer" ] names

let test_span_attrs () =
  fresh ();
  let s = T.Span.enter "x" ~attrs:[ ("k", T.I 1) ] in
  T.Span.add_attr s "later" (T.S "v");
  T.Span.exit s;
  match T.spans_named "x" with
  | [ sp ] ->
      Alcotest.(check bool) "k kept" true (List.mem_assoc "k" sp.T.attrs);
      Alcotest.(check bool) "later kept" true (List.mem_assoc "later" sp.T.attrs)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

(* -- counters / gauges / histograms ---------------------------------------- *)

let test_counter () =
  fresh ();
  let c = T.Counter.make "t.c" in
  let c' = T.Counter.make "t.c" in
  T.Counter.incr c;
  T.Counter.incr c' ~by:4;
  Alcotest.(check int) "interned: same counter" 5 (T.Counter.value c);
  Alcotest.(check int) "get by name" 5 (T.Counter.get "t.c");
  Alcotest.(check int) "unknown name is 0" 0 (T.Counter.get "t.none")

let test_histogram () =
  fresh ();
  let h = T.Histogram.make "t.h" in
  List.iter (T.Histogram.observe h) [ 2.0; 8.0; 5.0 ];
  Alcotest.(check int) "count" 3 (T.Histogram.count h);
  Alcotest.(check (float 0.001)) "sum" 15.0 (T.Histogram.sum h);
  Alcotest.(check (float 0.001)) "mean" 5.0 (T.Histogram.mean h);
  Alcotest.(check (float 0.001)) "min" 2.0 (T.Histogram.min_value h);
  Alcotest.(check (float 0.001)) "max" 8.0 (T.Histogram.max_value h)

let test_reset_keeps_handles () =
  fresh ();
  let c = T.Counter.make "t.keep" in
  T.Counter.incr c ~by:7;
  ignore (T.with_span "s" (fun () -> ()));
  T.reset ();
  Alcotest.(check int) "zeroed in place" 0 (T.Counter.value c);
  Alcotest.(check int) "spans dropped" 0 (List.length (T.spans ()));
  (* the interned handle still works after reset *)
  T.Counter.incr c;
  Alcotest.(check int) "handle alive" 1 (T.Counter.get "t.keep")

(* -- json ------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let src = {|{"a":[1,2.5,-3],"b":"q\"uo\\te\n","c":{"d":true,"e":null}}|} in
  match T.Json.parse src with
  | T.Json.Obj fields ->
      Alcotest.(check bool) "a is arr" true
        (match List.assoc "a" fields with T.Json.Arr _ -> true | _ -> false);
      Alcotest.(check string) "escapes decode" "q\"uo\\te\n"
        (match List.assoc "b" fields with T.Json.Str s -> s | _ -> "?");
      (* printing and reparsing is stable *)
      let again = T.Json.parse (T.Json.to_string (T.Json.Obj fields)) in
      Alcotest.(check bool) "reparse equal" true (again = T.Json.Obj fields)
  | _ -> Alcotest.fail "expected an object"

let test_json_errors () =
  List.iter
    (fun s ->
      Alcotest.check_raises ("rejects " ^ s) (T.Json.Parse_error "")
        (fun () ->
          try ignore (T.Json.parse s)
          with T.Json.Parse_error _ -> raise (T.Json.Parse_error "")))
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

(* -- exporters --------------------------------------------------------------- *)

let test_events_export () =
  fresh ();
  T.with_span "phase" (fun () -> tick 3.0);
  T.Counter.incr (T.Counter.make "t.ev") ~by:2;
  T.Gauge.set "t.g" 1.5;
  T.Histogram.observe (T.Histogram.make "t.evh") 4.0;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (T.Export.events_json ()))
  in
  (* every line parses, and all record kinds appear *)
  let kinds =
    List.map
      (fun l ->
        match T.Json.member "type" (T.Json.parse l) with
        | Some (T.Json.Str k) -> k
        | _ -> Alcotest.fail ("line missing type: " ^ l))
      lines
  in
  List.iter
    (fun k -> Alcotest.(check bool) ("has " ^ k) true (List.mem k kinds))
    [ "span"; "counter"; "gauge"; "histogram" ]

let test_chrome_export () =
  fresh ();
  T.with_span "outer" (fun () ->
      tick 2.0;
      T.with_span "inner" (fun () -> tick 1.0));
  T.Counter.incr (T.Counter.make "t.ch");
  let j = T.Json.parse (T.Export.chrome ()) in
  let events =
    match T.Json.member "traceEvents" j with
    | Some (T.Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents"
  in
  let xs =
    List.filter_map
      (fun ev ->
        match (T.Json.member "ph" ev, T.Json.member "name" ev) with
        | Some (T.Json.Str "X"), Some (T.Json.Str n) -> Some (n, ev)
        | _ -> None)
      events
  in
  Alcotest.(check int) "two complete events" 2 (List.length xs);
  (* X events are sorted by start time: outer first *)
  Alcotest.(check string) "outer first" "outer" (fst (List.hd xs));
  let dur ev =
    match T.Json.member "dur" ev with Some (T.Json.Num d) -> d | _ -> nan
  in
  Alcotest.(check (float 0.001)) "outer spans both ticks" 3.0 (dur (List.assoc "outer" xs));
  Alcotest.(check bool) "counter event present" true
    (List.exists
       (fun ev ->
         match (T.Json.member "ph" ev, T.Json.member "name" ev) with
         | Some (T.Json.Str "C"), Some (T.Json.Str "t.ch") -> true
         | _ -> false)
       events)

let test_metrics_export () =
  fresh ();
  T.Counter.incr (T.Counter.make "t.m") ~by:9;
  T.Gauge.set "t.mg" 0.5;
  T.Histogram.observe (T.Histogram.make "t.mh") 7.0;
  let j = T.Json.parse (T.Export.metrics_json ()) in
  (match T.Json.member "schema" j with
  | Some (T.Json.Str s) -> Alcotest.(check string) "schema" "omos.metrics/1" s
  | _ -> Alcotest.fail "no schema field");
  (match Option.bind (T.Json.member "counters" j) (T.Json.member "t.m") with
  | Some (T.Json.Num n) -> Alcotest.(check (float 0.001)) "counter" 9.0 n
  | _ -> Alcotest.fail "counter missing");
  match Option.bind (T.Json.member "histograms" j) (T.Json.member "t.mh") with
  | Some h -> (
      match T.Json.member "count" h with
      | Some (T.Json.Num c) -> Alcotest.(check (float 0.001)) "hist count" 1.0 c
      | _ -> Alcotest.fail "histogram count missing")
  | None -> Alcotest.fail "histogram missing"

(* -- the instrumented request path ------------------------------------------ *)

let test_request_path_trace () =
  (* a real instantiation produces the nested span tree the trace
     command relies on, and the global cache counters track Cache.stats *)
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  T.reset ();
  T.set_enabled true;
  let resp = Omos.Server.instantiate s (Omos.Server.library "/lib/libc") in
  T.set_enabled false;
  Alcotest.(check bool) "cold build" false resp.Omos.Server.cache_hit;
  let names = List.map (fun (sp : T.span) -> sp.T.name) (T.spans ()) in
  List.iter
    (fun n -> Alcotest.(check bool) ("span " ^ n) true (List.mem n names))
    [ "omos.instantiate"; "blueprint.eval"; "constraints.place"; "linker.link" ];
  let st = Omos.Server.cache_stats s in
  Alcotest.(check int) "hits agree" st.Omos.Cache.hits (T.Counter.get "cache.hits");
  Alcotest.(check int) "misses agree" st.Omos.Cache.misses (T.Counter.get "cache.misses");
  (* the root span is the instantiate *)
  let root =
    List.find (fun (sp : T.span) -> sp.T.parent = -1) (T.spans ())
  in
  Alcotest.(check string) "root" "omos.instantiate" root.T.name;
  (* warm request: a hit, no new link span *)
  T.reset ();
  T.set_enabled true;
  let resp2 = Omos.Server.instantiate s (Omos.Server.library "/lib/libc") in
  T.set_enabled false;
  Alcotest.(check bool) "warm hit" true resp2.Omos.Server.cache_hit;
  Alcotest.(check int) "no link on hit" 0 (T.Counter.get "linker.links")

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled" `Quick test_span_disabled;
          Alcotest.test_case "exception unwind" `Quick test_span_exception_unwind;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "events" `Quick test_events_export;
          Alcotest.test_case "chrome" `Quick test_chrome_export;
          Alcotest.test_case "metrics" `Quick test_metrics_export;
        ] );
      ( "request-path",
        [ Alcotest.test_case "trace" `Quick test_request_path_trace ] );
    ]
