(* Golden-file generator for the omos.metrics/1 exporter: build a small
   controlled registry and print the metrics dump. The runtest rule
   diffs the output against metrics_format.expected.json, so any change
   to the schema — field order, percentile keys, number formatting —
   shows up as a reviewable diff (update with `dune promote`). *)

let () =
  Telemetry.reset ();
  Telemetry.set_clock (fun () -> 0.0);
  let c = Telemetry.Counter.make "zdemo.count" in
  Telemetry.Counter.incr c ~by:3;
  Telemetry.Gauge.set "zdemo.gauge" 2.5;
  let h = Telemetry.Histogram.make "zdemo.us.phase" in
  List.iter
    (fun v -> Telemetry.Histogram.observe h (float_of_int v))
    [ 5; 1; 9; 2; 8; 3; 7; 4; 6; 10 ];
  let empty = Telemetry.Histogram.make "zdemo.us.untouched" in
  ignore empty;
  print_endline (Telemetry.Export.metrics_json ())
