(* Blame: critical-path exactness (path length == sim_us, categories
   partition sim_us), the queue/batch/coalesce response split, the
   Coalesced provenance event, and the deterministic what-if replay
   (baseline identity + batch-off counterfactual accuracy). *)

module S = Omos.Server
module B = Omos.Blame
module C = Telemetry.Causal
module Fz = Workloads.Fuzz

let fresh_world () =
  let w = Omos.World.create () in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  C.set_enabled true;
  w.Omos.World.server

let close ?(eps = 1e-6) msg want got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: want %.9f got %.9f" msg want got)
    true
    (Float.abs (want -. got) <= eps)

(* The exactness invariant on every completed recorded request: the
   critical path tiles [submit, done) with no unattributed time, its
   length equals sim_us, and the blame categories partition sim_us. *)
let check_exactness (ctx : string) : B.path list =
  let ps = B.paths (C.requests ()) in
  List.iter
    (fun (p : B.path) ->
      let label fmt = Printf.sprintf "%s r%d: %s" ctx p.B.p_id fmt in
      (* contiguous tiling, by exact float equality: every boundary is
         a shared clock read *)
      let cursor = ref p.B.p_submit in
      List.iter
        (fun (s : B.slice) ->
          Alcotest.(check bool)
            (label "slices tile without gaps or overlap")
            true
            (s.B.s_from = !cursor && s.B.s_until >= s.B.s_from);
          cursor := s.B.s_until)
        p.B.p_slices;
      Alcotest.(check bool) (label "path ends at seal") true (!cursor = p.B.p_done);
      let len = List.fold_left (fun a s -> a +. B.slice_us s) 0.0 p.B.p_slices in
      close (label "critical-path length == sim_us") p.B.p_sim_us len;
      (* category sums partition sim_us *)
      let by_cat = Hashtbl.create 8 in
      List.iter
        (fun (s : B.slice) ->
          let k = B.category_label s.B.s_cat in
          Hashtbl.replace by_cat k
            ((try Hashtbl.find by_cat k with Not_found -> 0.0) +. B.slice_us s))
        p.B.p_slices;
      let cat_sum = Hashtbl.fold (fun _ v a -> a +. v) by_cat 0.0 in
      close (label "categories partition sim_us") p.B.p_sim_us cat_sum;
      List.iter
        (fun (s : B.slice) ->
          Alcotest.(check bool)
            (label "category is in the stable order")
            true
            (List.mem (B.category_label s.B.s_cat) B.category_order))
        p.B.p_slices)
    ps;
  ps

(* -- committed scenarios ---------------------------------------------------- *)

let test_serial_paths () =
  let s = fresh_world () in
  let r1 = S.instantiate s (S.library "/lib/libm") in
  let r2 = S.instantiate s (S.library "/lib/libm") in
  Alcotest.(check bool) "miss then hit" true
    ((not r1.S.cache_hit) && r2.S.cache_hit);
  let ps = check_exactness "serial" in
  Alcotest.(check int) "two paths" 2 (List.length ps);
  (* a serial request never waits on another: all wait is queue/sched
     dispatch, and the response split mirrors that *)
  List.iter
    (fun (r : S.response) ->
      close "no batch wait" 0.0 r.S.batch_us;
      close "no coalesce wait" 0.0 r.S.coalesce_us;
      close "split sums to the old queue_us" r.S.queue_us
        (r.S.queue_us +. r.S.batch_us +. r.S.coalesce_us))
    [ r1; r2 ]

let test_batched_burst_paths () =
  let s = fresh_world () in
  let libs = [ "/lib/libm"; "/lib/libl"; "/lib/libC"; "/lib/libal1" ] in
  let tks = List.map (fun l -> S.submit s (S.library l)) libs in
  S.drain s;
  let rs = List.map (S.await s) tks in
  let ps = check_exactness "batched burst" in
  Alcotest.(check int) "four paths" 4 (List.length ps);
  (* every member parked at the place barrier; the split agrees with
     the causal graph's non-self time *)
  List.iter2
    (fun (r : S.response) (p : B.path) ->
      Alcotest.(check bool) "batch wait recorded" true (r.S.batch_us >= 0.0);
      let wait =
        List.fold_left
          (fun a (s : B.slice) ->
            match s.B.s_cat with B.Self _ -> a | _ -> a +. B.slice_us s)
          0.0 p.B.p_slices
      in
      close "response split total == causal wait total"
        (r.S.queue_us +. r.S.batch_us +. r.S.coalesce_us)
        wait;
      (* the flush stamped its shared-solver share on every member, and
         the member's own wrap is at most the whole place interval *)
      Alcotest.(check bool) "batched member carries the solver share" true
        (p.B.p_solver_us > 0.0);
      let place =
        List.find
          (fun (s : B.slice) -> s.B.s_cat = B.Self "place")
          p.B.p_slices
      in
      Alcotest.(check bool) "wrap within the flush interval" true
        (place.B.s_self >= 0.0 && place.B.s_self <= B.slice_us place))
    rs ps

let test_coalesced_follower_split_and_provenance () =
  let s = fresh_world () in
  Telemetry.Provenance.set_enabled true;
  let t1 = S.submit s (S.library "/lib/libm") in
  let t2 = S.submit s (S.library "/lib/libm") in
  let t3 = S.submit s (S.library "/lib/libm") in
  let id1 = S.ticket_id t1 in
  S.drain s;
  let r1 = S.await s t1 and r2 = S.await s t2 and r3 = S.await s t3 in
  Telemetry.Provenance.set_enabled false;
  ignore (check_exactness "coalesced burst");
  Alcotest.(check bool) "followers hit" true (r2.S.cache_hit && r3.S.cache_hit);
  (* the followers' wait is now blamed on coalescing, not silently
     folded into queue_us-as-if-compute *)
  List.iter
    (fun (r : S.response) ->
      Alcotest.(check bool) "follower coalesce wait > 0" true
        (r.S.coalesce_us > 0.0);
      close "split still sums into sim_us bounds" r.S.sim_us
        ~eps:(Float.max 1e-6 r.S.sim_us)
        (r.S.queue_us +. r.S.batch_us +. r.S.coalesce_us))
    [ r2; r3 ];
  close "leader has no coalesce wait" 0.0 r1.S.coalesce_us;
  (* the leader's journal carries one Coalesced event per follower *)
  let prov =
    match r1.S.built.S.entry.Omos.Cache.provenance with
    | Some p -> p
    | None -> Alcotest.fail "leader entry has no provenance"
  in
  let coalesced =
    List.filter_map
      (function
        | Telemetry.Provenance.Coalesced { leader_request } ->
            Some leader_request
        | _ -> None)
      prov.Telemetry.Provenance.p_events
  in
  Alcotest.(check int) "two Coalesced events" 2 (List.length coalesced);
  List.iter
    (fun l -> Alcotest.(check int) "events name the leader ticket" id1 l)
    coalesced;
  (* the followers' causal waits point at the leader *)
  List.iter
    (fun tk ->
      match C.find (S.ticket_id tk) with
      | None -> Alcotest.fail "follower not recorded"
      | Some req ->
          Alcotest.(check bool) "coalesce wait edge names the leader" true
            (List.exists
               (fun (w : C.wait) -> w.w_kind = C.Coalesce && w.w_on = id1)
               req.C.g_waits))
    [ t2; t3 ]

(* -- what-if replay --------------------------------------------------------- *)

(* A small mixed scenario: two burst rounds over five metas with
   repeats, so the recording contains misses, hits, batching, and
   coalescing. *)
let mixed_scenario (s : S.t) : float =
  let round libs =
    let tks = List.map (fun l -> S.submit s (S.library l)) libs in
    S.drain s;
    List.fold_left (fun a tk -> a +. (S.await s tk).S.sim_us) 0.0 tks
  in
  round [ "/lib/libm"; "/lib/libl"; "/lib/libC"; "/lib/libm"; "/lib/libal1" ]
  +. round [ "/lib/libal2"; "/lib/libm"; "/lib/libl"; "/lib/libal2" ]

let test_whatif_baseline_identity () =
  let s = fresh_world () in
  let recorded_total = mixed_scenario s in
  let ps = check_exactness "mixed scenario" in
  let wi = B.what_if ps in
  Alcotest.(check string) "knob label" "baseline" wi.B.wi_knob;
  close "recorded total matches responses" recorded_total wi.B.wi_recorded_us
    ~eps:1e-3;
  (* the FIFO replay of the recorded graph reproduces every recorded
     latency: the model is the scheduler, not a heuristic *)
  List.iter
    (fun (id, rec_us, pred_us) ->
      close
        (Printf.sprintf "baseline replay reproduces r%d" id)
        rec_us pred_us
        ~eps:(1e-6 *. (1.0 +. rec_us)))
    wi.B.wi_per_request

let test_whatif_batch_off_accuracy () =
  (* record with batching on *)
  let s = fresh_world () in
  ignore (mixed_scenario s);
  let ps = B.paths (C.requests ()) in
  let wi = B.what_if ~knob:B.Batch_off ps in
  (* run the same scenario with batching actually disabled *)
  let s2 = fresh_world () in
  S.set_batch_placement s2 false;
  let actual_total = mixed_scenario s2 in
  let err =
    Float.abs (wi.B.wi_predicted_us -. actual_total)
    /. Float.max 1.0 actual_total
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "batch=off prediction within 5%% (predicted %.1f actual %.1f err %.3f)"
       wi.B.wi_predicted_us actual_total err)
    true (err <= 0.05)

let test_whatif_knob_parsing () =
  Alcotest.(check bool) "batch=off" true (B.knob_of_string "batch=off" = Some B.Batch_off);
  Alcotest.(check bool) "queue=inf" true (B.knob_of_string "queue=inf" = Some B.Queue_inf);
  Alcotest.(check bool) "coalesce=off" true
    (B.knob_of_string "coalesce=off" = Some B.Coalesce_off);
  Alcotest.(check bool) "garbage" true (B.knob_of_string "turbo=on" = None);
  (* queue=inf is the identity on a run that never overloaded *)
  let s = fresh_world () in
  ignore (mixed_scenario s);
  let ps = B.paths (C.requests ()) in
  let base = B.what_if ps in
  let qinf = B.what_if ~knob:B.Queue_inf ps in
  close "queue=inf == baseline" base.B.wi_predicted_us qinf.B.wi_predicted_us

let test_coalesce_off_rebuilds () =
  let s = fresh_world () in
  let tks =
    List.map (fun l -> S.submit s (S.library l))
      [ "/lib/libm"; "/lib/libm"; "/lib/libm" ]
  in
  S.drain s;
  List.iter (fun tk -> ignore (S.await s tk)) tks;
  let ps = B.paths (C.requests ()) in
  let base = B.what_if ps in
  let off = B.what_if ~knob:B.Coalesce_off ps in
  (* without coalescing every follower re-runs the leader's build work,
     so the predicted total grows *)
  Alcotest.(check bool)
    (Printf.sprintf "coalesce=off costs more (%.1f -> %.1f)"
       base.B.wi_predicted_us off.B.wi_predicted_us)
    true
    (off.B.wi_predicted_us > base.B.wi_predicted_us)

(* -- profile and folded stacks ---------------------------------------------- *)

let test_profile_partition_and_folded () =
  let s = fresh_world () in
  ignore (mixed_scenario s);
  let ps = B.paths (C.requests ()) in
  let prof = B.profile ps in
  Alcotest.(check int) "every request profiled" (List.length ps)
    prof.B.bp_requests;
  let cat_total =
    List.fold_left (fun a (_, st) -> a +. st.B.bs_total_us) 0.0
      prof.B.bp_categories
  in
  close "profile categories partition total sim_us" prof.B.bp_total_sim_us
    cat_total ~eps:1e-3;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "category %s present" k)
        true
        (List.mem_assoc k prof.B.bp_categories))
    B.category_order;
  let folded = B.folded ps in
  Alcotest.(check bool) "folded non-empty" true (folded <> []);
  let folded_total = List.fold_left (fun a (_, us) -> a +. us) 0.0 folded in
  close "folded stacks partition total sim_us" prof.B.bp_total_sim_us
    folded_total ~eps:1e-3;
  Alcotest.(check bool) "folded sorted by key" true
    (List.sort (fun (a, _) (b, _) -> compare a b) folded = folded)

(* -- recording is free and off by default ----------------------------------- *)

let test_recording_off_by_default_and_free () =
  (* the enabled flag survives Telemetry.reset by design (like the
     other telemetry switches), so turn it off explicitly: this test
     runs after tests that enabled it *)
  C.set_enabled false;
  let w = Omos.World.create () in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let s = w.Omos.World.server in
  let off_total = mixed_scenario s in
  Alcotest.(check (list Alcotest.int)) "nothing recorded" []
    (List.map (fun (r : C.req) -> r.C.g_id) (C.requests ()));
  (* same scenario with recording on charges exactly the same simulated
     time: observation is free *)
  let s2 = fresh_world () in
  let on_total = mixed_scenario s2 in
  close "recording charges nothing" off_total on_total

(* -- fuzzed workloads (the 200+ cases of the acceptance criteria) ----------- *)

let run_fuzz_case ~(seed : int) ~(conc : int) ~(batch : bool) : unit =
  let case = Fz.generate ~max_modules:6 ~max_libs:3 ~seed () in
  let w = Omos.World.create () in
  (match Omos.Fuzzer.install case w with
  | () -> ()
  | exception _ -> raise Exit (* generator produced a non-compiling case *));
  let s = w.Omos.World.server in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  C.set_enabled true;
  S.set_batch_placement s batch;
  if conc > S.queue_limit s then S.set_queue_limit s conc;
  let libs = List.map Fz.lib_path case.Fz.f_libs in
  (* two rounds (misses then hits/coalesces), submitted in bursts of
     [conc]; broken libraries surface as await errors and simply don't
     produce a path *)
  let submit_burst burst =
    let tks =
      List.filter_map
        (fun l ->
          match S.submit s (S.library l) with
          | tk -> Some tk
          | exception _ -> None)
        burst
    in
    S.drain s;
    List.iter (fun tk -> match S.await s tk with _ -> () | exception _ -> ()) tks
  in
  let rec bursts = function
    | [] -> ()
    | libs ->
        let n = min conc (List.length libs) in
        let burst = List.filteri (fun i _ -> i < n) libs in
        let rest = List.filteri (fun i _ -> i >= n) libs in
        submit_burst burst;
        bursts rest
  in
  bursts (libs @ libs);
  ignore (check_exactness (Printf.sprintf "fuzz seed=%d conc=%d" seed conc))

let prop_fuzz_exactness =
  QCheck.Test.make ~name:"fuzzed workloads: critical path exactness"
    ~count:200
    (QCheck.make
       (QCheck.Gen.triple (QCheck.Gen.int_bound 10_000)
          (QCheck.Gen.oneofl [ 1; 2; 4; 8 ])
          QCheck.Gen.bool))
    (fun (seed, conc, batch) ->
      match run_fuzz_case ~seed:(seed + 1) ~conc ~batch with
      | () -> true
      | exception Exit -> QCheck.assume_fail ())

let () =
  Alcotest.run "blame"
    [
      ( "exactness",
        [
          Alcotest.test_case "serial paths" `Quick test_serial_paths;
          Alcotest.test_case "batched burst" `Quick test_batched_burst_paths;
          Alcotest.test_case "coalesced split + provenance" `Quick
            test_coalesced_follower_split_and_provenance;
          Alcotest.test_case "profile partition + folded" `Quick
            test_profile_partition_and_folded;
          Alcotest.test_case "recording off by default and free" `Quick
            test_recording_off_by_default_and_free;
        ] );
      ( "what-if",
        [
          Alcotest.test_case "baseline identity" `Quick
            test_whatif_baseline_identity;
          Alcotest.test_case "batch=off within 5%" `Quick
            test_whatif_batch_off_accuracy;
          Alcotest.test_case "knob parsing + queue=inf" `Quick
            test_whatif_knob_parsing;
          Alcotest.test_case "coalesce=off rebuilds" `Quick
            test_coalesce_off_rebuilds;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_fuzz_exactness ]);
    ]
