(* Tests of the OMOS server: namespace, caching, constraint-placed
   library builds, bootstrap/integrated exec, the blueprint-facing
   specializers, monitoring, reordering, and dynamic loading. *)

let compile name src = Minic.Driver.compile ~name src

(* -- namespace ----------------------------------------------------------- *)

let test_namespace () =
  let ns = Omos.Namespace.create () in
  let o = Sof.Object_file.empty "/obj/x.o" in
  Omos.Namespace.bind_fragment ns "/obj/x.o" o;
  Omos.Namespace.bind_meta ns "/lib/m" (Blueprint.Meta.parse ~name:"/lib/m" "(merge /obj/x.o)");
  Alcotest.(check bool) "fragment" true (Omos.Namespace.exists ns "/obj/x.o");
  (match Omos.Namespace.lookup ns "/lib/m" with
  | Some (Omos.Namespace.Meta _) -> ()
  | _ -> Alcotest.fail "meta lookup");
  Alcotest.(check (list string)) "all metas" [ "/lib/m" ] (Omos.Namespace.all_metas ns);
  let listing = Omos.Namespace.list ns "/obj" in
  Alcotest.(check bool) "dir listing" true (List.mem ("x.o", `Fragment) listing);
  Omos.Namespace.unbind ns "/obj/x.o";
  Alcotest.(check bool) "unbound" false (Omos.Namespace.exists ns "/obj/x.o")

(* -- cache ---------------------------------------------------------------- *)

let dummy_image name =
  let a = Sof.Asm.create name in
  Sof.Asm.label a "e";
  Sof.Asm.instr a Svm.Isa.Halt;
  fst
    (Linker.Link.link ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x2000 }
       [ Sof.Asm.finish a ])

let test_cache_hits_and_misses () =
  let c = Omos.Cache.create () in
  let img = dummy_image "i" in
  Alcotest.(check bool) "miss" true (Omos.Cache.find c "k" ~acceptable:(fun _ -> true) = None);
  ignore (Omos.Cache.insert c ~key:"k" ~text_base:0x1000 ~data_base:0x2000 img);
  (match Omos.Cache.find c "k" ~acceptable:(fun _ -> true) with
  | Some e -> Alcotest.(check int) "hit counted" 1 e.Omos.Cache.hits
  | None -> Alcotest.fail "expected hit");
  let st = Omos.Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Omos.Cache.hits;
  Alcotest.(check int) "misses" 1 st.Omos.Cache.misses;
  Alcotest.(check bool) "disk accounted" true (st.Omos.Cache.disk_bytes_total > 0)

let test_cache_multiple_placements () =
  let c = Omos.Cache.create () in
  ignore (Omos.Cache.insert c ~key:"k" ~text_base:0x1000 ~data_base:0x2000 (dummy_image "a"));
  ignore (Omos.Cache.insert c ~key:"k" ~text_base:0x9000 ~data_base:0xA000 (dummy_image "b"));
  Alcotest.(check int) "two placements" 2 (List.length (Omos.Cache.candidates c "k"));
  Alcotest.(check int) "versions_max" 2 (Omos.Cache.stats c).Omos.Cache.versions_max;
  match Omos.Cache.find c "k" ~acceptable:(fun e -> e.Omos.Cache.text_base = 0x9000) with
  | Some e -> Alcotest.(check int) "selected" 0x9000 e.Omos.Cache.text_base
  | None -> Alcotest.fail "no acceptable placement"

let test_cache_invalidate () =
  let c = Omos.Cache.create () in
  ignore (Omos.Cache.insert c ~key:"k" ~text_base:0 ~data_base:0 (dummy_image "a"));
  Omos.Cache.invalidate c "k";
  Alcotest.(check bool) "gone" true (Omos.Cache.candidates c "k" = [])

(* -- server: library builds ------------------------------------------------- *)

let test_build_library_respects_constraints () =
  let w = Omos.World.create () in
  let b = Omos.Server.build w.Omos.World.server @@ Omos.Server.library "/lib/libc" in
  (* Figure 1's constraint-list: T at 0x100000, D at 0x40200000 *)
  Alcotest.(check int) "text base" 0x100000 b.Omos.Server.entry.Omos.Cache.text_base;
  Alcotest.(check int) "data base" 0x40200000 b.Omos.Server.entry.Omos.Cache.data_base

let test_build_library_cached () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let b1 = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  let links_after_first = (Omos.Server.stats s).Omos.Server.links in
  let b2 = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  Alcotest.(check int) "no relink" links_after_first (Omos.Server.stats s).Omos.Server.links;
  Alcotest.(check bool) "same image" true
    (b1.Omos.Server.entry.Omos.Cache.image == b2.Omos.Server.entry.Omos.Cache.image)

let test_conflicting_library_gets_alternate_placement () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  (match
     Constraints.Placement.reserve (Omos.Server.text_arena s) ~lo:0x100000
       ~size:0x20000 "squatter"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "reserve failed");
  let b = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  Alcotest.(check bool) "moved off the preferred base" true
    (b.Omos.Server.entry.Omos.Cache.text_base <> 0x100000)

let test_meta_and_fragment_files_from_fs () =
  (* meta-objects and fragments are ordinary files; the server can load
     them from the simulated filesystem in either object format *)
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let fs = w.Omos.World.kernel.Simos.Kernel.fs in
  let frag = compile "/obj/fsfrag.o" "int answer() { return 42; }" in
  Simos.Fs.mkdir_p fs "/src";
  Simos.Fs.write_file fs "/src/fsfrag.aout" (Sof.Aout.encode frag);
  Simos.Fs.write_file fs "/src/meta"
    (Bytes.of_string "(merge /obj/fsfrag.o)\n");
  Omos.Server.load_fragment_file s ~fs_path:"/src/fsfrag.aout" ~ns_path:"/obj/fsfrag.o";
  Omos.Server.load_meta_file s ~fs_path:"/src/meta" ~ns_path:"/lib/fslib";
  let b = Omos.Server.build s @@ Omos.Server.library "/lib/fslib" in
  Alcotest.(check bool) "answer bound" true
    (Linker.Image.find_symbol b.Omos.Server.entry.Omos.Cache.image "answer" <> None)

(* -- boot paths --------------------------------------------------------------- *)

let self_contained_ls (w : Omos.World.t) style =
  Omos.Schemes.self_contained_program w.Omos.World.rt ~style ~name:"ls"
    ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs ()

let test_bootstrap_and_integrated_agree () =
  let w = Omos.World.create ~personality:Omos.World.Mach_osf1 () in
  let boot = self_contained_ls w Omos.Schemes.Bootstrap in
  let integ = self_contained_ls w Omos.Schemes.Integrated in
  let _, out1 = Omos.Schemes.invoke w.Omos.World.rt boot ~args:Omos.World.ls_single_args in
  let _, out2 = Omos.Schemes.invoke w.Omos.World.rt integ ~args:Omos.World.ls_single_args in
  Alcotest.(check string) "same output" out1 out2

let test_integrated_cheaper_than_bootstrap () =
  let w = Omos.World.create ~personality:Omos.World.Mach_osf1 () in
  let boot = self_contained_ls w Omos.Schemes.Bootstrap in
  let integ = self_contained_ls w Omos.Schemes.Integrated in
  let time prog =
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args);
    let snap = Simos.Clock.snapshot w.Omos.World.kernel.Simos.Kernel.clock in
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args);
    let _, _, e = Simos.Clock.since w.Omos.World.kernel.Simos.Kernel.clock snap in
    e
  in
  let tb = time boot and ti = time integ in
  Alcotest.(check bool) "integrated faster" true (ti < tb)

(* -- specializers ---------------------------------------------------------------- *)

let test_lib_dynamic_specializer_generates_stubs () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let graph = Blueprint.Mgraph.parse "(specialize \"lib-dynamic\" /lib/libc)" in
  let r = Omos.Server.eval s graph in
  let exports = Jigsaw.Module_ops.exports r.Blueprint.Mgraph.m in
  Alcotest.(check bool) "strlen stub" true (List.mem "strlen" exports);
  let text =
    List.fold_left
      (fun a (o : Sof.Object_file.t) -> a + Bytes.length o.Sof.Object_file.text)
      0
      (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
  in
  let real = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  let tseg = Option.get (Linker.Image.text_segment real.Omos.Server.entry.Omos.Cache.image) in
  Alcotest.(check bool) "stubs much smaller" true
    (text * 4 < Bytes.length tseg.Linker.Image.bytes)

let test_monitor_specializer_records_trace () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let graph =
    Blueprint.Mgraph.Merge
      [
        Omos.Schemes.graph_of_objs (Omos.World.ls_client w);
        Blueprint.Mgraph.parse "(specialize \"monitor\" /lib/libc)";
      ]
  in
  let b = Omos.Server.build s @@ Omos.Server.static ~name:"ls-mon" graph in
  let loadable = Omos.Server.loadable_entry [ b ] in
  let p = Omos.Boot.integrated_exec s loadable ~args:Omos.World.ls_single_args in
  let code = Simos.Kernel.run w.Omos.World.kernel p () in
  Alcotest.(check int) "exit 0" 0 code;
  match Omos.Specializers.last_trace w.Omos.World.specializers with
  | None -> Alcotest.fail "no trace"
  | Some trace ->
      let order = Omos.Monitor.first_call_order trace in
      Alcotest.(check bool) "saw libc calls" true (List.length order >= 4);
      Alcotest.(check bool) "strlen called" true (List.mem "strlen" order)

(* -- monitor + reorder ------------------------------------------------------------ *)

let test_monitor_entry_exit_wrappers_preserve_semantics () =
  let lib =
    compile "/lib/t.o"
      "int helper(int x) { return x * 2; } \
       int compute(int x) { return helper(x) + helper(x + 1); }"
  in
  let main_o = compile "/obj/m.o" "int main() { return compute(10); }" in
  let m =
    Jigsaw.Module_ops.merge
      (Jigsaw.Module_ops.of_objects [ Workloads.Crt0.obj (); main_o ])
      (Jigsaw.Module_ops.of_object lib)
  in
  let monitored, trace = Omos.Monitor.monitored ~exits:true m in
  let k = Simos.Kernel.create () in
  let upcalls = Omos.Upcalls.install k in
  Omos.Monitor.attach upcalls trace;
  let img, _ =
    Linker.Link.link
      ~layout:{ Linker.Link.text_base = 0x10000; data_base = 0x400000 }
      (Jigsaw.Module_ops.fragments monitored)
  in
  let p = Simos.Kernel.create_process k ~args:[ "t" ] in
  Simos.Kernel.map_image k p ~key:"t" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  let code = Simos.Kernel.run k p () in
  (* helper(10)+helper(11) = 20+22 = 42 *)
  Alcotest.(check int) "semantics preserved" 42 code;
  let events = Omos.Monitor.trace_events trace in
  let enters = List.filter (function Omos.Monitor.Enter _ -> true | _ -> false) events in
  let exits = List.filter (function Omos.Monitor.Exit _ -> true | _ -> false) events in
  Alcotest.(check bool) "enter events" true (List.length enters >= 3);
  (* every wrapped call exits except _start, which exits the process *)
  Alcotest.(check int) "balanced" (List.length enters - 1) (List.length exits)

let test_monitor_entry_only_preserves_semantics () =
  let m =
    Jigsaw.Module_ops.of_objects
      [ Workloads.Crt0.obj ();
        compile "/obj/m.o"
          "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } \
           int main() { return fib(9); }" ]
  in
  let monitored, trace = Omos.Monitor.monitored m in
  let k = Simos.Kernel.create () in
  let upcalls = Omos.Upcalls.install k in
  Omos.Monitor.attach upcalls trace;
  let img, _ =
    Linker.Link.link
      ~layout:{ Linker.Link.text_base = 0x10000; data_base = 0x400000 }
      (Jigsaw.Module_ops.fragments monitored)
  in
  let p = Simos.Kernel.create_process k ~args:[ "t" ] in
  Simos.Kernel.map_image k p ~key:"t" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  Alcotest.(check int) "fib(9)" 34 (Simos.Kernel.run k p ());
  (* recursion: every fib call logged *)
  let calls = Omos.Monitor.call_sequence trace in
  Alcotest.(check bool) "many fib events" true (List.length calls > 20)

let test_reorder_clusters_used_functions () =
  let frags =
    List.init 12 (fun i ->
        compile (Printf.sprintf "f%d.o" i)
          (Printf.sprintf "int fn%d(int x) { return x + %d; }" i i))
  in
  let trace =
    {
      Omos.Monitor.names = [| "fn7"; "fn2"; "fn11" |];
      (* events stored reversed: call order fn7, fn2, fn11 *)
      events = [ Omos.Monitor.Enter 2; Omos.Monitor.Enter 1; Omos.Monitor.Enter 0 ];
      stamps = [ (-1, -1); (-1, -1); (-1, -1) ];
      count = 3;
    }
  in
  let reordered = Omos.Reorder.from_trace ~trace frags in
  let names =
    List.concat_map
      (fun (o : Sof.Object_file.t) ->
        List.filter_map
          (fun (s : Sof.Symbol.t) ->
            if Sof.Symbol.is_exported s then Some s.Sof.Symbol.name else None)
          o.Sof.Object_file.symbols)
      reordered
  in
  (match names with
  | "fn7" :: "fn2" :: "fn11" :: _ -> ()
  | _ -> Alcotest.failf "bad order: %s" (String.concat "," names));
  Alcotest.(check int) "nothing lost" 12 (List.length reordered)

(* -- dynload ------------------------------------------------------------------------ *)

let test_dynload_syscall () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/obj/klass.o"
    (compile "/obj/klass.o"
       "int klass_run(int x) { return client_base(x) * 7; }");
  let client =
    compile "/obj/dynmain.o"
      "int client_base(int x) { return x + 1; } \
       char bp[] = \"(merge /obj/klass.o)\"; \
       char symname[] = \"klass_run\"; \
       int main() { \
         int f; \
         f = __syscall(130, &bp, &symname); \
         if (f == 0 - 1) return 99; \
         return __icall(f, 5); }"
  in
  let b =
    Omos.Server.build s @@ Omos.Server.static ~name:"dynmain"
      (Omos.Schemes.graph_of_objs [ Workloads.Crt0.obj (); client ])
  in
  let dl = Omos.Dynload.create s in
  Omos.Dynload.attach dl w.Omos.World.upcalls ~client_images_of:(fun _ ->
      [ b.Omos.Server.entry.Omos.Cache.image ]);
  let loadable = Omos.Server.loadable_entry [ b ] in
  let p = Omos.Boot.integrated_exec s loadable ~args:[ "dynmain" ] in
  let code = Simos.Kernel.run w.Omos.World.kernel p () in
  (* klass_run(5) = client_base(5) * 7 = 42 *)
  Alcotest.(check int) "dynamically loaded class ran" 42 code

let test_dynload_ocaml_api () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/obj/k2.o"
    (compile "/obj/k2.o" "int twice(int x) { return x * 2; }");
  let b =
    Omos.Server.build s @@ Omos.Server.static ~name:"host"
      (Omos.Schemes.graph_of_objs
         [ Workloads.Crt0.obj (); compile "/obj/h.o" "int main() { return 0; }" ])
  in
  let dl = Omos.Dynload.create s in
  let loadable = Omos.Server.loadable_entry [ b ] in
  let p = Omos.Boot.integrated_exec s loadable ~args:[ "host" ] in
  let bound =
    Omos.Dynload.load dl p
      ~client_images:[ b.Omos.Server.entry.Omos.Cache.image ]
      ~graph:(Blueprint.Mgraph.parse "(merge /obj/k2.o)")
      ~symbols:[ "twice" ]
  in
  (match bound with
  | [ ("twice", addr) ] ->
      Alcotest.(check bool) "address in library arena" true
        (addr >= Omos.Server.lib_text_lo && addr < Omos.Server.lib_text_hi)
  | _ -> Alcotest.fail "bad binding result");
  try
    ignore
      (Omos.Dynload.load dl p
         ~client_images:[ b.Omos.Server.entry.Omos.Cache.image ]
         ~graph:(Blueprint.Mgraph.parse "(merge /obj/k2.o)")
         ~symbols:[ "absent" ]);
    Alcotest.fail "expected Dynload_error"
  with Omos.Dynload.Dynload_error _ -> ()

(* -- figure 2 through the server --------------------------------------------------- *)

let test_figure2_via_server () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  (* wrapper malloc returning real result + 1000; client reports
     malloc(8) - heap_base, so the +1000 is visible in the exit code *)
  Omos.Server.add_fragment s "/lib/test_malloc.o"
    (compile "/lib/test_malloc.o"
       "int malloc(int n) { return REAL_malloc(n) + 1000; }");
  Omos.Server.add_fragment s "/obj/use_malloc.o"
    (compile "/obj/use_malloc.o"
       "int main() { return malloc(8) - 0x60000000; }");
  Omos.Server.add_fragment s "/obj/crt0.o" (Workloads.Crt0.obj ());
  let run b =
    let p = Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ]) ~args:[ "m" ] in
    Simos.Kernel.run w.Omos.World.kernel p ()
  in
  let plain =
    Omos.Server.build s @@ Omos.Server.static ~name:"plain"
      (Blueprint.Mgraph.parse "(merge /obj/crt0.o /obj/use_malloc.o /lib/libc)")
  in
  Alcotest.(check int) "plain: heap base exactly" 0 (run plain);
  let fig2 =
    Blueprint.Mgraph.parse
      "(hide \"^REAL_malloc$\"\n\
       (merge\n\
       (restrict \"^malloc$\"\n\
       (copy_as \"^malloc$\" \"REAL_malloc\"\n\
       (merge /obj/crt0.o /obj/use_malloc.o /lib/libc)))\n\
       /lib/test_malloc.o))"
  in
  let trapped = Omos.Server.build s @@ Omos.Server.static ~name:"trapped" fig2 in
  Alcotest.(check int) "trapped: +1000" 1000 (run trapped)

let test_figure2_exports_shape () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/lib/test_malloc2.o"
    (compile "/lib/test_malloc2.o"
       "int malloc(int n) { return REAL_malloc(n) + 1000; }");
  let fig2 =
    Blueprint.Mgraph.parse
      "(hide \"^REAL_malloc$\"\n\
       (merge\n\
       (restrict \"^malloc$\"\n\
       (copy_as \"^malloc$\" \"REAL_malloc\" /lib/libc))\n\
       /lib/test_malloc2.o))"
  in
  let r = Omos.Server.eval s fig2 in
  let exports = Jigsaw.Module_ops.exports r.Blueprint.Mgraph.m in
  Alcotest.(check bool) "malloc exported" true (List.mem "malloc" exports);
  Alcotest.(check bool) "REAL_malloc hidden" false (List.mem "REAL_malloc" exports)

let () =
  Alcotest.run "omos"
    [
      ("namespace", [ Alcotest.test_case "bind/lookup/list" `Quick test_namespace ]);
      ( "cache",
        [
          Alcotest.test_case "hits/misses" `Quick test_cache_hits_and_misses;
          Alcotest.test_case "placements" `Quick test_cache_multiple_placements;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        ] );
      ( "server",
        [
          Alcotest.test_case "constraints honoured" `Quick test_build_library_respects_constraints;
          Alcotest.test_case "library cached" `Quick test_build_library_cached;
          Alcotest.test_case "conflict -> alternate" `Quick test_conflicting_library_gets_alternate_placement;
          Alcotest.test_case "load from fs files" `Quick test_meta_and_fragment_files_from_fs;
        ] );
      ( "boot",
        [
          Alcotest.test_case "bootstrap = integrated output" `Quick test_bootstrap_and_integrated_agree;
          Alcotest.test_case "integrated cheaper" `Quick test_integrated_cheaper_than_bootstrap;
        ] );
      ( "specializers",
        [
          Alcotest.test_case "lib-dynamic stubs" `Quick test_lib_dynamic_specializer_generates_stubs;
          Alcotest.test_case "monitor trace" `Quick test_monitor_specializer_records_trace;
        ] );
      ( "monitor+reorder",
        [
          Alcotest.test_case "entry/exit wrappers" `Quick test_monitor_entry_exit_wrappers_preserve_semantics;
          Alcotest.test_case "entry-only wrappers" `Quick test_monitor_entry_only_preserves_semantics;
          Alcotest.test_case "reorder clusters" `Quick test_reorder_clusters_used_functions;
        ] );
      ( "dynload",
        [
          Alcotest.test_case "syscall + icall" `Quick test_dynload_syscall;
          Alcotest.test_case "ocaml api" `Quick test_dynload_ocaml_api;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "via server" `Quick test_figure2_via_server;
          Alcotest.test_case "exports shape" `Quick test_figure2_exports_shape;
        ] );
    ]
