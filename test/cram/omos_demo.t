The simulated-machine driver: run the paper's workloads under each
shared-library scheme, on each OS personality.

ls over the single-entry directory, four schemes, identical output:

  $ omos_demo run --scheme static ls /data/one | head -1
  README

  $ omos_demo run --scheme dynamic ls /data/one | head -1
  README

  $ omos_demo run --scheme omos ls /data/one | head -1
  README

  $ omos_demo run --scheme partial ls /data/one | head -1
  README

the long listing goes through sort/stat/owner/mode machinery:

  $ omos_demo run --scheme omos -- ls -laF /data/many 2>/dev/null | head -4
  -rwxr-xr-x root      2 .hidden
  -rwxr-xr-x daemon      2 .profile
  -rwxr-xr-x bin      1 file000.dat
  -rwxr-xr-x sys      2 file001.dat

codegen runs on the Mach personality through the integrated exec:

  $ omos_demo run --scheme omos-integrated --personality mach codegen | head -1
  codegen: 124646

the namespace exported by the server:

  $ omos_demo ns
  meta-objects:
    /demo/hello
    /lib/libC
    /lib/libal1
    /lib/libal2
    /lib/libc
    /lib/libl
    /lib/libm
  directories:
    /lib: crt0.o libC libC.o libal1 libal1.o libal2 libal2.o libc libl libl.o libm libm.o
    /libc: gen hppa net quad rpc stdio stdlib string
    /obj: codegen ls.o

unknown programs fail cleanly:

  $ omos_demo run nosuch 2>&1 | head -1
  omos_demo: internal error, uncaught exception:
