The provenance explainer: instantiate the interposition demo cold and
warm, and explain the cached image. /demo/hello is
(rename "^greet$" "hello" (override /demo/base.o /demo/impl.o)), so
the journal must name the override winner and loser and the operator
chain, and the warm request must be served from the cache.

  $ ofe explain /demo/hello
  meta: /demo/hello
  cold: cache miss - evaluated, linked and cached
  warm: cache hit - provenance served from the image cache (no relink)
  placement: text@0x03000000 satisfying at 0x3000000 data@0x50000000 satisfying at 0x50000000
  cache generation: 0
  operator chain: override -> merge -> rename
  journal: 9 events, 2 symbol bindings
    interpose greet: /demo/impl.o over /demo/base.o (override)
    relocs text: 1
  residency: placed

Asking about the exported symbol follows the rename link back to the
decisions recorded under its prior name "greet": the interposition,
the override, the rename, and the final binding in the winner.

  $ ofe explain /demo/hello --symbol hello
  meta: /demo/hello
  cold: cache miss - evaluated, linked and cached
  warm: cache hit - provenance served from the image cache (no relink)
  placement: text@0x03000000 satisfying at 0x3000000 data@0x50000000 satisfying at 0x50000000
  cache generation: 0
  operator chain: override -> merge -> rename
  journal: 9 events, 2 symbol bindings
    interpose greet: /demo/impl.o over /demo/base.o (override)
    relocs text: 1
  residency: placed
  symbol hello:
    interpose greet: /demo/impl.o over /demo/base.o (override)
    sym override greet: definition from /demo/impl.o replaces /demo/base.o
    sym rename hello (was greet): renamed from greet
    bind hello @ 0x03000128 in /demo/impl.o (definition)

The JSON form carries the full record (content digests vary with the
toolchain, so check the structure, not the bytes):

  $ ofe explain /demo/hello --json | tr ',' '\n' | grep -c '"type":"interpose"'
  1
  $ ofe explain /demo/hello --json | grep -o '"ops":\[[^]]*\]'
  "ops":["override","merge","rename"]

Unknown symbols and unknown meta-objects fail cleanly:

  $ ofe explain /demo/hello --symbol nosuch > /dev/null
  ofe: no journal events for symbol nosuch in /demo/hello
  ofe: flight recorder dump written to flight.json, flight.txt
  [1]
  $ ofe explain /lib/nosuch
  ofe: unknown meta-object /lib/nosuch
  ofe: flight recorder dump written to flight.json, flight.txt
  [1]
