The symbol-flow linter: every committed meta in the quickstart world
must lint clean, and --verify must prove the predicted export and
undefined sets equal the real evaluator's, without linking anything.

  $ ofe lint --all --verify | tail -1
  lint: 7 metas, 0 errors, 0 warnings

A meta with a genuine namespace error: merging the same fragment twice
duplicates every global it defines. The linter names the symbol and the
m-graph path, and exits 2.

  $ cat > dup.meta <<'EOF'
  > (merge /demo/base.o /demo/base.o)
  > EOF
  $ ofe lint --meta-file dup.meta
  /local/dup: 1 error, 0 warnings (exports=2 undefined=0)
    E002 duplicate-global-in-merge at merge: duplicate global definition of helper (in /demo/base.o and /demo/base.o) [greet, helper]
  lint: 1 meta, 1 error, 0 warnings
  ofe: flight recorder dump written to flight.json, flight.txt
  [2]

Conflicting address constraints are caught before any placement is
attempted:

  $ cat > conflict.meta <<'EOF'
  > (constraint-list "T" 0x200000)
  > (constrain "T" 0x300000 (merge /demo/base.o))
  > EOF
  $ ofe lint --meta-file conflict.meta
  /local/conflict: 1 error, 0 warnings (exports=2 undefined=0)
    E004 conflicting-address-constraints at constrain: segment T prefers 2 distinct base addresses at priority 6 (0x200000, 0x300000)
  lint: 1 meta, 1 error, 0 warnings
  ofe: flight recorder dump written to flight.json, flight.txt
  [2]

Warnings alone keep exit 0, unless --max-warnings is exceeded:

  $ cat > warny.meta <<'EOF'
  > (override /demo/impl.o /lib/libm.o)
  > EOF
  $ ofe lint --meta-file warny.meta
  /local/warny: 0 errors, 1 warning (exports=28 undefined=0)
    W102 override-overrides-nothing at override: the right operand exports nothing the left operand defines; override replaces no binding
  lint: 1 meta, 0 errors, 1 warning
  $ ofe lint --meta-file warny.meta --max-warnings 0
  /local/warny: 0 errors, 1 warning (exports=28 undefined=0)
    W102 override-overrides-nothing at override: the right operand exports nothing the left operand defines; override replaces no binding
  lint: 1 meta, 0 errors, 1 warning
  ofe: flight recorder dump written to flight.json, flight.txt
  [2]

The JSON report carries the findings machine-readably:

  $ ofe lint --meta-file dup.meta --json 2>/dev/null | tr ',' '\n' | grep -E '"(lint|code|severity)"'
  {"lint":"omos.lint/1"
  "findings":[{"code":"E002"
  "severity":"error"

The diagnosis also surfaces when a broken blueprint reaches the other
commands: explain refuses to instantiate it and reports the lint
findings instead of an opaque evaluator backtrace.

  $ ofe explain --meta-file dup.meta
  ofe: /local/dup: blueprint evaluation failed: merge: duplicate definition of helper (in /demo/base.o and /demo/base.o)
  ofe:   E002 duplicate-global-in-merge at merge: duplicate global definition of helper (in /demo/base.o and /demo/base.o) [greet, helper]
  ofe: flight recorder dump written to flight.json, flight.txt
  [2]
