The request-path tracer: instantiate /lib/libc in the quickstart world,
export a Chrome trace_event file, and self-validate it. A cold build
must show the full phase tree and globally-consistent cache counters.

  $ ofe trace /lib/libc
  wrote trace.json
  cache_hit=false
  phases: eval=true place=true link=true map=true
  cache counters agree: hits=true misses=true

The file is one JSON object wrapping a traceEvents array, starting with
the process-name metadata record:

  $ head -c 15 trace.json && echo
  {"traceEvents":

The root request span and the phase spans are all present as "X"
(complete) events:

  $ grep -c '"name":"omos.instantiate"' trace.json
  1
  $ grep -o '"name":"blueprint.eval"' trace.json | head -1
  "name":"blueprint.eval"
  $ grep -o '"name":"constraints.place"' trace.json | head -1
  "name":"constraints.place"
  $ grep -o '"name":"linker.link"' trace.json | head -1
  "name":"linker.link"
  $ grep -o '"name":"kernel.map_image"' trace.json | head -1
  "name":"kernel.map_image"

An unknown meta-object fails cleanly:

  $ ofe trace /lib/nosuch
  ofe: unknown meta-object /lib/nosuch
  ofe: flight recorder dump written to flight.json, flight.txt
  [1]

The stats command dumps the metrics registry in the stable
omos.metrics/1 schema:

  $ ofe stats | head -c 24 && echo
  {"schema":"omos.metrics/

Histogram entries carry nearest-rank percentiles:

  $ ofe stats | grep -o '"server.us.instantiate":{[^}]*}' | grep -c '"p50".*"p95".*"p99"'
  1

An unknown meta-object fails as cleanly in stats as in trace:

  $ ofe stats /lib/nosuch
  ofe: unknown meta-object /lib/nosuch
  ofe: flight recorder dump written to flight.json, flight.txt
  [1]
