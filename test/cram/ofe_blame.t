Causal critical-path blame: record a run with the causal event graph
on and attribute every simulated microsecond — per-stage self-compute
vs typed waits — with deterministic what-if replays of the recorded
graph under counterfactual knobs.

A single cold build is all self-compute: the request never waits.

  $ ofe blame /demo/hello
  requests: 1  total_sim_us: 29.8  wait_us: 0.0 (0.0%)
  category       total_us   frac    p50_us    p95_us
  self.parse          0.0  0.000       0.0       0.0
  self.lint           0.0  0.000       0.0       0.0
  self.eval           0.0  0.000       0.0       0.0
  self.place         25.0  0.839      25.0      25.0
  self.link           4.8  0.161       4.8       4.8
  queue               0.0  0.000       0.0       0.0
  batch               0.0  0.000       0.0       0.0
  coalesce            0.0  0.000       0.0       0.0
  sched               0.0  0.000       0.0       0.0

The smoke workload, pipelined 4 deep so requests actually contend:
batched placement parks requests at the place boundary and coalescing
makes followers wait on the leader's in-flight build.

  $ cat > smoke.spec <<'EOF2'
  > clients 2
  > requests 8
  > seed 5
  > concurrency 4
  > meta /demo/hello
  > meta /lib/libm
  > mix instantiate=1
  > EOF2

  $ ofe blame --workload smoke.spec
  requests: 8  total_sim_us: 1032.2  wait_us: 751.8 (72.8%)
  category       total_us   frac    p50_us    p95_us
  self.parse          0.0  0.000       0.0       0.0
  self.lint           0.0  0.000       0.0       0.0
  self.eval           0.0  0.000       0.0       0.0
  self.place         50.0  0.048       0.0      25.0
  self.link         230.4  0.223       0.0     225.6
  queue               0.0  0.000       0.0       0.0
  batch               0.0  0.000       0.0       0.0
  coalesce          751.8  0.728       0.0     250.6
  sched               0.0  0.000       0.0       0.0

The stable omos.blame/1 schema, byte-for-byte:

  $ ofe blame --workload smoke.spec --json
  {"schema":"omos.blame/1","requests":8,"total_sim_us":1032.2,"wait_us":751.8,"wait_frac":0.728347,"categories":[{"category":"self.parse","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"self.lint","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"self.eval","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"self.place","total_us":50,"frac":0.0484402,"p50_us":0,"p95_us":25},{"category":"self.link","total_us":230.4,"frac":0.223213,"p50_us":0,"p95_us":225.6},{"category":"queue","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"batch","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"coalesce","total_us":751.8,"frac":0.728347,"p50_us":0,"p95_us":250.6},{"category":"sched","total_us":0,"frac":0,"p50_us":0,"p95_us":0}]}

The what-if replay predicts the cost of turning batched placement off
— every member pays its own solver pass instead of sharing one:

  $ ofe blame --workload smoke.spec --json --what-if batch=off
  {"schema":"omos.blame/1","requests":8,"total_sim_us":1032.2,"wait_us":751.8,"wait_frac":0.728347,"categories":[{"category":"self.parse","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"self.lint","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"self.eval","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"self.place","total_us":50,"frac":0.0484402,"p50_us":0,"p95_us":25},{"category":"self.link","total_us":230.4,"frac":0.223213,"p50_us":0,"p95_us":225.6},{"category":"queue","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"batch","total_us":0,"frac":0,"p50_us":0,"p95_us":0},{"category":"coalesce","total_us":751.8,"frac":0.728347,"p50_us":0,"p95_us":250.6},{"category":"sched","total_us":0,"frac":0,"p50_us":0,"p95_us":0}],"what_if":{"knob":"batch=off","recorded_us":1032.2,"predicted_us":1032.2,"delta_us":0}}

Critical-path detail of one request, and folded flamegraph stacks:

  $ ofe blame --workload smoke.spec --request 1 --folded out.folded
  requests: 8  total_sim_us: 1032.2  wait_us: 751.8 (72.8%)
  category       total_us   frac    p50_us    p95_us
  self.parse          0.0  0.000       0.0       0.0
  self.lint           0.0  0.000       0.0       0.0
  self.eval           0.0  0.000       0.0       0.0
  self.place         50.0  0.048       0.0      25.0
  self.link         230.4  0.223       0.0     225.6
  queue               0.0  0.000       0.0       0.0
  batch               0.0  0.000       0.0       0.0
  coalesce          751.8  0.728       0.0     250.6
  sched               0.0  0.000       0.0       0.0
  request 1: lib:/lib/libm sim_us=250.6 hit=true
    [    3659.2,     3909.8) coalesce          250.6 us on=r0
  wrote out.folded
  $ sort out.folded
  lib:/demo/hello;self;link 4.8
  lib:/demo/hello;self;place 25.0
  lib:/lib/libm;self;link 225.6
  lib:/lib/libm;self;place 25.0
  lib:/lib/libm;wait;coalesce 751.8
