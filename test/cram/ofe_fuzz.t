The seeded blueprint/workload fuzzer: each iteration generates a
dependency-graph scenario plus a workload, then holds it to three
oracles — the lint/symflow analyzer must agree with the real
evaluator, residency invariants must hold after every operation, and
the batched placement pipeline must be byte-equivalent to the serial
path. A fixed seed is byte-reproducible.

  $ ofe fuzz --seed 1 --iterations 5 --progress 2
  iter 2/5 ok (clean_libs=3 events=27)
  iter 4/5 ok (clean_libs=4 events=21)
  fuzz: 5 iterations clean (seed 1)

  $ ofe fuzz --seed 1 --iterations 5 --progress 2 > again.txt
  $ ofe fuzz --seed 1 --iterations 5 --progress 2 | cmp - again.txt

Minimized repros are stored in the omos.fuzzcase/1 format and can be
replayed directly. This one is the batched-placement ordering repro
from bench/corpus/:

  $ cat > tie.fuzzcase <<'EOF'
  > # bug 1 repro: batched placement solved jobs in reverse submit order
  > seed 834212133
  > mod /fuzz/m0v0.o f_0_2=818:
  > lib /fuzz/lib1 (constrain "D" 1086324736 /fuzz/m0v0.o)
  > lib /fuzz/lib2 /fuzz/lib1
  > wl clients=1 requests=2 seed=94118 concurrency=2 evict_bytes=0 mix=instantiate:1
  > EOF

  $ ofe fuzz --replay tie.fuzzcase
  tie.fuzzcase: ok (clean_libs=2 events=2)

A malformed case fails cleanly:

  $ echo "garbage 1" > bad.fuzzcase
  $ ofe fuzz --replay bad.fuzzcase
  ofe: fuzzcase: unknown keyword: garbage
  [1]
