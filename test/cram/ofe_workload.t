The deterministic multi-client workload driver: simulated clients
interleave instantiates, cache-hitting re-requests, dynload/unload
pairs, and evictions, scheduled off the simulated clock and a seeded
PRNG. Each line carries the request id, client, operation, cache-hit
flag, and simulated cost; the trailing # line is the rolling health
summary.

  $ cat > smoke.spec <<'EOF'
  > clients 2
  > requests 8
  > seed 5
  > meta /demo/hello
  > meta /lib/libm
  > mix instantiate=3 dynload=1
  > EOF

  $ ofe workload smoke.spec | tee run1.txt
  req=0 client=1 op=instantiate target=/lib/libm hit=false cost_us=250.6 wait_us=0.0
  req=1 client=1 op=instantiate target=/lib/libm hit=true cost_us=0.0 wait_us=0.0
  req=2 client=1 op=instantiate target=/lib/libm hit=true cost_us=0.0 wait_us=0.0
  req=3 client=1 op=dynload target=/demo/impl.o hit=- cost_us=1920.0 wait_us=0.0
  req=4 client=1 op=instantiate target=/demo/hello hit=false cost_us=29.8 wait_us=0.0
  req=5 client=1 op=unload target=/demo/impl.o hit=- cost_us=0.0 wait_us=0.0
  req=6 client=0 op=instantiate target=/lib/libm hit=true cost_us=0.0 wait_us=0.0
  req=7 client=0 op=instantiate target=/demo/hello hit=true cost_us=0.0 wait_us=0.0
  # requests=6 window=6 hit_ratio=0.67 p50_us=0.0 p95_us=250.6 p99_us=250.6 mean_us=46.7 max_us=250.6 conflict_rate=0.000 violation_rate=0.000

Two runs of the same spec are byte-identical:

  $ ofe workload smoke.spec > run2.txt
  $ cmp run1.txt run2.txt

A seeded fault mid-workload trips the flight recorder: every fired
fault dumps the ring next to the invocation, and the recorded fault
events name the client and request that hit them.

  $ cat > fault.spec <<'EOF'
  > clients 2
  > requests 20
  > seed 3
  > fault_seed 11
  > fault place_conflict 0.6
  > fault evict_storm 0.3
  > EOF

  $ ofe workload fault.spec > /dev/null
  $ ls flight.json flight.txt
  flight.json
  flight.txt
  $ head -c 36 flight.json && echo
  {"type":"flight_dump","reason":"faul
  $ grep -m 1 " fault " flight.txt
  000041 at=3684.2us client=1 request=0 fault         residency.place_conflict

A bad spec fails cleanly (and, with nothing recorded, leaves no dump):

  $ rm flight.json flight.txt
  $ echo "clientz 3" > bad.spec
  $ ofe workload bad.spec
  ofe: workload spec: line 1: unknown directive: clientz
  [1]
  $ ls flight.json
  ls: cannot access 'flight.json': No such file or directory
  [2]

The concurrency directive pipelines instantiates through the server's
staged submit/await API: up to N requests in flight, placements solved
in one batched constraint pass, events still in submission order and
byte-reproducible. In-flight duplicates coalesce into cache hits, and
per-request cost now includes queue wait:

  $ cat > conc.spec <<'SPEC'
  > clients 2
  > requests 6
  > seed 5
  > concurrency 4
  > meta /demo/hello
  > meta /lib/libm
  > mix instantiate=1
  > SPEC

  $ ofe workload conc.spec > conc1.txt
  $ ofe workload --concurrency 4 conc.spec > conc2.txt
  $ cmp conc1.txt conc2.txt && cat conc1.txt
  req=0 client=1 op=instantiate target=/lib/libm hit=false cost_us=250.6 wait_us=0.0
  req=1 client=1 op=instantiate target=/lib/libm hit=true cost_us=250.6 wait_us=250.6
  req=2 client=1 op=instantiate target=/lib/libm hit=true cost_us=250.6 wait_us=250.6
  req=3 client=1 op=instantiate target=/lib/libm hit=true cost_us=250.6 wait_us=250.6
  req=4 client=1 op=instantiate target=/lib/libm hit=true cost_us=0.0 wait_us=0.0
  req=5 client=1 op=instantiate target=/lib/libm hit=true cost_us=0.0 wait_us=0.0
  # requests=6 window=6 hit_ratio=0.83 p50_us=250.6 p95_us=250.6 p99_us=250.6 mean_us=167.1 max_us=250.6 conflict_rate=0.000 violation_rate=0.000
