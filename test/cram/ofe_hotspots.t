The continuous hotness profile: drive a monitored E1 run (`ls -laF`
against the monitored libc) and report windowed call counts plus the
layout-locality audit. The acceptance property of the audit: strictly
positive headroom under the original section order, zero after
profile-driven reordering.

  $ ofe hotspots /lib/libc --audit
  window: 3276 events (cap 4096)
  
  meta: /lib/libc
    calls: 3276 across 18 routines
    top functions:
      write                       886
      strlen                      682
      putstr                      478
      putchar                     340
      strcpy                      272
      strcat                      136
      readdir                      69
      fmt_mode                     68
    top transitions:
      putstr -> strlen (478)
      strlen -> write (478)
      write -> putstr (342)
      putchar -> write (340)
      write -> putchar (272)
    audit:
      routines called: 18 of 303 (9424 bytes of text)
      pages touched, actual order:   11
      pages touched, optimal packed: 3
      pages touched, after reorder:  3
      locality headroom: 8 pages (0 after reorder)


The JSON export is byte-deterministic and carries the stable
omos.hotspots/1 schema with the audit attached:

  $ ofe hotspots /lib/libc --json > a.json
  $ ofe hotspots /lib/libc --json > b.json
  $ cmp a.json b.json
  $ head -c 26 a.json; echo
  {"schema":"omos.hotspots/1

Folded call counts for flamegraph tooling:

  $ ofe hotspots /lib/libc --folded hot.folded
  window: 3276 events (cap 4096)
  
  meta: /lib/libc
    calls: 3276 across 18 routines
    top functions:
      write                       886
      strlen                      682
      putstr                      478
      putchar                     340
      strcpy                      272
      strcat                      136
      readdir                      69
      fmt_mode                     68
    top transitions:
      putstr -> strlen (478)
      strlen -> write (478)
      write -> putstr (342)
      putchar -> write (340)
      write -> putchar (272)
  wrote hot.folded

  $ head -3 hot.folded
  /lib/libc;write 886
  /lib/libc;strlen 682
  /lib/libc;putstr 478

`ofe top` reports the hot column from the same Health window: "-" when
nothing is monitored (plain workloads carry no monitor specializer).

  $ ofe top | head -2
     reqs  window   hit%   p50_us   p95_us   p99_us  mean_us   max_us  confl/req  viol/req  hot
       17      17   64.7      0.0    250.6    250.6     48.4    250.6      0.000     0.000  -
