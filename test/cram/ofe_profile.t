The simulated-cost profiler: instantiate and map the demo meta-object
with every cost charge attributed to the live span stack. The folded
stacks partition the total exactly — 120.0 + 4.8 = 124.8 — and every
microsecond lands under a named phase.

  $ ofe profile /demo/hello
  meta: /demo/hello
  total simulated cost: 149.8 us
  by operator (innermost span):
    kernel.map_image                    120.0 us   80.1%
    omos.instantiate                     25.0 us   16.7%
    server.link                           4.8 us    3.2%
  folded stacks:
    ofe.profile;kernel.map_image 120.0
    ofe.profile;omos.instantiate 25.0
    ofe.profile;omos.instantiate;server.link 4.8

The folded output can go straight to a flamegraph tool:

  $ ofe profile /demo/hello --folded folded.txt | tail -1
  wrote folded.txt
  $ cat folded.txt
  ofe.profile;kernel.map_image 120.0
  ofe.profile;omos.instantiate 25.0
  ofe.profile;omos.instantiate;server.link 4.8

The JSON form splits each path by cost kind:

  $ ofe profile /demo/hello --json
  {"meta":"/demo/hello","total_us":149.8,"rows":[{"path":"ofe.profile;kernel.map_image","user_us":0,"system_us":120,"io_us":0},{"path":"ofe.profile;omos.instantiate","user_us":0,"system_us":25,"io_us":0},{"path":"ofe.profile;omos.instantiate;server.link","user_us":0,"system_us":4.8,"io_us":0}]}

Unknown meta-objects fail cleanly:

  $ ofe profile /lib/nosuch
  ofe: unknown meta-object /lib/nosuch
  ofe: flight recorder dump written to flight.json, flight.txt
  [1]
