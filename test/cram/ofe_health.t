The health & SLO gate: run a workload, tabulate rolling health, and
gate it against a bounds file. Generous bounds pass:

  $ cat > ok.slo <<'EOF'
  > hit_ratio_min 0.40
  > p95_us_max 500
  > p99_us_max 500
  > conflict_rate_max 0.05
  > violation_rate_max 0
  > EOF

  $ ofe health --slo ok.slo
  hit_ratio_min      bound=0.4 actual=0.647059 ok
  p95_us_max         bound=500 actual=250.6 ok
  p99_us_max         bound=500 actual=250.6 ok
  conflict_rate_max  bound=0.05 actual=0 ok
  violation_rate_max bound=0 actual=0 ok

A tightened SLO breaches, exits 2, and leaves a flight-recorder dump
of the run behind:

  $ cat > tight.slo <<'EOF'
  > hit_ratio_min 0.99
  > EOF

  $ ofe health --slo tight.slo
  hit_ratio_min      bound=0.99 actual=0.647059 FAIL
  ofe: SLO violated
  ofe: flight recorder dump written to flight.json, flight.txt
  [2]
  $ ls flight.json flight.txt
  flight.json
  flight.txt

A malformed SLO file is an input error (exit 1), not a breach:

  $ echo "p95_us_maximum 5" > bad.slo
  $ ofe health --slo bad.slo 2>&1 | head -1
  ofe: slo: unknown SLO key: p95_us_maximum

ofe top tabulates the same rolling window, one-shot by default or
every N requests with --watch:

  $ ofe top
     reqs  window   hit%   p50_us   p95_us   p99_us  mean_us   max_us  confl/req  viol/req  hot
       17      17   64.7      0.0    250.6    250.6     48.4    250.6      0.000     0.000  -

  $ ofe top --watch --every 10
     reqs  window   hit%   p50_us   p95_us   p99_us  mean_us   max_us  confl/req  viol/req  hot
        7       7   57.1      0.0    250.6    250.6     59.4    250.6      0.000     0.000  -
       12      12   66.7      0.0    250.6    250.6     45.9    250.6      0.000     0.000  -
       17      17   64.7      0.0    250.6    250.6     48.4    250.6      0.000     0.000  -

Unknown flags print usage and exit 2 — distinguishable from build
errors (1) and success (0):

  $ ofe top --bogus
  ofe: unknown option '--bogus'.
  Usage: ofe top [--every=N] [--watch] [OPTION]… [SPEC]
  Try 'ofe top --help' or 'ofe --help' for more information.
  [2]

The split wait accounting feeds the health window: each request's
wait share (queue + batch + coalesce + sched, as a fraction of its
sim_us) is recorded, and the SLO file can bound its mean and p95. The
default workload is serial, so no request ever waits on another:

  $ cat > wait.slo <<'EOF2'
  > wait_frac_max 0
  > wait_frac_p95_max 0
  > EOF2

  $ ofe health --slo wait.slo
  wait_frac_max      bound=0 actual=0 ok
  wait_frac_p95_max  bound=0 actual=0 ok
