(* Fuzzer tests: generator determinism, fuzzcase serialization
   round-trips, shrinking, oracle verdicts on known-clean seeds, and a
   replay of the committed corpus under bench/corpus/. *)

module Fz = Workloads.Fuzz
module Fuzzer = Omos.Fuzzer

let gen ?(max_modules = 12) ?(max_libs = 6) seed =
  Fz.generate ~max_modules ~max_libs ~seed ()

let test_generate_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d" seed)
        (Fz.to_string (gen seed))
        (Fz.to_string (gen seed)))
    [ 1; 7; 42; 834212133; 99991 ]

let test_derive_seed_schedule () =
  (* the per-iteration schedule must stay in the generator's seed range
     and not collide over a realistic run length *)
  List.iter
    (fun master ->
      let seen = Hashtbl.create 256 in
      for i = 0 to 499 do
        let s = Fz.derive_seed ~master i in
        Alcotest.(check bool) "in range" true (s >= 0 && s <= 0x3FFFFFFF);
        Alcotest.(check bool)
          (Printf.sprintf "master=%d i=%d fresh" master i)
          false (Hashtbl.mem seen s);
        Hashtbl.replace seen s ()
      done)
    [ 1; 2; 17 ]

let test_roundtrip () =
  List.iter
    (fun seed ->
      let c = gen seed in
      let text = Fz.to_string c in
      let c' = Fz.of_string text in
      Alcotest.(check string)
        (Printf.sprintf "seed %d roundtrip" seed)
        text (Fz.to_string c'))
    [ 1; 3; 42; 252753870; 853197758 ]

let test_of_string_rejects_garbage () =
  let expect text =
    try
      ignore (Fz.of_string text);
      Alcotest.failf "accepted: %s" text
    with Fz.Case_error _ -> ()
  in
  expect "nonsense 1\n";
  expect "seed x\n";
  expect "mod /fuzz/m0v0.o\n";
  expect "lib /fuzz/lib0 (merge\n"

let test_shrink_candidates () =
  let c = gen 42 in
  let orig = Fz.to_string c in
  let cands = Fz.shrink c in
  Alcotest.(check bool) "nontrivial case shrinks" true (cands <> []);
  List.iter
    (fun c' ->
      let t = Fz.to_string c' in
      Alcotest.(check bool) "candidate differs from original" true (t <> orig);
      (* every candidate is itself a valid, serializable case *)
      Alcotest.(check string) "candidate roundtrips" t
        (Fz.to_string (Fz.of_string t)))
    cands

let test_run_case_clean_seed () =
  (* seed 1's schedule ran clean for 500 iterations when this fuzzer
     landed; the first iteration is cheap enough to pin in runtest *)
  match Fuzzer.run_case (gen (Fz.derive_seed ~master:1 0)) with
  | Fuzzer.Pass _ -> ()
  | Fuzzer.Fail f -> Alcotest.failf "oracle %s: %s" f.Fuzzer.fz_oracle f.Fuzzer.fz_detail

let test_fuzz_smoke () =
  match Fuzzer.fuzz ~seed:1 ~iterations:25 () with
  | None -> ()
  | Some (i, f) ->
      Alcotest.failf "iteration %d failed oracle %s: %s" i f.Fuzzer.fz_oracle
        f.Fuzzer.fz_detail

let test_reduce_keeps_failure_oracle () =
  (* reducing a "failure" whose case actually passes must hand the case
     back unchanged: the reducer only accepts candidates that reproduce
     the same oracle *)
  let c = gen 7 in
  let f = { Fuzzer.fz_oracle = "crash"; fz_detail = "synthetic"; fz_case = c } in
  let minimized, runs = Fuzzer.reduce ~budget:50 f in
  Alcotest.(check string) "unchanged" (Fz.to_string c) (Fz.to_string minimized);
  Alcotest.(check bool) "reducer did probe candidates" true (runs > 0)

(* `dune runtest` runs the binary from test/, `dune exec` from the
   project root — accept either anchor *)
let corpus_dir =
  let candidates =
    [ Filename.concat ".." (Filename.concat "bench" "corpus");
      Filename.concat "bench" "corpus" ]
  in
  match
    List.find_opt
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      candidates
  with
  | Some d -> d
  | None -> List.hd candidates

let test_corpus_replays () =
  Alcotest.(check bool)
    (corpus_dir ^ " exists") true
    (Sys.file_exists corpus_dir && Sys.is_directory corpus_dir);
  let cases =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fuzzcase")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (List.length cases >= 7);
  List.iter
    (fun name ->
      let path = Filename.concat corpus_dir name in
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let c = Fz.of_string text in
      (* the committed corpus must stay byte-reproducible *)
      Alcotest.(check string)
        (name ^ " re-serializes")
        (Fz.to_string c)
        (Fz.to_string (Fz.of_string (Fz.to_string c)));
      match Fuzzer.run_case c with
      | Fuzzer.Pass _ -> ()
      | Fuzzer.Fail f ->
          Alcotest.failf "%s regressed: oracle %s: %s" name f.Fuzzer.fz_oracle
            f.Fuzzer.fz_detail)
    cases

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "seed schedule" `Quick test_derive_seed_schedule;
        ] );
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_of_string_rejects_garbage;
        ] );
      ( "shrink",
        [ Alcotest.test_case "candidates" `Quick test_shrink_candidates ] );
      ( "oracles",
        [
          Alcotest.test_case "clean seed passes" `Quick test_run_case_clean_seed;
          Alcotest.test_case "fuzz smoke" `Quick test_fuzz_smoke;
          Alcotest.test_case "reduce keeps oracle" `Quick
            test_reduce_keeps_failure_oracle;
        ] );
      ("corpus", [ Alcotest.test_case "replays" `Quick test_corpus_replays ]);
    ]
