(* Tests of the residency layer: cache <-> arena coherence, the
   invariant checker, deterministic fault injection, and regressions
   for the historical divergence bugs (each of which failed against the
   pre-residency server):

   - a stale cached candidate caused the server to link an *empty*
     module instead of re-evaluating the real graph;
   - the hit-path acceptability check looked at one byte of the text
     arena and ignored the data arena entirely;
   - the hit-path re-reservation swallowed [Error _] from
     [Placement.reserve], silently mapping over another owner's range;
   - evicting a [static:] entry released lib-arena intervals it never
     owned, and the eviction tie-break ignored its documented
     alternates-before-primaries order. *)

module Placement = Constraints.Placement

let build_libc s = Omos.Server.build s @@ Omos.Server.library "/lib/libc"

let text_size (b : Omos.Server.built) : int =
  match Linker.Image.text_segment b.Omos.Server.entry.Omos.Cache.image with
  | Some seg -> Bytes.length seg.Linker.Image.bytes
  | None -> 0

let has_symbol (b : Omos.Server.built) (name : string) : bool =
  Linker.Image.find_symbol b.Omos.Server.entry.Omos.Cache.image name <> None

let check_clean s =
  Alcotest.(check (list string))
    "invariants hold" []
    (List.map Omos.Residency.violation_message
       (Omos.Residency.check_invariants (Omos.Server.residency s)))

let owner_intervals arena owner =
  List.filter (fun (_, _, o) -> o = owner) (Placement.intervals arena)

(* -- evict-then-reinstantiate round trip -------------------------------- *)

let test_round_trip () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let b1 = build_libc s in
  Alcotest.(check string)
    "placed" "placed"
    (Omos.Cache.residency_to_string b1.Omos.Server.entry.Omos.Cache.residency);
  check_clean s;
  let n = Omos.Server.evict_to_budget s ~bytes:0 in
  Alcotest.(check bool) "something evicted" true (n >= 1);
  Alcotest.(check bool) "built is stale" true (Omos.Server.built_evicted b1);
  Alcotest.(check (list string))
    "text reservation released" []
    (List.map (fun _ -> "iv") (owner_intervals (Omos.Server.text_arena s) "/lib/libc"));
  Alcotest.(check (list string))
    "data reservation released" []
    (List.map (fun _ -> "iv") (owner_intervals (Omos.Server.data_arena s) "/lib/libc"));
  (* a stale built must be refused, not silently mapped *)
  let p =
    Simos.Kernel.create_process (Omos.Server.kernel s) ~args:[ "stale" ]
  in
  Alcotest.(check bool) "stale map refused" true
    (try
       Omos.Server.map_into s p b1;
       false
     with Omos.Server.Server_error _ -> true);
  (* re-instantiation rebuilds, back at the preferred addresses *)
  let b2 = build_libc s in
  Alcotest.(check int)
    "same text base after round trip" b1.Omos.Server.entry.Omos.Cache.text_base
    b2.Omos.Server.entry.Omos.Cache.text_base;
  Alcotest.(check bool) "image non-empty" true (text_size b2 > 0);
  check_clean s

(* -- regression: stale candidate must not shadow the real graph --------- *)

let test_stale_candidate_rebuilds_real_graph () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let b1 = build_libc s in
  Alcotest.(check bool) "cold build has strlen" true (has_symbol b1 "strlen");
  (* steal libc's text range: release it and squat its base *)
  let base = b1.Omos.Server.entry.Omos.Cache.text_base in
  Placement.release (Omos.Server.text_arena s) ~lo:base;
  (match Placement.reserve (Omos.Server.text_arena s) ~lo:base ~size:0x1000 "squatter" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "squat failed");
  (* pre-fix: the unacceptable candidate sent the server down a path
     that linked Jigsaw.Module_ops.v [] — an empty image *)
  let b2 = build_libc s in
  Alcotest.(check bool) "rebuild is not empty" true (text_size b2 > 0);
  Alcotest.(check bool) "rebuild has strlen" true (has_symbol b2 "strlen");
  Alcotest.(check bool)
    "rebuilt at an alternate base" true
    (b2.Omos.Server.entry.Omos.Cache.text_base <> base);
  check_clean s

(* -- regression: acceptability must cover the full text extent ---------- *)

let test_full_extent_acceptable_text () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let b1 = build_libc s in
  let base = b1.Omos.Server.entry.Omos.Cache.text_base in
  Alcotest.(check bool)
    "libc text spans multiple pages" true (text_size b1 > 0x1000);
  (* free libc's range but squat a page in its *tail*: the first byte
     of the old placement stays free, the full extent does not *)
  Placement.release (Omos.Server.text_arena s) ~lo:base;
  (match
     Placement.reserve (Omos.Server.text_arena s) ~lo:(base + 0x1000) ~size:0x1000
       "squatter"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "squat failed");
  (* pre-fix: the 1-byte check revived the entry and the swallowed
     reserve error left it mapped over the squatter *)
  let b2 = build_libc s in
  Alcotest.(check bool)
    "not revived over the squatter" true
    (b2.Omos.Server.entry.Omos.Cache.text_base <> base);
  let squatter_alive =
    owner_intervals (Omos.Server.text_arena s) "squatter" <> []
  in
  Alcotest.(check bool) "squatter interval intact" true squatter_alive;
  check_clean s

(* -- regression: acceptability must also cover the data arena ----------- *)

let test_full_extent_acceptable_data () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let b1 = build_libc s in
  let dbase = b1.Omos.Server.entry.Omos.Cache.data_base in
  (* steal the data placement outright; text left untouched *)
  Placement.release (Omos.Server.data_arena s) ~lo:dbase;
  (match
     Placement.reserve (Omos.Server.data_arena s) ~lo:dbase ~size:0x1000 "squatter"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "squat failed");
  (* pre-fix: the data arena was never consulted — the entry was
     revived at a data base now owned by someone else *)
  let b2 = build_libc s in
  Alcotest.(check bool)
    "not revived over the data squatter" true
    (b2.Omos.Server.entry.Omos.Cache.data_base <> dbase);
  check_clean s

(* -- regression: static eviction must not release foreign intervals ----- *)

let test_static_eviction_preserves_foreign_intervals () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  (* an unrelated interval that happens to start at the static bases
     (pre-fix, evicting a static: entry blindly released these) *)
  (match
     Placement.reserve (Omos.Server.text_arena s) ~lo:Omos.Server.client_text_base
       ~size:0x1000 "external"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "external text reserve failed");
  (match
     Placement.reserve (Omos.Server.data_arena s) ~lo:Omos.Server.client_data_base
       ~size:0x1000 "external"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "external data reserve failed");
  let obj = Minic.Driver.compile ~name:"app" "int main() { return 7; }" in
  let b =
    Omos.Server.build s @@ Omos.Server.static ~name:"app" (Blueprint.Mgraph.Leaf obj)
  in
  Alcotest.(check string)
    "static entry" "static"
    (Omos.Cache.residency_to_string b.Omos.Server.entry.Omos.Cache.residency);
  let n = Omos.Server.evict_to_budget s ~bytes:0 in
  Alcotest.(check bool) "static entry evicted" true (n >= 1);
  Alcotest.(check int)
    "external text interval survives" 1
    (List.length (owner_intervals (Omos.Server.text_arena s) "external"));
  Alcotest.(check int)
    "external data interval survives" 1
    (List.length (owner_intervals (Omos.Server.data_arena s) "external"));
  check_clean s

(* -- regression: eviction tie-break (alternates before primaries) ------- *)

let dummy_image name =
  let a = Sof.Asm.create name in
  Sof.Asm.label a "e";
  Sof.Asm.instr a Svm.Isa.Halt;
  fst
    (Linker.Link.link ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x2000 }
       [ Sof.Asm.finish a ])

let test_evict_tiebreak_alternates_first () =
  let c = Omos.Cache.create () in
  let primary =
    Omos.Cache.insert c ~key:"k" ~text_base:0x1000 ~data_base:0x2000
      (dummy_image "primary")
  in
  let alternate =
    Omos.Cache.insert c ~key:"k" ~text_base:0x9000 ~data_base:0xA000
      (dummy_image "alternate")
  in
  Alcotest.(check int) "equal hit counts" primary.Omos.Cache.hits
    alternate.Omos.Cache.hits;
  let total = (Omos.Cache.stats c).Omos.Cache.disk_bytes_total in
  (* force exactly one eviction: with equal hits, the documented order
     evicts the alternate placement, not the primary *)
  let victims = Omos.Cache.evict_to_budget c ~bytes:(total - 1) in
  Alcotest.(check (list int))
    "alternate evicted first" [ 0x9000 ]
    (List.map (fun (e : Omos.Cache.entry) -> e.Omos.Cache.text_base) victims);
  Alcotest.(check (list int))
    "primary survives" [ 0x1000 ]
    (List.map
       (fun (e : Omos.Cache.entry) -> e.Omos.Cache.text_base)
       (Omos.Cache.candidates c "k"))

(* -- fault injection: reserve failure on the hit path ------------------- *)

let faults_only ?(seed = 42) ?(place_conflict = 0.0) ?(evict_storm = 0.0)
    ?(reserve_fail = 0.0) () : Omos.Residency.faults =
  { Omos.Residency.seed; place_conflict; evict_storm; reserve_fail }

let test_fault_reserve_fail () =
  let w = Omos.World.create ~faults:(faults_only ~reserve_fail:1.0 ()) () in
  let s = w.Omos.World.server in
  let b1 = build_libc s in
  let conflicts0 = List.length (Omos.Server.conflicts s) in
  let fails0 = Telemetry.Counter.get "residency.faults.reserve_fail" in
  (* warm request: the hit revives a candidate, the injected reserve
     failure turns it into a recorded conflict + alternate rebuild *)
  let b2 = build_libc s in
  Alcotest.(check bool)
    "alternate placement" true
    (b2.Omos.Server.entry.Omos.Cache.text_base
    <> b1.Omos.Server.entry.Omos.Cache.text_base);
  Alcotest.(check bool) "rebuild is real" true (has_symbol b2 "strlen");
  Alcotest.(check bool)
    "conflict recorded" true
    (List.length (Omos.Server.conflicts s) > conflicts0);
  Alcotest.(check bool)
    "fault counted" true
    (Telemetry.Counter.get "residency.faults.reserve_fail" > fails0);
  check_clean s

(* -- fault injection: eviction storms ----------------------------------- *)

let test_fault_evict_storm () =
  let w = Omos.World.create ~faults:(faults_only ~seed:7 ~evict_storm:1.0 ()) () in
  let s = w.Omos.World.server in
  let storms0 = Telemetry.Counter.get "residency.faults.evict_storm" in
  let r1 = Omos.Server.instantiate s (Omos.Server.library "/lib/libc") in
  Alcotest.(check bool) "cold build" false r1.Omos.Server.cache_hit;
  (* the storm fires before the second request, so it can never be a
     cache hit: the whole cache was just evicted *)
  let r2 = Omos.Server.instantiate s (Omos.Server.library "/lib/libc") in
  Alcotest.(check bool) "storm forces rebuild" false r2.Omos.Server.cache_hit;
  Alcotest.(check bool)
    "storms counted" true
    (Telemetry.Counter.get "residency.faults.evict_storm" >= storms0 + 2);
  check_clean s

(* -- fault injection: placement conflicts ------------------------------- *)

let test_fault_place_conflict () =
  let w = Omos.World.create ~faults:(faults_only ~seed:3 ~place_conflict:1.0 ()) () in
  let s = w.Omos.World.server in
  let b1 = build_libc s in
  (* libc's constraint list wants T at 0x100000; the injected blocker
     forces an alternate and a recorded conflict *)
  Alcotest.(check bool)
    "preferred base denied" true
    (b1.Omos.Server.entry.Omos.Cache.text_base <> 0x100000);
  Alcotest.(check bool)
    "conflict recorded" true
    (Omos.Server.conflicts s <> []);
  Alcotest.(check bool)
    "fault counted" true
    (Telemetry.Counter.get "residency.faults.place_conflict" > 0);
  (* blockers never outlive the placement they perturb *)
  Alcotest.(check (list int))
    "no blocker left in text arena" []
    (List.map
       (fun (lo, _, _) -> lo)
       (owner_intervals (Omos.Server.text_arena s) "fault:conflict"));
  check_clean s

(* -- fault determinism --------------------------------------------------- *)

let test_fault_determinism () =
  let run () =
    let w =
      Omos.World.create ~faults:(faults_only ~seed:42 ~reserve_fail:0.6 ()) ()
    in
    let s = w.Omos.World.server in
    for _ = 1 to 5 do
      ignore (build_libc s)
    done;
    (List.length (Omos.Server.conflicts s), (Omos.Server.stats s).Omos.Server.links)
  in
  let c1, l1 = run () in
  let c2, l2 = run () in
  Alcotest.(check int) "same conflicts" c1 c2;
  Alcotest.(check int) "same links" l1 l2

(* -- the checker detects each seeded violation class --------------------- *)

let codes vs =
  List.sort_uniq compare (List.map (fun v -> v.Omos.Residency.v_code) vs)

let with_corrupted kind =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  ignore (build_libc s);
  check_clean s;
  Omos.Residency.inject (Omos.Server.residency s) kind;
  Omos.Residency.check_invariants (Omos.Server.residency s)

let test_detects_lost_reservation () =
  let vs = with_corrupted Omos.Residency.Lost_reservation in
  Alcotest.(check (list string)) "unreserved detected" [ "unreserved" ] (codes vs)

let test_detects_orphaned_interval () =
  let vs = with_corrupted Omos.Residency.Orphaned_interval in
  Alcotest.(check (list string)) "orphans detected" [ "orphan" ] (codes vs)

let test_detects_overlap () =
  let vs = with_corrupted Omos.Residency.Overlapping_entries in
  Alcotest.(check (list string)) "overlap detected" [ "overlap" ] (codes vs);
  (* and the exception variant raises *)
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  ignore (build_libc s);
  Omos.Residency.inject (Omos.Server.residency s) Omos.Residency.Overlapping_entries;
  Alcotest.(check bool) "check_exn raises" true
    (try
       Omos.Residency.check_exn (Omos.Server.residency s);
       false
     with Omos.Residency.Violation _ -> true)

(* -- the self-check runs on the request and eviction paths --------------- *)

let test_self_check_coverage () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let checks0 = Telemetry.Counter.get "residency.invariant_checks" in
  ignore (build_libc s);
  let checks1 = Telemetry.Counter.get "residency.invariant_checks" in
  Alcotest.(check bool) "instantiate self-checks" true (checks1 > checks0);
  ignore (Omos.Server.evict_to_budget s ~bytes:0);
  let checks2 = Telemetry.Counter.get "residency.invariant_checks" in
  Alcotest.(check bool) "evict self-checks" true (checks2 > checks1);
  (* and it can be turned off for perf runs *)
  Omos.Server.set_self_check s false;
  ignore (build_libc s);
  let checks3 = Telemetry.Counter.get "residency.invariant_checks" in
  Alcotest.(check int) "disabled self-check is silent" checks2 checks3

(* -- schemes survive eviction between invocations ------------------------ *)

let test_scheme_survives_eviction () =
  let w = Omos.World.create () in
  let rt = w.Omos.World.rt in
  let prog =
    Omos.Schemes.self_contained_program rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs ()
  in
  let code1, out1 = Omos.Schemes.invoke rt prog ~args:Omos.World.ls_single_args in
  (* everything the program was built from disappears from the cache *)
  ignore (Omos.Server.evict_to_budget w.Omos.World.server ~bytes:0);
  let code2, out2 = Omos.Schemes.invoke rt prog ~args:Omos.World.ls_single_args in
  Alcotest.(check int) "exit code unchanged" code1 code2;
  Alcotest.(check string) "output unchanged" out1 out2;
  check_clean w.Omos.World.server

let () =
  Alcotest.run "residency"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "evict-then-reinstantiate round trip" `Quick
            test_round_trip;
          Alcotest.test_case "self-check on request and evict paths" `Quick
            test_self_check_coverage;
          Alcotest.test_case "schemes survive eviction" `Quick
            test_scheme_survives_eviction;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "stale candidate rebuilds real graph" `Quick
            test_stale_candidate_rebuilds_real_graph;
          Alcotest.test_case "full text extent checked" `Quick
            test_full_extent_acceptable_text;
          Alcotest.test_case "data arena checked" `Quick
            test_full_extent_acceptable_data;
          Alcotest.test_case "static eviction leaves foreign intervals" `Quick
            test_static_eviction_preserves_foreign_intervals;
          Alcotest.test_case "tie-break evicts alternates first" `Quick
            test_evict_tiebreak_alternates_first;
        ] );
      ( "faults",
        [
          Alcotest.test_case "reserve failure -> conflict + rebuild" `Quick
            test_fault_reserve_fail;
          Alcotest.test_case "eviction storm" `Quick test_fault_evict_storm;
          Alcotest.test_case "placement conflict" `Quick test_fault_place_conflict;
          Alcotest.test_case "deterministic under a seed" `Quick
            test_fault_determinism;
        ] );
      ( "detection",
        [
          Alcotest.test_case "lost reservation" `Quick test_detects_lost_reservation;
          Alcotest.test_case "orphaned interval" `Quick
            test_detects_orphaned_interval;
          Alcotest.test_case "overlapping entries" `Quick test_detects_overlap;
        ] );
    ]
