(* Monitor wrapper tests: shadow-stack balance under nested and
   recursive calls with [~exits:true], and request-id stamping of
   trace events. *)

let compile name src = Minic.Driver.compile ~name src

(* Build, monitor, link and run a program; returns (exit code, trace). *)
let run_monitored ?(exits = true) ?wrap (src : string) :
    int * Omos.Monitor.trace =
  let m =
    Jigsaw.Module_ops.of_objects [ Workloads.Crt0.obj (); compile "/obj/m.o" src ]
  in
  let monitored, trace = Omos.Monitor.monitored ~exits m in
  let k = Simos.Kernel.create () in
  let upcalls = Omos.Upcalls.install k in
  Omos.Monitor.attach upcalls trace;
  let img, _ =
    Linker.Link.link
      ~layout:{ Linker.Link.text_base = 0x10000; data_base = 0x400000 }
      (Jigsaw.Module_ops.fragments monitored)
  in
  let p = Simos.Kernel.create_process k ~args:[ "t" ] in
  Simos.Kernel.map_image k p ~key:"t" img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  let go () = Simos.Kernel.run k p () in
  let code = match wrap with None -> go () | Some f -> f go in
  (code, trace)

let id_of (t : Omos.Monitor.trace) (name : string) : int =
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = name then found := i) t.Omos.Monitor.names;
  if !found < 0 then Alcotest.failf "no wrapped function %s" name;
  !found

(* Per-id Enter/Exit balance, and the running shadow depth never goes
   negative — an unbalanced wrapper would corrupt the shadow stack. *)
let check_balanced ?(skip = []) (t : Omos.Monitor.trace) : int =
  let enters = Hashtbl.create 8 and exits = Hashtbl.create 8 in
  let bump h id = Hashtbl.replace h id (1 + Option.value ~default:0 (Hashtbl.find_opt h id)) in
  let depth = ref 0 and max_depth = ref 0 in
  List.iter
    (function
      | Omos.Monitor.Enter id ->
          bump enters id;
          incr depth;
          if !depth > !max_depth then max_depth := !depth
      | Omos.Monitor.Exit id ->
          bump exits id;
          decr depth;
          Alcotest.(check bool) "shadow depth never negative" true (!depth >= 0))
    (Omos.Monitor.trace_events t);
  Hashtbl.iter
    (fun id n ->
      if not (List.mem id skip) then
        Alcotest.(check int)
          (Printf.sprintf "balanced enters/exits for %s" t.Omos.Monitor.names.(id))
          n
          (Option.value ~default:0 (Hashtbl.find_opt exits id)))
    enters;
  !max_depth

let test_nested_calls_balance () =
  let code, trace =
    run_monitored
      "int leaf(int x) { return x + 1; } \
       int mid(int x) { return leaf(x) + leaf(x + 1); } \
       int top(int x) { return mid(x) + leaf(x); } \
       int main() { return top(12); }"
  in
  (* mid(12)+leaf(12) = (13+14)+13 = 40 *)
  Alcotest.(check int) "semantics preserved" 40 code;
  (* _start never returns: its Exit is the process exit *)
  let max_depth = check_balanced ~skip:[ id_of trace "_start" ] trace in
  Alcotest.(check bool) "calls really nested" true (max_depth >= 4)

let test_recursive_calls_balance () =
  let code, trace =
    run_monitored
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } \
       int main() { return fib(10); }"
  in
  Alcotest.(check int) "fib(10)" 55 code;
  let fib = id_of trace "fib" in
  let max_depth = check_balanced ~skip:[ id_of trace "_start" ] trace in
  Alcotest.(check bool) "recursion went deep" true (max_depth >= 9);
  let fib_enters =
    List.length
      (List.filter
         (function Omos.Monitor.Enter id -> id = fib | _ -> false)
         (Omos.Monitor.trace_events trace))
  in
  (* fib(10) makes 177 calls *)
  Alcotest.(check int) "every recursive call wrapped" 177 fib_enters

let test_trace_events_carry_request_ids () =
  Telemetry.reset ();
  let code, trace =
    run_monitored
      ~wrap:(fun go -> Telemetry.Request.with_request ~client:5 "exec" go)
      "int f(int x) { return x * 3; } int main() { return f(4); }"
  in
  Alcotest.(check int) "ran" 12 code;
  let stamped = Omos.Monitor.stamped_events trace in
  Alcotest.(check int) "one stamp per event" trace.Omos.Monitor.count
    (List.length stamped);
  Alcotest.(check bool) "events recorded" true (stamped <> []);
  let req = Telemetry.Request.last_id () in
  List.iter
    (fun (_, client, request) ->
      Alcotest.(check int) "client stamped" 5 client;
      Alcotest.(check int) "request stamped" req request)
    stamped;
  (* outside any request the stamp is the (-1, -1) sentinel *)
  let _, unstamped =
    run_monitored "int g() { return 7; } int main() { return g(); }"
  in
  List.iter
    (fun (_, client, request) ->
      Alcotest.(check int) "no client" (-1) client;
      Alcotest.(check int) "no request" (-1) request)
    (Omos.Monitor.stamped_events unstamped)

let () =
  Alcotest.run "monitor"
    [
      ( "shadow-stack",
        [
          Alcotest.test_case "nested calls" `Quick test_nested_calls_balance;
          Alcotest.test_case "recursive calls" `Quick
            test_recursive_calls_balance;
        ] );
      ( "request-ids",
        [
          Alcotest.test_case "stamped events" `Quick
            test_trace_events_carry_request_ids;
        ] );
    ]
