(** The cost model: what each hardware/kernel event costs in simulated
    microseconds.

    The reproduction cannot measure an HP9000/730, so every experiment
    charges these constants instead; the paper's tables are regenerated
    from the charge totals. The split mirrors how the paper reports
    time: user (client instructions, client-side binding/relocation
    work), system (kernel entries, faults, IPC, exec work), and io
    (disk waits, included in elapsed only). *)

type t = {
  user_instr : float;
  syscall_overhead : float;
  soft_fault : float;
  disk_read_page : float;
  disk_write_page : float;
  ipc_round_trip : float;
  task_create : float;
  fork_exec_base : float;
  open_file : float;
  parse_header_per_kb : float;
  map_segment : float;
  reloc_apply : float;
  symbol_lookup : float;
  dispatch_patch : float;
  deferred_page_overhead : float;
  place_solve : float;
}
val hpux : t
val mach_osf1 : t
val mach_386 : t
val page_size : int
