(** The simulated clock: accumulates user, system, and I/O time in
    microseconds, mirroring how the paper's tables split measurements
    (User / System / Elapsed). *)

type t = { mutable user : float; mutable system : float; mutable io : float }

type snapshot = { s_user : float; s_system : float; s_io : float }

let create () : t = { user = 0.0; system = 0.0; io = 0.0 }

(* Every charge also flows to the telemetry profiler, which attributes
   it to the open span stack (no-op unless profiling is enabled) — the
   single funnel that makes [ofe profile]'s folded stacks sum to
   exactly what the cost model charged. *)
let charge_user (c : t) (us : float) =
  c.user <- c.user +. us;
  Telemetry.Profile.charge Telemetry.Profile.User us

let charge_system (c : t) (us : float) =
  c.system <- c.system +. us;
  Telemetry.Profile.charge Telemetry.Profile.System us

let charge_io (c : t) (us : float) =
  c.io <- c.io +. us;
  Telemetry.Profile.charge Telemetry.Profile.Io us

(** Elapsed time: everything, including I/O waits. *)
let elapsed (c : t) : float = c.user +. c.system +. c.io

let snapshot (c : t) : snapshot = { s_user = c.user; s_system = c.system; s_io = c.io }

(** Time accumulated since [snap], as (user, system, elapsed). *)
let since (c : t) (snap : snapshot) : float * float * float =
  let u = c.user -. snap.s_user in
  let s = c.system -. snap.s_system in
  let io = c.io -. snap.s_io in
  (u, s, u +. s +. io)

let reset (c : t) : unit =
  c.user <- 0.0;
  c.system <- 0.0;
  c.io <- 0.0

let pp ppf (c : t) =
  Format.fprintf ppf "user=%.0fus system=%.0fus io=%.0fus elapsed=%.0fus" c.user
    c.system c.io (elapsed c)
