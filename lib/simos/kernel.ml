(** The kernel of the simulated OS: processes, syscalls, the
    traditional exec path, and the hooks OMOS plugs into.

    Address-space layout convention for executables:
    - text/data wherever the linker put them,
    - heap: 256 KB anonymous region at {!heap_base},
    - stack: 256 KB anonymous region ending at {!stack_top}.

    The traditional [exec] reads a serialized image from the simulated
    filesystem, charging open/parse costs proportional to file size —
    the work the paper's integrated-exec experiment shows OMOS avoiding
    ("it does not have to open files, parse complex object file
    headers, etc."). *)

exception Exec_error of string

let heap_base = 0x60000000
let heap_size = 0x40000
let stack_top = 0x7FF00000
let stack_size = 0x40000

(* A file-backed shared segment in the OS page cache: every process
   exec'ing the same binary shares its read-only frames. *)
type cached_seg = {
  cs_bytes : Bytes.t;
  cs_frames : Phys.frame_group;
  cs_backing : Addr_space.backing_state;
}

type t = {
  fs : Fs.t;
  phys : Phys.t;
  clock : Clock.t;
  cost : Cost.t;
  mutable procs : Proc.t list;
  mutable next_pid : int;
  page_cache : (string, cached_seg) Hashtbl.t; (* key: path#segment *)
  read_cached : (string, unit) Hashtbl.t; (* file data brought in by read() *)
  mutable upcall : (t -> Proc.t -> Svm.Cpu.t -> int -> Svm.Cpu.sys_result) option;
  (* "#!" interpreter handlers: the paper's `#! /bin/omos` feature.
     Key = interpreter path; the handler receives the script's
     parameter words and the exec arguments and must return a ready
     process (charging its own costs). *)
  interpreters :
    (string, t -> params:string list -> args:string list -> Proc.t) Hashtbl.t;
  mutable syscall_count : int;
}

let create ?(cost = Cost.hpux) () : t =
  {
    fs = Fs.create ();
    phys = Phys.create ();
    clock = Clock.create ();
    cost;
    procs = [];
    next_pid = 1;
    page_cache = Hashtbl.create 16;
    read_cached = Hashtbl.create 16;
    upcall = None;
    interpreters = Hashtbl.create 4;
    syscall_count = 0;
  }

(** Install the handler for syscalls >= {!Syscall.omos_base} (the OMOS
    server and scheme runtimes use this). *)
let set_upcall (k : t) f = k.upcall <- Some f

let charge_sys (k : t) us = Clock.charge_system k.clock us
let charge_io (k : t) us = Clock.charge_io k.clock us
let charge_user (k : t) us = Clock.charge_user k.clock us

(* -- syscall implementation -------------------------------------------- *)

let reg = Svm.Cpu.get_reg
let set_reg = Svm.Cpu.set_reg
let ret cpu v = set_reg cpu Svm.Isa.reg_ret (Int32.of_int v)

let do_open (k : t) (p : Proc.t) (cpu : Svm.Cpu.t) : unit =
  let path = Svm.Cpu.read_cstring cpu (Int32.to_int (reg cpu 1)) in
  charge_sys k k.cost.Cost.open_file;
  match Fs.lookup k.fs path with
  | Some (Fs.File data) ->
      ret cpu (Proc.alloc_fd p (Proc.Fd_file { path; data; pos = 0 }))
  | Some (Fs.Dir _) ->
      let entries = Array.of_list (Fs.list_dir k.fs path) in
      ret cpu (Proc.alloc_fd p (Proc.Fd_dir { path; entries }))
  | None -> ret cpu (-1)

let do_read (k : t) (p : Proc.t) (cpu : Svm.Cpu.t) : unit =
  let fd = Int32.to_int (reg cpu 1) in
  let buf = Int32.to_int (reg cpu 2) in
  let len = Int32.to_int (reg cpu 3) in
  match Proc.find_fd p fd with
  | Some (Proc.Fd_file f) ->
      let n = min len (Bytes.length f.data - f.pos) in
      if n > 0 then begin
        (* first read of a file pays for its pages; later reads hit the
           buffer cache *)
        if not (Hashtbl.mem k.read_cached f.path) then begin
          Hashtbl.replace k.read_cached f.path ();
          let pages = (Bytes.length f.data + Cost.page_size - 1) / Cost.page_size in
          charge_io k (float_of_int (max 1 pages) *. k.cost.Cost.disk_read_page)
        end;
        Svm.Cpu.write_bytes cpu buf (Bytes.sub f.data f.pos n);
        f.pos <- f.pos + n
      end;
      ret cpu n
  | Some (Proc.Fd_dir _) | None -> ret cpu (-1)

let do_write (k : t) (p : Proc.t) (cpu : Svm.Cpu.t) : unit =
  let fd = Int32.to_int (reg cpu 1) in
  let buf = Int32.to_int (reg cpu 2) in
  let len = Int32.to_int (reg cpu 3) in
  if len < 0 then ret cpu (-1)
  else begin
    let data = Svm.Cpu.read_bytes cpu buf len in
    charge_sys k (0.02 *. float_of_int len);
    if fd = 1 || fd = 2 then begin
      Buffer.add_bytes p.Proc.stdout data;
      ret cpu len
    end
    else ret cpu (-1)
  end

let do_stat (k : t) (cpu : Svm.Cpu.t) : unit =
  let path = Svm.Cpu.read_cstring cpu (Int32.to_int (reg cpu 1)) in
  let out = Int32.to_int (reg cpu 2) in
  charge_sys k (k.cost.Cost.open_file *. 0.6);
  match Fs.stat k.fs path with
  | Some (`File size) ->
      cpu.Svm.Cpu.mem.Svm.Cpu.store32 out 0l;
      cpu.Svm.Cpu.mem.Svm.Cpu.store32 (out + 4) (Int32.of_int size);
      ret cpu 0
  | Some (`Dir n) ->
      cpu.Svm.Cpu.mem.Svm.Cpu.store32 out 1l;
      cpu.Svm.Cpu.mem.Svm.Cpu.store32 (out + 4) (Int32.of_int n);
      ret cpu 0
  | None -> ret cpu (-1)

let do_readdir (p : Proc.t) (cpu : Svm.Cpu.t) : unit =
  let fd = Int32.to_int (reg cpu 1) in
  let idx = Int32.to_int (reg cpu 2) in
  let buf = Int32.to_int (reg cpu 3) in
  match Proc.find_fd p fd with
  | Some (Proc.Fd_dir d) when idx >= 0 && idx < Array.length d.entries ->
      let name = d.entries.(idx) in
      Svm.Cpu.write_bytes cpu buf (Bytes.of_string (name ^ "\000"));
      ret cpu (String.length name)
  | Some _ | None -> ret cpu (-1)

let do_argv (p : Proc.t) (cpu : Svm.Cpu.t) : unit =
  let i = Int32.to_int (reg cpu 1) in
  let buf = Int32.to_int (reg cpu 2) in
  let maxlen = Int32.to_int (reg cpu 3) in
  match List.nth_opt p.Proc.args i with
  | Some arg when String.length arg + 1 <= maxlen ->
      Svm.Cpu.write_bytes cpu buf (Bytes.of_string (arg ^ "\000"));
      ret cpu (String.length arg)
  | Some _ | None -> ret cpu (-1)

let tm_syscalls = Telemetry.Counter.make "kernel.syscalls"

let dispatch (k : t) (p : Proc.t) (cpu : Svm.Cpu.t) (n : int) : Svm.Cpu.sys_result =
  k.syscall_count <- k.syscall_count + 1;
  Telemetry.Counter.incr tm_syscalls;
  charge_sys k k.cost.Cost.syscall_overhead;
  if n >= Syscall.omos_base then
    match k.upcall with
    | Some f ->
        Telemetry.with_span "kernel.upcall"
          ~attrs:[ ("syscall", Telemetry.I n) ]
          (fun () -> f k p cpu n)
    | None ->
        ret cpu (-1);
        Svm.Cpu.Sys_continue
  else begin
    (if n = Syscall.sys_exit then ()
     else if n = Syscall.sys_write then do_write k p cpu
     else if n = Syscall.sys_open then do_open k p cpu
     else if n = Syscall.sys_read then do_read k p cpu
     else if n = Syscall.sys_close then (
       Proc.close_fd p (Int32.to_int (reg cpu 1));
       ret cpu 0)
     else if n = Syscall.sys_stat then do_stat k cpu
     else if n = Syscall.sys_readdir then do_readdir p cpu
     else if n = Syscall.sys_getpid then ret cpu p.Proc.pid
     else if n = Syscall.sys_argc then ret cpu (List.length p.Proc.args)
     else if n = Syscall.sys_argv then do_argv p cpu
     else ret cpu (-1));
    if n = Syscall.sys_exit then Svm.Cpu.Sys_exit (Int32.to_int (reg cpu 1))
    else Svm.Cpu.Sys_continue
  end

(* -- process setup ------------------------------------------------------ *)

(** Create a process with an empty address space (the "empty task" the
    integrated exec hands to OMOS). *)
let create_process (k : t) ~(args : string list) : Proc.t =
  let aspace = Addr_space.create ~phys:k.phys ~clock:k.clock ~cost:k.cost () in
  let p = Proc.create ~pid:k.next_pid ~aspace ~args in
  k.next_pid <- k.next_pid + 1;
  k.procs <- p :: k.procs;
  p

(** Map heap and stack, attach a CPU at [entry]. Completes any exec
    path. *)
let finish_exec (k : t) (p : Proc.t) ~(entry : int) : unit =
  Addr_space.map_private p.Proc.aspace ~vaddr:heap_base ~size:heap_size ~label:"heap" ();
  Addr_space.map_private p.Proc.aspace ~vaddr:(stack_top - stack_size) ~size:stack_size
    ~label:"stack" ();
  let cpu = Svm.Cpu.create ~sys:(dispatch k p) (Addr_space.mem p.Proc.aspace) in
  set_reg cpu Svm.Isa.reg_sp (Int32.of_int (stack_top - 16));
  cpu.Svm.Cpu.pc <- entry;
  p.Proc.cpu <- Some cpu

(** Map an image into a process: read-only segments shared through
    [share] (a cache of segment objects keyed by [key]), writable
    segments private, bss anonymous. [fresh_from_disk] marks segment
    sources as needing demand loads on first-ever touch. *)
let map_image (k : t) (p : Proc.t) ~(key : string) ?(fresh_from_disk = false)
    ?(touch_user_cost = 0.0) (img : Linker.Image.t) : unit =
  Telemetry.with_span "kernel.map_image"
    ~attrs:
      [
        ("key", Telemetry.S key);
        ("segments", Telemetry.I (List.length img.Linker.Image.segments));
      ]
  @@ fun () ->
  charge_sys k (k.cost.Cost.map_segment *. float_of_int (List.length img.Linker.Image.segments));
  List.iter
    (fun (s : Linker.Image.segment) ->
      if s.Linker.Image.writable then begin
        (* private copy; residency of the source tracked per file+seg *)
        let ck = key ^ "#" ^ s.Linker.Image.seg_name in
        let backing =
          match Hashtbl.find_opt k.page_cache ck with
          | Some cs -> cs.cs_backing
          | None ->
              let backing =
                if fresh_from_disk then
                  Addr_space.disk_backing ~bytes:(Bytes.length s.Linker.Image.bytes)
                else { Addr_space.resident = [||] }
              in
              Hashtbl.replace k.page_cache ck
                {
                  cs_bytes = s.Linker.Image.bytes;
                  cs_frames = Phys.alloc k.phys ~label:ck ~bytes:0;
                  cs_backing = backing;
                };
              backing
        in
        Addr_space.map_private p.Proc.aspace ~vaddr:s.Linker.Image.vaddr
          ~init:s.Linker.Image.bytes ~backing ~touch_user_cost
          ~size:(Bytes.length s.Linker.Image.bytes)
          ~label:(key ^ "#" ^ s.Linker.Image.seg_name) ()
      end
      else begin
        let ck = key ^ "#" ^ s.Linker.Image.seg_name in
        let cs =
          match Hashtbl.find_opt k.page_cache ck with
          | Some cs -> cs
          | None ->
              let cs =
                {
                  cs_bytes = s.Linker.Image.bytes;
                  cs_frames =
                    Phys.alloc k.phys ~label:ck
                      ~bytes:(Bytes.length s.Linker.Image.bytes);
                  cs_backing =
                    (if fresh_from_disk then
                       Addr_space.disk_backing
                         ~bytes:(Bytes.length s.Linker.Image.bytes)
                     else { Addr_space.resident = [||] });
                }
              in
              Hashtbl.replace k.page_cache ck cs;
              cs
        in
        Addr_space.map_shared p.Proc.aspace ~vaddr:s.Linker.Image.vaddr
          ~bytes:cs.cs_bytes ~frames:cs.cs_frames ~backing:cs.cs_backing
          ~touch_user_cost ~label:ck ()
      end)
    img.Linker.Image.segments;
  if img.Linker.Image.bss_size > 0 then
    Addr_space.map_private p.Proc.aspace ~vaddr:img.Linker.Image.bss_vaddr
      ~size:img.Linker.Image.bss_size ~label:(key ^ "#bss") ()

(** Register a script interpreter ([#! <path> params...]). *)
let register_interpreter (k : t) (path : string) handler : unit =
  Hashtbl.replace k.interpreters path handler

(** The traditional exec: open the executable, parse it, map it, run.
    This is the baseline the OSF/1 comparison measures. A file starting
    with [#!] dispatches to its registered interpreter instead — the
    paper's portable way of exporting OMOS entries into the Unix
    namespace. *)
let rec exec (k : t) ~(path : string) ~(args : string list) : Proc.t =
  Telemetry.with_span "kernel.exec" ~attrs:[ ("path", Telemetry.S path) ]
  @@ fun () ->
  let data0 =
    try Fs.read_file k.fs path with Fs.Fs_error m -> raise (Exec_error m)
  in
  if Bytes.length data0 >= 2 && Bytes.get data0 0 = '#' && Bytes.get data0 1 = '!'
  then begin
    let line =
      match String.index_opt (Bytes.to_string data0) '\n' with
      | Some i -> Bytes.sub_string data0 2 (i - 2)
      | None -> Bytes.sub_string data0 2 (Bytes.length data0 - 2)
    in
    match
      List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
    with
    | interp :: params -> (
        charge_sys k k.cost.Cost.open_file;
        match Hashtbl.find_opt k.interpreters interp with
        | Some handler -> handler k ~params ~args
        | None when Fs.exists k.fs interp ->
            (* a real interpreter binary: exec it with the script path
               prepended, Unix-style *)
            exec k ~path:interp ~args:(interp :: path :: List.tl args)
        | None -> raise (Exec_error (path ^ ": bad interpreter " ^ interp)))
    | [] -> raise (Exec_error (path ^ ": empty interpreter line"))
  end
  else begin
  charge_sys k k.cost.Cost.fork_exec_base;
  charge_sys k k.cost.Cost.open_file;
  let data = data0 in
  (* header + symbol parsing cost scales with file size *)
  charge_sys k
    (k.cost.Cost.parse_header_per_kb *. (float_of_int (Bytes.length data) /. 1024.0));
  let img =
    try Linker.Image.decode data
    with Linker.Image.Decode_error m -> raise (Exec_error (path ^ ": " ^ m))
  in
  let p = create_process k ~args in
  map_image k p ~key:path ~fresh_from_disk:(not (Hashtbl.mem k.read_cached path)) img;
  Hashtbl.replace k.read_cached path ();
  finish_exec k p ~entry:img.Linker.Image.entry;
  p
  end

(** Run a process to completion, charging its instructions as user
    time. Returns the exit code. *)
let run (k : t) (p : Proc.t) ?(fuel = 50_000_000) () : int =
  let cpu = Proc.cpu_exn p in
  let before = cpu.Svm.Cpu.instr_count in
  let outcome = Svm.Cpu.run ~fuel cpu in
  charge_user k
    (k.cost.Cost.user_instr *. float_of_int (cpu.Svm.Cpu.instr_count - before));
  match outcome with
  | Svm.Cpu.Exited code ->
      p.Proc.exit_code <- Some code;
      code
  | Svm.Cpu.Halted -> raise (Exec_error "process halted without exiting")
  | Svm.Cpu.Running -> raise (Exec_error "process ran out of fuel")

(** Tear down a finished process's address space. *)
let reap (k : t) (p : Proc.t) : unit =
  Addr_space.destroy p.Proc.aspace;
  k.procs <- List.filter (fun q -> q.Proc.pid <> p.Proc.pid) k.procs
