(** Deterministic cooperative run queue (see sched.mli). *)

type task = { label : string; queued_at : float; run : unit -> unit }

type t = {
  mutable queue : task list; (* newest-first; drained via rev *)
  mutable ready : task list; (* oldest-first tail being consumed *)
  mutable idle_hooks : (unit -> bool) list; (* installation order *)
  mutable seed : int;
  mutable rng : int;
  mutable executed : int;
  mutable in_step : bool;
  mutable now : unit -> float; (* spawn/dispatch timestamps *)
  mutable on_dispatch :
    (label:string -> queued_us:float -> started_us:float -> unit) option;
}

let create ?(seed = 0) () =
  {
    queue = [];
    ready = [];
    idle_hooks = [];
    seed;
    rng = (if seed = 0 then 0 else seed land 0xffffffff);
    executed = 0;
    in_step = false;
    now = (fun () -> 0.0);
    on_dispatch = None;
  }

let set_time_source (t : t) (now : unit -> float) : unit = t.now <- now
let set_on_dispatch (t : t) hook : unit = t.on_dispatch <- hook

let set_seed (t : t) (seed : int) : unit =
  t.seed <- seed;
  t.rng <- (if seed = 0 then 0 else seed land 0xffffffff)

let spawn (t : t) ?(label = "task") (run : unit -> unit) : unit =
  t.queue <- { label; queued_at = t.now (); run } :: t.queue

let on_idle (t : t) (hook : unit -> bool) : unit =
  t.idle_hooks <- t.idle_hooks @ [ hook ]

let pending (t : t) : int = List.length t.queue + List.length t.ready
let steps (t : t) : int = t.executed
let running (t : t) : bool = t.in_step

(* xorshift32, the same generator the workload driver uses. *)
let rand (t : t) (bound : int) : int =
  let x = t.rng in
  let x = x lxor (x lsl 13) land 0xffffffff in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0xffffffff in
  let x = if x = 0 then 0x9e3779b9 else x in
  t.rng <- x;
  x mod bound

(* Pull the next task honouring the order discipline; [None] when both
   lists are empty. *)
let take (t : t) : task option =
  (if t.ready = [] then begin
     t.ready <- List.rev t.queue;
     t.queue <- []
   end);
  match t.ready with
  | [] -> None
  | first :: rest ->
      if t.seed = 0 then begin
        t.ready <- rest;
        Some first
      end
      else begin
        (* seeded pick among all ready tasks, position chosen by the
           deterministic generator *)
        let all = t.ready in
        let i = rand t (List.length all) in
        let picked = List.nth all i in
        t.ready <- List.filteri (fun j _ -> j <> i) all;
        Some picked
      end

let rec step (t : t) : bool =
  match take t with
  | Some task ->
      t.executed <- t.executed + 1;
      (match t.on_dispatch with
      | Some hook ->
          hook ~label:task.label ~queued_us:task.queued_at
            ~started_us:(t.now ())
      | None -> ());
      let was = t.in_step in
      t.in_step <- true;
      Fun.protect ~finally:(fun () -> t.in_step <- was) task.run;
      true
  | None ->
      (* quiescent run queue: let the idle hooks (batch barriers)
         schedule more work *)
      let rec fire = function
        | [] -> false
        | h :: rest -> if h () then true else fire rest
      in
      if fire t.idle_hooks then step t else false

let drain (t : t) : unit =
  if not t.in_step then
    while step t do
      ()
    done
