(** The cost model: what each hardware/kernel event costs in simulated
    microseconds.

    The reproduction cannot measure an HP9000/730, so every experiment
    charges these constants instead; the paper's tables are regenerated
    from the charge totals. The split mirrors how the paper reports
    time: user (client instructions, client-side binding/relocation
    work), system (kernel entries, faults, IPC, exec work), and io
    (disk waits, included in elapsed only). *)

type t = {
  (* CPU *)
  user_instr : float; (* one user-mode instruction *)
  (* kernel entries *)
  syscall_overhead : float; (* trap + dispatch + return *)
  soft_fault : float; (* map an already-resident page *)
  disk_read_page : float; (* demand-load a page from disk *)
  disk_write_page : float; (* write a page (static linking I/O) *)
  ipc_round_trip : float; (* message to a server and back *)
  (* program invocation *)
  task_create : float; (* create an empty task (integrated-exec path) *)
  fork_exec_base : float; (* full process setup of a traditional exec *)
  open_file : float;
  parse_header_per_kb : float; (* executable-format parsing, per KB *)
  map_segment : float; (* set up one mapping *)
  (* linking/loading work *)
  reloc_apply : float; (* apply one relocation at load time *)
  symbol_lookup : float; (* one hash lookup (lazy binding) *)
  dispatch_patch : float; (* patch one dispatch-table slot *)
  (* base cost of deferred (lazy, page-wise) relocation of a library
     page: write-fault + private copy, before the per-reloc work *)
  deferred_page_overhead : float;
  (* one pass of the placement constraint solver over the queued
     requests; batching amortizes it across the whole batch *)
  place_solve : float;
}

(** HP-UX-like personality: a monolithic kernel — cheap syscalls, no
    IPC in the exec path. *)
let hpux : t =
  {
    user_instr = 0.03;
    syscall_overhead = 12.0;
    soft_fault = 25.0;
    disk_read_page = 900.0;
    disk_write_page = 1100.0;
    (* the HP-UX port talks to OMOS over System V messages — slow, as
       Table 1a's high OMOS system time shows *)
    ipc_round_trip = 1800.0;
    task_create = 800.0;
    fork_exec_base = 2500.0;
    open_file = 120.0;
    parse_header_per_kb = 2.5;
    map_segment = 60.0;
    reloc_apply = 2.6;
    symbol_lookup = 2.2;
    dispatch_patch = 1.1;
    deferred_page_overhead = 300.0;
    place_solve = 25.0;
  }

(** Mach 3.0 + OSF/1 single-server personality: syscalls are IPC to the
    OS server, making kernel entries and the traditional exec path much
    more expensive — which is exactly where the paper's integrated-exec
    numbers come from. *)
let mach_osf1 : t =
  {
    user_instr = 0.03;
    syscall_overhead = 45.0;
    soft_fault = 40.0;
    disk_read_page = 950.0;
    disk_write_page = 1150.0;
    (* Mach IPC is fast; the expensive part is the OSF/1 server's exec
       path, whose cost scales with how much binary it must open, parse
       and map — tiny for the bootstrap loader, zero when OMOS is handed
       the empty task directly *)
    ipc_round_trip = 280.0;
    task_create = 6000.0;
    fork_exec_base = 7000.0;
    open_file = 400.0;
    parse_header_per_kb = 200.0;
    map_segment = 90.0;
    reloc_apply = 2.6;
    symbol_lookup = 2.4;
    dispatch_patch = 1.2;
    deferred_page_overhead = 330.0;
    place_solve = 30.0;
  }

(** Mach 3.0 on i386 (the paper's second Mach platform): the same
    structure as {!mach_osf1} but a slower CPU and a less lopsided exec
    path — the paper reports integrated exec 33% faster than native
    there, versus 56% on PA-RISC. *)
let mach_386 : t =
  {
    mach_osf1 with
    user_instr = 0.05;
    task_create = 5000.0;
    fork_exec_base = 5600.0;
    parse_header_per_kb = 12.0;
  }

let page_size = 4096
