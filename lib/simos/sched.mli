(** A deterministic cooperative scheduler for the server's staged
    request pipeline.

    Tasks are plain thunks queued on a run queue; {!drain} runs them to
    completion on the caller's (simulated) time line — there is no
    preemption and no wall-clock anywhere, so a run is exactly as
    deterministic as the tasks themselves. A task that wants to
    continue later simply {!spawn}s its continuation.

    Two orders are available:

    - seed [0] (the default): strict FIFO — tasks run in spawn order.
    - seed [<> 0]: a seeded xorshift32 picks among the ready tasks, so
      tests can exercise interleavings other than submission order
      while staying byte-reproducible for a given seed.

    Idle hooks ({!on_idle}) model batching barriers: when the run queue
    empties, each hook in turn may schedule more work (the server's
    placement stage parks requests and flushes them as one batch from
    its hook). *)

type t

(** [create ?seed ()] makes an empty scheduler. [seed = 0] (default)
    means FIFO order; any other seed shuffles deterministically. *)
val create : ?seed:int -> unit -> t

(** Reseed an existing scheduler (takes effect from the next pick). *)
val set_seed : t -> int -> unit

(** Install the clock read used to timestamp {!spawn}s and dispatches
    (default: a constant [0.0] — delays then read as zero). The server
    points this at its simulated clock. *)
val set_time_source : t -> (unit -> float) -> unit

(** Observe every dispatch: fired just before a task runs, with the
    task's label, the time it was spawned, and the time it started —
    the gap is the scheduler dispatch delay, one of the typed blocking
    edges of the causal latency graph. [None] (default) disables the
    hook. Purely observational: no simulated cost is charged. *)
val set_on_dispatch :
  t -> (label:string -> queued_us:float -> started_us:float -> unit) option -> unit

(** Enqueue a task. [label] is carried for diagnostics. *)
val spawn : t -> ?label:string -> (unit -> unit) -> unit

(** Install an idle hook, called when the run queue is empty; it
    returns [true] if it scheduled more work. Hooks fire in
    installation order; the first one that returns [true] ends the
    idle round. *)
val on_idle : t -> (unit -> bool) -> unit

(** Run one ready task (consulting idle hooks if the queue is empty).
    Returns [false] when nothing ran — the scheduler is quiescent. *)
val step : t -> bool

(** Run until quiescent (no ready tasks and no idle hook makes more).
    Reentrant calls (from inside a task) return immediately — the
    outer drain is already running the queue. *)
val drain : t -> unit

(** Ready tasks currently queued. *)
val pending : t -> int

(** Tasks executed since creation. *)
val steps : t -> int

(** Is a {!drain}/{!step} currently executing a task? *)
val running : t -> bool
