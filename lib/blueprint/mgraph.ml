(** M-graphs: the executable graphs blueprints compile to.

    "These rules map into a graph of operations, the m-graph. The
    m-graph is executable; execution of the m-graph will generate an
    implementation of the class. Before executing the m-graph, OMOS
    applies any user-specified specializations to it, transforming the
    m-graph as appropriate."

    A node evaluates to a Jigsaw module plus accumulated address-space
    preferences. [Specialize] nodes dispatch through a registry of
    {!specializer}s: the base styles live here, and the server registers
    the shared-library styles ("lib-dynamic", "monitor", …) that need
    access to caching and stub generation. *)

exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(** Which segment an address constraint applies to ("T"/"D" in the
    paper's constraint lists). *)
type seg = Seg_text | Seg_data

let seg_of_string = function
  | "T" | "t" | "text" -> Seg_text
  | "D" | "d" | "data" -> Seg_data
  | s -> fail "unknown segment %S (expected \"T\" or \"D\")" s

type constraint_pref = {
  seg : seg;
  priority : int;
  pref : Constraints.Placement.pref;
}

type node =
  | Leaf of Sof.Object_file.t
  | Name of string (* server-object path, resolved by the env *)
  | Merge of node list
  | Override of node * node
  | Freeze of string * node
  | Restrict of string * node
  | Project of string * node
  | Copy_as of string * string * node
  | Hide of string * node
  | Show of string * node
  | Rename of Jigsaw.Module_ops.rename_scope * string * string * node
  | Initializers of node
  | Source of string * string (* language, source text *)
  | Specialize of string * value list * node
  | Constrain of seg * int * node (* preferred base address for seg *)
  | Lst of node list

and value = Vstr of string | Vnum of int | Vlist of value list | Vnode of node

(** Result of evaluating a node. *)
type result = { m : Jigsaw.Module_ops.t; constraints : constraint_pref list }

(** Subtree-reuse hooks (see {!eval_memo}): [lookup] may answer a node
    with a previously materialized result, short-circuiting its whole
    subtree; [store] observes every freshly evaluated node. The hooks
    decide soundness (which nodes are safe to memoize) — evaluation
    only threads them. *)
type memo_hooks = {
  lookup : node -> result option;
  store : node -> result -> unit;
}

type env = {
  resolve : string -> node;
  specializers : (string, specializer) Hashtbl.t;
  mutable visiting : string list; (* cycle detection for Name *)
  mutable memo : memo_hooks option; (* engaged by eval_memo only *)
}

and specializer = env -> value list -> node -> result

(* -- construction from s-expressions ------------------------------------- *)

let normalize_op (s : string) : string =
  String.map (fun c -> if c = '-' then '_' else c) (String.lowercase_ascii s)

let rec of_sexp (s : Sexp.t) : node =
  match s with
  | Sexp.Sym path -> Name path
  | Sexp.Str _ | Sexp.Int _ -> fail "expected an object or operation, got %s" (Sexp.to_string s)
  | Sexp.List (Sexp.Sym op :: args) -> of_op (normalize_op op) args
  | Sexp.List _ -> fail "expected an operation, got %s" (Sexp.to_string s)

and value_of_sexp (s : Sexp.t) : value =
  match s with
  | Sexp.Str v -> Vstr v
  | Sexp.Int n -> Vnum n
  | Sexp.List (Sexp.Sym op :: args) when normalize_op op = "list" ->
      Vlist (List.map value_of_sexp args)
  | Sexp.Sym _ | Sexp.List _ -> Vnode (of_sexp s)

and pattern_of = function
  | Sexp.Str p -> p
  | s -> fail "expected a pattern string, got %s" (Sexp.to_string s)

and of_op (op : string) (args : Sexp.t list) : node =
  match (op, args) with
  | "merge", operands when operands <> [] -> Merge (List.map of_sexp operands)
  | "override", [ a; b ] -> Override (of_sexp a, of_sexp b)
  | "freeze", [ p; x ] -> Freeze (pattern_of p, of_sexp x)
  | "restrict", [ p; x ] -> Restrict (pattern_of p, of_sexp x)
  | "project", [ p; x ] -> Project (pattern_of p, of_sexp x)
  | "copy_as", [ p; n; x ] -> Copy_as (pattern_of p, pattern_of n, of_sexp x)
  | "hide", [ p; x ] -> Hide (pattern_of p, of_sexp x)
  | "show", [ p; x ] -> Show (pattern_of p, of_sexp x)
  | "rename", [ p; t; x ] ->
      Rename (Jigsaw.Module_ops.Both, pattern_of p, pattern_of t, of_sexp x)
  | "rename", [ Sexp.Str scope; p; t; x ]
    when scope = "defs" || scope = "refs" || scope = "both" ->
      let sc =
        match scope with
        | "defs" -> Jigsaw.Module_ops.Defs_only
        | "refs" -> Jigsaw.Module_ops.Refs_only
        | _ -> Jigsaw.Module_ops.Both
      in
      Rename (sc, pattern_of p, pattern_of t, of_sexp x)
  | "initializers", [ x ] -> Initializers (of_sexp x)
  | "source", [ Sexp.Str lang; Sexp.Str text ] -> Source (lang, text)
  | "specialize", Sexp.Str style :: rest when rest <> [] ->
      let rec split = function
        | [ last ] -> ([], last)
        | x :: rest ->
            let vs, last = split rest in
            (x :: vs, last)
        | [] -> assert false
      in
      let vs, last = split rest in
      Specialize (style, List.map value_of_sexp vs, of_sexp last)
  | "constrain", [ Sexp.Str seg; Sexp.Int addr; x ] ->
      Constrain (seg_of_string seg, addr, of_sexp x)
  | "list", operands -> Lst (List.map of_sexp operands)
  | _ -> fail "bad operation (%s ...) with %d argument(s)" op (List.length args)

(** Parse a single blueprint expression into an m-graph. *)
let parse (src : string) : node = of_sexp (Sexp.parse_one src)

(* -- evaluation ----------------------------------------------------------- *)

let no_constraints (m : Jigsaw.Module_ops.t) : result = { m; constraints = [] }

(* Flatten Lst operands: (merge a (list b c)) merges a, b and c. *)
let rec flatten_operands (ns : node list) : node list =
  List.concat_map (function Lst xs -> flatten_operands xs | n -> [ n ]) ns

let tm_source_compiles = Telemetry.Counter.make "blueprint.source_compiles"

let rec eval_node (env : env) (n : node) : result =
  match env.memo with
  | None -> eval_node_uncached env n
  | Some h -> (
      match h.lookup n with
      | Some r -> r
      | None ->
          let r = eval_node_uncached env n in
          h.store n r;
          r)

and eval_node_uncached (env : env) (n : node) : result =
  match n with
  | Leaf o -> no_constraints (Jigsaw.Module_ops.of_object o)
  | Name path ->
      if List.mem path env.visiting then
        fail "cyclic meta-object reference through %s" path;
      let sub = env.resolve path in
      env.visiting <- path :: env.visiting;
      let r =
        Telemetry.with_span "blueprint.resolve"
          ~attrs:[ ("path", Telemetry.S path) ]
          (fun () -> eval_node env sub)
      in
      env.visiting <- List.tl env.visiting;
      r
  | Merge operands ->
      let rs = List.map (eval_node env) (flatten_operands operands) in
      let m = Jigsaw.Module_ops.merge_list (List.map (fun r -> r.m) rs) in
      { m; constraints = List.concat_map (fun r -> r.constraints) rs }
  | Override (a, b) ->
      (* sequential on purpose: freeze/hide mangling ids are minted in
         traversal order, and the symbol-flow analyzer predicts them by
         replaying the same left-to-right walk *)
      let ra = eval_node env a in
      let rb = eval_node env b in
      { m = Jigsaw.Module_ops.override ra.m rb.m;
        constraints = ra.constraints @ rb.constraints }
  | Freeze (p, x) -> map_module env x (Jigsaw.Module_ops.freeze (Jigsaw.Select.compile p))
  | Restrict (p, x) -> map_module env x (Jigsaw.Module_ops.restrict (Jigsaw.Select.compile p))
  | Project (p, x) -> map_module env x (Jigsaw.Module_ops.project (Jigsaw.Select.compile p))
  | Copy_as (p, name, x) ->
      map_module env x (Jigsaw.Module_ops.copy_as (Jigsaw.Select.compile p) name)
  | Hide (p, x) -> map_module env x (Jigsaw.Module_ops.hide (Jigsaw.Select.compile p))
  | Show (p, x) -> map_module env x (Jigsaw.Module_ops.show (Jigsaw.Select.compile p))
  | Rename (scope, p, t, x) ->
      map_module env x (Jigsaw.Module_ops.rename ~scope (Jigsaw.Select.compile p) t)
  | Initializers x -> map_module env x Jigsaw.Module_ops.initializers
  | Source (lang, text) -> (
      match lang with
      | "c" | "C" ->
          let obj =
            Telemetry.with_span "blueprint.compile"
              ~attrs:[ ("lang", Telemetry.S lang) ]
            @@ fun () ->
            Telemetry.Counter.incr tm_source_compiles;
            try Minic.Driver.compile ~name:"(source)" text
            with Minic.Driver.Compile_error msg -> fail "source: %s" msg
          in
          no_constraints (Jigsaw.Module_ops.of_object obj)
      | other -> fail "source: unsupported language %S" other)
  | Specialize (style, args, x) -> (
      match Hashtbl.find_opt env.specializers style with
      | Some f ->
          Telemetry.with_span "blueprint.specialize"
            ~attrs:[ ("style", Telemetry.S style) ]
            (fun () -> f env args x)
      | None -> fail "unknown specialization %S" style)
  | Constrain (seg, addr, x) ->
      let r = eval_node env x in
      let prefs =
        [
          { seg; priority = 6; pref = Constraints.Placement.At addr };
          { seg; priority = 3; pref = Constraints.Placement.Near addr };
        ]
      in
      { r with constraints = prefs @ r.constraints }
  | Lst _ -> fail "list is only meaningful as an operand of another operation"

and map_module env (x : node) (f : Jigsaw.Module_ops.t -> Jigsaw.Module_ops.t) : result =
  let r = eval_node env x in
  try { r with m = f r.m }
  with Jigsaw.Module_ops.Module_error msg -> fail "%s" msg

(** Evaluate an m-graph. The public entry point wraps the recursive
    evaluator in a ["blueprint.eval"] span, so every specializer that
    re-enters through it (the server's library styles do) nests a fresh
    span under its ["blueprint.specialize"] parent. *)
let eval (env : env) (n : node) : result =
  Telemetry.with_span "blueprint.eval" (fun () -> eval_node env n)

(** [eval_memo env hooks n] evaluates with the subtree-reuse hooks
    engaged for the duration of this evaluation (restoring whatever was
    engaged before, exception-safe). Specializers that re-enter {!eval}
    inherit the hooks — an instantiation nested under a reusable parent
    benefits from the same memo table. *)
let eval_memo (env : env) (hooks : memo_hooks) (n : node) : result =
  let saved = env.memo in
  env.memo <- Some hooks;
  Fun.protect
    ~finally:(fun () -> env.memo <- saved)
    (fun () -> eval env n)

(* -- base specializers ----------------------------------------------------- *)

(* "lib-constrained": (specialize "lib-constrained" (list "T" 0x1000000)
   /lib/libc) — attach address preferences from the argument list. *)
let lib_constrained : specializer =
 fun env args x ->
  let r = eval env x in
  let rec pairs = function
    | Vstr seg :: Vnum addr :: rest ->
        let seg = seg_of_string seg in
        { seg; priority = 6; pref = Constraints.Placement.At addr }
        :: { seg; priority = 3; pref = Constraints.Placement.Near addr }
        :: pairs rest
    | [] -> []
    | _ -> fail "lib-constrained: expected alternating segment/address arguments"
  in
  let flat = List.concat_map (function Vlist vs -> vs | v -> [ v ]) args in
  { r with constraints = pairs flat @ r.constraints }

(* "lib-static": mark for fully static inclusion — the module passes
   through; the scheme choice happens in the server. *)
let identity_spec : specializer = fun env _args x -> eval env x

(** A fresh registry containing the base specializers. *)
let base_specializers () : (string, specializer) Hashtbl.t =
  let h = Hashtbl.create 8 in
  Hashtbl.replace h "lib-constrained" lib_constrained;
  Hashtbl.replace h "lib-static" identity_spec;
  Hashtbl.replace h "identity" identity_spec;
  h

(** [env ~resolve ()] builds an evaluation environment. [resolve] maps
    server-object paths to sub-graphs (the server supplies its
    namespace); the default refuses all names. *)
let make_env ?(resolve = fun path -> fail "unknown server object %s" path) () : env =
  { resolve; specializers = base_specializers (); visiting = []; memo = None }

(** Register an additional specialization style. *)
let register (env : env) (style : string) (f : specializer) : unit =
  Hashtbl.replace env.specializers style f

(* -- graph utilities -------------------------------------------------------- *)

(** [map_leaves f n] rewrites every [Leaf]/[Name]/[Source] of the graph —
    the transformation hook specializations use. *)
let rec map_nodes (f : node -> node option) (n : node) : node =
  match f n with
  | Some n' -> n'
  | None -> (
      match n with
      | Leaf _ | Name _ | Source _ -> n
      | Merge xs -> Merge (List.map (map_nodes f) xs)
      | Override (a, b) -> Override (map_nodes f a, map_nodes f b)
      | Freeze (p, x) -> Freeze (p, map_nodes f x)
      | Restrict (p, x) -> Restrict (p, map_nodes f x)
      | Project (p, x) -> Project (p, map_nodes f x)
      | Copy_as (p, t, x) -> Copy_as (p, t, map_nodes f x)
      | Hide (p, x) -> Hide (p, map_nodes f x)
      | Show (p, x) -> Show (p, map_nodes f x)
      | Rename (s, p, t, x) -> Rename (s, p, t, map_nodes f x)
      | Initializers x -> Initializers (map_nodes f x)
      | Specialize (st, vs, x) -> Specialize (st, vs, map_nodes f x)
      | Constrain (s, a, x) -> Constrain (s, a, map_nodes f x)
      | Lst xs -> Lst (List.map (map_nodes f) xs))

(** Surface-syntax operator name of a node — the vocabulary of m-graph
    path addressing in lint findings. *)
let op_name (n : node) : string =
  match n with
  | Leaf o -> "leaf:" ^ o.Sof.Object_file.name
  | Name p -> p
  | Merge _ -> "merge"
  | Override _ -> "override"
  | Freeze _ -> "freeze"
  | Restrict _ -> "restrict"
  | Project _ -> "project"
  | Copy_as _ -> "copy-as"
  | Hide _ -> "hide"
  | Show _ -> "show"
  | Rename _ -> "rename"
  | Initializers _ -> "initializers"
  | Source (lang, _) -> "source:" ^ lang
  | Specialize (style, _, _) -> "specialize:" ^ style
  | Constrain _ -> "constrain"
  | Lst _ -> "list"

(** The selector pattern a node carries, if its operator takes one. *)
let selector_of (n : node) : string option =
  match n with
  | Freeze (p, _) | Restrict (p, _) | Project (p, _) | Hide (p, _)
  | Show (p, _) | Copy_as (p, _, _) | Rename (_, p, _, _) ->
      Some p
  | Leaf _ | Name _ | Merge _ | Override _ | Initializers _ | Source _
  | Specialize _ | Constrain _ | Lst _ ->
      None

(** Names referenced anywhere in the graph (dependency extraction). *)
let rec names (n : node) : string list =
  match n with
  | Name p -> [ p ]
  | Leaf _ | Source _ -> []
  | Merge xs | Lst xs -> List.concat_map names xs
  | Override (a, b) -> names a @ names b
  | Freeze (_, x) | Restrict (_, x) | Project (_, x) | Hide (_, x) | Show (_, x)
  | Copy_as (_, _, x) | Rename (_, _, _, x) | Initializers x
  | Specialize (_, _, x) | Constrain (_, _, x) ->
      names x

(** Stable digest of a graph (part of the image-cache key). *)
let rec digest_string (n : node) : string =
  match n with
  | Leaf o -> "leaf:" ^ Sof.Codec.digest o
  | Name p -> "name:" ^ p
  | Source (l, s) -> Printf.sprintf "src:%s:%s" l (Digest.to_hex (Digest.string s))
  | Merge xs -> "merge(" ^ String.concat "," (List.map digest_string xs) ^ ")"
  | Lst xs -> "list(" ^ String.concat "," (List.map digest_string xs) ^ ")"
  | Override (a, b) -> Printf.sprintf "override(%s,%s)" (digest_string a) (digest_string b)
  | Freeze (p, x) -> Printf.sprintf "freeze(%s,%s)" p (digest_string x)
  | Restrict (p, x) -> Printf.sprintf "restrict(%s,%s)" p (digest_string x)
  | Project (p, x) -> Printf.sprintf "project(%s,%s)" p (digest_string x)
  | Copy_as (p, t, x) -> Printf.sprintf "copy_as(%s,%s,%s)" p t (digest_string x)
  | Hide (p, x) -> Printf.sprintf "hide(%s,%s)" p (digest_string x)
  | Show (p, x) -> Printf.sprintf "show(%s,%s)" p (digest_string x)
  | Rename (sc, p, t, x) ->
      let s = match sc with
        | Jigsaw.Module_ops.Defs_only -> "d"
        | Jigsaw.Module_ops.Refs_only -> "r"
        | Jigsaw.Module_ops.Both -> "b"
      in
      Printf.sprintf "rename%s(%s,%s,%s)" s p t (digest_string x)
  | Initializers x -> Printf.sprintf "init(%s)" (digest_string x)
  | Specialize (st, vs, x) ->
      Printf.sprintf "spec(%s,%s,%s)" st
        (String.concat "," (List.map digest_value vs))
        (digest_string x)
  | Constrain (seg, a, x) ->
      Printf.sprintf "constrain(%s,%x,%s)"
        (match seg with Seg_text -> "T" | Seg_data -> "D")
        a (digest_string x)

and digest_value = function
  | Vstr s -> "s:" ^ s
  | Vnum n -> "n:" ^ string_of_int n
  | Vlist vs -> "l(" ^ String.concat "," (List.map digest_value vs) ^ ")"
  | Vnode n -> "g(" ^ digest_string n ^ ")"

let digest (n : node) : string = Digest.to_hex (Digest.string (digest_string n))
