(** M-graphs: the executable graphs blueprints compile to (paper §3.2).

    A node evaluates to a Jigsaw module plus accumulated address-space
    preferences. [Specialize] nodes dispatch through a registry of
    {!specializer}s: the base styles live here; the server registers
    the shared-library styles ("lib-dynamic", "monitor", …). *)

exception Eval_error of string

(** Which segment an address constraint applies to ("T"/"D" in the
    paper's constraint lists). *)
type seg = Seg_text | Seg_data

(** @raise Eval_error on anything but "T"/"D" (case-insensitive). *)
val seg_of_string : string -> seg

type constraint_pref = {
  seg : seg;
  priority : int;
  pref : Constraints.Placement.pref;
}

type node =
  | Leaf of Sof.Object_file.t
  | Name of string  (** server-object path, resolved by the env *)
  | Merge of node list
  | Override of node * node
  | Freeze of string * node
  | Restrict of string * node
  | Project of string * node
  | Copy_as of string * string * node
  | Hide of string * node
  | Show of string * node
  | Rename of Jigsaw.Module_ops.rename_scope * string * string * node
  | Initializers of node
  | Source of string * string  (** language, source text *)
  | Specialize of string * value list * node
  | Constrain of seg * int * node  (** preferred base address for seg *)
  | Lst of node list

and value = Vstr of string | Vnum of int | Vlist of value list | Vnode of node

(** Result of evaluating a node. *)
type result = { m : Jigsaw.Module_ops.t; constraints : constraint_pref list }

(** Subtree-reuse hooks for {!eval_memo}: [lookup] may answer a node
    with a previously materialized result (short-circuiting its whole
    subtree), [store] observes every freshly evaluated node. The hooks
    own the soundness argument — evaluation only threads them. *)
type memo_hooks = {
  lookup : node -> result option;
  store : node -> result -> unit;
}

type env = {
  resolve : string -> node;
  specializers : (string, specializer) Hashtbl.t;
  mutable visiting : string list; (* cycle detection for Name *)
  mutable memo : memo_hooks option; (* engaged by eval_memo only *)
}

and specializer = env -> value list -> node -> result

(** Operator-name normalization: lowercase, '-' → '_'. *)
val normalize_op : string -> string

(** Graph construction from s-expressions. *)
val of_sexp : Sexp.t -> node

val value_of_sexp : Sexp.t -> value

(** Parse a single blueprint expression into an m-graph. *)
val parse : string -> node

(** [eval env n] executes the graph: resolves names, applies module
    operators, compiles [source] text, dispatches specializations, and
    collects address-space preferences.
    @raise Eval_error on unknown names/styles, cyclic meta-object
    references, or module errors. *)
val eval : env -> node -> result

(** [eval_memo env hooks n] is {!eval} with the subtree-reuse hooks
    engaged for the duration of the call (restored afterwards,
    exception-safe). Specializers re-entering {!eval} inherit them. *)
val eval_memo : env -> memo_hooks -> node -> result

(** A fresh registry containing the base specializers
    ("lib-constrained", "lib-static", "identity"). *)
val base_specializers : unit -> (string, specializer) Hashtbl.t

(** [make_env ~resolve ()] builds an evaluation environment. [resolve]
    maps server-object paths to sub-graphs; the default refuses all
    names. *)
val make_env : ?resolve:(string -> node) -> unit -> env

(** Register an additional specialization style. *)
val register : env -> string -> specializer -> unit

(** [map_nodes f n] rewrites the graph top-down: where [f] returns
    [Some n'], the subtree is replaced; otherwise recursion continues —
    the transformation hook specializations use. *)
val map_nodes : (node -> node option) -> node -> node

(** Surface-syntax operator name of a node — the vocabulary of m-graph
    path addressing in lint findings ("merge", "override", "rename",
    "specialize:STYLE", "leaf:NAME", …). *)
val op_name : node -> string

(** The selector pattern a node carries, if its operator takes one. *)
val selector_of : node -> string option

(** Names referenced anywhere in the graph (dependency extraction). *)
val names : node -> string list

(** Stable digest of a graph (part of the image-cache key). *)
val digest : node -> string
