(** Meta-object descriptions.

    "Meta-objects are templates describing the construction and
    characteristics of objects, and contain a class description of
    their target objects." A meta-object source file (cf. Figure 1) is
    a sequence of forms:

    {v
    (default-specialization "lib-constrained")      ; optional
    (constraint-list "T" 0x100000 "D" 0x40200000)   ; optional
    (merge /libc/gen /libc/stdio ...)               ; the blueprint
    v}

    Multiple trailing expressions are implicitly merged. *)

exception Meta_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Meta_error s)) fmt

type t = {
  name : string;
  default_spec : (string * Mgraph.value list) option;
  (* default address constraints from the constraint-list: (seg, addr) *)
  constraints : (Mgraph.seg * int) list;
  root : Mgraph.node;
}

let rec parse_pairs = function
  | [] -> []
  | Sexp.Str seg :: Sexp.Int addr :: rest -> (seg, addr) :: parse_pairs rest
  | s :: _ -> fail "constraint-list: unexpected %s" (Sexp.to_string s)

(** [parse ~name src] parses a meta-object file. *)
let parse ~(name : string) (src : string) : t =
  let forms =
    try Sexp.parse_many src
    with Sexp.Parse_error (msg, line) -> fail "%s (line %d): %s" name line msg
  in
  let default_spec = ref None in
  let constraints = ref [] in
  let roots = ref [] in
  List.iter
    (fun (form : Sexp.t) ->
      match form with
      | Sexp.List (Sexp.Sym op :: args)
        when Mgraph.normalize_op op = "constraint_list" ->
          (* a segment may be constrained once per meta-object, whether
             the duplicate sits in one constraint-list or across
             several — silently letting the last one win hid authoring
             mistakes *)
          List.iter
            (fun (s, a) ->
              let seg = Mgraph.seg_of_string s in
              if List.mem_assoc seg !constraints then
                fail "%s: duplicate constraint-list segment %S" name s;
              constraints := !constraints @ [ (seg, a) ])
            (parse_pairs args)
      | Sexp.List (Sexp.Sym op :: Sexp.Str style :: args)
        when Mgraph.normalize_op op = "default_specialization" ->
          default_spec := Some (style, List.map Mgraph.value_of_sexp args)
      | _ -> roots := Mgraph.of_sexp form :: !roots)
    forms;
  let root =
    match List.rev !roots with
    | [] -> fail "%s: meta-object has no blueprint expression" name
    | [ r ] -> r
    | many -> Mgraph.Merge many
  in
  { name; default_spec = !default_spec; constraints = !constraints; root }

(** Build a meta-object directly from a graph (no surface syntax). *)
let of_graph ?(default_spec = None) ?(constraints = []) ~name root : t =
  { name; default_spec; constraints; root }

(** The graph to evaluate for this meta-object under an optional
    requested specialization: an explicit request wins over the
    default; the default-spec (if any) wraps the root; the meta's
    constraint-list wraps everything as [Constrain] nodes. *)
let effective_graph (meta : t) ~(spec : (string * Mgraph.value list) option) :
    Mgraph.node =
  let base =
    match (spec, meta.default_spec) with
    | Some (style, args), _ | None, Some (style, args) ->
        Mgraph.Specialize (style, args, meta.root)
    | None, None -> meta.root
  in
  List.fold_left
    (fun acc (seg, addr) -> Mgraph.Constrain (seg, addr, acc))
    base meta.constraints

(** Digest identifying the construction (cache key component). *)
let digest (meta : t) ~(spec : (string * Mgraph.value list) option) : string =
  Mgraph.digest (effective_graph meta ~spec)
