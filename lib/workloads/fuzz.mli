(** Seeded blueprint/workload fuzzing: the {e generator} half of the
    fuzz harness.

    This module is pure and deterministic — it turns a seed into a
    {!case}: a set of minic modules (with versions, cross-module calls
    and external imports), a set of library meta-object blueprints over
    them (merge DAGs with diamond dependencies, override/interposition
    stacks, rename/freeze/hide chains, address constraints, version
    skew, and the occasional unknown path or reference cycle), and a
    workload scenario body. Everything renders to the surface formats
    the server already consumes: minic source, meta-object blueprint
    source, and the [Omos.Workload] spec language.

    The {e oracle} half ([Omos.Fuzzer]) compiles and registers a case,
    then checks the lint-vs-evaluator differential, residency
    invariants, and batched-vs-serial pipeline equivalence. The two
    halves are split so this generator stays free of server
    dependencies and the case shrinker can be reused anywhere.

    Cases serialize to a line-oriented [omos.fuzzcase/1] text format
    (see {!to_string}) so minimized reproductions can be committed to
    the corpus and replayed byte-identically. *)

exception Case_error of string
(** Raised by {!of_string} on a malformed case file. *)

(** {1 Case structure} *)

(** A generated minic translation unit: module [f_mid] at version
    [f_mver], defining [int f_<mid>_<k>(int x)] for each function
    entry [(name, const, callees)] plus one data table. Distinct
    versions of the same module define the {e same} function names —
    merging two versions collides (version skew), overriding one with
    the other interposes. *)
type mdef = {
  f_mid : int;
  f_mver : int;
  f_funcs : (string * int * string list) list;
}

(** Blueprint expression IR, 1:1 with the m-graph surface operators the
    generator emits. Leaves name generated modules, other generated
    libraries, or arbitrary (possibly unknown) server paths. *)
type bp =
  | Mod of int * int  (** generated module [mid], version [ver] *)
  | Dep of int  (** generated library [lid] *)
  | Ext of string  (** any other server path (unknown-path fodder) *)
  | Merge of bp list
  | Override of bp * bp
  | Op1 of string * string * bp  (** freeze/hide/show/restrict/project *)
  | Ren of string * string * bp  (** rename selector template *)
  | Con of char * int * bp  (** constrain: 'T' | 'D', preferred base *)

type libdef = { f_lid : int; f_body : bp }

(** Workload scenario knobs; [w_fault] is
    [(seed, place_conflict, evict_storm, reserve_fail)]. The meta list
    is {e not} part of the scenario — the oracle appends one [meta]
    line per library the linter proves instantiable. *)
type wl = {
  w_clients : int;
  w_requests : int;
  w_seed : int;
  w_conc : int;
  w_mix : (string * int) list;
  w_evict : int;
  w_fault : (int * float * float * float) option;
}

type case = {
  f_seed : int;
  f_mods : mdef list;
  f_libs : libdef list;
  f_wl : wl;
}

(** {1 Rendering} *)

val mod_path : mdef -> string
(** Namespace path of a module fragment, [/fuzz/m<mid>v<mver>.o]. *)

val lib_path : libdef -> string
(** Namespace path of a library meta-object, [/fuzz/lib<lid>]. *)

val minic_source : mdef -> string
(** The module's translation unit: one data table plus its functions
    (cross-module calls stay implicit and resolve at merge time). *)

val meta_source : libdef -> string
(** The library's meta-object blueprint source (one expression). *)

val spec_body : wl -> string
(** The workload spec directives, without any [meta] lines. *)

(** {1 Generation} *)

val derive_seed : master:int -> int -> int
(** Per-iteration case seed from a master seed — a splitmix-style hash
    so neighbouring iterations draw uncorrelated streams. *)

val generate : ?max_modules:int -> ?max_libs:int -> seed:int -> unit -> case
(** Deterministic: equal arguments produce structurally equal cases.
    [max_modules] (default 12) and [max_libs] (default 6) bound the
    case size; library 0 is always a plain clean merge so every case
    has at least one instantiable meta. *)

(** {1 Shrinking} *)

val shrink : case -> case list
(** One-step reduction candidates, cheapest-cut first: drop the
    workload, drop a library (cascading through its dependents), drop a
    module version, simplify a blueprint node (unwrap an operator,
    collapse an override, drop a merge operand), drop a function or its
    callees, then soften the scenario (halve requests, single client,
    no faults, pure-instantiate mix). Candidates are deterministic and
    in fixed order; a greedy reducer over them terminates because every
    candidate is strictly structurally smaller. *)

(** {1 Edit pairs} *)

val mutate : seed:int -> case -> (case * string) option
(** A deterministic single edit of one library blueprint — the
    edit-pair generator for the incremental-relink oracle. The edit is
    one of: bump a module version to another generated version, swap a
    unary operator (freeze/hide/show/restrict/project), add or remove
    a merge arm, or rename a symbol (one extra rename layer). Returns
    the mutated case plus a human-readable description, or [None] when
    the case offers nothing to edit. Equal arguments produce the same
    edit. *)

(** {1 Serialization} *)

val to_string : case -> string
(** [omos.fuzzcase/1]: one [seed] line, one [mod] line per module, one
    [lib] line per library (the blueprint expression verbatim), one
    [wl] line. Stable: [to_string] of equal cases is byte-equal. *)

val of_string : string -> case
(** Inverse of {!to_string}. @raise Case_error on malformed input. *)
