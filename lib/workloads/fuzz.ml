(** Seeded blueprint/workload case generator (see fuzz.mli). *)

exception Case_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Case_error s)) fmt

type mdef = {
  f_mid : int;
  f_mver : int;
  f_funcs : (string * int * string list) list;
}

type bp =
  | Mod of int * int
  | Dep of int
  | Ext of string
  | Merge of bp list
  | Override of bp * bp
  | Op1 of string * string * bp
  | Ren of string * string * bp
  | Con of char * int * bp

type libdef = { f_lid : int; f_body : bp }

type wl = {
  w_clients : int;
  w_requests : int;
  w_seed : int;
  w_conc : int;
  w_mix : (string * int) list;
  w_evict : int;
  w_fault : (int * float * float * float) option;
}

type case = {
  f_seed : int;
  f_mods : mdef list;
  f_libs : libdef list;
  f_wl : wl;
}

(* -- seeded randomness ------------------------------------------------------ *)

(* The same xorshift32 the workload driver uses: small, pure, and
   byte-identical across platforms. *)
type rng = { mutable st : int }

let rng_make seed =
  { st = (if seed land 0xffffffff = 0 then 0x9e3779b9 else seed land 0xffffffff) }

let rand (r : rng) (n : int) : int =
  let x = r.st in
  let x = x lxor (x lsl 13) land 0xffffffff in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0xffffffff in
  r.st <- x;
  x mod n

let chance (r : rng) ~(out_of : int) (k : int) : bool = rand r out_of < k

let derive_seed ~master i =
  (((master + 1) * 0x9E3779B1) + (i * 0x85EBCA6B)) land 0x3FFFFFFF

(* -- naming ----------------------------------------------------------------- *)

let mod_path (m : mdef) : string = Printf.sprintf "/fuzz/m%dv%d.o" m.f_mid m.f_mver
let lib_path (l : libdef) : string = Printf.sprintf "/fuzz/lib%d" l.f_lid
let fname mid k = Printf.sprintf "f_%d_%d" mid k

(* -- rendering -------------------------------------------------------------- *)

let minic_source (m : mdef) : string =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  (* per-version data table: one global, referenced from every function
     so each version carries data relocations of its own *)
  line "int d_%d_%d[8];" m.f_mid m.f_mver;
  List.iter
    (fun (name, const, callees) ->
      line "int %s(int x) {" name;
      line "  int a;";
      line "  a = x * %d + %d;" ((const mod 97) + 1) (const mod 13);
      line "  a = a + d_%d_%d[x & 7];" m.f_mid m.f_mver;
      List.iter
        (fun callee -> line "  if (x > 0) { a = a + %s(x - 1); }" callee)
        callees;
      line "  return a;";
      line "}")
    m.f_funcs;
  Buffer.contents b

let rec bp_to_string (n : bp) : string =
  match n with
  | Mod (i, v) -> mod_path { f_mid = i; f_mver = v; f_funcs = [] }
  | Dep j -> lib_path { f_lid = j; f_body = Merge [] }
  | Ext p -> p
  | Merge ops ->
      Printf.sprintf "(merge %s)" (String.concat " " (List.map bp_to_string ops))
  | Override (a, b) ->
      Printf.sprintf "(override %s %s)" (bp_to_string a) (bp_to_string b)
  | Op1 (op, sel, x) -> Printf.sprintf "(%s %S %s)" op sel (bp_to_string x)
  | Ren (sel, tpl, x) ->
      Printf.sprintf "(rename %S %S %s)" sel tpl (bp_to_string x)
  | Con (seg, addr, x) ->
      Printf.sprintf "(constrain %S %d %s)"
        (String.make 1 seg) addr (bp_to_string x)

let meta_source (l : libdef) : string = bp_to_string l.f_body ^ "\n"

let spec_body (w : wl) : string =
  let b = Buffer.create 128 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "clients %d" w.w_clients;
  line "requests %d" w.w_requests;
  line "seed %d" w.w_seed;
  line "concurrency %d" w.w_conc;
  line "mix %s"
    (String.concat " " (List.map (fun (op, wt) -> Printf.sprintf "%s=%d" op wt) w.w_mix));
  line "evict_bytes %d" w.w_evict;
  (match w.w_fault with
  | None -> ()
  | Some (seed, pc, es, rf) ->
      line "fault_seed %d" seed;
      line "fault place_conflict %g" pc;
      line "fault evict_storm %g" es;
      line "fault reserve_fail %g" rf);
  Buffer.contents b

(* -- generation ------------------------------------------------------------- *)

let op1_kinds = [| "freeze"; "hide"; "show"; "restrict"; "project" |]

(* Library-arena base addresses drawn from a small pool, so distinct
   libraries regularly prefer the same slot (version-skew conflicts the
   constraint solver has to arbitrate). *)
let text_slot k = 0x01000000 + (k mod 8) * 0x00100000
let data_slot k = 0x40800000 + (k mod 8) * 0x00200000

let generate ?(max_modules = 12) ?(max_libs = 6) ~seed () : case =
  let r = rng_make seed in
  let nmod = 2 + rand r (max 1 (max_modules - 1)) in
  (* modules: ~1/4 get a second version defining the same names *)
  let versions = Array.init nmod (fun _ -> if chance r ~out_of:4 1 then 2 else 1) in
  let mods =
    List.concat
      (List.init nmod (fun i ->
           List.init versions.(i) (fun v ->
               let nf = 1 + rand r 3 in
               let funcs =
                 List.init nf (fun k ->
                     let callees = ref [] in
                     if k > 0 && chance r ~out_of:4 1 then
                       callees := fname i (k - 1) :: !callees;
                     if i > 0 && chance r ~out_of:2 1 then
                       callees := fname (rand r i) 0 :: !callees;
                     if chance r ~out_of:8 1 then
                       callees := Printf.sprintf "ext_%d" (rand r 4) :: !callees;
                     (fname i k, 1 + rand r 996, List.rev !callees))
               in
               { f_mid = i; f_mver = v; f_funcs = funcs })))
  in
  let nlib = 1 + rand r max_libs in
  (* distinct module ids, biased to small sets *)
  let pick_mods count =
    let rec go acc n =
      if n = 0 then acc
      else
        let i = rand r nmod in
        if List.mem i acc then go acc (n - 1) else go (i :: acc) (n - 1)
    in
    List.rev (go [] count)
  in
  let libs =
    List.init nlib (fun j ->
        if j = 0 then
          (* library 0 is always a plain clean merge of version-0
             modules, so every case has an instantiable meta *)
          { f_lid = 0; f_body = Merge (List.map (fun i -> Mod (i, 0)) (pick_mods (1 + rand r 2))) }
        else begin
          let base_mods = pick_mods (1 + rand r 3) in
          let operand_of i = Mod (i, rand r versions.(i)) in
          let operands = ref (List.map operand_of base_mods) in
          (* diamond dependencies through earlier libraries; rarely a
             forward/self reference (cycle and unknown-path fodder) *)
          if chance r ~out_of:5 2 then begin
            let ndep = 1 + rand r 2 in
            for _ = 1 to ndep do
              let d =
                if chance r ~out_of:10 1 then j + 1 + rand r 2 else rand r j
              in
              let d = if chance r ~out_of:32 1 then j else d in
              if not (List.mem (Dep d) !operands) then
                operands := !operands @ [ Dep d ]
            done
          end;
          if chance r ~out_of:12 1 then
            operands := !operands @ [ Ext (Printf.sprintf "/fuzz/void%d" (rand r 3)) ];
          let body = ref (Merge !operands) in
          (* interposition stack: override with other versions (or the
             same one) of modules already in the base *)
          if chance r ~out_of:3 1 then begin
            let n_over = 1 + rand r 2 in
            for _ = 1 to n_over do
              let i =
                match base_mods with
                | [] -> rand r nmod
                | ms -> List.nth ms (rand r (List.length ms))
              in
              body := Override (!body, Mod (i, rand r versions.(i)))
            done
          end;
          (* operator chain *)
          let pick_sel () =
            match rand r 5 with
            | 0 -> Printf.sprintf "^f_%d_.*$" (rand r nmod)
            | 1 -> Printf.sprintf "^f_%d_%d$" (rand r nmod) (rand r 3)
            | 2 -> ".*_0$"
            | 3 -> "^ext_.*$" (* never a definition: dead selector *)
            | _ -> "^zz_.*$" (* matches nothing: dead selector *)
          in
          let n_ops = rand r 4 in
          for _ = 1 to n_ops do
            if chance r ~out_of:4 1 then begin
              let a = rand r nmod and b = rand r nmod in
              let tpl =
                if chance r ~out_of:4 1 then fname b 0 (* collision fodder *)
                else Printf.sprintf "r_%d_0" a
              in
              body := Ren (Printf.sprintf "^%s$" (fname a 0), tpl, !body)
            end
            else
              body :=
                Op1 (op1_kinds.(rand r (Array.length op1_kinds)), pick_sel (), !body)
          done;
          (* address constraints from a small slot pool *)
          if chance r ~out_of:2 1 then body := Con ('T', text_slot (rand r 8), !body);
          if chance r ~out_of:2 1 then body := Con ('D', data_slot (rand r 8), !body);
          if chance r ~out_of:8 1 then body := Con ('T', text_slot (rand r 8), !body);
          { f_lid = j; f_body = !body }
        end)
  in
  let mix =
    let m = ref [ ("instantiate", 4 + rand r 5) ] in
    if chance r ~out_of:2 1 then m := !m @ [ ("dynload", 1 + rand r 2) ];
    if chance r ~out_of:3 2 then m := !m @ [ ("evict", 1 + rand r 2) ];
    !m
  in
  let wl =
    {
      w_clients = 1 + rand r 4;
      w_requests = 10 + rand r 40;
      w_seed = rand r 100000;
      w_conc = [| 1; 2; 4; 8 |].(rand r 4);
      w_mix = mix;
      w_evict = [| 0; 512; 4096; 16384; 65536 |].(rand r 5);
      w_fault =
        (if chance r ~out_of:10 3 then
           Some
             ( rand r 1000,
               float_of_int (rand r 5) /. 10.0,
               float_of_int (rand r 4) /. 10.0,
               float_of_int (rand r 4) /. 10.0 )
         else None);
    }
  in
  { f_seed = seed; f_mods = mods; f_libs = libs; f_wl = wl }

(* -- shrinking -------------------------------------------------------------- *)

let remove_nth n xs = List.filteri (fun i _ -> i <> n) xs
let replace_nth n x' xs = List.mapi (fun i x -> if i = n then x' else x) xs

(* Remove every leaf matching [pred]; [None] when the whole expression
   vanishes. *)
let rec remove_leaf (pred : bp -> bool) (n : bp) : bp option =
  match n with
  | Mod _ | Dep _ | Ext _ -> if pred n then None else Some n
  | Merge ops -> (
      match List.filter_map (remove_leaf pred) ops with
      | [] -> None
      | ops' -> Some (Merge ops'))
  | Override (a, b) -> (
      match (remove_leaf pred a, remove_leaf pred b) with
      | Some a', Some b' -> Some (Override (a', b'))
      | Some x, None | None, Some x -> Some x
      | None, None -> None)
  | Op1 (op, sel, x) -> Option.map (fun x' -> Op1 (op, sel, x')) (remove_leaf pred x)
  | Ren (sel, tpl, x) -> Option.map (fun x' -> Ren (sel, tpl, x')) (remove_leaf pred x)
  | Con (seg, a, x) -> Option.map (fun x' -> Con (seg, a, x')) (remove_leaf pred x)

(* One-step structural simplifications of a blueprint expression. *)
let rec bp_shrinks (n : bp) : bp list =
  match n with
  | Mod _ | Dep _ | Ext _ -> []
  | Merge ops ->
      (match ops with
      | [ x ] -> [ x ]
      | _ -> List.mapi (fun i _ -> Merge (remove_nth i ops)) ops)
      @ List.concat
          (List.mapi
             (fun i o -> List.map (fun o' -> Merge (replace_nth i o' ops)) (bp_shrinks o))
             ops)
  | Override (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> Override (a', b)) (bp_shrinks a)
      @ List.map (fun b' -> Override (a, b')) (bp_shrinks b)
  | Op1 (op, sel, x) -> x :: List.map (fun x' -> Op1 (op, sel, x')) (bp_shrinks x)
  | Ren (sel, tpl, x) -> x :: List.map (fun x' -> Ren (sel, tpl, x')) (bp_shrinks x)
  | Con (seg, a, x) -> x :: List.map (fun x' -> Con (seg, a, x')) (bp_shrinks x)

(* Drop library [lid], cascading: a dependent whose whole body was the
   dropped library disappears too. *)
let drop_lib (c : case) (lid : int) : case =
  let rec go libs dropped =
    let libs', dropped' =
      List.fold_left
        (fun (acc, dr) l ->
          if List.mem l.f_lid dr then (acc, dr)
          else
            match
              remove_leaf (function Dep d -> List.mem d dr | _ -> false) l.f_body
            with
            | Some body -> ({ l with f_body = body } :: acc, dr)
            | None -> (acc, l.f_lid :: dr))
        ([], dropped) libs
    in
    let libs' = List.rev libs' in
    if List.length dropped' > List.length dropped then go libs' dropped' else libs'
  in
  { c with f_libs = go c.f_libs [ lid ] }

let drop_mod (c : case) (m : mdef) : case =
  let pred = function Mod (i, v) -> i = m.f_mid && v = m.f_mver | _ -> false in
  let libs =
    List.filter_map
      (fun l -> Option.map (fun b -> { l with f_body = b }) (remove_leaf pred l.f_body))
      c.f_libs
  in
  {
    c with
    f_mods = List.filter (fun m' -> m' <> m) c.f_mods;
    f_libs = libs;
  }

let shrink (c : case) : case list =
  let cands = ref [] in
  let add c' = cands := c' :: !cands in
  (* cheapest cuts first (the list is reversed before returning) *)
  if c.f_wl.w_requests > 0 then add { c with f_wl = { c.f_wl with w_requests = 0 } };
  List.iter (fun l -> if l.f_lid <> 0 then add (drop_lib c l.f_lid)) (List.rev c.f_libs);
  List.iter (fun m -> add (drop_mod c m)) (List.rev c.f_mods);
  List.iter
    (fun (l : libdef) ->
      List.iter
        (fun body' ->
          add
            {
              c with
              f_libs =
                List.map (fun l' -> if l'.f_lid = l.f_lid then { l' with f_body = body' } else l') c.f_libs;
            })
        (bp_shrinks l.f_body))
    c.f_libs;
  List.iter
    (fun (m : mdef) ->
      List.iteri
        (fun k (_ : string * int * string list) ->
          if List.length m.f_funcs > 1 then
            add
              {
                c with
                f_mods =
                  List.map
                    (fun m' -> if m' = m then { m with f_funcs = remove_nth k m.f_funcs } else m')
                    c.f_mods;
              })
        m.f_funcs;
      if List.exists (fun (_, _, cs) -> cs <> []) m.f_funcs then
        add
          {
            c with
            f_mods =
              List.map
                (fun m' ->
                  if m' = m then
                    { m with f_funcs = List.map (fun (n, k, _) -> (n, k, [])) m.f_funcs }
                  else m')
                c.f_mods;
          })
    c.f_mods;
  let w = c.f_wl in
  if w.w_requests > 1 then add { c with f_wl = { w with w_requests = w.w_requests / 2 } };
  if w.w_fault <> None then add { c with f_wl = { w with w_fault = None } };
  if w.w_clients > 1 then add { c with f_wl = { w with w_clients = 1 } };
  if w.w_mix <> [ ("instantiate", 1) ] then
    add { c with f_wl = { w with w_mix = [ ("instantiate", 1) ] } };
  if w.w_evict <> 0 then add { c with f_wl = { w with w_evict = 0 } };
  if w.w_conc > 2 then add { c with f_wl = { w with w_conc = 2 } };
  List.rev !cands

(* -- edit pairs ------------------------------------------------------------- *)

(* A deterministic single edit of one library blueprint: bump a module
   version, swap a unary operator, add/remove a merge arm, or rename a
   symbol. The edit-pair half of the incremental-relink oracle — the
   mutated case differs from the original in exactly one node of one
   library body, so an incremental rebuild should respin only that
   edit's spine. *)
let mutate ~seed (c : case) : (case * string) option =
  let r = rng_make (seed lxor 0x5bf03635) in
  let versions_of i =
    List.sort_uniq compare
      (List.filter_map
         (fun m -> if m.f_mid = i then Some m.f_mver else None)
         c.f_mods)
  in
  let edits = ref [] in
  let add lid body' desc =
    edits :=
      ( {
          c with
          f_libs =
            List.map
              (fun l -> if l.f_lid = lid then { l with f_body = body' } else l)
              c.f_libs;
        },
        desc )
      :: !edits
  in
  List.iter
    (fun (l : libdef) ->
      (* every single-node rewrite of this library's body; [ctx] plugs
         the rewritten node back into its original position *)
      let rec go (ctx : bp -> bp) (n : bp) =
        (match n with
        | Mod (i, v) ->
            List.iter
              (fun v' ->
                if v' <> v then
                  add l.f_lid
                    (ctx (Mod (i, v')))
                    (Printf.sprintf "lib%d: bump module %d v%d -> v%d" l.f_lid
                       i v v'))
              (versions_of i)
        | Op1 (op, sel, x) ->
            Array.iter
              (fun op' ->
                if op' <> op then
                  add l.f_lid
                    (ctx (Op1 (op', sel, x)))
                    (Printf.sprintf "lib%d: swap operator %s -> %s" l.f_lid op
                       op'))
              op1_kinds
        | Merge ops ->
            if List.length ops > 1 then
              List.iteri
                (fun k o ->
                  add l.f_lid
                    (ctx (Merge (remove_nth k ops)))
                    (Printf.sprintf "lib%d: drop merge arm %s" l.f_lid
                       (bp_to_string o)))
                ops;
            (match c.f_mods with
            | [] -> ()
            | ms ->
                let m = List.nth ms (rand r (List.length ms)) in
                let leaf = Mod (m.f_mid, m.f_mver) in
                if not (List.mem leaf ops) then
                  add l.f_lid
                    (ctx (Merge (ops @ [ leaf ])))
                    (Printf.sprintf "lib%d: add merge arm %s" l.f_lid
                       (mod_path m)))
        | Dep _ | Ext _ | Override _ | Ren _ | Con _ -> ());
        match n with
        | Mod _ | Dep _ | Ext _ -> ()
        | Merge ops ->
            List.iteri
              (fun k o -> go (fun o' -> ctx (Merge (replace_nth k o' ops))) o)
              ops
        | Override (a, b) ->
            go (fun a' -> ctx (Override (a', b))) a;
            go (fun b' -> ctx (Override (a, b'))) b
        | Op1 (op, sel, x) -> go (fun x' -> ctx (Op1 (op, sel, x'))) x
        | Ren (sel, tpl, x) -> go (fun x' -> ctx (Ren (sel, tpl, x'))) x
        | Con (seg, a, x) -> go (fun x' -> ctx (Con (seg, a, x'))) x
      in
      go (fun b -> b) l.f_body;
      (* rename a symbol: one extra rename layer over the whole body *)
      match c.f_mods with
      | [] -> ()
      | ms ->
          let m = List.nth ms (rand r (List.length ms)) in
          let from = fname m.f_mid 0 in
          add l.f_lid
            (Ren (Printf.sprintf "^%s$" from, "mut_" ^ from, l.f_body))
            (Printf.sprintf "lib%d: rename %s -> mut_%s" l.f_lid from from))
    c.f_libs;
  match List.rev !edits with
  | [] -> None
  | es -> Some (List.nth es (rand r (List.length es)))

(* -- serialization ---------------------------------------------------------- *)

let mod_of_path (p : string) : int * int =
  try Scanf.sscanf p "/fuzz/m%dv%d.o%!" (fun i v -> (i, v))
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    fail "bad module path: %s" p

let lib_of_path (p : string) : int =
  try Scanf.sscanf p "/fuzz/lib%d%!" (fun j -> j)
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    fail "bad library path: %s" p

let is_mod_path p =
  String.length p > 7 && String.sub p 0 7 = "/fuzz/m" && Filename.check_suffix p ".o"

let is_lib_path p = String.length p > 9 && String.sub p 0 9 = "/fuzz/lib"

let rec bp_of_sexp (s : Blueprint.Sexp.t) : bp =
  match s with
  | Blueprint.Sexp.Sym p ->
      if is_mod_path p then
        let i, v = mod_of_path p in
        Mod (i, v)
      else if is_lib_path p then Dep (lib_of_path p)
      else Ext p
  | Blueprint.Sexp.List (Blueprint.Sexp.Sym op :: args) -> (
      let op = Blueprint.Mgraph.normalize_op op in
      match (op, args) with
      | "merge", ops -> Merge (List.map bp_of_sexp ops)
      | "override", [ a; b ] -> Override (bp_of_sexp a, bp_of_sexp b)
      | ("freeze" | "hide" | "show" | "restrict" | "project"), [ Blueprint.Sexp.Str sel; x ] ->
          Op1 (op, sel, bp_of_sexp x)
      | "rename", [ Blueprint.Sexp.Str sel; Blueprint.Sexp.Str tpl; x ] ->
          Ren (sel, tpl, bp_of_sexp x)
      | "constrain", [ Blueprint.Sexp.Str seg; Blueprint.Sexp.Int addr; x ]
        when String.length seg = 1 ->
          Con (seg.[0], addr, bp_of_sexp x)
      | _ -> fail "unsupported blueprint form: %s" (Blueprint.Sexp.to_string s))
  | _ -> fail "unsupported blueprint form: %s" (Blueprint.Sexp.to_string s)

let funcs_to_string (funcs : (string * int * string list) list) : string =
  String.concat ";"
    (List.map
       (fun (name, const, callees) ->
         Printf.sprintf "%s=%d:%s" name const (String.concat "," callees))
       funcs)

let funcs_of_string (s : string) : (string * int * string list) list =
  if s = "" then []
  else
    List.map
      (fun entry ->
        match String.index_opt entry '=' with
        | None -> fail "bad function entry: %s" entry
        | Some i -> (
            let name = String.sub entry 0 i in
            let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
            match String.index_opt rest ':' with
            | None -> fail "bad function entry: %s" entry
            | Some j ->
                let const =
                  match int_of_string_opt (String.sub rest 0 j) with
                  | Some n -> n
                  | None -> fail "bad function constant: %s" entry
                in
                let callees = String.sub rest (j + 1) (String.length rest - j - 1) in
                let callees =
                  if callees = "" then []
                  else String.split_on_char ',' callees
                in
                (name, const, callees)))
      (String.split_on_char ';' s)

let wl_to_string (w : wl) : string =
  Printf.sprintf "clients=%d requests=%d seed=%d concurrency=%d evict_bytes=%d mix=%s%s"
    w.w_clients w.w_requests w.w_seed w.w_conc w.w_evict
    (String.concat ","
       (List.map (fun (op, wt) -> Printf.sprintf "%s:%d" op wt) w.w_mix))
    (match w.w_fault with
    | None -> ""
    | Some (s, pc, es, rf) -> Printf.sprintf " fault=%d:%g:%g:%g" s pc es rf)

let wl_of_tokens (toks : string list) : wl =
  let find key =
    List.find_map
      (fun t ->
        let prefix = key ^ "=" in
        if String.length t > String.length prefix
           && String.sub t 0 (String.length prefix) = prefix
        then Some (String.sub t (String.length prefix) (String.length t - String.length prefix))
        else None)
      toks
  in
  let int_field key =
    match find key with
    | None -> fail "wl: missing %s" key
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> fail "wl: bad %s: %s" key v)
  in
  let mix =
    match find "mix" with
    | None -> fail "wl: missing mix"
    | Some v ->
        List.map
          (fun entry ->
            match String.index_opt entry ':' with
            | None -> fail "wl: bad mix entry: %s" entry
            | Some i -> (
                let op = String.sub entry 0 i in
                match
                  int_of_string_opt
                    (String.sub entry (i + 1) (String.length entry - i - 1))
                with
                | Some wt -> (op, wt)
                | None -> fail "wl: bad mix entry: %s" entry))
          (String.split_on_char ',' v)
  in
  let fault =
    match find "fault" with
    | None -> None
    | Some v -> (
        match String.split_on_char ':' v with
        | [ s; pc; es; rf ] -> (
            match
              ( int_of_string_opt s,
                float_of_string_opt pc,
                float_of_string_opt es,
                float_of_string_opt rf )
            with
            | Some s, Some pc, Some es, Some rf -> Some (s, pc, es, rf)
            | _ -> fail "wl: bad fault: %s" v)
        | _ -> fail "wl: bad fault: %s" v)
  in
  {
    w_clients = int_field "clients";
    w_requests = int_field "requests";
    w_seed = int_field "seed";
    w_conc = int_field "concurrency";
    w_mix = mix;
    w_evict = int_field "evict_bytes";
    w_fault = fault;
  }

let to_string (c : case) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# omos.fuzzcase/1\n";
  Buffer.add_string b (Printf.sprintf "seed %d\n" c.f_seed);
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "mod %s %s\n" (mod_path m) (funcs_to_string m.f_funcs)))
    c.f_mods;
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "lib %s %s\n" (lib_path l) (bp_to_string l.f_body)))
    c.f_libs;
  Buffer.add_string b (Printf.sprintf "wl %s\n" (wl_to_string c.f_wl));
  Buffer.contents b

let of_string (text : string) : case =
  let seed = ref None in
  let mods = ref [] in
  let libs = ref [] in
  let wl = ref None in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.index_opt line ' ' with
        | None -> fail "bad line: %s" line
        | Some i -> (
            let kw = String.sub line 0 i in
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            match kw with
            | "seed" -> (
                match int_of_string_opt (String.trim rest) with
                | Some n -> seed := Some n
                | None -> fail "bad seed: %s" rest)
            | "mod" -> (
                match String.index_opt rest ' ' with
                | Some j ->
                    let path = String.sub rest 0 j in
                    let funcs = String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) in
                    let mid, mver = mod_of_path path in
                    mods := { f_mid = mid; f_mver = mver; f_funcs = funcs_of_string funcs } :: !mods
                | None ->
                    let mid, mver = mod_of_path (String.trim rest) in
                    mods := { f_mid = mid; f_mver = mver; f_funcs = [] } :: !mods)
            | "lib" -> (
                match String.index_opt rest ' ' with
                | None -> fail "bad lib line: %s" line
                | Some j ->
                    let path = String.sub rest 0 j in
                    let src = String.sub rest (j + 1) (String.length rest - j - 1) in
                    let body =
                      match Blueprint.Sexp.parse_one src with
                      | s -> bp_of_sexp s
                      | exception Blueprint.Sexp.Parse_error (m, _) ->
                          fail "lib %s: %s" path m
                    in
                    libs := { f_lid = lib_of_path path; f_body = body } :: !libs)
            | "wl" ->
                wl :=
                  Some
                    (wl_of_tokens
                       (List.filter (fun t -> t <> "") (String.split_on_char ' ' rest)))
            | _ -> fail "unknown keyword: %s" kw))
    (String.split_on_char '\n' text);
  match (!seed, !wl) with
  | None, _ -> fail "missing seed line"
  | _, None -> fail "missing wl line"
  | Some seed, Some wl ->
      { f_seed = seed; f_mods = List.rev !mods; f_libs = List.rev !libs; f_wl = wl }
