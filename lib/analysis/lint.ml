(** Blueprint lint: diagnostics over the symbol-flow lattice.

    An abstract interpretation of an m-graph that walks the node tree
    exactly as {!Blueprint.Mgraph.eval} would (same operand order, same
    mangling-id sequence) but computes on {!Symflow} name sets instead
    of materializing views — so it is safe to run at meta-object
    registration time, costs nothing on the simulated clock, and can
    diagnose graphs whose evaluation would raise.

    Stable diagnostic codes:

    - [E001] unresolved-at-root — a reference that some fragment once
      defined is undefined in the final module (an operator removed or
      renamed the definition away). Plain external imports (never
      defined anywhere in the graph) are reported in the summary, not
      as findings.
    - [E002] duplicate-global-in-merge — two global definitions of the
      same name meet in a [merge]/[override]; evaluation raises.
    - [E003] rename-collision — a [rename]/[copy-as] mints a global
      definition name that now collides with another.
    - [E004] conflicting-address-constraints — distinct base addresses
      preferred for the same segment at equal priority.
    - [E005] unknown-server-object — a [Name] that does not resolve, or
      resolves cyclically.
    - [E006] invalid-selector — a selector pattern or rewrite template
      [Str] cannot compile or apply.
    - [E007] source-compile-error — a [source] node's text does not
      compile (or names an unsupported language).
    - [E008] malformed-graph — structural misuse ([list] outside an
      operand position, bad specializer arguments, unknown
      specialization style, empty [merge]).
    - [W101] dead-selector — a [restrict]/[hide]/[show]/[project] whose
      selector gives the operator nothing to do.
    - [W102] override-overrides-nothing — the right operand exports
      nothing the left operand defines.
    - [W103] freeze-of-already-frozen — freezing symbols whose bindings
      are already permanent (mints a useless extra alias).
    - [W104] shadowed-weak-definition — a weak definition permanently
      shadowed by a global one in a [merge].
    - [W105] unstable-subtree — a live [freeze]/[hide]/[show] mints
      [n$frzI]/[n$hidI] aliases into the exported namespace, so the
      node's interface summary depends on the global mangling-id
      sequence: {!Impact} can never prove such a subtree reusable. *)

module S = Symflow.S
module Mg = Blueprint.Mgraph

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type finding = {
  code : string;  (** stable code, e.g. ["E002"] *)
  title : string;  (** stable slug, e.g. ["duplicate-global-in-merge"] *)
  severity : severity;
  path : string;  (** m-graph path, e.g. ["constrain.rename.override[1]"] *)
  symbols : string list;  (** offending symbols, sorted *)
  message : string;
}

type report = {
  findings : finding list;  (** traversal order *)
  exports : string list;  (** predicted {!Jigsaw.Module_ops.exports} *)
  undefined : string list;  (** predicted {!Jigsaw.Module_ops.undefined} *)
  frozen : string list;
  hidden : string list;
  prefs : Mg.constraint_pref list;  (** accumulated, evaluation order *)
  approximate : bool;
      (** an unmodeled specializer ("lib-dynamic", "monitor") rewrote
          the module; predicted sets describe its operand only *)
  eval_fails : bool;  (** some finding implies evaluation raises *)
}

let errors (r : report) : int =
  List.length (List.filter (fun f -> f.severity = Error) r.findings)

let warnings (r : report) : int =
  List.length (List.filter (fun f -> f.severity = Warning) r.findings)

let finding_to_string (f : finding) : string =
  Printf.sprintf "%s %s at %s: %s%s" f.code f.title f.path f.message
    (match f.symbols with
    | [] -> ""
    | syms -> " [" ^ String.concat ", " syms ^ "]")

(* -- driver state ----------------------------------------------------------- *)

type state = {
  resolve : string -> (Mg.node, string) result;
  gensym : int ref;
  mutable findings : finding list;  (* newest first *)
  mutable ever_defined : S.t;  (* names defined anywhere, at any point *)
  mutable visiting : string list;  (* Name cycle detection *)
  mutable approximate : bool;
  mutable eval_fails : bool;
}

let emit (st : state) ~code ~title ~severity ~path ?(symbols = []) message :
    unit =
  st.findings <-
    { code; title; severity; path; symbols; message } :: st.findings

let fails (st : state) ~code ~title ~path ?symbols message : unit =
  st.eval_fails <- true;
  emit st ~code ~title ~severity:Error ~path ?symbols message

let draw (st : state) () : int =
  incr st.gensym;
  !(st.gensym)

(* Child-path addressing: unary children extend the dotted path;
   positional operands index the parent segment. *)
let child (path : string) ?idx (n : Mg.node) : string =
  let parent =
    match idx with None -> path | Some i -> Printf.sprintf "%s[%d]" path i
  in
  parent ^ "." ^ Mg.op_name n

(* A selector that failed to compile: report E006 once and treat the
   operator as a no-op so analysis can continue. *)
let compile_sel (st : state) ~path (pattern : string) : Jigsaw.Select.t option
    =
  match Jigsaw.Select.compile_res pattern with
  | Ok sel -> Some sel
  | Error msg ->
      fails st ~code:"E006" ~title:"invalid-selector" ~path
        (Printf.sprintf "selector %S does not compile: %s" pattern msg);
      None

(* A rewrite map whose template may fail to apply ([\1] without a
   group): report E006 on first failure, then behave as non-matching. *)
let guarded_map (st : state) ~path ~(pattern : string) ~(template : string)
    (map : string -> string option) : string -> string option =
  let reported = ref false in
  fun n ->
    try map n
    with e ->
      if not !reported then begin
        reported := true;
        fails st ~code:"E006" ~title:"invalid-selector" ~path
          (Printf.sprintf "template %S does not apply to %S (%s)" template
             pattern (Printexc.to_string e))
      end;
      None

(* Duplicate-global names within a single module (what its own merge
   nodes already reported), used to report only dups a node creates. *)
let own_dup_names (m : Symflow.t) : S.t =
  S.of_list
    (List.map (fun (n, _, _) -> n) (Symflow.duplicate_globals m.Symflow.frags))

let check_merge_conflicts (st : state) ~path (parts : Symflow.t list)
    (result : Symflow.t) : unit =
  let inherited =
    List.fold_left (fun acc p -> S.union acc (own_dup_names p)) S.empty parts
  in
  let fresh =
    List.filter
      (fun (n, _, _) -> not (S.mem n inherited))
      (Symflow.duplicate_globals result.Symflow.frags)
  in
  (match fresh with
  | [] -> ()
  | dups ->
      let names = List.sort_uniq compare (List.map (fun (n, _, _) -> n) dups) in
      let n1, s1, s2 = List.hd dups in
      fails st ~code:"E002" ~title:"duplicate-global-in-merge" ~path
        ~symbols:names
        (Printf.sprintf "duplicate global definition of %s (in %s and %s)" n1
           s1 s2));
  (* weak definitions shadowed across operands of this node *)
  let shadowed =
    let rec fold acc = function
      | [] -> []
      | p :: rest -> Symflow.weak_shadowed acc p @ fold (Symflow.merge acc p) rest
    in
    match parts with [] -> [] | p :: rest -> fold p rest
  in
  match List.sort_uniq compare shadowed with
  | [] -> ()
  | names ->
      emit st ~code:"W104" ~title:"shadowed-weak-definition" ~severity:Warning
        ~path ~symbols:names
        "weak definition permanently shadowed by a global definition of the \
         same name"

(* Globals created by a defs-side rewrite that now collide (E003): names
   whose global multiplicity grew to >= 2. *)
let check_rename_collision (st : state) ~path ~(op : string)
    (before : Symflow.t) (after : Symflow.t) : unit =
  let counts (m : Symflow.t) : (string, int) Hashtbl.t =
    let h = Hashtbl.create 32 in
    List.iter
      (fun f ->
        List.iter
          (fun n ->
            Hashtbl.replace h n (1 + Option.value (Hashtbl.find_opt h n) ~default:0))
          (Symflow.frag_globals f))
      m.Symflow.frags;
    h
  in
  let cb = counts before and ca = counts after in
  let collisions =
    Hashtbl.fold
      (fun n c acc ->
        let was = Option.value (Hashtbl.find_opt cb n) ~default:0 in
        if c >= 2 && c > was then n :: acc else acc)
      ca []
  in
  match List.sort_uniq compare collisions with
  | [] -> ()
  | names ->
      fails st ~code:"E003" ~title:"rename-collision" ~path ~symbols:names
        (Printf.sprintf
           "%s mints a global definition name that collides with another" op)

(* A freeze/hide/show whose selection is live mints gensym-numbered
   aliases into the exported namespace: the subtree's interface digest
   moves with the global mangling base, so incremental relinking can
   never reuse it (W105). *)
let warn_unstable (st : state) ~path ~(op : string) (minted_for : string list)
    : unit =
  emit st ~code:"W105" ~title:"unstable-subtree" ~severity:Warning ~path
    ~symbols:(List.sort_uniq compare minted_for)
    (Printf.sprintf
       "%s mints mangling-dependent aliases into the exported namespace; \
        the subtree's interface depends on gensym ordering and can never \
        be reused by incremental relinking"
       op)

let known_specializers =
  [
    "lib-constrained"; "lib-static"; "identity"; "lib-dynamic";
    "lib-dynamic-impl"; "monitor";
  ]

let unmodeled_specializers = [ "lib-dynamic"; "monitor" ]

(* -- the abstract evaluator ------------------------------------------------- *)

let rec go (st : state) (path : string) (n : Mg.node) :
    Symflow.t * Mg.constraint_pref list =
  let m, prefs = go_node st path n in
  st.ever_defined <-
    S.union st.ever_defined (S.of_list (Symflow.defined_any m));
  (m, prefs)

and go_node (st : state) (path : string) (n : Mg.node) :
    Symflow.t * Mg.constraint_pref list =
  match n with
  | Mg.Leaf o -> (Symflow.of_object o, [])
  | Mg.Name p ->
      if List.mem p st.visiting then begin
        fails st ~code:"E005" ~title:"unknown-server-object" ~path
          ~symbols:[ p ]
          (Printf.sprintf "cyclic meta-object reference through %s" p);
        (Symflow.empty, [])
      end
      else begin
        match st.resolve p with
        | Error msg ->
            fails st ~code:"E005" ~title:"unknown-server-object" ~path
              ~symbols:[ p ] msg;
            (Symflow.empty, [])
        | Ok sub ->
            st.visiting <- p :: st.visiting;
            let r = go st path sub in
            st.visiting <- List.tl st.visiting;
            r
      end
  | Mg.Merge operands -> (
      match flatten st operands with
      | [] ->
          fails st ~code:"E008" ~title:"malformed-graph" ~path
            "merge: no operands";
          (Symflow.empty, [])
      | flat ->
          let rs =
            List.mapi (fun i x -> go st (child path ~idx:i x) x) flat
          in
          let parts = List.map fst rs in
          let m =
            match parts with
            | [ m ] -> m
            | p :: rest -> List.fold_left Symflow.merge p rest
            | [] -> assert false
          in
          if List.length parts > 1 then
            check_merge_conflicts st ~path parts m;
          (m, List.concat_map snd rs))
  | Mg.Override (a, b) ->
      let ma, pa = go st (child path ~idx:0 a) a in
      let mb, pb = go st (child path ~idx:1 b) b in
      let a_exports = S.of_list (Symflow.exports ma) in
      let b_exports = Symflow.exports mb in
      if not (List.exists (fun n -> S.mem n a_exports) b_exports) then
        emit st ~code:"W102" ~title:"override-overrides-nothing"
          ~severity:Warning ~path
          "the right operand exports nothing the left operand defines; \
           override replaces no binding";
      let a' =
        Symflow.restrict (fun n -> List.mem n b_exports) ma
      in
      let m = Symflow.merge a' mb in
      check_merge_conflicts st ~path [ a'; mb ] m;
      (m, pa @ pb)
  | Mg.Freeze (p, x) -> (
      let mx, px = go st (child path x) x in
      match compile_sel st ~path p with
      | None -> (mx, px)
      | Some sel ->
          let selected = Jigsaw.Select.selected sel (Symflow.exports mx) in
          let refrozen =
            List.filter (fun n -> S.mem n mx.Symflow.frozen) selected
          in
          if refrozen <> [] then
            emit st ~code:"W103" ~title:"freeze-of-already-frozen"
              ~severity:Warning ~path ~symbols:refrozen
              "these bindings are already permanent; refreezing mints a \
               useless extra alias";
          if selected <> [] then warn_unstable st ~path ~op:"freeze" selected;
          (Symflow.freeze ~gensym:(draw st) (Jigsaw.Select.matches sel) mx, px))
  | Mg.Restrict (p, x) -> (
      let mx, px = go st (child path x) x in
      match compile_sel st ~path p with
      | None -> (mx, px)
      | Some sel ->
          let pred = Jigsaw.Select.matches sel in
          if Symflow.touched pred mx = [] then
            emit st ~code:"W101" ~title:"dead-restrict" ~severity:Warning ~path
              (Printf.sprintf
                 "selector %S matches no definition; restrict has no effect" p);
          (Symflow.restrict pred mx, px))
  | Mg.Project (p, x) -> (
      let mx, px = go st (child path x) x in
      match compile_sel st ~path p with
      | None -> (mx, px)
      | Some sel ->
          let pred = Jigsaw.Select.matches sel in
          if Symflow.touched (fun n -> not (pred n)) mx = [] then
            emit st ~code:"W101" ~title:"dead-project" ~severity:Warning ~path
              (Printf.sprintf
                 "selector %S matches every definition; project has no effect"
                 p);
          (Symflow.project pred mx, px))
  | Mg.Copy_as (p, template, x) -> (
      let mx, px = go st (child path x) x in
      match compile_sel st ~path p with
      | None -> (mx, px)
      | Some sel ->
          let map =
            guarded_map st ~path ~pattern:p ~template
              (Jigsaw.Select.rewrite sel template)
          in
          let m' = Symflow.copy_as map mx in
          check_rename_collision st ~path ~op:"copy-as" mx m';
          (m', px))
  | Mg.Hide (p, x) -> (
      let mx, px = go st (child path x) x in
      match compile_sel st ~path p with
      | None -> (mx, px)
      | Some sel ->
          let pred = Jigsaw.Select.matches sel in
          (match List.filter pred (Symflow.exports mx) with
          | [] ->
              emit st ~code:"W101" ~title:"dead-hide" ~severity:Warning ~path
                (Printf.sprintf
                   "selector %S matches no export; hide has no effect" p)
          | hidden -> warn_unstable st ~path ~op:"hide" hidden);
          (Symflow.hide ~gensym:(draw st) pred mx, px))
  | Mg.Show (p, x) -> (
      let mx, px = go st (child path x) x in
      match compile_sel st ~path p with
      | None -> (mx, px)
      | Some sel ->
          let pred = Jigsaw.Select.matches sel in
          let victims =
            List.filter (fun n -> not (pred n)) (Symflow.exports mx)
          in
          if victims = [] then
            emit st ~code:"W101" ~title:"dead-show" ~severity:Warning ~path
              (Printf.sprintf
                 "selector %S matches every export; show has no effect" p)
          else warn_unstable st ~path ~op:"show" victims;
          (Symflow.show ~gensym:(draw st) pred mx, px))
  | Mg.Rename (scope, p, template, x) -> (
      let mx, px = go st (child path x) x in
      match compile_sel st ~path p with
      | None -> (mx, px)
      | Some sel ->
          let map =
            guarded_map st ~path ~pattern:p ~template
              (Jigsaw.Select.rewrite sel template)
          in
          let m' = Symflow.rename scope map mx in
          if scope <> Jigsaw.Module_ops.Refs_only then
            check_rename_collision st ~path ~op:"rename" mx m';
          (m', px))
  | Mg.Initializers x ->
      let mx, px = go st (child path x) x in
      (Symflow.initializers mx, px)
  | Mg.Source (lang, text) -> (
      match lang with
      | "c" | "C" -> (
          match Minic.Driver.compile ~name:"(source)" text with
          | o -> (Symflow.of_object o, [])
          | exception Minic.Driver.Compile_error msg ->
              fails st ~code:"E007" ~title:"source-compile-error" ~path
                (Printf.sprintf "source: %s" msg);
              (Symflow.empty, []))
      | other ->
          fails st ~code:"E007" ~title:"source-compile-error" ~path
            (Printf.sprintf "source: unsupported language %S" other);
          (Symflow.empty, []))
  | Mg.Specialize (style, args, x) -> (
      match style with
      | "lib-constrained" -> (
          let mx, px = go st (child path x) x in
          let flat =
            List.concat_map
              (function Mg.Vlist vs -> vs | v -> [ v ])
              args
          in
          let rec pairs = function
            | Mg.Vstr seg :: Mg.Vnum addr :: rest -> (
                match Mg.seg_of_string seg with
                | s ->
                    Option.map
                      (fun tail ->
                        { Mg.seg = s; priority = 6;
                          pref = Constraints.Placement.At addr }
                        :: { Mg.seg = s; priority = 3;
                             pref = Constraints.Placement.Near addr }
                        :: tail)
                      (pairs rest)
                | exception Mg.Eval_error msg ->
                    fails st ~code:"E008" ~title:"malformed-graph" ~path msg;
                    None)
            | [] -> Some []
            | _ ->
                fails st ~code:"E008" ~title:"malformed-graph" ~path
                  "lib-constrained: expected alternating segment/address \
                   arguments";
                None
          in
          match pairs flat with
          | Some ps -> (mx, ps @ px)
          | None -> (mx, px))
      | "lib-static" | "identity" | "lib-dynamic-impl" ->
          go st (child path x) x
      | _ when List.mem style unmodeled_specializers ->
          (* stub generation / wrapper interposition rewrite the module
             in ways only evaluation can see; keep the operand's flow
             and mark the report approximate *)
          st.approximate <- true;
          go st (child path x) x
      | _ when List.mem style known_specializers -> go st (child path x) x
      | other ->
          fails st ~code:"E008" ~title:"malformed-graph" ~path
            (Printf.sprintf "unknown specialization %S" other);
          go st (child path x) x)
  | Mg.Constrain (seg, addr, x) ->
      let mx, px = go st (child path x) x in
      ( mx,
        { Mg.seg; priority = 6; pref = Constraints.Placement.At addr }
        :: { Mg.seg; priority = 3; pref = Constraints.Placement.Near addr }
        :: px )
  | Mg.Lst _ ->
      fails st ~code:"E008" ~title:"malformed-graph" ~path
        "list is only meaningful as an operand of another operation";
      (Symflow.empty, [])

(* Lst operands flatten into the surrounding merge, as in eval. *)
and flatten (st : state) (ns : Mg.node list) : Mg.node list =
  List.concat_map
    (function Mg.Lst xs -> flatten st xs | n -> [ n ])
    ns

(* -- root checks ------------------------------------------------------------ *)

let seg_name = function Mg.Seg_text -> "T" | Mg.Seg_data -> "D"

let check_constraints (st : state) ~path (prefs : Mg.constraint_pref list) :
    unit =
  (* distinct At addresses for the same segment at equal priority *)
  let tbl : (string * int, int list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Mg.constraint_pref) ->
      match c.pref with
      | Constraints.Placement.At addr ->
          let k = (seg_name c.seg, c.priority) in
          let prev = Option.value (Hashtbl.find_opt tbl k) ~default:[] in
          if not (List.mem addr prev) then Hashtbl.replace tbl k (addr :: prev)
      | _ -> ())
    prefs;
  let conflicts =
    Hashtbl.fold
      (fun (seg, prio) addrs acc ->
        if List.length addrs >= 2 then (seg, prio, List.rev addrs) :: acc
        else acc)
      tbl []
    |> List.sort compare
  in
  List.iter
    (fun (seg, prio, addrs) ->
      emit st ~code:"E004" ~title:"conflicting-address-constraints"
        ~severity:Error ~path
        (Printf.sprintf
           "segment %s prefers %d distinct base addresses at priority %d (%s)"
           seg (List.length addrs) prio
           (String.concat ", "
              (List.map (Printf.sprintf "0x%x") addrs))))
    conflicts

let check_unresolved (st : state) ~path (m : Symflow.t) : unit =
  let lost =
    List.filter (fun n -> S.mem n st.ever_defined) (Symflow.undefined m)
  in
  if lost <> [] then
    emit st ~code:"E001" ~title:"unresolved-at-root" ~severity:Error ~path
      ~symbols:lost
      "referenced but undefined at the root, though a definition existed in \
       the graph before operators removed or renamed it"

(* -- entry points ------------------------------------------------------------ *)

let analyze ~(resolve : string -> (Mg.node, string) result)
    ?(gensym_base = 0) (root : Mg.node) : report =
  let st =
    {
      resolve;
      gensym = ref gensym_base;
      findings = [];
      ever_defined = S.empty;
      visiting = [];
      approximate = false;
      eval_fails = false;
    }
  in
  let root_path = Mg.op_name root in
  let m, prefs =
    try go st root_path root
    with e ->
      (* the analyzer must never take down registration or the CLI *)
      st.approximate <- true;
      emit st ~code:"E999" ~title:"analyzer-internal-error" ~severity:Error
        ~path:root_path (Printexc.to_string e);
      (Symflow.empty, [])
  in
  check_unresolved st ~path:root_path m;
  check_constraints st ~path:root_path prefs;
  {
    findings = List.rev st.findings;
    exports = Symflow.exports m;
    undefined = Symflow.undefined m;
    frozen = S.elements m.Symflow.frozen;
    hidden = S.elements m.Symflow.hidden;
    prefs;
    approximate = st.approximate;
    eval_fails = st.eval_fails;
  }

let analyze_meta ~(resolve : string -> (Mg.node, string) result)
    ?(spec : (string * Mg.value list) option = None) ?gensym_base
    (meta : Blueprint.Meta.t) : report =
  analyze ~resolve ?gensym_base (Blueprint.Meta.effective_graph meta ~spec)

(* -- differential self-check ------------------------------------------------- *)

type verify_outcome =
  | Verified of { exports : int; undefined : int }
  | Skipped of string
  | Mismatch of {
      field : string;  (** "exports" or "undefined" *)
      predicted : string list;
      actual : string list;
    }
  | Eval_raised of string
      (** evaluation raised although the analyzer predicted success *)

let verify_against ~(eval : Mg.node -> Mg.result)
    ~(resolve : string -> (Mg.node, string) result) (root : Mg.node) :
    report * verify_outcome =
  let report =
    analyze ~resolve ~gensym_base:(Jigsaw.Module_ops.gensym_current ()) root
  in
  if report.eval_fails then (report, Skipped "analysis predicts evaluation failure")
  else if report.approximate then
    (report, Skipped "unmodeled specialization; predicted sets are approximate")
  else
    match eval root with
    | r ->
        let actual_exports = Jigsaw.Module_ops.exports r.Mg.m in
        let actual_undef = Jigsaw.Module_ops.undefined r.Mg.m in
        if report.exports <> actual_exports then
          ( report,
            Mismatch
              { field = "exports"; predicted = report.exports;
                actual = actual_exports } )
        else if report.undefined <> actual_undef then
          ( report,
            Mismatch
              { field = "undefined"; predicted = report.undefined;
                actual = actual_undef } )
        else
          ( report,
            Verified
              {
                exports = List.length actual_exports;
                undefined = List.length actual_undef;
              } )
    | exception e -> (report, Eval_raised (Printexc.to_string e))
