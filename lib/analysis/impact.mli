(** Subtree dependence analysis: content-addressed interface summaries
    over m-graphs, and the reuse/respin verdicts that make incremental
    relinking sound.

    Built on {!Symflow}: per operator node the analyzer computes a
    canonical {e interface summary} — exports with binding and
    multiplicity, undefined references, reloc shape (referenced names),
    frozen/hidden sets, accumulated constraint preferences, and the
    number of mangling ids the subtree consumes — plus a structural
    digest that chains leaf content digests, operator parameters, child
    digests and the summary. Two subtrees with equal digests are
    provably link-equivalent: same construction content, same interface,
    same placement preferences.

    Stability is established by {e dual-base replay}: the whole analysis
    runs twice from two distinct gensym bases, and a node whose digest
    differs between the runs has an interface that leaks minted
    [n$frzI]/[n$hidI] names (a live freeze/hide/show anywhere in the
    subtree). Unstable subtrees can never be reused — their
    materialization depends on where in the global mangling sequence
    evaluation happens to start. Stable subtrees contain no minted name
    at all, so their materialization is byte-identical across replays
    (dead freezes still {e consume} ids, which is why the summary
    carries the consumed-id count: reuse must skip them).

    {!diff} compares an old/new analysis: each node of the new tree is
    either [Reused] (digest present in the old tree {e and} stable —
    the proof obligations) or [Respin] with the first differing
    interface fact as a human-readable reason. Verdicts are pre-order
    and pruned: below a reused node nothing needs a verdict.

    Like {!Lint}, the analyzer materializes no view and charges nothing
    to the simulated clock. *)

module Mg := Blueprint.Mgraph

(** Canonical interface summary of one subtree. All lists are in
    canonical (sorted) order except [s_exports], which keeps
    multiplicity. *)
type summary = {
  s_op : string;  (** operator key, parameters included *)
  s_exports : (string * string) list;
      (** exported (name, binding), sorted, multiplicity preserved *)
  s_undefined : string list;
  s_relocs : string list;  (** names referenced by relocations *)
  s_frozen : string list;
  s_hidden : string list;
  s_prefs : string list;  (** rendered constraint preferences *)
  s_gensym : int;  (** mangling ids the subtree consumes *)
}

(** Annotated analysis of one node. *)
type info = {
  i_path : string;  (** m-graph path, {!Lint}'s addressing vocabulary *)
  i_node : Mg.node;
  i_summary : summary;
  i_digest : string;
      (** content digest: leaf content + params + child digests +
          summary, chained bottom-up *)
  i_modeled : bool;
      (** the whole subtree is fully modeled: every name resolves
          acyclically, every selector/template compiles, every source
          compiles, every specializer has a modeled semantics *)
  i_stable : bool;
      (** digest invariant under gensym-base replay, and every node in
          the subtree fully modeled (no unresolved name, bad selector,
          or unmodeled specializer) *)
  i_children : info list;
}

type tree = {
  t_root : info;
  t_approximate : bool;
      (** some node could not be modeled precisely; those nodes (and
          their ancestors) are marked unstable *)
}

(** Analyze a graph. Never raises; unmodelable nodes are marked
    unstable rather than failing. *)
val analyze :
  resolve:(string -> (Mg.node, string) result) -> Mg.node -> tree

(** Pre-order walk over an info tree. *)
val iter_infos : (info -> unit) -> tree -> unit

(** Verdict for one node of the {e new} tree. *)
type verdict =
  | Reused of { digest : string }
      (** an equal-digest stable subtree exists in the old tree; its
          materialization can be reused byte-for-byte *)
  | Respin of { reason : string }
      (** must be rebuilt; [reason] names the first differing
          interface fact *)

type node_verdict = {
  v_path : string;
  v_op : string;
  v_digest : string;
  v_verdict : verdict;
}

type diff = {
  d_old_digest : string;  (** old root digest *)
  d_new_digest : string;  (** new root digest *)
  d_nodes : node_verdict list;
      (** new-tree pre-order, pruned below reused nodes *)
  d_reused : int;
  d_respun : int;
  d_spine : string list;  (** paths of the respun nodes *)
}

(** Compare two analyses: old on the left, new on the right. *)
val diff : old_tree:tree -> new_tree:tree -> diff

(** Outcome of discharging the byte-identity obligation of every
    [Reused] verdict: each distinct reused digest's old and new
    subtrees are evaluated from scratch and their flattened objects
    compared byte-for-byte. *)
type verify_outcome = {
  vo_checked : int;  (** distinct reused digests compared *)
  vo_failures : (string * string) list;  (** (path, what differed) *)
}

(** [verify ~eval ~old_tree ~new_tree d] — [eval] evaluates a node in
    the caller's environment (e.g. the server's). Subtrees whose
    evaluation raises identically on both sides are vacuously ok (they
    can never have been materialized). *)
val verify :
  eval:(Mg.node -> Jigsaw.Module_ops.t) ->
  old_tree:tree ->
  new_tree:tree ->
  diff ->
  verify_outcome
