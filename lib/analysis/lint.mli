(** Blueprint lint: the diagnostics pass over the {!Symflow} lattice.

    [analyze] walks an m-graph exactly as {!Blueprint.Mgraph.eval}
    would (same operand order, same freeze/hide mangling-id sequence)
    but on abstract name sets — no view is materialized and no
    simulated cost is charged — and reports findings with stable codes:

    {v
    E001 unresolved-at-root      E005 unknown-server-object
    E002 duplicate-global-in-merge  E006 invalid-selector
    E003 rename-collision        E007 source-compile-error
    E004 conflicting-address-constraints  E008 malformed-graph
    W101 dead-restrict/hide/show/project
    W102 override-overrides-nothing
    W103 freeze-of-already-frozen
    W104 shadowed-weak-definition
    W105 unstable-subtree
    v} *)

type severity = Error | Warning

val severity_to_string : severity -> string

type finding = {
  code : string;  (** stable code, e.g. ["E002"] *)
  title : string;  (** stable slug, e.g. ["duplicate-global-in-merge"] *)
  severity : severity;
  path : string;  (** m-graph path, e.g. ["constrain.rename.override[1]"] *)
  symbols : string list;  (** offending symbols, sorted *)
  message : string;
}

type report = {
  findings : finding list;  (** traversal order *)
  exports : string list;  (** predicted {!Jigsaw.Module_ops.exports} *)
  undefined : string list;  (** predicted {!Jigsaw.Module_ops.undefined} *)
  frozen : string list;
  hidden : string list;
  prefs : Blueprint.Mgraph.constraint_pref list;
  approximate : bool;
      (** an unmodeled specializer ("lib-dynamic", "monitor") rewrites
          the module; predicted sets describe its operand only *)
  eval_fails : bool;  (** some finding implies evaluation raises *)
}

val errors : report -> int
val warnings : report -> int

(** ["E002 duplicate-global-in-merge at merge: ... [sym, sym]"] *)
val finding_to_string : finding -> string

(** [analyze ~resolve root] runs the abstract interpretation. [resolve]
    maps server-object paths to sub-graphs ([Error msg] yields an E005
    finding). [gensym_base] seeds the replayed mangling-id counter —
    pass {!Jigsaw.Module_ops.gensym_current} when predicted names must
    match an evaluation that follows. Never raises. *)
val analyze :
  resolve:(string -> (Blueprint.Mgraph.node, string) result) ->
  ?gensym_base:int ->
  Blueprint.Mgraph.node ->
  report

(** [analyze_meta ~resolve meta] analyzes the meta-object's effective
    graph (default specialization and constraint-list included). *)
val analyze_meta :
  resolve:(string -> (Blueprint.Mgraph.node, string) result) ->
  ?spec:(string * Blueprint.Mgraph.value list) option ->
  ?gensym_base:int ->
  Blueprint.Meta.t ->
  report

(** Differential self-check: analysis first (seeded from the live
    gensym counter), then real evaluation, then set comparison. *)
type verify_outcome =
  | Verified of { exports : int; undefined : int }
  | Skipped of string
      (** analysis predicts failure, or the graph uses an unmodeled
          specialization *)
  | Mismatch of {
      field : string;  (** "exports" or "undefined" *)
      predicted : string list;
      actual : string list;
    }
  | Eval_raised of string
      (** evaluation raised although the analyzer predicted success *)

val verify_against :
  eval:(Blueprint.Mgraph.node -> Blueprint.Mgraph.result) ->
  resolve:(string -> (Blueprint.Mgraph.node, string) result) ->
  Blueprint.Mgraph.node ->
  report * verify_outcome
