(** Subtree dependence analysis — see impact.mli for the contract.

    The walker below mirrors {!Lint.go_node} case for case: same
    operand order, same flattening of [list] operands, same
    mangling-id draw points (one per freeze, one per hide, one per
    show victim — whatever {!Symflow} actually draws is measured by
    sampling the counter around the subtree). Keeping the two
    traversals in lock-step is what lets the lint differential
    self-check vouch for the summaries computed here. *)

module S = Symflow.S
module Mg = Blueprint.Mgraph

type summary = {
  s_op : string;
  s_exports : (string * string) list;
  s_undefined : string list;
  s_relocs : string list;
  s_frozen : string list;
  s_hidden : string list;
  s_prefs : string list;
  s_gensym : int;
}

type info = {
  i_path : string;
  i_node : Mg.node;
  i_summary : summary;
  i_digest : string;
  i_modeled : bool;
  i_stable : bool;
  i_children : info list;
}

type tree = { t_root : info; t_approximate : bool }

(* -- canonical rendering ---------------------------------------------------- *)

let binding_str = function
  | Sof.Symbol.Global -> "global"
  | Sof.Symbol.Weak -> "weak"
  | Sof.Symbol.Local -> "local"

(* Exported (name, binding) pairs with multiplicity: duplicate globals
   must stay visible, they are part of the interface (a merge against
   them raises). *)
let export_pairs (m : Symflow.t) : (string * string) list =
  List.concat_map
    (fun f ->
      List.filter_map
        (fun (n, b) ->
          match b with
          | Sof.Symbol.Global | Sof.Symbol.Weak -> Some (n, binding_str b)
          | Sof.Symbol.Local -> None)
        f.Symflow.f_defs)
    m.Symflow.frags
  |> List.sort compare

let reloc_names (m : Symflow.t) : string list =
  S.elements
    (List.fold_left
       (fun acc f -> S.union acc f.Symflow.f_relocs)
       S.empty m.Symflow.frags)

let seg_str = function Mg.Seg_text -> "T" | Mg.Seg_data -> "D"

let pref_str (c : Mg.constraint_pref) : string =
  Format.asprintf "%s/%d:%a" (seg_str c.Mg.seg) c.Mg.priority
    Constraints.Placement.pp_pref c.Mg.pref

let scope_str = function
  | Jigsaw.Module_ops.Defs_only -> "defs"
  | Jigsaw.Module_ops.Refs_only -> "refs"
  | Jigsaw.Module_ops.Both -> "both"

let rec value_key = function
  | Mg.Vstr s -> "s:" ^ s
  | Mg.Vnum n -> "n:" ^ string_of_int n
  | Mg.Vlist vs -> "l:[" ^ String.concat "," (List.map value_key vs) ^ "]"
  | Mg.Vnode n -> "g:" ^ Mg.digest n

(* Digest-side operator key. Deliberately path-free for [Name]: the
   digest addresses *content*, so rebinding identical content under a
   new server path still reuses. The display key (s_op, from
   {!Mg.op_name}) keeps the path for humans. *)
let op_digest_key (n : Mg.node) : string =
  match n with
  | Mg.Leaf _ -> "leaf"
  | Mg.Name _ -> "name"
  | Mg.Merge _ -> "merge"
  | Mg.Override _ -> "override"
  | Mg.Freeze (p, _) -> "freeze:" ^ p
  | Mg.Restrict (p, _) -> "restrict:" ^ p
  | Mg.Project (p, _) -> "project:" ^ p
  | Mg.Copy_as (p, t, _) -> "copy-as:" ^ p ^ ":" ^ t
  | Mg.Hide (p, _) -> "hide:" ^ p
  | Mg.Show (p, _) -> "show:" ^ p
  | Mg.Rename (sc, p, t, _) -> "rename:" ^ scope_str sc ^ ":" ^ p ^ ":" ^ t
  | Mg.Initializers _ -> "initializers"
  | Mg.Source (lang, _) -> "source:" ^ lang
  | Mg.Specialize (style, args, _) ->
      "specialize:" ^ style ^ ":"
      ^ String.concat "," (List.map value_key args)
  | Mg.Constrain (seg, addr, _) ->
      Printf.sprintf "constrain:%s:0x%x" (seg_str seg) addr
  | Mg.Lst _ -> "list"

(* Node-local content that is not captured by children digests. *)
let content_key (n : Mg.node) : string =
  match n with
  | Mg.Leaf o -> Sof.Codec.digest o
  | Mg.Source (lang, text) ->
      Digest.to_hex (Digest.string (lang ^ "\x00" ^ text))
  | _ -> ""

let summary_key (s : summary) : string =
  let b = Buffer.create 256 in
  let strs tag xs =
    Buffer.add_string b tag;
    List.iter
      (fun x ->
        Buffer.add_string b x;
        Buffer.add_char b ';')
      xs;
    Buffer.add_char b '|'
  in
  strs "e:" (List.map (fun (n, bd) -> n ^ "=" ^ bd) s.s_exports);
  strs "u:" s.s_undefined;
  strs "r:" s.s_relocs;
  strs "f:" s.s_frozen;
  strs "h:" s.s_hidden;
  strs "p:" s.s_prefs;
  Buffer.add_string b ("g:" ^ string_of_int s.s_gensym);
  Buffer.contents b

let node_digest ~(op : string) ~(content : string)
    ~(children : string list) (s : summary) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x01"
          ("impact.v1" :: op :: content
          :: String.concat "," children
          :: [ summary_key s ])))

(* -- the walker ------------------------------------------------------------- *)

type state = {
  resolve : string -> (Mg.node, string) result;
  gensym : int ref;
  mutable visiting : string list;
}

let draw (st : state) () : int =
  incr st.gensym;
  !(st.gensym)

let child (path : string) ?idx (n : Mg.node) : string =
  let parent =
    match idx with None -> path | Some i -> Printf.sprintf "%s[%d]" path i
  in
  parent ^ "." ^ Mg.op_name n

let rec flatten (ns : Mg.node list) : Mg.node list =
  List.concat_map (function Mg.Lst xs -> flatten xs | n -> [ n ]) ns

(* A selector or rewrite template the operator can apply; [None] means
   the operator is a no-op for the flow (mirrors lint's E006 path). *)
let compile_sel (pattern : string) : Jigsaw.Select.t option =
  match Jigsaw.Select.compile_res pattern with
  | Ok sel -> Some sel
  | Error _ -> None

let guarded_map (bad : bool ref) (map : string -> string option) :
    string -> string option =
 fun n ->
  try map n
  with _ ->
    bad := true;
    None

(* Kept in sync with {!Lint}'s specializer model. *)
let known_specializers =
  [
    "lib-constrained"; "lib-static"; "identity"; "lib-dynamic";
    "lib-dynamic-impl"; "monitor";
  ]

let unmodeled_specializers = [ "lib-dynamic"; "monitor" ]

(* Walk one node. Returns the symbol flow and prefs (the operator
   semantics, identical to lint's) plus the annotated info whose
   [i_stable] is provisionally [i_modeled] — the dual-base zip below
   replaces it with the replay-invariance verdict. *)
let rec walk (st : state) (path : string) (n : Mg.node) :
    Symflow.t * Mg.constraint_pref list * info =
  let g0 = !(st.gensym) in
  let m, prefs, children, ok = step st path n in
  let consumed = !(st.gensym) - g0 in
  let summary =
    {
      s_op = Mg.op_name n;
      s_exports = export_pairs m;
      s_undefined = Symflow.undefined m;
      s_relocs = reloc_names m;
      s_frozen = S.elements m.Symflow.frozen;
      s_hidden = S.elements m.Symflow.hidden;
      s_prefs = List.map pref_str prefs;
      s_gensym = consumed;
    }
  in
  let modeled =
    ok && List.for_all (fun c -> c.i_modeled) children
  in
  let digest =
    node_digest ~op:(op_digest_key n) ~content:(content_key n)
      ~children:(List.map (fun c -> c.i_digest) children)
      summary
  in
  ( m,
    prefs,
    {
      i_path = path;
      i_node = n;
      i_summary = summary;
      i_digest = digest;
      i_modeled = modeled;
      i_stable = modeled;
      i_children = children;
    } )

and step (st : state) (path : string) (n : Mg.node) :
    Symflow.t * Mg.constraint_pref list * info list * bool =
  match n with
  | Mg.Leaf o -> (Symflow.of_object o, [], [], true)
  | Mg.Name p ->
      if List.mem p st.visiting then (Symflow.empty, [], [], false)
      else begin
        match st.resolve p with
        | Error _ -> (Symflow.empty, [], [], false)
        | Ok sub ->
            st.visiting <- p :: st.visiting;
            let m, prefs, i = walk st path sub in
            st.visiting <- List.tl st.visiting;
            (m, prefs, [ i ], true)
      end
  | Mg.Merge operands -> (
      match flatten operands with
      | [] -> (Symflow.empty, [], [], false)
      | flat ->
          let rs =
            List.mapi (fun i x -> walk st (child path ~idx:i x) x) flat
          in
          let parts = List.map (fun (m, _, _) -> m) rs in
          let m =
            match parts with
            | p :: rest -> List.fold_left Symflow.merge p rest
            | [] -> assert false
          in
          ( m,
            List.concat_map (fun (_, p, _) -> p) rs,
            List.map (fun (_, _, i) -> i) rs,
            true ))
  | Mg.Override (a, b) ->
      let ma, pa, ia = walk st (child path ~idx:0 a) a in
      let mb, pb, ib = walk st (child path ~idx:1 b) b in
      let b_exports = Symflow.exports mb in
      let a' = Symflow.restrict (fun n -> List.mem n b_exports) ma in
      (Symflow.merge a' mb, pa @ pb, [ ia; ib ], true)
  | Mg.Freeze (p, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match compile_sel p with
      | None -> (mx, px, [ ix ], false)
      | Some sel ->
          ( Symflow.freeze ~gensym:(draw st) (Jigsaw.Select.matches sel) mx,
            px,
            [ ix ],
            true ))
  | Mg.Restrict (p, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match compile_sel p with
      | None -> (mx, px, [ ix ], false)
      | Some sel -> (Symflow.restrict (Jigsaw.Select.matches sel) mx, px, [ ix ], true))
  | Mg.Project (p, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match compile_sel p with
      | None -> (mx, px, [ ix ], false)
      | Some sel -> (Symflow.project (Jigsaw.Select.matches sel) mx, px, [ ix ], true))
  | Mg.Copy_as (p, template, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match compile_sel p with
      | None -> (mx, px, [ ix ], false)
      | Some sel ->
          let bad = ref false in
          let map = guarded_map bad (Jigsaw.Select.rewrite sel template) in
          let m' = Symflow.copy_as map mx in
          (m', px, [ ix ], not !bad))
  | Mg.Hide (p, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match compile_sel p with
      | None -> (mx, px, [ ix ], false)
      | Some sel ->
          ( Symflow.hide ~gensym:(draw st) (Jigsaw.Select.matches sel) mx,
            px,
            [ ix ],
            true ))
  | Mg.Show (p, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match compile_sel p with
      | None -> (mx, px, [ ix ], false)
      | Some sel ->
          ( Symflow.show ~gensym:(draw st) (Jigsaw.Select.matches sel) mx,
            px,
            [ ix ],
            true ))
  | Mg.Rename (scope, p, template, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match compile_sel p with
      | None -> (mx, px, [ ix ], false)
      | Some sel ->
          let bad = ref false in
          let map = guarded_map bad (Jigsaw.Select.rewrite sel template) in
          let m' = Symflow.rename scope map mx in
          (m', px, [ ix ], not !bad))
  | Mg.Initializers x ->
      let mx, px, ix = walk st (child path x) x in
      (Symflow.initializers mx, px, [ ix ], true)
  | Mg.Source (lang, text) -> (
      match lang with
      | "c" | "C" -> (
          match Minic.Driver.compile ~name:"(source)" text with
          | o -> (Symflow.of_object o, [], [], true)
          | exception _ -> (Symflow.empty, [], [], false))
      | _ -> (Symflow.empty, [], [], false))
  | Mg.Specialize (style, args, x) -> (
      let mx, px, ix = walk st (child path x) x in
      match style with
      | "lib-constrained" -> (
          let flat =
            List.concat_map
              (function Mg.Vlist vs -> vs | v -> [ v ])
              args
          in
          let rec pairs = function
            | Mg.Vstr seg :: Mg.Vnum addr :: rest -> (
                match Mg.seg_of_string seg with
                | s ->
                    Option.map
                      (fun tail ->
                        {
                          Mg.seg = s;
                          priority = 6;
                          pref = Constraints.Placement.At addr;
                        }
                        :: {
                             Mg.seg = s;
                             priority = 3;
                             pref = Constraints.Placement.Near addr;
                           }
                        :: tail)
                      (pairs rest)
                | exception Mg.Eval_error _ -> None)
            | [] -> Some []
            | _ -> None
          in
          match pairs flat with
          | Some ps -> (mx, ps @ px, [ ix ], true)
          | None -> (mx, px, [ ix ], false))
      | "lib-static" | "identity" | "lib-dynamic-impl" -> (mx, px, [ ix ], true)
      | _ when List.mem style unmodeled_specializers ->
          (* stub generation / wrapper interposition rewrite the module
             in ways only evaluation can see: the summary describes the
             operand only, so reuse cannot be proven *)
          (mx, px, [ ix ], false)
      | _ when List.mem style known_specializers -> (mx, px, [ ix ], true)
      | _ -> (mx, px, [ ix ], false))
  | Mg.Constrain (seg, addr, x) ->
      let mx, px, ix = walk st (child path x) x in
      ( mx,
        { Mg.seg; priority = 6; pref = Constraints.Placement.At addr }
        :: { Mg.seg; priority = 3; pref = Constraints.Placement.Near addr }
        :: px,
        [ ix ],
        true )
  | Mg.Lst _ -> (Symflow.empty, [], [], false)

(* -- entry points ------------------------------------------------------------ *)

let fallback_info (root : Mg.node) : info =
  {
    i_path = Mg.op_name root;
    i_node = root;
    i_summary =
      {
        s_op = Mg.op_name root;
        s_exports = [];
        s_undefined = [];
        s_relocs = [];
        s_frozen = [];
        s_hidden = [];
        s_prefs = [];
        s_gensym = 0;
      };
    i_digest = "(analysis-error)";
    i_modeled = false;
    i_stable = false;
    i_children = [];
  }

let run_once ~resolve ~(gensym_base : int) (root : Mg.node) : info =
  let st = { resolve; gensym = ref gensym_base; visiting = [] } in
  match walk st (Mg.op_name root) root with
  | _, _, i -> i
  | exception _ -> fallback_info root

let rec force_unstable (i : info) : info =
  {
    i with
    i_stable = false;
    i_children = List.map force_unstable i.i_children;
  }

(* Zip the two replays: a node is stable iff it is fully modeled and
   its digest did not move when the whole analysis started from a
   different mangling base. *)
let rec zip (a : info) (b : info) : info =
  {
    a with
    i_stable = a.i_modeled && String.equal a.i_digest b.i_digest;
    i_children = List.map2 zip a.i_children b.i_children;
  }

let iter_infos (f : info -> unit) (t : tree) : unit =
  let rec go i =
    f i;
    List.iter go i.i_children
  in
  go t.t_root

let analyze ~(resolve : string -> (Mg.node, string) result) (root : Mg.node) :
    tree =
  let r0 = run_once ~resolve ~gensym_base:0 root in
  let r1 = run_once ~resolve ~gensym_base:1_000_003 root in
  let zipped =
    try zip r0 r1 with Invalid_argument _ -> force_unstable r0
  in
  let approx = ref false in
  let t = { t_root = zipped; t_approximate = false } in
  iter_infos (fun i -> if not i.i_modeled then approx := true) t;
  { t with t_approximate = !approx }

(* -- diff -------------------------------------------------------------------- *)

type verdict = Reused of { digest : string } | Respin of { reason : string }

type node_verdict = {
  v_path : string;
  v_op : string;
  v_digest : string;
  v_verdict : verdict;
}

type diff = {
  d_old_digest : string;
  d_new_digest : string;
  d_nodes : node_verdict list;
  d_reused : int;
  d_respun : int;
  d_spine : string list;
}

(* First element of the (sorted or positional) rendering that differs,
   phrased relative to the new blueprint. *)
let first_list_diff ~(what : string) (old_l : string list)
    (new_l : string list) : string option =
  let rec go o n =
    match (o, n) with
    | [], [] -> None
    | x :: _, [] -> Some (Printf.sprintf "%s %s removed" what x)
    | [], y :: _ -> Some (Printf.sprintf "%s %s added" what y)
    | x :: o', y :: n' ->
        if String.equal x y then go o' n'
        else if compare x y < 0 then
          Some (Printf.sprintf "%s %s removed" what x)
        else Some (Printf.sprintf "%s %s added" what y)
  in
  go old_l new_l

let summary_reason (so : summary) (sn : summary) : string option =
  let exports s =
    List.map (fun (n, b) -> Printf.sprintf "%s (%s)" n b) s.s_exports
  in
  if not (String.equal so.s_op sn.s_op) then
    Some (Printf.sprintf "operator changed: %s -> %s" so.s_op sn.s_op)
  else
    match first_list_diff ~what:"export" (exports so) (exports sn) with
    | Some r -> Some r
    | None -> (
        match
          first_list_diff ~what:"undefined reference" so.s_undefined
            sn.s_undefined
        with
        | Some r -> Some r
        | None -> (
            match
              first_list_diff ~what:"relocation target" so.s_relocs sn.s_relocs
            with
            | Some r -> Some r
            | None -> (
                match
                  first_list_diff ~what:"frozen binding" so.s_frozen sn.s_frozen
                with
                | Some r -> Some r
                | None -> (
                    match
                      first_list_diff ~what:"hidden name" so.s_hidden
                        sn.s_hidden
                    with
                    | Some r -> Some r
                    | None -> (
                        match
                          first_list_diff ~what:"constraint preference"
                            so.s_prefs sn.s_prefs
                        with
                        | Some r -> Some r
                        | None ->
                            if so.s_gensym <> sn.s_gensym then
                              Some
                                (Printf.sprintf
                                   "mangling-id consumption changed: %d -> %d"
                                   so.s_gensym sn.s_gensym)
                            else None)))))

let respin_reason (old_opt : info option) (ni : info) : string =
  if not ni.i_modeled then
    "subtree not fully modeled (unresolved name, bad selector, source \
     error, or opaque specializer); reuse cannot be proven"
  else if not ni.i_stable then
    "interface summary depends on gensym ordering (a live freeze/hide/show \
     leaks minted aliases into the exports)"
  else
    match old_opt with
    | None -> "new subtree: no counterpart at this position in the old blueprint"
    | Some oi -> (
        match summary_reason oi.i_summary ni.i_summary with
        | Some r -> r
        | None -> "operand content changed (interface identical)")

let diff ~(old_tree : tree) ~(new_tree : tree) : diff =
  let old_stable : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  iter_infos
    (fun i -> if i.i_stable then Hashtbl.replace old_stable i.i_digest ())
    old_tree;
  let nodes = ref [] in
  let reused = ref 0 in
  let respun = ref 0 in
  let spine = ref [] in
  let rec go (old_opt : info option) (ni : info) : unit =
    if ni.i_stable && Hashtbl.mem old_stable ni.i_digest then begin
      incr reused;
      nodes :=
        {
          v_path = ni.i_path;
          v_op = ni.i_summary.s_op;
          v_digest = ni.i_digest;
          v_verdict = Reused { digest = ni.i_digest };
        }
        :: !nodes
      (* pruned: nothing below a reused subtree needs a verdict *)
    end
    else begin
      incr respun;
      spine := ni.i_path :: !spine;
      nodes :=
        {
          v_path = ni.i_path;
          v_op = ni.i_summary.s_op;
          v_digest = ni.i_digest;
          v_verdict = Respin { reason = respin_reason old_opt ni };
        }
        :: !nodes;
      let old_children =
        match old_opt with Some o -> o.i_children | None -> []
      in
      List.iteri
        (fun k c -> go (List.nth_opt old_children k) c)
        ni.i_children
    end
  in
  go (Some old_tree.t_root) new_tree.t_root;
  {
    d_old_digest = old_tree.t_root.i_digest;
    d_new_digest = new_tree.t_root.i_digest;
    d_nodes = List.rev !nodes;
    d_reused = !reused;
    d_respun = !respun;
    d_spine = List.rev !spine;
  }

(* -- verification ------------------------------------------------------------ *)

type verify_outcome = {
  vo_checked : int;
  vo_failures : (string * string) list;
}

let find_by_digest (t : tree) (dg : string) : info option =
  let found = ref None in
  iter_infos
    (fun i ->
      if Option.is_none !found && String.equal i.i_digest dg then
        found := Some i)
    t;
  !found

let verify ~(eval : Mg.node -> Jigsaw.Module_ops.t) ~(old_tree : tree)
    ~(new_tree : tree) (d : diff) : verify_outcome =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let checked = ref 0 in
  let failures = ref [] in
  let materialize (i : info) : (string, string) result =
    match eval i.i_node with
    | m -> Ok (Sof.Codec.digest (Jigsaw.Module_ops.to_object m))
    | exception e -> Error (Printexc.to_string e)
  in
  List.iter
    (fun v ->
      match v.v_verdict with
      | Respin _ -> ()
      | Reused { digest } ->
          if not (Hashtbl.mem seen digest) then begin
            Hashtbl.replace seen digest ();
            incr checked;
            match (find_by_digest old_tree digest, find_by_digest new_tree digest) with
            | Some oi, Some ni -> (
                match (materialize oi, materialize ni) with
                | Ok a, Ok b when String.equal a b -> ()
                | Ok a, Ok b ->
                    failures :=
                      ( v.v_path,
                        Printf.sprintf
                          "materialization differs: old %s, new %s" a b )
                      :: !failures
                | Error _, Error _ ->
                    (* neither side materializes; the obligation is vacuous *)
                    ()
                | Ok _, Error e ->
                    failures :=
                      (v.v_path, "new evaluation raised: " ^ e) :: !failures
                | Error e, Ok _ ->
                    failures :=
                      (v.v_path, "old evaluation raised: " ^ e) :: !failures)
            | _ ->
                failures :=
                  (v.v_path, "reused digest not found in both trees")
                  :: !failures
          end)
    d.d_nodes;
  { vo_checked = !checked; vo_failures = List.rev !failures }
