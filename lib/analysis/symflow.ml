(** The symbol-flow lattice: abstract Jigsaw modules over name sets.

    An abstract module mirrors {!Jigsaw.Module_ops.t} at the granularity
    the namespace operators actually work at — per-fragment sets of
    defined, referenced and constructor names — without holding section
    bytes, views, or relocation details. Every operator below replays
    the exact semantics of its concrete counterpart (including the
    [n$frzI]/[n$hidI] freeze manglings, whose ids are minted from a
    caller-supplied counter), so the predicted {!exports} and
    {!undefined} of a blueprint equal what evaluation would produce —
    with no view materialized and no simulated cost charged. *)

module S = Set.Make (String)

(** One object-file fragment, reduced to its namespace. [f_defs] keeps
    symbol-table order and multiplicity: duplicate global definitions
    must stay visible for conflict detection. *)
type frag = {
  f_src : string;  (** provenance label of the underlying object *)
  f_defs : (string * Sof.Symbol.binding) list;
  f_undefs : S.t;  (** explicit [Undef] symbol-table entries *)
  f_relocs : S.t;  (** names referenced by relocations *)
  f_ctors : string list;
}

(** An abstract module: fragments plus the frozen/hidden bookkeeping
    the diagnostics pass reads. *)
type t = {
  frags : frag list;
  frozen : S.t;  (** public names whose bindings were made permanent *)
  hidden : S.t;  (** public names renamed away by [hide]/[show] *)
}

let empty : t = { frags = []; frozen = S.empty; hidden = S.empty }

let of_object (o : Sof.Object_file.t) : t =
  let f =
    {
      f_src = o.Sof.Object_file.name;
      f_defs =
        List.filter_map
          (fun (s : Sof.Symbol.t) ->
            if Sof.Symbol.is_defined s then Some (s.name, s.binding) else None)
          o.Sof.Object_file.symbols;
      f_undefs =
        S.of_list
          (List.filter_map
             (fun (s : Sof.Symbol.t) ->
               if s.kind = Sof.Symbol.Undef then Some s.name else None)
             o.Sof.Object_file.symbols);
      f_relocs =
        S.of_list
          (List.map (fun (r : Sof.Reloc.t) -> r.symbol) o.Sof.Object_file.relocs);
      f_ctors = o.Sof.Object_file.ctors;
    }
  in
  { empty with frags = [ f ] }

(* -- queries --------------------------------------------------------------- *)

let is_exported_binding = function
  | Sof.Symbol.Global | Sof.Symbol.Weak -> true
  | Sof.Symbol.Local -> false

(** Names exported by the module (sorted, deduplicated) — the abstract
    {!Jigsaw.Module_ops.exports}. *)
let exports (m : t) : string list =
  List.sort_uniq compare
    (List.concat_map
       (fun f ->
         List.filter_map
           (fun (n, b) -> if is_exported_binding b then Some n else None)
           f.f_defs)
       m.frags)

(** Names defined anywhere in the module, at any visibility. *)
let defined_any (m : t) : string list =
  List.sort_uniq compare
    (List.concat_map (fun f -> List.map fst f.f_defs) m.frags)

(* Names a single fragment references but does not define — the
   abstract [Sof.Object_file.undefined]. *)
let frag_undefined (f : frag) : S.t =
  let own = S.of_list (List.map fst f.f_defs) in
  S.diff (S.union f.f_undefs f.f_relocs) own

(** Names referenced by the module but exported nowhere inside it — the
    abstract {!Jigsaw.Module_ops.undefined} (a local definition in a
    sibling fragment does {e not} satisfy a reference). *)
let undefined (m : t) : string list =
  let exported = S.of_list (exports m) in
  List.sort_uniq compare
    (List.concat_map
       (fun f -> S.elements (S.diff (frag_undefined f) exported))
       m.frags)

(** Global definition names of one fragment, with multiplicity — the
    abstract [global_names_of_frag] that [merge]'s duplicate check
    iterates. *)
let frag_globals (f : frag) : string list =
  List.filter_map
    (fun (n, b) -> if b = Sof.Symbol.Global then Some n else None)
    f.f_defs

(** Duplicate global definitions across (and within) the fragments, in
    the order {!Jigsaw.Module_ops.merge} would discover them:
    [(name, first_src, second_src)] per extra occurrence. *)
let duplicate_globals (frags : frag list) : (string * string * string) list =
  let seen = Hashtbl.create 32 in
  let dups = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun n ->
          match Hashtbl.find_opt seen n with
          | Some first -> dups := (n, first, f.f_src) :: !dups
          | None -> Hashtbl.replace seen n f.f_src)
        (frag_globals f))
    frags;
  List.rev !dups

(** Names defined [Weak] in one operand and [Global] in the other — the
    weak definitions this merge permanently shadows. Sorted. *)
let weak_shadowed (a : t) (b : t) : string list =
  let bindings (m : t) (keep : Sof.Symbol.binding) : S.t =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc (n, bind) -> if bind = keep then S.add n acc else acc)
          acc f.f_defs)
      S.empty m.frags
  in
  S.elements
    (S.union
       (S.inter (bindings a Sof.Symbol.Weak) (bindings b Sof.Symbol.Global))
       (S.inter (bindings b Sof.Symbol.Weak) (bindings a Sof.Symbol.Global)))

(** Definition and constructor names any fragment holds that match —
    what a [restrict]'s [Undefine] would actually touch. Sorted. *)
let touched (p : string -> bool) (m : t) : string list =
  List.sort_uniq compare
    (List.concat_map
       (fun f ->
         List.filter p (List.map fst f.f_defs) @ List.filter p f.f_ctors)
       m.frags)

(* -- the view-op mirrors ---------------------------------------------------- *)

let map_frags (g : frag -> frag) (m : t) : t =
  { m with frags = List.map g m.frags }

(* Sof.View.Undefine: drop matching definitions (any visibility) and
   matching constructors; references survive. *)
let undefine (p : string -> bool) : t -> t =
  map_frags (fun f ->
      {
        f with
        f_defs = List.filter (fun (n, _) -> not (p n)) f.f_defs;
        f_ctors = List.filter (fun c -> not (p c)) f.f_ctors;
      })

(* Sof.View.Rename_defs: rewrite definition and constructor names;
   references keep the old name. *)
let rename_defs (g : string -> string option) : t -> t =
  map_frags (fun f ->
      {
        f with
        f_defs =
          List.map
            (fun (n, b) -> (Option.value (g n) ~default:n, b))
            f.f_defs;
        f_ctors = List.map (fun c -> Option.value (g c) ~default:c) f.f_ctors;
      })

(* Sof.View.Rename_refs: rewrite explicit undef entries and relocation
   symbols. *)
let rename_refs (g : string -> string option) : t -> t =
  map_frags (fun f ->
      let rn s = S.map (fun n -> Option.value (g n) ~default:n) s in
      { f with f_undefs = rn f.f_undefs; f_relocs = rn f.f_relocs })

(* Sof.View.Copy_defs: append copies of matching definitions under the
   returned names (bindings preserved). *)
let copy_defs (g : string -> string option) : t -> t =
  map_frags (fun f ->
      let copies =
        List.filter_map
          (fun (n, b) -> Option.map (fun n' -> (n', b)) (g n))
          f.f_defs
      in
      { f with f_defs = f.f_defs @ copies })

(* -- the jigsaw operator mirrors -------------------------------------------- *)

(** [merge a b] — fragment concatenation. Conflict detection is the
    caller's job (via {!duplicate_globals}); like an abstract
    interpreter, the lattice continues past errors. *)
let merge (a : t) (b : t) : t =
  {
    frags = a.frags @ b.frags;
    frozen = S.union a.frozen b.frozen;
    hidden = S.union a.hidden b.hidden;
  }

(** [override a b] — virtualize [a]'s definitions of names [b] exports,
    then merge. *)
let override (a : t) (b : t) : t =
  let b_exports = S.of_list (exports b) in
  merge (undefine (fun n -> S.mem n b_exports) a) b

let restrict (p : string -> bool) (m : t) : t = undefine p m
let project (p : string -> bool) (m : t) : t = undefine (fun n -> not (p n)) m

let copy_as (g : string -> string option) (m : t) : t = copy_defs g m

let rename (scope : Jigsaw.Module_ops.rename_scope)
    (g : string -> string option) (m : t) : t =
  match scope with
  | Jigsaw.Module_ops.Defs_only -> rename_defs g m
  | Jigsaw.Module_ops.Refs_only -> rename_refs g m
  | Jigsaw.Module_ops.Both -> rename_refs g (rename_defs g m)

(** The shared freeze/hide mirror. [gensym] must replay the id sequence
    {!Jigsaw.Module_ops} will mint — it is drawn unconditionally, even
    when the selection is empty, exactly like the concrete operator. *)
let freeze_like ~(keep_public : bool) ~(gensym : unit -> int)
    (sel : string -> bool) (m : t) : t =
  let id = gensym () in
  let selected = List.filter sel (exports m) in
  if selected = [] then m
  else begin
    let alias = Hashtbl.create 8 in
    List.iter
      (fun n ->
        Hashtbl.replace alias n
          (Printf.sprintf "%s$%s%d" n (if keep_public then "frz" else "hid") id))
      selected;
    let g n = Hashtbl.find_opt alias n in
    let m = rename_refs g m in
    let m = if keep_public then copy_defs g m else rename_defs g m in
    if keep_public then { m with frozen = S.union m.frozen (S.of_list selected) }
    else { m with hidden = S.union m.hidden (S.of_list selected) }
  end

let freeze ~gensym sel m = freeze_like ~keep_public:true ~gensym sel m
let hide ~gensym sel m = freeze_like ~keep_public:false ~gensym sel m

(** [show sel m] hides every export {e not} selected, one victim at a
    time (one mangling id each), in sorted-export order — the concrete
    operator's fold. *)
let show ~(gensym : unit -> int) (sel : string -> bool) (m : t) : t =
  let victims = List.filter (fun n -> not (sel n)) (exports m) in
  List.fold_left
    (fun acc n -> freeze_like ~keep_public:false ~gensym (String.equal n) acc)
    m victims

(** The static-initializer driver: a synthetic fragment exporting
    [__init] and referencing each constructor, overriding the operand
    (so a weak default [__init] is replaced). *)
let initializers (m : t) : t =
  let ctors = List.concat_map (fun f -> f.f_ctors) m.frags in
  let refs = S.of_list ctors in
  let init_frag =
    {
      f_src = "(initializers)";
      f_defs = [ ("__init", Sof.Symbol.Global) ];
      f_undefs = S.remove "__init" refs;
      f_relocs = refs;
      f_ctors = [];
    }
  in
  override m { empty with frags = [ init_frag ] }
