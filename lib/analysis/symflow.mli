(** The symbol-flow lattice: abstract Jigsaw modules over name sets.

    Mirrors {!Jigsaw.Module_ops} at the granularity the namespace
    operators work at — per-fragment sets of defined, referenced and
    constructor names — without section bytes, views, or relocations.
    Every operator replays the exact semantics of its concrete
    counterpart (including the [n$frzI]/[n$hidI] freeze manglings), so
    the predicted {!exports}/{!undefined} of a blueprint equal what
    evaluation would produce, with no view materialized and no
    simulated cost charged. *)

module S : Set.S with type elt = string

(** One object-file fragment, reduced to its namespace. [f_defs] keeps
    symbol-table order and multiplicity (duplicate global definitions
    must stay visible for conflict detection). *)
type frag = {
  f_src : string;
  f_defs : (string * Sof.Symbol.binding) list;
  f_undefs : S.t;
  f_relocs : S.t;
  f_ctors : string list;
}

type t = {
  frags : frag list;
  frozen : S.t;  (** public names whose bindings were made permanent *)
  hidden : S.t;  (** public names renamed away by [hide]/[show] *)
}

val empty : t
val of_object : Sof.Object_file.t -> t

(** {1 Queries} *)

(** Abstract {!Jigsaw.Module_ops.exports}: global/weak definition
    names, sorted and deduplicated. *)
val exports : t -> string list

(** Names defined anywhere in the module, at any visibility. Sorted. *)
val defined_any : t -> string list

(** Abstract {!Jigsaw.Module_ops.undefined}: names referenced but
    exported nowhere inside the module. Sorted. *)
val undefined : t -> string list

(** Global definition names of one fragment, with multiplicity. *)
val frag_globals : frag -> string list

(** Duplicate global definitions across (and within) the fragments, in
    discovery order: [(name, first_src, second_src)]. Non-empty means
    a concrete [merge] of these fragments raises [Module_error]. *)
val duplicate_globals : frag list -> (string * string * string) list

(** Names defined [Weak] in one operand and [Global] in the other — the
    weak definitions a merge of the two permanently shadows. Sorted. *)
val weak_shadowed : t -> t -> string list

(** Definition and constructor names matching the predicate — what a
    [restrict]'s [Undefine] would actually touch. Sorted. *)
val touched : (string -> bool) -> t -> string list

(** {1 Operator mirrors}

    Each function is the abstract counterpart of the same-named
    {!Jigsaw.Module_ops} operator. None of them raises: conflict
    detection is a separate query, and the lattice continues past
    errors. *)

val merge : t -> t -> t
val override : t -> t -> t
val restrict : (string -> bool) -> t -> t
val project : (string -> bool) -> t -> t
val copy_as : (string -> string option) -> t -> t
val rename :
  Jigsaw.Module_ops.rename_scope -> (string -> string option) -> t -> t

(** [gensym] must replay the mangling-id sequence the concrete
    evaluation will mint — it is drawn unconditionally, even when the
    selection is empty, exactly like {!Jigsaw.Module_ops.freeze}. *)
val freeze : gensym:(unit -> int) -> (string -> bool) -> t -> t

val hide : gensym:(unit -> int) -> (string -> bool) -> t -> t

(** Hides every export {e not} selected, one victim (and one mangling
    id) at a time, in sorted-export order. *)
val show : gensym:(unit -> int) -> (string -> bool) -> t -> t

val initializers : t -> t
