(** The link engine: layout, symbol resolution, relocation.

    Two entry points:

    - {!link} performs a {e full} link of an ordered fragment list into
      a positioned, fully relocated {!Image.t} — what OMOS does when it
      executes a [merge]/[constrain] m-graph down to a mappable image.
      Symbols may also be resolved against {e external images} (already
      positioned shared libraries), which is how a client binds to a
      self-contained library's fixed addresses.

    - {!combine} performs a {e partial} link: fragments are concatenated
      into one relocatable object, internal references stay symbolic.
      This is how a multi-member library (Figure 1's libc) becomes a
      single cacheable implementation object. *)

type error =
  | Duplicate of string * string * string (* symbol, defining frag, second frag *)
  | Undefined of string list
  | Layout_overlap of string

exception Link_error of error

let error_to_string = function
  | Duplicate (sym, f1, f2) ->
      Printf.sprintf "duplicate definition of %s (in %s and %s)" sym f1 f2
  | Undefined syms -> "undefined symbols: " ^ String.concat ", " syms
  | Layout_overlap who -> "layout overlap: " ^ who

let () =
  Printexc.register_printer (function
    | Link_error e -> Some ("Link_error: " ^ error_to_string e)
    | _ -> None)

(** Where the linked image goes. *)
type layout = { text_base : int; data_base : int }

let align_up v a = (v + a - 1) / a * a

(* Per-fragment placement within the combined image. *)
type placed = {
  frag : Sof.Object_file.t;
  text_off : int; (* offset of this fragment's text within combined text *)
  data_off : int;
  bss_off : int;
}

let place_fragments (frags : Sof.Object_file.t list) : placed list * int * int * int =
  let text_off = ref 0 and data_off = ref 0 and bss_off = ref 0 in
  let placed =
    List.map
      (fun (frag : Sof.Object_file.t) ->
        let p = { frag; text_off = !text_off; data_off = !data_off; bss_off = !bss_off } in
        text_off := !text_off + Bytes.length frag.text;
        data_off := align_up (!data_off + Bytes.length frag.data) 4;
        bss_off := align_up (!bss_off + frag.bss_size) 4;
        p)
      frags
  in
  (placed, !text_off, !data_off, !bss_off)

(* Absolute address of a defined symbol of a placed fragment, given the
   section bases. *)
let sym_addr ~text_base ~data_base ~bss_base (p : placed) (s : Sof.Symbol.t) : int =
  match s.Sof.Symbol.kind with
  | Sof.Symbol.Text -> text_base + p.text_off + s.value
  | Sof.Symbol.Data -> data_base + p.data_off + s.value
  | Sof.Symbol.Bss -> bss_base + p.bss_off + s.value
  | Sof.Symbol.Abs -> s.value
  | Sof.Symbol.Undef -> invalid_arg "sym_addr: undefined symbol"

(** Result statistics — the quantities the paper's cost argument is
    about. *)
type stats = {
  fragments : int;
  relocs_applied : int;
  symbols_resolved : int;
  undefined : string list; (* non-empty only with [~allow_undefined] *)
}

(** [link ~layout frags] fully links [frags].

    [entry] names the entry-point symbol (default ["_start"], falling
    back to ["main"]). [externals] are already-positioned images whose
    exported symbols satisfy remaining references (binding a client
    against self-contained shared libraries). With [allow_undefined],
    unresolved references are left as zero words and reported in
    [stats] instead of raising. *)
let tm_links = Telemetry.Counter.make "linker.links"
let tm_relocs = Telemetry.Counter.make "linker.relocs_applied"
let tm_symbols = Telemetry.Counter.make "linker.symbols_resolved"
let tm_combines = Telemetry.Counter.make "linker.combines"

let link ?entry ?(externals : Image.t list = []) ?(allow_undefined = false)
    ~(layout : layout) (frags : Sof.Object_file.t list) : Image.t * stats =
  let span =
    Telemetry.Span.enter "linker.link"
      ~attrs:[ ("fragments", Telemetry.I (List.length frags)) ]
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit span) @@ fun () ->
  let placed, text_size, data_size, bss_size = place_fragments frags in
  let text_base = layout.text_base and data_base = layout.data_base in
  let bss_base = align_up (data_base + data_size) 4 in
  if text_base + text_size > data_base && data_base + data_size + bss_size > text_base
  then raise (Link_error (Layout_overlap "text/data segments"));
  (* global symbol table: exported defs of all fragments *)
  let globals : (string, int * string * Sof.Symbol.binding) Hashtbl.t =
    Hashtbl.create 64
  in
  let resolved = ref 0 in
  let prov = Telemetry.Provenance.is_enabled () in
  List.iter
    (fun p ->
      List.iter
        (fun (s : Sof.Symbol.t) ->
          if Sof.Symbol.is_exported s then (
            let addr = sym_addr ~text_base ~data_base ~bss_base p s in
            let fname = p.frag.Sof.Object_file.name in
            match Hashtbl.find_opt globals s.name with
            | None -> Hashtbl.replace globals s.name (addr, fname, s.binding)
            | Some (_, f1, Sof.Symbol.Global) when s.binding = Sof.Symbol.Global ->
                raise (Link_error (Duplicate (s.name, f1, fname)))
            | Some (_, f1, Sof.Symbol.Weak) when s.binding = Sof.Symbol.Global ->
                if prov then
                  Telemetry.Provenance.record_interpose ~symbol:s.name
                    ~winner:fname ~loser:f1 ~how:"global-over-weak";
                Hashtbl.replace globals s.name (addr, fname, s.binding)
            | Some (_, f1, existing) ->
                (* existing Global beats Weak; first Weak kept *)
                if prov then
                  Telemetry.Provenance.record_interpose ~symbol:s.name
                    ~winner:f1 ~loser:fname
                    ~how:
                      (if existing = Sof.Symbol.Global then "global-over-weak"
                       else "first-weak-kept")))
        p.frag.Sof.Object_file.symbols)
    placed;
  (* journal the winning definitions while the table is fresh *)
  if prov then
    Hashtbl.fold
      (fun name (addr, frag, binding) acc -> (name, addr, frag, binding) :: acc)
      globals []
    |> List.sort compare
    |> List.iter (fun (name, addr, frag, binding) ->
           Telemetry.Provenance.record_bind ~symbol:name ~addr ~frag
             ~via:
               (if binding = Sof.Symbol.Weak then "weak definition"
                else "definition"));
  (* external images: weaker than any fragment definition *)
  let external_syms : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (img : Image.t) ->
      List.iter
        (fun (name, addr) ->
          if not (Hashtbl.mem external_syms name) then
            Hashtbl.replace external_syms name addr)
        img.Image.symtab)
    externals;
  (* combined sections *)
  let text = Bytes.make text_size '\000' in
  let data = Bytes.make data_size '\000' in
  List.iter
    (fun p ->
      Bytes.blit p.frag.Sof.Object_file.text 0 text p.text_off
        (Bytes.length p.frag.Sof.Object_file.text);
      Bytes.blit p.frag.Sof.Object_file.data 0 data p.data_off
        (Bytes.length p.frag.Sof.Object_file.data))
    placed;
  (* resolution: fragment-local defs first (covers locals), then
     globals, then externals *)
  let resolve (p : placed) (name : string) : int option =
    let local =
      List.find_opt
        (fun (s : Sof.Symbol.t) -> s.name = name && Sof.Symbol.is_defined s)
        p.frag.Sof.Object_file.symbols
    in
    match local with
    | Some s -> Some (sym_addr ~text_base ~data_base ~bss_base p s)
    | None -> (
        match Hashtbl.find_opt globals name with
        | Some (addr, _, _) -> Some addr
        | None -> Hashtbl.find_opt external_syms name)
  in
  let relocs_applied = ref 0 in
  let text_relocs = ref 0 and data_relocs = ref 0 in
  let ext_bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let undefined = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (r : Sof.Reloc.t) ->
          match resolve p r.symbol with
          | None ->
              if allow_undefined then undefined := r.symbol :: !undefined
              else ()
              (* collect all before raising *)
          | Some s_addr -> (
              incr relocs_applied;
              incr resolved;
              (match r.target with
              | Sof.Reloc.In_text -> incr text_relocs
              | Sof.Reloc.In_data -> incr data_relocs);
              (* references satisfied by an already-positioned external
                 image bind outside this link: journal them once *)
              if
                prov
                && (not (Hashtbl.mem globals r.symbol))
                && (not (Hashtbl.mem ext_bound r.symbol))
                && Hashtbl.mem external_syms r.symbol
                && not
                     (List.exists
                        (fun (s : Sof.Symbol.t) ->
                          s.name = r.symbol && Sof.Symbol.is_defined s)
                        p.frag.Sof.Object_file.symbols)
              then begin
                Hashtbl.replace ext_bound r.symbol ();
                Telemetry.Provenance.record_bind ~symbol:r.symbol ~addr:s_addr
                  ~frag:"<external image>" ~via:"external"
              end;
              match r.target with
              | Sof.Reloc.In_text ->
                  let site = p.text_off + r.offset in
                  let value =
                    match r.kind with
                    | Sof.Reloc.Abs32 -> s_addr + r.addend
                    | Sof.Reloc.Pcrel32 ->
                        let instr_base = text_base + site - Svm.Isa.imm_offset in
                        s_addr + r.addend - (instr_base + Svm.Isa.width)
                  in
                  Bytes.set_int32_le text site (Int32.of_int value)
              | Sof.Reloc.In_data ->
                  let site = p.data_off + r.offset in
                  let value =
                    match r.kind with
                    | Sof.Reloc.Abs32 -> s_addr + r.addend
                    | Sof.Reloc.Pcrel32 ->
                        s_addr + r.addend - (data_base + site)
                  in
                  Bytes.set_int32_le data site (Int32.of_int value)))
        p.frag.Sof.Object_file.relocs)
    placed;
  (* truly undefined = referenced anywhere, defined nowhere *)
  let missing =
    List.sort_uniq compare
      (List.concat_map
         (fun p ->
           List.filter
             (fun n -> resolve p n = None)
             (Sof.Object_file.undefined p.frag))
         placed)
  in
  if missing <> [] && not allow_undefined then
    raise (Link_error (Undefined missing));
  (* entry point *)
  let entry_name = entry in
  let lookup_global n =
    match Hashtbl.find_opt globals n with Some (a, _, _) -> Some a | None -> None
  in
  let entry_addr =
    match entry_name with
    | Some n -> ( match lookup_global n with Some a -> a | None -> -1)
    | None -> (
        match lookup_global "_start" with
        | Some a -> a
        | None -> ( match lookup_global "main" with Some a -> a | None -> -1))
  in
  let symtab =
    Hashtbl.fold (fun name (addr, _, _) acc -> (name, addr) :: acc) globals []
    |> List.sort compare
  in
  let img_name =
    match frags with [] -> "<empty>" | f :: _ -> f.Sof.Object_file.name
  in
  let img =
    {
      Image.name = img_name;
      segments =
        [
          { Image.seg_name = "text"; vaddr = text_base; bytes = text; writable = false };
          { Image.seg_name = "data"; vaddr = data_base; bytes = data; writable = true };
        ];
      bss_vaddr = bss_base;
      bss_size;
      entry = entry_addr;
      symtab;
      reloc_work = !relocs_applied;
    }
  in
  if prov then begin
    Telemetry.Provenance.record_reloc ~section:"text" ~count:!text_relocs;
    Telemetry.Provenance.record_reloc ~section:"data" ~count:!data_relocs
  end;
  Telemetry.Counter.incr tm_links;
  Telemetry.Counter.incr tm_relocs ~by:!relocs_applied;
  Telemetry.Counter.incr tm_symbols ~by:!resolved;
  Telemetry.Span.add_attr span "relocs_applied" (Telemetry.I !relocs_applied);
  Telemetry.Span.add_attr span "symbols_resolved" (Telemetry.I !resolved);
  ( img,
    {
      fragments = List.length frags;
      relocs_applied = !relocs_applied;
      symbols_resolved = !resolved;
      undefined = missing;
    } )

(** [combine ~name frags] partially links [frags] into one relocatable
    object. Sections are concatenated and symbol values rebased; all
    relocations are kept symbolic. Local symbols are mangled
    per-fragment so same-named locals in different members cannot
    collide, and each fragment's references to its own locals follow the
    mangling. *)
let combine ~name (frags : Sof.Object_file.t list) : Sof.Object_file.t =
  Telemetry.with_span "linker.combine"
    ~attrs:
      [ ("name", Telemetry.S name); ("fragments", Telemetry.I (List.length frags)) ]
  @@ fun () ->
  Telemetry.Counter.incr tm_combines;
  Telemetry.Provenance.record_op ~op:"combine"
    ~detail:(Printf.sprintf "%s (%d fragments)" name (List.length frags));
  let placed, text_size, data_size, bss_size = place_fragments frags in
  let text = Bytes.make text_size '\000' in
  let data = Bytes.make data_size '\000' in
  List.iter
    (fun p ->
      Bytes.blit p.frag.Sof.Object_file.text 0 text p.text_off
        (Bytes.length p.frag.Sof.Object_file.text);
      Bytes.blit p.frag.Sof.Object_file.data 0 data p.data_off
        (Bytes.length p.frag.Sof.Object_file.data))
    placed;
  let symbols = ref [] and relocs = ref [] and ctors = ref [] in
  let undef_seen = Hashtbl.create 16 in
  List.iteri
    (fun i p ->
      let frag = p.frag in
      let mangle n = Printf.sprintf "%s$%d$%s" "L" i n in
      let local_defs = Hashtbl.create 8 in
      List.iter
        (fun (s : Sof.Symbol.t) ->
          if Sof.Symbol.is_defined s && s.binding = Sof.Symbol.Local then
            Hashtbl.replace local_defs s.name ())
        frag.Sof.Object_file.symbols;
      let rebase (s : Sof.Symbol.t) : Sof.Symbol.t option =
        match s.kind with
        | Sof.Symbol.Undef ->
            if Hashtbl.mem undef_seen s.name then None
            else (
              Hashtbl.replace undef_seen s.name ();
              Some s)
        | _ ->
            let value =
              match s.kind with
              | Sof.Symbol.Text -> p.text_off + s.value
              | Sof.Symbol.Data -> p.data_off + s.value
              | Sof.Symbol.Bss -> p.bss_off + s.value
              | Sof.Symbol.Abs -> s.value
              | Sof.Symbol.Undef -> assert false
            in
            let name =
              if s.binding = Sof.Symbol.Local then mangle s.name else s.name
            in
            Some { s with Sof.Symbol.name; value }
      in
      symbols := !symbols @ List.filter_map rebase frag.Sof.Object_file.symbols;
      let rebase_reloc (r : Sof.Reloc.t) : Sof.Reloc.t =
        let offset =
          match r.target with
          | Sof.Reloc.In_text -> p.text_off + r.offset
          | Sof.Reloc.In_data -> p.data_off + r.offset
        in
        let symbol = if Hashtbl.mem local_defs r.symbol then mangle r.symbol else r.symbol in
        { r with Sof.Reloc.offset; symbol }
      in
      relocs := !relocs @ List.map rebase_reloc frag.Sof.Object_file.relocs;
      let rebase_ctor c = if Hashtbl.mem local_defs c then mangle c else c in
      ctors := !ctors @ List.map rebase_ctor frag.Sof.Object_file.ctors)
    placed;
  (* drop undef entries that are now satisfied internally *)
  let defined = Hashtbl.create 32 in
  List.iter
    (fun (s : Sof.Symbol.t) ->
      if Sof.Symbol.is_defined s then Hashtbl.replace defined s.name ())
    !symbols;
  let symbols =
    List.filter
      (fun (s : Sof.Symbol.t) ->
        Sof.Symbol.is_defined s || not (Hashtbl.mem defined s.name))
      !symbols
  in
  Sof.Object_file.make ~name ~data ~bss_size ~relocs:!relocs ~ctors:!ctors ~text symbols
