(** Structured tracing and metrics for the OMOS request path.

    The paper sells OMOS on {e measured} wins — link work avoided, cache
    hits, map-time costs (§3.1, §5) — so the reproduction carries a
    first-class observation layer: hierarchical spans over every request
    phase (blueprint eval → merge/override → placement → relocation →
    map), plus a registry of monotonic counters, gauges, and histograms
    that the server, linker, cache, constraint system, and simulated
    kernel all feed.

    Design points:

    - One global collector. The simulation is single-threaded and a
      process hosts one "world" at a time; a global sink keeps
      instrumentation call sites to a single line.
    - Counters/gauges/histograms are {e always on} (a few word writes).
      Spans are recorded only while {!set_enabled}[ true], so steady-state
      benchmarks pay nothing for the tracing machinery.
    - Span timestamps come from a pluggable clock ({!set_clock});
      {!Server.create} points it at the simulated clock, so exported
      traces are in {e simulated} microseconds — the unit every table in
      the paper uses.
    - Two exporters: line-oriented JSON events ({!Export.events_json})
      and the Chrome [trace_event] format ({!Export.chrome}) loadable in
      about://tracing or Perfetto. *)

(* -- attribute values ----------------------------------------------------- *)

type value = S of string | I of int | F of float | B of bool

type attr = string * value

(* -- global collector state ----------------------------------------------- *)

type span = {
  id : int;
  parent : int;  (** id of the enclosing span, or -1 for a root *)
  depth : int;
  name : string;
  start_us : float;
  mutable end_us : float;  (** nan while the span is open *)
  mutable attrs : attr list;
}

let enabled = ref false
let clock : (unit -> float) ref = ref (fun () -> 0.0)
let next_id = ref 0
let open_stack : span list ref = ref []
let completed : span list ref = ref [] (* reverse completion order *)

let set_enabled b = enabled := b
let is_enabled () = !enabled
let set_clock f = clock := f
let now_us () = !clock ()

(* -- spans ----------------------------------------------------------------- *)

module Span = struct
  type t = span option

  let null : t = None

  let enter ?(attrs = []) (name : string) : t =
    if not !enabled then None
    else begin
      incr next_id;
      let parent, depth =
        match !open_stack with [] -> (-1, 0) | p :: _ -> (p.id, p.depth + 1)
      in
      let s =
        { id = !next_id; parent; depth; name; start_us = now_us ();
          end_us = Float.nan; attrs }
      in
      open_stack := s :: !open_stack;
      Some s
    end

  let add_attr (t : t) (key : string) (v : value) : unit =
    match t with None -> () | Some s -> s.attrs <- s.attrs @ [ (key, v) ]

  (* Exit [s], force-closing any children left open (exception unwind):
     they share [s]'s end timestamp so the tree stays well nested. *)
  let exit (t : t) : unit =
    match t with
    | None -> ()
    | Some s ->
        if Float.is_nan s.end_us then begin
          s.end_us <- now_us ();
          let rec pop = function
            | [] -> []
            | x :: rest ->
                if x == s then rest
                else begin
                  if Float.is_nan x.end_us then x.end_us <- s.end_us;
                  completed := x :: !completed;
                  pop rest
                end
          in
          open_stack := pop !open_stack;
          completed := s :: !completed
        end
end

let with_span ?attrs (name : string) (f : unit -> 'a) : 'a =
  let s = Span.enter ?attrs name in
  Fun.protect ~finally:(fun () -> Span.exit s) f

(** Completed spans, in completion order (children before parents). *)
let spans () : span list = List.rev !completed

(** Completed spans with [name], oldest first. *)
let spans_named (name : string) : span list =
  List.filter (fun s -> s.name = name) (spans ())

(* -- metrics registry ------------------------------------------------------- *)

module Counter = struct
  type t = { c_name : string; mutable count : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  (* Interned: the same name always yields the same counter, so module
     initializers can hold a handle while exporters walk the registry. *)
  let make (name : string) : t =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { c_name = name; count = 0 } in
        Hashtbl.replace registry name c;
        c

  let incr ?(by = 1) (c : t) : unit = c.count <- c.count + by
  let value (c : t) : int = c.count
  let get (name : string) : int = (make name).count
end

module Gauge = struct
  let registry : (string, float) Hashtbl.t = Hashtbl.create 32
  let set (name : string) (v : float) : unit = Hashtbl.replace registry name v
  let get (name : string) : float option = Hashtbl.find_opt registry name
end

module Histogram = struct
  (* Bounded memory: count/sum/min/max only, no raw reservoir — safe to
     feed from per-syscall paths that fire millions of times. *)
  type t = {
    h_name : string;
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make (name : string) : t =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h = { h_name = name; n = 0; sum = 0.0; minv = infinity; maxv = neg_infinity } in
        Hashtbl.replace registry name h;
        h

  let observe (h : t) (v : float) : unit =
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v

  let count (h : t) : int = h.n
  let sum (h : t) : float = h.sum
  let mean (h : t) : float = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
  let min_value (h : t) : float = if h.n = 0 then 0.0 else h.minv
  let max_value (h : t) : float = if h.n = 0 then 0.0 else h.maxv
end

(** Zero every metric in place (interned handles stay valid) and drop
    all recorded spans. The clock and enabled flag are left alone. *)
let reset () : unit =
  Hashtbl.iter (fun _ (c : Counter.t) -> c.Counter.count <- 0) Counter.registry;
  Hashtbl.reset Gauge.registry;
  Hashtbl.iter
    (fun _ (h : Histogram.t) ->
      h.Histogram.n <- 0;
      h.Histogram.sum <- 0.0;
      h.Histogram.minv <- infinity;
      h.Histogram.maxv <- neg_infinity)
    Histogram.registry;
  open_stack := [];
  completed := [];
  next_id := 0

(* -- JSON ------------------------------------------------------------------- *)

(** A deliberately small JSON reader/writer: enough to emit the two
    export formats with correct escaping and to parse them back for
    validation (tests, [ofe trace]) without an external dependency. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  (* -- writing -- *)

  let escape (s : string) : string =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let number (f : float) : string =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f

  let rec to_string (j : t) : string =
    match j with
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Num f -> number f
    | Str s -> "\"" ^ escape s ^ "\""
    | Arr xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
    | Obj kvs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
        ^ "}"

  (* -- parsing -- *)

  let parse (src : string) : t =
    let n = String.length src in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some src.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub src !pos (String.length word) = word
      then begin pos := !pos + String.length word; v end
      else fail ("bad literal, wanted " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = src.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = src.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub src !pos 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              (* keep it simple: only BMP code points below 0x80 decode
                 to themselves; others round-trip as '?' *)
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?')
          | _ -> fail "bad escape");
          loop ()
        end
        else begin Buffer.add_char b c; loop () end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub src start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin advance (); Arr [] end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); items (v :: acc)
              | Some ']' -> advance (); List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin advance (); Obj [] end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ((k, v) :: acc)
              | Some '}' -> advance (); List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member (key : string) (j : t) : t option =
    match j with Obj kvs -> List.assoc_opt key kvs | _ -> None
end

let json_of_value : value -> Json.t = function
  | S s -> Json.Str s
  | I i -> Json.Num (float_of_int i)
  | F f -> Json.Num f
  | B b -> Json.Bool b

(* -- exporters -------------------------------------------------------------- *)

module Export = struct
  let sorted_counters () =
    Hashtbl.fold (fun k (c : Counter.t) acc -> (k, c.Counter.count) :: acc)
      Counter.registry []
    |> List.sort compare

  let sorted_gauges () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) Gauge.registry []
    |> List.sort compare

  let sorted_histograms () =
    Hashtbl.fold (fun k (h : Histogram.t) acc -> (k, h) :: acc) Histogram.registry []
    |> List.sort compare

  let span_obj (s : span) : Json.t =
    Json.Obj
      ([ ("type", Json.Str "span");
         ("id", Json.Num (float_of_int s.id));
         ("parent", if s.parent < 0 then Json.Null else Json.Num (float_of_int s.parent));
         ("depth", Json.Num (float_of_int s.depth));
         ("name", Json.Str s.name);
         ("ts", Json.Num s.start_us);
         ("dur", Json.Num (s.end_us -. s.start_us)) ]
      @
      if s.attrs = [] then []
      else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) s.attrs)) ])

  (** Line-oriented JSON: one event object per line — spans in
      completion order, then counters, gauges, and histograms. *)
  let events_json () : string =
    let b = Buffer.create 4096 in
    let line (j : Json.t) =
      Buffer.add_string b (Json.to_string j);
      Buffer.add_char b '\n'
    in
    List.iter (fun s -> line (span_obj s)) (spans ());
    List.iter
      (fun (k, v) ->
        line (Json.Obj [ ("type", Json.Str "counter"); ("name", Json.Str k);
                         ("value", Json.Num (float_of_int v)) ]))
      (sorted_counters ());
    List.iter
      (fun (k, v) ->
        line (Json.Obj [ ("type", Json.Str "gauge"); ("name", Json.Str k);
                         ("value", Json.Num v) ]))
      (sorted_gauges ());
    List.iter
      (fun (k, (h : Histogram.t)) ->
        line
          (Json.Obj
             [ ("type", Json.Str "histogram"); ("name", Json.Str k);
               ("count", Json.Num (float_of_int h.Histogram.n));
               ("sum", Json.Num h.Histogram.sum);
               ("min", Json.Num (Histogram.min_value h));
               ("max", Json.Num (Histogram.max_value h)) ]))
      (sorted_histograms ());
    Buffer.contents b

  (** Chrome [trace_event] JSON (about://tracing, Perfetto): complete
      ("X") events for spans, counter ("C") samples at the trace end,
      and process metadata. Timestamps are the collector clock's
      microseconds — simulated time when the server installed the
      simulated clock. *)
  let chrome () : string =
    let all = spans () in
    let by_start =
      List.sort
        (fun a b ->
          match compare a.start_us b.start_us with 0 -> compare a.id b.id | c -> c)
        all
    in
    let end_ts =
      List.fold_left (fun acc s -> Float.max acc s.end_us) 0.0 all
    in
    let meta =
      Json.Obj
        [ ("ph", Json.Str "M"); ("pid", Json.Num 1.0); ("tid", Json.Num 1.0);
          ("name", Json.Str "process_name");
          ("args", Json.Obj [ ("name", Json.Str "omos") ]) ]
    in
    let span_event (s : span) =
      Json.Obj
        [ ("ph", Json.Str "X"); ("pid", Json.Num 1.0); ("tid", Json.Num 1.0);
          ("cat", Json.Str "omos");
          ("name", Json.Str s.name);
          ("ts", Json.Num s.start_us);
          ("dur", Json.Num (s.end_us -. s.start_us));
          ("args",
           Json.Obj
             ([ ("id", Json.Num (float_of_int s.id));
                ("parent", Json.Num (float_of_int s.parent)) ]
             @ List.map (fun (k, v) -> (k, json_of_value v)) s.attrs)) ]
    in
    let counter_event (k, v) =
      Json.Obj
        [ ("ph", Json.Str "C"); ("pid", Json.Num 1.0); ("tid", Json.Num 1.0);
          ("name", Json.Str k); ("ts", Json.Num end_ts);
          ("args", Json.Obj [ ("value", Json.Num (float_of_int v)) ]) ]
    in
    Json.to_string
      (Json.Obj
         [ ("traceEvents",
            Json.Arr
              ((meta :: List.map span_event by_start)
              @ List.map counter_event (sorted_counters ())));
           ("displayTimeUnit", Json.Str "ms") ])

  (** The full metrics registry as one JSON object with a stable schema
      — what the benchmark harness writes as BENCH_*.json. *)
  let metrics_json () : string =
    Json.to_string
      (Json.Obj
         [ ("schema", Json.Str "omos.metrics/1");
           ("counters",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Num (float_of_int v)))
                 (sorted_counters ())));
           ("gauges",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (sorted_gauges ())));
           ("histograms",
            Json.Obj
              (List.map
                 (fun (k, (h : Histogram.t)) ->
                   ( k,
                     Json.Obj
                       [ ("count", Json.Num (float_of_int h.Histogram.n));
                         ("sum", Json.Num h.Histogram.sum);
                         ("mean", Json.Num (Histogram.mean h));
                         ("min", Json.Num (Histogram.min_value h));
                         ("max", Json.Num (Histogram.max_value h)) ] ))
                 (sorted_histograms ()))) ])
end
