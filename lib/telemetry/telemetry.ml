(** Structured tracing and metrics for the OMOS request path.

    The paper sells OMOS on {e measured} wins — link work avoided, cache
    hits, map-time costs (§3.1, §5) — so the reproduction carries a
    first-class observation layer: hierarchical spans over every request
    phase (blueprint eval → merge/override → placement → relocation →
    map), plus a registry of monotonic counters, gauges, and histograms
    that the server, linker, cache, constraint system, and simulated
    kernel all feed.

    Design points:

    - One global collector. The simulation is single-threaded and a
      process hosts one "world" at a time; a global sink keeps
      instrumentation call sites to a single line.
    - Counters/gauges/histograms are {e always on} (a few word writes).
      Spans are recorded only while {!set_enabled}[ true], so steady-state
      benchmarks pay nothing for the tracing machinery.
    - Span timestamps come from a pluggable clock ({!set_clock});
      {!Server.create} points it at the simulated clock, so exported
      traces are in {e simulated} microseconds — the unit every table in
      the paper uses.
    - Two exporters: line-oriented JSON events ({!Export.events_json})
      and the Chrome [trace_event] format ({!Export.chrome}) loadable in
      about://tracing or Perfetto. *)

(* -- attribute values ----------------------------------------------------- *)

type value = S of string | I of int | F of float | B of bool

type attr = string * value

(* -- global collector state ----------------------------------------------- *)

type span = {
  id : int;
  parent : int;  (** id of the enclosing span, or -1 for a root *)
  depth : int;
  name : string;
  start_us : float;
  mutable end_us : float;  (** nan while the span is open *)
  mutable attrs : attr list;
}

let enabled = ref false
let clock : (unit -> float) ref = ref (fun () -> 0.0)
let next_id = ref 0
let open_stack : span list ref = ref []
let completed : span list ref = ref [] (* reverse completion order *)

let set_enabled b = enabled := b
let is_enabled () = !enabled

let set_clock f =
  clock := f;
  (* flight-recorder timestamps follow the same time source *)
  Flight.set_clock f

let now_us () = !clock ()

(* -- spans ----------------------------------------------------------------- *)

module Span = struct
  type t = span option

  let null : t = None

  let enter ?(attrs = []) (name : string) : t =
    if not !enabled then None
    else begin
      incr next_id;
      let parent, depth =
        match !open_stack with [] -> (-1, 0) | p :: _ -> (p.id, p.depth + 1)
      in
      (* spans opened inside a request carry its attribution *)
      let attrs =
        let c = Flight.current_client () and r = Flight.current_request () in
        if r < 0 then attrs
        else attrs @ [ ("client", I c); ("request", I r) ]
      in
      let s =
        { id = !next_id; parent; depth; name; start_us = now_us ();
          end_us = Float.nan; attrs }
      in
      open_stack := s :: !open_stack;
      Flight.emit Flight.Span_enter name "" (float_of_int s.id);
      Some s
    end

  let add_attr (t : t) (key : string) (v : value) : unit =
    match t with None -> () | Some s -> s.attrs <- s.attrs @ [ (key, v) ]

  (* Exit [s], force-closing any children left open (exception unwind):
     they share [s]'s end timestamp so the tree stays well nested. *)
  let exit (t : t) : unit =
    match t with
    | None -> ()
    | Some s ->
        if Float.is_nan s.end_us then begin
          s.end_us <- now_us ();
          let rec pop = function
            | [] -> []
            | x :: rest ->
                if x == s then rest
                else begin
                  if Float.is_nan x.end_us then x.end_us <- s.end_us;
                  completed := x :: !completed;
                  pop rest
                end
          in
          open_stack := pop !open_stack;
          completed := s :: !completed;
          Flight.emit Flight.Span_exit s.name "" (float_of_int s.id)
        end
end

let with_span ?attrs (name : string) (f : unit -> 'a) : 'a =
  let s = Span.enter ?attrs name in
  Fun.protect ~finally:(fun () -> Span.exit s) f

(** Completed spans, in completion order (children before parents). *)
let spans () : span list = List.rev !completed

(** Completed spans with [name], oldest first. *)
let spans_named (name : string) : span list =
  List.filter (fun s -> s.name = name) (spans ())

(* -- simulated-cost profiler ------------------------------------------------ *)

(** Attribution of {!Simos.Cost} charges to the live span stack. Every
    [Simos.Clock.charge_*] call forwards here; while enabled, the charge
    is credited to the current span {e path} (root-to-leaf span names
    joined with [";"] — exactly the folded-stack key flamegraph tools
    consume). Charges arriving outside any span accumulate under
    ["(unattributed)"], so the folded output always sums to the total
    charged. *)
module Profile = struct
  type kind = User | System | Io

  type cell = {
    mutable p_user : float;
    mutable p_system : float;
    mutable p_io : float;
  }

  let prof_enabled = ref false
  let table : (string, cell) Hashtbl.t = Hashtbl.create 32

  let set_enabled b = prof_enabled := b
  let is_enabled () = !prof_enabled
  let clear () = Hashtbl.reset table

  let unattributed = "(unattributed)"

  (* [open_stack] is newest-first; fold right-to-left for root-first. *)
  let current_path () : string =
    match !open_stack with
    | [] -> unattributed
    | st -> String.concat ";" (List.rev_map (fun s -> s.name) st)

  let charge (k : kind) (us : float) : unit =
    if !prof_enabled && us <> 0.0 then begin
      let path = current_path () in
      let c =
        match Hashtbl.find_opt table path with
        | Some c -> c
        | None ->
            let c = { p_user = 0.0; p_system = 0.0; p_io = 0.0 } in
            Hashtbl.replace table path c;
            c
      in
      match k with
      | User -> c.p_user <- c.p_user +. us
      | System -> c.p_system <- c.p_system +. us
      | Io -> c.p_io <- c.p_io +. us
    end

  let cell_total (c : cell) : float = c.p_user +. c.p_system +. c.p_io

  (** (path, user, system, io) rows, sorted by path. *)
  let rows () : (string * float * float * float) list =
    Hashtbl.fold (fun p c acc -> (p, c.p_user, c.p_system, c.p_io) :: acc) table []
    |> List.sort compare

  (** Folded-stack lines: (path, total us), sorted by path. *)
  let folded () : (string * float) list =
    Hashtbl.fold (fun p c acc -> (p, cell_total c) :: acc) table []
    |> List.sort compare

  let total () : float =
    Hashtbl.fold (fun _ c acc -> acc +. cell_total c) table 0.0

  (** Per-operator totals: cost keyed by the innermost span name of each
      path, sorted by descending cost then name. *)
  let by_leaf () : (string * float) list =
    let leaves : (string, float) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun path c ->
        let leaf =
          match String.rindex_opt path ';' with
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
          | None -> path
        in
        let prev = Option.value (Hashtbl.find_opt leaves leaf) ~default:0.0 in
        Hashtbl.replace leaves leaf (prev +. cell_total c))
      table;
    Hashtbl.fold (fun l v acc -> (l, v) :: acc) leaves []
    |> List.sort (fun (l1, v1) (l2, v2) ->
           match compare v2 v1 with 0 -> compare l1 l2 | c -> c)

  (** Cost charged while a span deeper than the root was open — i.e.
      attributed to a specific request phase rather than the request as
      a whole (paths with at least [depth] segments). *)
  let attributed_at_depth (depth : int) : float =
    Hashtbl.fold
      (fun path c acc ->
        let segs =
          List.length (String.split_on_char ';' path)
        in
        if path <> unattributed && segs >= depth then acc +. cell_total c
        else acc)
      table 0.0
end

(* -- metrics registry ------------------------------------------------------- *)

module Counter = struct
  type t = { c_name : string; mutable count : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  (* Interned: the same name always yields the same counter, so module
     initializers can hold a handle while exporters walk the registry. *)
  let make (name : string) : t =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { c_name = name; count = 0 } in
        Hashtbl.replace registry name c;
        c

  let incr ?(by = 1) (c : t) : unit =
    c.count <- c.count + by;
    Flight.emit Flight.Count c.c_name "" (float_of_int by)

  let value (c : t) : int = c.count
  let get (name : string) : int = (make name).count
end

module Gauge = struct
  let registry : (string, float) Hashtbl.t = Hashtbl.create 32

  let set (name : string) (v : float) : unit =
    Hashtbl.replace registry name v;
    Flight.emit Flight.Gauge_set name "" v

  let get (name : string) : float option = Hashtbl.find_opt registry name
end

module Histogram = struct
  (* Bounded memory: count/sum/min/max plus a fixed-size sample
     reservoir for percentiles — safe to feed from per-syscall paths
     that fire millions of times. Reservoir replacement uses a
     per-histogram xorshift stream seeded from the name, so the same
     observation sequence always keeps the same samples (the simulated
     world is deterministic and the exports must be too). *)
  let reservoir_cap = 512

  type t = {
    h_name : string;
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
    samples : float array; (* valid in [0, filled) *)
    mutable filled : int;
    seed : int;
    mutable rng : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make (name : string) : t =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let seed = (Hashtbl.hash name land 0xFFFFFF) lor 1 in
        let h =
          { h_name = name; n = 0; sum = 0.0; minv = infinity; maxv = neg_infinity;
            samples = Array.make reservoir_cap 0.0; filled = 0; seed; rng = seed }
        in
        Hashtbl.replace registry name h;
        h

  let observe (h : t) (v : float) : unit =
    Flight.emit Flight.Observe h.h_name "" v;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v;
    if h.filled < reservoir_cap then begin
      h.samples.(h.filled) <- v;
      h.filled <- h.filled + 1
    end
    else begin
      (* classic reservoir sampling: keep with probability cap/n *)
      let x = h.rng in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      h.rng <- (x land max_int) lor 1;
      let slot = h.rng mod h.n in
      if slot < reservoir_cap then h.samples.(slot) <- v
    end

  let count (h : t) : int = h.n
  let sum (h : t) : float = h.sum
  let mean (h : t) : float = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
  let min_value (h : t) : float = if h.n = 0 then 0.0 else h.minv
  let max_value (h : t) : float = if h.n = 0 then 0.0 else h.maxv

  (** Nearest-rank percentile over the reservoir ([q] in [0,100]);
      exact while fewer than [reservoir_cap] observations arrived. *)
  let percentile (h : t) (q : float) : float =
    if h.filled = 0 then 0.0
    else begin
      let a = Array.sub h.samples 0 h.filled in
      Array.sort compare a;
      let rank = int_of_float (Float.ceil (q /. 100.0 *. float_of_int h.filled)) in
      a.(max 0 (min (h.filled - 1) (rank - 1)))
    end
end

(* Count flight-recorder dumps, labeled by cause: flight.ml sits below
   the metrics registry in the module graph, so it reports each dump
   through this hook instead of incrementing counters itself. The cause
   label is the first word of the dump reason ("fault", "overload",
   "ofe", ...). *)
let () =
  Flight.set_on_dump (fun reason ->
      let cause =
        match String.index_opt reason ' ' with
        | Some i -> String.sub reason 0 i
        | None -> reason
      in
      Counter.incr (Counter.make "flight.dumps");
      if cause <> "" then Counter.incr (Counter.make ("flight.dumps." ^ cause)))

(* -- continuous hotness profiling -------------------------------------------- *)

(** The hotness store: every {!Monitor} trace event flowing through the
    server's monitor specializer is aggregated here, keyed by the
    monitored meta path (or blueprint digest), across requests — the
    always-on sensing layer of the paper's §4.1 reordering loop.

    Events live in a deterministic rolling window ({!window_cap} most
    recent calls); windowed statistics — per-key call counts, first-call
    order, caller→callee transition pairs — are derived by replaying the
    window, so equal event sequences always serialize byte-identically.
    A cumulative per-key table (since the last reset) additionally
    tracks the identity of each key's hottest function; every change of
    identity is "churn" ([hotness.top_changes]), an input to
    {!Health}. *)
module Hotness = struct
  let window_cap = 4096

  (* the rolling window: parallel arrays of (key, function) call events *)
  let ev_key : string array = Array.make window_cap ""
  let ev_fn : string array = Array.make window_cap ""
  let total = ref 0

  let events = Counter.make "hotness.events"
  let top_changes = Counter.make "hotness.top_changes"

  (* cumulative since reset: per-key counts plus the current hottest
     function, kept incrementally so churn detection is O(1) per call *)
  type krec = {
    counts : (string, int) Hashtbl.t;
    mutable top_fn : string;
    mutable top_n : int;
  }

  let cum : (string, krec) Hashtbl.t = Hashtbl.create 8

  (* latest layout audit per key: (pages_actual, pages_optimal,
     pages_reordered) — fed by the locality auditor in lib/core *)
  let audits : (string, int * int * int) Hashtbl.t = Hashtbl.create 8

  let total_events () : int = !total

  (* The current hot set, for flight-ring notes: "key=fn:count" pairs,
     sorted by key, capped so ring entries stay bounded. *)
  let hot_set_label () : string =
    let rows =
      Hashtbl.fold (fun k r acc -> (k, r.top_fn, r.top_n) :: acc) cum []
      |> List.sort compare
    in
    let rows = List.filteri (fun i _ -> i < 6) rows in
    String.concat ","
      (List.map (fun (k, f, n) -> Printf.sprintf "%s=%s:%d" k f n) rows)

  (** Record one monitored function entry under [key]. *)
  let record_call ~(key : string) (fn : string) : unit =
    let i = !total mod window_cap in
    ev_key.(i) <- key;
    ev_fn.(i) <- fn;
    incr total;
    Counter.incr events;
    let r =
      match Hashtbl.find_opt cum key with
      | Some r -> r
      | None ->
          let r = { counts = Hashtbl.create 16; top_fn = ""; top_n = 0 } in
          Hashtbl.replace cum key r;
          r
    in
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt r.counts fn) in
    Hashtbl.replace r.counts fn n;
    if fn = r.top_fn then r.top_n <- n
    else if n > r.top_n then begin
      if r.top_fn <> "" then begin
        Counter.incr top_changes;
        Flight.emit Flight.Note "hotness.top" (key ^ " -> " ^ fn)
          (float_of_int n)
      end;
      r.top_fn <- fn;
      r.top_n <- n
    end;
    (* periodic hot-set snapshot, so any anomaly dump carries it *)
    if !total mod 256 = 0 then
      Flight.emit Flight.Note "hotness.hotset" (hot_set_label ())
        (float_of_int !total)

  (* window replay, oldest first *)
  let window_events () : (string * string) list =
    let n = min !total window_cap in
    List.init n (fun k ->
        let i = (!total - n + k) mod window_cap in
        (ev_key.(i), ev_fn.(i)))

  let keys () : string list =
    List.sort_uniq compare (List.map fst (window_events ()))

  type stat = {
    hs_key : string;
    hs_calls : int;  (** call events for this key in the window *)
    hs_functions : (string * int) list;
        (** per-function call counts, hottest first (name breaks ties) *)
    hs_first_call : string list;  (** first-call order within the window *)
    hs_transitions : ((string * string) * int) list;
        (** consecutive-call (caller → callee) pairs, hottest first *)
  }

  let stats () : stat list =
    let evs = window_events () in
    List.map
      (fun key ->
        let fns = List.filter_map (fun (k, f) -> if k = key then Some f else None) evs in
        let counts = Hashtbl.create 16 in
        let seen = Hashtbl.create 16 in
        let first = ref [] in
        let trans = Hashtbl.create 16 in
        let prev = ref None in
        List.iter
          (fun f ->
            Hashtbl.replace counts f
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts f));
            if not (Hashtbl.mem seen f) then begin
              Hashtbl.replace seen f ();
              first := f :: !first
            end;
            (match !prev with
            | Some p ->
                Hashtbl.replace trans (p, f)
                  (1 + Option.value ~default:0 (Hashtbl.find_opt trans (p, f)))
            | None -> ());
            prev := Some f)
          fns;
        let by_count_desc c1 c2 n1 n2 =
          match compare n2 n1 with 0 -> compare c1 c2 | c -> c
        in
        {
          hs_key = key;
          hs_calls = List.length fns;
          hs_functions =
            Hashtbl.fold (fun f n acc -> (f, n) :: acc) counts []
            |> List.sort (fun (f1, n1) (f2, n2) -> by_count_desc f1 f2 n1 n2);
          hs_first_call = List.rev !first;
          hs_transitions =
            Hashtbl.fold (fun p n acc -> (p, n) :: acc) trans []
            |> List.sort (fun (p1, n1) (p2, n2) -> by_count_desc p1 p2 n1 n2);
        })
      (keys ())

  let stat_for (key : string) : stat option =
    List.find_opt (fun s -> s.hs_key = key) (stats ())

  (** The hottest (key, function, windowed calls) across all keys, if
      any events were recorded. *)
  let hottest () : (string * string * int) option =
    List.fold_left
      (fun acc s ->
        match (s.hs_functions, acc) with
        | [], _ -> acc
        | (f, n) :: _, None -> Some (s.hs_key, f, n)
        | (f, n) :: _, Some (_, _, bn) when n > bn -> Some (s.hs_key, f, n)
        | _ -> acc)
      None (stats ())

  (** Record the latest layout-locality audit for [key] (called by the
      auditor in lib/core): distinct text pages the traced working set
      touches under the actual fragment order, under the optimal packed
      layout, and after {!Reorder}-style reordering. Sets the
      [hotness.headroom_pages.<key>] gauge and notes the result in the
      flight ring. *)
  let note_audit ~(key : string) ~(pages_actual : int) ~(pages_optimal : int)
      ~(pages_reordered : int) : unit =
    Hashtbl.replace audits key (pages_actual, pages_optimal, pages_reordered);
    Gauge.set ("hotness.headroom_pages." ^ key)
      (float_of_int (pages_actual - pages_optimal));
    Flight.emit Flight.Note "hotness.headroom" key
      (float_of_int (pages_actual - pages_optimal))

  let audit_pages (key : string) : (int * int * int) option =
    Hashtbl.find_opt audits key

  (** The largest audited headroom (actual - optimal pages) across all
      keys; 0 when nothing was audited. *)
  let max_headroom () : int =
    Hashtbl.fold (fun _ (a, o, _) acc -> max acc (a - o)) audits 0

  let reset_state () : unit =
    total := 0;
    Hashtbl.reset cum;
    Hashtbl.reset audits
end

(* -- run metadata ------------------------------------------------------------ *)

(** Reproducibility metadata carried as the ["meta"] object of every
    [omos.metrics/1] snapshot: the server records its scheduler seed,
    batch-placement knob, and queue limit here (at creation and on every
    knob change), so an exported run can be re-created from the snapshot
    alone. Survives {!reset} — this is configuration, not
    measurement. *)
module Runinfo = struct
  let registry : (string, value) Hashtbl.t = Hashtbl.create 8

  let set (key : string) (v : value) : unit = Hashtbl.replace registry key v
  let get (key : string) : value option = Hashtbl.find_opt registry key

  let sorted () : (string * value) list =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []
    |> List.sort compare
end

(* -- request attribution ----------------------------------------------------- *)

(** Request-scoped attribution. The server is persistent and serves
    many clients (paper §2, §4.1): every entry point — instantiate,
    exec, dynload, evict — opens a request here, which assigns a
    monotonic request id, inherits (or sets) the client id, and pushes
    the pair into the flight-recorder context so every span, counter
    increment, transition, and fault recorded underneath carries
    [(client, request)]. Requests nest (a specializer may instantiate a
    library mid-request); ids stay monotonic across the nesting. *)
module Request = struct
  type ctx = { client : int; id : int; kind : string }

  let next = ref 0
  let ambient_client = ref 0
  let stack : ctx list ref = ref []

  (** Set the ambient client id inherited by requests opened outside
      any enclosing request (a driver sets this before each simulated
      client's operation). *)
  let set_client (c : int) : unit = ambient_client := c

  let current_client () = match !stack with x :: _ -> x.client | [] -> -1

  (** The client id a request opened right now would inherit: the
      innermost open request's, else the ambient one. *)
  let effective_client () =
    match !stack with x :: _ -> x.client | [] -> !ambient_client
  let current_request () = match !stack with x :: _ -> x.id | [] -> -1
  let active () = !stack <> []

  (** The most recently assigned request id, [-1] if none yet. *)
  let last_id () = !next - 1

  let sync_flight () =
    match !stack with
    | x :: _ -> Flight.set_context ~client:x.client ~request:x.id
    | [] -> Flight.clear_context ()

  let begin_request ?client (kind : string) : int =
    let c =
      match client with
      | Some c -> c
      | None -> (
          match !stack with x :: _ -> x.client | [] -> !ambient_client)
    in
    let id = !next in
    incr next;
    stack := { client = c; id; kind } :: !stack;
    sync_flight ();
    Flight.emit Flight.Request_begin kind "" (float_of_int id);
    id

  let end_request () : unit =
    match !stack with
    | [] -> ()
    | x :: rest ->
        Flight.emit Flight.Request_end x.kind "" (float_of_int x.id);
        stack := rest;
        sync_flight ()

  (** Run [f] inside a fresh request of [kind] (ends on exceptions
      too). *)
  let with_request ?client (kind : string) (f : unit -> 'a) : 'a =
    ignore (begin_request ?client kind);
    Fun.protect ~finally:end_request f

  (* -- detached requests (the staged pipeline) --

     A pipeline request is opened once at submission, then repeatedly
     resumed/suspended as its stages run interleaved with other
     requests', and closed at completion — the id is assigned at
     submission and survives across the stage boundaries. *)

  let pop () =
    (match !stack with _ :: rest -> stack := rest | [] -> ());
    sync_flight ()

  (** Assign a request id and emit [Request_begin] without leaving the
      request on the context stack. Returns the id (pair it with
      {!resume}/{!suspend} around each stage and {!end_detached} at
      completion). *)
  let begin_detached ?client (kind : string) : int =
    let id = begin_request ?client kind in
    (* leave the stack as we found it; the flight event above carried
       the right context *)
    (match !stack with _ :: rest -> stack := rest | [] -> ());
    sync_flight ();
    id

  (** Push an already-assigned request back onto the context stack (no
      new id, no begin event) — everything recorded until the matching
      {!suspend} carries [(client, id)]. *)
  let resume ~(client : int) ~(id : int) (kind : string) : unit =
    stack := { client; id; kind } :: !stack;
    sync_flight ()

  (** Pop the innermost context without emitting [Request_end]. *)
  let suspend () : unit = pop ()

  (** Emit [Request_end] for a detached request. *)
  let end_detached ~(client : int) ~(id : int) (kind : string) : unit =
    resume ~client ~id kind;
    Flight.emit Flight.Request_end kind "" (float_of_int id);
    pop ()

  let reset_state () =
    next := 0;
    ambient_client := 0;
    stack := [];
    Flight.clear_context ()
end

(* -- rolling health --------------------------------------------------------- *)

(** Rolling-window health over the instantiate request stream: cache
    hit ratio, cost percentiles, and per-request conflict and
    invariant-violation rates — the quantities [ofe top] tabulates and
    [ofe health --slo] gates on. {!record} is called by the server once
    per instantiate; conflict/violation counters are sampled at record
    time so window rates need no extra plumbing. *)
module Health = struct
  let window_cap = 256

  let costs = Array.make window_cap 0.0
  let hits = Array.make window_cap (-1) (* 1 hit, 0 miss, -1 unknown *)
  let conflicts_at = Array.make window_cap 0
  let violations_at = Array.make window_cap 0
  let topchg_at = Array.make window_cap 0 (* hotness top-function churn *)
  let queues = Array.make window_cap 0.0 (* pipeline depth at completion *)
  let waits = Array.make window_cap 0.0 (* wait share of each request *)
  let total = ref 0

  let record ?hit ?(queue_depth = 0) ?(wait_frac = 0.0) ~(cost_us : float) () :
      unit =
    let i = !total mod window_cap in
    costs.(i) <- cost_us;
    hits.(i) <- (match hit with Some true -> 1 | Some false -> 0 | None -> -1);
    conflicts_at.(i) <- Counter.get "server.arena_conflicts";
    violations_at.(i) <- Counter.get "residency.invariant_violations";
    topchg_at.(i) <- Counter.get "hotness.top_changes";
    queues.(i) <- float_of_int queue_depth;
    waits.(i) <- wait_frac;
    incr total

  type snapshot = {
    requests : int;  (** requests recorded since the last reset *)
    window : int;  (** samples in the rolling window *)
    hit_ratio : float;  (** over window samples with hit/miss info *)
    p50_us : float;
    p95_us : float;
    p99_us : float;
    mean_us : float;
    max_us : float;
    conflict_rate : float;  (** arena conflicts per windowed request *)
    violation_rate : float;  (** invariant violations per windowed request *)
    max_queue_depth : float;  (** deepest pipeline backlog in the window *)
    headroom_pages : float;
        (** largest audited locality headroom (actual - optimal pages)
            across resident images, from {!Hotness} *)
    hot_churn : float;  (** hot-function identity changes per windowed request *)
    hot_fn : string;  (** hottest monitored function ("-" when none) *)
    wait_frac : float;
        (** mean share of request latency spent waiting (queue, batch
            park, coalesce) rather than working, over the window *)
    wait_frac_p95 : float;  (** p95 of the per-request wait share *)
  }

  let percentile (sorted : float array) (q : float) : float =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let rank = int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))

  let snapshot () : snapshot =
    (* hotness reads are live, not sampled: headroom and the hot
       function are identities, not rates, so the latest value is the
       right answer even for an empty cost window *)
    let headroom_pages = float_of_int (Hotness.max_headroom ()) in
    let hot_fn =
      match Hotness.hottest () with Some (_, f, _) -> f | None -> "-"
    in
    let n = min !total window_cap in
    if n = 0 then
      { requests = 0; window = 0; hit_ratio = 1.0; p50_us = 0.0; p95_us = 0.0;
        p99_us = 0.0; mean_us = 0.0; max_us = 0.0; conflict_rate = 0.0;
        violation_rate = 0.0; max_queue_depth = 0.0; headroom_pages;
        hot_churn = 0.0; hot_fn; wait_frac = 0.0; wait_frac_p95 = 0.0 }
    else begin
      let idx k = (!total - n + k) mod window_cap in
      let w = Array.init n (fun k -> costs.(idx k)) in
      let sorted = Array.copy w in
      Array.sort compare sorted;
      let sum = Array.fold_left ( +. ) 0.0 w in
      let hs = List.init n (fun k -> hits.(idx k)) in
      let known = List.filter (fun h -> h >= 0) hs in
      let hit_ratio =
        match known with
        | [] -> 1.0
        | ks ->
            float_of_int (List.length (List.filter (fun h -> h = 1) ks))
            /. float_of_int (List.length ks)
      in
      let delta a = float_of_int (a (idx (n - 1)) - a (idx 0)) in
      let ws = Array.init n (fun k -> waits.(idx k)) in
      let wsorted = Array.copy ws in
      Array.sort compare wsorted;
      {
        requests = !total;
        window = n;
        hit_ratio;
        p50_us = percentile sorted 50.0;
        p95_us = percentile sorted 95.0;
        p99_us = percentile sorted 99.0;
        mean_us = sum /. float_of_int n;
        max_us = sorted.(n - 1);
        conflict_rate = delta (Array.get conflicts_at) /. float_of_int n;
        violation_rate = delta (Array.get violations_at) /. float_of_int n;
        max_queue_depth =
          Array.fold_left max 0.0 (Array.init n (fun k -> queues.(idx k)));
        headroom_pages;
        hot_churn = delta (Array.get topchg_at) /. float_of_int n;
        hot_fn;
        wait_frac = Array.fold_left ( +. ) 0.0 ws /. float_of_int n;
        wait_frac_p95 = percentile wsorted 95.0;
      }
    end

  (** An SLO spec: every bound optional, violated bounds reported by
      {!check}. *)
  type slo = {
    hit_ratio_min : float option;
    p95_us_max : float option;
    p99_us_max : float option;
    conflict_rate_max : float option;
    violation_rate_max : float option;
    queue_depth_max : float option;
    headroom_pages_max : float option;
    hot_churn_max : float option;
    wait_frac_max : float option;
    wait_frac_p95_max : float option;
  }

  let empty_slo =
    { hit_ratio_min = None; p95_us_max = None; p99_us_max = None;
      conflict_rate_max = None; violation_rate_max = None;
      queue_depth_max = None; headroom_pages_max = None; hot_churn_max = None;
      wait_frac_max = None; wait_frac_p95_max = None }

  exception Slo_error of string

  (** Parse the line-oriented SLO format: one [key value] pair per
      line, [#] comments and blank lines ignored. Keys: [hit_ratio_min]
      [p95_us_max] [p99_us_max] [conflict_rate_max] [violation_rate_max]
      [queue_depth_max] [headroom_pages_max] [hot_churn_max]
      [wait_frac_max] [wait_frac_p95_max]. *)
  let parse_slo (src : string) : slo =
    let strip s = String.trim s in
    List.fold_left
      (fun acc line ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          List.filter (fun w -> w <> "")
            (String.split_on_char ' ' (strip line))
        with
        | [] -> acc
        | [ key; v ] -> (
            let f =
              match float_of_string_opt v with
              | Some f -> f
              | None -> raise (Slo_error ("bad SLO value: " ^ line))
            in
            match key with
            | "hit_ratio_min" -> { acc with hit_ratio_min = Some f }
            | "p95_us_max" -> { acc with p95_us_max = Some f }
            | "p99_us_max" -> { acc with p99_us_max = Some f }
            | "conflict_rate_max" -> { acc with conflict_rate_max = Some f }
            | "violation_rate_max" -> { acc with violation_rate_max = Some f }
            | "queue_depth_max" -> { acc with queue_depth_max = Some f }
            | "headroom_pages_max" -> { acc with headroom_pages_max = Some f }
            | "hot_churn_max" -> { acc with hot_churn_max = Some f }
            | "wait_frac_max" -> { acc with wait_frac_max = Some f }
            | "wait_frac_p95_max" -> { acc with wait_frac_p95_max = Some f }
            | k -> raise (Slo_error ("unknown SLO key: " ^ k)))
        | _ -> raise (Slo_error ("bad SLO line: " ^ line)))
      empty_slo
      (String.split_on_char '\n' src)

  (** Evaluate a snapshot against an SLO: one
      [(name, bound, actual, ok)] row per configured bound. *)
  let check (s : slo) (snap : snapshot) : (string * float * float * bool) list =
    let lower name bound actual = (name, bound, actual, actual >= bound) in
    let upper name bound actual = (name, bound, actual, actual <= bound) in
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun b -> lower "hit_ratio_min" b snap.hit_ratio) s.hit_ratio_min;
        Option.map (fun b -> upper "p95_us_max" b snap.p95_us) s.p95_us_max;
        Option.map (fun b -> upper "p99_us_max" b snap.p99_us) s.p99_us_max;
        Option.map
          (fun b -> upper "conflict_rate_max" b snap.conflict_rate)
          s.conflict_rate_max;
        Option.map
          (fun b -> upper "violation_rate_max" b snap.violation_rate)
          s.violation_rate_max;
        Option.map
          (fun b -> upper "queue_depth_max" b snap.max_queue_depth)
          s.queue_depth_max;
        Option.map
          (fun b -> upper "headroom_pages_max" b snap.headroom_pages)
          s.headroom_pages_max;
        Option.map
          (fun b -> upper "hot_churn_max" b snap.hot_churn)
          s.hot_churn_max;
        Option.map
          (fun b -> upper "wait_frac_max" b snap.wait_frac)
          s.wait_frac_max;
        Option.map
          (fun b -> upper "wait_frac_p95_max" b snap.wait_frac_p95)
          s.wait_frac_p95_max;
      ]

  let ok (checks : (string * float * float * bool) list) : bool =
    List.for_all (fun (_, _, _, ok) -> ok) checks

  let reset_state () = total := 0
end

(* -- causal latency graph ---------------------------------------------------- *)

(** The per-run causal event graph behind [ofe blame]: for every
    pipeline request, the stage segments it executed (start/end on the
    simulated clock) and the typed blocking edges that kept it off the
    scheduler — queue admission, the park at the place boundary until
    [flush_place], a coalesced follower waiting on its leader, and raw
    scheduler dispatch delay. The deterministic clock makes the record
    exact, not sampled: a completed request's segments and waits tile
    the interval from submission to completion with no unattributed
    time ([Omos.Blame] extracts critical paths and replays
    counterfactuals from this store). Recording is off by default and
    charges nothing to the simulated clock. *)
module Causal = struct
  (** Why a request was off the scheduler between two of its stage
      segments. *)
  type wait_kind =
    | Queue  (** admission: submitted, first stage not yet dispatched *)
    | Batch  (** parked at the place boundary until [flush_place] *)
    | Coalesce  (** follower waiting on its leader's build *)
    | Sched  (** dispatch delay: spawned, waiting for the run queue *)

  let wait_kind_to_string = function
    | Queue -> "queue"
    | Batch -> "batch"
    | Coalesce -> "coalesce"
    | Sched -> "sched"

  type segment = {
    g_stage : string;
    g_t0 : float;
    g_t1 : float;
    g_self : float;
        (** the request's own work within the segment — equals
            [g_t1 -. g_t0] except for the shared batched-place segment,
            where it is just this member's solve *)
  }

  type wait = {
    w_kind : wait_kind;
    w_from : float;
    w_until : float;
    w_on : int;  (** request id waited on (coalesce leader), [-1] none *)
  }

  type dispatch = { d_stage : string; d_queued : float; d_started : float }

  type req = {
    g_id : int;
    g_client : int;
    g_target : string;
    g_submit : float;
    mutable g_segments : segment list;  (** newest-first while recording *)
    mutable g_waits : wait list;  (** resolved parks, newest-first *)
    mutable g_dispatches : dispatch list;  (** newest-first *)
    mutable g_parked : (wait_kind * float * int) option;
        (** an unresolved park: (kind, since, waited-on id) *)
    mutable g_done : float option;
        (** completion point — the map-stage start, where the server
            seals [sim_us]; [None] while in flight or failed *)
    mutable g_sim_us : float;
    mutable g_hit : bool;
    mutable g_solver_us : float;
        (** shared solver overhead of the flush that placed this
            request (the batch's one [place_solve] charge), [0] when
            placed singly *)
  }

  let enabled = ref false
  let set_enabled (b : bool) : unit = enabled := b
  let is_enabled () : bool = !enabled

  let store : (int, req) Hashtbl.t = Hashtbl.create 64

  let begin_request ~(id : int) ~(client : int) ~(target : string)
      ~(at : float) : unit =
    if !enabled then
      Hashtbl.replace store id
        {
          g_id = id;
          g_client = client;
          g_target = target;
          g_submit = at;
          g_segments = [];
          g_waits = [];
          g_dispatches = [];
          g_parked = None;
          g_done = None;
          g_sim_us = 0.0;
          g_hit = false;
          g_solver_us = 0.0;
        }

  let find (id : int) : req option = Hashtbl.find_opt store id

  let segment ~(id : int) ~(stage : string) ~(t0 : float) ~(t1 : float)
      ?(self : float option) () : unit =
    if !enabled then
      match Hashtbl.find_opt store id with
      | None -> ()
      | Some r ->
          let self = match self with Some s -> s | None -> t1 -. t0 in
          r.g_segments <- { g_stage = stage; g_t0 = t0; g_t1 = t1; g_self = self }
            :: r.g_segments

  (** Start a typed wait: the request leaves the scheduler at [at]
      (always the end of the stage that parked it). *)
  let park ~(id : int) (kind : wait_kind) ?(on = -1) ~(at : float) () : unit =
    if !enabled then
      match Hashtbl.find_opt store id with
      | None -> ()
      | Some r -> r.g_parked <- Some (kind, at, on)

  (** Resolve the pending park: the request became runnable at [at]. *)
  let unpark ~(id : int) ~(at : float) () : unit =
    if !enabled then
      match Hashtbl.find_opt store id with
      | None -> ()
      | Some r -> (
          match r.g_parked with
          | None -> ()
          | Some (kind, since, on) ->
              r.g_parked <- None;
              r.g_waits <-
                { w_kind = kind; w_from = since; w_until = at; w_on = on }
                :: r.g_waits)

  let dispatched ~(id : int) ~(stage : string) ~(queued : float)
      ~(started : float) : unit =
    if !enabled then
      match Hashtbl.find_opt store id with
      | None -> ()
      | Some r ->
          r.g_dispatches <-
            { d_stage = stage; d_queued = queued; d_started = started }
            :: r.g_dispatches

  let set_solver_us ~(id : int) (us : float) : unit =
    if !enabled then
      match Hashtbl.find_opt store id with
      | None -> ()
      | Some r -> r.g_solver_us <- us

  let complete ~(id : int) ~(at : float) ~(sim_us : float) ~(hit : bool) () :
      unit =
    if !enabled then
      match Hashtbl.find_opt store id with
      | None -> ()
      | Some r ->
          r.g_done <- Some at;
          r.g_sim_us <- sim_us;
          r.g_hit <- hit

  (** Every recorded request, in submission (= id) order. Segments,
      waits and dispatches come back chronological. *)
  let requests () : req list =
    Hashtbl.fold (fun _ r acc -> r :: acc) store []
    |> List.sort (fun a b -> compare a.g_id b.g_id)
    |> List.map (fun r ->
           {
             r with
             (* stable: consecutive zero-cost stages share one clock
                stamp, and their recorded (execution) order is what the
                blame replay walks *)
             g_segments =
               List.stable_sort
                 (fun a b -> compare (a.g_t0, a.g_t1) (b.g_t0, b.g_t1))
                 (List.rev r.g_segments);
             g_waits =
               List.stable_sort
                 (fun a b -> compare (a.w_from, a.w_until) (b.w_from, b.w_until))
                 (List.rev r.g_waits);
             g_dispatches = List.rev r.g_dispatches;
           })

  let reset_state () : unit = Hashtbl.reset store
end

(* Metrics/spans part of {!reset}; the public [reset] (defined after
   {!Provenance}) also clears profiler and provenance state. *)
let reset_metrics_and_spans () : unit =
  Hashtbl.iter (fun _ (c : Counter.t) -> c.Counter.count <- 0) Counter.registry;
  Hashtbl.reset Gauge.registry;
  Hashtbl.iter
    (fun _ (h : Histogram.t) ->
      h.Histogram.n <- 0;
      h.Histogram.sum <- 0.0;
      h.Histogram.minv <- infinity;
      h.Histogram.maxv <- neg_infinity;
      h.Histogram.filled <- 0;
      h.Histogram.rng <- h.Histogram.seed)
    Histogram.registry;
  open_stack := [];
  completed := [];
  next_id := 0

(* -- JSON ------------------------------------------------------------------- *)

(** A deliberately small JSON reader/writer: enough to emit the two
    export formats with correct escaping and to parse them back for
    validation (tests, [ofe trace]) without an external dependency. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  (* -- writing -- *)

  let escape (s : string) : string =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let number (f : float) : string =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f

  let rec to_string (j : t) : string =
    match j with
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Num f -> number f
    | Str s -> "\"" ^ escape s ^ "\""
    | Arr xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
    | Obj kvs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
        ^ "}"

  (* -- parsing -- *)

  let parse (src : string) : t =
    let n = String.length src in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some src.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub src !pos (String.length word) = word
      then begin pos := !pos + String.length word; v end
      else fail ("bad literal, wanted " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = src.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = src.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub src !pos 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              (* keep it simple: only BMP code points below 0x80 decode
                 to themselves; others round-trip as '?' *)
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?')
          | _ -> fail "bad escape");
          loop ()
        end
        else begin Buffer.add_char b c; loop () end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub src start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin advance (); Arr [] end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); items (v :: acc)
              | Some ']' -> advance (); List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin advance (); Obj [] end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ((k, v) :: acc)
              | Some '}' -> advance (); List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member (key : string) (j : t) : t option =
    match j with Obj kvs -> List.assoc_opt key kvs | _ -> None
end

(* -- binding provenance ------------------------------------------------------ *)

(** The binding journal. While enabled, the linker and the jigsaw
    operators record per-symbol decisions into the journal frame of the
    build in flight; the server brackets each fresh build with
    {!begin_build}/{!capture} and attaches the captured {!t} to the
    resulting cache entry, so a cached image can explain itself long
    after the link that produced it ([ofe explain]).

    Frames form a stack because builds nest: a specializer may
    instantiate a library in the middle of evaluating a client's
    m-graph, and its journal must not leak into the outer build's.

    Recording is off by default ({!set_enabled}): when off,
    {!begin_build}/{!capture} still bracket builds (entries always get a
    provenance skeleton — key, placement, generation) but the per-symbol
    event stream stays empty, so hot paths pay only a flag test. *)
module Provenance = struct
  type event =
    | Op of { op : string; detail : string }
        (** a module operator was applied (merge, override, rename, …) *)
    | Sym of {
        op : string;
        symbol : string;
        prior : string option;  (** previous name, for renames *)
        action : string;
      }  (** what an operator did to one symbol *)
    | Bind of { symbol : string; addr : int; frag : string; via : string }
        (** final link-time binding: the winning definition *)
    | Interpose of { symbol : string; winner : string; loser : string; how : string }
        (** a definition shadowed another at link time *)
    | Reloc of { section : string; count : int }
        (** relocations applied per section *)
    | Lint of { code : string; severity : string; path : string; message : string }
        (** a pre-link diagnostic the analyzer attached at registration *)
    | Coalesced of { leader_request : int }
        (** a concurrent request for the same construction coalesced
            onto this in-flight build instead of building again *)
    | Reused of { digest : string }
        (** a subtree was answered from the per-node memo table — its
            interface digest proved it link-equivalent to an earlier
            materialization, so no operator ran for it *)

  type t = {
    p_key : string;  (** construction digest (the cache key) *)
    p_ops : string list;  (** operator chain, application order *)
    p_events : event list;  (** journal, chronological *)
    p_text_base : int;
    p_data_base : int;
    p_placement : string;  (** human-readable placement decision *)
    p_generation : int;  (** cache generation at insertion *)
    mutable p_transitions : (float * string) list;
        (** residency transitions (sim us, state), chronological *)
  }

  let prov_enabled = ref false
  let set_enabled b = prov_enabled := b
  let is_enabled () = !prov_enabled

  type frame = { mutable ops : string list; mutable events : event list }
  (* both newest-first *)

  let frames : frame list ref = ref []

  let begin_build () : unit = frames := { ops = []; events = [] } :: !frames

  type open_frame = frame
  (** A journal frame detached from the global stack: the pipeline
      suspends a build's frame between stages so interleaved requests
      never record into each other's journals. *)

  let suspend_build () : open_frame =
    match !frames with
    | f :: rest ->
        frames := rest;
        f
    | [] -> { ops = []; events = [] }

  let resume_build (f : open_frame) : unit = frames := f :: !frames

  let record_event (e : event) : unit =
    if !prov_enabled then
      match !frames with [] -> () | f :: _ -> f.events <- e :: f.events

  let record_op ~(op : string) ~(detail : string) : unit =
    if !prov_enabled then
      match !frames with
      | [] -> ()
      | f :: _ ->
          f.ops <- op :: f.ops;
          f.events <- Op { op; detail } :: f.events

  let record_sym ~(op : string) ~(symbol : string) ?prior (action : string) : unit
      =
    record_event (Sym { op; symbol; prior; action })

  let record_bind ~(symbol : string) ~(addr : int) ~(frag : string)
      ~(via : string) : unit =
    record_event (Bind { symbol; addr; frag; via })

  let record_interpose ~(symbol : string) ~(winner : string) ~(loser : string)
      ~(how : string) : unit =
    record_event (Interpose { symbol; winner; loser; how })

  let record_reloc ~(section : string) ~(count : int) : unit =
    if count > 0 then record_event (Reloc { section; count })

  (* Deliberately not [record_op]: findings join the journal without
     perturbing the operator chain the explain command reports. *)
  let record_lint ~(code : string) ~(severity : string) ~(path : string)
      (message : string) : unit =
    record_event (Lint { code; severity; path; message })

  (** A coalesced follower joined the innermost open build. *)
  let record_coalesced ~(leader_request : int) : unit =
    record_event (Coalesced { leader_request })

  (** Same, into a suspended frame: followers usually coalesce while
      the leader's frame is detached between stages. *)
  let record_coalesced_into (f : open_frame) ~(leader_request : int) : unit =
    if !prov_enabled then f.events <- Coalesced { leader_request } :: f.events

  (** A memoized subtree satisfied part of this build. *)
  let record_reused ~(digest : string) : unit =
    record_event (Reused { digest })

  (** Close the innermost build frame into a provenance record. *)
  let capture ~(key : string) ~(text_base : int) ~(data_base : int)
      ~(placement : string) ~(generation : int) () : t =
    let f, rest =
      match !frames with
      | [] -> ({ ops = []; events = [] }, [])
      | f :: r -> (f, r)
    in
    frames := rest;
    {
      p_key = key;
      p_ops = List.rev f.ops;
      p_events = List.rev f.events;
      p_text_base = text_base;
      p_data_base = data_base;
      p_placement = placement;
      p_generation = generation;
      p_transitions = [];
    }

  (** Append a residency transition (entries are long-lived; the
      residency layer calls this on every state change). *)
  let transition (p : t) ~(at : float) (state : string) : unit =
    p.p_transitions <- p.p_transitions @ [ (at, state) ]

  let event_to_string : event -> string = function
    | Op { op; detail } -> Printf.sprintf "op %s %s" op detail
    | Sym { op; symbol; prior; action } ->
        Printf.sprintf "sym %s %s%s: %s" op symbol
          (match prior with Some p -> " (was " ^ p ^ ")" | None -> "")
          action
    | Bind { symbol; addr; frag; via } ->
        Printf.sprintf "bind %s @ 0x%08x in %s (%s)" symbol addr frag via
    | Interpose { symbol; winner; loser; how } ->
        Printf.sprintf "interpose %s: %s over %s (%s)" symbol winner loser how
    | Reloc { section; count } -> Printf.sprintf "relocs %s: %d" section count
    | Lint { code; severity; path; message } ->
        Printf.sprintf "lint %s %s at %s: %s" severity code path message
    | Coalesced { leader_request } ->
        Printf.sprintf "coalesced: served by in-flight request %d" leader_request
    | Reused { digest } ->
        Printf.sprintf "reused subtree %s (memoized materialization)" digest

  (* The names [symbol] has carried: follow rename links backwards so a
     query for the exported name also surfaces decisions recorded under
     the names it was derived from. *)
  let names_for (p : t) (symbol : string) : string list =
    let rec close acc =
      let extra =
        List.filter_map
          (function
            | Sym { symbol = s; prior = Some old; _ }
              when List.mem s acc && not (List.mem old acc) ->
                Some old
            | _ -> None)
          p.p_events
      in
      match List.sort_uniq compare extra with
      | [] -> acc
      | extra -> close (acc @ extra)
    in
    close [ symbol ]

  (** Journal events involving [symbol] (under any of its past names),
      chronological. *)
  let events_for (p : t) (symbol : string) : event list =
    let names = names_for p symbol in
    List.filter
      (function
        | Sym { symbol = s; _ } | Bind { symbol = s; _ }
        | Interpose { symbol = s; _ } ->
            List.mem s names
        | Op _ | Reloc _ | Lint _ | Coalesced _ | Reused _ -> false)
      p.p_events

  (** Content digest of the construction provenance (transitions
      excluded: they evolve over the entry's lifetime). *)
  let digest (p : t) : string =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            (p.p_key :: p.p_placement
             :: Printf.sprintf "gen=%d text=0x%x data=0x%x" p.p_generation
                  p.p_text_base p.p_data_base
             :: (p.p_ops @ List.map event_to_string p.p_events))))

  (* Digests of provenance captured this run, by owner name — what the
     bench driver folds into BENCH_*.json. *)
  let built : (string, string) Hashtbl.t = Hashtbl.create 16
  let note_built ~(name : string) (p : t) : unit =
    Hashtbl.replace built name (digest p)

  let built_digests () : (string * string) list =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) built [] |> List.sort compare

  let event_json : event -> Json.t = function
    | Op { op; detail } ->
        Json.Obj
          [ ("type", Json.Str "op"); ("op", Json.Str op);
            ("detail", Json.Str detail) ]
    | Sym { op; symbol; prior; action } ->
        Json.Obj
          ([ ("type", Json.Str "sym"); ("op", Json.Str op);
             ("symbol", Json.Str symbol) ]
          @ (match prior with
            | Some p -> [ ("prior", Json.Str p) ]
            | None -> [])
          @ [ ("action", Json.Str action) ])
    | Bind { symbol; addr; frag; via } ->
        Json.Obj
          [ ("type", Json.Str "bind"); ("symbol", Json.Str symbol);
            ("addr", Json.Num (float_of_int addr)); ("frag", Json.Str frag);
            ("via", Json.Str via) ]
    | Interpose { symbol; winner; loser; how } ->
        Json.Obj
          [ ("type", Json.Str "interpose"); ("symbol", Json.Str symbol);
            ("winner", Json.Str winner); ("loser", Json.Str loser);
            ("how", Json.Str how) ]
    | Reloc { section; count } ->
        Json.Obj
          [ ("type", Json.Str "reloc"); ("section", Json.Str section);
            ("count", Json.Num (float_of_int count)) ]
    | Lint { code; severity; path; message } ->
        Json.Obj
          [ ("type", Json.Str "lint"); ("code", Json.Str code);
            ("severity", Json.Str severity); ("path", Json.Str path);
            ("message", Json.Str message) ]
    | Coalesced { leader_request } ->
        Json.Obj
          [ ("type", Json.Str "coalesced");
            ("leader_request", Json.Num (float_of_int leader_request)) ]
    | Reused { digest } ->
        Json.Obj
          [ ("type", Json.Str "reused"); ("digest", Json.Str digest) ]

  let to_json (p : t) : Json.t =
    Json.Obj
      [ ("key", Json.Str p.p_key);
        ("digest", Json.Str (digest p));
        ("ops", Json.Arr (List.map (fun o -> Json.Str o) p.p_ops));
        ("text_base", Json.Num (float_of_int p.p_text_base));
        ("data_base", Json.Num (float_of_int p.p_data_base));
        ("placement", Json.Str p.p_placement);
        ("generation", Json.Num (float_of_int p.p_generation));
        ("events", Json.Arr (List.map event_json p.p_events));
        ("transitions",
         Json.Arr
           (List.map
              (fun (at, state) ->
                Json.Obj [ ("at_us", Json.Num at); ("state", Json.Str state) ])
              p.p_transitions)) ]

  let clear_state () : unit =
    frames := [];
    Hashtbl.reset built
end

(** Zero every metric in place (interned handles stay valid), drop all
    recorded spans, and clear profiler attributions and provenance
    journal state. The clock and enabled flags are left alone. *)
let reset () : unit =
  reset_metrics_and_spans ();
  Profile.clear ();
  Provenance.clear_state ();
  Request.reset_state ();
  Health.reset_state ();
  Causal.reset_state ();
  Hotness.reset_state ();
  (* the ring is cleared; the auto-dump configuration and Runinfo
     (run configuration, not measurement) survive *)
  Flight.clear ()

let json_of_value : value -> Json.t = function
  | S s -> Json.Str s
  | I i -> Json.Num (float_of_int i)
  | F f -> Json.Num f
  | B b -> Json.Bool b

(* -- exporters -------------------------------------------------------------- *)

module Export = struct
  let sorted_counters () =
    Hashtbl.fold (fun k (c : Counter.t) acc -> (k, c.Counter.count) :: acc)
      Counter.registry []
    |> List.sort compare

  let sorted_gauges () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) Gauge.registry []
    |> List.sort compare

  let sorted_histograms () =
    Hashtbl.fold (fun k (h : Histogram.t) acc -> (k, h) :: acc) Histogram.registry []
    |> List.sort compare

  let span_obj (s : span) : Json.t =
    Json.Obj
      ([ ("type", Json.Str "span");
         ("id", Json.Num (float_of_int s.id));
         ("parent", if s.parent < 0 then Json.Null else Json.Num (float_of_int s.parent));
         ("depth", Json.Num (float_of_int s.depth));
         ("name", Json.Str s.name);
         ("ts", Json.Num s.start_us);
         ("dur", Json.Num (s.end_us -. s.start_us)) ]
      @
      if s.attrs = [] then []
      else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) s.attrs)) ])

  (** Line-oriented JSON: one event object per line — spans in
      completion order, then counters, gauges, and histograms. *)
  let events_json () : string =
    let b = Buffer.create 4096 in
    let line (j : Json.t) =
      Buffer.add_string b (Json.to_string j);
      Buffer.add_char b '\n'
    in
    List.iter (fun s -> line (span_obj s)) (spans ());
    List.iter
      (fun (k, v) ->
        line (Json.Obj [ ("type", Json.Str "counter"); ("name", Json.Str k);
                         ("value", Json.Num (float_of_int v)) ]))
      (sorted_counters ());
    List.iter
      (fun (k, v) ->
        line (Json.Obj [ ("type", Json.Str "gauge"); ("name", Json.Str k);
                         ("value", Json.Num v) ]))
      (sorted_gauges ());
    List.iter
      (fun (k, (h : Histogram.t)) ->
        line
          (Json.Obj
             [ ("type", Json.Str "histogram"); ("name", Json.Str k);
               ("count", Json.Num (float_of_int h.Histogram.n));
               ("sum", Json.Num h.Histogram.sum);
               ("min", Json.Num (Histogram.min_value h));
               ("max", Json.Num (Histogram.max_value h));
               ("p50", Json.Num (Histogram.percentile h 50.0));
               ("p95", Json.Num (Histogram.percentile h 95.0));
               ("p99", Json.Num (Histogram.percentile h 99.0)) ]))
      (sorted_histograms ());
    Buffer.contents b

  (** Chrome [trace_event] JSON (about://tracing, Perfetto): complete
      ("X") events for spans, counter ("C") samples at the trace end,
      and process metadata. Timestamps are the collector clock's
      microseconds — simulated time when the server installed the
      simulated clock. *)
  let chrome () : string =
    let all = spans () in
    let by_start =
      List.sort
        (fun a b ->
          match compare a.start_us b.start_us with 0 -> compare a.id b.id | c -> c)
        all
    in
    let end_ts =
      List.fold_left (fun acc s -> Float.max acc s.end_us) 0.0 all
    in
    let meta =
      Json.Obj
        [ ("ph", Json.Str "M"); ("pid", Json.Num 1.0); ("tid", Json.Num 1.0);
          ("name", Json.Str "process_name");
          ("args", Json.Obj [ ("name", Json.Str "omos") ]) ]
    in
    let span_event (s : span) =
      Json.Obj
        [ ("ph", Json.Str "X"); ("pid", Json.Num 1.0); ("tid", Json.Num 1.0);
          ("cat", Json.Str "omos");
          ("name", Json.Str s.name);
          ("ts", Json.Num s.start_us);
          ("dur", Json.Num (s.end_us -. s.start_us));
          ("args",
           Json.Obj
             ([ ("id", Json.Num (float_of_int s.id));
                ("parent", Json.Num (float_of_int s.parent)) ]
             @ List.map (fun (k, v) -> (k, json_of_value v)) s.attrs)) ]
    in
    let counter_event (k, v) =
      Json.Obj
        [ ("ph", Json.Str "C"); ("pid", Json.Num 1.0); ("tid", Json.Num 1.0);
          ("name", Json.Str k); ("ts", Json.Num end_ts);
          ("args", Json.Obj [ ("value", Json.Num (float_of_int v)) ]) ]
    in
    Json.to_string
      (Json.Obj
         [ ("traceEvents",
            Json.Arr
              ((meta :: List.map span_event by_start)
              @ List.map counter_event (sorted_counters ())));
           ("displayTimeUnit", Json.Str "ms") ])

  (** The full metrics registry as one JSON object with a stable schema
      — what the benchmark harness writes as BENCH_*.json. *)
  let metrics_json () : string =
    Json.to_string
      (Json.Obj
         [ ("schema", Json.Str "omos.metrics/1");
           ("meta",
            Json.Obj
              (List.map (fun (k, v) -> (k, json_of_value v)) (Runinfo.sorted ())));
           ("counters",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Num (float_of_int v)))
                 (sorted_counters ())));
           ("gauges",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (sorted_gauges ())));
           ("histograms",
            Json.Obj
              (List.map
                 (fun (k, (h : Histogram.t)) ->
                   ( k,
                     Json.Obj
                       [ ("count", Json.Num (float_of_int h.Histogram.n));
                         ("sum", Json.Num h.Histogram.sum);
                         ("mean", Json.Num (Histogram.mean h));
                         ("min", Json.Num (Histogram.min_value h));
                         ("max", Json.Num (Histogram.max_value h));
                         ("p50", Json.Num (Histogram.percentile h 50.0));
                         ("p95", Json.Num (Histogram.percentile h 95.0));
                         ("p99", Json.Num (Histogram.percentile h 99.0)) ] ))
                 (sorted_histograms ())));
           ("hotness",
            Json.Obj
              [ ("window_cap", Json.Num (float_of_int Hotness.window_cap));
                ("events", Json.Num (float_of_int (Hotness.total_events ())));
                ("keys",
                 Json.Obj
                   (List.map
                      (fun (s : Hotness.stat) ->
                        (s.Hotness.hs_key,
                         Json.Num (float_of_int s.Hotness.hs_calls)))
                      (Hotness.stats ()))) ]) ])

  (** The continuous-profiling store as one JSON object with a stable
      schema: windowed per-key call counts, per-function histograms,
      first-call order, caller→callee transitions, and (when audited)
      the layout-locality audit for each key. *)
  let hotspots_json () : string =
    let meta_obj (s : Hotness.stat) : Json.t =
      let audit =
        match Hotness.audit_pages s.Hotness.hs_key with
        | None -> []
        | Some (actual, optimal, reordered) ->
            [ ("audit",
               Json.Obj
                 [ ("pages_actual", Json.Num (float_of_int actual));
                   ("pages_optimal", Json.Num (float_of_int optimal));
                   ("pages_reordered", Json.Num (float_of_int reordered));
                   ("headroom_pages", Json.Num (float_of_int (actual - optimal)));
                   ("headroom_after_reorder",
                    Json.Num (float_of_int (reordered - optimal))) ]) ]
      in
      Json.Obj
        ([ ("meta", Json.Str s.Hotness.hs_key);
           ("calls", Json.Num (float_of_int s.Hotness.hs_calls));
           ("functions",
            Json.Arr
              (List.map
                 (fun (f, n) ->
                   Json.Obj
                     [ ("name", Json.Str f);
                       ("calls", Json.Num (float_of_int n)) ])
                 s.Hotness.hs_functions));
           ("first_call",
            Json.Arr (List.map (fun f -> Json.Str f) s.Hotness.hs_first_call));
           ("transitions",
            Json.Arr
              (List.map
                 (fun ((p, f), n) ->
                   Json.Obj
                     [ ("from", Json.Str p);
                       ("to", Json.Str f);
                       ("count", Json.Num (float_of_int n)) ])
                 s.Hotness.hs_transitions)) ]
        @ audit)
    in
    Json.to_string
      (Json.Obj
         [ ("schema", Json.Str "omos.hotspots/1");
           ("window",
            Json.Obj
              [ ("cap", Json.Num (float_of_int Hotness.window_cap));
                ("events", Json.Num (float_of_int (Hotness.total_events ()))) ]);
           ("metas", Json.Arr (List.map meta_obj (Hotness.stats ()))) ])
end

(* Re-export the flight recorder so clients address it as
   [Telemetry.Flight] (its implementation lives in flight.ml, below
   every hook that feeds it). *)
module Flight = Flight
