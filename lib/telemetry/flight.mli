(** The flight recorder: a bounded ring buffer of the last ~4k
    structured telemetry events (spans, counter increments, gauge sets,
    histogram observations, request begin/end, residency transitions,
    faults, invariant violations), each stamped with the simulated
    clock and the live [(client, request)] context.

    Appends are O(1) and allocation-free beyond the slot write: the
    ring is a set of parallel pre-allocated arrays indexed by a single
    cursor. The recorder is always on — it is the thing you read {e
    after} something went wrong, so it cannot be something you had to
    remember to enable.

    A dump ({!dump}) writes the ring twice: as line-oriented JSON
    events and as a human transcript. {!trip} performs the dump
    automatically when an auto-dump prefix was configured
    ({!set_auto_dump}) — the residency layer trips it on invariant
    violations and injected faults, and [ofe] trips it when exiting
    non-zero. *)

(** What kind of event a slot holds. *)
type kind =
  | Request_begin
  | Request_end
  | Span_enter
  | Span_exit
  | Count
  | Gauge_set
  | Observe
  | Transition
  | Fault
  | Violation
  | Note

val kind_label : kind -> string

(** Ring capacity (number of retained events). *)
val capacity : int

(** {1 Context}

    The current [(client, request)] attribution, pushed by
    [Telemetry.Request] and stamped onto every recorded event. [-1]
    means "outside any request". *)

val set_context : client:int -> request:int -> unit
val clear_context : unit -> unit
val current_client : unit -> int
val current_request : unit -> int

(** The recorder's time source (microseconds); [Telemetry.set_clock]
    forwards here so flight timestamps match span timestamps. *)
val set_clock : (unit -> float) -> unit

(** {1 Recording} *)

(** [emit kind name detail value] appends one event (hot path: one
    ring-slot write, no allocation). *)
val emit : kind -> string -> string -> float -> unit

(** Convenience wrapper over {!emit}. *)
val record : ?detail:string -> ?value:float -> kind -> string -> unit

(** Record a fault event and {!trip} the auto-dump. *)
val record_fault : string -> unit

(** Record a violation event ([name] is the violation code). *)
val record_violation : name:string -> detail:string -> unit

(** {1 Reading} *)

type event = {
  seq : int;  (** global sequence number (monotonic since {!clear}) *)
  at_us : float;
  kind : kind;
  name : string;
  detail : string;
  value : float;
  client : int;
  request : int;
}

(** Retained events, oldest first (at most {!capacity}). *)
val events : unit -> event list

(** Events recorded since the last {!clear} (including overwritten
    ones). *)
val total_recorded : unit -> int

(** Events currently retained in the ring. *)
val size : unit -> int

val clear : unit -> unit

(** {1 Dumping} *)

(** One JSON object per line: a dump header, then every retained
    event. *)
val to_json_events : reason:string -> string

(** The human transcript of the ring, oldest first. *)
val to_transcript : reason:string -> string

(** Write [<prefix>.json] and [<prefix>.txt]. *)
val dump : reason:string -> prefix:string -> unit

(** Hook invoked with the dump reason after every {!dump} (explicit or
    auto-dump {!trip}). The metrics layer lives above this module, so it
    registers here to count dumps ([flight.dumps],
    [flight.dumps.<cause>] keyed by the reason's first word). *)
val set_on_dump : (string -> unit) -> unit

(** Configure (or disable, with [None]) the auto-dump prefix used by
    {!trip}. Survives [Telemetry.reset]. *)
val set_auto_dump : string option -> unit

val auto_dump_prefix : unit -> string option

(** If an auto-dump prefix is configured and the ring is non-empty,
    record a note naming [reason], dump, and return [true]. *)
val trip : reason:string -> unit -> bool
