(* The flight recorder ring. See flight.mli for the contract.

   Layout: parallel pre-allocated arrays indexed by [total mod
   capacity]. Floats live in unboxed [float array]s and the variant
   kinds are immediate values, so an append writes seven slots and
   bumps the cursor — no allocation, no branching beyond the modulo. *)

type kind =
  | Request_begin
  | Request_end
  | Span_enter
  | Span_exit
  | Count
  | Gauge_set
  | Observe
  | Transition
  | Fault
  | Violation
  | Note

let kind_label = function
  | Request_begin -> "request_begin"
  | Request_end -> "request_end"
  | Span_enter -> "span_enter"
  | Span_exit -> "span_exit"
  | Count -> "count"
  | Gauge_set -> "gauge_set"
  | Observe -> "observe"
  | Transition -> "transition"
  | Fault -> "fault"
  | Violation -> "violation"
  | Note -> "note"

let capacity = 4096

let at_us_a : float array = Array.make capacity 0.0
let value_a : float array = Array.make capacity 0.0
let kind_a : kind array = Array.make capacity Note
let name_a : string array = Array.make capacity ""
let detail_a : string array = Array.make capacity ""
let client_a : int array = Array.make capacity (-1)
let request_a : int array = Array.make capacity (-1)
let total = ref 0

(* -- context -------------------------------------------------------- *)

let cur_client = ref (-1)
let cur_request = ref (-1)

let set_context ~client ~request =
  cur_client := client;
  cur_request := request

let clear_context () =
  cur_client := -1;
  cur_request := -1

let current_client () = !cur_client
let current_request () = !cur_request

let clock : (unit -> float) ref = ref (fun () -> 0.0)
let set_clock f = clock := f

(* -- recording ------------------------------------------------------ *)

let emit (kind : kind) (name : string) (detail : string) (value : float) : unit =
  let i = !total mod capacity in
  at_us_a.(i) <- !clock ();
  value_a.(i) <- value;
  kind_a.(i) <- kind;
  name_a.(i) <- name;
  detail_a.(i) <- detail;
  client_a.(i) <- !cur_client;
  request_a.(i) <- !cur_request;
  incr total

let record ?(detail = "") ?(value = 0.0) (kind : kind) (name : string) : unit =
  emit kind name detail value

let total_recorded () = !total
let size () = min !total capacity

let clear () = total := 0

(* -- reading -------------------------------------------------------- *)

type event = {
  seq : int;
  at_us : float;
  kind : kind;
  name : string;
  detail : string;
  value : float;
  client : int;
  request : int;
}

let events () : event list =
  let n = size () in
  List.init n (fun k ->
      let seq = !total - n + k in
      let i = seq mod capacity in
      {
        seq;
        at_us = at_us_a.(i);
        kind = kind_a.(i);
        name = name_a.(i);
        detail = detail_a.(i);
        value = value_a.(i);
        client = client_a.(i);
        request = request_a.(i);
      })

(* -- dumping -------------------------------------------------------- *)

(* A local JSON string escape: the writer in telemetry.ml lives above
   us in the module graph, and the handful of escapes below cover every
   string the recorder stores. *)
let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_json_events ~(reason : string) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"type\":\"flight_dump\",\"reason\":\"%s\",\"recorded\":%d,\"retained\":%d,\"capacity\":%d}\n"
       (json_escape reason) !total (size ()) capacity);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"type\":\"flight\",\"seq\":%d,\"at_us\":%s,\"kind\":\"%s\",\"name\":\"%s\",\"detail\":\"%s\",\"value\":%s,\"client\":%d,\"request\":%d}\n"
           e.seq (json_num e.at_us) (kind_label e.kind) (json_escape e.name)
           (json_escape e.detail) (json_num e.value) e.client e.request))
    (events ());
  Buffer.contents b

let to_transcript ~(reason : string) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "# flight recorder: reason=%s events=%d..%d (%d recorded)\n"
       reason
       (!total - size ())
       (!total - 1)
       !total);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%06d at=%.1fus client=%d request=%d %-13s %s%s%s\n" e.seq
           e.at_us e.client e.request (kind_label e.kind) e.name
           (if e.detail = "" then "" else " " ^ e.detail)
           (if e.value = 0.0 then "" else Printf.sprintf " value=%g" e.value)))
    (events ());
  Buffer.contents b

let write_file (path : string) (contents : string) : unit =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Invoked after every dump with the reason; telemetry.ml registers a
   hook that counts dumps by cause (this module sits below the metrics
   registry, so it cannot increment counters itself). *)
let on_dump : (string -> unit) ref = ref (fun _ -> ())
let set_on_dump f = on_dump := f

let dump ~(reason : string) ~(prefix : string) : unit =
  write_file (prefix ^ ".json") (to_json_events ~reason);
  write_file (prefix ^ ".txt") (to_transcript ~reason);
  !on_dump reason

let auto : string option ref = ref None
let set_auto_dump p = auto := p
let auto_dump_prefix () = !auto

let trip ~(reason : string) () : bool =
  match !auto with
  | Some prefix when !total > 0 ->
      record Note reason;
      dump ~reason ~prefix;
      true
  | _ -> false

(* -- hooks for the residency layer ---------------------------------- *)

let record_fault (name : string) : unit =
  record Fault name;
  ignore (trip ~reason:("fault " ^ name) ())

let record_violation ~(name : string) ~(detail : string) : unit =
  record ~detail Violation name
