(** Structured tracing and metrics for the OMOS request path.

    One global collector: hierarchical spans (recorded only while
    enabled), plus always-on counters/gauges/histograms, and exporters
    for line-oriented JSON events and the Chrome [trace_event] format.
    Span timestamps come from a pluggable clock; the server points it at
    the simulated clock so traces are in simulated microseconds. *)

(** Attribute values attached to spans. *)
type value = S of string | I of int | F of float | B of bool

type attr = string * value

(** A completed (or open) span. [end_us] is [nan] while open; [parent]
    is [-1] for roots. *)
type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_us : float;
  mutable end_us : float;
  mutable attrs : attr list;
}

(** Span recording is off by default; metrics are always on. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Install the time source (microseconds). The default returns 0. *)
val set_clock : (unit -> float) -> unit

val now_us : unit -> float

module Span : sig
  type t

  (** The no-op span (what {!enter} returns while disabled). *)
  val null : t

  val enter : ?attrs:attr list -> string -> t
  val add_attr : t -> string -> value -> unit

  (** Close the span; children left open by an exception unwind are
      force-closed at the same timestamp. Idempotent. *)
  val exit : t -> unit
end

(** [with_span name f] runs [f] inside a span, closing it on exceptions
    too. *)
val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Completed spans, in completion order (children before parents). *)
val spans : unit -> span list

(** Completed spans with this name, oldest first. *)
val spans_named : string -> span list

(** Simulated-cost profiler: attributes [Simos.Cost] charges to the
    live span stack. While enabled, every clock charge is credited to
    the current root-to-leaf span path (names joined with [";"] — the
    folded-stack key flamegraph tools consume); charges arriving outside
    any span land under ["(unattributed)"], so {!Profile.folded} always
    sums to exactly what the cost model charged. Off by default. *)
module Profile : sig
  type kind = User | System | Io

  val set_enabled : bool -> unit
  val is_enabled : unit -> bool

  (** Credit [us] microseconds of [kind] to the current span path
      (called from the simulated clock; no-op while disabled). *)
  val charge : kind -> float -> unit

  (** (path, user, system, io) rows, sorted by path. *)
  val rows : unit -> (string * float * float * float) list

  (** Folded-stack lines: (path, total us), sorted by path. *)
  val folded : unit -> (string * float) list

  (** Total cost attributed (all kinds, all paths). *)
  val total : unit -> float

  (** Per-operator totals keyed by innermost span name, sorted by
      descending cost. *)
  val by_leaf : unit -> (string * float) list

  (** Cost credited to paths at least [depth] span names deep —
      "attributed to a specific phase", as opposed to only the request
      root or nothing. *)
  val attributed_at_depth : int -> float

  (** Drop all attributions (also part of {!reset}). *)
  val clear : unit -> unit
end

module Counter : sig
  type t

  (** Interned by name: the same name always yields the same counter. *)
  val make : string -> t

  val incr : ?by:int -> t -> unit
  val value : t -> int

  (** Current value by name (0 if never incremented). *)
  val get : string -> int
end

module Gauge : sig
  val set : string -> float -> unit
  val get : string -> float option
end

module Histogram : sig
  type t

  (** Interned by name. Bounded memory: count/sum/min/max plus a
      fixed-size deterministic sample reservoir for percentiles. *)
  val make : string -> t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  (** Nearest-rank percentile over the reservoir ([q] in [0,100]);
      exact until the reservoir overflows (512 samples). *)
  val percentile : t -> float -> float
end

(** The continuous-profiling store: every [Monitor] trace event flowing
    through the server's monitor specializer is aggregated here across
    requests, keyed by the monitored meta path (or blueprint digest).
    Events live in a deterministic rolling window of the
    {!Hotness.window_cap} most recent calls; windowed statistics —
    per-key call counts, first-call order, caller→callee transition
    pairs — are derived by replaying the window, so equal event
    sequences serialize byte-identically. A cumulative table tracks the
    identity of each key's hottest function; changes of identity
    ("churn", counter [hotness.top_changes]) feed {!Health}, and a
    bounded hot-set note is written to the flight ring every 256 events
    so anomaly dumps carry the hot set. *)
module Hotness : sig
  (** Rolling-window size (call events retained). *)
  val window_cap : int

  (** Record one monitored function entry under [key] (the monitored
      meta path, or ["digest:<d>"] for anonymous blueprints). *)
  val record_call : key:string -> string -> unit

  (** Call events recorded since the last reset (including ones that
      have rolled out of the window). *)
  val total_events : unit -> int

  (** Keys present in the current window, sorted. *)
  val keys : unit -> string list

  (** Windowed statistics for one key. *)
  type stat = {
    hs_key : string;
    hs_calls : int;  (** call events for this key in the window *)
    hs_functions : (string * int) list;
        (** per-function call counts, hottest first (name breaks ties) *)
    hs_first_call : string list;  (** first-call order within the window *)
    hs_transitions : ((string * string) * int) list;
        (** consecutive-call (caller → callee) pairs, hottest first *)
  }

  (** Statistics for every windowed key, sorted by key. *)
  val stats : unit -> stat list

  val stat_for : string -> stat option

  (** The hottest (key, function, windowed calls) across all keys, if
      any events were recorded. *)
  val hottest : unit -> (string * string * int) option

  (** Record the latest layout-locality audit for [key]: distinct text
      pages the traced working set touches under the actual fragment
      order, under the optimal packed layout, and after reordering.
      Sets the [hotness.headroom_pages.<key>] gauge and notes the
      result in the flight ring. *)
  val note_audit :
    key:string ->
    pages_actual:int ->
    pages_optimal:int ->
    pages_reordered:int ->
    unit

  (** The recorded [(pages_actual, pages_optimal, pages_reordered)] for
      [key], if it was audited since the last reset. *)
  val audit_pages : string -> (int * int * int) option

  (** The largest audited headroom (actual - optimal pages) across all
      keys; 0 when nothing was audited. *)
  val max_headroom : unit -> int
end

(** Reproducibility metadata carried as the ["meta"] object of every
    [omos.metrics/1] snapshot: the server records its scheduler seed,
    batch-placement knob, and queue limit here (at creation and on
    every knob change), so an exported run can be re-created from the
    snapshot alone. Survives {!reset} — configuration, not
    measurement. *)
module Runinfo : sig
  val set : string -> value -> unit
  val get : string -> value option

  (** All entries, sorted by key. *)
  val sorted : unit -> (string * value) list
end

(** Request-scoped attribution. Every server entry point (instantiate,
    exec, dynload, evict) opens a request, which assigns a monotonic
    request id, inherits or sets the client id, and pushes the pair
    into the flight-recorder context — so spans, counters, residency
    transitions, and faults recorded underneath all carry
    [(client, request)]. Requests nest; ids stay monotonic. *)
module Request : sig
  (** Ambient client id inherited by requests opened outside any
      enclosing request (default 0); workload drivers set it before
      each simulated client's operation. *)
  val set_client : int -> unit

  (** Client id of the innermost open request, [-1] outside any. *)
  val current_client : unit -> int

  (** The client id a request opened right now would inherit: the
      innermost open request's, else the ambient one. *)
  val effective_client : unit -> int

  (** Id of the innermost open request, [-1] outside any. *)
  val current_request : unit -> int

  val active : unit -> bool

  (** The most recently assigned request id, [-1] if none yet. *)
  val last_id : unit -> int

  (** Open a request of [kind] (e.g. ["instantiate"]); returns its id.
      [client] overrides the inherited/ambient client id. *)
  val begin_request : ?client:int -> string -> int

  val end_request : unit -> unit

  (** Run [f] inside a fresh request (ended on exceptions too). *)
  val with_request : ?client:int -> string -> (unit -> 'a) -> 'a

  (** {2 Detached requests}

      The staged pipeline opens a request once at submission, resumes
      and suspends it around every stage execution (so interleaved
      requests each stamp their own [(client, id)] on what they
      record), and closes it at completion. *)

  (** Assign a request id and emit the begin event without leaving the
      request on the context stack. *)
  val begin_detached : ?client:int -> string -> int

  (** Push an already-assigned [(client, id)] back onto the context
      stack (no new id, no begin event). *)
  val resume : client:int -> id:int -> string -> unit

  (** Pop the innermost context without emitting an end event. *)
  val suspend : unit -> unit

  (** Emit the end event of a detached request. *)
  val end_detached : client:int -> id:int -> string -> unit
end

(** Rolling-window health over the instantiate stream: hit ratio, cost
    percentiles, conflict/violation rates — what [ofe top] tabulates
    and [ofe health --slo] gates on. *)
module Health : sig
  (** Window size (most recent requests considered). *)
  val window_cap : int

  (** Record one served request (the server calls this once per
      instantiate). Conflict/violation counters are sampled here;
      [queue_depth] is the pipeline backlog observed at completion;
      [wait_frac] is the share of the request's latency spent waiting
      (queue admission, batch park, coalescing) rather than working. *)
  val record :
    ?hit:bool -> ?queue_depth:int -> ?wait_frac:float -> cost_us:float ->
    unit -> unit

  type snapshot = {
    requests : int;  (** requests recorded since the last reset *)
    window : int;  (** samples in the rolling window *)
    hit_ratio : float;  (** over window samples with hit/miss info *)
    p50_us : float;
    p95_us : float;
    p99_us : float;
    mean_us : float;
    max_us : float;
    conflict_rate : float;  (** arena conflicts per windowed request *)
    violation_rate : float;  (** invariant violations per windowed request *)
    max_queue_depth : float;  (** deepest pipeline backlog in the window *)
    headroom_pages : float;
        (** largest audited locality headroom (actual - optimal pages)
            across resident images, from {!Hotness} *)
    hot_churn : float;  (** hot-function identity changes per windowed request *)
    hot_fn : string;  (** hottest monitored function ("-" when none) *)
    wait_frac : float;
        (** mean share of request latency spent waiting (queue, batch
            park, coalesce) rather than working, over the window *)
    wait_frac_p95 : float;  (** p95 of the per-request wait share *)
  }

  val snapshot : unit -> snapshot

  (** An SLO spec: every bound optional. *)
  type slo = {
    hit_ratio_min : float option;
    p95_us_max : float option;
    p99_us_max : float option;
    conflict_rate_max : float option;
    violation_rate_max : float option;
    queue_depth_max : float option;
    headroom_pages_max : float option;
    hot_churn_max : float option;
    wait_frac_max : float option;
    wait_frac_p95_max : float option;
  }

  val empty_slo : slo

  exception Slo_error of string

  (** Parse the line-oriented SLO format ([key value] pairs, [#]
      comments). @raise Slo_error on unknown keys or bad values. *)
  val parse_slo : string -> slo

  (** One [(name, bound, actual, ok)] row per configured bound. *)
  val check : slo -> snapshot -> (string * float * float * bool) list

  val ok : (string * float * float * bool) list -> bool
end

(** The causal event graph behind [ofe blame]: per request, the stage
    segments it executed and the typed blocking edges (queue admission,
    batch park, coalesce-on-leader, scheduler dispatch) it waited on,
    all stamped with exact simulated-clock reads. Because the clock is
    deterministic and only advances when work is charged, the recorded
    segments and waits tile a request's lifetime exactly — blame is an
    accounting identity, not a sampling estimate ({!Omos.Blame} builds
    critical paths and what-if replays on top).

    Recording is off by default; every hook is a no-op while disabled
    or for unknown request ids, so the instrumented server pays nothing
    when blame is not being collected. *)
module Causal : sig
  (** Why a request was blocked rather than computing. *)
  type wait_kind =
    | Queue  (** admission: submitted but not yet dispatched to parse *)
    | Batch  (** parked at the place boundary until [flush_place] *)
    | Coalesce  (** follower waiting on its leader's link/map *)
    | Sched  (** runnable but waiting for the scheduler to dispatch *)

  val wait_kind_to_string : wait_kind -> string

  (** One executed stage interval. [g_self] is the charged cost — it
      can be less than [g_t1 -. g_t0] when shared work (a batched
      solve) overlaps the interval. *)
  type segment = { g_stage : string; g_t0 : float; g_t1 : float; g_self : float }

  (** One resolved blocking interval. [w_on] is the request id being
      waited on ([-1] when the edge has no single counterpart). *)
  type wait = { w_kind : wait_kind; w_from : float; w_until : float; w_on : int }

  (** One scheduler dispatch: the task was spawned at [d_queued] and
      ran at [d_started]. *)
  type dispatch = { d_stage : string; d_queued : float; d_started : float }

  type req = {
    g_id : int;
    g_client : int;
    g_target : string;
    g_submit : float;
    mutable g_segments : segment list;
    mutable g_waits : wait list;
    mutable g_dispatches : dispatch list;
    mutable g_parked : (wait_kind * float * int) option;
        (** an unresolved park, closed by {!unpark} *)
    mutable g_done : float option;
    mutable g_sim_us : float;
    mutable g_hit : bool;
    mutable g_solver_us : float;
        (** shared batched-solve cost charged during this request's
            place segment (not part of its own wrap work) *)
  }

  val set_enabled : bool -> unit
  val is_enabled : unit -> bool

  (** Recording hooks (no-ops while disabled / id unknown). *)

  val begin_request : id:int -> client:int -> target:string -> at:float -> unit
  val segment : id:int -> stage:string -> t0:float -> t1:float -> ?self:float -> unit -> unit
  val park : id:int -> wait_kind -> ?on:int -> at:float -> unit -> unit
  val unpark : id:int -> at:float -> unit -> unit
  val dispatched : id:int -> stage:string -> queued:float -> started:float -> unit
  val set_solver_us : id:int -> float -> unit
  val complete : id:int -> at:float -> sim_us:float -> hit:bool -> unit -> unit

  val find : int -> req option

  (** Completed and in-flight requests recorded since the last reset,
      sorted by id; segments, waits and dispatches are returned in
      chronological order. *)
  val requests : unit -> req list

  (** Drop all recorded requests (the enabled flag is untouched);
      {!reset} calls this. *)
  val reset_state : unit -> unit
end

(** Zero every metric in place (interned handles stay valid), drop all
    recorded spans, clear profiler attributions, provenance journal
    state, request attribution, health windows, the hotness store, and
    the flight-recorder ring. Clock, enabled flags, the flight
    auto-dump configuration, and {!Runinfo} are untouched. *)
val reset : unit -> unit

(** A small JSON reader/writer used by the exporters and by tests to
    validate exporter output. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val escape : string -> string
  val to_string : t -> string

  (** @raise Parse_error on malformed input. *)
  val parse : string -> t

  val member : string -> t -> t option
end

(** The binding journal: per-symbol link/operator decisions recorded
    during a build and attached, as a compact {!Provenance.t}, to the
    cache entry the build produced — so cached images can explain
    themselves ([ofe explain]) without relinking.

    The server brackets every fresh build with
    {!Provenance.begin_build}/{!Provenance.capture}; frames stack
    because builds nest (a specializer may instantiate a library while
    evaluating a client graph). Event recording is off by default: when
    disabled, captures still produce a provenance skeleton (key,
    placement, generation) with an empty event stream. *)
module Provenance : sig
  type event =
    | Op of { op : string; detail : string }
    | Sym of {
        op : string;
        symbol : string;
        prior : string option;  (** previous name, for renames *)
        action : string;
      }
    | Bind of { symbol : string; addr : int; frag : string; via : string }
    | Interpose of { symbol : string; winner : string; loser : string; how : string }
    | Reloc of { section : string; count : int }
    | Lint of { code : string; severity : string; path : string; message : string }
        (** a pre-link diagnostic the analyzer attached at registration *)
    | Coalesced of { leader_request : int }
        (** a duplicate in-flight request was folded into this build:
            the follower was served by [leader_request]'s link/map
            rather than by its own *)
    | Reused of { digest : string }
        (** a subtree was answered from the per-node memo table: its
            interface digest proved it link-equivalent to an earlier
            materialization, so no operator ran for it *)

  type t = {
    p_key : string;  (** construction digest (the cache key) *)
    p_ops : string list;  (** operator chain, application order *)
    p_events : event list;  (** journal, chronological *)
    p_text_base : int;
    p_data_base : int;
    p_placement : string;  (** human-readable placement decision *)
    p_generation : int;  (** cache generation at insertion *)
    mutable p_transitions : (float * string) list;
        (** residency transitions (sim us, state), chronological *)
  }

  (** Event recording is off by default. *)
  val set_enabled : bool -> unit

  val is_enabled : unit -> bool

  (** Open a journal frame for a build about to start. *)
  val begin_build : unit -> unit

  (** A journal frame detached from the global stack: the pipeline
      suspends a build's frame between stages so interleaved requests
      never record into each other's journals. *)
  type open_frame

  (** Detach the innermost open frame. *)
  val suspend_build : unit -> open_frame

  (** Push a detached frame back as the innermost open frame. *)
  val resume_build : open_frame -> unit

  (** Close the innermost frame into a provenance record. *)
  val capture :
    key:string ->
    text_base:int ->
    data_base:int ->
    placement:string ->
    generation:int ->
    unit ->
    t

  (** Recording hooks (no-ops while disabled, or outside any frame). *)

  val record_op : op:string -> detail:string -> unit
  val record_sym : op:string -> symbol:string -> ?prior:string -> string -> unit
  val record_bind : symbol:string -> addr:int -> frag:string -> via:string -> unit

  val record_interpose :
    symbol:string -> winner:string -> loser:string -> how:string -> unit

  val record_reloc : section:string -> count:int -> unit

  (** Attach a pre-link lint finding to the open journal frame. Joins
      the event stream only — the operator chain is untouched. *)
  val record_lint :
    code:string -> severity:string -> path:string -> string -> unit

  (** Note on the innermost open frame that a coalesced follower is
      being served by this build. *)
  val record_coalesced : leader_request:int -> unit

  (** Same, onto a detached frame (the pipeline coalesces followers
      between the leader's stages, while its frame is suspended). *)
  val record_coalesced_into : open_frame -> leader_request:int -> unit

  (** Note on the innermost open frame that a memoized subtree (by
      interface digest) satisfied part of this build. *)
  val record_reused : digest:string -> unit

  (** Append a residency transition to a captured record. *)
  val transition : t -> at:float -> string -> unit

  (** Journal events involving a symbol, following rename links
      backwards (querying the final name surfaces decisions recorded
      under the names it came from). Chronological. *)
  val events_for : t -> string -> event list

  val event_to_string : event -> string

  (** Content digest of the construction provenance (transitions
      excluded — they evolve over the entry's lifetime). *)
  val digest : t -> string

  (** Record the digest of a finished build under its owner's name
      (what the bench driver folds into BENCH_*.json). *)
  val note_built : name:string -> t -> unit

  (** (name, digest) pairs recorded since the last {!reset}, sorted. *)
  val built_digests : unit -> (string * string) list

  val to_json : t -> Json.t
end

(** The flight recorder (see flight.mli): a bounded ring of the last
    ~4k structured events, dumped on invariant violations, faults, and
    non-zero [ofe] exits. *)
module Flight = Flight

module Export : sig
  (** One JSON object per line: spans, then counters, gauges,
      histograms. *)
  val events_json : unit -> string

  (** Chrome [trace_event] JSON for about://tracing / Perfetto. *)
  val chrome : unit -> string

  (** The metrics registry as one stable-schema JSON object
      ([omos.metrics/1]) — the BENCH_*.json payload. Carries the
      {!Runinfo} entries as its ["meta"] object and a windowed
      {!Hotness} summary as its ["hotness"] object. *)
  val metrics_json : unit -> string

  (** The continuous-profiling store as one stable-schema JSON object
      ([omos.hotspots/1]): windowed per-key call counts, per-function
      histograms, first-call order, caller→callee transitions, and —
      for audited keys — the layout-locality audit. *)
  val hotspots_json : unit -> string
end
