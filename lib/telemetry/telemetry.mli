(** Structured tracing and metrics for the OMOS request path.

    One global collector: hierarchical spans (recorded only while
    enabled), plus always-on counters/gauges/histograms, and exporters
    for line-oriented JSON events and the Chrome [trace_event] format.
    Span timestamps come from a pluggable clock; the server points it at
    the simulated clock so traces are in simulated microseconds. *)

(** Attribute values attached to spans. *)
type value = S of string | I of int | F of float | B of bool

type attr = string * value

(** A completed (or open) span. [end_us] is [nan] while open; [parent]
    is [-1] for roots. *)
type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_us : float;
  mutable end_us : float;
  mutable attrs : attr list;
}

(** Span recording is off by default; metrics are always on. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Install the time source (microseconds). The default returns 0. *)
val set_clock : (unit -> float) -> unit

val now_us : unit -> float

module Span : sig
  type t

  (** The no-op span (what {!enter} returns while disabled). *)
  val null : t

  val enter : ?attrs:attr list -> string -> t
  val add_attr : t -> string -> value -> unit

  (** Close the span; children left open by an exception unwind are
      force-closed at the same timestamp. Idempotent. *)
  val exit : t -> unit
end

(** [with_span name f] runs [f] inside a span, closing it on exceptions
    too. *)
val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Completed spans, in completion order (children before parents). *)
val spans : unit -> span list

(** Completed spans with this name, oldest first. *)
val spans_named : string -> span list

module Counter : sig
  type t

  (** Interned by name: the same name always yields the same counter. *)
  val make : string -> t

  val incr : ?by:int -> t -> unit
  val value : t -> int

  (** Current value by name (0 if never incremented). *)
  val get : string -> int
end

module Gauge : sig
  val set : string -> float -> unit
  val get : string -> float option
end

module Histogram : sig
  type t

  (** Interned by name. Bounded memory: count/sum/min/max only. *)
  val make : string -> t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float
end

(** Zero every metric in place (interned handles stay valid) and drop
    all recorded spans. Clock and enabled flag are untouched. *)
val reset : unit -> unit

(** A small JSON reader/writer used by the exporters and by tests to
    validate exporter output. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val escape : string -> string
  val to_string : t -> string

  (** @raise Parse_error on malformed input. *)
  val parse : string -> t

  val member : string -> t -> t option
end

module Export : sig
  (** One JSON object per line: spans, then counters, gauges,
      histograms. *)
  val events_json : unit -> string

  (** Chrome [trace_event] JSON for about://tracing / Perfetto. *)
  val chrome : unit -> string

  (** The metrics registry as one stable-schema JSON object
      ([omos.metrics/1]) — the BENCH_*.json payload. *)
  val metrics_json : unit -> string
end
