(** Symbol selection by regular expression.

    "Module operations typically take a regular expression as a
    specification of the symbols to select" (§3.3). Patterns follow
    [Str] syntax; as in the paper's examples ([^_malloc$]) the caller
    anchors explicitly — an unanchored pattern matches anywhere in the
    name. *)

type t = { pattern : string; re : Str.regexp }

let compile (pattern : string) : t = { pattern; re = Str.regexp pattern }

(** Non-raising form for static analysis: [Str.regexp] failures come
    back as [Error msg] instead of escaping as [Failure]. *)
let compile_res (pattern : string) : (t, string) result =
  match compile pattern with
  | s -> Ok s
  | exception Failure msg -> Error msg

let pattern (s : t) = s.pattern

(** Does the symbol name match (anywhere, unless the pattern anchors)? *)
let matches (s : t) (name : string) : bool =
  try
    ignore (Str.search_forward s.re name 0);
    true
  with Not_found -> false

(** Does any of the names match? The static selector question the
    lint analyzer asks ("is this operator dead?"). *)
let matches_any (s : t) (names : string list) : bool =
  List.exists (matches s) names

(** The subset of names that match, in input order. *)
let selected (s : t) (names : string list) : string list =
  List.filter (matches s) names

(** [rewrite s template name] — if [name] matches, substitute the whole
    match with [template] (which may use [\1]… group references) and
    return the rewritten name. *)
let rewrite (s : t) (template : string) (name : string) : string option =
  if matches s name then Some (Str.replace_first s.re template name) else None

(** Exact single-name replacement (no group references). *)
let replace_with (s : t) (replacement : string) (name : string) : string option =
  if matches s name then Some replacement else None
