(** Symbol selection by regular expression (paper §3.3: "Module
    operations typically take a regular expression as a specification
    of the symbols to select"). Patterns follow [Str] syntax; anchor
    explicitly, as in the paper's [^_malloc$]. *)

type t

val compile : string -> t

(** Non-raising {!compile} for static analysis: [Str.regexp] failures
    come back as [Error msg] instead of escaping as [Failure]. *)
val compile_res : string -> (t, string) result

val pattern : t -> string

(** Does the symbol name match (anywhere, unless the pattern anchors)? *)
val matches : t -> string -> bool

(** Does any of the names match? The static selector question the lint
    analyzer asks ("is this operator dead?"). *)
val matches_any : t -> string list -> bool

(** The subset of names that match, in input order. *)
val selected : t -> string list -> string list

(** If the name matches, substitute the whole match with [template]
    ([\1]… group references allowed) and return the rewritten name. *)
val rewrite : t -> string -> string -> string option

(** Exact single-name replacement (no group references). *)
val replace_with : t -> string -> string -> string option
