(** The Jigsaw module operators (paper §3.3, after Bracha & Lindstrom).

    A module is an ordered collection of object-file fragments forming
    one symbol namespace. Every operator is non-destructive: it returns
    a new module whose fragments are fresh view layers over the same
    section bytes. Binding semantics at link time: a fragment's
    references resolve to its own definitions first, then to exported
    definitions anywhere in the final merge. *)

(** Raised on namespace violations (e.g. duplicate global definitions
    in a [merge]). *)
exception Module_error of string

type t = { label : string; fragments : Sof.View.t list }

(** Build a module from views. *)
val v : ?label:string -> Sof.View.t list -> t

val of_object : Sof.Object_file.t -> t
val of_objects : ?label:string -> Sof.Object_file.t list -> t

(** The module's fragments, materialized. *)
val fragments : t -> Sof.Object_file.t list

val label : t -> string

(** Names exported by the module (sorted, deduplicated). *)
val exports : t -> string list

(** Names referenced by the module but defined nowhere inside it. *)
val undefined : t -> string list

(** Flatten the module into a single relocatable object (partial
    link) — what gets cached as a library implementation. *)
val to_object : ?name:string -> t -> Sof.Object_file.t

(** [merge a b] binds the symbol definitions found in one operand to
    the references found in the other. Multiple {e global} definitions
    of a symbol constitute an error (weak definitions coexist). *)
val merge : t -> t -> t

(** [merge_list ms] left-folds {!merge}; fails on an empty list. *)
val merge_list : t list -> t

(** [restrict sel m] virtualizes the selected bindings: definitions are
    removed, references to them become (or stay) unbound. *)
val restrict : Select.t -> t -> t

(** [project sel m] is the complement of {!restrict}: virtualize all
    {e but} the selected bindings. *)
val project : Select.t -> t -> t

(** [override a b] merges, resolving conflicting definitions in favour
    of [b]: [a]'s conflicting definitions are virtualized first, so
    [a]'s references rebind to [b]'s implementations — the
    inheritance-style rebinding of Jigsaw. *)
val override : t -> t -> t

(** [copy_as sel new_name m] duplicates the value of the selected
    definition(s) under a new name ([new_name] may use [\1]-style group
    references against [sel]). *)
val copy_as : Select.t -> string -> t -> t

(** [freeze sel m] makes the current binding of the selected symbols
    permanent: intra-module references can no longer be rebound by a
    later [override]/[restrict], while the public definition remains
    exported. *)
val freeze : Select.t -> t -> t

(** [hide sel m] removes the selected definitions from the exported
    symbol table, freezing internal references to them in the
    process. *)
val hide : Select.t -> t -> t

(** [show sel m] hides all but the selected definitions. *)
val show : Select.t -> t -> t

(** Which side of the namespace {!rename} rewrites — the paper's §10
    "discrimination between symbol references and definitions". *)
type rename_scope = Defs_only | Refs_only | Both

(** [rename ?scope sel template m] systematically changes names in the
    operand symbol table. Names may be references, definitions, or
    both (the default). *)
val rename : ?scope:rename_scope -> Select.t -> string -> t -> t

(** The current value of the private freeze/hide mangling counter
    (monotone, process-global). The symbol-flow analyzer snapshots it
    to predict the exact [n$frzI]/[n$hidI] alias names the next
    evaluation will mint. *)
val gensym_current : unit -> int

(** Advance the mangling counter by [n] ids without minting any name.
    Used by subtree reuse: skipping a memoized subtree's draws keeps
    every later freeze/hide minting exactly the aliases a from-scratch
    evaluation would. [n <= 0] is a no-op. *)
val gensym_skip : int -> unit

(** Set the mangling counter outright. For differential harnesses only
    (two runs aligned to a common baseline mint comparable aliases);
    never call while an evaluation is in flight. *)
val gensym_set : int -> unit

(** [initializers m] generates the static-initializer driver for the
    constructors found in the module (the paper's C++ support): a
    global [__init] routine calling each registered constructor in
    order, overriding the weak default provided by crt0. *)
val initializers : t -> t
