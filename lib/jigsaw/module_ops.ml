(** The Jigsaw module operators (paper §3.3, after Bracha & Lindstrom).

    "Conceptually, a module is a self-referential naming scope. Module
    operations operate on and modify the symbol bindings in modules. The
    modified bindings define the inheritance relationships between the
    component objects."

    A module here is an ordered list of SOF {!Sof.View.t}s. Every
    operator is non-destructive: it returns a new module whose fragments
    are new view layers over the same section bytes (the paper's cheap
    "views"). Binding semantics at link time: a fragment's references
    resolve to its own definitions first, then to exported definitions
    anywhere in the final merge — so making a binding {e permanent}
    (freeze/hide) is implemented by renaming both definition and
    references to a fresh private name no later operation can touch. *)

exception Module_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Module_error s)) fmt

(* Every operator runs inside a "jigsaw.<op>" span and bumps the shared
   operator counter. *)
let tm_ops = Telemetry.Counter.make "jigsaw.ops"

let traced (op : string) (f : unit -> 'a) : 'a =
  Telemetry.Counter.incr tm_ops;
  Telemetry.with_span ("jigsaw." ^ op) f

(* Shorthand for the provenance journal: every call site below is
   gated, so disabled provenance costs one flag test per operator. *)
let prov () = Telemetry.Provenance.is_enabled ()

type t = { label : string; fragments : Sof.View.t list }

let v ?(label = "<module>") (fragments : Sof.View.t list) : t = { label; fragments }

let of_object (o : Sof.Object_file.t) : t =
  { label = o.Sof.Object_file.name; fragments = [ Sof.View.of_object o ] }

let of_objects ?(label = "<module>") (os : Sof.Object_file.t list) : t =
  { label; fragments = List.map Sof.View.of_object os }

let fragments (m : t) : Sof.Object_file.t list =
  List.map Sof.View.materialize m.fragments

let label (m : t) = m.label

(** Names exported by the module. *)
let exports (m : t) : string list =
  List.sort_uniq compare
    (List.concat_map
       (fun o -> List.map (fun (s : Sof.Symbol.t) -> s.name) (Sof.Object_file.exported o))
       (fragments m))

(** Names referenced by the module but defined nowhere inside it. *)
let undefined (m : t) : string list =
  let frags = fragments m in
  let defined = Hashtbl.create 64 in
  List.iter
    (fun o ->
      List.iter
        (fun (s : Sof.Symbol.t) -> Hashtbl.replace defined s.Sof.Symbol.name ())
        (Sof.Object_file.exported o))
    frags;
  List.sort_uniq compare
    (List.concat_map
       (fun o -> List.filter (fun n -> not (Hashtbl.mem defined n))
                   (Sof.Object_file.undefined o))
       frags)

(** Flatten the module into a single relocatable object (partial link) —
    what gets cached as a library implementation. *)
let to_object ?name (m : t) : Sof.Object_file.t =
  let name = Option.value name ~default:m.label in
  Linker.Link.combine ~name (fragments m)

(* Map every fragment through a view-op generator. *)
let map_views (m : t) (f : Sof.View.t -> Sof.View.t) : t =
  { m with fragments = List.map f m.fragments }

let push_all (m : t) (op : Sof.View.op) : t =
  map_views m (fun v -> Sof.View.push v op)

(* Exported definition names per fragment, for conflict detection. *)
let exported_names_of_frag (o : Sof.Object_file.t) : string list =
  List.map (fun (s : Sof.Symbol.t) -> s.name) (Sof.Object_file.exported o)

let global_names_of_frag (o : Sof.Object_file.t) : string list =
  List.filter_map
    (fun (s : Sof.Symbol.t) ->
      if Sof.Symbol.is_defined s && s.binding = Sof.Symbol.Global then Some s.name
      else None)
    o.Sof.Object_file.symbols

(* A defs-side rewrite that mints a global definition name already
   defined elsewhere in the module can never link — refuse it up front,
   the way [merge] refuses duplicate definitions. [minted] maps each
   current global definition name to the global names carried after the
   rewrite. *)
let check_minted_collisions ~op (minted : string -> string list) (m : t) : unit =
  let count tbl n =
    Hashtbl.replace tbl n (1 + Option.value (Hashtbl.find_opt tbl n) ~default:0)
  in
  let before = Hashtbl.create 32 and after = Hashtbl.create 32 in
  List.iter
    (fun o ->
      List.iter
        (fun n ->
          count before n;
          List.iter (count after) (minted n))
        (global_names_of_frag o))
    (fragments m);
  let collisions =
    Hashtbl.fold
      (fun n c acc ->
        let was = Option.value (Hashtbl.find_opt before n) ~default:0 in
        if c >= 2 && c > was then n :: acc else acc)
      after []
  in
  match List.sort_uniq compare collisions with
  | [] -> ()
  | n :: _ -> fail "%s: duplicate definition of %s minted by the rewrite" op n

(** [merge a b] binds the symbol definitions found in one operand to the
    references found in the other. Multiple {e global} definitions of a
    symbol constitute an error (weak definitions coexist). *)
let merge (a : t) (b : t) : t =
  traced "merge" @@ fun () ->
  let seen = Hashtbl.create 64 in
  List.iter
    (fun o ->
      List.iter
        (fun n ->
          match Hashtbl.find_opt seen n with
          | Some f1 -> fail "merge: duplicate definition of %s (in %s and %s)" n f1
                         o.Sof.Object_file.name
          | None -> Hashtbl.replace seen n o.Sof.Object_file.name)
        (global_names_of_frag o))
    (fragments a @ fragments b);
  let label = Printf.sprintf "(merge %s %s)" a.label b.label in
  if prov () then Telemetry.Provenance.record_op ~op:"merge" ~detail:label;
  { label; fragments = a.fragments @ b.fragments }

let merge_list (ms : t list) : t =
  match ms with
  | [] -> fail "merge: no operands"
  | [ m ] -> m
  | m :: rest -> List.fold_left merge m rest

(** [restrict sel m] virtualizes the selected bindings: definitions are
    removed, references to them become (or stay) unbound. *)
let restrict (sel : Select.t) (m : t) : t =
  traced "restrict" @@ fun () ->
  let label = Printf.sprintf "(restrict %s %s)" (Select.pattern sel) m.label in
  if prov () then begin
    Telemetry.Provenance.record_op ~op:"restrict" ~detail:label;
    List.iter
      (fun n ->
        if Select.matches sel n then
          Telemetry.Provenance.record_sym ~op:"restrict" ~symbol:n
            "definition virtualized (references left unbound)")
      (exports m)
  end;
  let m' = push_all m (Sof.View.Undefine (Select.matches sel)) in
  { m' with label }

(** [project sel m] is the complement: virtualize all {e but} the
    selected bindings. *)
let project (sel : Select.t) (m : t) : t =
  traced "project" @@ fun () ->
  let label = Printf.sprintf "(project %s %s)" (Select.pattern sel) m.label in
  if prov () then Telemetry.Provenance.record_op ~op:"project" ~detail:label;
  let m' = push_all m (Sof.View.Undefine (fun n -> not (Select.matches sel n))) in
  { m' with label }

(** [override a b] merges, resolving conflicting definitions in favour
    of [b]: [a]'s conflicting definitions are virtualized first, so
    [a]'s references rebind to [b]'s implementations. *)
let override (a : t) (b : t) : t =
  traced "override" @@ fun () ->
  (* name -> defining fragment of [b], for conflict detection and for
     naming the interposition winner in the journal *)
  let b_exports : (string, string) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun o ->
      List.iter
        (fun n -> Hashtbl.replace b_exports n o.Sof.Object_file.name)
        (exported_names_of_frag o))
    (fragments b);
  let label = Printf.sprintf "(override %s %s)" a.label b.label in
  if prov () then begin
    Telemetry.Provenance.record_op ~op:"override" ~detail:label;
    (* [a]'s definitions that [b] shadows: the interposition
       winners/losers the paper's interposition examples are about *)
    List.iter
      (fun o ->
        List.iter
          (fun n ->
            match Hashtbl.find_opt b_exports n with
            | Some winner ->
                Telemetry.Provenance.record_interpose ~symbol:n ~winner
                  ~loser:o.Sof.Object_file.name ~how:"override";
                Telemetry.Provenance.record_sym ~op:"override" ~symbol:n
                  (Printf.sprintf "definition from %s replaces %s" winner
                     o.Sof.Object_file.name)
            | None -> ())
          (exported_names_of_frag o))
      (fragments a)
  end;
  let a' = push_all a (Sof.View.Undefine (Hashtbl.mem b_exports)) in
  let merged = merge a' b in
  { merged with label }

(** [copy_as sel new_name m] duplicates the value of the selected
    definition(s) under a new name ([new_name] may use [\1]-style group
    references against [sel]). *)
let copy_as (sel : Select.t) (new_name : string) (m : t) : t =
  traced "copy_as" @@ fun () ->
  check_minted_collisions ~op:"copy_as"
    (fun n ->
      match Select.rewrite sel new_name n with
      | Some n' -> [ n; n' ]
      | None -> [ n ])
    m;
  let label =
    Printf.sprintf "(copy_as %s %s %s)" (Select.pattern sel) new_name m.label
  in
  if prov () then begin
    Telemetry.Provenance.record_op ~op:"copy_as" ~detail:label;
    let map = Select.rewrite sel new_name in
    List.iter
      (fun n ->
        match map n with
        | Some n' ->
            Telemetry.Provenance.record_sym ~op:"copy_as" ~symbol:n' ~prior:n
              (Printf.sprintf "copied from %s" n)
        | None -> ())
      (exports m)
  end;
  let m' = push_all m (Sof.View.Copy_defs (Select.rewrite sel new_name)) in
  { m' with label }

(* Fresh-name generation for freeze/hide manglings. *)
let gensym_counter = ref 0

let gensym () =
  incr gensym_counter;
  !gensym_counter

(** The current value of the freeze/hide mangling counter. The symbol-
    flow analyzer snapshots it to predict the exact [n$frzI]/[n$hidI]
    alias names the next evaluation will mint. *)
let gensym_current () = !gensym_counter

(** Advance the mangling counter by [n] ids without minting any name.
    Subtree reuse skips the operators of a memoized subtree; skipping
    the ids that subtree would have drawn keeps every {e later}
    freeze/hide minting exactly the aliases a from-scratch evaluation
    would, so partial reuse stays byte-identical downstream. *)
let gensym_skip (n : int) : unit =
  if n > 0 then gensym_counter := !gensym_counter + n

(** Set the mangling counter outright (differential harnesses align
    two runs to a common baseline so both mint comparable aliases). *)
let gensym_set (n : int) : unit = gensym_counter := n

(* Shared machinery of freeze/hide: rename all references to the
   selected exported names to a fresh private alias; [keep_public]
   decides whether the public definition survives (freeze) or is
   renamed away (hide). *)
let freeze_like ~keep_public (sel : Select.t) (m : t) : t =
  let id = gensym () in
  let selected = List.filter (Select.matches sel) (exports m) in
  if selected = [] then m
  else begin
    let alias = Hashtbl.create 8 in
    List.iter
      (fun n -> Hashtbl.replace alias n (Printf.sprintf "%s$%s%d" n
                                           (if keep_public then "frz" else "hid") id))
      selected;
    let ref_map n = Hashtbl.find_opt alias n in
    let m = push_all m (Sof.View.Rename_refs ref_map) in
    if keep_public then push_all m (Sof.View.Copy_defs ref_map)
    else push_all m (Sof.View.Rename_defs ref_map)
  end

(** [freeze sel m] makes the current binding of the selected symbols
    permanent: intra-module references can no longer be rebound by
    later [override]/[restrict], while the public definition remains
    exported. *)
(* Journal the exported names an operator affected. *)
let record_selected ~op ~action (sel : Select.t) (m : t) : unit =
  if prov () then
    List.iter
      (fun n ->
        if Select.matches sel n then
          Telemetry.Provenance.record_sym ~op ~symbol:n action)
      (exports m)

let freeze (sel : Select.t) (m : t) : t =
  traced "freeze" @@ fun () ->
  let label = Printf.sprintf "(freeze %s %s)" (Select.pattern sel) m.label in
  if prov () then Telemetry.Provenance.record_op ~op:"freeze" ~detail:label;
  record_selected ~op:"freeze" ~action:"binding made permanent (still exported)"
    sel m;
  let m' = freeze_like ~keep_public:true sel m in
  { m' with label }

(** [hide sel m] removes the selected definitions from the exported
    symbol table, freezing internal references to them in the process. *)
let hide (sel : Select.t) (m : t) : t =
  traced "hide" @@ fun () ->
  let label = Printf.sprintf "(hide %s %s)" (Select.pattern sel) m.label in
  if prov () then Telemetry.Provenance.record_op ~op:"hide" ~detail:label;
  record_selected ~op:"hide"
    ~action:"definition hidden under a private alias" sel m;
  let m' = freeze_like ~keep_public:false sel m in
  { m' with label }

(** [show sel m] hides all but the selected definitions. *)
let show (sel : Select.t) (m : t) : t =
  traced "show" @@ fun () ->
  let label = Printf.sprintf "(show %s %s)" (Select.pattern sel) m.label in
  if prov () then Telemetry.Provenance.record_op ~op:"show" ~detail:label;
  let keep = Select.matches sel in
  let victims = List.filter (fun n -> not (keep n)) (exports m) in
  if prov () then
    List.iter
      (fun n ->
        Telemetry.Provenance.record_sym ~op:"show" ~symbol:n
          "definition hidden under a private alias")
      victims;
  let m' =
    List.fold_left
      (fun acc n -> freeze_like ~keep_public:false (Select.compile ("^" ^ Str.quote n ^ "$")) acc)
      m victims
  in
  { m' with label }

(** Which side of the namespace [rename] rewrites. *)
type rename_scope = Defs_only | Refs_only | Both

(** [rename sel template m] systematically changes names in the operand
    symbol table. Names may be references, definitions, or both. *)
let rename ?(scope = Both) (sel : Select.t) (template : string) (m : t) : t =
  traced "rename" @@ fun () ->
  let map = Select.rewrite sel template in
  if scope <> Refs_only then
    check_minted_collisions ~op:"rename"
      (fun n -> [ Option.value (map n) ~default:n ])
      m;
  let label =
    Printf.sprintf "(rename %s %s %s)" (Select.pattern sel) template m.label
  in
  if prov () then begin
    Telemetry.Provenance.record_op ~op:"rename" ~detail:label;
    (* journal under the *new* name with [prior] pointing back, so a
       query for the exported name follows the rename chain *)
    if scope <> Refs_only then
      List.iter
        (fun n ->
          match map n with
          | Some n' when n' <> n ->
              Telemetry.Provenance.record_sym ~op:"rename" ~symbol:n' ~prior:n
                (Printf.sprintf "renamed from %s" n)
          | _ -> ())
        (exports m)
  end;
  let m' =
    match scope with
    | Defs_only -> push_all m (Sof.View.Rename_defs map)
    | Refs_only -> push_all m (Sof.View.Rename_refs map)
    | Both ->
        push_all (push_all m (Sof.View.Rename_defs map)) (Sof.View.Rename_refs map)
  in
  { m' with label }

(** [initializers m] generates the static-initializer driver for the
    constructors found in the module (the paper's C++ support): a
    global [__init] routine calling each registered constructor in
    order. The synthesized definition is merged in, overriding the weak
    default provided by crt0. *)
let initializers (m : t) : t =
  traced "initializers" @@ fun () ->
  if prov () then
    Telemetry.Provenance.record_op ~op:"initializers"
      ~detail:(Printf.sprintf "(initializers %s)" m.label);
  let ctors = List.concat_map (fun o -> o.Sof.Object_file.ctors) (fragments m) in
  let a = Sof.Asm.create "(initializers)" in
  Sof.Asm.label a "__init";
  (* save ra across the constructor calls *)
  Sof.Asm.instrs a
    [ Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, -4l);
      Svm.Isa.St (Svm.Isa.reg_sp, Svm.Isa.reg_ra, 0l) ];
  List.iter (fun c -> Sof.Asm.call a c) ctors;
  Sof.Asm.instrs a
    [ Svm.Isa.Ld (Svm.Isa.reg_ra, Svm.Isa.reg_sp, 0l);
      Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, 4l);
      Svm.Isa.Ret ];
  let init_obj = Sof.Asm.finish a in
  let m' = override m (of_object init_obj) in
  { m' with label = Printf.sprintf "(initializers %s)" m.label }
