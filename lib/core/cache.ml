(** The image cache.

    "OMOS treats executable images as a cache, translating from more
    expressive forms (e.g., .o's, or source modules) as necessary. By
    treating executables as a cache, OMOS avoids unnecessary repetition
    of work."

    Entries are keyed by the construction digest (meta-object graph +
    specialization); several entries may exist per key when address
    conflicts forced alternate placements — the disk-consumption
    concern the paper flags. Each entry carries its serialized size so
    the cache can report disk use, and hit/miss counters feed the
    caching experiment (E3). *)

(* Global telemetry: a process hosts one server cache at a time, so
   these track the per-cache counts below one-for-one. *)
let tm_hits = Telemetry.Counter.make "cache.hits"
let tm_misses = Telemetry.Counter.make "cache.misses"
let tm_insertions = Telemetry.Counter.make "cache.insertions"
let tm_evictions = Telemetry.Counter.make "cache.evictions"
let tm_entry_bytes = Telemetry.Histogram.make "cache.entry_bytes"
let tm_memo_hits = Telemetry.Counter.make "cache.memo_hits"
let tm_memo_insertions = Telemetry.Counter.make "cache.memo_insertions"
let tm_memo_evictions = Telemetry.Counter.make "cache.memo_evictions"

(** Residency of an entry relative to the server's arenas: [Placed]
    entries hold live text/data reservations, [Evicted] entries have
    lost them (a demoted candidate awaiting revival), [Static] entries
    live at fixed client bases and never claim arena ranges. The
    {!Residency} layer owns the transitions. *)
type residency = Placed | Evicted | Static

let residency_to_string = function
  | Placed -> "placed"
  | Evicted -> "evicted"
  | Static -> "static"

type entry = {
  key : string; (* construction digest *)
  image : Linker.Image.t;
  text_base : int;
  data_base : int;
  disk_bytes : int;
  mutable hits : int;
  mutable residency : residency;
  mutable provenance : Telemetry.Provenance.t option;
      (* how this image was built; served as-is on hits *)
}

(** One memoized subtree materialization: the evaluated module (and
    its accumulated constraints) keyed by {!Analysis.Impact} interface
    digest, plus the number of mangling ids the subtree's evaluation
    consumed — a reuse must skip that many so downstream freeze/hide
    operators keep minting the aliases a from-scratch build would. *)
type memo_entry = {
  m_digest : string;
  m_result : Blueprint.Mgraph.result;
  m_gensym : int;
  mutable m_hits : int;
}

type t = {
  entries : (string, entry list ref) Hashtbl.t;
  memos : (string, memo_entry) Hashtbl.t;
      (* per-node memo table, keyed by interface digest *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable insertions : int;
  mutable generation : int; (* bumped on every insertion and eviction *)
}

let create () : t =
  {
    entries = Hashtbl.create 32;
    memos = Hashtbl.create 64;
    hit_count = 0;
    miss_count = 0;
    insertions = 0;
    generation = 0;
  }

(** Structural age of the cache: how many insertions and evictions it
    has seen. Recorded into each entry's provenance at build time, so
    [ofe explain] can say which cache era an image came from. *)
let generation (t : t) : int = t.generation

(** All cached placements of a construction. *)
let candidates (t : t) (key : string) : entry list =
  match Hashtbl.find_opt t.entries key with Some r -> !r | None -> []

(** [find t key ~acceptable] returns a cached image whose placement
    satisfies [acceptable], counting a hit or miss. *)
let find (t : t) (key : string) ~(acceptable : entry -> bool) : entry option =
  match List.find_opt acceptable (candidates t key) with
  | Some e ->
      e.hits <- e.hits + 1;
      t.hit_count <- t.hit_count + 1;
      Telemetry.Counter.incr tm_hits;
      Some e
  | None ->
      t.miss_count <- t.miss_count + 1;
      Telemetry.Counter.incr tm_misses;
      None

(** Record a freshly built image. *)
let insert (t : t) ~(key : string) ~(text_base : int) ~(data_base : int)
    ?(residency = Static) ?provenance (image : Linker.Image.t) : entry =
  let e =
    {
      key;
      image;
      text_base;
      data_base;
      disk_bytes = Bytes.length (Linker.Image.encode image);
      hits = 0;
      residency;
      provenance;
    }
  in
  (match Hashtbl.find_opt t.entries key with
  | Some r -> r := e :: !r
  | None -> Hashtbl.replace t.entries key (ref [ e ]));
  t.insertions <- t.insertions + 1;
  t.generation <- t.generation + 1;
  Telemetry.Counter.incr tm_insertions;
  Telemetry.Histogram.observe tm_entry_bytes (float_of_int e.disk_bytes);
  e

(** Drop every placement of a construction (e.g. after its sources
    changed). *)
let invalidate (t : t) (key : string) : unit = Hashtbl.remove t.entries key

(* -- per-node memo table ---------------------------------------------------- *)

(** [memo_find t digest] returns the memoized materialization of a
    subtree, counting a memo hit. No miss counter: the eval path probes
    every node, so misses are the common, uninteresting case. *)
let memo_find (t : t) (digest : string) : memo_entry option =
  match Hashtbl.find_opt t.memos digest with
  | Some e ->
      e.m_hits <- e.m_hits + 1;
      Telemetry.Counter.incr tm_memo_hits;
      Some e
  | None -> None

let memo_mem (t : t) (digest : string) : bool = Hashtbl.mem t.memos digest

let memo_insert (t : t) ~(digest : string) ~(gensym : int)
    (result : Blueprint.Mgraph.result) : unit =
  if not (Hashtbl.mem t.memos digest) then begin
    Hashtbl.replace t.memos digest
      { m_digest = digest; m_result = result; m_gensym = gensym; m_hits = 0 };
    Telemetry.Counter.incr tm_memo_insertions
  end

let memo_count (t : t) : int = Hashtbl.length t.memos

(* The memo table is derived data: entries reference module views that
   may share structure with cached images, so whenever the image cache
   sheds weight the memo table is dropped wholesale rather than tracing
   which subtrees fed the victims. Conservative, always sound — the
   next build re-materializes and re-memoizes what it actually needs. *)
let memo_clear (t : t) : unit =
  let n = Hashtbl.length t.memos in
  if n > 0 then begin
    Hashtbl.reset t.memos;
    Telemetry.Counter.incr tm_memo_evictions ~by:n
  end

(** Every live entry, across all keys and placements. *)
let to_list (t : t) : entry list =
  Hashtbl.fold (fun _ r acc -> List.rev_append !r acc) t.entries []

let clear (t : t) : unit =
  Hashtbl.reset t.entries;
  memo_clear t;
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.insertions <- 0

(** [evict_to_budget t ~bytes] trims the cache to at most [bytes] of
    serialized image data, dropping the least-used entries first (and
    among equally-used ones, alternate placements before primaries).
    Addresses the paper's §4.1 concern: "disk space for caching multiple
    versions of large libraries could be significant". Returns the
    evicted entries so the server can release their arena
    reservations. *)
let evict_to_budget (t : t) ~(bytes : int) : entry list =
  let all =
    (* a key's list is newest-first, so its primary (first-built)
       placement is the last element; tag each entry accordingly *)
    Hashtbl.fold
      (fun _ r acc ->
        match List.rev !r with
        | [] -> acc
        | primary :: alternates ->
            ((primary, true) :: List.map (fun e -> (e, false)) alternates) @ acc)
      t.entries []
  in
  let total = List.fold_left (fun a (e, _) -> a + e.disk_bytes) 0 all in
  if total <= bytes then []
  else begin
    (* least hits first; among equal hits, alternates before primaries *)
    let by_use =
      List.sort
        (fun ((a : entry), a_primary) ((b : entry), b_primary) ->
          match compare a.hits b.hits with
          | 0 -> compare a_primary b_primary
          | c -> c)
        all
    in
    let victims = ref [] in
    let excess = ref (total - bytes) in
    List.iter
      (fun (e, _) ->
        if !excess > 0 then begin
          victims := e :: !victims;
          excess := !excess - e.disk_bytes
        end)
      by_use;
    let victim_set = !victims in
    Hashtbl.iter
      (fun _ r -> r := List.filter (fun e -> not (List.memq e victim_set)) !r)
      t.entries;
    (* drop now-empty keys *)
    let empty =
      Hashtbl.fold (fun k r acc -> if !r = [] then k :: acc else acc) t.entries []
    in
    List.iter (Hashtbl.remove t.entries) empty;
    t.generation <- t.generation + List.length victim_set;
    Telemetry.Counter.incr tm_evictions ~by:(List.length victim_set);
    (* derived data follows the images it was derived from *)
    if victim_set <> [] then memo_clear t;
    victim_set
  end

type stats = {
  hits : int;
  misses : int;
  entries : int; (* live entries, across all placements *)
  versions_max : int; (* worst-case placements of one construction *)
  disk_bytes_total : int;
}

let stats (t : t) : stats =
  let entries, versions_max, disk =
    Hashtbl.fold
      (fun _ r (n, vmax, disk) ->
        let l = List.length !r in
        ( n + l,
          max vmax l,
          disk + List.fold_left (fun a e -> a + e.disk_bytes) 0 !r ))
      t.entries (0, 0, 0)
  in
  {
    hits = t.hit_count;
    misses = t.miss_count;
    entries;
    versions_max;
    disk_bytes_total = disk;
  }
