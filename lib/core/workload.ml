(** Deterministic multi-client workload driver (see workload.mli). *)

exception Spec_error of string

type spec = {
  clients : int;
  requests : int;
  seed : int;
  concurrency : int;
  metas : string list;
  mix : (string * int) list;
  evict_bytes : int;
  faults : Residency.faults option;
}

let default =
  {
    clients = 3;
    requests = 30;
    seed = 7;
    concurrency = 1;
    metas = [ "/demo/hello"; "/lib/libm"; "/lib/libl" ];
    mix = [ ("instantiate", 6); ("dynload", 2); ("evict", 1) ];
    evict_bytes = 4096;
    faults = None;
  }

let known_ops = [ "instantiate"; "dynload"; "evict" ]

let parse (text : string) : spec =
  let clients = ref default.clients in
  let requests = ref default.requests in
  let seed = ref default.seed in
  let concurrency = ref default.concurrency in
  let metas = ref [] in
  let mix = ref None in
  let evict_bytes = ref default.evict_bytes in
  let fault = ref None in
  let fault_field f =
    let cur = match !fault with Some x -> x | None -> Residency.no_faults in
    fault := Some (f cur)
  in
  List.iteri
    (fun lno line ->
      let err msg = raise (Spec_error (Printf.sprintf "line %d: %s" (lno + 1) msg)) in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let toks =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      in
      let int_of what s =
        match int_of_string_opt s with
        | Some n -> n
        | None -> err (what ^ ": not an integer: " ^ s)
      in
      let float_of what s =
        match float_of_string_opt s with
        | Some f -> f
        | None -> err (what ^ ": not a number: " ^ s)
      in
      match toks with
      | [] -> ()
      | [ "clients"; n ] -> clients := int_of "clients" n
      | [ "requests"; n ] -> requests := int_of "requests" n
      | [ "seed"; n ] -> seed := int_of "seed" n
      | [ "concurrency"; n ] -> concurrency := int_of "concurrency" n
      | [ "meta"; path ] -> metas := path :: !metas
      | [ "evict_bytes"; n ] ->
          let b = int_of "evict_bytes" n in
          if b < 0 then err ("evict_bytes must be >= 0: " ^ n);
          evict_bytes := b
      | [ "fault_seed"; n ] ->
          let n = int_of "fault_seed" n in
          fault_field (fun f -> { f with Residency.seed = n })
      | [ "fault"; name; rate ] -> (
          let r = float_of "fault rate" rate in
          if r < 0.0 || r > 1.0 then
            err ("fault rate must be in [0,1]: " ^ rate);
          match name with
          | "place_conflict" ->
              fault_field (fun f -> { f with Residency.place_conflict = r })
          | "evict_storm" ->
              fault_field (fun f -> { f with Residency.evict_storm = r })
          | "reserve_fail" ->
              fault_field (fun f -> { f with Residency.reserve_fail = r })
          | _ -> err ("unknown fault: " ^ name))
      | "mix" :: (_ :: _ as entries) ->
          if !mix <> None then err "duplicate mix line (mix may appear once)";
          let parsed =
            List.map
              (fun e ->
                match String.index_opt e '=' with
                | Some i ->
                    let name = String.sub e 0 i in
                    let ws = String.sub e (i + 1) (String.length e - i - 1) in
                    if not (List.mem name known_ops) then
                      err ("unknown op in mix: " ^ name);
                    let w = int_of "mix weight" ws in
                    if w <= 0 then err ("mix weight must be positive: " ^ e);
                    (name, w)
                | None -> err ("mix entries are op=weight, got: " ^ e))
              entries
          in
          List.iteri
            (fun i (name, _) ->
              if List.exists (fun (n, _) -> n = name) (List.filteri (fun j _ -> j < i) parsed)
              then err ("duplicate op in mix: " ^ name))
            parsed;
          mix := Some parsed
      | w :: _ -> err ("unknown directive: " ^ w))
    (String.split_on_char '\n' text);
  if !clients < 1 then raise (Spec_error "clients must be >= 1");
  if !requests < 0 then raise (Spec_error "requests must be >= 0");
  if !concurrency < 1 then raise (Spec_error "concurrency must be >= 1");
  {
    clients = !clients;
    requests = !requests;
    seed = !seed;
    concurrency = !concurrency;
    metas = (if !metas = [] then default.metas else List.rev !metas);
    mix = (match !mix with Some m -> m | None -> default.mix);
    evict_bytes = !evict_bytes;
    faults = !fault;
  }

let parse_file (path : string) : spec =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

type event = {
  w_req : int;
  w_client : int;
  w_op : string;
  w_target : string;
  w_hit : bool option;
  w_cost_us : float;
  w_wait_us : float;
}

let run ?(setup = fun (_ : World.t) -> ()) ?(on_event = fun (_ : event) -> ())
    (spec : spec) : event list =
  let w =
    match spec.faults with
    | Some f -> World.create ~faults:f ()
    | None -> World.create ()
  in
  setup w;
  let s = w.World.server in
  let k = Server.kernel s in
  let clock = k.Simos.Kernel.clock in
  (* one dynload host process per client, built before the telemetry
     reset so the setup builds don't pollute the request stream *)
  let dl = Dynload.create s in
  let hosts =
    Array.init spec.clients (fun i ->
        let name = Printf.sprintf "wl-host-%d" i in
        let main =
          Minic.Driver.compile
            ~name:(Printf.sprintf "/obj/%s.o" name)
            "int main() { return 0; }"
        in
        let b =
          Server.build s
            (Server.static ~name
               (Schemes.graph_of_objs [ Workloads.Crt0.obj (); main ]))
        in
        let p = Boot.integrated_exec s (Server.loadable_entry [ b ]) ~args:[ name ] in
        (p, b.Server.entry.Cache.image))
  in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  (* xorshift32: small, pure, and byte-identical across runs *)
  let state = ref (if spec.seed = 0 then 0x9e3779b9 else spec.seed land 0xffffffff) in
  let rand_int n =
    let x = !state in
    let x = x lxor (x lsl 13) land 0xffffffff in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0xffffffff in
    state := x;
    x mod n
  in
  let total_weight = List.fold_left (fun a (_, wt) -> a + wt) 0 spec.mix in
  let pick_op () =
    let r = rand_int total_weight in
    let rec go acc = function
      | [] -> assert false
      | (name, wt) :: rest -> if r < acc + wt then name else go (acc + wt) rest
    in
    go 0 spec.mix
  in
  (* admission control: only raise the configured queue limit when the
     pipeline depth actually needs it — never lower it — and restore
     the configured value when the run ends, so a scenario can't
     silently mask Overload for whoever uses the server next *)
  let orig_limit = Server.queue_limit s in
  if spec.concurrency > orig_limit then Server.set_queue_limit s spec.concurrency;
  let restore () = Server.set_queue_limit s orig_limit in
  let events = ref [] in
  let emit ev =
    on_event ev;
    events := ev :: !events
  in
  (* instantiates submitted but not yet delivered, submission order *)
  let pending = ref [] in
  (* barrier: complete every in-flight instantiate, emitting its event.
     Submission order is delivery order, so the streamed output is the
     same whether requests overlapped or not. *)
  let flush () =
    match List.rev !pending with
    | [] -> ()
    | batch ->
        pending := [];
        Server.drain s;
        List.iter
          (fun (req_id, client, meta, ticket) ->
            let r = Server.await s ticket in
            emit
              {
                w_req = req_id;
                w_client = client;
                w_op = "instantiate";
                w_target = meta;
                w_hit = Some r.Server.cache_hit;
                w_cost_us = r.Server.sim_us;
                w_wait_us =
                  r.Server.queue_us +. r.Server.batch_us
                  +. r.Server.coalesce_us;
              })
          batch
  in
  Fun.protect ~finally:restore @@ fun () ->
  for _ = 1 to spec.requests do
    let client = rand_int spec.clients in
    Telemetry.Request.set_client client;
    let req_id = Telemetry.Request.last_id () + 1 in
    match pick_op () with
    | "instantiate" ->
        let meta = List.nth spec.metas (rand_int (List.length spec.metas)) in
        if spec.concurrency > 1 then begin
          let ticket = Server.submit s (Server.library meta) in
          pending := (req_id, client, meta, ticket) :: !pending;
          if List.length !pending >= spec.concurrency then flush ()
        end
        else
          let r = Server.instantiate s (Server.library meta) in
          emit
            {
              w_req = req_id;
              w_client = client;
              w_op = "instantiate";
              w_target = meta;
              w_hit = Some r.Server.cache_hit;
              w_cost_us = r.Server.sim_us;
              w_wait_us =
                r.Server.queue_us +. r.Server.batch_us +. r.Server.coalesce_us;
            }
    | ("dynload" | "evict") as op ->
        (* dynload/unload/evict mutate state the pipeline reads — they
           act as barriers *)
        flush ();
        let before = Simos.Clock.elapsed clock in
        let op_name, target =
          match op with
          | "dynload" -> (
              let p, img = hosts.(client) in
              match Dynload.loaded dl p with
              | [] ->
                  ignore
                    (Dynload.load dl p ~client_images:[ img ]
                       ~graph:(Blueprint.Mgraph.parse "(merge /demo/impl.o)")
                       ~symbols:[ "greet" ]);
                  ("dynload", "/demo/impl.o")
              | last :: _ ->
                  Dynload.unload dl p last;
                  ("unload", last.Linker.Image.name))
          | _ ->
              let n = Server.evict_to_budget s ~bytes:spec.evict_bytes in
              ("evict", Printf.sprintf "budget=%d evicted=%d" spec.evict_bytes n)
        in
        emit
          {
            w_req = req_id;
            w_client = client;
            w_op = op_name;
            w_target = target;
            w_hit = None;
            w_cost_us = Simos.Clock.elapsed clock -. before;
            w_wait_us = 0.0;
          }
    | op -> raise (Spec_error ("unknown op in mix: " ^ op))
  done;
  flush ();
  List.rev !events
