(** The image cache (paper §3.1: "OMOS treats executable images as a
    cache … By treating executables as a cache, OMOS avoids unnecessary
    repetition of work").

    Entries are keyed by the construction digest (meta-object graph +
    specialization); several entries may exist per key when address
    conflicts forced alternate placements. *)

(** Residency of an entry relative to the server's address-space
    arenas: [Placed] entries hold live text/data reservations, [Evicted]
    entries have lost them and must be re-placed before mapping,
    [Static] entries live at fixed client bases and never claim arena
    ranges. Transitions go through {!Residency}. *)
type residency = Placed | Evicted | Static

val residency_to_string : residency -> string

type entry = {
  key : string;  (** construction digest *)
  image : Linker.Image.t;
  text_base : int;
  data_base : int;
  disk_bytes : int;  (** serialized size (disk-consumption accounting) *)
  mutable hits : int;
  mutable residency : residency;
  mutable provenance : Telemetry.Provenance.t option;
      (** binding journal of the build that produced this image; hits
          serve it as-is, without relinking *)
}

type t

val create : unit -> t

(** Structural age: insertions + evictions seen so far. *)
val generation : t -> int

(** All cached placements of a construction (no hit/miss counting). *)
val candidates : t -> string -> entry list

(** [find t key ~acceptable] returns a cached image whose placement
    satisfies [acceptable], counting a hit or miss. *)
val find : t -> string -> acceptable:(entry -> bool) -> entry option

(** Record a freshly built image ([residency] defaults to [Static];
    the residency layer promotes arena-placed entries). *)
val insert :
  t ->
  key:string ->
  text_base:int ->
  data_base:int ->
  ?residency:residency ->
  ?provenance:Telemetry.Provenance.t ->
  Linker.Image.t ->
  entry

(** Drop every placement of a construction (its sources changed). *)
val invalidate : t -> string -> unit

(** Every live entry, across all keys and placements. *)
val to_list : t -> entry list

val clear : t -> unit

(** [evict_to_budget t ~bytes] trims the cache to at most [bytes] of
    serialized image data, least-used entries first (and among
    equally-used ones, alternate placements before primaries). Returns
    the evicted entries so the caller can release their reservations. *)
val evict_to_budget : t -> bytes:int -> entry list

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** live entries, across all placements *)
  versions_max : int;  (** worst-case placements of one construction *)
  disk_bytes_total : int;
}

val stats : t -> stats
