(** The image cache (paper §3.1: "OMOS treats executable images as a
    cache … By treating executables as a cache, OMOS avoids unnecessary
    repetition of work").

    Entries are keyed by the construction digest (meta-object graph +
    specialization); several entries may exist per key when address
    conflicts forced alternate placements. *)

(** Residency of an entry relative to the server's address-space
    arenas: [Placed] entries hold live text/data reservations, [Evicted]
    entries have lost them and must be re-placed before mapping,
    [Static] entries live at fixed client bases and never claim arena
    ranges. Transitions go through {!Residency}. *)
type residency = Placed | Evicted | Static

val residency_to_string : residency -> string

type entry = {
  key : string;  (** construction digest *)
  image : Linker.Image.t;
  text_base : int;
  data_base : int;
  disk_bytes : int;  (** serialized size (disk-consumption accounting) *)
  mutable hits : int;
  mutable residency : residency;
  mutable provenance : Telemetry.Provenance.t option;
      (** binding journal of the build that produced this image; hits
          serve it as-is, without relinking *)
}

type t

val create : unit -> t

(** Structural age: insertions + evictions seen so far. *)
val generation : t -> int

(** All cached placements of a construction (no hit/miss counting). *)
val candidates : t -> string -> entry list

(** [find t key ~acceptable] returns a cached image whose placement
    satisfies [acceptable], counting a hit or miss. *)
val find : t -> string -> acceptable:(entry -> bool) -> entry option

(** Record a freshly built image ([residency] defaults to [Static];
    the residency layer promotes arena-placed entries). *)
val insert :
  t ->
  key:string ->
  text_base:int ->
  data_base:int ->
  ?residency:residency ->
  ?provenance:Telemetry.Provenance.t ->
  Linker.Image.t ->
  entry

(** Drop every placement of a construction (its sources changed). *)
val invalidate : t -> string -> unit

(** {1 Per-node memo table}

    Materialized subtree views keyed by {!Analysis.Impact} interface
    digest — the substrate of incremental relinking. The table is
    derived data: it is dropped wholesale whenever {!evict_to_budget}
    sheds any image, and by {!clear}. *)

type memo_entry = {
  m_digest : string;  (** interface digest (the memo key) *)
  m_result : Blueprint.Mgraph.result;  (** materialized views + prefs *)
  m_gensym : int;
      (** mangling ids the subtree's evaluation consumed; a reuse must
          skip that many ({!Jigsaw.Module_ops.gensym_skip}) so later
          freeze/hide operators mint from-scratch-identical aliases *)
  mutable m_hits : int;
}

(** Memoized materialization of a subtree, counting a memo hit. *)
val memo_find : t -> string -> memo_entry option

(** Membership without counting. *)
val memo_mem : t -> string -> bool

(** Idempotent: the first materialization of a digest wins. *)
val memo_insert :
  t -> digest:string -> gensym:int -> Blueprint.Mgraph.result -> unit

val memo_count : t -> int

(** Drop the whole memo table (counts the dropped entries as
    [cache.memo_evictions]). *)
val memo_clear : t -> unit

(** Every live entry, across all keys and placements. *)
val to_list : t -> entry list

val clear : t -> unit

(** [evict_to_budget t ~bytes] trims the cache to at most [bytes] of
    serialized image data, least-used entries first (and among
    equally-used ones, alternate placements before primaries). Returns
    the evicted entries so the caller can release their reservations. *)
val evict_to_budget : t -> bytes:int -> entry list

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** live entries, across all placements *)
  versions_max : int;  (** worst-case placements of one construction *)
  disk_bytes_total : int;
}

val stats : t -> stats
