(** Transparent program monitoring (paper §4.1, §6 and [14]).

    "OMOS does this by using module operations to extract the set of
    referenced routines and generate wrapper functions around each, to
    log entry and exit from the routine. The wrapper functions are
    interposed between each caller and the called routine."

    Given a module, {!monitored} produces a variant in which every
    exported function [f] is renamed away to a private name and a
    generated wrapper takes its place. Two wrapper shapes:

    - entry-only (default): a three-instruction trampoline that logs the
      call and tail-jumps to the real routine — zero stack disturbance;
    - entry+exit: a wrapper that keeps return addresses on a private
      shadow stack in client memory so it can log the return as well.

    Events arrive through the {!Simos.Syscall.omos_base}-range syscalls
    handled by {!attach}; the recorded call sequence feeds
    {!Reorder}. *)

let mon_enter = 120
let mon_exit = 121

type event = Enter of int | Exit of int

type trace = {
  names : string array; (* function id -> name *)
  mutable events : event list; (* reversed *)
  mutable stamps : (int * int) list; (* (client, request) per event, reversed *)
  mutable count : int;
}

let trace_events (t : trace) : event list = List.rev t.events

(** Events with the (client, request) attribution active when each was
    recorded — [(-1, -1)] outside any request. Chronological. *)
let stamped_events (t : trace) : (event * int * int) list =
  List.rev_map2
    (fun e (c, r) -> (e, c, r))
    t.events t.stamps

(** Function call sequence (ids), in call order. *)
let call_sequence (t : trace) : int list =
  List.filter_map (function Enter id -> Some id | Exit _ -> None) (trace_events t)

(** Names in order of first call. *)
let first_call_order (t : trace) : string list =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun id ->
      if Hashtbl.mem seen id then None
      else begin
        Hashtbl.replace seen id ();
        Some t.names.(id)
      end)
    (call_sequence t)

(* Wrapper generation. The real routine for id [i] is reached through
   the mangled name produced by the rename below. *)
let mangle name = name ^ "$mon$real"

let entry_only_wrappers (names : string list) : Sof.Object_file.t =
  let a = Sof.Asm.create "(monitor-wrappers)" in
  List.iteri
    (fun id name ->
      Sof.Asm.label a name;
      Sof.Asm.instr a (Svm.Isa.Movi (1, Int32.of_int id));
      Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int mon_enter));
      Sof.Asm.jmp_sym a (mangle name))
    names;
  Sof.Asm.finish a

(* Entry+exit wrappers: the caller's return address is parked on a
   shadow stack (the machine stack cannot be disturbed — callees find
   their arguments relative to sp). *)
let entry_exit_wrappers (names : string list) : Sof.Object_file.t =
  let a = Sof.Asm.create "(monitor-wrappers)" in
  let ra = Svm.Isa.reg_ra in
  List.iteri
    (fun id name ->
      Sof.Asm.label a name;
      (* push ra on the shadow stack *)
      Sof.Asm.lea a 12 "__mon_sp";
      Sof.Asm.instr a (Svm.Isa.Ld (11, 12, 0l));
      Sof.Asm.instr a (Svm.Isa.St (11, ra, 0l));
      Sof.Asm.instr a (Svm.Isa.Addi (11, 11, 4l));
      Sof.Asm.instr a (Svm.Isa.St (12, 11, 0l));
      (* log entry *)
      Sof.Asm.instr a (Svm.Isa.Movi (1, Int32.of_int id));
      Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int mon_enter));
      (* the real routine sees sp exactly as the caller left it *)
      Sof.Asm.call a (mangle name);
      (* log exit (r0 preserved: monitor syscalls do not write registers) *)
      Sof.Asm.instr a (Svm.Isa.Movi (1, Int32.of_int id));
      Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int mon_exit));
      (* pop ra and return to the original caller *)
      Sof.Asm.lea a 12 "__mon_sp";
      Sof.Asm.instr a (Svm.Isa.Ld (11, 12, 0l));
      Sof.Asm.instr a (Svm.Isa.Addi (11, 11, -4l));
      Sof.Asm.instr a (Svm.Isa.St (12, 11, 0l));
      Sof.Asm.instr a (Svm.Isa.Ld (ra, 11, 0l));
      Sof.Asm.instr a Svm.Isa.Ret)
    names;
  (* shadow stack: pointer word + 4 KB of depth *)
  Sof.Asm.data_label a "__mon_sp";
  Sof.Asm.data_word_sym a "__mon_stack";
  Sof.Asm.bss a "__mon_stack" 4096;
  Sof.Asm.finish a

(** [monitored m] — the monitoring transformation: every exported text
    function of [m] is wrapped. Returns the transformed module and the
    (empty) trace its wrappers will fill once {!attach}ed. *)
let monitored ?(exits = false) (m : Jigsaw.Module_ops.t) :
    Jigsaw.Module_ops.t * trace =
  (* exported functions only (data symbols cannot be wrapped) *)
  let frags = Jigsaw.Module_ops.fragments m in
  let is_function name =
    List.exists
      (fun o ->
        match Sof.Object_file.find_exported o name with
        | Some s -> s.Sof.Symbol.kind = Sof.Symbol.Text
        | None -> false)
      frags
  in
  let names = List.filter is_function (Jigsaw.Module_ops.exports m) in
  (* rename definitions only: internal references keep the public name
     and therefore also route through the wrappers — "interposed
     between each caller and the called routine" *)
  let renamed =
    List.fold_left
      (fun acc name ->
        Jigsaw.Module_ops.rename ~scope:Jigsaw.Module_ops.Defs_only
          (Jigsaw.Select.compile ("^" ^ Str.quote name ^ "$"))
          (mangle name) acc)
      m names
  in
  let wrappers = if exits then entry_exit_wrappers names else entry_only_wrappers names in
  let m' = Jigsaw.Module_ops.merge renamed (Jigsaw.Module_ops.of_object wrappers) in
  ( m',
    { names = Array.of_list names; events = []; stamps = []; count = 0 } )

(** Route the monitor syscalls of [trace] through the upcall registry.
    Each event costs a syscall (already charged by the kernel) — the
    monitoring overhead is real and visible in the measurements, as it
    was for OMOS. With [key] set, every function entry is also fed to
    the continuous hotness store ({!Telemetry.Hotness}) under that key,
    so the aggregate survives the trace itself. *)
let attach ?key (upcalls : Upcalls.t) (trace : trace) : unit =
  let record ~enter kind _k _p (cpu : Svm.Cpu.t) _n =
    let id = Int32.to_int (Svm.Cpu.get_reg cpu 1) in
    if id >= 0 && id < Array.length trace.names then begin
      trace.events <- kind id :: trace.events;
      trace.stamps <-
        (Telemetry.Request.current_client (), Telemetry.Request.current_request ())
        :: trace.stamps;
      trace.count <- trace.count + 1;
      if enter then
        match key with
        | Some k -> Telemetry.Hotness.record_call ~key:k trace.names.(id)
        | None -> ()
    end;
    Svm.Cpu.Sys_continue
  in
  Upcalls.register upcalls mon_enter (record ~enter:true (fun id -> Enter id));
  Upcalls.register upcalls mon_exit (record ~enter:false (fun id -> Exit id))
