(** The layout-locality auditor (paper §4.1, E1).

    Reordering pays off exactly when the routines a workload actually
    calls are scattered across the image's text pages. This module
    makes that gap measurable {e before} committing to a relink: replay
    a {!Monitor} trace against the image's actual fragment order and
    count the distinct text pages the traced working set touches, then
    compare against two references — the optimal packed layout (the
    called bytes packed contiguously from a page boundary: a lower
    bound no reordering can beat) and the layout {!Reorder} would
    produce from the same trace. The difference actual - optimal is
    the image's {e locality headroom} in pages; reordered - optimal is
    the residual a real reordering would leave.

    Audit results are recorded in {!Telemetry.Hotness} so they surface
    in health rows, SLO gates, and [omos.hotspots/1] exports. *)

(** Text ranges per exported function: [(name, (lo, hi))] byte offsets
    into the concatenated text of [frags], in fragment order. Within a
    fragment, a function extends from its symbol value to the next
    function's value (or the fragment's end) — the layout rule the
    linker itself applies. *)
let function_ranges (frags : Sof.Object_file.t list) :
    (string * (int * int)) list =
  let off = ref 0 in
  List.concat_map
    (fun (o : Sof.Object_file.t) ->
      let size = Bytes.length o.Sof.Object_file.text in
      let base = !off in
      off := !off + size;
      let fns =
        List.filter
          (fun (s : Sof.Symbol.t) ->
            Sof.Symbol.is_exported s && s.Sof.Symbol.kind = Sof.Symbol.Text)
          o.Sof.Object_file.symbols
        |> List.sort (fun (a : Sof.Symbol.t) (b : Sof.Symbol.t) ->
               compare a.Sof.Symbol.value b.Sof.Symbol.value)
      in
      let rec ranges = function
        | [] -> []
        | [ (s : Sof.Symbol.t) ] ->
            [ (s.Sof.Symbol.name, (base + s.Sof.Symbol.value, base + size)) ]
        | (s : Sof.Symbol.t) :: ((n : Sof.Symbol.t) :: _ as rest) ->
            (s.Sof.Symbol.name, (base + s.Sof.Symbol.value, base + n.Sof.Symbol.value))
            :: ranges rest
      in
      ranges fns)
    frags

(** Distinct text pages the functions in [names] occupy, given
    [ranges] from {!function_ranges}. *)
let distinct_pages (ranges : (string * (int * int)) list)
    (names : string list) : int =
  let page = Simos.Cost.page_size in
  let wanted = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace wanted n ()) names;
  let pages = Hashtbl.create 16 in
  List.iter
    (fun (name, (lo, hi)) ->
      if Hashtbl.mem wanted name then
        for p = lo / page to (max lo (hi - 1)) / page do
          Hashtbl.replace pages p ()
        done)
    ranges;
  Hashtbl.length pages

(** Pages the called working set would occupy packed contiguously from
    a page boundary — the lower bound no reordering can beat. *)
let packed_pages (ranges : (string * (int * int)) list)
    (names : string list) : int =
  let page = Simos.Cost.page_size in
  let wanted = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace wanted n ()) names;
  let bytes =
    List.fold_left
      (fun acc (name, (lo, hi)) ->
        if Hashtbl.mem wanted name then acc + max 0 (hi - lo) else acc)
      0 ranges
  in
  (bytes + page - 1) / page

type audit = {
  a_key : string;  (** hotness key the audit is recorded under *)
  a_routines_called : int;
  a_routines_total : int;
  a_calls : int;  (** call events in the trace *)
  a_bytes_touched : int;  (** text bytes of the called routines *)
  a_pages_actual : int;  (** distinct pages under the actual order *)
  a_pages_optimal : int;  (** packed lower bound *)
  a_pages_reordered : int;  (** distinct pages after {!Reorder} *)
}

(** Locality headroom: pages reordering could reclaim. *)
let headroom (a : audit) : int = a.a_pages_actual - a.a_pages_optimal

(** Residual headroom a real reordering would leave. *)
let residual (a : audit) : int = a.a_pages_reordered - a.a_pages_optimal

(** [audit ~key ~trace frags] replays [trace] against the fragment
    order [frags] and records the result in {!Telemetry.Hotness} under
    [key]. The reordered reference applies {!Reorder.from_trace} (the
    default first-call strategy) to the same fragments. *)
let audit ~(key : string) ~(trace : Monitor.trace)
    (frags : Sof.Object_file.t list) : audit =
  let ranges = function_ranges frags in
  let defined = Hashtbl.create 64 in
  List.iter (fun (n, _) -> Hashtbl.replace defined n ()) ranges;
  let called =
    List.filter (Hashtbl.mem defined) (Monitor.first_call_order trace)
  in
  let bytes =
    let wanted = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace wanted n ()) called;
    List.fold_left
      (fun acc (n, (lo, hi)) ->
        if Hashtbl.mem wanted n then acc + max 0 (hi - lo) else acc)
      0 ranges
  in
  let pages_actual = distinct_pages ranges called in
  let pages_optimal = packed_pages ranges called in
  let pages_reordered =
    distinct_pages (function_ranges (Reorder.from_trace ~trace frags)) called
  in
  Telemetry.Hotness.note_audit ~key ~pages_actual ~pages_optimal
    ~pages_reordered;
  {
    a_key = key;
    a_routines_called = List.length called;
    a_routines_total = List.length ranges;
    a_calls = List.length (Monitor.call_sequence trace);
    a_bytes_touched = bytes;
    a_pages_actual = pages_actual;
    a_pages_optimal = pages_optimal;
    a_pages_reordered = pages_reordered;
  }
