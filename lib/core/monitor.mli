(** Transparent program monitoring (paper §4.1, §6 and [14]): every
    exported routine of a module is wrapped with a generated logging
    wrapper; the recorded call sequence feeds {!Reorder}. *)

(** Syscall numbers the wrappers raise. *)
val mon_enter : int

val mon_exit : int

type event = Enter of int | Exit of int

type trace = {
  names : string array;  (** function id → name *)
  mutable events : event list;  (** reversed *)
  mutable stamps : (int * int) list;
      (** (client, request) attribution per event, reversed *)
  mutable count : int;
}

(** Events in chronological order. *)
val trace_events : trace -> event list

(** Events paired with the (client, request) active when each was
    recorded ([(-1, -1)] outside any request), chronological. *)
val stamped_events : trace -> (event * int * int) list

(** Function call sequence (ids), in call order. *)
val call_sequence : trace -> int list

(** Names in order of first call. *)
val first_call_order : trace -> string list

(** [monitored ?exits m] wraps every exported text function of [m].
    With [exits:false] (default) wrappers are three-instruction
    trampolines logging entries only; with [exits:true] they keep
    return addresses on a private shadow stack and log returns too.
    Internal callers route through the wrappers as well. Returns the
    transformed module and its (empty) trace. *)
val monitored : ?exits:bool -> Jigsaw.Module_ops.t -> Jigsaw.Module_ops.t * trace

(** Route the monitor syscalls into [trace] via the upcall registry.
    Each event costs a real syscall — the monitoring overhead is
    visible in measurements, as it was for OMOS. With [key] set, every
    function entry also feeds {!Telemetry.Hotness} under that key, so
    the continuous profile aggregates across requests. *)
val attach : ?key:string -> Upcalls.t -> trace -> unit
