(** The {e oracle} half of the fuzz harness (the generator half is
    {!Workloads.Fuzz}).

    [run_case] installs a generated case into fresh worlds and checks
    four differential oracles, all of them checks the system already
    ships:

    + {b lint-differential} — for every generated library,
      {!Analysis.Lint.verify_against} must agree with the real
      evaluator: predicted export/undefined sets equal the evaluated
      ones exactly, and whenever the analyzer claims evaluation fails
      ([eval_fails]) the evaluator must actually refuse the graph.
    + {b residency} — every library the linter proves instantiable is
      instantiated (with eviction churn in between) and
      {!Residency.check_invariants} must stay empty after every
      operation; the server's own self-check stays armed, so a
      violation raised anywhere in the pipeline also lands here.
    + {b pipeline-equivalence} — the case's workload scenario runs
      through {!Workload.run} twice. Without fault injection: once
      batched (concurrency ≥ 2), once serial (concurrency 1); the event
      streams (request, client, op, target, hit) and the final text and
      data arena interval maps must be identical. With fault injection
      armed: the same spec twice at the same concurrency; the event
      lists must be byte-identical (costs included) — the
      DiOS-style replay guarantee.
    + {b incremental-relink} — {!Workloads.Fuzz.mutate} derives a
      single-edit variant of the case; the edited world is built twice
      from a common gensym baseline, once with subtree reuse on
      (register the original, build, re-register the edited metas,
      rebuild) and once with reuse off. The link-level facts — image
      digests, segment bases, Bind/Reloc provenance events, and the
      final arena interval maps — must be identical: memoized subtree
      reuse may never change what gets linked.

    Any other exception escaping a case is classified as the ["crash"]
    oracle. All of it is deterministic: same case, same verdict. *)

type failure = {
  fz_oracle : string;
      (** ["lint-differential" | "residency" | "pipeline-equivalence"
          | "incremental-relink" | "crash"] *)
  fz_detail : string;
  fz_case : Workloads.Fuzz.case;  (** the case that tripped the oracle *)
}

type verdict =
  | Pass of { clean_libs : int; events : int }
      (** [clean_libs] libraries proved instantiable and exercised;
          [events] workload events replayed *)
  | Fail of failure

(** Compile and register a case's modules and libraries into a world
    (modules first, then libraries in id order). Used as the
    {!Workload.run} [setup] hook and for replaying committed corpus
    cases. @raise Minic.Driver.Compile_error on a module that does not
    compile (a generator bug, surfaced as a ["crash"]). *)
val install : Workloads.Fuzz.case -> World.t -> unit

(** Run every oracle against one case. Never raises. *)
val run_case : Workloads.Fuzz.case -> verdict

(** Greedy shrink: walk {!Workloads.Fuzz.shrink} candidates, keeping
    any candidate that still fails the {e same} oracle, until a fixed
    point or the run [budget] (default 300 case executions) is spent.
    Returns the minimized case and the number of runs used. *)
val reduce : ?budget:int -> failure -> Workloads.Fuzz.case * int

(** [fuzz ~seed ~iterations ()] generates and runs cases
    [derive_seed ~master:seed 0 .. iterations-1], stopping at the first
    failure. [on_iteration] fires after each case with its index and
    verdict. Returns the failing iteration and (unreduced) failure, or
    [None] if every case passed. *)
val fuzz :
  ?max_modules:int ->
  ?max_libs:int ->
  ?on_iteration:(int -> verdict -> unit) ->
  seed:int ->
  iterations:int ->
  unit ->
  (int * failure) option
