(** The residency layer: joint ownership of the image cache and the
    address-space arenas. See residency.mli for the contract; the short
    version is that every {!Cache.entry} carries a residency state,
    arena reservations are acquired and released only through this
    module, {!check_invariants} asserts both sides agree, and a
    deterministic fault-injection hook (seeded by the simulated clock)
    reproduces the historical cache/arena divergence bugs on demand. *)

module P = Constraints.Placement

type faults = {
  seed : int;
  place_conflict : float;
  evict_storm : float;
  reserve_fail : float;
}

let no_faults =
  { seed = 0; place_conflict = 0.0; evict_storm = 0.0; reserve_fail = 0.0 }

type t = {
  cache : Cache.t;
  text_arena : P.t;
  data_arena : P.t;
  clock : unit -> float;
  faults : faults option;
  mutable rng : int;
  managed : (string, unit) Hashtbl.t; (* owners whose intervals we police *)
  mutable checking : bool;
}

exception Violation of string

let tm_placed = Telemetry.Counter.make "residency.placed"
let tm_static = Telemetry.Counter.make "residency.static"
let tm_reacquired = Telemetry.Counter.make "residency.reacquired"
let tm_evicted = Telemetry.Counter.make "residency.evicted"
let tm_lost = Telemetry.Counter.make "residency.lost_reservations"
let tm_checks = Telemetry.Counter.make "residency.invariant_checks"
let tm_violations = Telemetry.Counter.make "residency.invariant_violations"
let tm_fault_conflict = Telemetry.Counter.make "residency.faults.place_conflict"
let tm_fault_storm = Telemetry.Counter.make "residency.faults.evict_storm"
let tm_fault_reserve = Telemetry.Counter.make "residency.faults.reserve_fail"
let tm_fault_injected = Telemetry.Counter.make "residency.faults.injected_violation"

let create ~cache ~text_arena ~data_arena ?(clock = Telemetry.now_us) ?faults ()
    : t =
  let seed = match faults with Some f -> f.seed | None -> 0 in
  {
    cache;
    text_arena;
    data_arena;
    clock;
    faults;
    rng = (seed lxor 0x9E3779B9) lor 1;
    managed = Hashtbl.create 16;
    checking = true;
  }

(* -- deterministic fault stream ----------------------------------- *)

(* xorshift mixed with the simulated clock: the same seed and the same
   simulated schedule yield the same fault decisions. *)
let draw (t : t) : float =
  let x = t.rng lxor (int_of_float (t.clock ()) * 0x2545F491) in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- (x land max_int) lor 1;
  float_of_int (t.rng land 0xFFFFFF) /. float_of_int 0x1000000

type fault = Place_conflict | Evict_storm | Reserve_fail

let fires (t : t) (f : fault) : bool =
  match t.faults with
  | None -> false
  | Some cfg ->
      let rate =
        match f with
        | Place_conflict -> cfg.place_conflict
        | Evict_storm -> cfg.evict_storm
        | Reserve_fail -> cfg.reserve_fail
      in
      rate > 0.0 && draw t < rate

(* -- extents ------------------------------------------------------- *)

let text_extent (e : Cache.entry) : int * int =
  match Linker.Image.text_segment e.Cache.image with
  | Some s -> (e.Cache.text_base, max 1 (Bytes.length s.Linker.Image.bytes))
  | None -> (e.Cache.text_base, 1)

let data_extent (e : Cache.entry) : int * int =
  let img = e.Cache.image in
  match Linker.Image.data_segment img with
  | Some s ->
      ( e.Cache.data_base,
        max 1 (Bytes.length s.Linker.Image.bytes + img.Linker.Image.bss_size) )
  | None -> (e.Cache.data_base, max 1 img.Linker.Image.bss_size)

let owner_of (e : Cache.entry) : string = e.Cache.image.Linker.Image.name

(* Is there an interval under [owner] starting exactly at [lo] and
   covering [lo, lo+size)? *)
let owned_at arena ~owner ~lo ~size =
  List.exists
    (fun (ilo, ihi, o) -> o = owner && ilo = lo && ihi >= lo + size)
    (P.intervals arena)

let range_available arena ~owner ~lo ~size =
  owned_at arena ~owner ~lo ~size || P.free arena ~lo ~hi:(lo + size)

let acceptable (t : t) ~(owner : string) (e : Cache.entry) : bool =
  let tlo, tsz = text_extent e and dlo, dsz = data_extent e in
  range_available t.text_arena ~owner ~lo:tlo ~size:tsz
  && range_available t.data_arena ~owner ~lo:dlo ~size:dsz

let backed (t : t) (e : Cache.entry) : bool =
  let owner = owner_of e in
  let tlo, tsz = text_extent e and dlo, dsz = data_extent e in
  owned_at t.text_arena ~owner ~lo:tlo ~size:tsz
  && owned_at t.data_arena ~owner ~lo:dlo ~size:dsz

(* -- state transitions --------------------------------------------- *)

(* Residency is part of an image's story: every transition is appended
   to the entry's provenance record (when one is attached), stamped
   with the simulated clock — [ofe explain] shows the sequence. *)
let note_transition (t : t) (e : Cache.entry) (state : string) : unit =
  Telemetry.Flight.emit Telemetry.Flight.Transition (owner_of e) state 0.0;
  match e.Cache.provenance with
  | Some p -> Telemetry.Provenance.transition p ~at:(t.clock ()) state
  | None -> ()

let register (t : t) (owner : string) : unit = Hashtbl.replace t.managed owner ()

let align_up v a = (v + a - 1) / a * a

(* Ensure [lo, lo+size) is reserved under [owner]; [Ok true] means a
   fresh reservation was taken. Sizes are aligned the same way
   [Placement.place] aligns them, so re-reservations match the extents
   of the original placement. *)
let ensure arena ~owner ~lo ~size : (bool, string) result =
  if owned_at arena ~owner ~lo ~size then Ok false
  else
    let size = align_up size (P.align arena) in
    match P.reserve arena ~lo ~size owner with
    | Ok () -> Ok true
    | Error o -> Error o

let reacquire (t : t) ~(owner : string) (e : Cache.entry) :
    (unit, string) result =
  if fires t Reserve_fail then begin
    Telemetry.Counter.incr tm_fault_reserve;
    Telemetry.Flight.record_fault "residency.reserve_fail";
    Error "fault:reserve"
  end
  else begin
    let tlo, tsz = text_extent e and dlo, dsz = data_extent e in
    match ensure t.text_arena ~owner ~lo:tlo ~size:tsz with
    | Error o -> Error o
    | Ok fresh_text -> (
        match ensure t.data_arena ~owner ~lo:dlo ~size:dsz with
        | Error o ->
            (* never leave a half-established reservation behind *)
            if fresh_text then P.release t.text_arena ~lo:tlo;
            Error o
        | Ok _ ->
            e.Cache.residency <- Cache.Placed;
            register t owner;
            note_transition t e "reacquired";
            Telemetry.Counter.incr tm_reacquired;
            Ok ())
  end

let note_placed (t : t) (e : Cache.entry) : unit =
  e.Cache.residency <- Cache.Placed;
  register t (owner_of e);
  note_transition t e "placed";
  Telemetry.Counter.incr tm_placed

let note_static (t : t) (e : Cache.entry) : unit =
  e.Cache.residency <- Cache.Static;
  note_transition t e "static";
  Telemetry.Counter.incr tm_static

(* Release whichever of the entry's extents are still reserved under
   its owner. *)
let release_extents (t : t) (e : Cache.entry) : unit =
  let owner = owner_of e in
  let tlo, _ = text_extent e and dlo, _ = data_extent e in
  if owned_at t.text_arena ~owner ~lo:tlo ~size:1 then
    P.release t.text_arena ~lo:tlo;
  if owned_at t.data_arena ~owner ~lo:dlo ~size:1 then
    P.release t.data_arena ~lo:dlo

let demote_if_lost (t : t) (e : Cache.entry) : bool =
  if e.Cache.residency = Cache.Placed && not (backed t e) then begin
    release_extents t e;
    e.Cache.residency <- Cache.Evicted;
    note_transition t e "lost-reservation";
    Telemetry.Counter.incr tm_lost;
    true
  end
  else false

(* -- invariant checking -------------------------------------------- *)

type violation = { v_code : string; v_msg : string }

let violation_message (v : violation) : string =
  Printf.sprintf "[%s] %s" v.v_code v.v_msg

let ranges_overlap (lo1, sz1) (lo2, sz2) = lo1 < lo2 + sz2 && lo2 < lo1 + sz1

let check_invariants (t : t) : violation list =
  Telemetry.Counter.incr tm_checks;
  let out = ref [] in
  let add code fmt =
    Format.kasprintf (fun m -> out := { v_code = code; v_msg = m } :: !out) fmt
  in
  let live = Cache.to_list t.cache in
  let placed =
    List.filter (fun (e : Cache.entry) -> e.Cache.residency = Cache.Placed) live
  in
  (* 1: every placed entry's full extents reserved under its owner *)
  List.iter
    (fun (e : Cache.entry) ->
      let owner = owner_of e in
      let chk arena what (lo, sz) =
        if not (owned_at arena ~owner ~lo ~size:sz) then
          add "unreserved"
            "placed entry %s: %s extent [0x%x,0x%x) not reserved under its owner"
            owner what lo (lo + sz)
      in
      chk t.text_arena "text" (text_extent e);
      chk t.data_arena "data" (data_extent e))
    placed;
  (* 2: no two live placed entries overlap *)
  let rec pairwise = function
    | [] -> ()
    | (e : Cache.entry) :: rest ->
        List.iter
          (fun (e' : Cache.entry) ->
            if
              ranges_overlap (text_extent e) (text_extent e')
              || ranges_overlap (data_extent e) (data_extent e')
            then
              add "overlap" "placed entries %s@0x%x and %s@0x%x overlap"
                (owner_of e) e.Cache.text_base (owner_of e') e'.Cache.text_base)
          rest;
        pairwise rest
  in
  pairwise placed;
  (* 3: no managed arena interval orphaned by an evicted entry *)
  let orphans arena what base_of =
    List.iter
      (fun (ilo, ihi, o) ->
        if
          Hashtbl.mem t.managed o
          && not
               (List.exists
                  (fun (e : Cache.entry) ->
                    owner_of e = o && fst (base_of e) = ilo)
                  placed)
        then
          add "orphan" "%s interval [0x%x,0x%x) of %s has no live placed entry"
            what ilo ihi o)
      (P.intervals arena)
  in
  orphans t.text_arena "text" text_extent;
  orphans t.data_arena "data" data_extent;
  let vs = List.rev !out in
  if vs <> [] then begin
    Telemetry.Counter.incr tm_violations ~by:(List.length vs);
    List.iter
      (fun v ->
        Telemetry.Flight.record_violation ~name:v.v_code ~detail:v.v_msg)
      vs;
    ignore (Telemetry.Flight.trip ~reason:"residency invariant violation" ())
  end;
  vs

let check_exn (t : t) : unit =
  match check_invariants t with
  | [] -> ()
  | vs -> raise (Violation (String.concat "; " (List.map violation_message vs)))

let set_self_check (t : t) (b : bool) : unit = t.checking <- b
let self_check (t : t) : unit = if t.checking then check_exn t

(* -- eviction ------------------------------------------------------ *)

let evict_to_budget (t : t) ~(bytes : int) : Cache.entry list =
  let victims = Cache.evict_to_budget t.cache ~bytes in
  List.iter
    (fun (e : Cache.entry) ->
      (match e.Cache.residency with
      | Cache.Placed -> release_extents t e
      | Cache.Static | Cache.Evicted ->
          (* static entries never claimed lib-arena ranges; evicted
             ones already lost theirs *)
          ());
      e.Cache.residency <- Cache.Evicted;
      note_transition t e "evicted";
      Telemetry.Counter.incr tm_evicted)
    victims;
  self_check t;
  victims

(* -- fault hooks --------------------------------------------------- *)

let maybe_evict_storm (t : t) : int =
  if fires t Evict_storm then begin
    Telemetry.Counter.incr tm_fault_storm;
    Telemetry.Flight.record_fault "residency.evict_storm";
    List.length (evict_to_budget t ~bytes:0)
  end
  else 0

let with_place_conflict (t : t) ~(arena : P.t)
    ~(prefs : (int * P.pref) list) (f : unit -> 'a) : 'a =
  let blocker =
    if prefs = [] || not (fires t Place_conflict) then None
    else
      let _, top =
        List.hd (List.sort (fun (p1, _) (p2, _) -> compare p2 p1) prefs)
      in
      let target =
        match top with
        | P.At a | P.Near a -> Some a
        | P.Within (lo, _) -> Some lo
        | P.Avoid _ -> None
      in
      match target with
      | None -> None
      | Some a -> (
          match P.reserve arena ~lo:a ~size:(P.align arena) "fault:conflict" with
          | Ok () ->
              Telemetry.Counter.incr tm_fault_conflict;
              Telemetry.Flight.record_fault "residency.place_conflict";
              Some a
          | Error _ -> None)
  in
  Fun.protect
    ~finally:(fun () ->
      match blocker with Some a -> P.release arena ~lo:a | None -> ())
    f

type seeded_violation =
  | Lost_reservation
  | Orphaned_interval
  | Overlapping_entries

let inject (t : t) (kind : seeded_violation) : unit =
  let placed =
    List.filter
      (fun (e : Cache.entry) -> e.Cache.residency = Cache.Placed)
      (Cache.to_list t.cache)
  in
  match placed with
  | [] -> invalid_arg "Residency.inject: no placed entry to corrupt"
  | e :: _ -> (
      Telemetry.Counter.incr tm_fault_injected;
      match kind with
      | Lost_reservation -> P.release t.text_arena ~lo:(fst (text_extent e))
      | Orphaned_interval -> Cache.invalidate t.cache e.Cache.key
      | Overlapping_entries ->
          let dup =
            Cache.insert t.cache
              ~key:(e.Cache.key ^ ":injected")
              ~text_base:e.Cache.text_base ~data_base:e.Cache.data_base
              e.Cache.image
          in
          dup.Cache.residency <- Cache.Placed)
