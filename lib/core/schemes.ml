(** The shared-library schemes under comparison.

    Four ways to turn "client + libraries" into a running process:

    - {!static_program} — traditional static linking: one huge binary
      written to disk, exec'd the normal way. The baseline for link
      time and disk I/O (§2.1).

    - {!dynamic_program} — the traditional dynamic shared-library
      scheme (SunOS / HP-UX [-B deferred]): PIC-style libraries shared
      at system-chosen addresses, clients carrying PLT stubs + private
      dispatch tables, eager data relocation at every startup, lazy
      procedure binding on first call, and an indirect jump on every
      library call thereafter. This is the scheme OMOS is measured
      against in Table 1.

    - {!self_contained_program} — OMOS self-contained shared libraries:
      fully bound, constraint-placed, cached images; constant-time
      load, no dispatch tables. Launched via the bootstrap loader or
      the integrated exec.

    - {!partial_image_program} — OMOS partial-image shared libraries:
      a conventional executable with per-entry-point stubs that load
      the library from OMOS on first use and bind through a hash
      table/branch table.

    All schemes run the same client code on the same simulated OS; they
    differ only in linking/loading mechanics — which is the paper's
    point. *)

exception Scheme_error of string

(* -- per-process runtime state (lazy binding) --------------------------- *)

type flavor = Plt | Omos_stub

type proc_rt = {
  flavor : flavor;
  imports : Stubs.import array;
  (* resolve an import name to its bound address (filled at library
     load time for the partial-image scheme) *)
  mutable resolve : string -> int option;
  (* address of each import's slot word in the client image *)
  slot_addr : string -> int;
  (* partial-image scheme: libraries to fetch from the server on first
     use, and the interface version the client was built against *)
  lib_paths : string list;
  expected_version : string;
  mutable libs_mapped : bool;
  mutable binds : int;
}

(* Resolver over library images. *)
let resolver_of (libs : Linker.Image.t list) : string -> int option =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (img : Linker.Image.t) ->
      List.iter
        (fun (n, a) -> if not (Hashtbl.mem tbl n) then Hashtbl.replace tbl n a)
        img.Linker.Image.symtab)
    libs;
  Hashtbl.find_opt tbl

(** Interface version of a library set: a digest of the exported names.
    Recorded in partial-image clients and checked when the library is
    loaded — the safety mechanism the paper says "should be
    implemented" (§4.2). *)
let interface_version (imgs : Linker.Image.t list) : string =
  let names =
    List.sort compare
      (List.concat_map
         (fun (img : Linker.Image.t) -> List.map fst img.Linker.Image.symtab)
         imgs)
  in
  Digest.to_hex (Digest.string (String.concat "," names))

(** The scheme runtime: owns per-process lazy-binding state and the
    kernel upcall that implements the bind traps. One per kernel. *)
type t = {
  server : Server.t;
  table : (int, proc_rt) Hashtbl.t; (* pid -> state *)
}

let handle_bind (rt : t) (k : Simos.Kernel.t) (p : Simos.Proc.t) (cpu : Svm.Cpu.t)
    (_n : int) : Svm.Cpu.sys_result =
  let cost = k.Simos.Kernel.cost in
  match Hashtbl.find_opt rt.table p.Simos.Proc.pid with
  | None ->
      Svm.Cpu.set_reg cpu Svm.Isa.reg_ret (-1l);
      Svm.Cpu.Sys_continue
  | Some st ->
      let index = Int32.to_int (Svm.Cpu.get_reg cpu 1) in
      if index < 0 || index >= Array.length st.imports then
        raise (Scheme_error (Printf.sprintf "bad bind index %d" index));
      let imp = st.imports.(index) in
      (match st.flavor with
      | Plt ->
          (* dld-style user-space binding: hash lookup + table patch *)
          Simos.Kernel.charge_user k cost.Simos.Cost.symbol_lookup;
          Simos.Kernel.charge_user k cost.Simos.Cost.dispatch_patch
      | Omos_stub ->
          (* first call into the library fetches the *current*
             implementation from the server and maps it *)
          if not st.libs_mapped then begin
            Simos.Kernel.charge_sys k cost.Simos.Cost.ipc_round_trip;
            let builts =
              List.map (fun path -> Server.build rt.server (Server.library path)) st.lib_paths
            in
            let imgs =
              List.map (fun (b : Server.built) -> b.Server.entry.Cache.image) builts
            in
            let version = interface_version imgs in
            if version <> st.expected_version then
              raise
                (Scheme_error
                   (Printf.sprintf
                      "library interface version mismatch: client built against                        %s, server provides %s"
                      (String.sub st.expected_version 0 8)
                      (String.sub version 0 8)));
            List.iter (Server.map_into rt.server p) builts;
            st.resolve <- resolver_of imgs;
            st.libs_mapped <- true
          end;
          (* hash-table lookup of the entry point *)
          Simos.Kernel.charge_user k cost.Simos.Cost.symbol_lookup;
          Simos.Kernel.charge_user k cost.Simos.Cost.dispatch_patch);
      (match st.resolve imp.Stubs.imp_name with
      | Some addr ->
          cpu.Svm.Cpu.mem.Svm.Cpu.store32 (st.slot_addr imp.Stubs.imp_name)
            (Int32.of_int addr);
          st.binds <- st.binds + 1;
          Svm.Cpu.set_reg cpu Svm.Isa.reg_ret (Int32.of_int addr)
      | None ->
          raise
            (Scheme_error ("unresolved import at runtime: " ^ imp.Stubs.imp_name)));
      Svm.Cpu.Sys_continue

(** Create the runtime and register its bind traps. *)
let runtime ?(upcalls : Upcalls.t option) (server : Server.t) : t =
  let rt = { server; table = Hashtbl.create 16 } in
  let upcalls =
    match upcalls with Some u -> u | None -> Upcalls.install (Server.kernel server)
  in
  Upcalls.register upcalls Simos.Syscall.plt_bind (handle_bind rt);
  Upcalls.register upcalls Simos.Syscall.omos_load_library (handle_bind rt);
  rt

(* -- common pieces ------------------------------------------------------- *)

(** A ready-to-run program under some scheme. *)
type program = {
  prog_name : string;
  scheme : string;
  (* start one invocation; caller runs it with Kernel.run *)
  launch : args:string list -> Simos.Proc.t;
  (* memory overhead of dispatch machinery (stubs + slots), bytes *)
  dispatch_bytes : int;
  (* eager relocation work charged per invocation (dynamic scheme) *)
  eager_relocs : int;
  (* number of lazily bindable imports *)
  imports : int;
}

let graph_of_objs (objs : Sof.Object_file.t list) : Blueprint.Mgraph.node =
  Blueprint.Mgraph.Merge (List.map (fun o -> Blueprint.Mgraph.Leaf o) objs)

(* Executable path for a program under a scheme. *)
let exe_path ~scheme ~name = Printf.sprintf "/bin/%s.%s" name scheme

(* Write an image to the simulated disk as an executable, charging
   write I/O (this is static linking's dominant cost in the paper's
   development-environment argument). *)
let install_executable (server : Server.t) ~(path : string) (img : Linker.Image.t) :
    unit =
  let k = Server.kernel server in
  let bytes = Linker.Image.encode img in
  (if not (Simos.Fs.exists k.Simos.Kernel.fs path) then
     let pages = (Bytes.length bytes + Simos.Cost.page_size - 1) / Simos.Cost.page_size in
     Simos.Kernel.charge_io k
       (float_of_int pages *. k.Simos.Kernel.cost.Simos.Cost.disk_write_page));
  Simos.Fs.mkdir_p k.Simos.Kernel.fs "/bin";
  Simos.Fs.write_file k.Simos.Kernel.fs path bytes

(* Imports of a client module satisfiable by the given library images. *)
let imports_of (client : Jigsaw.Module_ops.t) (libs : Linker.Image.t list) :
    Stubs.import list =
  let available = Hashtbl.create 64 in
  List.iter
    (fun (img : Linker.Image.t) ->
      List.iter (fun (n, _) -> Hashtbl.replace available n ()) img.Linker.Image.symtab)
    libs;
  Jigsaw.Module_ops.undefined client
  |> List.filter (Hashtbl.mem available)
  |> List.map Stubs.import_of_name

(* Count of "eager" relocations a traditional dynamic loader performs
   per invocation: data-section relocations plus text references to
   data symbols (the GOT-initialization analogue), across client and
   libraries. *)
let eager_reloc_count (frag_sets : Sof.Object_file.t list list) : int =
  let count_obj (o : Sof.Object_file.t) =
    let data_syms = Hashtbl.create 32 in
    List.iter
      (fun (s : Sof.Symbol.t) ->
        match s.Sof.Symbol.kind with
        | Sof.Symbol.Data | Sof.Symbol.Bss -> Hashtbl.replace data_syms s.name ()
        | Sof.Symbol.Text | Sof.Symbol.Abs | Sof.Symbol.Undef -> ())
      o.Sof.Object_file.symbols;
    List.length
      (List.filter
         (fun (r : Sof.Reloc.t) ->
           match r.Sof.Reloc.target with
           | Sof.Reloc.In_data -> true
           | Sof.Reloc.In_text -> Hashtbl.mem data_syms r.Sof.Reloc.symbol)
         o.Sof.Object_file.relocs)
  in
  List.fold_left
    (fun acc objs -> acc + List.fold_left (fun a o -> a + count_obj o) 0 objs)
    0 frag_sets

(* -- scheme 1: static ----------------------------------------------------- *)

(** Statically link client + libraries into one traditional binary,
    with archive semantics: only the library members that satisfy
    references are pulled in. *)
let static_program (rt : t) ~(name : string) ~(client : Sof.Object_file.t list)
    ~(libs : string list) : program =
  let server = rt.server in
  let members =
    List.concat_map
      (fun l ->
        let meta = Server.find_meta server l in
        let r = Server.eval server meta.Blueprint.Meta.root in
        Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
      libs
  in
  let pulled = Linker.Archive.select ~roots:client ~available:members in
  let graph = graph_of_objs (client @ pulled) in
  let b = Server.build server (Server.static ~name:(name ^ ".static") graph) in
  let path = exe_path ~scheme:"static" ~name in
  install_executable server ~path b.Server.entry.Cache.image;
  {
    prog_name = name;
    scheme = "static";
    launch =
      (fun ~args -> Simos.Kernel.exec (Server.kernel server) ~path ~args);
    dispatch_bytes = 0;
    eager_relocs = 0;
    imports = 0;
  }

(* -- scheme 2: traditional dynamic (the HP-UX/SunOS baseline) -------------- *)

let dynamic_program (rt : t) ~(name : string) ~(client : Sof.Object_file.t list)
    ~(libs : string list) : program =
  let server = rt.server in
  (* libraries: shared images at system-chosen (arena) addresses *)
  let lib_builts = List.map (fun l -> Server.build server (Server.library l)) libs in
  let lib_imgs = List.map (fun (b : Server.built) -> b.Server.entry.Cache.image) lib_builts in
  let client_mod = Jigsaw.Module_ops.of_objects ~label:name client in
  let imports = imports_of client_mod lib_imgs in
  let plt = Stubs.plt_object imports in
  let diverted = Stubs.divert_imports client_mod imports in
  let full = Jigsaw.Module_ops.merge diverted (Jigsaw.Module_ops.of_object plt) in
  let graph = graph_of_objs (Jigsaw.Module_ops.fragments full) in
  let b =
    Server.build server (Server.static ~name:(name ^ ".dyn") ~externals:lib_imgs graph)
  in
  let client_img = b.Server.entry.Cache.image in
  let path = exe_path ~scheme:"dynamic" ~name in
  install_executable server ~path client_img;
  let lib_frag_sets =
    List.map
      (fun l ->
        let meta = Server.find_meta server l in
        let r = Server.eval server (Blueprint.Meta.effective_graph meta ~spec:None) in
        Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
      libs
  in
  (* eager work at startup: the client's own data relocations *)
  let eager = eager_reloc_count [ Jigsaw.Module_ops.fragments client_mod ] in
  (* deferred (page-wise lazy) relocation density of each library: the
     -B deferred model — a library page is relocated, privately, the
     first time each process touches it *)
  let cost = (Server.kernel server).Simos.Kernel.cost in
  (* the traditional loader opens each shared library and processes its
     headers/symbol tables on every exec; OMOS pre-parses once. The
     0.08 factor approximates header+symbol-table share of the file. *)
  let lib_open_parse =
    List.fold_left
      (fun acc (lb : Server.built) ->
        acc +. cost.Simos.Cost.open_file
        +. cost.Simos.Cost.parse_header_per_kb
           *. (float_of_int lb.Server.entry.Cache.disk_bytes /. 1024.0)
           *. 0.08)
      0.0 lib_builts
  in
  let lib_touch_costs =
    List.map2
      (fun (lb : Server.built) frags ->
        let img = lb.Server.entry.Cache.image in
        let text_pages =
          max 1
            ((match Linker.Image.text_segment img with
             | Some seg -> Bytes.length seg.Linker.Image.bytes
             | None -> 0)
            / Simos.Cost.page_size)
        in
        let relocs =
          List.fold_left (fun a o -> a + Sof.Object_file.reloc_count o) 0 frags
        in
        cost.Simos.Cost.deferred_page_overhead
        +. (cost.Simos.Cost.reloc_apply
           *. (float_of_int relocs /. float_of_int text_pages)))
      lib_builts lib_frag_sets
  in
  let resolve = resolver_of lib_imgs in
  let slot_addr n =
    match Linker.Image.find_symbol client_img (n ^ "$slot") with
    | Some a -> a
    | None -> raise (Scheme_error ("missing slot for " ^ n))
  in
  let imports_arr = Array.of_list imports in
  let k = Server.kernel server in
  (* builts can go stale if the cache is trimmed between invocations;
     re-requested ones land at the same addresses via the reuse
     constraint, so [resolve] stays valid *)
  let live_builts = ref lib_builts in
  {
    prog_name = name;
    scheme = "dynamic";
    launch =
      (fun ~args ->
        (* normal exec of the client binary *)
        let p = Simos.Kernel.exec k ~path ~args in
        (* the dynamic loader opens and processes the library files … *)
        Simos.Kernel.charge_sys k lib_open_parse;
        if List.exists Server.built_evicted !live_builts then
          live_builts :=
            List.map (fun l -> Server.build server (Server.library l)) libs;
        (* … and maps them; each library page this process touches pays
           deferred relocation work *)
        List.iter2
          (fun (lb : Server.built) tc ->
            Server.map_into server ~touch_user_cost:tc p lb)
          !live_builts lib_touch_costs;
        (* … plus the eager client-side data relocations, in user
           space, on every invocation — the per-start cost OMOS avoids *)
        Simos.Kernel.charge_user k
          (k.Simos.Kernel.cost.Simos.Cost.reloc_apply *. float_of_int eager);
        Hashtbl.replace rt.table p.Simos.Proc.pid
          {
            flavor = Plt;
            imports = imports_arr;
            resolve;
            slot_addr;
            lib_paths = [];
            expected_version = "";
            libs_mapped = true;
            binds = 0;
          };
        p);
    dispatch_bytes = Stubs.dispatch_bytes (List.length imports);
    eager_relocs = eager;
    imports = List.length imports;
  }

(* -- scheme 3: OMOS self-contained ----------------------------------------- *)

(** How a self-contained program is started. *)
type exec_style = Bootstrap | Integrated

let self_contained_program (rt : t) ?(style = Bootstrap) ~(name : string)
    ~(client : Sof.Object_file.t list) ~(libs : string list) () : program =
  let server = rt.server in
  let mk () =
    let lib_builts = List.map (fun l -> Server.build server (Server.library l)) libs in
    let lib_imgs =
      List.map (fun (b : Server.built) -> b.Server.entry.Cache.image) lib_builts
    in
    let b =
      Server.build server
        (Server.static ~name:(name ^ ".sc") ~externals:lib_imgs
           (graph_of_objs client))
    in
    Server.loadable_entry (lib_builts @ [ b ])
  in
  let loadable = ref (mk ()) in
  (* a cache eviction (budget trim, injected storm) between invocations
     invalidates the builts; re-request them — still-resident parts are
     warm cache hits, evicted ones rebuild, usually at the same
     addresses via the reuse constraint *)
  let current () =
    if List.exists Server.built_evicted !loadable.Server.parts then
      loadable := mk ();
    !loadable
  in
  {
    prog_name = name;
    scheme =
      (match style with Bootstrap -> "omos-bootstrap" | Integrated -> "omos-integrated");
    launch =
      (fun ~args ->
        match style with
        | Bootstrap -> Boot.bootstrap_exec server (current ()) ~args
        | Integrated -> Boot.integrated_exec server (current ()) ~args);
    dispatch_bytes = 0;
    eager_relocs = 0;
    imports = 0;
  }

(* -- scheme 4: OMOS partial-image ------------------------------------------- *)

let partial_image_program (rt : t) ~(name : string)
    ~(client : Sof.Object_file.t list) ~(libs : string list) : program =
  let server = rt.server in
  let lib_builts = List.map (fun l -> Server.build server (Server.library l)) libs in
  let lib_imgs = List.map (fun (b : Server.built) -> b.Server.entry.Cache.image) lib_builts in
  let client_mod = Jigsaw.Module_ops.of_objects ~label:name client in
  let imports = imports_of client_mod lib_imgs in
  let stubs = Stubs.omos_stub_object imports in
  let diverted = Stubs.divert_imports client_mod imports in
  let full = Jigsaw.Module_ops.merge diverted (Jigsaw.Module_ops.of_object stubs) in
  let b =
    Server.build server
      (Server.static ~name:(name ^ ".pi")
         (graph_of_objs (Jigsaw.Module_ops.fragments full)))
  in
  let client_img = b.Server.entry.Cache.image in
  let path = exe_path ~scheme:"partial" ~name in
  install_executable server ~path client_img;
  (* the interface version the client is built against, embedded at
     build time and checked at load time *)
  let version = interface_version lib_imgs in
  let slot_addr n =
    match Linker.Image.find_symbol client_img (n ^ "$slot") with
    | Some a -> a
    | None -> raise (Scheme_error ("missing slot for " ^ n))
  in
  let imports_arr = Array.of_list imports in
  let k = Server.kernel server in
  {
    prog_name = name;
    scheme = "omos-partial";
    launch =
      (fun ~args ->
        (* a perfectly ordinary executable … *)
        let p = Simos.Kernel.exec k ~path ~args in
        (* … whose library arrives only when a stub first fires *)
        Hashtbl.replace rt.table p.Simos.Proc.pid
          {
            flavor = Omos_stub;
            imports = imports_arr;
            resolve = (fun _ -> None);
            slot_addr;
            lib_paths = libs;
            expected_version = version;
            libs_mapped = false;
            binds = 0;
          };
        p);
    dispatch_bytes = Stubs.dispatch_bytes (List.length imports);
    eager_relocs = 0;
    imports = List.length imports;
  }

(** Run one invocation to completion; returns (exit code, stdout). *)
let invoke (rt : t) (prog : program) ~(args : string list) : int * string =
  Telemetry.Request.with_request "exec" @@ fun () ->
  let k = Server.kernel rt.server in
  let p = prog.launch ~args in
  let code = Simos.Kernel.run k p () in
  let out = Simos.Proc.stdout_contents p in
  Hashtbl.remove rt.table p.Simos.Proc.pid;
  Simos.Kernel.reap k p;
  (code, out)
