(** Latency blame over the causal event graph ([Telemetry.Causal]).

    The simulated clock makes latency attribution an accounting
    identity rather than a sampling estimate: every stage segment and
    typed wait of a request is stamped with exact clock reads, so the
    request's critical path — its segments and waits plus the gap-fill
    between them — tiles the interval from submission to the instant
    [sim_us] was sealed, and the slice durations sum to [sim_us] (up to
    float addition error). On top of the paths this module aggregates a
    workload-wide blame profile, folds flamegraph stacks, and replays
    the recorded graph deterministically under counterfactual knobs
    (batching off, coalescing off, unbounded queue) to predict what a
    config change would have bought. *)

(** Where one slice of a request's latency went. *)
type category =
  | Self of string  (** computing inside the named stage *)
  | Queue  (** admission: submitted, parse not yet dispatched *)
  | Batch  (** parked at the place barrier until the flush *)
  | Coalesce  (** follower waiting on its leader's in-flight build *)
  | Sched  (** runnable, waiting for the scheduler to dispatch *)

(** ["self.<stage>"], ["queue"], ["batch"], ["coalesce"], ["sched"]. *)
val category_label : category -> string

(** The stable category order of the [omos.blame/1] schema. *)
val category_order : string list

type slice = {
  s_cat : category;
  s_from : float;
  s_until : float;
  s_self : float;
      (** charged self-cost of a segment slice — less than the slice
          duration for a batched place, where the shared solve overlaps
          every member's interval; [0] for waits *)
  s_on : int;  (** request id waited on; [-1] when not a typed wait *)
}

(** One dispatched unit of the recorded pipeline — the skeleton
    {!what_if} replays. Unlike {!type-slice}s, the chain keeps
    zero-duration stage hops: a stage that charges nothing is still one
    FIFO queue rotation, and the counterfactual schedules depend on
    those rotations. *)
type hop =
  | Run of { stage : string; dur : float }
      (** a dispatched stage task (re-enqueues at the tail when done) *)
  | Park of { wrap : float }
      (** parked at the place barrier; [wrap] is the member's own share
          of the flush outside the shared solve *)
  | Wait of { on : int }  (** coalesced onto in-flight request [on] *)
  | Seal  (** the map dispatch where [sim_us] was sealed *)

type path = {
  p_id : int;
  p_client : int;
  p_target : string;
  p_submit : float;
  p_done : float;  (** when [sim_us] was sealed (map-stage start) *)
  p_sim_us : float;
  p_hit : bool;
  p_solver_us : float;  (** shared batched-solver share (replay input) *)
  p_slices : slice list;  (** chronological; tiles [p_submit, p_done) *)
  p_chain : hop list;  (** pipeline order; ends with {!Seal} *)
}

val slice_us : slice -> float

(** Extract one completed request's critical path; [None] while it is
    still in flight. The slice durations sum to [p_sim_us]. *)
val critical_path : Telemetry.Causal.req -> path option

(** All completed requests' paths, id order. *)
val paths : Telemetry.Causal.req list -> path list

(** Per-category stats over a set of paths. Percentiles are
    nearest-rank over the per-request category sums. *)
type stat = {
  bs_total_us : float;
  bs_frac : float;  (** of the total recorded sim_us *)
  bs_p50_us : float;
  bs_p95_us : float;
}

type profile = {
  bp_requests : int;
  bp_total_sim_us : float;
  bp_wait_us : float;  (** total non-self time across all requests *)
  bp_categories : (string * stat) list;  (** {!category_order}, complete *)
}

val profile : path list -> profile

(** Flamegraph folded stacks: [<target>;self;<stage>] and
    [<target>;wait;<category>] lines with summed microseconds, sorted
    by key. *)
val folded : path list -> (string * float) list

(** A counterfactual replay knob. *)
type knob = Batch_off | Queue_inf | Coalesce_off

(** Parses ["batch=off"], ["queue=inf"], ["coalesce=off"]. *)
val knob_of_string : string -> knob option

val knob_to_string : knob -> string

type whatif = {
  wi_knob : string;  (** ["baseline"] when replaying as recorded *)
  wi_recorded_us : float;  (** total recorded sim_us *)
  wi_predicted_us : float;  (** total predicted sim_us under the knob *)
  wi_per_request : (int * float * float) list;
      (** (id, recorded, predicted), id order *)
}

(** Deterministic FIFO discrete-event replay of the recorded graph,
    optionally under a knob. Without a knob the replay reproduces the
    recorded run — the baseline sanity check for the counterfactuals.
    The replay assumes the FIFO (seed 0) scheduler order and treats
    each group of equal submit stamps as one closed-loop round (the
    drivers drain between rounds), so a round's predicted latencies
    count from when it enters the replayed server, not from the
    recorded stamp — a knob that slows an earlier round down does not
    leak queueing delay into later ones. [Queue_inf] is the identity on
    runs that never overloaded, because overloaded submissions never
    enter the recorded graph. *)
val what_if : ?knob:knob -> path list -> whatif
