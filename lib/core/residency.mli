(** The residency layer: joint ownership of the image cache and the
    address-space arenas.

    Historically the cache and the arenas were reconciled ad hoc inside
    [Server.link_in_arena] and [Server.evict_to_budget] and could
    silently diverge: a cache hit could map an image over another
    library's range, evicting a [static:] entry released lib-arena
    intervals it never owned, and a stale candidate could shadow the
    real construction with an empty one. This module makes the
    lifecycle explicit: every {!Cache.entry} carries a residency state,
    reservations are acquired and released only through here, and
    {!check_invariants} asserts the cache and the arenas agree.

    A deterministic fault-injection hook — seeded by the simulated
    clock, configured through [Server.create] — can force placement
    conflicts, eviction storms and reserve failures, so the historical
    bug cluster stays reproducible under test. Everything is observable
    through [residency.*] telemetry counters. *)

(** Per-fault firing rates in [0,1]; a rate of 1.0 fires on every
    opportunity, 0.0 never. The decision stream is a pure function of
    [seed] and the simulated clock, so runs are reproducible. *)
type faults = {
  seed : int;
  place_conflict : float;  (** block the preferred base of a placement *)
  evict_storm : float;  (** evict the whole cache before a request *)
  reserve_fail : float;  (** fail re-reservation on a cache hit *)
}

(** All rates zero: no injection. *)
val no_faults : faults

type t

(** Raised by {!check_exn} with the formatted violation list. *)
exception Violation of string

(** [create ~cache ~text_arena ~data_arena ()] wraps the given cache
    and arenas. [clock] (default {!Telemetry.now_us}) seeds the fault
    stream; [faults] enables injection. *)
val create :
  cache:Cache.t ->
  text_arena:Constraints.Placement.t ->
  data_arena:Constraints.Placement.t ->
  ?clock:(unit -> float) ->
  ?faults:faults ->
  unit ->
  t

(** The full text extent [base, size) of a cached image (at least one
    byte, so degenerate images still occupy their base). *)
val text_extent : Cache.entry -> int * int

(** The full data extent, including bss. *)
val data_extent : Cache.entry -> int * int

(** The arena owner name of an entry (its image name). *)
val owner_of : Cache.entry -> string

(** Can this cached placement be revived for [owner]? True when both
    the full text and data extents are either already reserved under
    [owner] at the entry's bases or completely free. *)
val acceptable : t -> owner:string -> Cache.entry -> bool

(** Re-establish the reservations of a cached entry and mark it
    [Placed]. Never leaves a half-established reservation: if the data
    extent fails, a freshly taken text extent is rolled back.
    [Error owner'] names the conflicting occupant (or ["fault:reserve"]
    under injection). *)
val reacquire : t -> owner:string -> Cache.entry -> (unit, string) result

(** Mark a freshly placed-and-linked entry [Placed] (its reservations
    were just taken by [Placement.place]) and register its owner as
    residency-managed. *)
val note_placed : t -> Cache.entry -> unit

(** Mark an entry [Static]: fixed client bases, no arena claims. *)
val note_static : t -> Cache.entry -> unit

(** If the entry is marked [Placed] but its reservations are gone
    (stolen or released externally), release any surviving half, mark
    it [Evicted], and return [true]. *)
val demote_if_lost : t -> Cache.entry -> bool

(** Trim the cache via {!Cache.evict_to_budget}, releasing arena
    reservations only for [Placed] victims, marking every victim
    [Evicted], and self-checking the invariants. Returns the
    victims. *)
val evict_to_budget : t -> bytes:int -> Cache.entry list

(** {1 Invariant checking} *)

type violation = {
  v_code : string;  (** ["unreserved"] | ["overlap"] | ["orphan"] *)
  v_msg : string;
}

val violation_message : violation -> string

(** Verify that the cache and the arenas agree:
    {ol
    {- every [Placed] entry's full text+data extents are reserved under
       its owner at the entry's bases;}
    {- no two live [Placed] entries overlap in either arena;}
    {- no arena interval belonging to a residency-managed owner is
       orphaned — left behind with no live [Placed] entry.}}
    Intervals of unmanaged owners (e.g. [Dynload]'s per-process ranges)
    are ignored. *)
val check_invariants : t -> violation list

(** @raise Violation if {!check_invariants} reports anything. *)
val check_exn : t -> unit

(** Run {!check_exn} unless self-checking was disabled. *)
val self_check : t -> unit

(** Enable/disable the automatic self-check (default: enabled). *)
val set_self_check : t -> bool -> unit

(** {1 Fault injection} *)

(** If the eviction-storm fault fires, evict the entire cache; returns
    the number of entries evicted (0 when it does not fire). *)
val maybe_evict_storm : t -> int

(** Run [f] with the strongest base-address preference temporarily
    blocked when the placement-conflict fault fires, forcing [f]'s
    placement to an alternate base. The blocker is always released. *)
val with_place_conflict :
  t ->
  arena:Constraints.Placement.t ->
  prefs:(int * Constraints.Placement.pref) list ->
  (unit -> 'a) ->
  'a

(** A seeded coherence violation, for exercising {!check_invariants}:
    corrupt the state so exactly that class of violation exists. *)
type seeded_violation =
  | Lost_reservation  (** release a placed entry's text interval *)
  | Orphaned_interval  (** drop a placed entry, keeping its intervals *)
  | Overlapping_entries  (** duplicate a placed entry under a new key *)

(** Corrupt the state (requires at least one [Placed] entry).
    @raise Invalid_argument when nothing is placed. *)
val inject : t -> seeded_violation -> unit
