(** Critical-path extraction and latency blame over the causal event
    graph (see blame.mli). *)

module Causal = Telemetry.Causal

(* -- critical paths --------------------------------------------------------- *)

type category =
  | Self of string
  | Queue
  | Batch
  | Coalesce
  | Sched

let category_label = function
  | Self stage -> "self." ^ stage
  | Queue -> "queue"
  | Batch -> "batch"
  | Coalesce -> "coalesce"
  | Sched -> "sched"

(* The stable omos.blame/1 category order; unknown self stages (there
   are none today) would append after these. *)
let category_order =
  [
    "self.parse";
    "self.lint";
    "self.eval";
    "self.place";
    "self.link";
    "queue";
    "batch";
    "coalesce";
    "sched";
  ]

type slice = {
  s_cat : category;
  s_from : float;
  s_until : float;
  s_self : float; (* charged self-cost of a segment slice (= duration
                     except for batched place); waits carry 0 *)
  s_on : int; (* request waited on, [-1] when not a typed wait *)
}

(* One dispatched unit of the recorded pipeline, for the what-if
   replay. Unlike slices, the chain keeps zero-duration stage hops —
   parse/lint/eval charge nothing in the committed cost model, but each
   hop is still one FIFO queue rotation, and dropping them would let a
   builder's place charge overtake a later hit's map dispatch that in
   the real schedule slipped ahead of it. *)
type hop =
  | Run of { stage : string; dur : float } (* a dispatched stage task *)
  | Park of { wrap : float } (* batch barrier; flushed when queue idles *)
  | Wait of { on : int } (* coalesced onto in-flight request [on] *)
  | Seal (* the map dispatch where sim_us was sealed *)

type path = {
  p_id : int;
  p_client : int;
  p_target : string;
  p_submit : float;
  p_done : float; (* when [sim_us] was sealed (map-stage start) *)
  p_sim_us : float;
  p_hit : bool;
  p_solver_us : float;
  p_slices : slice list; (* chronological; tiles [p_submit, p_done) *)
  p_chain : hop list; (* pipeline order, ends with [Seal] *)
}

let slice_us (s : slice) : float = s.s_until -. s.s_from

(* Build the critical path of one completed request: its recorded
   segments and typed waits in chronological order, with every uncovered
   gap filled — the gap before the first segment is admission [Queue],
   every later gap is scheduler dispatch delay [Sched] (the only way a
   request is idle without being parked). The slices tile
   [g_submit, g_done) exactly because every boundary is a shared
   simulated-clock read. *)
let critical_path (r : Causal.req) : path option =
  match r.g_done with
  | None -> None
  | Some done_us ->
      let horizon = done_us in
      (* the map segment starts exactly at [horizon] (where sim_us was
         sealed) and is excluded from the path *)
      let segs =
        List.filter (fun (s : Causal.segment) -> s.g_t0 < horizon) r.g_segments
      in
      let waits =
        List.filter_map
          (fun (w : Causal.wait) ->
            if w.w_from >= horizon then None
            else Some { w with w_until = Float.min w.w_until horizon })
          r.g_waits
      in
      (* merge chronologically; a wait starting where a segment starts
         sorts after it (waits are recorded at the end of the stage
         that parks) *)
      let events =
        List.merge compare
          (List.map (fun (s : Causal.segment) -> ((s.g_t0, 0), `Seg s)) segs)
          (List.map (fun (w : Causal.wait) -> ((w.w_from, 1), `Wait w)) waits)
      in
      let cursor = ref r.g_submit in
      let first = ref true in
      let out = ref [] in
      let chain = ref [] in
      let push cat ~from ~until ~self ~on =
        if until > from then
          out :=
            { s_cat = cat; s_from = from; s_until = until; s_self = self; s_on = on }
            :: !out
      in
      let fill_gap_to (start : float) : unit =
        if start > !cursor then begin
          let cat = if !first then Queue else Sched in
          push cat ~from:!cursor ~until:start ~self:0.0 ~on:(-1);
          cursor := start
        end
      in
      List.iter
        (fun (_, ev) ->
          match ev with
          | `Seg (s : Causal.segment) ->
              fill_gap_to s.g_t0;
              let t1 = Float.min s.g_t1 horizon in
              push (Self s.g_stage) ~from:s.g_t0 ~until:t1 ~self:s.g_self
                ~on:(-1);
              (* a batched place is recognized by the recorded shared
                 solver share — only the flush sets it; its batch wait
                 can be zero-length and is no marker *)
              chain :=
                (if s.g_stage = "place" && r.g_solver_us > 0.0 then
                   Park { wrap = s.g_self }
                 else Run { stage = s.g_stage; dur = t1 -. s.g_t0 })
                :: !chain;
              first := false;
              if t1 > !cursor then cursor := t1
          | `Wait (w : Causal.wait) ->
              fill_gap_to w.w_from;
              let cat =
                match w.w_kind with
                | Causal.Queue -> Queue
                | Causal.Batch -> Batch
                | Causal.Coalesce -> Coalesce
                | Causal.Sched -> Sched
              in
              push cat ~from:w.w_from ~until:w.w_until ~self:0.0 ~on:w.w_on;
              (* batch waits are subsumed by the Park above; queue/sched
                 gaps re-emerge from the replay's own dispatch order *)
              if w.w_kind = Causal.Coalesce then
                chain := Wait { on = w.w_on } :: !chain;
              first := false;
              if w.w_until > !cursor then cursor := w.w_until)
        events;
      fill_gap_to horizon;
      Some
        {
          p_id = r.g_id;
          p_client = r.g_client;
          p_target = r.g_target;
          p_submit = r.g_submit;
          p_done = done_us;
          p_sim_us = r.g_sim_us;
          p_hit = r.g_hit;
          p_solver_us = r.g_solver_us;
          p_slices = List.rev !out;
          p_chain = List.rev (Seal :: !chain);
        }

let paths (rs : Causal.req list) : path list = List.filter_map critical_path rs

(* -- blame profile ---------------------------------------------------------- *)

type stat = { bs_total_us : float; bs_frac : float; bs_p50_us : float; bs_p95_us : float }

type profile = {
  bp_requests : int;
  bp_total_sim_us : float;
  bp_wait_us : float; (* everything that is not self-compute *)
  bp_categories : (string * stat) list; (* category_order, then extras *)
}

let is_self = function Self _ -> true | _ -> false

(* nearest-rank percentile over an unsorted sample *)
let percentile (xs : float list) (p : float) : float =
  match xs with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let profile (ps : path list) : profile =
  (* per-request per-category sums *)
  let per_req : (string, float) Hashtbl.t list =
    List.map
      (fun p ->
        let h = Hashtbl.create 8 in
        List.iter
          (fun s ->
            let k = category_label s.s_cat in
            Hashtbl.replace h k
              ((try Hashtbl.find h k with Not_found -> 0.0) +. slice_us s))
          p.p_slices;
        h)
      ps
  in
  let keys =
    let extra = ref [] in
    List.iter
      (Hashtbl.iter (fun k _ ->
           if (not (List.mem k category_order)) && not (List.mem k !extra)
           then extra := k :: !extra))
      per_req;
    category_order @ List.sort compare !extra
  in
  let total_sim = List.fold_left (fun a p -> a +. p.p_sim_us) 0.0 ps in
  let wait_us =
    List.fold_left
      (fun a p ->
        List.fold_left
          (fun a s -> if is_self s.s_cat then a else a +. slice_us s)
          a p.p_slices)
      0.0 ps
  in
  let categories =
    List.map
      (fun k ->
        let samples =
          List.map
            (fun h -> try Hashtbl.find h k with Not_found -> 0.0)
            per_req
        in
        let total = List.fold_left ( +. ) 0.0 samples in
        ( k,
          {
            bs_total_us = total;
            bs_frac = (if total_sim > 0.0 then total /. total_sim else 0.0);
            bs_p50_us = percentile samples 50.0;
            bs_p95_us = percentile samples 95.0;
          } ))
      keys
  in
  {
    bp_requests = List.length ps;
    bp_total_sim_us = total_sim;
    bp_wait_us = wait_us;
    bp_categories = categories;
  }

(* -- folded stacks ---------------------------------------------------------- *)

(* Flamegraph folded lines: `<target>;self;<stage>` and
   `<target>;wait;<category>`, microseconds summed, sorted by key. *)
let folded (ps : path list) : (string * float) list =
  let h = Hashtbl.create 32 in
  List.iter
    (fun p ->
      List.iter
        (fun s ->
          let key =
            match s.s_cat with
            | Self stage -> p.p_target ^ ";self;" ^ stage
            | c -> p.p_target ^ ";wait;" ^ category_label c
          in
          Hashtbl.replace h key
            ((try Hashtbl.find h key with Not_found -> 0.0) +. slice_us s))
        p.p_slices)
    ps;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* -- what-if replay --------------------------------------------------------- *)

type knob = Batch_off | Queue_inf | Coalesce_off

let knob_of_string = function
  | "batch=off" -> Some Batch_off
  | "queue=inf" -> Some Queue_inf
  | "coalesce=off" -> Some Coalesce_off
  | _ -> None

let knob_to_string = function
  | Batch_off -> "batch=off"
  | Queue_inf -> "queue=inf"
  | Coalesce_off -> "coalesce=off"

type whatif = {
  wi_knob : string; (* "baseline" when replaying as recorded *)
  wi_recorded_us : float; (* total recorded sim_us *)
  wi_predicted_us : float; (* total predicted sim_us under the knob *)
  wi_per_request : (int * float * float) list; (* id, recorded, predicted *)
}

(* The replay walks each request's recorded [p_chain]: [Run] advances
   the replay clock and re-enqueues FIFO (spawn-at-stage-end),
   [Park]/[Wait] remove the request from the run queue without
   consuming time (a stage parks as it ends), [Seal] is the zero-cost
   map dispatch where sim_us is measured. Queue, Sched, and Batch waits
   have no chain entry — they re-emerge from the replay itself (FIFO
   dispatch order and the flush barrier). *)

(* Apply a knob to a chain. *)
let transform (knob : knob option) (by_id : (int, path) Hashtbl.t)
    (p : path) (items : hop list) : hop list =
  match knob with
  | None | Some Queue_inf ->
      (* queue=inf only matters for runs that overloaded; overloaded
         submissions never complete, so the recorded graph is already
         the unbounded-queue execution *)
      items
  | Some Batch_off ->
      (* every member pays its own solver pass instead of parking *)
      List.map
        (function
          | Park { wrap } ->
              Run { stage = "place"; dur = wrap +. p.p_solver_us }
          | i -> i)
        items
  | Some Coalesce_off -> (
      (* a follower rebuilds instead of waiting: keep its own first
         parse, then run a clone of what its leader did after parse *)
      match
        List.find_opt (function Wait _ -> true | _ -> false) items
      with
      | None -> items
      | Some (Wait { on }) -> (
          let own_prefix =
            let rec take = function
              | Wait _ :: _ -> []
              | i :: rest -> i :: take rest
              | [] -> []
            in
            take items
          in
          match Hashtbl.find_opt by_id on with
          | None ->
              (* leader unknown: drop the wait, keep the recorded
                 cache-hit tail *)
              List.filter (function Wait _ -> false | _ -> true) items
          | Some leader ->
              let rec after_first_run = function
                | Run _ :: rest -> rest
                | _ :: rest -> after_first_run rest
                | [] -> []
              in
              own_prefix @ after_first_run leader.p_chain)
      | Some _ -> items)

(* Deterministic FIFO discrete-event replay of the recorded run. The
   cooperative scheduler is single-threaded and (seed 0) strict FIFO,
   so the replay mirrors it: one global clock, stage tasks re-enqueued
   at the tail, the place barrier flushed when the queue idles. Bursts
   are groups of equal submit stamps (the drivers submit each burst
   without advancing the clock); a later burst starts when both
   submitted and the server is free. *)
let what_if ?(knob : knob option) (ps : path list) : whatif =
  let ps = List.sort (fun a b -> compare a.p_id b.p_id) ps in
  let by_id = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace by_id p.p_id p) ps;
  (* burst groups in submit order (stable: ids ascending inside) *)
  let bursts =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun p ->
        Hashtbl.replace tbl p.p_submit
          (p :: (try Hashtbl.find tbl p.p_submit with Not_found -> [])))
      ps;
    Hashtbl.fold (fun at members acc -> (at, List.rev members) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let finish : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let predicted : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let clock = ref 0.0 in
  let run_burst (at : float) (members : path list) : unit =
    clock := Float.max !clock at;
    (* the drivers are closed-loop (they drain between rounds), so a
       round's latencies count from when it actually enters the server
       — not from the recorded stamp, which a knob that slows an
       earlier round down would otherwise leak into *)
    let base = !clock in
    let chains =
      List.map (fun p -> (p, ref (transform knob by_id p p.p_chain))) members
    in
    let runq = Queue.create () in
    List.iter (fun c -> Queue.add c runq) chains;
    let parked = ref [] in (* (path, wrap, rest) park order, newest-first *)
    let waiting = ref [] in (* (leader, (path, rest)) park order, newest-first *)
    let enqueue (p, items) = Queue.add (p, items) runq in
    let wake (id : int) : unit =
      let woken, rest =
        List.partition (fun (l, _) -> l = id) !waiting
      in
      waiting := rest;
      List.iter (fun (_, c) -> enqueue c) (List.rev woken)
    in
    let rec settle ((p : path), (items : hop list ref)) : unit =
      (* a stage just ended (or the chain is empty): park, wait,
         finish, or spawn the next stage task *)
      match !items with
      | [] ->
          Hashtbl.replace finish p.p_id !clock;
          wake p.p_id
      | Park { wrap } :: rest ->
          items := rest;
          parked := (p, wrap, items) :: !parked
      | Wait { on } :: rest ->
          items := rest;
          if Hashtbl.mem finish on || not (Hashtbl.mem by_id on) then
            (* leader already done (or outside this recording): the
               wake dispatch is immediate *)
            enqueue (p, items)
          else waiting := (on, (p, items)) :: !waiting
      | (Run _ | Seal) :: _ -> enqueue (p, items)
    and step () : bool =
      match Queue.take_opt runq with
      | Some ((p, items) as c) -> (
          match !items with
          | Run { dur; _ } :: rest ->
              clock := !clock +. dur;
              items := rest;
              settle c;
              true
          | Seal :: rest ->
              Hashtbl.replace predicted p.p_id (!clock -. base);
              items := rest;
              settle c;
              true
          | _ ->
              settle c;
              true)
      | None ->
          if !parked <> [] then begin
            (* flush the place barrier: one shared solver pass plus
               every member's own wrapped solve *)
            let members =
              List.sort (fun ((a : path), _, _) (b, _, _) -> compare a.p_id b.p_id)
                !parked
            in
            parked := [];
            let solver =
              List.fold_left
                (fun m ((p : path), _, _) -> Float.max m p.p_solver_us)
                0.0 members
            in
            let wraps =
              List.fold_left (fun a (_, w, _) -> a +. w) 0.0 members
            in
            clock := !clock +. solver +. wraps;
            List.iter (fun (p, _, items) -> enqueue (p, items)) members;
            true
          end
          else if !waiting <> [] then begin
            (* a leader that never completes inside this burst (errored
               or unrecorded): release its followers *)
            let stuck = List.rev !waiting in
            waiting := [];
            List.iter (fun (_, c) -> enqueue c) stuck;
            true
          end
          else false
    in
    while step () do
      ()
    done
  in
  List.iter (fun (at, members) -> run_burst at members) bursts;
  let per_request =
    List.map
      (fun p ->
        ( p.p_id,
          p.p_sim_us,
          try Hashtbl.find predicted p.p_id with Not_found -> 0.0 ))
      ps
  in
  {
    wi_knob =
      (match knob with None -> "baseline" | Some k -> knob_to_string k);
    wi_recorded_us = List.fold_left (fun a (_, r, _) -> a +. r) 0.0 per_request;
    wi_predicted_us = List.fold_left (fun a (_, _, p) -> a +. p) 0.0 per_request;
    wi_per_request = per_request;
  }
