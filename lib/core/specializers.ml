(** The server's specialization styles (paper §3.4, §4.2).

    Blueprint-visible styles beyond the base ones in {!Blueprint.Mgraph}:

    - ["lib-dynamic"] — "creates an m-graph, the evaluation of which
      causes stub functions to be dynamically generated for each
      referenced entry point in the operand. The stub code is compiled
      and returned as the representative implementation of the
      library." The produced module contains only stubs + slots; the
      real code comes later via ["lib-dynamic-impl"].

    - ["lib-dynamic-impl"] — "generates the m-graph which will produce
      the library implementation that is to be loaded and shared":
      plain evaluation of the operand.

    - ["monitor"] — the monitoring transformation of §4.1/§6: wrap
      every exported routine with a logging wrapper. The most recent
      trace is available through {!last_trace} (the server uses it to
      derive reorderings). *)

type t = {
  server : Server.t;
  upcalls : Upcalls.t;
  mutable last_trace : Monitor.trace option;
}

let last_trace (t : t) : Monitor.trace option = t.last_trace

let install (server : Server.t) (upcalls : Upcalls.t) : t =
  let t = { server; upcalls; last_trace = None } in
  (* lib-dynamic: stubs for every exported function of the operand *)
  Server.register_specializer server "lib-dynamic" (fun env _args node ->
      let r = Blueprint.Mgraph.eval env node in
      let frags = Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m in
      let is_function name =
        List.exists
          (fun o ->
            match Sof.Object_file.find_exported o name with
            | Some s -> s.Sof.Symbol.kind = Sof.Symbol.Text
            | None -> false)
          frags
      in
      let entries =
        List.filter is_function (Jigsaw.Module_ops.exports r.Blueprint.Mgraph.m)
      in
      let stubs =
        Stubs.omos_stub_object (List.map Stubs.import_of_name entries)
      in
      (* each stub must export the plain name so clients bind to it *)
      let renames =
        List.fold_left
          (fun m name ->
            Jigsaw.Module_ops.rename ~scope:Jigsaw.Module_ops.Defs_only
              (Jigsaw.Select.compile ("^" ^ Str.quote (name ^ "$stub") ^ "$"))
              name m)
          (Jigsaw.Module_ops.of_object stubs)
          entries
      in
      { Blueprint.Mgraph.m = renames; constraints = [] });
  (* lib-dynamic-impl: the shared implementation itself *)
  Server.register_specializer server "lib-dynamic-impl" (fun env _args node ->
      Blueprint.Mgraph.eval env node);
  (* monitor: interpose logging wrappers; the hotness key is the
     monitored server-object path when the operand is a name, else the
     blueprint digest — stable identities the continuous profile can
     aggregate under across requests *)
  Server.register_specializer server "monitor" (fun env args node ->
      let exits =
        List.exists (function Blueprint.Mgraph.Vstr "exits" -> true | _ -> false) args
      in
      let key =
        match node with
        | Blueprint.Mgraph.Name path -> path
        | n -> "digest:" ^ Blueprint.Mgraph.digest n
      in
      let r = Blueprint.Mgraph.eval env node in
      let m', trace = Monitor.monitored ~exits r.Blueprint.Mgraph.m in
      Monitor.attach ~key upcalls trace;
      t.last_trace <- Some trace;
      { r with Blueprint.Mgraph.m = m' });
  t
