(** Dynamic loading of classes into executing programs (paper §5).

    "Via a meta-object, a client program specifies the class to be
    loaded, any specializations to apply to the meta-object, and a list
    of symbols whose bound values are to be returned from OMOS. …
    A client can request that new classes be loaded, which are then
    merged with its own implementation, allowing the new classes to
    refer to procedures and data structures within the client."

    Two entry points:

    - {!load}: the OCaml-level server interface — evaluate a graph,
      link it {e against the client's own images} (so the new class can
      call back into the client), map it into the running process, and
      return the requested bound values.

    - {!attach}: the in-simulation syscall (number {!dynload_syscall}):
      the SVM client passes a blueprint string and a symbol name, gets
      the symbol's bound address back, and can jump to it with
      [__icall]. *)

let dynload_syscall = 130

exception Dynload_error of string

(* Classes already loaded into a process, so later loads can bind to
   earlier ones ("the client must keep track of which classes it has
   dynamically loaded" — here OMOS does it for them, the extension the
   paper says it plans). *)
type proc_classes = { mutable images : Linker.Image.t list }

type t = {
  server : Server.t;
  loaded : (int, proc_classes) Hashtbl.t; (* pid -> images *)
}

let create (server : Server.t) : t = { server; loaded = Hashtbl.create 8 }

let images_of (t : t) (p : Simos.Proc.t) : proc_classes =
  match Hashtbl.find_opt t.loaded p.Simos.Proc.pid with
  | Some c -> c
  | None ->
      let c = { images = [] } in
      Hashtbl.replace t.loaded p.Simos.Proc.pid c;
      c

(** [load t p ~client_images ~graph ~symbols] instantiates [graph],
    binds it against the process's images (client first, then
    previously loaded classes), maps it into [p] at addresses chosen by
    the constraint system, and returns the bound values of [symbols]. *)
let load (t : t) (p : Simos.Proc.t) ~(client_images : Linker.Image.t list)
    ~(graph : Blueprint.Mgraph.node) ~(symbols : string list) : (string * int) list =
  Telemetry.Request.with_request "dynload" @@ fun () ->
  let server = t.server in
  let k = Server.kernel server in
  Simos.Kernel.charge_sys k k.Simos.Kernel.cost.Simos.Cost.ipc_round_trip;
  let classes = images_of t p in
  let externals = client_images @ classes.images in
  let r = Server.eval server graph in
  let text_size, data_size = Server.module_sizes r.Blueprint.Mgraph.m in
  let tdec =
    Constraints.Placement.place (Server.text_arena server) ~size:(max 1 text_size)
      ~owner:(Printf.sprintf "dynload-pid%d" p.Simos.Proc.pid)
      ()
  in
  let ddec =
    Constraints.Placement.place (Server.data_arena server) ~size:(max 1 data_size)
      ~owner:(Printf.sprintf "dynload-pid%d" p.Simos.Proc.pid)
      ()
  in
  let img, lstats =
    Linker.Link.link ~externals
      ~layout:
        {
          Linker.Link.text_base = tdec.Constraints.Placement.base;
          data_base = ddec.Constraints.Placement.base;
        }
      (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
  in
  Simos.Kernel.charge_sys k
    (k.Simos.Kernel.cost.Simos.Cost.reloc_apply
    *. float_of_int lstats.Linker.Link.relocs_applied);
  (* map it into the running task *)
  Simos.Kernel.map_image k p ~key:("dynload@" ^ Linker.Image.digest img) img;
  classes.images <- img :: classes.images;
  (* dynload reservations are per-process, outside the cache, so they
     are unmanaged — but loading must never break cache/arena coherence *)
  Residency.self_check (Server.residency server);
  List.map
    (fun s ->
      match Linker.Image.find_symbol img s with
      | Some a -> (s, a)
      | None -> raise (Dynload_error ("symbol not bound: " ^ s)))
    symbols

(** [unload t p img] dynamically unlinks a previously loaded class: its
    regions are unmapped from the process and its arena reservations
    released. The paper notes dld offered unlinking where OMOS did not,
    but that "since OMOS retains access to the symbol table and
    relocation information for loaded modules, unlinking support could
    be added" — this is that addition. Raises {!Dynload_error} if [img]
    was not loaded into [p]. *)
let unload (t : t) (p : Simos.Proc.t) (img : Linker.Image.t) : unit =
  Telemetry.Request.with_request "unload" @@ fun () ->
  let classes = images_of t p in
  if not (List.memq img classes.images) then
    raise (Dynload_error ("not loaded in this process: " ^ img.Linker.Image.name));
  List.iter
    (fun (s : Linker.Image.segment) ->
      Simos.Addr_space.unmap p.Simos.Proc.aspace ~lo:s.Linker.Image.vaddr)
    img.Linker.Image.segments;
  if img.Linker.Image.bss_size > 0 then
    Simos.Addr_space.unmap p.Simos.Proc.aspace ~lo:img.Linker.Image.bss_vaddr;
  (match Linker.Image.text_segment img with
  | Some seg ->
      Constraints.Placement.release (Server.text_arena t.server)
        ~lo:seg.Linker.Image.vaddr
  | None -> ());
  (match Linker.Image.data_segment img with
  | Some seg ->
      Constraints.Placement.release (Server.data_arena t.server)
        ~lo:seg.Linker.Image.vaddr
  | None -> ());
  classes.images <- List.filter (fun i -> not (i == img)) classes.images;
  Residency.self_check (Server.residency t.server)

(** Images currently loaded into [p] through this loader. *)
let loaded (t : t) (p : Simos.Proc.t) : Linker.Image.t list = (images_of t p).images

(** Install the in-simulation syscall: r1 = blueprint string address,
    r2 = symbol name address; returns the bound address in r0 (or -1).
    [client_images_of] supplies the images the client was launched
    with, so the loaded class can bind to client symbols. *)
let attach (t : t) (upcalls : Upcalls.t)
    ~(client_images_of : Simos.Proc.t -> Linker.Image.t list) : unit =
  Upcalls.register upcalls dynload_syscall (fun _k p cpu _n ->
      let bp = Svm.Cpu.read_cstring cpu (Int32.to_int (Svm.Cpu.get_reg cpu 1)) in
      let sym = Svm.Cpu.read_cstring cpu (Int32.to_int (Svm.Cpu.get_reg cpu 2)) in
      (try
         let graph = Blueprint.Mgraph.parse bp in
         match
           load t p ~client_images:(client_images_of p) ~graph ~symbols:[ sym ]
         with
         | [ (_, addr) ] -> Svm.Cpu.set_reg cpu Svm.Isa.reg_ret (Int32.of_int addr)
         | _ -> Svm.Cpu.set_reg cpu Svm.Isa.reg_ret (-1l)
       with _ -> Svm.Cpu.set_reg cpu Svm.Isa.reg_ret (-1l));
      Svm.Cpu.Sys_continue)
