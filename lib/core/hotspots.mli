(** The layout-locality auditor (paper §4.1, E1): replay a {!Monitor}
    trace against an image's actual fragment order, count the distinct
    text pages the traced working set touches, and compare against the
    optimal packed layout and the {!Reorder}-produced layout. The gap
    actual - optimal is the image's {e locality headroom} — how many
    pages profile-driven reordering could reclaim. Results are
    recorded in {!Telemetry.Hotness} (and from there surface in health
    rows, SLO gates, and [omos.hotspots/1] exports). *)

(** [(name, (lo, hi))] byte ranges of exported text functions in the
    concatenated text of the fragments, in fragment order. *)
val function_ranges : Sof.Object_file.t list -> (string * (int * int)) list

(** Distinct text pages the named functions occupy under the given
    ranges. *)
val distinct_pages : (string * (int * int)) list -> string list -> int

(** Pages the named functions would occupy packed contiguously from a
    page boundary — the lower bound no reordering can beat. *)
val packed_pages : (string * (int * int)) list -> string list -> int

type audit = {
  a_key : string;  (** hotness key the audit is recorded under *)
  a_routines_called : int;
  a_routines_total : int;
  a_calls : int;  (** call events in the trace *)
  a_bytes_touched : int;  (** text bytes of the called routines *)
  a_pages_actual : int;  (** distinct pages under the actual order *)
  a_pages_optimal : int;  (** packed lower bound *)
  a_pages_reordered : int;  (** distinct pages after {!Reorder} *)
}

(** Locality headroom: pages reordering could reclaim. *)
val headroom : audit -> int

(** Residual headroom a real reordering would leave. *)
val residual : audit -> int

(** [audit ~key ~trace frags] replays [trace] against the fragment
    order [frags], records the result under [key] in
    {!Telemetry.Hotness}, and returns it. *)
val audit : key:string -> trace:Monitor.trace -> Sof.Object_file.t list -> audit
