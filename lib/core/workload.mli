(** Deterministic multi-client workload driver: N simulated clients
    interleaving instantiates, cache-hitting re-requests,
    dynloads/unloads, and evictions, scheduled off the simulated clock
    and a seeded PRNG — byte-reproducible across runs. Feeds the
    request-scoped telemetry ({!Telemetry.Request}, {!Telemetry.Health},
    the flight recorder) and backs [ofe workload] / [ofe top] /
    [ofe health]. *)

exception Spec_error of string

(** A scenario: [clients] simulated clients issue [requests] operations
    drawn from [mix] (op name → weight) over the library [metas],
    seeded by [seed]. [concurrency] is the pipeline depth: up to that
    many consecutive instantiates are submitted to the server's staged
    pipeline before awaiting any (1 = fully serial; dynload/evict act
    as barriers). [faults] optionally arms the residency layer's fault
    injection for the run. *)
type spec = {
  clients : int;
  requests : int;
  seed : int;
  concurrency : int;
  metas : string list;
  mix : (string * int) list;
  evict_bytes : int;  (** disk budget handed to eviction requests *)
  faults : Residency.faults option;
}

(** 3 clients, 30 requests, seed 7, concurrency 1, three library metas,
    mix [instantiate=6 dynload=2 evict=1], no faults. *)
val default : spec

(** Parse the line-oriented spec format ([#] comments; directives
    [clients N], [requests N], [seed N], [concurrency N],
    [meta PATH] (repeatable), [mix op=w ...], [evict_bytes N],
    [fault_seed N],
    [fault place_conflict|evict_storm|reserve_fail RATE]); omitted
    directives keep {!default}'s values.
    @raise Spec_error on unknown directives or bad values. *)
val parse : string -> spec

val parse_file : string -> spec

(** One completed workload operation. [w_req] is the request id
    {!Telemetry.Request} assigned to the operation's outermost request;
    [w_hit]/[w_cost_us] carry the server's response for instantiates
    (clock-delta cost for the other ops). *)
type event = {
  w_req : int;
  w_client : int;
  w_op : string;  (** instantiate | dynload | unload | evict *)
  w_target : string;
  w_hit : bool option;
  w_cost_us : float;
  w_wait_us : float;
      (** of [w_cost_us], time spent waiting on other requests
          ([queue_us + batch_us + coalesce_us] of the response); [0]
          for the barrier ops *)
}

(** Build a fresh {!World}, reset telemetry, and run the scenario.
    [setup] runs against the fresh world before the host processes are
    built and before the telemetry reset — use it to register extra
    fragments/metas or configure the server (anything it builds stays
    out of the request stream). [on_event] fires after each operation
    completes (for streaming output); with [concurrency > 1],
    instantiate events are delivered at the next pipeline barrier,
    still in submission order. The full event list is returned.
    Identical specs produce identical event lists and identical
    telemetry, at any concurrency.

    The server's admission-control queue limit is only ever {e raised}
    (when [concurrency] exceeds the configured limit) and is restored
    when the run returns, so fault scenarios still observe
    {!Server.Overload} under a limit [setup] configured. *)
val run :
  ?setup:(World.t -> unit) -> ?on_event:(event -> unit) -> spec -> event list
