(** A complete simulated machine: kernel + OMOS server + the workload
    namespace (crt0, ls, codegen, libc, the auxiliary libraries) and
    the filesystem datasets. This is the fixture the examples, tests,
    and the benchmark harness all start from. *)

type personality = Hpux | Mach_osf1 | Mach_386

(* Workload objects are deterministic; compile them once per run. *)
let compiled_libc = lazy (Workloads.Libc_gen.objects ())
let compiled_ls = lazy (Workloads.Ls_gen.obj ())
let compiled_codegen = lazy (Workloads.Codegen_gen.objects ())
let compiled_auxlibs = lazy (Workloads.Codegen_gen.libraries ())
let compiled_crt0 = lazy (Workloads.Crt0.obj ())

(* A tiny interposition fixture for [ofe explain] and the provenance
   tests: [/demo/impl.o] overrides [/demo/base.o]'s [greet], and the
   result is exported under [hello]. *)
let demo_base_source =
  "int helper() { return 1; }\nint greet() { return helper() + 41; }\n"

let demo_impl_source = "int greet() { return 52; }\n"

let compiled_demo_base =
  lazy (Minic.Driver.compile ~name:"/demo/base.o" demo_base_source)

let compiled_demo_impl =
  lazy (Minic.Driver.compile ~name:"/demo/impl.o" demo_impl_source)

let demo_meta_source =
  "(constraint-list \"T\" 0x3000000 \"D\" 0x50000000)\n\
   (rename \"^greet$\" \"hello\" (override /demo/base.o /demo/impl.o))\n"

(* Figure 1, almost verbatim. *)
let libc_meta_source =
  "(constraint-list \"T\" 0x100000 \"D\" 0x40200000) ; default address constraint\n\
   (merge\n\
  \  /libc/gen /libc/stdio /libc/string /libc/stdlib\n\
  \  /libc/hppa /libc/net /libc/quad /libc/rpc)\n"

type t = {
  kernel : Simos.Kernel.t;
  server : Server.t;
  upcalls : Upcalls.t;
  rt : Schemes.t;
  specializers : Specializers.t;
  personality : personality;
}

let create ?(personality = Hpux) ?(faults : Residency.faults option)
    ?(many_entries = Workloads.Dataset.default_many_entries) () : t =
  let cost =
    match personality with
    | Hpux -> Simos.Cost.hpux
    | Mach_osf1 -> Simos.Cost.mach_osf1
    | Mach_386 -> Simos.Cost.mach_386
  in
  let kernel = Simos.Kernel.create ~cost () in
  Workloads.Dataset.install ~many_entries kernel.Simos.Kernel.fs;
  let server = Server.create ~kernel ?faults () in
  (* fragments *)
  Server.add_fragment server "/lib/crt0.o" (Lazy.force compiled_crt0);
  Server.add_fragment server "/obj/ls.o" (Lazy.force compiled_ls);
  List.iter (fun (path, o) -> Server.add_fragment server path o) (Lazy.force compiled_libc);
  List.iter
    (fun (path, o) -> Server.add_fragment server (path ^ ".o") o)
    (Lazy.force compiled_auxlibs);
  List.iter (fun (path, o) -> Server.add_fragment server path o) (Lazy.force compiled_codegen);
  Server.add_fragment server "/demo/base.o" (Lazy.force compiled_demo_base);
  Server.add_fragment server "/demo/impl.o" (Lazy.force compiled_demo_impl);
  (* library meta-objects *)
  Server.register_meta_source server "/lib/libc" libc_meta_source;
  Server.register_meta_source server "/demo/hello" demo_meta_source;
  List.iter
    (fun (path, _) ->
      Server.register_meta_source server path (Printf.sprintf "(merge %s.o)" path))
    (Lazy.force compiled_auxlibs);
  let upcalls = Upcalls.install kernel in
  let rt = Schemes.runtime ~upcalls server in
  let specializers = Specializers.install server upcalls in
  { kernel; server; upcalls; rt; specializers; personality }

(* -- workload program descriptions ------------------------------------- *)

let ls_client (_ : t) : Sof.Object_file.t list =
  [ Lazy.force compiled_crt0; Lazy.force compiled_ls ]

let ls_libs : string list = [ "/lib/libc" ]

let codegen_client (_ : t) : Sof.Object_file.t list =
  Lazy.force compiled_crt0 :: List.map snd (Lazy.force compiled_codegen)

let codegen_libs : string list =
  [ "/lib/libm"; "/lib/libl"; "/lib/libC"; "/lib/libal1"; "/lib/libal2"; "/lib/libc" ]

(** Arguments for the paper's three measured invocations. *)
let ls_single_args = [ "ls"; Workloads.Dataset.dir_single ]
let ls_laf_args = [ "ls"; "-laF"; Workloads.Dataset.dir_many ]
let codegen_args = [ "codegen" ]
