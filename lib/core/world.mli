(** A complete simulated machine: kernel + OMOS server + the workload
    namespace (crt0, ls, codegen, libc, the auxiliary libraries) and
    the filesystem datasets — the fixture examples, tests, and benches
    start from. *)

(** Which cost personality the kernel runs. *)
type personality = Hpux | Mach_osf1 | Mach_386

(** Figure 1's libc meta-object, almost verbatim. *)
val libc_meta_source : string

type t = {
  kernel : Simos.Kernel.t;
  server : Server.t;
  upcalls : Upcalls.t;
  rt : Schemes.t;
  specializers : Specializers.t;
  personality : personality;
}

(** [faults] configures the server's residency fault injection (see
    {!Residency.faults}); omit it for none. *)
val create :
  ?personality:personality -> ?faults:Residency.faults -> ?many_entries:int -> unit -> t

(** Client objects of the `ls` program (crt0 + /obj/ls.o). *)
val ls_client : t -> Sof.Object_file.t list

val ls_libs : string list

(** Client objects of `codegen` (crt0 + its 33 translation units). *)
val codegen_client : t -> Sof.Object_file.t list

(** codegen's six libraries, libc last. *)
val codegen_libs : string list

(** Arguments for the paper's three measured invocations. *)
val ls_single_args : string list

val ls_laf_args : string list
val codegen_args : string list
