(** Program invocation through OMOS.

    Two paths, matching the paper's §5 and the OSF/1 rows of Table 1:

    - {!bootstrap_exec}: the portable path. The kernel execs a small
      bootstrap loader (the [#! /bin/omos] interpreter), which contacts
      OMOS via IPC; OMOS maps the cached images into the client and the
      bootstrap jumps to the entry point. Costs: a real (small) exec
      plus one IPC round trip.

    - {!integrated_exec}: OMOS integrated into the OS exec. "exec sets
      up an empty task and calls OMOS with handles to the task and the
      OMOS object … This replaces the portion of exec which is
      responsible for reading in object file contents." Costs: task
      setup plus a direct handoff — no bootstrap binary, no file
      opening, no header parsing. *)

(* The bootstrap loader binary is tiny: two pages of text+data. *)
let bootstrap_binary_bytes = 2 * Simos.Cost.page_size

(* Refuse to map a loadable whose parts lost their cache entries: an
   evicted image no longer owns its address range, so mapping it could
   land on top of whatever was placed there since. *)
let assert_resident (l : Server.loadable) : unit =
  List.iter
    (fun (b : Server.built) ->
      if Server.built_evicted b then
        raise
          (Server.Server_error
             ("exec of evicted image "
             ^ b.Server.entry.Cache.image.Linker.Image.name
             ^ "; re-request the loadable")))
    l.Server.parts

let charge_bootstrap_load (k : Simos.Kernel.t) : unit =
  let cost = k.Simos.Kernel.cost in
  Simos.Kernel.charge_sys k cost.Simos.Cost.open_file;
  Simos.Kernel.charge_sys k
    (cost.Simos.Cost.parse_header_per_kb
    *. (float_of_int bootstrap_binary_bytes /. 1024.0));
  (* its pages are demand-loaded once per boot, then stay cached *)
  if not (Hashtbl.mem k.Simos.Kernel.read_cached "/bin/omos-boot") then begin
    Hashtbl.replace k.Simos.Kernel.read_cached "/bin/omos-boot" ();
    Simos.Kernel.charge_io k (2.0 *. cost.Simos.Cost.disk_read_page)
  end

(** Launch [l] through the bootstrap loader. Returns the ready process
    (run it with {!Simos.Kernel.run}). *)
let bootstrap_exec (server : Server.t) (l : Server.loadable) ~(args : string list) :
    Simos.Proc.t =
  assert_resident l;
  let k = Server.kernel server in
  let cost = k.Simos.Kernel.cost in
  Simos.Kernel.charge_sys k cost.Simos.Cost.fork_exec_base;
  charge_bootstrap_load k;
  (* bootstrap -> OMOS request over IPC *)
  Simos.Kernel.charge_sys k cost.Simos.Cost.ipc_round_trip;
  let p = Simos.Kernel.create_process k ~args in
  List.iter (Server.map_into server p) l.Server.parts;
  Simos.Kernel.finish_exec k p ~entry:l.Server.entry;
  p

(* -- exporting OMOS entries into the Unix namespace (§5) ----------------- *)

(** The [#! /bin/omos] interpreter: "This allows us to export entries
    from the OMOS namespace into the Unix namespace, in a portable
    fashion (as a parameter in the file)." {!install_interpreter}
    registers it with the kernel; {!publish} drops a two-line script in
    the filesystem so a plain [exec "/bin/ls"] boots through OMOS. *)
type registry = {
  server : Server.t;
  programs : (string, unit -> Server.loadable) Hashtbl.t;
}

let interpreter_path = "/bin/omos"

let install_interpreter (server : Server.t) : registry =
  let reg = { server; programs = Hashtbl.create 8 } in
  Simos.Kernel.register_interpreter (Server.kernel server) interpreter_path
    (fun _k ~params ~args ->
      match params with
      | [ name ] -> (
          match Hashtbl.find_opt reg.programs name with
          | Some loadable -> bootstrap_exec server (loadable ()) ~args
          | None ->
              raise (Simos.Kernel.Exec_error ("omos: unknown program " ^ name)))
      | _ -> raise (Simos.Kernel.Exec_error "omos: expected one meta-object name"));
  reg

(** [publish reg ~path ~name loadable] writes [#! /bin/omos name] at
    [path] and registers the program, so ordinary exec reaches it. *)
let publish (reg : registry) ~(path : string) ~(name : string)
    (loadable : unit -> Server.loadable) : unit =
  Hashtbl.replace reg.programs name loadable;
  Simos.Fs.write_file (Server.kernel reg.server).Simos.Kernel.fs path
    (Bytes.of_string (Printf.sprintf "#! %s %s\n" interpreter_path name))

(** Launch [l] through the OMOS-integrated exec. *)
let integrated_exec (server : Server.t) (l : Server.loadable) ~(args : string list) :
    Simos.Proc.t =
  assert_resident l;
  let k = Server.kernel server in
  let cost = k.Simos.Kernel.cost in
  (* empty-task setup; OMOS is handed the task directly — half an IPC,
     no bootstrap, no file work, none of the exec server's binary
     processing *)
  Simos.Kernel.charge_sys k cost.Simos.Cost.task_create;
  Simos.Kernel.charge_sys k (0.5 *. cost.Simos.Cost.ipc_round_trip);
  let p = Simos.Kernel.create_process k ~args in
  List.iter (Server.map_into server p) l.Server.parts;
  Simos.Kernel.finish_exec k p ~entry:l.Server.entry;
  p
