(** The OMOS server.

    A persistent process (here: a persistent OCaml value living across
    simulated program invocations) that owns the namespace, the image
    cache, the address-space constraint arenas, and the blueprint
    evaluation environment. Program linking and loading are the special
    case of generic object instantiation: clients name a meta-object,
    the server evaluates its m-graph (honouring specializations),
    places the result with the constraint system, caches the mappable
    image, and maps it into client tasks. *)

exception Server_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Server_error s)) fmt

(* Address-space conventions (cf. Figure 1's "T" 0x100000
   "D" 0x40200000): libraries live in the shared arenas; client
   programs at fixed low/high bases outside them. *)
let lib_text_lo = 0x00100000
let lib_text_hi = 0x03FF0000
let lib_data_lo = 0x40000000
let lib_data_hi = 0x5FFF0000
let client_text_base = 0x04000000
let client_data_base = 0x68000000

type work_stats = {
  mutable links : int; (* full links performed *)
  mutable relocs : int; (* relocations applied by the server *)
  mutable source_compiles : int;
  mutable instantiations : int;
}

(** A recorded placement conflict: an object wanted an address it could
    not have. "OMOS could easily record the conflicts found, and
    occasionally the system manager could feed that data into OMOS'
    constraint system to determine better placements" (§4.1). *)
type conflict = {
  c_owner : string;
  c_seg : Blueprint.Mgraph.seg;
  c_wanted : Constraints.Placement.pref;
  c_got : int;
}

(* One node of the current reuse plan: the {!Analysis.Impact} verdict
   for a graph node, keyed (in [t.impact_plan]) by the node's own
   path-addressed digest so evaluation can find it in O(1) without
   re-walking the subtree. *)
type plan_entry = {
  pe_digest : string; (* interface digest (memo key) *)
  pe_stable : bool; (* provably replay-invariant; only these memoize *)
  pe_gensym : int; (* mangling ids the subtree consumes *)
}

(* One request moving through the staged pipeline (parse → lint → eval
   → place → link → map). The job carries everything a stage hands the
   next one, so stages of different requests can interleave freely. *)
type job = {
  jt : int; (* ticket = telemetry request id, assigned at submission *)
  jclient : int;
  jreq : request;
  jsubmit_us : float;
  mutable jwork_us : float; (* simulated time spent inside stages *)
  mutable jhit : bool;
  mutable jname : string;
  mutable jkey : string; (* cache key, fixed at parse *)
  mutable jgraph : Blueprint.Mgraph.node option;
  mutable jeval : Blueprint.Mgraph.result option;
  mutable jtext_size : int;
  mutable jdata_size : int;
  mutable jtdec : Constraints.Placement.decision option;
  mutable jddec : Constraints.Placement.decision option;
  mutable jframe : Telemetry.Provenance.open_frame option;
      (* the suspended binding-journal frame between stages *)
  mutable jreacquire_conflict : int option;
      (* wanted text base of a failed cache-hit reacquisition *)
  mutable jpark_us : float; (* when the job last parked (batch/coalesce) *)
  mutable jbatch_us : float; (* wait at the place barrier until flush *)
  mutable jcoalesce_us : float; (* wait on a leader's in-flight build *)
  mutable jpending_coalesced : int;
      (* followers coalesced onto this job before its journal frame
         opened; replayed as Coalesced events when lint opens it *)
  mutable joutcome : (response, exn) result option;
}

and response = {
  built : built;
  cache_hit : bool; (* served from the image cache, no link performed *)
  sim_us : float; (* submission to completion, queue wait included *)
  queue_us : float;
      (* admission + scheduler wait: the part of [sim_us] spent neither
         working nor in the two typed waits below *)
  batch_us : float; (* wait parked at the place barrier *)
  coalesce_us : float; (* wait on another request's in-flight build *)
}

and built = { entry : Cache.entry; key : string }

and target =
  | Library of {
      path : string;
      spec : (string * Blueprint.Mgraph.value list) option;
    }
  | Static of {
      name : string;
      graph : Blueprint.Mgraph.node;
      entry_symbol : string option;
    }

and request = { target : target; externals : Linker.Image.t list }

exception Overload of string

type t = {
  ns : Namespace.t;
  cache : Cache.t;
  text_arena : Constraints.Placement.t;
  data_arena : Constraints.Placement.t;
  residency : Residency.t; (* joint owner of cache <-> arena coherence *)
  kernel : Simos.Kernel.t;
  env : Blueprint.Mgraph.env;
  work : work_stats;
  lints : (string, Analysis.Lint.report) Hashtbl.t;
      (* registration-time findings per meta-object path *)
  impact_trees : (string, Analysis.Impact.tree) Hashtbl.t;
      (* registration-time dependence analysis per meta-object path *)
  impact_diffs : (string, Analysis.Impact.diff) Hashtbl.t;
      (* verdicts of the latest re-registration of each meta path *)
  impact_plan : (string, plan_entry) Hashtbl.t;
      (* graph-node digest -> reuse verdict, rebuilt on registration *)
  mutable subtree_reuse : bool; (* consult the memo table during eval? *)
  mutable conflicts : conflict list;
  (* charge server-side build work to the simulated clock? The paper's
     common case is install-time generation, so misses normally charge;
     benches can turn it off to isolate steady state. *)
  mutable charge_build_work : bool;
  (* -- the staged request pipeline -- *)
  sched : Simos.Sched.t;
  jobs : (int, job) Hashtbl.t; (* ticket -> job (pruned on delivery) *)
  mutable inflight : int;
  mutable queue_limit : int; (* admission control: max in-flight *)
  mutable batch_place : bool; (* solve queued placements as one pass? *)
  mutable place_q : job list; (* parked at the place barrier, newest-first *)
  building : (string, int) Hashtbl.t; (* cache keys being built -> ticket *)
  mutable waiters : (string * job) list; (* coalesced onto an in-flight build *)
}

(* Request-path telemetry. *)
let tm_instantiations = Telemetry.Counter.make "server.instantiations"
let tm_arena_conflicts = Telemetry.Counter.make "server.arena_conflicts"
let tm_instantiate_us = Telemetry.Histogram.make "server.us.instantiate"
let tm_lint_errors = Telemetry.Counter.make "lint.errors"
let tm_lint_warnings = Telemetry.Counter.make "lint.warnings"
let tm_impact_reused = Telemetry.Counter.make "impact.reused"
let tm_impact_respun = Telemetry.Counter.make "impact.respun"
let tm_eval_us = Telemetry.Histogram.make "server.us.eval"
let tm_link_us = Telemetry.Histogram.make "server.us.link"

(* Pipeline telemetry: stage latencies, queue depths, batching. *)
let tm_queue_us = Telemetry.Histogram.make "server.us.queue"
let tm_batch_wait_us = Telemetry.Histogram.make "server.us.batch_wait"
let tm_coalesce_wait_us = Telemetry.Histogram.make "server.us.coalesce_wait"
let tm_parse_us = Telemetry.Histogram.make "server.us.parse"
let tm_place_us = Telemetry.Histogram.make "server.us.place"
let tm_batch_size = Telemetry.Histogram.make "place.batch_size"
let tm_depth = Telemetry.Histogram.make "pipeline.depth.inflight"
let tm_submitted = Telemetry.Counter.make "pipeline.submitted"
let tm_completed = Telemetry.Counter.make "pipeline.completed"
let tm_coalesced = Telemetry.Counter.make "pipeline.coalesced"
let tm_overloads = Telemetry.Counter.make "server.overloads"

(* A request that spent more than this share of its latency waiting
   (rather than working) leaves a Note in the flight ring for triage. *)
let wait_share_note_threshold = 0.5

(* -- construction --------------------------------------------------------- *)

let create ~(kernel : Simos.Kernel.t) ?(faults : Residency.faults option) () : t
    =
  let ns = Namespace.create () in
  let env =
    Blueprint.Mgraph.make_env
      ~resolve:(fun path ->
        match Namespace.lookup ns path with
        | Some (Namespace.Fragment o) -> Blueprint.Mgraph.Leaf o
        | Some (Namespace.Meta m) -> Blueprint.Meta.effective_graph m ~spec:None
        | Some (Namespace.Directory _) ->
            raise (Blueprint.Mgraph.Eval_error (path ^ " is a directory"))
        | None ->
            raise (Blueprint.Mgraph.Eval_error ("unknown server object " ^ path)))
      ()
  in
  (* Telemetry timestamps follow the simulated clock from here on, so
     spans and phase histograms are in simulated microseconds. *)
  Telemetry.set_clock (fun () -> Simos.Clock.elapsed kernel.Simos.Kernel.clock);
  let cache = Cache.create () in
  let text_arena =
    Constraints.Placement.create ~region_lo:lib_text_lo ~region_hi:lib_text_hi ()
  in
  let data_arena =
    Constraints.Placement.create ~region_lo:lib_data_lo ~region_hi:lib_data_hi ()
  in
  let residency =
    Residency.create ~cache ~text_arena ~data_arena
      ~clock:(fun () -> Simos.Clock.elapsed kernel.Simos.Kernel.clock)
      ?faults ()
  in
  (* snapshot metadata: record the pipeline knobs so an exported
     omos.metrics/1 run is reproducible from the snapshot alone
     (Runinfo survives Telemetry.reset) *)
  Telemetry.Runinfo.set "sched_seed" (Telemetry.I 0);
  Telemetry.Runinfo.set "batch_placement" (Telemetry.B true);
  Telemetry.Runinfo.set "queue_limit" (Telemetry.I 64);
  let sched = Simos.Sched.create () in
  Simos.Sched.set_time_source sched (fun () ->
      Simos.Clock.elapsed kernel.Simos.Kernel.clock);
  (* bridge scheduler dispatches into the causal graph: stage labels
     are "r<ticket>:<stage>", so the ticket doubles as the causal
     request id (no-op while causal recording is off) *)
  Simos.Sched.set_on_dispatch sched
    (Some
       (fun ~label ~queued_us ~started_us ->
         if Telemetry.Causal.is_enabled () then
           match String.index_opt label ':' with
           | Some i when i > 1 && label.[0] = 'r' -> (
               match int_of_string_opt (String.sub label 1 (i - 1)) with
               | Some id ->
                   let stage =
                     String.sub label (i + 1) (String.length label - i - 1)
                   in
                   Telemetry.Causal.dispatched ~id ~stage ~queued:queued_us
                     ~started:started_us
               | None -> ())
           | _ -> ()));
  {
    ns;
    cache;
    text_arena;
    data_arena;
    residency;
    kernel;
    env;
    work = { links = 0; relocs = 0; source_compiles = 0; instantiations = 0 };
    lints = Hashtbl.create 16;
    impact_trees = Hashtbl.create 16;
    impact_diffs = Hashtbl.create 16;
    impact_plan = Hashtbl.create 64;
    subtree_reuse = true;
    conflicts = [];
    charge_build_work = true;
    sched;
    jobs = Hashtbl.create 64;
    inflight = 0;
    queue_limit = 64;
    batch_place = true;
    place_q = [];
    building = Hashtbl.create 16;
    waiters = [];
  }

(* -- read-only views ------------------------------------------------------- *)

(** Immutable snapshot of the work counters. *)
type stats = {
  links : int;
  relocs : int;
  source_compiles : int;
  instantiations : int;
}

let stats (t : t) : stats =
  {
    links = t.work.links;
    relocs = t.work.relocs;
    (* source compiles happen inside the blueprint evaluator; one server
       per process, so the global counter is this server's count *)
    source_compiles = Telemetry.Counter.get "blueprint.source_compiles";
    instantiations = t.work.instantiations;
  }

let namespace (t : t) : Namespace.t = t.ns
let cache_stats (t : t) : Cache.stats = Cache.stats t.cache
let kernel (t : t) : Simos.Kernel.t = t.kernel
let text_arena (t : t) : Constraints.Placement.t = t.text_arena
let data_arena (t : t) : Constraints.Placement.t = t.data_arena
let residency (t : t) : Residency.t = t.residency
let set_charge_build_work (t : t) (b : bool) : unit = t.charge_build_work <- b

let set_self_check (t : t) (b : bool) : unit =
  Residency.set_self_check t.residency b

let add_fragment (t : t) (path : string) (o : Sof.Object_file.t) : unit =
  Namespace.bind_fragment t.ns path o

(* Result-returning twin of the evaluation env's resolve, for the
   symbol-flow analyzer (which must never raise). *)
let resolve_graph (t : t) (path : string) :
    (Blueprint.Mgraph.node, string) result =
  match Namespace.lookup t.ns path with
  | Some (Namespace.Fragment o) -> Ok (Blueprint.Mgraph.Leaf o)
  | Some (Namespace.Meta m) -> Ok (Blueprint.Meta.effective_graph m ~spec:None)
  | Some (Namespace.Directory _) -> Error (path ^ " is a directory")
  | None -> Error ("unknown server object " ^ path)

(* Re-run the subtree dependence analysis over every bound meta-object
   and rebuild the reuse plan from the resulting trees. Re-analyzing
   the whole namespace (not just the edited meta) keeps plan entries
   fresh for metas that reference the edited path through [Name] nodes:
   their interface digests move with the content they resolve to. The
   analysis is abstract (symbol flow only, no view materialized), so
   this is cheap relative to a single link. *)
let refresh_impact (t : t) : unit =
  Hashtbl.reset t.impact_plan;
  List.iter
    (fun path ->
      match Namespace.lookup t.ns path with
      | Some (Namespace.Meta m) ->
          let tree =
            Analysis.Impact.analyze ~resolve:(resolve_graph t)
              (Blueprint.Meta.effective_graph m ~spec:None)
          in
          Hashtbl.replace t.impact_trees path tree;
          Analysis.Impact.iter_infos
            (fun i ->
              match i.Analysis.Impact.i_node with
              | Blueprint.Mgraph.Leaf _ -> () (* leaves are free to re-make *)
              | n ->
                  Hashtbl.replace t.impact_plan (Blueprint.Mgraph.digest n)
                    {
                      pe_digest = i.Analysis.Impact.i_digest;
                      pe_stable = i.Analysis.Impact.i_stable;
                      pe_gensym = i.Analysis.Impact.i_summary.Analysis.Impact.s_gensym;
                    })
            tree
      | _ -> ())
    (Namespace.all_metas t.ns)

(** Bind a meta-object and lint it: the symbol-flow analyzer runs at
    registration (no view materialized, no simulated cost charged), the
    finding counts feed the [lint.errors]/[lint.warnings] counters, and
    the findings replay into the provenance journal of every build of
    the meta. Registration never fails on findings — a broken blueprint
    is diagnosed again, fatally, when instantiated.

    Registration also refreshes the incremental-relinking plan: the
    {!Analysis.Impact} tree of every bound meta is recomputed, and if
    [path] was already bound the old/new trees are diffed — the next
    build of an edited blueprint then re-materializes only the respun
    spine, answering provably-equivalent subtrees from the memo
    table. *)
let register_meta (t : t) (path : string) (m : Blueprint.Meta.t) : unit =
  let old_tree = Hashtbl.find_opt t.impact_trees path in
  Namespace.bind_meta t.ns path m;
  let report = Analysis.Lint.analyze_meta ~resolve:(resolve_graph t) m in
  Hashtbl.replace t.lints path report;
  let errs = Analysis.Lint.errors report
  and warns = Analysis.Lint.warnings report in
  if errs > 0 then Telemetry.Counter.incr ~by:errs tm_lint_errors;
  if warns > 0 then Telemetry.Counter.incr ~by:warns tm_lint_warnings;
  refresh_impact t;
  match (old_tree, Hashtbl.find_opt t.impact_trees path) with
  | Some ot, Some nt ->
      Hashtbl.replace t.impact_diffs path
        (Analysis.Impact.diff ~old_tree:ot ~new_tree:nt)
  | _ -> ()

(** The registration-time lint report of a bound meta-object. *)
let lint_report (t : t) (path : string) : Analysis.Lint.report option =
  Hashtbl.find_opt t.lints path

(** The registration-time dependence analysis of a bound meta-object. *)
let impact_tree (t : t) (path : string) : Analysis.Impact.tree option =
  Hashtbl.find_opt t.impact_trees path

(** The reuse/respin verdicts computed the last time [path] was
    re-registered over an existing binding. *)
let impact_diff (t : t) (path : string) : Analysis.Impact.diff option =
  Hashtbl.find_opt t.impact_diffs path

(** Toggle incremental relinking (default on): when off, evaluation
    never consults or fills the per-node memo table — the knob the
    incremental-vs-from-scratch differential oracle flips. *)
let set_subtree_reuse (t : t) (b : bool) : unit = t.subtree_reuse <- b

let subtree_reuse (t : t) : bool = t.subtree_reuse

(** Register a meta-object from blueprint source text — parse, then
    {!register_meta}, so registration-time lint behavior is uniform no
    matter how the meta arrives. *)
let register_meta_source (t : t) (path : string) (src : string) : unit =
  register_meta t path (Blueprint.Meta.parse ~name:path src)

(** Load a meta-object source file from the simulated filesystem and
    bind it at [ns_path] — meta-objects are ordinary files ("the
    meta-objects and executable fragments providing the contents can be
    stored anywhere", §5). Routes through {!register_meta_source}. *)
let load_meta_file (t : t) ~(fs_path : string) ~(ns_path : string) : unit =
  let src = Bytes.to_string (Simos.Fs.read_file t.kernel.Simos.Kernel.fs fs_path) in
  register_meta_source t ns_path src

(** Load an object file (either backend format) from the simulated
    filesystem and bind it at [ns_path]. *)
let load_fragment_file (t : t) ~(fs_path : string) ~(ns_path : string) : unit =
  let bytes = Simos.Fs.read_file t.kernel.Simos.Kernel.fs fs_path in
  add_fragment t ns_path (Sof.Bfd.decode bytes)

let find_meta (t : t) (path : string) : Blueprint.Meta.t =
  match Namespace.lookup t.ns path with
  | Some (Namespace.Meta m) -> m
  | Some _ -> fail "%s is not a meta-object" path
  | None -> fail "unknown meta-object %s" path

(* -- evaluation & linking -------------------------------------------------- *)

(* The subtree-reuse hooks evaluation runs under. Lookup: a node whose
   reuse plan entry is stable may be answered from the memo table —
   skipping the mangling ids its evaluation would have drawn, so every
   later freeze/hide downstream mints exactly the aliases a from-scratch
   build would. Store: every freshly materialized stable node enters
   the memo table (first materialization of a digest wins). Unstable
   nodes (live freeze/hide/show below them) are never memoized: their
   bytes depend on the global mangling sequence. *)
let memo_hooks (t : t) : Blueprint.Mgraph.memo_hooks =
  let plan_of n =
    match n with
    | Blueprint.Mgraph.Leaf _ -> None (* leaves are free to re-make *)
    | n -> Hashtbl.find_opt t.impact_plan (Blueprint.Mgraph.digest n)
  in
  {
    lookup =
      (fun n ->
        match plan_of n with
        | Some pe when pe.pe_stable -> (
            match Cache.memo_find t.cache pe.pe_digest with
            | Some me ->
                Jigsaw.Module_ops.gensym_skip me.Cache.m_gensym;
                Telemetry.Counter.incr tm_impact_reused;
                Telemetry.Provenance.record_reused ~digest:pe.pe_digest;
                Some me.Cache.m_result
            | None -> None)
        | _ -> None);
    store =
      (fun n r ->
        match plan_of n with
        | Some pe ->
            Telemetry.Counter.incr tm_impact_respun;
            if pe.pe_stable && not (Cache.memo_mem t.cache pe.pe_digest) then
              Cache.memo_insert t.cache ~digest:pe.pe_digest
                ~gensym:pe.pe_gensym r
        | None -> ());
  }

let eval (t : t) (node : Blueprint.Mgraph.node) : Blueprint.Mgraph.result =
  let t0 = Telemetry.now_us () in
  let r =
    if t.subtree_reuse && Hashtbl.length t.impact_plan > 0 then
      Blueprint.Mgraph.eval_memo t.env (memo_hooks t) node
    else Blueprint.Mgraph.eval t.env node
  in
  Telemetry.Histogram.observe tm_eval_us (Telemetry.now_us () -. t0);
  r

(* Charge the cost of a full link to the simulated clock: this is the
   work a cache hit avoids. *)
let charge_link (t : t) (stats : Linker.Link.stats) : unit =
  t.work.links <- t.work.links + 1;
  t.work.relocs <- t.work.relocs + stats.Linker.Link.relocs_applied;
  if t.charge_build_work then begin
    let cost = t.kernel.Simos.Kernel.cost in
    Simos.Kernel.charge_sys t.kernel
      (cost.Simos.Cost.reloc_apply *. float_of_int stats.Linker.Link.relocs_applied);
    Simos.Kernel.charge_sys t.kernel
      (cost.Simos.Cost.symbol_lookup *. float_of_int stats.Linker.Link.symbols_resolved)
  end

(* Human-readable placement decision for the provenance record. *)
let placement_summary
    (parts : (string * Constraints.Placement.decision option) list) : string =
  String.concat " "
    (List.map
       (fun (seg, dec) ->
         match dec with
         | None -> seg
         | Some (d : Constraints.Placement.decision) ->
             Printf.sprintf "%s@0x%08x%s%s" seg d.Constraints.Placement.base
               (if d.Constraints.Placement.reused then " (reused)" else "")
               (match d.Constraints.Placement.satisfied with
               | Some p ->
                   Format.asprintf " satisfying %a" Constraints.Placement.pp_pref p
               | None -> ""))
       parts)

(* Sizes a module will occupy, for placement before linking. *)
let module_sizes (m : Jigsaw.Module_ops.t) : int * int =
  let frags = Jigsaw.Module_ops.fragments m in
  let text =
    List.fold_left (fun a (o : Sof.Object_file.t) -> a + Bytes.length o.text) 0 frags
  in
  let data =
    List.fold_left
      (fun a (o : Sof.Object_file.t) ->
        ((a + Bytes.length o.data + 3) / 4 * 4) + o.bss_size)
      0 frags
  in
  (text, data)

(* Collect placement preferences for one segment out of the evaluated
   constraints. *)
let prefs_for (seg : Blueprint.Mgraph.seg) (cs : Blueprint.Mgraph.constraint_pref list)
    : (int * Constraints.Placement.pref) list =
  List.filter_map
    (fun (c : Blueprint.Mgraph.constraint_pref) ->
      if c.Blueprint.Mgraph.seg = seg then Some (c.priority, c.pref) else None)
    cs

(** Has this built's cache entry been evicted since it was handed out?
    Stale builts must be re-requested before mapping. *)
let built_evicted (b : built) : bool =
  b.entry.Cache.residency = Cache.Evicted

(* Place and link an evaluated module into the shared arenas (library
   path). Reuses a cached placement when the constraint system allows —
   the paper's "highly desired" reuse constraint. [r] is forced only
   when no cached placement can be revived, so warm hits never
   re-evaluate the graph, and rebuilds always link the real module. *)
let link_in_arena (t : t) ~(name : string) ~(cache_key : string)
    ?(externals = []) (r : Blueprint.Mgraph.result Lazy.t) : built =
  let build_fresh () =
    (* open the binding-journal frame before the graph is forced, so
       every jigsaw operator and the link below record into it *)
    Telemetry.Provenance.begin_build ();
    (* registration-time lint findings travel with every build of the
       meta, so explain/trace surface them next to binding decisions *)
    (match Hashtbl.find_opt t.lints name with
    | Some (rep : Analysis.Lint.report) ->
        List.iter
          (fun (f : Analysis.Lint.finding) ->
            Telemetry.Provenance.record_lint ~code:f.Analysis.Lint.code
              ~severity:
                (Analysis.Lint.severity_to_string f.Analysis.Lint.severity)
              ~path:f.Analysis.Lint.path f.Analysis.Lint.message)
          rep.Analysis.Lint.findings
    | None -> ());
    let r = Lazy.force r in
    let text_size, data_size = module_sizes r.Blueprint.Mgraph.m in
    (* record when the strongest preference could not be honoured; the
       residency fault hook may block that preference first *)
    let place_noting arena seg size prefs =
      Residency.with_place_conflict t.residency ~arena ~prefs @@ fun () ->
      let dec = Constraints.Placement.place arena ~size ~owner:name ~prefs () in
      (match List.sort (fun (p1, _) (p2, _) -> compare p2 p1) prefs with
      | (_, wanted) :: _ when dec.Constraints.Placement.satisfied <> Some wanted ->
          Telemetry.Counter.incr tm_arena_conflicts;
          t.conflicts <-
            { c_owner = name; c_seg = seg; c_wanted = wanted;
              c_got = dec.Constraints.Placement.base }
            :: t.conflicts
      | _ -> ());
      dec
    in
    let tdec =
      place_noting t.text_arena Blueprint.Mgraph.Seg_text (max text_size 1)
        (prefs_for Blueprint.Mgraph.Seg_text r.Blueprint.Mgraph.constraints)
    in
    let ddec =
      place_noting t.data_arena Blueprint.Mgraph.Seg_data (max data_size 1)
        (prefs_for Blueprint.Mgraph.Seg_data r.Blueprint.Mgraph.constraints)
    in
    let t0 = Telemetry.now_us () in
    (* the link and its simulated-cost charges share one span, so the
       profiler attributes the whole link phase to "server.link" *)
    let img, _lstats =
      Telemetry.with_span "server.link" @@ fun () ->
      let img, lstats =
        Linker.Link.link ~externals ~allow_undefined:true
          ~layout:
            {
              Linker.Link.text_base = tdec.Constraints.Placement.base;
              data_base = ddec.Constraints.Placement.base;
            }
          (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
      in
      charge_link t lstats;
      (img, lstats)
    in
    Telemetry.Histogram.observe tm_link_us (Telemetry.now_us () -. t0);
    let provenance =
      Telemetry.Provenance.capture ~key:cache_key
        ~text_base:tdec.Constraints.Placement.base
        ~data_base:ddec.Constraints.Placement.base
        ~placement:
          (placement_summary [ ("text", Some tdec); ("data", Some ddec) ])
        ~generation:(Cache.generation t.cache) ()
    in
    Telemetry.Provenance.note_built ~name provenance;
    let e =
      Cache.insert t.cache ~key:cache_key
        ~text_base:tdec.Constraints.Placement.base
        ~data_base:ddec.Constraints.Placement.base ~provenance
        { img with Linker.Image.name }
    in
    Residency.note_placed t.residency e;
    { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest img }
  in
  let acceptable = Residency.acceptable t.residency ~owner:name in
  match Cache.find t.cache cache_key ~acceptable with
  | Some e -> (
      (* re-establish the reservation of the revived placement *)
      match Residency.reacquire t.residency ~owner:name e with
      | Ok () -> { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest e.Cache.image }
      | Error _conflicting ->
          (* the range was taken between the acceptability check and
             the reservation (or a reserve fault fired): a placement
             conflict — rebuild as an alternate placement and record
             where the image wanted to be vs. where it went *)
          let b = build_fresh () in
          Telemetry.Counter.incr tm_arena_conflicts;
          t.conflicts <-
            {
              c_owner = name;
              c_seg = Blueprint.Mgraph.Seg_text;
              c_wanted = Constraints.Placement.At e.Cache.text_base;
              c_got = b.entry.Cache.text_base;
            }
            :: t.conflicts;
          b)
  | None ->
      (* stale candidates whose reservations are gone drop to Evicted
         so they can never shadow the fresh construction *)
      List.iter
        (fun e -> ignore (Residency.demote_if_lost t.residency e))
        (Cache.candidates t.cache cache_key);
      build_fresh ()

(** Build (or fetch) the image of a {e library} meta-object: fully
    bound, placed by the constraint system, cached, shared. Undefined
    symbols are allowed (libraries may reference client symbols — the
    paper's "furthest downstream" discussion) unless [externals]
    satisfy them. *)
let build_library_raw (t : t) ~(path : string)
    ?(spec : (string * Blueprint.Mgraph.value list) option) ?(externals = []) () :
    built =
  let meta = find_meta t path in
  let graph = Blueprint.Meta.effective_graph meta ~spec in
  let cache_key =
    "lib:" ^ path ^ ":" ^ Blueprint.Mgraph.digest graph
    ^ String.concat "" (List.map (fun i -> ":" ^ Linker.Image.digest i) externals)
  in
  let r =
    lazy
      (t.work.instantiations <- t.work.instantiations + 1;
       eval t graph)
  in
  link_in_arena t ~name:path ~cache_key ~externals r

(** Build (or fetch) a fully static image of an arbitrary graph at the
    client base addresses — generic instantiation (also the static
    scheme and the interposition examples). *)
let build_static_raw (t : t) ~(name : string) ?(entry_symbol : string option)
    ?(externals = []) (graph : Blueprint.Mgraph.node) : built =
  let cache_key =
    "static:" ^ name ^ ":" ^ Blueprint.Mgraph.digest graph
    ^ String.concat "" (List.map (fun i -> ":" ^ Linker.Image.digest i) externals)
  in
  match Cache.find t.cache cache_key ~acceptable:(fun _ -> true) with
  | Some e -> { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest e.Cache.image }
  | None ->
      Telemetry.Provenance.begin_build ();
      t.work.instantiations <- t.work.instantiations + 1;
      let r = eval t graph in
      let t0 = Telemetry.now_us () in
      let img, _lstats =
        Telemetry.with_span "server.link" @@ fun () ->
        let img, lstats =
          Linker.Link.link ?entry:entry_symbol ~externals
            ~layout:
              { Linker.Link.text_base = client_text_base; data_base = client_data_base }
            (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
        in
        charge_link t lstats;
        (img, lstats)
      in
      Telemetry.Histogram.observe tm_link_us (Telemetry.now_us () -. t0);
      let provenance =
        Telemetry.Provenance.capture ~key:cache_key ~text_base:client_text_base
          ~data_base:client_data_base
          ~placement:
            (Printf.sprintf "static text@0x%08x data@0x%08x" client_text_base
               client_data_base)
          ~generation:(Cache.generation t.cache) ()
      in
      Telemetry.Provenance.note_built ~name provenance;
      let e =
        Cache.insert t.cache ~key:cache_key ~text_base:client_text_base
          ~data_base:client_data_base ~provenance
          { img with Linker.Image.name }
      in
      Residency.note_static t.residency e;
      { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest img }

(* -- the unified request API ------------------------------------------------ *)

let library ?spec ?(externals = []) (path : string) : request =
  { target = Library { path; spec }; externals }

let static ?entry_symbol ?(externals = []) ~(name : string)
    (graph : Blueprint.Mgraph.node) : request =
  { target = Static { name; graph; entry_symbol }; externals }

let target_label = function
  | Library l -> "lib:" ^ l.path
  | Static s -> "static:" ^ s.name

(* -- the staged pipeline ----------------------------------------------------- *)

(* Stages run as cooperative scheduler tasks; a job's stages always run
   in order, but stages of different jobs interleave. Every stage
   execution resumes the job's request context (so spans, counters,
   faults recorded inside carry its (client, ticket)), accumulates the
   simulated time it spent into [jwork_us], and records a stage
   transition in the flight recorder. *)

type ticket = int

let ticket_id (tk : ticket) : int = tk

let stage_transition (job : job) (stage : string) : unit =
  Telemetry.Flight.record
    ~detail:(target_label job.jreq.target)
    Telemetry.Flight.Transition
    ("pipeline." ^ stage)

(* Finish a job (success or error): deliver the outcome, release the
   build-key claim, and wake coalesced waiters so they re-enter parse
   (and now find the cache populated — or rebuild after a failure). *)
let rec finish (t : t) (job : job) (outcome : (response, exn) result) : unit =
  job.joutcome <- Some outcome;
  t.inflight <- t.inflight - 1;
  Telemetry.Counter.incr tm_completed;
  (match Hashtbl.find_opt t.building job.jkey with
  | Some owner when owner = job.jt ->
      Hashtbl.remove t.building job.jkey;
      let woken, rest =
        List.partition (fun (k, _) -> k = job.jkey) t.waiters
      in
      t.waiters <- rest;
      let now = Telemetry.now_us () in
      List.iter
        (fun (_, w) ->
          w.jcoalesce_us <- w.jcoalesce_us +. Float.max 0.0 (now -. w.jpark_us);
          Telemetry.Causal.unpark ~id:w.jt ~at:now ();
          spawn_stage t w "parse" (stage_parse t w))
        woken
  | _ -> ());
  Telemetry.Request.end_detached ~client:job.jclient ~id:job.jt "instantiate"

(* Run one stage body under the job's request context, trapping errors
   into the job's outcome. *)
and run_stage (t : t) (job : job) (stage : string) (f : unit -> unit) : unit =
  Telemetry.Request.resume ~client:job.jclient ~id:job.jt "instantiate";
  stage_transition job stage;
  let t0 = Telemetry.now_us () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Telemetry.now_us () in
      let dt = t1 -. t0 in
      job.jwork_us <- job.jwork_us +. dt;
      Telemetry.Causal.segment ~id:job.jt ~stage ~t0 ~t1 ();
      if stage = "parse" then Telemetry.Histogram.observe tm_parse_us dt;
      Telemetry.Request.suspend ())
    (fun () -> try f () with e -> finish t job (Error e))

and spawn_stage (t : t) (job : job) (stage : string) (f : unit -> unit) : unit =
  Simos.Sched.spawn t.sched
    ~label:(Printf.sprintf "r%d:%s" job.jt stage)
    (fun () -> run_stage t job stage f)

(* map: the last stage — the built image is mappable; seal the
   response, observe the request-level metrics, and run the residency
   self-check exactly as the synchronous path always did. *)
and stage_map (t : t) (job : job) (b : built) () : unit =
  let done_us = Telemetry.now_us () in
  let sim_us = done_us -. job.jsubmit_us in
  (* split the old queue_us (everything that was not this job's own
     work) into its typed causes; the three parts still sum to it, so
     baselines that watched queue_us stay comparable *)
  let total_wait = Float.max 0.0 (sim_us -. job.jwork_us) in
  let coalesce_us = Float.min job.jcoalesce_us total_wait in
  let batch_us = Float.min job.jbatch_us (total_wait -. coalesce_us) in
  let queue_us = total_wait -. batch_us -. coalesce_us in
  let wait_frac = if sim_us > 0.0 then total_wait /. sim_us else 0.0 in
  Telemetry.Counter.incr tm_instantiations;
  Telemetry.Histogram.observe tm_instantiate_us sim_us;
  Telemetry.Histogram.observe tm_queue_us total_wait;
  Telemetry.Histogram.observe tm_batch_wait_us batch_us;
  Telemetry.Histogram.observe tm_coalesce_wait_us coalesce_us;
  Residency.self_check t.residency;
  Telemetry.Health.record ~hit:job.jhit
    ~queue_depth:(max 0 (t.inflight - 1))
    ~wait_frac ~cost_us:sim_us ();
  if wait_frac > wait_share_note_threshold then
    Telemetry.Flight.record
      ~detail:
        (Printf.sprintf "%s wait_frac=%.2f" (target_label job.jreq.target)
           wait_frac)
      ~value:wait_frac Telemetry.Flight.Note "blame.wait_share";
  Telemetry.Causal.complete ~id:job.jt ~at:done_us ~sim_us ~hit:job.jhit ();
  finish t job
    (Ok { built = b; cache_hit = job.jhit; sim_us; queue_us; batch_us; coalesce_us })

(* link: place decisions are in; perform the real link, capture the
   binding journal, insert into the cache, establish residency. *)
and stage_link (t : t) (job : job) () : unit =
  (match job.jframe with
  | Some f -> Telemetry.Provenance.resume_build f
  | None -> ());
  job.jframe <- None;
  let r = Option.get job.jeval in
  let name = job.jname in
  let b =
    match job.jreq.target with
    | Library _ ->
        let tdec = Option.get job.jtdec and ddec = Option.get job.jddec in
        let t0 = Telemetry.now_us () in
        let img, _lstats =
          Telemetry.with_span "server.link" @@ fun () ->
          let img, lstats =
            Linker.Link.link ~externals:job.jreq.externals
              ~allow_undefined:true
              ~layout:
                {
                  Linker.Link.text_base = tdec.Constraints.Placement.base;
                  data_base = ddec.Constraints.Placement.base;
                }
              (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
          in
          charge_link t lstats;
          (img, lstats)
        in
        Telemetry.Histogram.observe tm_link_us (Telemetry.now_us () -. t0);
        let provenance =
          Telemetry.Provenance.capture ~key:job.jkey
            ~text_base:tdec.Constraints.Placement.base
            ~data_base:ddec.Constraints.Placement.base
            ~placement:
              (placement_summary [ ("text", Some tdec); ("data", Some ddec) ])
            ~generation:(Cache.generation t.cache) ()
        in
        Telemetry.Provenance.note_built ~name provenance;
        let e =
          Cache.insert t.cache ~key:job.jkey
            ~text_base:tdec.Constraints.Placement.base
            ~data_base:ddec.Constraints.Placement.base ~provenance
            { img with Linker.Image.name }
        in
        Residency.note_placed t.residency e;
        { entry = e; key = job.jkey ^ "@" ^ Linker.Image.digest img }
    | Static { entry_symbol; _ } ->
        let t0 = Telemetry.now_us () in
        let img, _lstats =
          Telemetry.with_span "server.link" @@ fun () ->
          let img, lstats =
            Linker.Link.link ?entry:entry_symbol ~externals:job.jreq.externals
              ~layout:
                {
                  Linker.Link.text_base = client_text_base;
                  data_base = client_data_base;
                }
              (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
          in
          charge_link t lstats;
          (img, lstats)
        in
        Telemetry.Histogram.observe tm_link_us (Telemetry.now_us () -. t0);
        let provenance =
          Telemetry.Provenance.capture ~key:job.jkey
            ~text_base:client_text_base ~data_base:client_data_base
            ~placement:
              (Printf.sprintf "static text@0x%08x data@0x%08x" client_text_base
                 client_data_base)
            ~generation:(Cache.generation t.cache) ()
        in
        Telemetry.Provenance.note_built ~name provenance;
        let e =
          Cache.insert t.cache ~key:job.jkey ~text_base:client_text_base
            ~data_base:client_data_base ~provenance
            { img with Linker.Image.name }
        in
        Residency.note_static t.residency e;
        { entry = e; key = job.jkey ^ "@" ^ Linker.Image.digest img }
  in
  (* a failed reacquisition of a cached placement is a conflict:
     record where the image wanted to be vs. where it went *)
  (match job.jreacquire_conflict with
  | Some wanted ->
      Telemetry.Counter.incr tm_arena_conflicts;
      t.conflicts <-
        {
          c_owner = name;
          c_seg = Blueprint.Mgraph.Seg_text;
          c_wanted = Constraints.Placement.At wanted;
          c_got = b.entry.Cache.text_base;
        }
        :: t.conflicts
  | None -> ());
  spawn_stage t job "map" (stage_map t job b)

(* place (single): the unbatched path — one solver pass per request. *)
and stage_place_single (t : t) (job : job) () : unit =
  if t.charge_build_work then
    Simos.Kernel.charge_sys t.kernel
      t.kernel.Simos.Kernel.cost.Simos.Cost.place_solve;
  Telemetry.Histogram.observe tm_batch_size 1.0;
  let r = Option.get job.jeval in
  let place_noting arena seg size prefs =
    Residency.with_place_conflict t.residency ~arena ~prefs @@ fun () ->
    let dec =
      Constraints.Placement.place arena ~size ~owner:job.jname ~prefs ()
    in
    note_pref_conflict t ~owner:job.jname seg prefs dec;
    dec
  in
  job.jtdec <-
    Some
      (place_noting t.text_arena Blueprint.Mgraph.Seg_text job.jtext_size
         (prefs_for Blueprint.Mgraph.Seg_text r.Blueprint.Mgraph.constraints));
  job.jddec <-
    Some
      (place_noting t.data_arena Blueprint.Mgraph.Seg_data job.jdata_size
         (prefs_for Blueprint.Mgraph.Seg_data r.Blueprint.Mgraph.constraints));
  spawn_stage t job "link" (stage_link t job)

(* eval: force the m-graph (misses only — hits never re-evaluate). *)
and stage_eval (t : t) (job : job) () : unit =
  (match job.jframe with
  | Some f -> Telemetry.Provenance.resume_build f
  | None -> ());
  t.work.instantiations <- t.work.instantiations + 1;
  let r = eval t (Option.get job.jgraph) in
  job.jframe <- Some (Telemetry.Provenance.suspend_build ());
  job.jeval <- Some r;
  match job.jreq.target with
  | Static _ -> spawn_stage t job "link" (stage_link t job)
  | Library _ ->
      let text_size, data_size = module_sizes r.Blueprint.Mgraph.m in
      job.jtext_size <- max text_size 1;
      job.jdata_size <- max data_size 1;
      if t.batch_place then begin
        (* park at the place barrier; the drain loop flushes the whole
           queue as one constraint pass when nothing else can run. No
           time is charged between here and the end of the eval stage,
           so the park timestamp tiles exactly against the segment. *)
        job.jpark_us <- Telemetry.now_us ();
        Telemetry.Causal.park ~id:job.jt Telemetry.Causal.Batch
          ~at:job.jpark_us ();
        t.place_q <- job :: t.place_q
      end
      else spawn_stage t job "place" (stage_place_single t job)

(* lint: open the binding-journal frame and replay the registration-time
   findings into it, so every build of the meta carries them. *)
and stage_lint (t : t) (job : job) () : unit =
  Telemetry.Provenance.begin_build ();
  (match Hashtbl.find_opt t.lints job.jname with
  | Some (rep : Analysis.Lint.report) ->
      List.iter
        (fun (f : Analysis.Lint.finding) ->
          Telemetry.Provenance.record_lint ~code:f.Analysis.Lint.code
            ~severity:(Analysis.Lint.severity_to_string f.Analysis.Lint.severity)
            ~path:f.Analysis.Lint.path f.Analysis.Lint.message)
        rep.Analysis.Lint.findings
  | None -> ());
  (* followers that coalesced onto this build before its frame existed *)
  for _ = 1 to job.jpending_coalesced do
    Telemetry.Provenance.record_coalesced ~leader_request:job.jt
  done;
  job.jpending_coalesced <- 0;
  job.jframe <- Some (Telemetry.Provenance.suspend_build ());
  spawn_stage t job "eval" (stage_eval t job)

(* parse: resolve the target, fix the cache key, and serve cache hits
   without touching the build stages. A job whose key is already being
   built parks as a waiter (request coalescing). *)
and stage_parse (t : t) (job : job) () : unit =
  let fresh () =
    Hashtbl.replace t.building job.jkey job.jt;
    spawn_stage t job "lint" (stage_lint t job)
  in
  (match job.jreq.target with
  | Library { path; spec } ->
      let meta = find_meta t path in
      let graph = Blueprint.Meta.effective_graph meta ~spec in
      job.jname <- path;
      job.jgraph <- Some graph;
      job.jkey <-
        "lib:" ^ path ^ ":" ^ Blueprint.Mgraph.digest graph
        ^ String.concat ""
            (List.map
               (fun i -> ":" ^ Linker.Image.digest i)
               job.jreq.externals)
  | Static { name; graph; _ } ->
      job.jname <- name;
      job.jgraph <- Some graph;
      job.jkey <-
        "static:" ^ name ^ ":" ^ Blueprint.Mgraph.digest graph
        ^ String.concat ""
            (List.map
               (fun i -> ":" ^ Linker.Image.digest i)
               job.jreq.externals));
  match Hashtbl.find_opt t.building job.jkey with
  | Some leader ->
      Telemetry.Counter.incr tm_coalesced;
      (* journal the fold on the leader's build so [ofe explain] can
         show this hit was served by another in-flight request *)
      (match Hashtbl.find_opt t.jobs leader with
      | Some lj -> (
          match lj.jframe with
          | Some f ->
              Telemetry.Provenance.record_coalesced_into f
                ~leader_request:leader
          | None -> lj.jpending_coalesced <- lj.jpending_coalesced + 1)
      | None -> ());
      job.jpark_us <- Telemetry.now_us ();
      Telemetry.Causal.park ~id:job.jt Telemetry.Causal.Coalesce ~on:leader
        ~at:job.jpark_us ();
      t.waiters <- t.waiters @ [ (job.jkey, job) ]
  | None -> (
      match job.jreq.target with
      | Static _ -> (
        match Cache.find t.cache job.jkey ~acceptable:(fun _ -> true) with
        | Some e ->
            job.jhit <- true;
            spawn_stage t job "map"
              (stage_map t job
                 {
                   entry = e;
                   key = job.jkey ^ "@" ^ Linker.Image.digest e.Cache.image;
                 })
        | None -> fresh ())
    | Library _ -> (
        let acceptable = Residency.acceptable t.residency ~owner:job.jname in
        match Cache.find t.cache job.jkey ~acceptable with
        | Some e -> (
            (* re-establish the reservation of the revived placement *)
            match Residency.reacquire t.residency ~owner:job.jname e with
            | Ok () ->
                job.jhit <- true;
                spawn_stage t job "map"
                  (stage_map t job
                     {
                       entry = e;
                       key =
                         job.jkey ^ "@" ^ Linker.Image.digest e.Cache.image;
                     })
            | Error _conflicting ->
                (* the range was taken between the acceptability check
                   and the reservation (or a reserve fault fired):
                   rebuild as an alternate placement *)
                job.jreacquire_conflict <- Some e.Cache.text_base;
                fresh ())
        | None ->
            (* stale candidates whose reservations are gone drop to
               Evicted so they can never shadow the fresh construction *)
            List.iter
              (fun e -> ignore (Residency.demote_if_lost t.residency e))
              (Cache.candidates t.cache job.jkey);
            fresh ()))

(* Flush the place barrier: solve every parked placement in one
   constraint pass (ticket order), one solver charge for the whole
   batch — N queued requests, one [Constraints.Placement.place_batch]
   deltablue pass per arena instead of N independent solves. *)
and flush_place (t : t) : unit =
  let jobs =
    List.sort (fun a b -> compare a.jt b.jt) (List.rev t.place_q)
  in
  t.place_q <- [];
  match jobs with
  | [] -> ()
  | _ ->
      let n = List.length jobs in
      Telemetry.Histogram.observe tm_batch_size (float_of_int n);
      let t0 = Telemetry.now_us () in
      if t.charge_build_work then
        Simos.Kernel.charge_sys t.kernel
          t.kernel.Simos.Kernel.cost.Simos.Cost.place_solve;
      let by_index = Array.of_list jobs in
      (* per-member simulated time spent inside its own wrapped solve
         (both arenas) — the member's self-share of the flush interval;
         the residue is the shared batched-solver charge *)
      let wraps = Array.make n 0.0 in
      let solve seg arena =
        let items =
          List.map
            (fun j ->
              let r = Option.get j.jeval in
              {
                Constraints.Placement.bi_size =
                  (match seg with
                  | Blueprint.Mgraph.Seg_text -> j.jtext_size
                  | _ -> j.jdata_size);
                bi_owner = j.jname;
                bi_existing = None;
                bi_prefs = prefs_for seg r.Blueprint.Mgraph.constraints;
              })
            jobs
        in
        (* each member's individual solve runs under its own request
           context, so placement spans, counters, and injected faults
           stay attributed to the request that owns them *)
        let wrap i (it : Constraints.Placement.batch_item) f =
          let j = by_index.(i) in
          Telemetry.Request.resume ~client:j.jclient ~id:j.jt "instantiate";
          let w0 = Telemetry.now_us () in
          Fun.protect
            ~finally:(fun () ->
              wraps.(i) <- wraps.(i) +. (Telemetry.now_us () -. w0);
              Telemetry.Request.suspend ())
          @@ fun () ->
          let d =
            Residency.with_place_conflict t.residency ~arena
              ~prefs:it.Constraints.Placement.bi_prefs f
          in
          note_pref_conflict t ~owner:j.jname seg
            it.Constraints.Placement.bi_prefs d;
          d
        in
        Constraints.Placement.place_batch ~wrap arena items
      in
      let tdecs = solve Blueprint.Mgraph.Seg_text t.text_arena in
      let ddecs = solve Blueprint.Mgraph.Seg_data t.data_arena in
      let t1 = Telemetry.now_us () in
      let dt = t1 -. t0 in
      Telemetry.Histogram.observe tm_place_us dt;
      let solver_us =
        Float.max 0.0 (dt -. Array.fold_left ( +. ) 0.0 wraps)
      in
      List.iteri
        (fun i j ->
          j.jtdec <- Some (List.nth tdecs i);
          j.jddec <- Some (List.nth ddecs i);
          (* the pass worked for every member of the batch *)
          j.jwork_us <- j.jwork_us +. dt;
          j.jbatch_us <- j.jbatch_us +. Float.max 0.0 (t0 -. j.jpark_us);
          Telemetry.Causal.unpark ~id:j.jt ~at:t0 ();
          Telemetry.Causal.segment ~id:j.jt ~stage:"place" ~t0 ~t1
            ~self:wraps.(i) ();
          Telemetry.Causal.set_solver_us ~id:j.jt solver_us;
          spawn_stage t j "link" (stage_link t j))
        jobs

(* Record when the strongest preference could not be honoured (shared
   by the batched and unbatched place paths). *)
and note_pref_conflict (t : t) ~(owner : string) (seg : Blueprint.Mgraph.seg)
    (prefs : (int * Constraints.Placement.pref) list)
    (dec : Constraints.Placement.decision) : unit =
  match List.sort (fun (p1, _) (p2, _) -> compare p2 p1) prefs with
  | (_, wanted) :: _ when dec.Constraints.Placement.satisfied <> Some wanted ->
      Telemetry.Counter.incr tm_arena_conflicts;
      t.conflicts <-
        {
          c_owner = owner;
          c_seg = seg;
          c_wanted = wanted;
          c_got = dec.Constraints.Placement.base;
        }
        :: t.conflicts
  | _ -> ()

(* -- submit / await / poll / drain ------------------------------------------ *)

(** Admit one request into the pipeline: assigns the ticket (= the
    telemetry request id), runs admission control, and queues the parse
    stage. Raises {!Overload} when the pipeline is full. *)
let submit (t : t) (req : request) : ticket =
  if t.inflight >= t.queue_limit then begin
    Telemetry.Counter.incr tm_overloads;
    (* overload is an anomaly like faults and invariant violations:
       leave a flight dump behind so the storm can be reconstructed *)
    Telemetry.Flight.record
      ~detail:(Printf.sprintf "inflight=%d limit=%d" t.inflight t.queue_limit)
      Telemetry.Flight.Fault "server.overload";
    ignore (Telemetry.Flight.trip ~reason:"overload server.submit" ());
    raise
      (Overload
         (Printf.sprintf "pipeline full: %d requests in flight (limit %d)"
            t.inflight t.queue_limit))
  end;
  let client = Telemetry.Request.effective_client () in
  let id = Telemetry.Request.begin_detached ~client "instantiate" in
  let submit_us = Telemetry.now_us () in
  Telemetry.Causal.begin_request ~id ~client
    ~target:(target_label req.target) ~at:submit_us;
  let job =
    {
      jt = id;
      jclient = client;
      jreq = req;
      jsubmit_us = submit_us;
      jwork_us = 0.0;
      jhit = false;
      jname = "";
      jkey = "";
      jgraph = None;
      jeval = None;
      jtext_size = 1;
      jdata_size = 1;
      jtdec = None;
      jddec = None;
      jframe = None;
      jreacquire_conflict = None;
      jpark_us = 0.0;
      jbatch_us = 0.0;
      jcoalesce_us = 0.0;
      jpending_coalesced = 0;
      joutcome = None;
    }
  in
  Hashtbl.replace t.jobs id job;
  t.inflight <- t.inflight + 1;
  Telemetry.Counter.incr tm_submitted;
  Telemetry.Histogram.observe tm_depth (float_of_int t.inflight);
  (* the eviction-storm fault, when enabled, empties the cache at
     admission — the request must then rebuild and re-place *)
  Telemetry.Request.resume ~client:job.jclient ~id "instantiate";
  ignore (Residency.maybe_evict_storm t.residency);
  Telemetry.Request.suspend ();
  spawn_stage t job "parse" (stage_parse t job);
  id

(* One pump round: run scheduler tasks; when nothing is runnable,
   flush the place barrier and keep going. *)
let rec pump (t : t) : unit =
  if Simos.Sched.step t.sched then pump t
  else if t.place_q <> [] then begin
    flush_place t;
    pump t
  end

(** Run the pipeline until every submitted request has completed. *)
let drain (t : t) : unit = if not (Simos.Sched.running t.sched) then pump t

(** Requests submitted but not yet completed. *)
let in_flight (t : t) : int = t.inflight

(* Deliver a finished job's outcome (the ticket is spent). *)
let deliver (t : t) (tk : ticket) (job : job) : response =
  match job.joutcome with
  | Some (Ok r) ->
      Hashtbl.remove t.jobs tk;
      r
  | Some (Error e) ->
      Hashtbl.remove t.jobs tk;
      raise e
  | None -> fail "ticket %d has not completed" tk

(** Completed? [None] while the request is still in flight; delivers
    the response (or re-raises the request's failure) once done. A
    delivered ticket is spent. *)
let poll (t : t) (tk : ticket) : response option =
  match Hashtbl.find_opt t.jobs tk with
  | None -> fail "unknown (or already delivered) ticket %d" tk
  | Some job -> (
      match job.joutcome with None -> None | Some _ -> Some (deliver t tk job))

(** Drive the pipeline until this ticket completes, then deliver it. *)
let await (t : t) (tk : ticket) : response =
  match Hashtbl.find_opt t.jobs tk with
  | None -> fail "unknown (or already delivered) ticket %d" tk
  | Some job ->
      let rec loop () =
        match job.joutcome with
        | Some _ -> deliver t tk job
        | None ->
            if Simos.Sched.step t.sched then loop ()
            else if t.place_q <> [] then begin
              flush_place t;
              loop ()
            end
            else fail "pipeline stalled awaiting ticket %d" tk
      in
      loop ()

(* The synchronous path for nested instantiations: a specializer or an
   upcall may instantiate a library while the scheduler is mid-drain
   (its request is a stage of another request) — those run inline,
   bypassing the queue, exactly like the pre-pipeline server. *)
let instantiate_inline (t : t) (req : request) : response =
  Telemetry.Request.with_request "instantiate" @@ fun () ->
  let t0 = Telemetry.now_us () in
  let links0 = t.work.links in
  ignore (Residency.maybe_evict_storm t.residency);
  let built =
    match req.target with
    | Library { path; spec } ->
        build_library_raw t ~path ?spec ~externals:req.externals ()
    | Static { name; graph; entry_symbol } ->
        build_static_raw t ~name ?entry_symbol ~externals:req.externals graph
  in
  let cache_hit = t.work.links = links0 in
  let sim_us = Telemetry.now_us () -. t0 in
  Telemetry.Counter.incr tm_instantiations;
  Telemetry.Histogram.observe tm_instantiate_us sim_us;
  Residency.self_check t.residency;
  Telemetry.Health.record ~hit:cache_hit ~cost_us:sim_us ();
  { built; cache_hit; sim_us; queue_us = 0.0; batch_us = 0.0; coalesce_us = 0.0 }

(** Serve one instantiation request synchronously: submit it, drive the
    pipeline until it completes. Opens the root ["omos.instantiate"]
    span; evaluation, placement, linking and caching all nest under it
    (a nested call from inside a running stage executes inline). *)
let instantiate (t : t) (req : request) : response =
  if Simos.Sched.running t.sched then instantiate_inline t req
  else begin
    let span =
      Telemetry.Span.enter "omos.instantiate"
        ~attrs:[ ("target", Telemetry.S (target_label req.target)) ]
    in
    Fun.protect ~finally:(fun () -> Telemetry.Span.exit span) @@ fun () ->
    let resp = await t (submit t req) in
    Telemetry.Span.add_attr span "cache_hit" (Telemetry.B resp.cache_hit);
    resp
  end

(** [build t req] = [(instantiate t req).built] — the one-call
    convenience for callers that only want the image. *)
let build (t : t) (req : request) : built = (instantiate t req).built

(* -- pipeline knobs ---------------------------------------------------------- *)

(** Bound the number of in-flight requests ({!submit} raises
    {!Overload} beyond it). *)
let set_queue_limit (t : t) (n : int) : unit =
  if n < 1 then invalid_arg "Server.set_queue_limit";
  t.queue_limit <- n;
  Telemetry.Runinfo.set "queue_limit" (Telemetry.I n)

let queue_limit (t : t) : int = t.queue_limit

(** Solve queued placements as one batched constraint pass (default) or
    one pass per request? *)
let set_batch_placement (t : t) (b : bool) : unit =
  t.batch_place <- b;
  Telemetry.Runinfo.set "batch_placement" (Telemetry.B b)

(** Reseed the pipeline scheduler: 0 (the default) runs stages in
    strict FIFO order; any other seed interleaves ready stages in a
    deterministic shuffled order. *)
let set_sched_seed (t : t) (seed : int) : unit =
  Simos.Sched.set_seed t.sched seed;
  Telemetry.Runinfo.set "sched_seed" (Telemetry.I seed)

(** Register a specialization style (the schemes install theirs here). *)
let register_specializer (t : t) (style : string) (f : Blueprint.Mgraph.specializer) :
    unit =
  Blueprint.Mgraph.register t.env style f

(** Trim the image cache to a disk budget, releasing the arena
    reservations of evicted libraries (and only those — [static:]
    entries never held lib-arena ranges) so their address ranges can be
    reused. A later request for an evicted construction rebuilds it
    (and, via the reuse constraint, usually at the same addresses). *)
let evict_to_budget (t : t) ~(bytes : int) : int =
  Telemetry.Request.with_request "evict" @@ fun () ->
  List.length (Residency.evict_to_budget t.residency ~bytes)

(** Recorded placement conflicts, most recent first. *)
let conflicts (t : t) : conflict list = t.conflicts

(** Suggested constraint-list revisions derived from the conflict log:
    for each conflicted object, the base it actually received — feeding
    this back as its new preferred address makes future placements
    conflict-free (the "system manager could feed that data" loop). *)
let suggest_placements (t : t) : (string * Blueprint.Mgraph.seg * int) list =
  List.rev_map (fun c -> (c.c_owner, c.c_seg, c.c_got)) t.conflicts

(* -- mapping into client tasks ---------------------------------------------- *)

(** Map a built image into a process (cf. Mach [vm_map] into the target
    task): segments come from the server's memory, so they are resident
    — no file opening, no header parsing, no disk reads. *)
let map_into (t : t) ?(touch_user_cost = 0.0) ?(fresh_from_disk = false)
    (p : Simos.Proc.t) (b : built) : unit =
  if b.entry.Cache.residency = Cache.Evicted then
    fail "map_into: cached image of %s was evicted; re-instantiate it"
      b.entry.Cache.image.Linker.Image.name;
  Simos.Kernel.map_image t.kernel p ~key:b.key ~fresh_from_disk ~touch_user_cost
    b.entry.Cache.image

(** Everything needed to start a program built by a scheme. *)
type loadable = {
  parts : built list; (* map order: libraries first, client last *)
  entry : int;
}

let loadable_entry (parts : built list) : loadable =
  match
    List.find_map
      (fun (b : built) ->
        let e = b.entry.Cache.image.Linker.Image.entry in
        if e >= 0 then Some e else None)
      (List.rev parts)
  with
  | Some entry -> { parts; entry }
  | None -> fail "no entry point in any part"
