(** The OMOS server.

    A persistent process (here: a persistent OCaml value living across
    simulated program invocations) that owns the namespace, the image
    cache, the address-space constraint arenas, and the blueprint
    evaluation environment. Program linking and loading are the special
    case of generic object instantiation: clients name a meta-object,
    the server evaluates its m-graph (honouring specializations),
    places the result with the constraint system, caches the mappable
    image, and maps it into client tasks. *)

exception Server_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Server_error s)) fmt

(* Address-space conventions (cf. Figure 1's "T" 0x100000
   "D" 0x40200000): libraries live in the shared arenas; client
   programs at fixed low/high bases outside them. *)
let lib_text_lo = 0x00100000
let lib_text_hi = 0x03FF0000
let lib_data_lo = 0x40000000
let lib_data_hi = 0x5FFF0000
let client_text_base = 0x04000000
let client_data_base = 0x68000000

type work_stats = {
  mutable links : int; (* full links performed *)
  mutable relocs : int; (* relocations applied by the server *)
  mutable source_compiles : int;
  mutable instantiations : int;
}

(** A recorded placement conflict: an object wanted an address it could
    not have. "OMOS could easily record the conflicts found, and
    occasionally the system manager could feed that data into OMOS'
    constraint system to determine better placements" (§4.1). *)
type conflict = {
  c_owner : string;
  c_seg : Blueprint.Mgraph.seg;
  c_wanted : Constraints.Placement.pref;
  c_got : int;
}

type t = {
  ns : Namespace.t;
  cache : Cache.t;
  text_arena : Constraints.Placement.t;
  data_arena : Constraints.Placement.t;
  residency : Residency.t; (* joint owner of cache <-> arena coherence *)
  kernel : Simos.Kernel.t;
  env : Blueprint.Mgraph.env;
  work : work_stats;
  lints : (string, Analysis.Lint.report) Hashtbl.t;
      (* registration-time findings per meta-object path *)
  mutable conflicts : conflict list;
  (* charge server-side build work to the simulated clock? The paper's
     common case is install-time generation, so misses normally charge;
     benches can turn it off to isolate steady state. *)
  mutable charge_build_work : bool;
}

(* Request-path telemetry. *)
let tm_instantiations = Telemetry.Counter.make "server.instantiations"
let tm_arena_conflicts = Telemetry.Counter.make "server.arena_conflicts"
let tm_instantiate_us = Telemetry.Histogram.make "server.us.instantiate"
let tm_lint_errors = Telemetry.Counter.make "lint.errors"
let tm_lint_warnings = Telemetry.Counter.make "lint.warnings"
let tm_eval_us = Telemetry.Histogram.make "server.us.eval"
let tm_link_us = Telemetry.Histogram.make "server.us.link"

(* -- construction --------------------------------------------------------- *)

let create ~(kernel : Simos.Kernel.t) ?(faults : Residency.faults option) () : t
    =
  let ns = Namespace.create () in
  let env =
    Blueprint.Mgraph.make_env
      ~resolve:(fun path ->
        match Namespace.lookup ns path with
        | Some (Namespace.Fragment o) -> Blueprint.Mgraph.Leaf o
        | Some (Namespace.Meta m) -> Blueprint.Meta.effective_graph m ~spec:None
        | Some (Namespace.Directory _) ->
            raise (Blueprint.Mgraph.Eval_error (path ^ " is a directory"))
        | None ->
            raise (Blueprint.Mgraph.Eval_error ("unknown server object " ^ path)))
      ()
  in
  (* Telemetry timestamps follow the simulated clock from here on, so
     spans and phase histograms are in simulated microseconds. *)
  Telemetry.set_clock (fun () -> Simos.Clock.elapsed kernel.Simos.Kernel.clock);
  let cache = Cache.create () in
  let text_arena =
    Constraints.Placement.create ~region_lo:lib_text_lo ~region_hi:lib_text_hi ()
  in
  let data_arena =
    Constraints.Placement.create ~region_lo:lib_data_lo ~region_hi:lib_data_hi ()
  in
  let residency =
    Residency.create ~cache ~text_arena ~data_arena
      ~clock:(fun () -> Simos.Clock.elapsed kernel.Simos.Kernel.clock)
      ?faults ()
  in
  {
    ns;
    cache;
    text_arena;
    data_arena;
    residency;
    kernel;
    env;
    work = { links = 0; relocs = 0; source_compiles = 0; instantiations = 0 };
    lints = Hashtbl.create 16;
    conflicts = [];
    charge_build_work = true;
  }

(* -- read-only views ------------------------------------------------------- *)

(** Immutable snapshot of the work counters. *)
type stats = {
  links : int;
  relocs : int;
  source_compiles : int;
  instantiations : int;
}

let stats (t : t) : stats =
  {
    links = t.work.links;
    relocs = t.work.relocs;
    (* source compiles happen inside the blueprint evaluator; one server
       per process, so the global counter is this server's count *)
    source_compiles = Telemetry.Counter.get "blueprint.source_compiles";
    instantiations = t.work.instantiations;
  }

let namespace (t : t) : Namespace.t = t.ns
let cache_stats (t : t) : Cache.stats = Cache.stats t.cache
let kernel (t : t) : Simos.Kernel.t = t.kernel
let text_arena (t : t) : Constraints.Placement.t = t.text_arena
let data_arena (t : t) : Constraints.Placement.t = t.data_arena
let residency (t : t) : Residency.t = t.residency
let set_charge_build_work (t : t) (b : bool) : unit = t.charge_build_work <- b

let set_self_check (t : t) (b : bool) : unit =
  Residency.set_self_check t.residency b

let add_fragment (t : t) (path : string) (o : Sof.Object_file.t) : unit =
  Namespace.bind_fragment t.ns path o

(* Result-returning twin of the evaluation env's resolve, for the
   symbol-flow analyzer (which must never raise). *)
let resolve_graph (t : t) (path : string) :
    (Blueprint.Mgraph.node, string) result =
  match Namespace.lookup t.ns path with
  | Some (Namespace.Fragment o) -> Ok (Blueprint.Mgraph.Leaf o)
  | Some (Namespace.Meta m) -> Ok (Blueprint.Meta.effective_graph m ~spec:None)
  | Some (Namespace.Directory _) -> Error (path ^ " is a directory")
  | None -> Error ("unknown server object " ^ path)

(** Bind a meta-object and lint it: the symbol-flow analyzer runs at
    registration (no view materialized, no simulated cost charged), the
    finding counts feed the [lint.errors]/[lint.warnings] counters, and
    the findings replay into the provenance journal of every build of
    the meta. Registration never fails on findings — a broken blueprint
    is diagnosed again, fatally, when instantiated. *)
let register_meta (t : t) (path : string) (m : Blueprint.Meta.t) : unit =
  Namespace.bind_meta t.ns path m;
  let report = Analysis.Lint.analyze_meta ~resolve:(resolve_graph t) m in
  Hashtbl.replace t.lints path report;
  let errs = Analysis.Lint.errors report
  and warns = Analysis.Lint.warnings report in
  if errs > 0 then Telemetry.Counter.incr ~by:errs tm_lint_errors;
  if warns > 0 then Telemetry.Counter.incr ~by:warns tm_lint_warnings

let add_meta = register_meta

(** The registration-time lint report of a bound meta-object. *)
let lint_report (t : t) (path : string) : Analysis.Lint.report option =
  Hashtbl.find_opt t.lints path

(** Register a meta-object from blueprint source text. *)
let add_meta_source (t : t) (path : string) (src : string) : unit =
  add_meta t path (Blueprint.Meta.parse ~name:path src)

(** Load a meta-object source file from the simulated filesystem and
    bind it at [ns_path] — meta-objects are ordinary files ("the
    meta-objects and executable fragments providing the contents can be
    stored anywhere", §5). *)
let load_meta_file (t : t) ~(fs_path : string) ~(ns_path : string) : unit =
  let src = Bytes.to_string (Simos.Fs.read_file t.kernel.Simos.Kernel.fs fs_path) in
  add_meta_source t ns_path src

(** Load an object file (either backend format) from the simulated
    filesystem and bind it at [ns_path]. *)
let load_fragment_file (t : t) ~(fs_path : string) ~(ns_path : string) : unit =
  let bytes = Simos.Fs.read_file t.kernel.Simos.Kernel.fs fs_path in
  add_fragment t ns_path (Sof.Bfd.decode bytes)

let find_meta (t : t) (path : string) : Blueprint.Meta.t =
  match Namespace.lookup t.ns path with
  | Some (Namespace.Meta m) -> m
  | Some _ -> fail "%s is not a meta-object" path
  | None -> fail "unknown meta-object %s" path

(* -- evaluation & linking -------------------------------------------------- *)

let eval (t : t) (node : Blueprint.Mgraph.node) : Blueprint.Mgraph.result =
  let t0 = Telemetry.now_us () in
  let r = Blueprint.Mgraph.eval t.env node in
  Telemetry.Histogram.observe tm_eval_us (Telemetry.now_us () -. t0);
  r

(* Charge the cost of a full link to the simulated clock: this is the
   work a cache hit avoids. *)
let charge_link (t : t) (stats : Linker.Link.stats) : unit =
  t.work.links <- t.work.links + 1;
  t.work.relocs <- t.work.relocs + stats.Linker.Link.relocs_applied;
  if t.charge_build_work then begin
    let cost = t.kernel.Simos.Kernel.cost in
    Simos.Kernel.charge_sys t.kernel
      (cost.Simos.Cost.reloc_apply *. float_of_int stats.Linker.Link.relocs_applied);
    Simos.Kernel.charge_sys t.kernel
      (cost.Simos.Cost.symbol_lookup *. float_of_int stats.Linker.Link.symbols_resolved)
  end

(* Human-readable placement decision for the provenance record. *)
let placement_summary
    (parts : (string * Constraints.Placement.decision option) list) : string =
  String.concat " "
    (List.map
       (fun (seg, dec) ->
         match dec with
         | None -> seg
         | Some (d : Constraints.Placement.decision) ->
             Printf.sprintf "%s@0x%08x%s%s" seg d.Constraints.Placement.base
               (if d.Constraints.Placement.reused then " (reused)" else "")
               (match d.Constraints.Placement.satisfied with
               | Some p ->
                   Format.asprintf " satisfying %a" Constraints.Placement.pp_pref p
               | None -> ""))
       parts)

(* Sizes a module will occupy, for placement before linking. *)
let module_sizes (m : Jigsaw.Module_ops.t) : int * int =
  let frags = Jigsaw.Module_ops.fragments m in
  let text =
    List.fold_left (fun a (o : Sof.Object_file.t) -> a + Bytes.length o.text) 0 frags
  in
  let data =
    List.fold_left
      (fun a (o : Sof.Object_file.t) ->
        ((a + Bytes.length o.data + 3) / 4 * 4) + o.bss_size)
      0 frags
  in
  (text, data)

(* Collect placement preferences for one segment out of the evaluated
   constraints. *)
let prefs_for (seg : Blueprint.Mgraph.seg) (cs : Blueprint.Mgraph.constraint_pref list)
    : (int * Constraints.Placement.pref) list =
  List.filter_map
    (fun (c : Blueprint.Mgraph.constraint_pref) ->
      if c.Blueprint.Mgraph.seg = seg then Some (c.priority, c.pref) else None)
    cs

(** A built, positioned, cached image together with its page-cache key
    for mapping into tasks. *)
type built = { entry : Cache.entry; key : string }

(** Has this built's cache entry been evicted since it was handed out?
    Stale builts must be re-requested before mapping. *)
let built_evicted (b : built) : bool =
  b.entry.Cache.residency = Cache.Evicted

(* Place and link an evaluated module into the shared arenas (library
   path). Reuses a cached placement when the constraint system allows —
   the paper's "highly desired" reuse constraint. [r] is forced only
   when no cached placement can be revived, so warm hits never
   re-evaluate the graph, and rebuilds always link the real module. *)
let link_in_arena (t : t) ~(name : string) ~(cache_key : string)
    ?(externals = []) (r : Blueprint.Mgraph.result Lazy.t) : built =
  let build_fresh () =
    (* open the binding-journal frame before the graph is forced, so
       every jigsaw operator and the link below record into it *)
    Telemetry.Provenance.begin_build ();
    (* registration-time lint findings travel with every build of the
       meta, so explain/trace surface them next to binding decisions *)
    (match Hashtbl.find_opt t.lints name with
    | Some (rep : Analysis.Lint.report) ->
        List.iter
          (fun (f : Analysis.Lint.finding) ->
            Telemetry.Provenance.record_lint ~code:f.Analysis.Lint.code
              ~severity:
                (Analysis.Lint.severity_to_string f.Analysis.Lint.severity)
              ~path:f.Analysis.Lint.path f.Analysis.Lint.message)
          rep.Analysis.Lint.findings
    | None -> ());
    let r = Lazy.force r in
    let text_size, data_size = module_sizes r.Blueprint.Mgraph.m in
    (* record when the strongest preference could not be honoured; the
       residency fault hook may block that preference first *)
    let place_noting arena seg size prefs =
      Residency.with_place_conflict t.residency ~arena ~prefs @@ fun () ->
      let dec = Constraints.Placement.place arena ~size ~owner:name ~prefs () in
      (match List.sort (fun (p1, _) (p2, _) -> compare p2 p1) prefs with
      | (_, wanted) :: _ when dec.Constraints.Placement.satisfied <> Some wanted ->
          Telemetry.Counter.incr tm_arena_conflicts;
          t.conflicts <-
            { c_owner = name; c_seg = seg; c_wanted = wanted;
              c_got = dec.Constraints.Placement.base }
            :: t.conflicts
      | _ -> ());
      dec
    in
    let tdec =
      place_noting t.text_arena Blueprint.Mgraph.Seg_text (max text_size 1)
        (prefs_for Blueprint.Mgraph.Seg_text r.Blueprint.Mgraph.constraints)
    in
    let ddec =
      place_noting t.data_arena Blueprint.Mgraph.Seg_data (max data_size 1)
        (prefs_for Blueprint.Mgraph.Seg_data r.Blueprint.Mgraph.constraints)
    in
    let t0 = Telemetry.now_us () in
    (* the link and its simulated-cost charges share one span, so the
       profiler attributes the whole link phase to "server.link" *)
    let img, _lstats =
      Telemetry.with_span "server.link" @@ fun () ->
      let img, lstats =
        Linker.Link.link ~externals ~allow_undefined:true
          ~layout:
            {
              Linker.Link.text_base = tdec.Constraints.Placement.base;
              data_base = ddec.Constraints.Placement.base;
            }
          (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
      in
      charge_link t lstats;
      (img, lstats)
    in
    Telemetry.Histogram.observe tm_link_us (Telemetry.now_us () -. t0);
    let provenance =
      Telemetry.Provenance.capture ~key:cache_key
        ~text_base:tdec.Constraints.Placement.base
        ~data_base:ddec.Constraints.Placement.base
        ~placement:
          (placement_summary [ ("text", Some tdec); ("data", Some ddec) ])
        ~generation:(Cache.generation t.cache) ()
    in
    Telemetry.Provenance.note_built ~name provenance;
    let e =
      Cache.insert t.cache ~key:cache_key
        ~text_base:tdec.Constraints.Placement.base
        ~data_base:ddec.Constraints.Placement.base ~provenance
        { img with Linker.Image.name }
    in
    Residency.note_placed t.residency e;
    { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest img }
  in
  let acceptable = Residency.acceptable t.residency ~owner:name in
  match Cache.find t.cache cache_key ~acceptable with
  | Some e -> (
      (* re-establish the reservation of the revived placement *)
      match Residency.reacquire t.residency ~owner:name e with
      | Ok () -> { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest e.Cache.image }
      | Error _conflicting ->
          (* the range was taken between the acceptability check and
             the reservation (or a reserve fault fired): a placement
             conflict — rebuild as an alternate placement and record
             where the image wanted to be vs. where it went *)
          let b = build_fresh () in
          Telemetry.Counter.incr tm_arena_conflicts;
          t.conflicts <-
            {
              c_owner = name;
              c_seg = Blueprint.Mgraph.Seg_text;
              c_wanted = Constraints.Placement.At e.Cache.text_base;
              c_got = b.entry.Cache.text_base;
            }
            :: t.conflicts;
          b)
  | None ->
      (* stale candidates whose reservations are gone drop to Evicted
         so they can never shadow the fresh construction *)
      List.iter
        (fun e -> ignore (Residency.demote_if_lost t.residency e))
        (Cache.candidates t.cache cache_key);
      build_fresh ()

(** Build (or fetch) the image of a {e library} meta-object: fully
    bound, placed by the constraint system, cached, shared. Undefined
    symbols are allowed (libraries may reference client symbols — the
    paper's "furthest downstream" discussion) unless [externals]
    satisfy them. *)
let build_library_raw (t : t) ~(path : string)
    ?(spec : (string * Blueprint.Mgraph.value list) option) ?(externals = []) () :
    built =
  let meta = find_meta t path in
  let graph = Blueprint.Meta.effective_graph meta ~spec in
  let cache_key =
    "lib:" ^ path ^ ":" ^ Blueprint.Mgraph.digest graph
    ^ String.concat "" (List.map (fun i -> ":" ^ Linker.Image.digest i) externals)
  in
  let r =
    lazy
      (t.work.instantiations <- t.work.instantiations + 1;
       eval t graph)
  in
  link_in_arena t ~name:path ~cache_key ~externals r

(** Build (or fetch) a fully static image of an arbitrary graph at the
    client base addresses — generic instantiation (also the static
    scheme and the interposition examples). *)
let build_static_raw (t : t) ~(name : string) ?(entry_symbol : string option)
    ?(externals = []) (graph : Blueprint.Mgraph.node) : built =
  let cache_key =
    "static:" ^ name ^ ":" ^ Blueprint.Mgraph.digest graph
    ^ String.concat "" (List.map (fun i -> ":" ^ Linker.Image.digest i) externals)
  in
  match Cache.find t.cache cache_key ~acceptable:(fun _ -> true) with
  | Some e -> { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest e.Cache.image }
  | None ->
      Telemetry.Provenance.begin_build ();
      t.work.instantiations <- t.work.instantiations + 1;
      let r = eval t graph in
      let t0 = Telemetry.now_us () in
      let img, _lstats =
        Telemetry.with_span "server.link" @@ fun () ->
        let img, lstats =
          Linker.Link.link ?entry:entry_symbol ~externals
            ~layout:
              { Linker.Link.text_base = client_text_base; data_base = client_data_base }
            (Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m)
        in
        charge_link t lstats;
        (img, lstats)
      in
      Telemetry.Histogram.observe tm_link_us (Telemetry.now_us () -. t0);
      let provenance =
        Telemetry.Provenance.capture ~key:cache_key ~text_base:client_text_base
          ~data_base:client_data_base
          ~placement:
            (Printf.sprintf "static text@0x%08x data@0x%08x" client_text_base
               client_data_base)
          ~generation:(Cache.generation t.cache) ()
      in
      Telemetry.Provenance.note_built ~name provenance;
      let e =
        Cache.insert t.cache ~key:cache_key ~text_base:client_text_base
          ~data_base:client_data_base ~provenance
          { img with Linker.Image.name }
      in
      Residency.note_static t.residency e;
      { entry = e; key = cache_key ^ "@" ^ Linker.Image.digest img }

(* -- the unified request API ------------------------------------------------ *)

(** What a client asks the server to instantiate. *)
type target =
  | Library of {
      path : string;
      spec : (string * Blueprint.Mgraph.value list) option;
    }
  | Static of {
      name : string;
      graph : Blueprint.Mgraph.node;
      entry_symbol : string option;
    }

type request = { target : target; externals : Linker.Image.t list }

type response = {
  built : built;
  cache_hit : bool; (* served from the image cache, no link performed *)
  sim_us : float; (* simulated time the request took *)
}

let library_request ?spec ?(externals = []) (path : string) : request =
  { target = Library { path; spec }; externals }

let static_request ?entry_symbol ?(externals = []) ~(name : string)
    (graph : Blueprint.Mgraph.node) : request =
  { target = Static { name; graph; entry_symbol }; externals }

let target_label = function
  | Library l -> "lib:" ^ l.path
  | Static s -> "static:" ^ s.name

(** Serve one instantiation request: the single entry point of the OMOS
    request path. Opens the root ["omos.instantiate"] span; everything
    below (m-graph evaluation, placement, linking, caching) nests under
    it. *)
let instantiate (t : t) (req : request) : response =
  Telemetry.Request.with_request "instantiate" @@ fun () ->
  let span =
    Telemetry.Span.enter "omos.instantiate"
      ~attrs:[ ("target", Telemetry.S (target_label req.target)) ]
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit span) @@ fun () ->
  let t0 = Telemetry.now_us () in
  let links0 = t.work.links in
  (* the eviction-storm fault, when enabled, empties the cache here —
     the request below must then rebuild and re-place everything *)
  ignore (Residency.maybe_evict_storm t.residency);
  let built =
    match req.target with
    | Library { path; spec } ->
        build_library_raw t ~path ?spec ~externals:req.externals ()
    | Static { name; graph; entry_symbol } ->
        build_static_raw t ~name ?entry_symbol ~externals:req.externals graph
  in
  let cache_hit = t.work.links = links0 in
  let sim_us = Telemetry.now_us () -. t0 in
  Telemetry.Counter.incr tm_instantiations;
  Telemetry.Histogram.observe tm_instantiate_us sim_us;
  Telemetry.Span.add_attr span "cache_hit" (Telemetry.B cache_hit);
  Residency.self_check t.residency;
  Telemetry.Health.record ~hit:cache_hit ~cost_us:sim_us ();
  { built; cache_hit; sim_us }

(** Build (or fetch) the image of a {e library} meta-object — a thin
    wrapper over {!instantiate}. *)
let build_library (t : t) ~(path : string)
    ?(spec : (string * Blueprint.Mgraph.value list) option) ?(externals = []) () :
    built =
  (instantiate t { target = Library { path; spec }; externals }).built

(** Build (or fetch) a fully static image of an arbitrary graph — a thin
    wrapper over {!instantiate}. *)
let build_static (t : t) ~(name : string) ?(entry_symbol : string option)
    ?(externals = []) (graph : Blueprint.Mgraph.node) : built =
  (instantiate t { target = Static { name; graph; entry_symbol }; externals })
    .built

(** Register a specialization style (the schemes install theirs here). *)
let register_specializer (t : t) (style : string) (f : Blueprint.Mgraph.specializer) :
    unit =
  Blueprint.Mgraph.register t.env style f

(** Trim the image cache to a disk budget, releasing the arena
    reservations of evicted libraries (and only those — [static:]
    entries never held lib-arena ranges) so their address ranges can be
    reused. A later request for an evicted construction rebuilds it
    (and, via the reuse constraint, usually at the same addresses). *)
let evict_to_budget (t : t) ~(bytes : int) : int =
  Telemetry.Request.with_request "evict" @@ fun () ->
  List.length (Residency.evict_to_budget t.residency ~bytes)

(** Recorded placement conflicts, most recent first. *)
let conflicts (t : t) : conflict list = t.conflicts

(** Suggested constraint-list revisions derived from the conflict log:
    for each conflicted object, the base it actually received — feeding
    this back as its new preferred address makes future placements
    conflict-free (the "system manager could feed that data" loop). *)
let suggest_placements (t : t) : (string * Blueprint.Mgraph.seg * int) list =
  List.rev_map (fun c -> (c.c_owner, c.c_seg, c.c_got)) t.conflicts

(* -- mapping into client tasks ---------------------------------------------- *)

(** Map a built image into a process (cf. Mach [vm_map] into the target
    task): segments come from the server's memory, so they are resident
    — no file opening, no header parsing, no disk reads. *)
let map_into (t : t) ?(touch_user_cost = 0.0) ?(fresh_from_disk = false)
    (p : Simos.Proc.t) (b : built) : unit =
  if b.entry.Cache.residency = Cache.Evicted then
    fail "map_into: cached image of %s was evicted; re-instantiate it"
      b.entry.Cache.image.Linker.Image.name;
  Simos.Kernel.map_image t.kernel p ~key:b.key ~fresh_from_disk ~touch_user_cost
    b.entry.Cache.image

(** Everything needed to start a program built by a scheme. *)
type loadable = {
  parts : built list; (* map order: libraries first, client last *)
  entry : int;
}

let loadable_entry (parts : built list) : loadable =
  match
    List.find_map
      (fun (b : built) ->
        let e = b.entry.Cache.image.Linker.Image.entry in
        if e >= 0 then Some e else None)
      (List.rev parts)
  with
  | Some entry -> { parts; entry }
  | None -> fail "no entry point in any part"
