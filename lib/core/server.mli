(** The OMOS server.

    A persistent process (here: a persistent OCaml value living across
    simulated program invocations) that owns the namespace, the image
    cache, the address-space constraint arenas, and the blueprint
    evaluation environment. Program linking and loading are the special
    case of generic object instantiation.

    Every instantiation flows through a staged pipeline — parse → lint
    → eval → place → link → map — driven by a cooperative scheduler
    ({!Simos.Sched}) on the simulated clock. Clients either go
    asynchronous ({!submit} a {!request}, later {!await}/{!poll} the
    {!ticket}) or call the classic synchronous {!instantiate}, which is
    a thin submit-and-drain wrapper. When several requests are in
    flight, their stages interleave deterministically and the [place]
    stage solves all queued placements as {e one} batched constraint
    pass. *)

exception Server_error of string

(** Raised by {!submit} when admission control rejects a request
    (too many in flight — see {!set_queue_limit}). *)
exception Overload of string

(** Address-space conventions (cf. Figure 1's "T" 0x100000
    "D" 0x40200000): libraries live in the shared arenas; client
    programs at fixed bases outside them. *)

val lib_text_lo : int
val lib_text_hi : int
val lib_data_lo : int
val lib_data_hi : int
val client_text_base : int
val client_data_base : int

(** A recorded placement conflict: an object wanted an address it could
    not have (paper §4.1: "OMOS could easily record the conflicts
    found"). *)
type conflict = {
  c_owner : string;
  c_seg : Blueprint.Mgraph.seg;
  c_wanted : Constraints.Placement.pref;
  c_got : int;
}

type t

(** [create ~kernel ()] starts a server. [faults] configures the
    residency layer's deterministic fault injection (placement
    conflicts, eviction storms, reserve failures); omit it for none. *)
val create : kernel:Simos.Kernel.t -> ?faults:Residency.faults -> unit -> t

(** {1 Read-only views}

    The server's internals are not exposed; read state through these. *)

(** Snapshot of the work the server has performed (for the caching
    experiments). [source_compiles] counts blueprint [source] nodes
    compiled anywhere in this process. *)
type stats = {
  links : int;
  relocs : int;
  source_compiles : int;
  instantiations : int;
}

val stats : t -> stats
val namespace : t -> Namespace.t
val cache_stats : t -> Cache.stats
val kernel : t -> Simos.Kernel.t
val text_arena : t -> Constraints.Placement.t
val data_arena : t -> Constraints.Placement.t

(** The residency layer that keeps the cache and the arenas coherent
    (see {!Residency}); use it to run {!Residency.check_invariants}. *)
val residency : t -> Residency.t

(** Charge server-side build work (relocations, symbol lookups) to the
    simulated clock? On by default; benches turn it off to isolate
    steady state. *)
val set_charge_build_work : t -> bool -> unit

(** Enable/disable the automatic residency invariant check after every
    instantiate/evict (on by default). *)
val set_self_check : t -> bool -> unit

(** {1 Namespace population} *)

(** Bind objects into the server's namespace. *)
val add_fragment : t -> string -> Sof.Object_file.t -> unit

(** [register_meta t path m] binds a meta-object and lints it: the
    symbol-flow analyzer ({!Analysis.Lint}) runs at registration — no
    view materialized, no simulated cost charged — its finding counts
    feed the [lint.errors]/[lint.warnings] counters, and the findings
    replay into the provenance journal of every build of the meta.
    Registration never fails on findings. This is the one canonical
    registration entry point; {!register_meta_source} and
    {!load_meta_file} both route through it. *)
val register_meta : t -> string -> Blueprint.Meta.t -> unit

(** The registration-time lint report of a bound meta-object. *)
val lint_report : t -> string -> Analysis.Lint.report option

(** The registration-time {!Analysis.Impact} dependence analysis of a
    bound meta-object (refreshed for every bound meta whenever any meta
    is registered, so [Name]-mediated dependencies stay current). *)
val impact_tree : t -> string -> Analysis.Impact.tree option

(** The reuse/respin verdicts computed the last time the path was
    re-registered over an existing binding — which subtrees of the
    edited blueprint survive, and why the rest must respin. *)
val impact_diff : t -> string -> Analysis.Impact.diff option

(** Toggle incremental relinking (default on): when off, evaluation
    never consults or fills the per-node memo table. The knob the
    incremental-vs-from-scratch differential oracle flips. *)
val set_subtree_reuse : t -> bool -> unit

val subtree_reuse : t -> bool

(** Result-returning twin of the evaluation environment's name
    resolution, for the symbol-flow analyzer (which must never
    raise). *)
val resolve_graph :
  t -> string -> (Blueprint.Mgraph.node, string) result

(** Register a meta-object from blueprint source text (parse, then
    {!register_meta}). *)
val register_meta_source : t -> string -> string -> unit

(** Load a meta-object source file from the simulated filesystem and
    bind it at [ns_path] — meta-objects are ordinary files. *)
val load_meta_file : t -> fs_path:string -> ns_path:string -> unit

(** Load an object file (either backend format) from the simulated
    filesystem and bind it at [ns_path]. *)
val load_fragment_file : t -> fs_path:string -> ns_path:string -> unit

(** @raise Server_error if the path is absent or not a meta-object. *)
val find_meta : t -> string -> Blueprint.Meta.t

(** {1 Instantiation} *)

(** Evaluate an m-graph in the server's environment. *)
val eval : t -> Blueprint.Mgraph.node -> Blueprint.Mgraph.result

(** Text and data+bss sizes a module will occupy (for placement). *)
val module_sizes : Jigsaw.Module_ops.t -> int * int

(** A built, positioned, cached image together with its page-cache key
    for mapping into tasks. *)
type built = { entry : Cache.entry; key : string }

(** Has this built's cache entry been evicted since it was handed out?
    Stale builts must be re-requested before mapping. *)
val built_evicted : built -> bool

(** What a client asks the server to instantiate:

    - [Library]: a library meta-object by namespace path, optionally
      specialized — fully bound, placed by the constraint system in the
      shared arenas, cached, shared. Undefined symbols are allowed
      (libraries may reference client symbols) unless [externals]
      satisfy them.
    - [Static]: an arbitrary m-graph linked at the client base
      addresses — generic instantiation (also the static scheme and the
      interposition examples). *)
type target =
  | Library of {
      path : string;
      spec : (string * Blueprint.Mgraph.value list) option;
    }
  | Static of {
      name : string;
      graph : Blueprint.Mgraph.node;
      entry_symbol : string option;
    }

type request = { target : target; externals : Linker.Image.t list }

type response = {
  built : built;
  cache_hit : bool; (* served from the image cache, no link performed *)
  sim_us : float; (* simulated submit-to-completion time, queueing included *)
  queue_us : float;
      (* of sim_us, admission + scheduler wait — together with the two
         typed waits below this is all the time spent waiting on other
         requests; [queue_us +. batch_us +. coalesce_us] equals what a
         single [queue_us] field reported before the split *)
  batch_us : float; (* of sim_us, parked at the place barrier *)
  coalesce_us : float; (* of sim_us, waiting on a leader's in-flight build *)
}

(** [library ?spec ?externals path] — a [Library] request. *)
val library :
  ?spec:string * Blueprint.Mgraph.value list ->
  ?externals:Linker.Image.t list ->
  string ->
  request

(** [static ~name graph] — a [Static] request. *)
val static :
  ?entry_symbol:string ->
  ?externals:Linker.Image.t list ->
  name:string ->
  Blueprint.Mgraph.node ->
  request

(** {2 The asynchronous pipeline}

    [submit] admits a request into the staged pipeline and returns a
    ticket immediately; the request advances through
    parse → lint → eval → place → link → map as the scheduler runs.
    Stage transitions are recorded in the flight recorder
    ([pipeline.parse] …), per-stage latencies and queue depths feed the
    metrics registry, and concurrent requests meeting at the place
    boundary are solved in one batched constraint pass
    ([place.batch_size] histogram). *)

(** Handle to an in-flight request. *)
type ticket

(** The ticket's underlying telemetry request id — the key the causal
    event graph ({!Telemetry.Causal}, [Omos.Blame]) records under. *)
val ticket_id : ticket -> int

(** Admit a request. Scheduling is lazy: stages only run inside
    {!await}, {!poll}, {!drain} or a synchronous {!instantiate}.
    @raise Overload when {!in_flight} ≥ the queue limit. *)
val submit : t -> request -> ticket

(** Run the pipeline until this ticket completes; return its response.
    Re-raises the request's own failure exception, if any. *)
val await : t -> ticket -> response

(** [poll t k] — [Some response] if [k] has completed (consuming the
    ticket), [None] if still in flight; does not advance the pipeline.
    @raise Server_error on an unknown or already-consumed ticket. *)
val poll : t -> ticket -> response option

(** Run the pipeline until no request is in flight. *)
val drain : t -> unit

(** Number of submitted-but-undelivered requests. *)
val in_flight : t -> int

(** Admission-control bound on {!in_flight} (default 64); beyond it
    {!submit} raises {!Overload}. *)
val set_queue_limit : t -> int -> unit

(** The current admission-control bound. *)
val queue_limit : t -> int

(** Solve queued placements as one batched constraint pass (default
    [true]); [false] reverts to one solver pass per request. *)
val set_batch_placement : t -> bool -> unit

(** Seed for the cooperative scheduler's task interleaving. 0 (the
    default) is strict FIFO; any other seed is a deterministic
    pseudo-random interleaving — byte-reproducible run to run. *)
val set_sched_seed : t -> int -> unit

(** {2 Synchronous wrappers} *)

(** Serve one instantiation request to completion —
    [submit] + [await] under the root ["omos.instantiate"] telemetry
    span; evaluation, placement, linking and caching all nest under
    it. *)
val instantiate : t -> request -> response

(** [build t req] = [(instantiate t req).built]. *)
val build : t -> request -> built

(** Register a specialization style (the schemes install theirs here). *)
val register_specializer : t -> string -> Blueprint.Mgraph.specializer -> unit

(** Trim the image cache to a disk budget, releasing evicted libraries'
    arena reservations (and only those — [static:] entries never held
    lib-arena ranges). Returns the number of entries evicted. *)
val evict_to_budget : t -> bytes:int -> int

(** Recorded placement conflicts, most recent first. *)
val conflicts : t -> conflict list

(** Suggested constraint-list revisions derived from the conflict log:
    feeding each conflicted object the base it actually received makes
    future placements conflict-free. *)
val suggest_placements : t -> (string * Blueprint.Mgraph.seg * int) list

(** Map a built image into a process (cf. Mach [vm_map] into the target
    task): segments come from the server's memory — no file opening, no
    header parsing, no disk reads. *)
val map_into :
  t -> ?touch_user_cost:float -> ?fresh_from_disk:bool -> Simos.Proc.t -> built -> unit

(** Everything needed to start a program built by a scheme. *)
type loadable = { parts : built list (* map order *); entry : int }

(** Package parts, taking the entry point from the last part that has
    one. @raise Server_error if none do. *)
val loadable_entry : built list -> loadable
