(** Differential fuzz oracles over generated cases (see fuzzer.mli). *)

module Fuzz = Workloads.Fuzz

type failure = {
  fz_oracle : string;
  fz_detail : string;
  fz_case : Fuzz.case;
}

type verdict = Pass of { clean_libs : int; events : int } | Fail of failure

let install (c : Fuzz.case) (w : World.t) : unit =
  let s = w.World.server in
  List.iter
    (fun m ->
      let path = Fuzz.mod_path m in
      Server.add_fragment s path
        (Minic.Driver.compile ~name:path (Fuzz.minic_source m)))
    c.Fuzz.f_mods;
  List.iter
    (fun l -> Server.register_meta_source s (Fuzz.lib_path l) (Fuzz.meta_source l))
    c.Fuzz.f_libs

(* -- oracle 1: lint vs evaluator ------------------------------------------- *)

(* Returns the libraries the analyzer proved instantiable (Verified),
   or the first disagreement with the evaluator. *)
let lint_differential (s : Server.t) (c : Fuzz.case) :
    (string list, string) result =
  let resolve = Server.resolve_graph s in
  let rec go clean = function
    | [] -> Ok (List.rev clean)
    | l :: rest -> (
        let path = Fuzz.lib_path l in
        let meta = Server.find_meta s path in
        let graph = Blueprint.Meta.effective_graph meta ~spec:None in
        let report, outcome =
          Analysis.Lint.verify_against ~eval:(Server.eval s) ~resolve graph
        in
        match outcome with
        | Analysis.Lint.Verified _ -> go (path :: clean) rest
        | Analysis.Lint.Skipped _ when report.Analysis.Lint.eval_fails -> (
            (* strengthened differential: the analyzer predicts the
               evaluator refuses this graph — hold it to that *)
            match Server.eval s graph with
            | _ ->
                Error
                  (Printf.sprintf
                     "%s: analyzer predicts evaluation failure but evaluation \
                      succeeded"
                     path)
            | exception _ -> go clean rest)
        | Analysis.Lint.Skipped _ ->
            (* approximate graphs make no exact claim *)
            go clean rest
        | Analysis.Lint.Mismatch { field; predicted; actual } ->
            Error
              (Printf.sprintf "%s: %s mismatch: predicted [%s] actual [%s]" path
                 field
                 (String.concat " " predicted)
                 (String.concat " " actual))
        | Analysis.Lint.Eval_raised msg ->
            Error
              (Printf.sprintf
                 "%s: evaluation raised although the analyzer predicted \
                  success: %s"
                 path msg))
  in
  go [] c.Fuzz.f_libs

(* -- oracle 2: residency invariants ---------------------------------------- *)

let check_residency (s : Server.t) ~(ctx : string) : (unit, string) result =
  match Residency.check_invariants (Server.residency s) with
  | [] -> Ok ()
  | vs ->
      Error
        (Printf.sprintf "after %s: %s" ctx
           (String.concat "; " (List.map Residency.violation_message vs)))

let residency_probe (s : Server.t) (c : Fuzz.case) (clean : string list) :
    (unit, string) result =
  let ( let* ) = Result.bind in
  let budget = max c.Fuzz.f_wl.Fuzz.w_evict 4096 in
  let rec instantiate_all = function
    | [] -> Ok ()
    | path :: rest ->
        let* () =
          match Server.instantiate s (Server.library path) with
          | (_ : Server.response) -> check_residency s ~ctx:("instantiate " ^ path)
          | exception Residency.Violation m ->
              Error (Printf.sprintf "instantiate %s raised: %s" path m)
        in
        instantiate_all rest
  in
  let* () = instantiate_all clean in
  let* () =
    match Server.evict_to_budget s ~bytes:budget with
    | (_ : int) -> check_residency s ~ctx:(Printf.sprintf "evict budget=%d" budget)
    | exception Residency.Violation m -> Error ("evict raised: " ^ m)
  in
  (* churn: everything clean must come back after the eviction pass *)
  instantiate_all clean

(* -- oracle 3: pipeline equivalence ---------------------------------------- *)

let event_sig (e : Workload.event) : string =
  Printf.sprintf "%d %d %s %s %s" e.Workload.w_req e.Workload.w_client
    e.Workload.w_op e.Workload.w_target
    (match e.Workload.w_hit with
    | None -> "-"
    | Some true -> "hit"
    | Some false -> "miss")

let spec_text (c : Fuzz.case) (clean : string list) : string =
  Fuzz.spec_body c.Fuzz.f_wl
  ^ String.concat "" (List.map (fun p -> "meta " ^ p ^ "\n") clean)

(* Run the scenario, returning the events plus the final arena interval
   maps of the world it ran in. *)
let run_spec (c : Fuzz.case) (spec : Workload.spec) :
    Workload.event list * (int * int * string) list * (int * int * string) list =
  let captured = ref None in
  let setup w =
    captured := Some w.World.server;
    install c w
  in
  let events = Workload.run ~setup spec in
  match !captured with
  | None -> assert false
  | Some s ->
      ( events,
        Constraints.Placement.intervals (Server.text_arena s),
        Constraints.Placement.intervals (Server.data_arena s) )

let first_diff (xs : string list) (ys : string list) : string =
  let rec go i = function
    | [], [] -> "streams equal (lengths differ?)"
    | x :: _, [] -> Printf.sprintf "event %d only in first: %s" i x
    | [], y :: _ -> Printf.sprintf "event %d only in second: %s" i y
    | x :: xs, y :: ys ->
        if x = y then go (i + 1) (xs, ys)
        else Printf.sprintf "event %d: %S vs %S" i x y
  in
  go 0 (xs, ys)

let pipeline_equivalence (c : Fuzz.case) (clean : string list) :
    (int, string) result =
  let spec = Workload.parse (spec_text c clean) in
  match c.Fuzz.f_wl.Fuzz.w_fault with
  | Some _ ->
      (* fault injection consumes its seeded stream as server-side
         operations happen, so serial and batched runs draw different
         streams by design — the guarantee under faults is replay:
         identical runs are byte-identical, costs included *)
      let a, _, _ = run_spec c spec in
      let b, _, _ = run_spec c spec in
      if a = b then Ok (List.length a)
      else
        Error
          (Printf.sprintf "fault replay diverged: %s"
             (first_diff (List.map event_sig a) (List.map event_sig b)))
  | None ->
      let batched = { spec with Workload.concurrency = max spec.Workload.concurrency 2 } in
      let serial = { spec with Workload.concurrency = 1 } in
      let ea, ta, da = run_spec c batched in
      let eb, tb, db = run_spec c serial in
      let sa = List.map event_sig ea and sb = List.map event_sig eb in
      let show_intervals ivs =
        String.concat ", "
          (List.map (fun (lo, hi, who) -> Printf.sprintf "%#x-%#x %s" lo hi who) ivs)
      in
      if sa <> sb then
        Error (Printf.sprintf "batched vs serial events: %s" (first_diff sa sb))
      else if ta <> tb then
        Error
          (Printf.sprintf
             "batched vs serial: text arena intervals differ: [%s] vs [%s]"
             (show_intervals ta) (show_intervals tb))
      else if da <> db then
        Error
          (Printf.sprintf
             "batched vs serial: data arena intervals differ: [%s] vs [%s]"
             (show_intervals da) (show_intervals db))
      else Ok (List.length ea)

(* -- oracle 4: incremental vs from-scratch relink --------------------------- *)

(* Link-level facts of one build — everything that must not depend on
   whether evaluation served subtrees from the memo table. Eval-time
   journal events are excluded by construction (a reused subtree
   replaces its per-operator events with one [Reused]); the link stage
   always runs for a respun root, so its Bind/Reloc events, the
   placement, and the image bytes must be identical either way. *)
let build_sig (b : Server.built) : string =
  let e = b.Server.entry in
  let link_events =
    match e.Cache.provenance with
    | None -> []
    | Some p ->
        List.filter_map
          (fun ev ->
            match ev with
            | Telemetry.Provenance.Bind _ | Telemetry.Provenance.Reloc _ ->
                Some (Telemetry.Provenance.event_to_string ev)
            | _ -> None)
          p.Telemetry.Provenance.p_events
  in
  Printf.sprintf "text=%#x data=%#x image=%s binds=[%s]" e.Cache.text_base
    e.Cache.data_base
    (Digest.to_hex (Digest.bytes (Linker.Image.encode e.Cache.image)))
    (String.concat "; " link_events)

(* One full history: install the case, build every library, install the
   edited blueprints over the same bindings, rebuild every library.
   [gensym0] aligns the global mangling counter so both runs mint
   comparable freeze/hide aliases. *)
let incremental_run (c : Fuzz.case) (c' : Fuzz.case) ~(reuse : bool)
    ~(gensym0 : int) :
    string list * (int * int * string) list * (int * int * string) list =
  Jigsaw.Module_ops.gensym_set gensym0;
  let w = World.create () in
  let s = w.World.server in
  Server.set_subtree_reuse s reuse;
  install c w;
  let build path =
    match Server.build s (Server.library path) with
    | b -> Printf.sprintf "%s: %s" path (build_sig b)
    | exception e -> Printf.sprintf "%s: raised %s" path (Printexc.to_string e)
  in
  let pre = List.map (fun l -> build (Fuzz.lib_path l)) c.Fuzz.f_libs in
  List.iter
    (fun l -> Server.register_meta_source s (Fuzz.lib_path l) (Fuzz.meta_source l))
    c'.Fuzz.f_libs;
  let post = List.map (fun l -> build (Fuzz.lib_path l)) c'.Fuzz.f_libs in
  ( pre @ post,
    Constraints.Placement.intervals (Server.text_arena s),
    Constraints.Placement.intervals (Server.data_arena s) )

let incremental_equivalence (c : Fuzz.case) : (int, string) result =
  match Fuzz.mutate ~seed:c.Fuzz.f_seed c with
  | None -> Ok 0
  | Some (c', edit) ->
      let gensym0 = Jigsaw.Module_ops.gensym_current () in
      let prov0 = Telemetry.Provenance.is_enabled () in
      Telemetry.Provenance.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Telemetry.Provenance.set_enabled prov0)
        (fun () ->
          let a, ta, da = incremental_run c c' ~reuse:true ~gensym0 in
          let b, tb, db = incremental_run c c' ~reuse:false ~gensym0 in
          let show_intervals ivs =
            String.concat ", "
              (List.map
                 (fun (lo, hi, who) -> Printf.sprintf "%#x-%#x %s" lo hi who)
                 ivs)
          in
          if a <> b then
            Error
              (Printf.sprintf "edit %S: incremental vs from-scratch: %s" edit
                 (first_diff a b))
          else if ta <> tb then
            Error
              (Printf.sprintf
                 "edit %S: text arena intervals differ: [%s] vs [%s]" edit
                 (show_intervals ta) (show_intervals tb))
          else if da <> db then
            Error
              (Printf.sprintf
                 "edit %S: data arena intervals differ: [%s] vs [%s]" edit
                 (show_intervals da) (show_intervals db))
          else Ok (List.length a))

(* -- putting it together ---------------------------------------------------- *)

let run_case_exn (c : Fuzz.case) : verdict =
  let fail oracle detail = Fail { fz_oracle = oracle; fz_detail = detail; fz_case = c } in
  let w = World.create () in
  install c w;
  let s = w.World.server in
  match lint_differential s c with
  | Error detail -> fail "lint-differential" detail
  | Ok clean -> (
      match residency_probe s c clean with
      | Error detail -> fail "residency" detail
      | Ok () -> (
          match pipeline_equivalence c clean with
          | Error detail -> fail "pipeline-equivalence" detail
          | Ok events -> (
              match incremental_equivalence c with
              | Error detail -> fail "incremental-relink" detail
              | Ok _ -> Pass { clean_libs = List.length clean; events })))

let run_case (c : Fuzz.case) : verdict =
  match run_case_exn c with
  | v -> v
  | exception Residency.Violation m ->
      Fail { fz_oracle = "residency"; fz_detail = m; fz_case = c }
  | exception e ->
      Fail { fz_oracle = "crash"; fz_detail = Printexc.to_string e; fz_case = c }

let reduce ?(budget = 300) (f : failure) : Fuzz.case * int =
  let runs = ref 0 in
  let still_fails c =
    if !runs >= budget then false
    else begin
      incr runs;
      match run_case c with
      | Fail f' -> f'.fz_oracle = f.fz_oracle
      | Pass _ -> false
    end
  in
  let rec go cur =
    if !runs >= budget then cur
    else
      match List.find_opt still_fails (Fuzz.shrink cur) with
      | Some smaller -> go smaller
      | None -> cur
  in
  let minimized = go f.fz_case in
  (minimized, !runs)

let fuzz ?(max_modules = 12) ?(max_libs = 6) ?on_iteration ~seed ~iterations ()
    : (int * failure) option =
  let rec go i =
    if i >= iterations then None
    else begin
      let c =
        Fuzz.generate ~max_modules ~max_libs
          ~seed:(Fuzz.derive_seed ~master:seed i)
          ()
      in
      let v = run_case c in
      (match on_iteration with Some f -> f i v | None -> ());
      match v with Pass _ -> go (i + 1) | Fail f -> Some (i, f)
    end
  in
  go 0
