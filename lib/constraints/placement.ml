(** The OMOS address-space constraint system (paper §3.5).

    "OMOS describes an address space in terms of prioritized
    constraints. A required constraint is that no two objects may
    overlap. A highly desired constraint is that existing
    implementations be reused. Other weaker constraints, optionally
    provided by the user, may specify desired placement of the object
    (e.g., library) within the address space."

    An {!arena} records which intervals of a (shared, virtual) address
    space are occupied by which named object. {!place} answers a
    placement request by honouring, in priority order:

    - the required no-overlap constraint (never violated);
    - reuse of an existing placement of the same object, when the caller
      passes one and it does not conflict;
    - the caller's weak preferences ([At] / [Near] / [Within] /
      [Avoid]), tried strongest-first, each dropped if unsatisfiable;
    - finally first-fit within the arena's default region. *)

exception No_space of string

(** A weak placement preference. *)
type pref =
  | At of int (* exactly this base address *)
  | Near of int (* as close as possible to this address *)
  | Within of int * int (* inside [lo, hi) *)
  | Avoid of int * int (* outside [lo, hi) if possible *)

let pp_pref ppf = function
  | At a -> Format.fprintf ppf "at 0x%x" a
  | Near a -> Format.fprintf ppf "near 0x%x" a
  | Within (lo, hi) -> Format.fprintf ppf "within [0x%x,0x%x)" lo hi
  | Avoid (lo, hi) -> Format.fprintf ppf "avoid [0x%x,0x%x)" lo hi

type interval = { lo : int; hi : int; owner : string }

type t = {
  mutable occupied : interval list; (* sorted by lo, non-overlapping *)
  region_lo : int; (* default allocation region *)
  region_hi : int;
  align : int; (* base alignment for all placements (page size) *)
}

let create ?(region_lo = 0x1000) ?(region_hi = 0x7FFF_F000) ?(align = 0x1000) () : t =
  if align <= 0 || region_lo < 0 || region_hi <= region_lo then
    invalid_arg "Placement.create";
  { occupied = []; region_lo; region_hi; align }

let intervals (t : t) : (int * int * string) list =
  List.map (fun i -> (i.lo, i.hi, i.owner)) t.occupied

(** Base alignment of every placement in this arena (callers that
    [reserve] ranges a [place] may later have to coexist with should
    align their sizes the same way). *)
let align (t : t) : int = t.align

let align_up v a = (v + a - 1) / a * a

let overlaps t lo hi =
  List.find_opt (fun i -> lo < i.hi && i.lo < hi) t.occupied

(** [free t lo hi] — is [lo,hi) completely unoccupied? *)
let free (t : t) ~lo ~hi : bool = overlaps t lo hi = None

(* Insert keeping sort order. *)
let insert (t : t) (iv : interval) : unit =
  let rec go = function
    | [] -> [ iv ]
    | x :: rest -> if iv.lo < x.lo then iv :: x :: rest else x :: go rest
  in
  t.occupied <- go t.occupied

(** [reserve t ~lo ~size owner] claims an exact interval; [Error owner']
    names the conflicting occupant if any. *)
let reserve (t : t) ~lo ~size owner : (unit, string) result =
  let hi = lo + size in
  match overlaps t lo hi with
  | Some i -> Error i.owner
  | None ->
      insert t { lo; hi; owner };
      Ok ()

(** [release t ~lo] frees the interval starting at [lo]. *)
let release (t : t) ~lo : unit =
  t.occupied <- List.filter (fun i -> i.lo <> lo) t.occupied

(* Candidate base addresses adjacent to occupied intervals plus region
   start: the classic first-fit gap scan. *)
let gap_candidates (t : t) : int list =
  t.region_lo :: List.map (fun i -> align_up i.hi t.align) t.occupied

let fits t lo size =
  lo >= t.region_lo && lo + size <= t.region_hi && free t ~lo ~hi:(lo + size)

(* First fit at or above [from]. *)
let first_fit_from (t : t) ~from ~size : int option =
  let cands =
    List.sort_uniq compare
      (List.filter (fun c -> c >= from) (align_up from t.align :: gap_candidates t))
  in
  List.find_opt (fun c -> fits t c size) cands

(* Closest fit to [target] (scan candidates by distance). In addition
   to the gap starts, consider bases placed flush below each occupied
   interval — the closest position on the low side of a "wall". *)
let closest_fit (t : t) ~target ~size : int option =
  let below =
    List.map (fun i -> (i.lo - size) / t.align * t.align) t.occupied
  in
  let cands =
    List.sort_uniq compare (align_up target t.align :: (gap_candidates t @ below))
  in
  let ok = List.filter (fun c -> fits t c size) cands in
  match ok with
  | [] -> None
  | _ ->
      let dist c = abs (c - target) in
      Some (List.fold_left (fun best c -> if dist c < dist best then c else best)
              (List.hd ok) ok)

let try_pref (t : t) ~size = function
  | At a -> if a mod t.align = 0 && fits t a size then Some a else None
  | Near a -> closest_fit t ~target:a ~size
  | Within (lo, hi) ->
      Option.bind (first_fit_from t ~from:lo ~size) (fun c ->
          if c + size <= hi then Some c else None)
  | Avoid (lo, hi) -> (
      (* prefer below the avoided range, then above it *)
      match
        Option.bind (first_fit_from t ~from:t.region_lo ~size) (fun c ->
            if c + size <= lo then Some c else None)
      with
      | Some c -> Some c
      | None -> first_fit_from t ~from:(align_up hi t.align) ~size)

(** Outcome of a placement decision. *)
type decision = {
  base : int;
  reused : bool; (* an existing placement was kept *)
  satisfied : pref option; (* which preference was honoured, if any *)
}

(** [place t ~size ~owner ?existing ?prefs ()] chooses a base address.

    [existing] is a previously cached placement of the same object: if
    it is still available (or already owned by [owner]), it is reused —
    the paper's "highly desired" constraint that gives physical sharing.
    [prefs] are (priority, preference) pairs; higher priority first.
    Raises {!No_space} if the arena cannot fit [size] at all. *)
let tm_placements = Telemetry.Counter.make "constraints.placements"
let tm_reuses = Telemetry.Counter.make "constraints.reuses"

let place_raw (t : t) ~size ~owner ?existing ?(prefs = []) () : decision =
  let size = align_up (max size 1) t.align in
  let reuse =
    match existing with
    | Some lo -> (
        match overlaps t lo (lo + size) with
        | None -> Some lo (* free: re-reserve it *)
        | Some i when i.owner = owner && i.lo = lo -> Some lo (* already ours *)
        | Some _ -> None)
    | None -> None
  in
  match reuse with
  | Some lo ->
      if free t ~lo ~hi:(lo + size) then insert t { lo; hi = lo + size; owner };
      { base = lo; reused = true; satisfied = None }
  | None -> (
      let sorted =
        List.map snd (List.sort (fun (p1, _) (p2, _) -> compare p2 p1) prefs)
      in
      let rec try_all = function
        | [] -> None
        | p :: rest -> (
            match try_pref t ~size p with
            | Some base -> Some (base, Some p)
            | None -> try_all rest)
      in
      let found =
        match try_all sorted with
        | Some (base, p) -> Some (base, p)
        | None ->
            Option.map (fun b -> (b, None)) (first_fit_from t ~from:t.region_lo ~size)
      in
      match found with
      | None -> raise (No_space owner)
      | Some (base, satisfied) ->
          insert t { lo = base; hi = base + size; owner };
          { base; reused = false; satisfied })

(** One member of a batched placement request. *)
type batch_item = {
  bi_size : int;
  bi_owner : string;
  bi_existing : int option;
  bi_prefs : (int * pref) list;
}

let tm_batch_solves = Telemetry.Counter.make "constraints.batch_solves"
let tm_batch_packed = Telemetry.Counter.make "constraints.batch_packed"

(* Is an item eligible for the packed-run fast path? Items with an
   existing placement or weak preferences keep their own solve. *)
let simple (i : batch_item) : bool = i.bi_existing = None && i.bi_prefs = []

(* Pack a maximal run of simple items as one DeltaBlue chain: find a
   single gap for the whole run, chain base[i+1] = base[i] + size[i],
   and reserve every member at its planned base. Returns [None] when no
   single gap fits the run (callers fall back to per-item solves). *)
let pack_run (t : t) (run : batch_item list) : decision list option =
  let sizes = List.map (fun i -> align_up (max i.bi_size 1) t.align) run in
  (* Packing must be invisible: it may only fire when the chain lands
     exactly where one-at-a-time first fit would put every member. On a
     fragmented arena the sequential answers can split across gaps —
     simulate them, and fall back to per-item solves unless they form
     one contiguous chain. *)
  let saved = t.occupied in
  let bases =
    List.map
      (fun s ->
        match first_fit_from t ~from:t.region_lo ~size:s with
        | None -> None
        | Some b ->
            insert t { lo = b; hi = b + s; owner = "#pack-sim" };
            Some b)
      sizes
  in
  t.occupied <- saved;
  let contiguous =
    List.for_all Option.is_some bases
    &&
    let rec chk = function
      | (Some b1, s1) :: ((Some b2, _) :: _ as rest) ->
          b1 + s1 = b2 && chk rest
      | _ -> true
    in
    chk (List.combine bases sizes)
  in
  match (contiguous, bases) with
  | false, _ | _, [] | _, None :: _ -> None
  | true, Some base :: _ ->
      let members =
        List.mapi (fun k (i, s) -> (string_of_int k ^ ":" ^ i.bi_owner, s))
          (List.combine run sizes)
      in
      let chain = Db_layout.create ~base members in
      assert (Db_layout.packed chain);
      Telemetry.Counter.incr tm_batch_packed;
      Some
        (List.map
           (fun (name, b, s) ->
             let owner =
               match String.index_opt name ':' with
               | Some k -> String.sub name (k + 1) (String.length name - k - 1)
               | None -> name
             in
             insert t { lo = b; hi = b + s; owner };
             { base = b; reused = false; satisfied = None })
           (Db_layout.layout chain))

(* The traced entry point: a span per placement decision plus the
   arena-level counters. *)
let place (t : t) ~size ~owner ?existing ?(prefs = []) () : decision =
  let span =
    Telemetry.Span.enter "constraints.place"
      ~attrs:[ ("owner", Telemetry.S owner); ("size", Telemetry.I size) ]
  in
  match place_raw t ~size ~owner ?existing ~prefs () with
  | d ->
      Telemetry.Counter.incr tm_placements;
      if d.reused then Telemetry.Counter.incr tm_reuses;
      Telemetry.Span.add_attr span "base" (Telemetry.I d.base);
      Telemetry.Span.add_attr span "reused" (Telemetry.B d.reused);
      Telemetry.Span.exit span;
      d
  | exception e ->
      Telemetry.Span.exit span;
      raise e

(** [place_batch t items] solves the address constraints of a whole
    queue of placement requests in one pass. Maximal runs of
    unconstrained fresh items (no reuse candidate, no preferences) are
    packed as one DeltaBlue chain into a single gap — on a contiguous
    free region this reproduces the first-fit answers the items would
    have received one at a time; items carrying reuse candidates or
    preferences are solved individually, in submission order, inside
    the same pass. Decisions come back in item order.

    [wrap i item solve] brackets the individual solve of [item] (index
    [i]); callers hang request attribution and fault hooks there. The
    members of a packed run are solved jointly, so [wrap] is not
    applied to them. *)
let place_batch (t : t) ?(wrap = fun _ _ f -> f ()) (items : batch_item list) :
    decision list =
  let span =
    Telemetry.Span.enter "constraints.place_batch"
      ~attrs:[ ("n", Telemetry.I (List.length items)) ]
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit span) @@ fun () ->
  Telemetry.Counter.incr tm_batch_solves;
  let solve_one (idx : int) (i : batch_item) : decision =
    wrap idx i (fun () ->
        place t ~size:i.bi_size ~owner:i.bi_owner ?existing:i.bi_existing
          ~prefs:i.bi_prefs ())
  in
  (* a packed member still reports a (zero-width) placement span and
     bumps the arena counters, so traces and counts read the same
     whether or not the run packed *)
  let note_packed (i : batch_item) (d : decision) : decision =
    let s =
      Telemetry.Span.enter "constraints.place"
        ~attrs:
          [ ("owner", Telemetry.S i.bi_owner); ("size", Telemetry.I i.bi_size) ]
    in
    Telemetry.Span.add_attr s "base" (Telemetry.I d.base);
    Telemetry.Span.add_attr s "packed" (Telemetry.B true);
    Telemetry.Span.exit s;
    Telemetry.Counter.incr tm_placements;
    d
  in
  let rec go idx = function
    | [] -> []
    | i :: _ as items when simple i ->
        let rec split acc = function
          | x :: rest when simple x -> split (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let run, rest = split [] items in
        let decisions =
          if List.length run >= 2 then
            match pack_run t run with
            | Some ds -> List.map2 note_packed run ds
            | None -> List.mapi (fun k x -> solve_one (idx + k) x) run
          else List.mapi (fun k x -> solve_one (idx + k) x) run
        in
        decisions @ go (idx + List.length run) rest
    | i :: rest ->
        (* force the solve before recursing: cons evaluates right to
           left, and solving the tail first would hand preference ties
           to the *last* queued request instead of the first, diverging
           from the serial path's arena state *)
        let d = solve_one idx i in
        d :: go (idx + 1) rest
  in
  go 0 items
