(** The OMOS address-space constraint system (paper §3.5).

    An {!t} (arena) records which intervals of a shared virtual address
    space are occupied by which named object. {!place} honours, in
    priority order: the required no-overlap constraint, reuse of an
    existing placement, the caller's weak preferences, and finally
    first-fit within the default region. *)

(** Raised when a placement cannot fit anywhere in the arena. *)
exception No_space of string

(** A weak placement preference. *)
type pref =
  | At of int  (** exactly this base address *)
  | Near of int  (** as close as possible to this address *)
  | Within of int * int  (** inside [lo, hi) *)
  | Avoid of int * int  (** outside [lo, hi) if possible *)

val pp_pref : Format.formatter -> pref -> unit

type t

(** [create ()] makes an empty arena covering
    [region_lo, region_hi) with [align]-aligned placements (defaults:
    4 KB pages over most of a 31-bit space). *)
val create : ?region_lo:int -> ?region_hi:int -> ?align:int -> unit -> t

(** Occupied intervals, as (lo, hi, owner). *)
val intervals : t -> (int * int * string) list

(** Base alignment of every placement in this arena. *)
val align : t -> int

(** Is [lo, hi) completely unoccupied? *)
val free : t -> lo:int -> hi:int -> bool

(** [reserve t ~lo ~size owner] claims an exact interval;
    [Error owner'] names the conflicting occupant. *)
val reserve : t -> lo:int -> size:int -> string -> (unit, string) result

(** [release t ~lo] frees the interval starting at [lo]. *)
val release : t -> lo:int -> unit

(** Outcome of a placement decision. *)
type decision = {
  base : int;
  reused : bool;  (** an existing placement was kept *)
  satisfied : pref option;  (** which preference was honoured, if any *)
}

(** [place t ~size ~owner ?existing ?prefs ()] chooses a base address.

    [existing] is a previously cached placement of the same object: if
    still available it is reused — the paper's "highly desired"
    constraint that yields physical sharing. [prefs] are
    (priority, preference) pairs, higher priority first; unsatisfiable
    preferences are dropped in order.

    @raise No_space if the arena cannot fit [size] at all. *)
val place :
  t ->
  size:int ->
  owner:string ->
  ?existing:int ->
  ?prefs:(int * pref) list ->
  unit ->
  decision

(** One member of a batched placement request (the [place] arguments,
    reified). *)
type batch_item = {
  bi_size : int;
  bi_owner : string;
  bi_existing : int option;
  bi_prefs : (int * pref) list;
}

(** [place_batch t items] solves a whole queue of placement requests in
    one constraint pass (one ["constraints.place_batch"] span, one
    [constraints.batch_solves] count). Maximal runs of unconstrained
    fresh items are packed as a single DeltaBlue chain
    ({!Db_layout}) into one gap — on a contiguous free region this
    reproduces the first-fit answers serial {!place} calls would give;
    items with reuse candidates or preferences are solved individually,
    in submission order, within the same pass. Decisions come back in
    item order.

    [wrap i item solve] brackets the individual solve of [item] (index
    [i]) — callers hang request attribution and fault-injection hooks
    there. Members of a packed run are solved jointly, so [wrap] does
    not apply to them (they carry no preferences, which is what the
    hooks key on).

    @raise No_space if any item cannot fit. *)
val place_batch :
  t ->
  ?wrap:(int -> batch_item -> (unit -> decision) -> decision) ->
  batch_item list ->
  decision list
