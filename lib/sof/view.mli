(** Views: layered, non-destructive symbol-namespace overlays.

    The paper (§3.3): "OMOS provides a facility that allows many
    different name configurations ("views") to be mapped onto a given
    object file, allowing fast, efficient, incremental modification of
    a symbol namespace."

    A view is a base object file plus an ordered list of namespace
    operations. Nothing is copied until the view is {!materialize}d,
    and even then the section bytes are shared with the base — only the
    symbol table and relocation list are rewritten. *)

(** The primitive namespace operations views are built from. *)
type op =
  | Rename_defs of (string -> string option)
      (** rewrite names of {e definitions}; internal references keep
          the old name and so become external. *)
  | Rename_refs of (string -> string option)
      (** rewrite names of {e references} (relocation symbols and
          explicit undefined entries). *)
  | Localize of (string -> bool)
      (** demote matching exported definitions to [Local]. *)
  | Undefine of (string -> bool)
      (** remove matching definitions; references to them remain and
          become undefined (the paper's "virtualize"). *)
  | Copy_defs of (string -> string option)
      (** duplicate matching definitions under the returned new name. *)

type t = {
  base : Object_file.t;
  ops : op list; (* in application order *)
  mutable cache : Object_file.t option;
}

val of_object : Object_file.t -> t

(** [push v op] layers one more operation on top of [v]. O(1);
    invalidates nothing (views are persistent). *)
val push : t -> op -> t

val base : t -> Object_file.t

(** Number of layered operations. *)
val depth : t -> int

(** [materialize v] flattens the view into a plain object file. Section
    bytes are shared with the base; only the namespace is rewritten.
    The result is cached on the view. *)
val materialize : t -> Object_file.t

(** Process-global count of cache-missing {!materialize} calls — how
    many views have actually been flattened. The lint analyzer's
    "materializes no views" contract is pinned against this. *)
val materializations : unit -> int
