(** Views: layered, non-destructive symbol-namespace overlays.

    The paper (§3.3): "OMOS provides a facility that allows many
    different name configurations ("views") to be mapped onto a given
    object file, allowing fast, efficient, incremental modification of a
    symbol namespace."

    A view is a base object file plus an ordered list of namespace
    operations. Nothing is copied until the view is {!materialize}d, and
    even then the section bytes are shared with the base — only the
    symbol table and relocation list are rewritten. The Jigsaw operators
    in [lib/jigsaw] are built from these primitives. *)

type op =
  | Rename_defs of (string -> string option)
      (** rewrite names of {e definitions}; internal references keep the
          old name and so become external. *)
  | Rename_refs of (string -> string option)
      (** rewrite names of {e references} (relocation symbols and
          explicit undefined entries). *)
  | Localize of (string -> bool)
      (** demote matching exported definitions to [Local]. *)
  | Undefine of (string -> bool)
      (** remove matching definitions; references to them remain and
          become undefined (the paper's "virtualize"). *)
  | Copy_defs of (string -> string option)
      (** duplicate matching definitions under the returned new name. *)

type t = {
  base : Object_file.t;
  ops : op list; (* in application order *)
  mutable cache : Object_file.t option;
}

let of_object (o : Object_file.t) : t = { base = o; ops = []; cache = None }

(** [push v op] layers one more operation on top of [v]. O(1). *)
let push (v : t) (op : op) : t = { v with ops = v.ops @ [ op ]; cache = None }

let base (v : t) = v.base
let depth (v : t) = List.length v.ops

(* Apply one op to the working (symbols, relocs, ctors) triple. *)
let apply_op (symbols, relocs, ctors) (op : op) =
  match op with
  | Rename_defs f ->
      let rename_sym (s : Symbol.t) =
        if Symbol.is_defined s then
          match f s.name with Some n -> { s with Symbol.name = n } | None -> s
        else s
      in
      let rename_ctor c = match f c with Some n -> n | None -> c in
      (List.map rename_sym symbols, relocs, List.map rename_ctor ctors)
  | Rename_refs f ->
      let rename_sym (s : Symbol.t) =
        if s.Symbol.kind = Symbol.Undef then
          match f s.name with Some n -> { s with Symbol.name = n } | None -> s
        else s
      in
      let rename_reloc (r : Reloc.t) =
        match f r.symbol with Some n -> { r with Reloc.symbol = n } | None -> r
      in
      (List.map rename_sym symbols, List.map rename_reloc relocs, ctors)
  | Localize p ->
      let localize (s : Symbol.t) =
        if Symbol.is_defined s && p s.name then { s with Symbol.binding = Symbol.Local }
        else s
      in
      (List.map localize symbols, relocs, ctors)
  | Undefine p ->
      let keep (s : Symbol.t) = not (Symbol.is_defined s && p s.name) in
      (List.filter keep symbols, relocs, List.filter (fun c -> not (p c)) ctors)
  | Copy_defs f ->
      let copies =
        List.filter_map
          (fun (s : Symbol.t) ->
            if Symbol.is_defined s then
              Option.map (fun n -> { s with Symbol.name = n }) (f s.name)
            else None)
          symbols
      in
      (symbols @ copies, relocs, ctors)

(* After all ops: every relocation symbol must have a symbol-table
   entry; undefined entries that duplicate a definition or each other
   are dropped. *)
let normalize (symbols, relocs, ctors) =
  let defined = Hashtbl.create 16 in
  List.iter
    (fun (s : Symbol.t) ->
      if Symbol.is_defined s then Hashtbl.replace defined s.Symbol.name ())
    symbols;
  let undef_seen = Hashtbl.create 16 in
  let keep (s : Symbol.t) =
    if Symbol.is_defined s then true
    else if Hashtbl.mem defined s.Symbol.name || Hashtbl.mem undef_seen s.Symbol.name
    then false
    else (
      Hashtbl.replace undef_seen s.Symbol.name ();
      true)
  in
  let symbols = List.filter keep symbols in
  let missing =
    List.filter_map
      (fun (r : Reloc.t) ->
        if Hashtbl.mem defined r.symbol || Hashtbl.mem undef_seen r.symbol then None
        else (
          Hashtbl.replace undef_seen r.symbol ();
          Some (Symbol.undef r.symbol)))
      relocs
  in
  (symbols @ missing, relocs, ctors)

(* How many views have been flattened since process start. The lint
   analyzer's contract is that it materializes nothing; its tests pin
   this counter across an analysis run. *)
let materialization_count = ref 0

let materializations () = !materialization_count

(** [materialize v] flattens the view into a plain object file. Section
    bytes are shared with the base; only the namespace is rewritten.
    The result is cached on the view. *)
let materialize (v : t) : Object_file.t =
  match v.cache with
  | Some o -> o
  | None ->
      incr materialization_count;
      let start = (v.base.Object_file.symbols, v.base.Object_file.relocs,
                   v.base.Object_file.ctors) in
      let symbols, relocs, ctors =
        normalize (List.fold_left apply_op start v.ops)
      in
      let o = { v.base with Object_file.symbols; relocs; ctors } in
      v.cache <- Some o;
      o
