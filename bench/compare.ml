(* The bench regression gate: compare a fresh BENCH_*.json snapshot
   against a committed baseline and exit non-zero when a simulated cost
   regressed by more than the tolerance.

     compare.exe BASELINE CURRENT

   Only simulated quantities are gated — the "bench.*" gauges
   (simulated seconds of the paper tables) and the sums of the "*.us.*"
   phase histograms (simulated microseconds). Wall-clock numbers vary
   with the host and are reported but never gated. Work counters
   (links, relocations, cache misses) are compared exactly: they are
   deterministic, so any drift is a behaviour change worth a look —
   reported, but only cost regressions fail the gate. *)

let tolerance = 0.20

(* quantities this small are formatting noise, not regressions *)
let abs_floor = 1e-3

let read_json (path : string) : Telemetry.Json.t =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Telemetry.Json.parse s

let fields = function Telemetry.Json.Obj f -> f | _ -> []

let contains ~(sub : string) (s : string) : bool =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n > 0 && go 0

let starts ~(prefix : string) (s : string) : bool =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* (label, value) pairs of the gated simulated costs in a snapshot. *)
let gated_costs (j : Telemetry.Json.t) : (string * float) list =
  let gauges =
    match Telemetry.Json.member "gauges" j with
    | Some g ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Telemetry.Json.Num n when starts ~prefix:"bench." k ->
                Some ("gauge " ^ k, n)
            | _ -> None)
          (fields g)
    | None -> []
  in
  let hists =
    match Telemetry.Json.member "histograms" j with
    | Some h ->
        List.filter_map
          (fun (k, v) ->
            if contains ~sub:".us." k then
              match Telemetry.Json.member "sum" v with
              | Some (Telemetry.Json.Num s) -> Some ("hist " ^ k ^ ".sum", s)
              | _ -> None
            else None)
          (fields h)
    | None -> []
  in
  gauges @ hists

let counters (j : Telemetry.Json.t) : (string * float) list =
  match Telemetry.Json.member "counters" j with
  | Some c ->
      List.filter_map
        (fun (k, v) ->
          match v with Telemetry.Json.Num n -> Some (k, n) | _ -> None)
        (fields c)
  | None -> []

(* Compare one baseline/current snapshot pair; returns the number of
   cost regressions found. *)
let compare_pair (baseline_path : string) (current_path : string) : int =
  let b = read_json baseline_path and c = read_json current_path in
  let cur_costs = gated_costs c in
  let regressions = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun (label, base) ->
      match List.assoc_opt label cur_costs with
      | None -> Printf.printf "MISSING  %-52s (was %.3f)\n" label base
      | Some cur ->
          incr compared;
          let worse =
            cur > (base *. (1.0 +. tolerance)) +. abs_floor
          in
          if worse then begin
            incr regressions;
            Printf.printf "REGRESS  %-52s %12.3f -> %12.3f (+%.0f%%)\n" label
              base cur
              (100.0 *. (cur -. base) /. (if base = 0.0 then 1.0 else base))
          end
          else Printf.printf "ok       %-52s %12.3f -> %12.3f\n" label base cur)
    (gated_costs b);
  (* deterministic work counters: report drift, don't gate on it *)
  let cur_counters = counters c in
  List.iter
    (fun (k, base) ->
      match List.assoc_opt k cur_counters with
      | Some cur when cur <> base ->
          Printf.printf "DRIFT    counter %-44s %12.0f -> %12.0f\n" k base cur
      | _ -> ())
    (counters b);
  Printf.printf "compared %d simulated costs, %d regression(s) beyond %.0f%%\n"
    !compared !regressions (100.0 *. tolerance);
  !regressions

(* Directory mode: every BENCH_*.json in the baseline directory must
   have a fresh counterpart (same file name) in the current directory;
   a missing counterpart fails the gate like a regression. *)
let compare_dirs (baseline_dir : string) (current_dir : string) : int =
  let snapshots =
    Sys.readdir baseline_dir |> Array.to_list
    |> List.filter (fun f ->
           starts ~prefix:"BENCH_" f && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if snapshots = [] then begin
    Printf.eprintf "compare: no BENCH_*.json baselines in %s\n" baseline_dir;
    exit 2
  end;
  List.fold_left
    (fun acc f ->
      let baseline = Filename.concat baseline_dir f in
      let current = Filename.concat current_dir f in
      Printf.printf "== %s\n" f;
      if Sys.file_exists current then acc + compare_pair baseline current
      else begin
        Printf.printf "MISSING  no current snapshot %s\n" current;
        acc + 1
      end)
    0 snapshots

let () =
  match Array.to_list Sys.argv with
  | [ _; baseline_path ] when Sys.is_directory baseline_path ->
      if compare_dirs baseline_path "." > 0 then exit 1
  | [ _; baseline_path; current_path ] when Sys.is_directory baseline_path ->
      if compare_dirs baseline_path current_path > 0 then exit 1
  | [ _; baseline_path; current_path ] ->
      if compare_pair baseline_path current_path > 0 then exit 1
  | _ ->
      prerr_endline
        "usage: compare.exe BASELINE CURRENT\n\
        \       compare.exe BASELINE_DIR [CURRENT_DIR]";
      exit 2
