(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, plus the ablation experiments DESIGN.md calls
   out, plus bechamel micro-benchmarks of the core operations.

   Experiments (ids from DESIGN.md):
     table1       T1a-T1d : Table 1, all four sub-tables
     reorder      E1      : profile-driven reordering speedup
     memory       E2      : dispatch-table memory vs library sharing
     cache        E3      : cold vs warm instantiation
     constraints  E4      : constraint-system conflict resolution
     deltablue    E5      : the DeltaBlue solver workloads
     linktime     E6      : static link time vs OMOS instantiation
     sweep        E7      : OMOS advantage vs program run length
     sharing      E8      : memory vs concurrent clients
     dispatch     E9      : per-call dispatch-table overhead
     relink       E_relink: one-module edit — incremental relink vs from-scratch
     micro                : bechamel micro-benchmarks
     all                  : everything (default)

   Absolute numbers are simulated-clock seconds, not HP9000/730
   seconds; the reproduction targets are the shapes: who wins, by
   roughly what factor, where the crossovers are. Each table prints the
   paper's reported ratio next to the measured one. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* -- timed invocation machinery ------------------------------------------ *)

type row = { label : string; user : float; system : float; elapsed : float }

(* Run [n] invocations, return totals scaled to [paper_iters]
   equivalent (simulated seconds). *)
let time_invocations (w : Omos.World.t) (prog : Omos.Schemes.program)
    ~(args : string list) ~(n : int) ~(paper_iters : int) ~(label : string) : row =
  (* warm: installation-time build + first demand loads *)
  let code, _ = Omos.Schemes.invoke w.Omos.World.rt prog ~args in
  if code <> 0 then failwith (label ^ ": nonzero exit");
  let clock = w.Omos.World.kernel.Simos.Kernel.clock in
  let snap = Simos.Clock.snapshot clock in
  for _ = 1 to n do
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args)
  done;
  let u, s, e = Simos.Clock.since clock snap in
  let scale = float_of_int paper_iters /. float_of_int n /. 1_000_000.0 in
  let r = { label; user = u *. scale; system = s *. scale; elapsed = e *. scale } in
  (* mirror every timed row into the metrics registry so the BENCH_*.json
     snapshots carry the numbers in a stable schema *)
  Telemetry.Gauge.set (Printf.sprintf "bench.%s.user_s" label) r.user;
  Telemetry.Gauge.set (Printf.sprintf "bench.%s.system_s" label) r.system;
  Telemetry.Gauge.set (Printf.sprintf "bench.%s.elapsed_s" label) r.elapsed;
  r

let print_table ~title ~iters (rows : row list) ~(paper_ratios : (string * float) list)
    =
  Printf.printf "\n%s  (simulated; scaled to %d iterations)\n" title iters;
  Printf.printf "  %-28s %9s %9s %9s %7s %12s\n" "" "User" "System" "Elapsed"
    "Ratio" "paper-ratio";
  match rows with
  | [] -> ()
  | base :: _ ->
      List.iter
        (fun r ->
          let ratio = r.elapsed /. base.elapsed in
          let paper =
            match List.assoc_opt r.label paper_ratios with
            | Some p -> Printf.sprintf "%.2f" p
            | None -> "-"
          in
          Printf.printf "  %-28s %9.2f %9.2f %9.2f %7.2f %12s\n" r.label r.user
            r.system r.elapsed ratio paper)
        rows

(* -- T1: Table 1 ----------------------------------------------------------- *)

let table1_hpux () =
  section "Table 1 (HP-UX personality): constraint-based shared library performance";
  let w = Omos.World.create ~personality:Omos.World.Hpux () in
  let client = Omos.World.ls_client w and libs = Omos.World.ls_libs in
  let hp = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let omos =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls" ~client ~libs ()
  in
  (* T1a: ls over a single-entry directory, 1000 iterations *)
  let n = 100 in
  print_table ~title:"Test: ls (single entry)" ~iters:1000
    [
      time_invocations w hp ~args:Omos.World.ls_single_args ~n ~paper_iters:1000
        ~label:"HP-UX Shared Lib";
      time_invocations w omos ~args:Omos.World.ls_single_args ~n ~paper_iters:1000
        ~label:"OMOS bootstrap exec";
    ]
    ~paper_ratios:[ ("OMOS bootstrap exec", 1.007) ];
  (* T1b: ls -laF over the populated directory *)
  let n = 30 in
  print_table ~title:"Test: ls -laF" ~iters:1000
    [
      time_invocations w hp ~args:Omos.World.ls_laf_args ~n ~paper_iters:1000
        ~label:"HP-UX Shared Lib";
      time_invocations w omos ~args:Omos.World.ls_laf_args ~n ~paper_iters:1000
        ~label:"OMOS bootstrap exec";
    ]
    ~paper_ratios:[ ("OMOS bootstrap exec", 0.93) ];
  (* T1c: codegen *)
  let cclient = Omos.World.codegen_client w and clibs = Omos.World.codegen_libs in
  let hp_cg =
    Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"codegen" ~client:cclient
      ~libs:clibs
  in
  let omos_cg =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"codegen"
      ~client:cclient ~libs:clibs ()
  in
  let n = 20 in
  print_table ~title:"Test: codegen" ~iters:1000
    [
      time_invocations w hp_cg ~args:Omos.World.codegen_args ~n ~paper_iters:1000
        ~label:"HP-UX Shared Lib";
      time_invocations w omos_cg ~args:Omos.World.codegen_args ~n ~paper_iters:1000
        ~label:"OMOS bootstrap exec";
    ]
    ~paper_ratios:[ ("OMOS bootstrap exec", 0.82) ]

let table1_osf () =
  section "Table 1 (Mach 3.0 + OSF/1 personality)";
  let w = Omos.World.create ~personality:Omos.World.Mach_osf1 () in
  let client = Omos.World.ls_client w and libs = Omos.World.ls_libs in
  let osf = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let boot =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls" ~client ~libs ()
  in
  let integ =
    Omos.Schemes.self_contained_program w.Omos.World.rt
      ~style:Omos.Schemes.Integrated ~name:"ls" ~client ~libs ()
  in
  let n = 100 in
  print_table ~title:"Test: ls (single entry)" ~iters:300
    [
      time_invocations w osf ~args:Omos.World.ls_single_args ~n ~paper_iters:300
        ~label:"OSF/1 Shared Lib";
      time_invocations w boot ~args:Omos.World.ls_single_args ~n ~paper_iters:300
        ~label:"OMOS bootstrap exec";
      time_invocations w integ ~args:Omos.World.ls_single_args ~n ~paper_iters:300
        ~label:"OMOS integrated exec";
    ]
    ~paper_ratios:[ ("OMOS bootstrap exec", 0.60); ("OMOS integrated exec", 0.44) ]

let table1_386 () =
  section "Mach 3.0 on i386 (paper 8.2: integrated exec 33% faster than native)";
  let w = Omos.World.create ~personality:Omos.World.Mach_386 () in
  let client = Omos.World.ls_client w and libs = Omos.World.ls_libs in
  let native = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let integ =
    Omos.Schemes.self_contained_program w.Omos.World.rt
      ~style:Omos.Schemes.Integrated ~name:"ls" ~client ~libs ()
  in
  let n = 100 in
  print_table ~title:"Test: ls (single entry)" ~iters:300
    [
      time_invocations w native ~args:Omos.World.ls_single_args ~n ~paper_iters:300
        ~label:"native exec";
      time_invocations w integ ~args:Omos.World.ls_single_args ~n ~paper_iters:300
        ~label:"OMOS integrated exec";
    ]
    ~paper_ratios:[ ("OMOS integrated exec", 0.67) ]

let table1 () =
  table1_hpux ();
  table1_osf ();
  table1_386 ()

(* -- E1: reordering ---------------------------------------------------------- *)

(* Build a self-contained ls against a per-function libc with the given
   fragment order, then measure one *cold* invocation: library segments
   demand-loaded from disk, page by page. *)
let cold_ls_elapsed ~(tag : string) (frags : Sof.Object_file.t list) : float * int =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  List.iteri
    (fun i o -> Omos.Server.add_fragment s (Printf.sprintf "/libcS/%s/%d" tag i) o)
    frags;
  let members =
    String.concat " " (List.mapi (fun i _ -> Printf.sprintf "/libcS/%s/%d" tag i) frags)
  in
  Omos.Server.register_meta_source s "/lib/libcS"
    (Printf.sprintf
       "(constraint-list \"T\" 0x100000 \"D\" 0x40200000)\n(merge %s)" members);
  let lib = Omos.Server.build s (Omos.Server.library "/lib/libcS") in
  let clientb =
    Omos.Server.build s
      (Omos.Server.static
         ~externals:[ lib.Omos.Server.entry.Omos.Cache.image ]
         ~name:"ls-cold"
         (Omos.Schemes.graph_of_objs (Omos.World.ls_client w)))
  in
  (* map manually with disk-backed segments: a cold start *)
  let k = w.Omos.World.kernel in
  let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
  let p = Simos.Kernel.create_process k ~args:Omos.World.ls_laf_args in
  Simos.Kernel.map_image k p ~key:("cold-lib-" ^ tag) ~fresh_from_disk:true
    lib.Omos.Server.entry.Omos.Cache.image;
  Simos.Kernel.map_image k p ~key:("cold-client-" ^ tag) ~fresh_from_disk:true
    clientb.Omos.Server.entry.Omos.Cache.image;
  Simos.Kernel.finish_exec k p
    ~entry:clientb.Omos.Server.entry.Omos.Cache.image.Linker.Image.entry;
  let code = Simos.Kernel.run k p () in
  if code <> 0 then failwith "cold ls failed";
  let _, _, e = Simos.Clock.since k.Simos.Kernel.clock snap in
  let lib_pages =
    Simos.Addr_space.touched_pages p.Simos.Proc.aspace
      ~pred:(fun l -> Astring.String.is_prefix ~affix:"cold-lib" l)
      ()
  in
  (e /. 1000.0, lib_pages)

let libc_split_fragments () =
  List.concat_map Workloads.Libc_gen.split_objects Workloads.Libc_gen.section_names

let reorder_trace () : Omos.Monitor.trace =
  (* monitor a run of ls -laF against the monitored libc *)
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let graph =
    Blueprint.Mgraph.Merge
      [
        Omos.Schemes.graph_of_objs (Omos.World.ls_client w);
        Blueprint.Mgraph.parse "(specialize \"monitor\" /lib/libc)";
      ]
  in
  let b = Omos.Server.build s (Omos.Server.static ~name:"ls-mon" graph) in
  let p =
    Omos.Boot.integrated_exec s
      (Omos.Server.loadable_entry [ b ])
      ~args:Omos.World.ls_laf_args
  in
  ignore (Simos.Kernel.run w.Omos.World.kernel p ());
  match Omos.Specializers.last_trace w.Omos.World.specializers with
  | Some t -> t
  | None -> failwith "no trace"

let reorder () =
  section "E1: profile-driven function reordering (paper: >10% average speedup)";
  let frags = libc_split_fragments () in
  let trace = reorder_trace () in
  Printf.printf "monitored ls -laF: %d call events, %d distinct routines\n"
    trace.Omos.Monitor.count
    (List.length (Omos.Monitor.first_call_order trace));
  let by_first = Omos.Reorder.from_trace ~trace frags in
  let by_freq =
    Omos.Reorder.from_trace ~strategy:Omos.Reorder.Call_frequency ~trace frags
  in
  let e_orig, pages_orig = cold_ls_elapsed ~tag:"orig" frags in
  let e_first, pages_first = cold_ls_elapsed ~tag:"first" by_first in
  let e_freq, pages_freq = cold_ls_elapsed ~tag:"freq" by_freq in
  Printf.printf "  %-22s %12s %18s\n" "" "elapsed(ms)" "lib pages touched";
  Printf.printf "  %-22s %12.2f %18d\n" "original order" e_orig pages_orig;
  Printf.printf "  %-22s %12.2f %18d\n" "first-call order" e_first pages_first;
  Printf.printf "  %-22s %12.2f %18d\n" "frequency order" e_freq pages_freq;
  Printf.printf "  cold-start speedup: %.1f%% (first-call), %.1f%% (frequency)\n"
    ((e_orig -. e_first) /. e_orig *. 100.0)
    ((e_orig -. e_freq) /. e_orig *. 100.0);
  Printf.printf "  (paper: >10%% average)\n"

(* -- E_hotspots: layout-locality audit --------------------------------------- *)

let hotspots () =
  section
    "E_hotspots: layout-locality audit on the E1 workload (headroom before vs \
     after reordering)";
  let frags = libc_split_fragments () in
  let trace = reorder_trace () in
  let before = Omos.Hotspots.audit ~key:"/lib/libc" ~trace frags in
  let after =
    Omos.Hotspots.audit ~key:"/lib/libc(reordered)" ~trace
      (Omos.Reorder.from_trace ~trace frags)
  in
  Printf.printf "monitored ls -laF: %d calls across %d of %d routines (%d bytes)\n"
    before.Omos.Hotspots.a_calls before.Omos.Hotspots.a_routines_called
    before.Omos.Hotspots.a_routines_total before.Omos.Hotspots.a_bytes_touched;
  Printf.printf "  %-22s %14s %14s %10s\n" "" "pages actual" "pages optimal" "headroom";
  Printf.printf "  %-22s %14d %14d %10d\n" "original order"
    before.Omos.Hotspots.a_pages_actual before.Omos.Hotspots.a_pages_optimal
    (Omos.Hotspots.headroom before);
  Printf.printf "  %-22s %14d %14d %10d\n" "first-call order"
    after.Omos.Hotspots.a_pages_actual after.Omos.Hotspots.a_pages_optimal
    (Omos.Hotspots.headroom after);
  Telemetry.Gauge.set "bench.hotspots.pages_actual"
    (float_of_int before.Omos.Hotspots.a_pages_actual);
  Telemetry.Gauge.set "bench.hotspots.pages_optimal"
    (float_of_int before.Omos.Hotspots.a_pages_optimal);
  Telemetry.Gauge.set "bench.hotspots.headroom_before_pages"
    (float_of_int (Omos.Hotspots.headroom before));
  Telemetry.Gauge.set "bench.hotspots.headroom_after_pages"
    (float_of_int (Omos.Hotspots.headroom after))

(* -- E2: dispatch-table memory --------------------------------------------------- *)

let memory () =
  section "E2: dispatch-table memory vs library-code savings (Kohl/Paxson claim)";
  let w = Omos.World.create () in
  let client = Omos.World.ls_client w and libs = Omos.World.ls_libs in
  let stat = Omos.Schemes.static_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let dyn = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let sc =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls" ~client ~libs ()
  in
  let exe_bytes scheme =
    let path = Printf.sprintf "/bin/ls.%s" scheme in
    Simos.Fs.disk_usage w.Omos.World.kernel.Simos.Kernel.fs path
  in
  let static_size = exe_bytes "static" in
  let dynamic_size = exe_bytes "dynamic" in
  let client_only =
    List.fold_left (fun a (o : Sof.Object_file.t) -> a + Sof.Object_file.total_size o) 0 client
  in
  let lib_in_static = static_size - dynamic_size in
  Printf.printf "  static ls binary:              %6d bytes\n" static_size;
  Printf.printf "  dynamic ls binary:             %6d bytes\n" dynamic_size;
  Printf.printf "  client objects alone:          %6d bytes\n" client_only;
  Printf.printf "  library code pulled statically:%6d bytes (approx)\n" lib_in_static;
  Printf.printf "  dynamic dispatch machinery:    %6d bytes/process (%d imports)\n"
    dyn.Omos.Schemes.dispatch_bytes dyn.Omos.Schemes.imports;
  Printf.printf "  self-contained dispatch:       %6d bytes/process\n"
    sc.Omos.Schemes.dispatch_bytes;
  (* per-process memory: two concurrent instances of each *)
  let p1 = stat.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  let p2 = stat.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  let static_resident = Simos.Phys.resident_pages w.Omos.World.kernel.Simos.Kernel.phys in
  ignore (Simos.Kernel.run w.Omos.World.kernel p1 ());
  ignore (Simos.Kernel.run w.Omos.World.kernel p2 ());
  Simos.Kernel.reap w.Omos.World.kernel p1;
  Simos.Kernel.reap w.Omos.World.kernel p2;
  let q1 = sc.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  let q2 = sc.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  let shared_resident = Simos.Phys.resident_pages w.Omos.World.kernel.Simos.Kernel.phys in
  let saved = Simos.Phys.saved_pages w.Omos.World.kernel.Simos.Kernel.phys in
  ignore (Simos.Kernel.run w.Omos.World.kernel q1 ());
  ignore (Simos.Kernel.run w.Omos.World.kernel q2 ());
  Simos.Kernel.reap w.Omos.World.kernel q1;
  Simos.Kernel.reap w.Omos.World.kernel q2;
  Printf.printf "  2x static ls resident:         %6d pages (no sharing)\n" static_resident;
  Printf.printf "  2x shared-lib ls resident:     %6d pages (%d saved by sharing)\n"
    shared_resident saved;
  (* the Kohl/Paxson accounting: a SunOS-style implementation keeps
     per-process dispatch tables covering EVERY library export, while
     the memory a static link would have spent is only the code ls
     actually uses (fine-grained archive pull) *)
  let split_members =
    List.concat_map Workloads.Libc_gen.split_objects Workloads.Libc_gen.section_names
  in
  let fine_pull =
    Linker.Archive.select ~roots:client ~available:split_members
  in
  let fine_bytes =
    List.fold_left (fun a (o : Sof.Object_file.t) -> a + Sof.Object_file.total_size o) 0 fine_pull
  in
  let libc_exports =
    List.length
      (List.concat_map
         (fun (o : Sof.Object_file.t) ->
           List.filter (fun (s : Sof.Symbol.t) -> s.Sof.Symbol.kind = Sof.Symbol.Text)
             (Sof.Object_file.exported o))
         (List.map snd (Workloads.Libc_gen.objects ())))
  in
  let sunos_tables = Omos.Stubs.dispatch_bytes libc_exports in
  Printf.printf "\n  Kohl/Paxson accounting (SunOS-style whole-library tables):\n";
  Printf.printf "  libc code ls actually uses (fine archive pull): %6d bytes (%d members)\n"
    fine_bytes (List.length fine_pull);
  Printf.printf "  per-process tables covering all %d libc exports: %6d bytes\n"
    libc_exports sunos_tables;
  Printf.printf "  -> dispatch tables %s the library code saved  (paper: \"more memory\n"
    (if sunos_tables > fine_bytes then "EXCEED" else "are below");
  Printf.printf "     is used for dispatch tables than is saved in library code\")\n";
  ignore lib_in_static

(* -- E3: caching ---------------------------------------------------------------- *)

let cache () =
  section "E3: image cache — cold vs warm instantiation";
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let k = w.Omos.World.kernel in
  let time f =
    let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
    let r = f () in
    let _, _, e = Simos.Clock.since k.Simos.Kernel.clock snap in
    (r, e /. 1000.0)
  in
  let _, cold = time (fun () -> Omos.Server.build s (Omos.Server.library "/lib/libc")) in
  let _, warm = time (fun () -> Omos.Server.build s (Omos.Server.library "/lib/libc")) in
  Printf.printf "  libc instantiation, cold (evaluate+link+place): %8.2f ms\n" cold;
  Printf.printf "  libc instantiation, warm (cache hit):           %8.2f ms\n" warm;
  Printf.printf "  speedup: %.0fx\n" (cold /. (warm +. 0.0001));
  let st = Omos.Server.cache_stats s in
  Printf.printf "  cache: %d hits, %d misses, %d entries, %d KB on disk\n"
    st.Omos.Cache.hits st.Omos.Cache.misses st.Omos.Cache.entries
    (st.Omos.Cache.disk_bytes_total / 1024);
  let prog =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs ()
  in
  let _, first =
    time (fun () -> Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args)
  in
  let _, second =
    time (fun () -> Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args)
  in
  Printf.printf "  ls first invocation:  %8.2f ms (demand loads)\n" first;
  Printf.printf "  ls steady state:      %8.2f ms\n" second;
  (* eviction round trip: trim everything, rebuild, and verify the
     cache and the arenas stayed coherent throughout *)
  let evicted = Omos.Server.evict_to_budget s ~bytes:0 in
  let _, rebuild = time (fun () -> Omos.Server.build s (Omos.Server.library "/lib/libc")) in
  Printf.printf "  evicted %d entries; rebuild after eviction:     %8.2f ms\n"
    evicted rebuild;
  let viols = Omos.Residency.check_invariants (Omos.Server.residency s) in
  Printf.printf
    "  residency: %d placed, %d evicted, %d checks, %d violations (%d here)\n"
    (Telemetry.Counter.get "residency.placed")
    (Telemetry.Counter.get "residency.evicted")
    (Telemetry.Counter.get "residency.invariant_checks")
    (Telemetry.Counter.get "residency.invariant_violations")
    (List.length viols)

(* -- E4: constraint system ---------------------------------------------------------- *)

let constraints () =
  section "E4: constraint-system behaviour under address conflicts";
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  (* all aux libraries want the same preferred base: only one can win;
     the others get alternates — and every placement is reused on
     re-instantiation *)
  let libs = Workloads.Codegen_gen.libraries () in
  List.iter
    (fun (path, _) ->
      Omos.Server.register_meta_source s (path ^ "-greedy")
        (Printf.sprintf
           "(constraint-list \"T\" 0x100000 \"D\" 0x40200000)\n(merge %s.o)" path))
    libs;
  let placements =
    List.map
      (fun (path, _) ->
        let b = Omos.Server.build s (Omos.Server.library (path ^ "-greedy")) in
        (path, b.Omos.Server.entry.Omos.Cache.text_base))
      libs
  in
  let preferred =
    List.length (List.filter (fun (_, base) -> base = 0x100000) placements)
  in
  List.iter
    (fun (path, base) -> Printf.printf "  %-14s text at 0x%08x\n" path base)
    placements;
  Printf.printf "  preferred base won by: %d of %d (others placed nearby)\n" preferred
    (List.length placements);
  let again =
    List.map
      (fun (path, _) ->
        let b = Omos.Server.build s (Omos.Server.library (path ^ "-greedy")) in
        b.Omos.Server.entry.Omos.Cache.text_base)
      libs
  in
  let stable = List.for_all2 (fun (_, a) b -> a = b) placements again in
  Printf.printf "  placements stable across re-instantiation: %b\n" stable;
  let st = Omos.Server.cache_stats s in
  Printf.printf "  placements per construction (max): %d (paper: few versions is key)\n"
    st.Omos.Cache.versions_max

(* -- E5: DeltaBlue -------------------------------------------------------------------- *)

let deltablue () =
  section "E5: DeltaBlue incremental constraint solver (paper: future-work port)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  List.iter
    (fun n ->
      let v, ms = time (fun () -> Constraints.Deltablue.chain_test n) in
      assert (v = 100);
      Printf.printf "  chain test      n=%6d: %8.2f ms\n" n ms)
    [ 100; 1000; 10000 ];
  List.iter
    (fun n ->
      let ok, ms = time (fun () -> Constraints.Deltablue.projection_test n) in
      assert ok;
      Printf.printf "  projection test n=%6d: %8.2f ms\n" n ms)
    [ 100; 1000; 10000 ]

(* -- E6: link time ----------------------------------------------------------------------- *)

let linktime () =
  section "E6: static link time vs OMOS instantiation (development-cycle cost)";
  let time_world f =
    let w = Omos.World.create () in
    let k = w.Omos.World.kernel in
    let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
    f w;
    let _, _, e = Simos.Clock.since k.Simos.Kernel.clock snap in
    e /. 1000.0
  in
  let t_static =
    time_world (fun w ->
        ignore
          (Omos.Schemes.static_program w.Omos.World.rt ~name:"codegen"
             ~client:(Omos.World.codegen_client w) ~libs:Omos.World.codegen_libs))
  in
  let t_omos =
    time_world (fun w ->
        ignore
          (Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"codegen"
             ~client:(Omos.World.codegen_client w) ~libs:Omos.World.codegen_libs ()))
  in
  Printf.printf "  static link + write of codegen:       %8.2f ms\n" t_static;
  Printf.printf "  OMOS instantiate (no binary written): %8.2f ms\n" t_omos;
  Printf.printf "  (the paper: most static-link cost is writing the huge binary;\n";
  Printf.printf "   OMOS keeps the image in its cache instead)\n"

(* -- E7: run-length crossover -------------------------------------------------- *)

(* "On longer-running programs, the proportional speedup using OMOS
   would tend to be less, because in the traditional design, the
   majority of the relocations are presumably performed at startup."
   Sweep the program's run length and watch the ratio approach 1. *)
let sweep () =
  section "E7: OMOS advantage vs program run length (paper \u{00a7}8.2 prose)";
  Printf.printf "  %-14s %14s %14s %8s\n" "work (loops)" "dynamic (ms)" "omos (ms)" "ratio";
  List.iter
    (fun loops ->
      let w = Omos.World.create () in
      let src =
        Printf.sprintf
          "int main() { int i; int a; a = 1; i = %d * 1000; \
           while (i > 0) { a = (a * 3 + i) & 0xFFFF; i = i - 1; } \
           putint(a & 7); return 0; }"
          loops
      in
      let client =
        [ Workloads.Crt0.obj (); Minic.Driver.compile ~name:"/obj/spin.o" src ]
      in
      let name = Printf.sprintf "spin%d" loops in
      let dyn =
        Omos.Schemes.dynamic_program w.Omos.World.rt ~name ~client ~libs:[ "/lib/libc" ]
      in
      let sc =
        Omos.Schemes.self_contained_program w.Omos.World.rt ~name ~client
          ~libs:[ "/lib/libc" ] ()
      in
      let time prog =
        ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:[ name ]);
        let snap = Simos.Clock.snapshot w.Omos.World.kernel.Simos.Kernel.clock in
        for _ = 1 to 3 do
          ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:[ name ])
        done;
        let _, _, e = Simos.Clock.since w.Omos.World.kernel.Simos.Kernel.clock snap in
        e /. 3.0 /. 1000.0
      in
      let td = time dyn and ts = time sc in
      Printf.printf "  %-14d %14.2f %14.2f %8.2f\n" loops td ts (ts /. td))
    [ 1; 10; 50; 200; 800 ];
  Printf.printf "  (ratio -> 1.0 as the fixed per-invocation loading gap is amortized)\n"

(* -- E8: sharing at multi-user scale --------------------------------------------- *)

(* "the memory savings from shared libraries are probably more
   significant in a multi-user time-shared system than in the dedicated
   workstation environment" — run N concurrent clients and report
   resident memory under static vs shared schemes. *)
let sharing () =
  section "E8: physical memory vs concurrent clients (multi-user claim, \u{00a7}2.1)";
  (* N *different* programs, as on a real time-shared machine: under
     static linking each binary embeds its own copy of the libc members
     it uses; under shared libraries they all map the one cached libc *)
  let distinct_client i =
    let src =
      Printf.sprintf
        "int main() { int b; b = malloc(32); strcpy(b, \"p%d \"); putstr(b); \
         putint(strlen(b) + atoi(\"%d\") + imax(%d, 2)); putstr(\"\\n\"); return 0; }"
        i i i
    in
    [ Workloads.Crt0.obj ();
      Minic.Driver.compile ~name:(Printf.sprintf "/obj/user%d.o" i) src ]
  in
  Printf.printf "  %-6s %18s %18s %12s\n" "procs" "static (pages)" "shared (pages)" "saved";
  List.iter
    (fun n ->
      let measure scheme_of =
        let w = Omos.World.create () in
        let procs =
          List.init n (fun i ->
              let prog = scheme_of w i (distinct_client i) in
              prog.Omos.Schemes.launch ~args:[ Printf.sprintf "user%d" i ])
        in
        let resident = Simos.Phys.resident_pages w.Omos.World.kernel.Simos.Kernel.phys in
        let saved = Simos.Phys.saved_pages w.Omos.World.kernel.Simos.Kernel.phys in
        List.iter (fun p -> ignore (Simos.Kernel.run w.Omos.World.kernel p ())) procs;
        (resident, saved)
      in
      let static_resident, _ =
        measure (fun w i client ->
            Omos.Schemes.static_program w.Omos.World.rt
              ~name:(Printf.sprintf "user%d" i) ~client ~libs:Omos.World.ls_libs)
      in
      let shared_resident, saved =
        measure (fun w i client ->
            Omos.Schemes.self_contained_program w.Omos.World.rt
              ~name:(Printf.sprintf "user%d" i) ~client ~libs:Omos.World.ls_libs ())
      in
      Printf.printf "  %-6d %18d %18d %12d\n" n static_resident shared_resident saved)
    [ 1; 2; 4; 8; 16 ];
  Printf.printf
    "  (each static binary embeds its own libc members; the shared library\n\
    \   is resident once for everyone — the multi-user savings the paper\n\
    \   says motivated shared libraries originally)\n"

(* -- E9: dispatch indirection overhead -------------------------------------------- *)

(* self-contained libraries "can use absolute addressing modes", no
   branch-table hop per call. Measure steady-state user time of a
   call-heavy program under both schemes; the difference is pure
   dispatch overhead. *)
let dispatch () =
  section "E9: per-call dispatch overhead (absolute addressing vs branch table)";
  let w = Omos.World.create () in
  let src =
    "int main() { int i; int a; a = 0; i = 20000; \
     while (i > 0) { a = a + imax(i, 3); i = i - 1; } \
     putint(a & 15); return 0; }"
  in
  let client = [ Workloads.Crt0.obj (); Minic.Driver.compile ~name:"/obj/calls.o" src ] in
  let dyn =
    Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"calls" ~client ~libs:[ "/lib/libc" ]
  in
  let sc =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"calls" ~client
      ~libs:[ "/lib/libc" ] ()
  in
  let user prog =
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:[ "calls" ]);
    let snap = Simos.Clock.snapshot w.Omos.World.kernel.Simos.Kernel.clock in
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args:[ "calls" ]);
    let u, _, _ = Simos.Clock.since w.Omos.World.kernel.Simos.Kernel.clock snap in
    u /. 1000.0
  in
  let ud = user dyn and us = user sc in
  Printf.printf "  20k library calls, dynamic scheme user time:        %8.2f ms\n" ud;
  Printf.printf "  20k library calls, self-contained user time:        %8.2f ms\n" us;
  Printf.printf "  dispatch overhead: %.2f ms (%.1f%%), %d instructions per call\n"
    (ud -. us)
    ((ud -. us) /. us *. 100.0)
    Omos.Stubs.bound_path_instrs

(* -- E10: staged pipeline --------------------------------------------------- *)

(* Multi-client instantiation through the staged submit/await pipeline:
   throughput and p95 latency as the in-flight depth grows, batched
   placement (one constraint pass per flush) against per-request
   placement. The win is the amortized solver pass: N queued misses
   cost one place_solve instead of N. *)
let pipeline () =
  section "E10: staged pipeline — depth and batched placement";
  let metas =
    [ "/lib/libm"; "/lib/libl"; "/lib/libC"; "/lib/libal1"; "/lib/libal2" ]
  in
  let rounds = 4 in
  let p95 xs =
    match List.sort compare xs with
    | [] -> 0.0
    | sorted ->
        let n = List.length sorted in
        let rank = max 0 (int_of_float (ceil (0.95 *. float_of_int n)) - 1) in
        List.nth sorted rank
  in
  let run_config ~depth ~batched =
    let w = Omos.World.create () in
    let s = w.Omos.World.server in
    let k = w.Omos.World.kernel in
    Omos.Server.set_batch_placement s batched;
    Omos.Server.set_queue_limit s (max 64 depth);
    let lats = ref [] in
    let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
    (* each round: evict everything, then re-instantiate every library
       with [depth] requests in flight — every round is all misses, so
       every round exercises the place boundary *)
    for _ = 1 to rounds do
      ignore (Omos.Server.evict_to_budget s ~bytes:0);
      let pending = ref [] in
      let flush () =
        Omos.Server.drain s;
        List.iter
          (fun tk ->
            let r = Omos.Server.await s tk in
            lats := r.Omos.Server.sim_us :: !lats)
          (List.rev !pending);
        pending := []
      in
      List.iter
        (fun m ->
          pending := Omos.Server.submit s (Omos.Server.library m) :: !pending;
          if List.length !pending >= depth then flush ())
        metas;
      flush ()
    done;
    let _, _, elapsed = Simos.Clock.since k.Simos.Kernel.clock snap in
    (elapsed /. 1000.0, p95 !lats)
  in
  Printf.printf "  %d libraries x %d all-miss rounds\n\n" (List.length metas) rounds;
  Printf.printf "  %-28s %12s %10s\n" "" "elapsed_ms" "p95_us";
  List.iter
    (fun depth ->
      List.iter
        (fun batched ->
          let elapsed_ms, p95_us = run_config ~depth ~batched in
          let label =
            Printf.sprintf "pipeline.d%d.%s" depth
              (if batched then "batched" else "perreq")
          in
          Telemetry.Gauge.set (Printf.sprintf "bench.%s.elapsed_ms" label) elapsed_ms;
          Telemetry.Gauge.set (Printf.sprintf "bench.%s.p95_us" label) p95_us;
          Printf.printf "  %-28s %12.2f %10.1f\n"
            (Printf.sprintf "depth %2d, %s" depth
               (if batched then "batched place" else "per-request place"))
            elapsed_ms p95_us)
        [ false; true ])
    [ 1; 4; 16 ];
  (* the headline claim: at depth >= 4, one batched pass beats
     per-request solves on total simulated time *)
  let base_ms, _ = run_config ~depth:4 ~batched:false in
  let batch_ms, _ = run_config ~depth:4 ~batched:true in
  Printf.printf "\n  depth 4: batched %.2f ms vs per-request %.2f ms -> %s\n"
    batch_ms base_ms
    (if batch_ms < base_ms then "batching wins" else "NO WIN (regression?)")

(* -- E_blame: causal blame + what-if accuracy ---------------------------------------------- *)

let blame () =
  section "E_blame: causal critical-path blame and what-if replay accuracy";
  let metas =
    [ "/lib/libm"; "/lib/libl"; "/lib/libC"; "/lib/libal1"; "/lib/libal2" ]
  in
  let rounds = 4 in
  (* the E_pipeline depth-16 scenario: every round evicts everything
     and pushes all libraries through the pipeline with the whole round
     in flight, so every round is all-miss and crosses the place
     boundary as one batch *)
  let run_config ~batched ~causal =
    let w = Omos.World.create () in
    let s = w.Omos.World.server in
    let k = w.Omos.World.kernel in
    Omos.Server.set_batch_placement s batched;
    Omos.Server.set_queue_limit s 64;
    Telemetry.Causal.set_enabled causal;
    let total = ref 0.0 in
    let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
    for _ = 1 to rounds do
      ignore (Omos.Server.evict_to_budget s ~bytes:0);
      let pending =
        List.map (fun m -> Omos.Server.submit s (Omos.Server.library m)) metas
      in
      Omos.Server.drain s;
      List.iter
        (fun tk ->
          let r = Omos.Server.await s tk in
          total := !total +. r.Omos.Server.sim_us)
        pending
    done;
    let _, _, elapsed = Simos.Clock.since k.Simos.Kernel.clock snap in
    Telemetry.Causal.set_enabled false;
    (elapsed, !total)
  in
  (* recording overhead on the simulated clock must be exactly zero:
     the causal graph is bookkeeping, not charged work *)
  let elapsed_off, _ = run_config ~batched:true ~causal:false in
  Telemetry.Causal.reset_state ();
  let elapsed_on, recorded_total = run_config ~batched:true ~causal:true in
  let ps = Omos.Blame.paths (Telemetry.Causal.requests ()) in
  Telemetry.Causal.reset_state ();
  let prof = Omos.Blame.profile ps in
  let wait_frac =
    if prof.Omos.Blame.bp_total_sim_us > 0.0 then
      prof.Omos.Blame.bp_wait_us /. prof.Omos.Blame.bp_total_sim_us
    else 0.0
  in
  let wi = Omos.Blame.what_if ~knob:Omos.Blame.Batch_off ps in
  let _, actual_total = run_config ~batched:false ~causal:false in
  let err_pct =
    if actual_total > 0.0 then
      100.0
      *. Float.abs (wi.Omos.Blame.wi_predicted_us -. actual_total)
      /. actual_total
    else 0.0
  in
  (* the acceptance bound: within 5%; the gauge gates only the excess
     over it so the committed baseline is a stable 0 *)
  let excess = Float.max 0.0 (err_pct -. 5.0) in
  let overhead_us = Float.abs (elapsed_on -. elapsed_off) in
  Telemetry.Gauge.set "bench.blame.recorded_total_ms" (recorded_total /. 1000.0);
  Telemetry.Gauge.set "bench.blame.predicted_batch_off_ms"
    (wi.Omos.Blame.wi_predicted_us /. 1000.0);
  Telemetry.Gauge.set "bench.blame.actual_batch_off_ms" (actual_total /. 1000.0);
  Telemetry.Gauge.set "bench.blame.whatif_err_pct" err_pct;
  Telemetry.Gauge.set "bench.blame.whatif_excess_err_pct" excess;
  Telemetry.Gauge.set "bench.blame.wait_frac" wait_frac;
  Telemetry.Gauge.set "bench.blame.sim_overhead_us" overhead_us;
  Printf.printf "  %d libraries x %d all-miss rounds, depth 16 (batched)\n\n"
    (List.length metas) rounds;
  Printf.printf "  recorded (batched)            %12.2f ms  wait_frac %.3f\n"
    (recorded_total /. 1000.0) wait_frac;
  Printf.printf "  what-if batch=off (predicted) %12.2f ms\n"
    (wi.Omos.Blame.wi_predicted_us /. 1000.0);
  Printf.printf "  actual batch=off run          %12.2f ms\n"
    (actual_total /. 1000.0);
  Printf.printf "  prediction error              %12.2f %%  (bound 5%%)\n" err_pct;
  Printf.printf "  causal recording overhead     %12.2f us simulated\n" overhead_us;
  if err_pct > 5.0 then
    Printf.printf "  WHAT-IF PREDICTION OUT OF BOUNDS (>5%%)\n"

(* -- E_relink: incremental relinking ------------------------------------------------------- *)

(* One-module edit to a ~1000-module library: the dependence analyzer
   proves every subtree off the edit's root-path reusable, so the
   rebuild respins only the spine — O(depth), not O(library). *)
let relink () =
  section "E_relink: one-module edit to a 1000-module library";
  let n_modules = 1000 in
  let frag_path i = Printf.sprintf "/relink/m%d.o" i in
  (* a fanout-4 merge tree over the module leaves, as blueprint source *)
  let rec merge_tree (leaves : string list) : string =
    match leaves with
    | [ one ] -> one
    | _ ->
        let rec chunk acc cur n = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | x :: rest ->
              if n = 4 then chunk (List.rev cur :: acc) [ x ] 1 rest
              else chunk acc (x :: cur) (n + 1) rest
        in
        merge_tree
          (List.map
             (fun group -> "(merge " ^ String.concat " " group ^ ")")
             (chunk [] [] 0 leaves))
  in
  let setup () =
    let w = Omos.World.create () in
    let s = w.Omos.World.server in
    (* each module calls the next (an unresolved reference a merge up
       the tree binds), so every link performs real relocation work *)
    for i = 0 to n_modules - 1 do
      let src =
        if i = n_modules - 1 then
          Printf.sprintf "int relink_fn_%d(int x) { return x + %d; }\n" i i
        else
          Printf.sprintf "int relink_fn_%d(int x) { return relink_fn_%d(x) + %d; }\n"
            i (i + 1) i
      in
      Omos.Server.add_fragment s (frag_path i)
        (Minic.Driver.compile ~name:(frag_path i) src)
    done;
    let leaves = List.init n_modules frag_path in
    Omos.Server.register_meta_source s "/relink/lib" (merge_tree leaves);
    w
  in
  (* the simulated clock only charges link-stage work, which the edited
     root image needs in full either way; what incremental relinking
     saves is host-side evaluation (subtree materialization), so this
     experiment times the wall clock *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let w = setup () in
  let s = w.Omos.World.server in
  let _, cold_ms =
    time (fun () -> Omos.Server.build s (Omos.Server.library "/relink/lib"))
  in
  (* the edit: one module's body changes; its fragment is bound at a
     new path and the meta-object re-registered with that one leaf
     swapped — everything else is textually identical *)
  let edited = "int relink_fn_5(int x) { return relink_fn_6(x) + 100005; }\n" in
  Omos.Server.add_fragment s "/relink/m5v2.o"
    (Minic.Driver.compile ~name:"/relink/m5v2.o" edited);
  let leaves' =
    List.init n_modules (fun i -> if i = 5 then "/relink/m5v2.o" else frag_path i)
  in
  let reused0 = Telemetry.Counter.get "impact.reused" in
  let respun0 = Telemetry.Counter.get "impact.respun" in
  Omos.Server.register_meta_source s "/relink/lib" (merge_tree leaves');
  let d =
    match Omos.Server.impact_diff s "/relink/lib" with
    | Some d -> d
    | None -> failwith "relink: re-registration recorded no impact diff"
  in
  let _, incr_ms =
    time (fun () -> Omos.Server.build s (Omos.Server.library "/relink/lib"))
  in
  let reused = Telemetry.Counter.get "impact.reused" - reused0 in
  let respun = Telemetry.Counter.get "impact.respun" - respun0 in
  let spine = List.length d.Analysis.Impact.d_spine in
  (* from-scratch control: same edited graph, memo table disabled and
     the cache (images + memos) dropped first *)
  ignore (Omos.Server.evict_to_budget s ~bytes:0);
  Omos.Server.set_subtree_reuse s false;
  let _, scratch_ms =
    time (fun () -> Omos.Server.build s (Omos.Server.library "/relink/lib"))
  in
  Omos.Server.set_subtree_reuse s true;
  let nodes =
    let n = ref 0 in
    (match Omos.Server.impact_tree s "/relink/lib" with
    | Some t -> Analysis.Impact.iter_infos (fun _ -> incr n) t
    | None -> ());
    !n
  in
  Printf.printf "  library: %d modules, %d analyzed nodes (fanout-4 merge tree)\n"
    n_modules nodes;
  Printf.printf "  cold build:                    %10.2f ms\n" cold_ms;
  Printf.printf "  one-module edit, incremental:  %10.2f ms\n" incr_ms;
  Printf.printf "  one-module edit, from scratch: %10.2f ms\n" scratch_ms;
  Printf.printf "  verdicts: %d reused, %d respun (spine %d of %d nodes)\n"
    d.Analysis.Impact.d_reused d.Analysis.Impact.d_respun spine nodes;
  Printf.printf "  rebuild counters: impact.reused +%d, impact.respun +%d\n"
    reused respun;
  Printf.printf "  respins bounded by the spine: %s (%d <= %d)\n"
    (if respun <= spine then "yes" else "NO (O(world) respin - regression?)")
    respun spine;
  Telemetry.Gauge.set "bench.relink.modules" (float_of_int n_modules);
  Telemetry.Gauge.set "bench.relink.nodes" (float_of_int nodes);
  Telemetry.Gauge.set "bench.relink.spine" (float_of_int spine);
  Telemetry.Gauge.set "bench.relink.reused" (float_of_int reused);
  Telemetry.Gauge.set "bench.relink.respun" (float_of_int respun);
  (* wall-clock numbers are host-dependent: keep them out of the gated
     bench.* namespace (compare reports only simulated costs) *)
  Telemetry.Gauge.set "relink.wall.cold_ms" cold_ms;
  Telemetry.Gauge.set "relink.wall.incr_ms" incr_ms;
  Telemetry.Gauge.set "relink.wall.scratch_ms" scratch_ms

(* -- micro benchmarks (bechamel) ----------------------------------------------------------- *)

let micro () =
  section "bechamel micro-benchmarks (real wall-clock, not simulated)";
  let open Bechamel in
  let libc = lazy (List.map snd (Workloads.Libc_gen.objects ())) in
  let ls_objs = lazy (Omos.World.ls_client (Omos.World.create ())) in
  let tests =
    [
      Test.make ~name:"view: rename layer + materialize"
        (Staged.stage (fun () ->
             let o = List.hd (Lazy.force libc) in
             let v =
               Sof.View.push (Sof.View.of_object o)
                 (Sof.View.Rename_defs (fun n -> Some ("x" ^ n)))
             in
             ignore (Sof.View.materialize v)));
      Test.make ~name:"link: ls client against libc"
        (Staged.stage (fun () ->
             ignore
               (Linker.Link.link
                  ~layout:{ Linker.Link.text_base = 0x10000; data_base = 0x40000000 }
                  (Lazy.force ls_objs @ Lazy.force libc))));
      Test.make ~name:"combine: libc partial link"
        (Staged.stage (fun () ->
             ignore (Linker.Link.combine ~name:"libc.o" (Lazy.force libc))));
      Test.make ~name:"blueprint: parse figure 2"
        (Staged.stage (fun () ->
             ignore
               (Blueprint.Mgraph.parse
                  "(hide \"^REAL$\" (merge (restrict \"^m$\" (copy_as \"^m$\" \
                   \"REAL\" (merge /a /b))) /c))")));
      Test.make ~name:"codec: libc section encode+decode"
        (Staged.stage (fun () ->
             let o = List.hd (Lazy.force libc) in
             ignore (Sof.Codec.decode (Sof.Codec.encode o))));
      Test.make ~name:"stubs: 64-entry PLT generation"
        (Staged.stage (fun () ->
             ignore
               (Omos.Stubs.plt_object
                  (List.init 64 (fun i -> Omos.Stubs.import_of_name (Printf.sprintf "f%d" i))))));
      Test.make ~name:"deltablue: chain n=100"
        (Staged.stage (fun () -> ignore (Constraints.Deltablue.chain_test 100)));
      Test.make ~name:"svm: 10k-instruction loop"
        (Staged.stage
           (let mem, buf = Svm.Cpu.flat_mem 0x1000 in
            let code =
              Svm.Encode.assemble
                [
                  Svm.Isa.Movi (1, 2500l);
                  Svm.Isa.Movi (2, 1l);
                  Svm.Isa.Sub (1, 1, 2);
                  Svm.Isa.Jnz (1, -16l);
                  Svm.Isa.Halt;
                ]
            in
            Bytes.blit code 0 buf 0 (Bytes.length code);
            fun () ->
              let cpu = Svm.Cpu.create mem in
              ignore (Svm.Cpu.run ~fuel:100_000 cpu)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let grouped = Test.make_grouped ~name:"omos" tests in
  let results = benchmark grouped in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    results

(* -- driver ------------------------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: bench/main.exe \
     [table1|reorder|hotspots|memory|cache|constraints|deltablue|linktime|sweep|sharing|dispatch|pipeline|blame|relink|micro|all]"

let () =
  let experiments =
    [
      ("table1", table1);
      ("reorder", reorder);
      ("hotspots", hotspots);
      ("memory", memory);
      ("cache", cache);
      ("constraints", constraints);
      ("deltablue", deltablue);
      ("linktime", linktime);
      ("sweep", sweep);
      ("sharing", sharing);
      ("dispatch", dispatch);
      ("pipeline", pipeline);
      ("blame", blame);
      ("relink", relink);
      ("micro", micro);
    ]
  in
  (* Each experiment runs against a zeroed registry and leaves a
     BENCH_<name>.json snapshot (schema omos.metrics/1): the counters
     the run accumulated plus the gauges the tables record. *)
  let run_one (name, f) =
    Telemetry.reset ();
    (* journal every build so the snapshot can carry construction
       digests; journaling charges nothing to the simulated clock, so
       the measured numbers are unchanged *)
    Telemetry.Provenance.set_enabled true;
    f ();
    Telemetry.Provenance.set_enabled false;
    (* fold the provenance digests of everything built during the run
       into the snapshot, next to (not inside) the omos.metrics/1
       registry dump *)
    let metrics = Telemetry.Json.parse (Telemetry.Export.metrics_json ()) in
    let snapshot =
      match metrics with
      | Telemetry.Json.Obj fields ->
          Telemetry.Json.Obj
            (fields
            @ [
                ( "provenance",
                  Telemetry.Json.Obj
                    (List.map
                       (fun (owner, digest) -> (owner, Telemetry.Json.Str digest))
                       (Telemetry.Provenance.built_digests ())) );
              ])
      | other -> other
    in
    let oc = open_out (Printf.sprintf "BENCH_%s.json" name) in
    output_string oc (Telemetry.Json.to_string snapshot);
    output_string oc "\n";
    close_out oc
  in
  let run_all () = List.iter run_one experiments in
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | [ _; name ] -> (
      match List.assoc_opt name experiments with
      | Some f -> run_one (name, f)
      | None -> usage ())
  | _ -> usage ()
