(* omos_demo — run the paper's workloads on the simulated machine under
   any shared-library scheme.

     omos_demo run  --scheme dynamic ls -laF /data/many
     omos_demo run  --scheme omos --personality mach codegen
     omos_demo ns                       # the server's namespace
     omos_demo stats --scheme omos ls   # clock + cache + memory report *)

open Cmdliner

type scheme = Static | Dynamic | Omos_boot | Omos_integrated | Partial

let scheme_conv =
  Arg.enum
    [
      ("static", Static); ("dynamic", Dynamic); ("omos", Omos_boot);
      ("omos-integrated", Omos_integrated); ("partial", Partial);
    ]

let personality_conv =
  Arg.enum
    [ ("hpux", Omos.World.Hpux); ("mach", Omos.World.Mach_osf1);
      ("mach386", Omos.World.Mach_386) ]

let scheme_arg =
  Arg.(value & opt scheme_conv Omos_boot & info [ "scheme" ] ~docv:"SCHEME"
         ~doc:"static | dynamic | omos | omos-integrated | partial")

let personality_arg =
  Arg.(value & opt personality_conv Omos.World.Hpux
       & info [ "personality" ] ~docv:"OS" ~doc:"hpux | mach | mach386")

let build_program (w : Omos.World.t) scheme name =
  let client, libs =
    match name with
    | "ls" -> (Omos.World.ls_client w, Omos.World.ls_libs)
    | "codegen" -> (Omos.World.codegen_client w, Omos.World.codegen_libs)
    | other -> failwith ("unknown program " ^ other ^ " (ls | codegen)")
  in
  match scheme with
  | Static -> Omos.Schemes.static_program w.Omos.World.rt ~name ~client ~libs
  | Dynamic -> Omos.Schemes.dynamic_program w.Omos.World.rt ~name ~client ~libs
  | Omos_boot ->
      Omos.Schemes.self_contained_program w.Omos.World.rt ~name ~client ~libs ()
  | Omos_integrated ->
      Omos.Schemes.self_contained_program w.Omos.World.rt
        ~style:Omos.Schemes.Integrated ~name ~client ~libs ()
  | Partial -> Omos.Schemes.partial_image_program w.Omos.World.rt ~name ~client ~libs

let run_cmd =
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc:"ls | codegen") in
  let args = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS") in
  let run scheme personality prog args =
    let w = Omos.World.create ~personality () in
    let p = build_program w scheme prog in
    let code, out = Omos.Schemes.invoke w.Omos.World.rt p ~args:(prog :: args) in
    print_string out;
    Printf.printf "(exit %d; %s)\n" code
      (Format.asprintf "%a" Simos.Clock.pp w.Omos.World.kernel.Simos.Kernel.clock);
    if code = 0 then 0 else code
  in
  Cmd.v (Cmd.info "run" ~doc:"run a workload under a scheme")
    Term.(const run $ scheme_arg $ personality_arg $ prog $ args)

let ns_cmd =
  let run () =
    let w = Omos.World.create () in
    let ns = Omos.Server.namespace w.Omos.World.server in
    print_endline "meta-objects:";
    List.iter (Printf.printf "  %s\n") (Omos.Namespace.all_metas ns);
    print_endline "directories:";
    List.iter
      (fun d ->
        Printf.printf "  /%s:" d;
        List.iter (fun (n, _) -> Printf.printf " %s" n) (Omos.Namespace.list ns ("/" ^ d));
        print_newline ())
      [ "lib"; "libc"; "obj" ];
    0
  in
  Cmd.v (Cmd.info "ns" ~doc:"show the server namespace") Term.(const run $ const ())

let stats_cmd =
  let prog = Arg.(value & pos 0 string "ls" & info [] ~docv:"PROGRAM") in
  let run scheme personality prog =
    let w = Omos.World.create ~personality () in
    let p = build_program w scheme prog in
    let args = if prog = "ls" then Omos.World.ls_laf_args else [ prog ] in
    ignore (Omos.Schemes.invoke w.Omos.World.rt p ~args);
    ignore (Omos.Schemes.invoke w.Omos.World.rt p ~args);
    let k = w.Omos.World.kernel in
    Printf.printf "clock: %s\n" (Format.asprintf "%a" Simos.Clock.pp k.Simos.Kernel.clock);
    Printf.printf "syscalls: %d\n" k.Simos.Kernel.syscall_count;
    Printf.printf "physical: %s\n" (Format.asprintf "%a" Simos.Phys.pp k.Simos.Kernel.phys);
    let st = Omos.Server.cache_stats w.Omos.World.server in
    Printf.printf "cache: %d hits, %d misses, %d entries, %d KB\n" st.Omos.Cache.hits
      st.Omos.Cache.misses st.Omos.Cache.entries (st.Omos.Cache.disk_bytes_total / 1024);
    Printf.printf "dispatch: %d bytes, %d imports, %d eager relocs\n"
      p.Omos.Schemes.dispatch_bytes p.Omos.Schemes.imports p.Omos.Schemes.eager_relocs;
    0
  in
  Cmd.v (Cmd.info "stats" ~doc:"run twice and report server statistics")
    Term.(const run $ scheme_arg $ personality_arg $ prog)

let main =
  Cmd.group
    (Cmd.info "omos_demo" ~doc:"drive the OMOS reproduction's simulated machine")
    [ run_cmd; ns_cmd; stats_cmd ]

let () = exit (Cmd.eval' main)
