(* OFE — the Object File Editor (paper §8.1).

   "We also have a non-server version of OMOS, called the Object File
   Editor (OFE). It offers a traditional command interface and
   manipulates files in the normal Unix file namespace."

   Subcommands operate on SOF object files on the host filesystem:

     ofe compile in.c out.sof        minic -> SOF
     ofe info file.sof               sections, counts
     ofe symbols file.sof            the symbol table
     ofe relocs file.sof             relocation entries
     ofe disasm file.sof             text disassembly
     ofe exports file.sof            exported names
     ofe undefined file.sof          unresolved references
     ofe convert FMT in out          re-encode (sof | aout)
     ofe rename PAT TPL in out       jigsaw rename (defs+refs)
     ofe hide PAT in out             jigsaw hide
     ofe restrict PAT in out         jigsaw restrict
     ofe copy-as PAT NEW in out      jigsaw copy-as
     ofe merge out in1 in2 ...       jigsaw merge (partial link)        *)

open Cmdliner

(* reads either backend format via the Bfd switch *)
let read_obj (path : string) : Sof.Object_file.t =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  Sof.Bfd.decode (Bytes.of_string bytes)

let write_obj (path : string) (o : Sof.Object_file.t) : unit =
  let oc = open_out_bin path in
  output_bytes oc (Sof.Codec.encode o);
  close_out oc

let in_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT" ~doc:"input SOF file")

let handle f =
  try
    f ();
    0
  with
  | Sof.Codec.Decode_error m | Sof.Aout.Decode_error m
  | Sof.Bfd.Unknown_format m | Sof.Object_file.Invalid m ->
      Printf.eprintf "ofe: %s\n" m;
      1
  | Minic.Driver.Compile_error m ->
      Printf.eprintf "ofe: %s\n" m;
      1
  | Jigsaw.Module_ops.Module_error m ->
      Printf.eprintf "ofe: %s\n" m;
      1
  | Omos.Server.Server_error m | Blueprint.Mgraph.Eval_error m ->
      Printf.eprintf "ofe: %s\n" m;
      1
  | Linker.Link.Link_error e ->
      Printf.eprintf "ofe: %s\n" (Linker.Link.error_to_string e);
      1
  | Blueprint.Meta.Meta_error m
  | Constraints.Placement.No_space m
  | Omos.Residency.Violation m
  | Simos.Fs.Fs_error m
  | Simos.Kernel.Exec_error m ->
      Printf.eprintf "ofe: %s\n" m;
      1
  | Omos.Workload.Spec_error m ->
      Printf.eprintf "ofe: workload spec: %s\n" m;
      1
  | Workloads.Fuzz.Case_error m ->
      Printf.eprintf "ofe: fuzzcase: %s\n" m;
      1
  | Telemetry.Health.Slo_error m ->
      Printf.eprintf "ofe: slo: %s\n" m;
      1
  | Sys_error m ->
      Printf.eprintf "ofe: %s\n" m;
      1

(* The exit convention (also in the EXIT STATUS man section): 0 =
   success, 1 = input/build errors, 2 = residency invariant violation,
   SLO breach, or command-line parse error. *)
let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:"on input or build errors (bad objects, unknown meta-objects, link failures).";
    Cmd.Exit.info 2
      ~doc:
        "on residency invariant violations, SLO breaches, and command-line \
         parse errors.";
  ]

(* -- inspection commands ------------------------------------------------- *)

let info_cmd =
  let run input =
    handle (fun () ->
        let o = read_obj input in
        Printf.printf "%s: text=%d data=%d bss=%d symbols=%d relocs=%d ctors=%d\n"
          o.Sof.Object_file.name
          (Bytes.length o.Sof.Object_file.text)
          (Bytes.length o.Sof.Object_file.data)
          o.Sof.Object_file.bss_size
          (List.length o.Sof.Object_file.symbols)
          (List.length o.Sof.Object_file.relocs)
          (List.length o.Sof.Object_file.ctors))
  in
  Cmd.v (Cmd.info "info" ~doc:"show section sizes and table counts")
    Term.(const run $ in_file)

let symbols_cmd =
  let run input =
    handle (fun () ->
        let o = read_obj input in
        List.iter
          (fun s -> Format.printf "%a@." Sof.Symbol.pp s)
          o.Sof.Object_file.symbols)
  in
  Cmd.v (Cmd.info "symbols" ~doc:"print the symbol table") Term.(const run $ in_file)

let relocs_cmd =
  let run input =
    handle (fun () ->
        let o = read_obj input in
        List.iter (fun r -> Format.printf "%a@." Sof.Reloc.pp r) o.Sof.Object_file.relocs)
  in
  Cmd.v (Cmd.info "relocs" ~doc:"print relocation entries") Term.(const run $ in_file)

let disasm_cmd =
  let run input =
    handle (fun () ->
        let o = read_obj input in
        print_string (Svm.Disasm.code_to_string o.Sof.Object_file.text))
  in
  Cmd.v (Cmd.info "disasm" ~doc:"disassemble the text section") Term.(const run $ in_file)

let exports_cmd =
  let run input =
    handle (fun () ->
        let o = read_obj input in
        List.iter
          (fun (s : Sof.Symbol.t) -> print_endline s.Sof.Symbol.name)
          (Sof.Object_file.exported o))
  in
  Cmd.v (Cmd.info "exports" ~doc:"list exported definitions") Term.(const run $ in_file)

let undefined_cmd =
  let run input =
    handle (fun () ->
        List.iter print_endline (Sof.Object_file.undefined (read_obj input)))
  in
  Cmd.v (Cmd.info "undefined" ~doc:"list unresolved references") Term.(const run $ in_file)

(* -- the classic object-file utilities (paper §7: nm, size, strings
   "are concerned with only a small part of the whole file") ---------------- *)

let nm_cmd =
  (* nm-style: value, type letter, name. T/D/B/A for text/data/bss/abs
     (lowercase = local), U for undefined. *)
  let run input =
    handle (fun () ->
        let o = read_obj input in
        List.iter
          (fun (s : Sof.Symbol.t) ->
            let letter =
              match s.Sof.Symbol.kind with
              | Sof.Symbol.Text -> "T"
              | Sof.Symbol.Data -> "D"
              | Sof.Symbol.Bss -> "B"
              | Sof.Symbol.Abs -> "A"
              | Sof.Symbol.Undef -> "U"
            in
            let letter =
              if s.Sof.Symbol.binding = Sof.Symbol.Local then
                String.lowercase_ascii letter
              else letter
            in
            if s.Sof.Symbol.kind = Sof.Symbol.Undef then
              Printf.printf "%8s %s %s\n" "" letter s.Sof.Symbol.name
            else Printf.printf "%08x %s %s\n" s.Sof.Symbol.value letter s.Sof.Symbol.name)
          (List.sort
             (fun (a : Sof.Symbol.t) b -> compare a.Sof.Symbol.name b.Sof.Symbol.name)
             o.Sof.Object_file.symbols))
  in
  Cmd.v (Cmd.info "nm" ~doc:"list symbols, nm-style") Term.(const run $ in_file)

let size_cmd =
  let run input =
    handle (fun () ->
        let o = read_obj input in
        let text = Bytes.length o.Sof.Object_file.text in
        let data = Bytes.length o.Sof.Object_file.data in
        let bss = o.Sof.Object_file.bss_size in
        Printf.printf "   text\t   data\t    bss\t    dec\t    hex\tfilename\n";
        Printf.printf "%7d\t%7d\t%7d\t%7d\t%7x\t%s\n" text data bss (text + data + bss)
          (text + data + bss) input)
  in
  Cmd.v (Cmd.info "size" ~doc:"print section sizes, size-style") Term.(const run $ in_file)

let strings_cmd =
  let run input =
    handle (fun () ->
        let o = read_obj input in
        (* printable runs of >= 4 chars in the data section *)
        let data = o.Sof.Object_file.data in
        let buf = Buffer.create 16 in
        let flush () =
          if Buffer.length buf >= 4 then print_endline (Buffer.contents buf);
          Buffer.clear buf
        in
        Bytes.iter
          (fun c ->
            if c >= ' ' && c < '\127' then Buffer.add_char buf c else flush ())
          data;
        flush ())
  in
  Cmd.v (Cmd.info "strings" ~doc:"print printable strings from the data section")
    Term.(const run $ in_file)

(* -- compile --------------------------------------------------------------- *)

let compile_cmd =
  let src = Arg.(required & pos 0 (some file) None & info [] ~docv:"SRC" ~doc:"minic source") in
  let out = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"output SOF") in
  let run src out =
    handle (fun () ->
        let ic = open_in src in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        write_obj out (Minic.Driver.compile ~name:out text);
        Printf.printf "wrote %s\n" out)
  in
  Cmd.v (Cmd.info "compile" ~doc:"compile minic source to a SOF object")
    Term.(const run $ src $ out)

(* -- module operations ------------------------------------------------------- *)

let pat_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATTERN" ~doc:"symbol regexp")

let unary_op name doc f =
  let input = Arg.(required & pos 1 (some file) None & info [] ~docv:"INPUT" ~doc:"input SOF") in
  let out = Arg.(required & pos 2 (some string) None & info [] ~docv:"OUTPUT" ~doc:"output SOF") in
  let run pat input out =
    handle (fun () ->
        let m = Jigsaw.Module_ops.of_object (read_obj input) in
        let m' = f (Jigsaw.Select.compile pat) m in
        write_obj out (Jigsaw.Module_ops.to_object ~name:out m');
        Printf.printf "wrote %s\n" out)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ pat_arg $ input $ out)

let rename_cmd =
  let tpl = Arg.(required & pos 1 (some string) None & info [] ~docv:"TEMPLATE" ~doc:"replacement (\\1 groups ok)") in
  let input = Arg.(required & pos 2 (some file) None & info [] ~docv:"INPUT" ~doc:"input SOF") in
  let out = Arg.(required & pos 3 (some string) None & info [] ~docv:"OUTPUT" ~doc:"output SOF") in
  let run pat tpl input out =
    handle (fun () ->
        let m = Jigsaw.Module_ops.of_object (read_obj input) in
        let m' = Jigsaw.Module_ops.rename (Jigsaw.Select.compile pat) tpl m in
        write_obj out (Jigsaw.Module_ops.to_object ~name:out m');
        Printf.printf "wrote %s\n" out)
  in
  Cmd.v (Cmd.info "rename" ~doc:"systematically rename symbols")
    Term.(const run $ pat_arg $ tpl $ input $ out)

let copy_as_cmd =
  let newname = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEWNAME" ~doc:"name for the copy") in
  let input = Arg.(required & pos 2 (some file) None & info [] ~docv:"INPUT" ~doc:"input SOF") in
  let out = Arg.(required & pos 3 (some string) None & info [] ~docv:"OUTPUT" ~doc:"output SOF") in
  let run pat newname input out =
    handle (fun () ->
        let m = Jigsaw.Module_ops.of_object (read_obj input) in
        let m' = Jigsaw.Module_ops.copy_as (Jigsaw.Select.compile pat) newname m in
        write_obj out (Jigsaw.Module_ops.to_object ~name:out m');
        Printf.printf "wrote %s\n" out)
  in
  Cmd.v (Cmd.info "copy-as" ~doc:"duplicate definitions under a new name")
    Term.(const run $ pat_arg $ newname $ input $ out)

let convert_cmd =
  let fmt = Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMAT" ~doc:"sof | aout") in
  let input = Arg.(required & pos 1 (some file) None & info [] ~docv:"INPUT" ~doc:"input object") in
  let out = Arg.(required & pos 2 (some string) None & info [] ~docv:"OUTPUT" ~doc:"output object") in
  let run fmt input out =
    handle (fun () ->
        let o = read_obj input in
        let oc = open_out_bin out in
        output_bytes oc (Sof.Bfd.encode (Sof.Bfd.format_of_string fmt) o);
        close_out oc;
        Printf.printf "wrote %s (%s format)\n" out fmt)
  in
  Cmd.v (Cmd.info "convert" ~doc:"re-encode an object in another backend format")
    Term.(const run $ fmt $ input $ out)

let merge_cmd =
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTPUT" ~doc:"output SOF") in
  let inputs = Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"INPUTS" ~doc:"input SOFs") in
  let run out inputs =
    handle (fun () ->
        let m = Jigsaw.Module_ops.of_objects (List.map read_obj inputs) in
        write_obj out (Jigsaw.Module_ops.to_object ~name:out m);
        Printf.printf "wrote %s (%d members)\n" out (List.length inputs))
  in
  Cmd.v (Cmd.info "merge" ~doc:"merge objects (partial link)")
    Term.(const run $ out $ inputs)

(* -- the symbol-flow linter -------------------------------------------------- *)

(* Register a host meta-object file in the quickstart world under
   /local/<basename> (sans extension), so blueprints that exist only on
   disk — including broken ones — can be linted, traced and explained. *)
let register_meta_file (s : Omos.Server.t) (file : string) : string =
  let ic = open_in file in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let path = "/local/" ^ Filename.remove_extension (Filename.basename file) in
  Omos.Server.register_meta_source s path src;
  path

let finding_json (f : Analysis.Lint.finding) : Telemetry.Json.t =
  Telemetry.Json.Obj
    [
      ("code", Telemetry.Json.Str f.Analysis.Lint.code);
      ("title", Telemetry.Json.Str f.Analysis.Lint.title);
      ("severity",
       Telemetry.Json.Str
         (Analysis.Lint.severity_to_string f.Analysis.Lint.severity));
      ("path", Telemetry.Json.Str f.Analysis.Lint.path);
      ("symbols",
       Telemetry.Json.Arr
         (List.map (fun s -> Telemetry.Json.Str s) f.Analysis.Lint.symbols));
      ("message", Telemetry.Json.Str f.Analysis.Lint.message);
    ]

(* Structured blueprint-failure reporting for trace/explain/profile: a
   meta whose evaluation raises gets the linter's error findings on
   stderr — the same diagnostics `ofe lint` prints — instead of a bare
   exception message, and the command exits 2 like a failed lint. *)
let with_blueprint_diagnostics (s : Omos.Server.t) ~(meta : string)
    (diagnosed : bool ref) (f : unit -> unit) : unit =
  try f ()
  with
  | Blueprint.Mgraph.Eval_error msg | Jigsaw.Module_ops.Module_error msg ->
    Printf.eprintf "ofe: %s: blueprint evaluation failed: %s\n" meta msg;
    (match Omos.Server.lint_report s meta with
    | Some rep ->
        List.iter
          (fun (f : Analysis.Lint.finding) ->
            if f.Analysis.Lint.severity = Analysis.Lint.Error then
              Printf.eprintf "ofe:   %s\n" (Analysis.Lint.finding_to_string f))
          rep.Analysis.Lint.findings
    | None -> ());
    diagnosed := true

let pick_meta (s : Omos.Server.t) (meta : string option)
    (meta_file : string option) : string =
  match (meta_file, meta) with
  | Some f, None -> register_meta_file s f
  | None, Some m -> m
  | Some _, Some _ ->
      raise
        (Omos.Server.Server_error "give either a META path or --meta-file, not both")
  | None, None ->
      raise (Omos.Server.Server_error "a META path or --meta-file is required")

let meta_file_arg =
  Arg.(value & opt (some file) None
       & info [ "meta-file" ] ~docv:"FILE"
           ~doc:"use a meta-object source file from the host filesystem \
                 (registered under /local/) instead of a bound META path")

let lint_cmd =
  let metas =
    Arg.(value & pos_all string []
         & info [] ~docv:"META" ~doc:"meta-object paths to lint (e.g. /lib/libc)")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"lint every meta-object bound in the quickstart world")
  in
  let meta_files =
    Arg.(value & opt_all file []
         & info [ "meta-file" ] ~docv:"FILE"
             ~doc:"lint a meta-object source file from the host filesystem \
                   (registered under /local/); repeatable")
  in
  let workload =
    Arg.(value & opt (some file) None
         & info [ "workload" ] ~docv:"SPEC"
             ~doc:"lint the meta-objects a workload spec names")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit findings as JSON (omos.lint/1)")
  in
  let max_warnings =
    Arg.(value & opt (some int) None
         & info [ "max-warnings" ] ~docv:"N"
             ~doc:"fail (exit 2) when total warnings exceed $(docv)")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"differential self-check: evaluate each meta-object for real \
                   and assert the predicted export/undefined sets match exactly")
  in
  let run failed metas all meta_files workload json max_warnings verify =
    handle (fun () ->
        let w = Omos.World.create () in
        let s = w.Omos.World.server in
        let targets =
          metas
          @ (if all then Omos.Namespace.all_metas (Omos.Server.namespace s) else [])
          @ (match workload with
            | None -> []
            | Some spec -> (Omos.Workload.parse_file spec).Omos.Workload.metas)
          @ List.map (register_meta_file s) meta_files
        in
        let targets = List.sort_uniq compare targets in
        if targets = [] then
          raise
            (Omos.Server.Server_error
               "nothing to lint: name a META, or use --all/--meta-file/--workload");
        let resolve = Omos.Server.resolve_graph s in
        let errs = ref 0 and warns = ref 0 and rows = ref [] in
        List.iter
          (fun path ->
            let meta = Omos.Server.find_meta s path in
            let graph = Blueprint.Meta.effective_graph meta ~spec:None in
            let report, outcome =
              if verify then
                let r, o =
                  Analysis.Lint.verify_against ~eval:(Omos.Server.eval s)
                    ~resolve graph
                in
                (r, Some o)
              else (Analysis.Lint.analyze ~resolve graph, None)
            in
            errs := !errs + Analysis.Lint.errors report;
            warns := !warns + Analysis.Lint.warnings report;
            if json then
              rows :=
                Telemetry.Json.Obj
                  [
                    ("meta", Telemetry.Json.Str path);
                    ("errors",
                     Telemetry.Json.Num
                       (float_of_int (Analysis.Lint.errors report)));
                    ("warnings",
                     Telemetry.Json.Num
                       (float_of_int (Analysis.Lint.warnings report)));
                    ("approximate", Telemetry.Json.Bool report.Analysis.Lint.approximate);
                    ("exports",
                     Telemetry.Json.Arr
                       (List.map
                          (fun s -> Telemetry.Json.Str s)
                          report.Analysis.Lint.exports));
                    ("undefined",
                     Telemetry.Json.Arr
                       (List.map
                          (fun s -> Telemetry.Json.Str s)
                          report.Analysis.Lint.undefined));
                    ("findings",
                     Telemetry.Json.Arr
                       (List.map finding_json report.Analysis.Lint.findings));
                  ]
                :: !rows
            else begin
              Printf.printf "%s: %d error%s, %d warning%s (exports=%d undefined=%d)\n"
                path
                (Analysis.Lint.errors report)
                (if Analysis.Lint.errors report = 1 then "" else "s")
                (Analysis.Lint.warnings report)
                (if Analysis.Lint.warnings report = 1 then "" else "s")
                (List.length report.Analysis.Lint.exports)
                (List.length report.Analysis.Lint.undefined);
              List.iter
                (fun f ->
                  Printf.printf "  %s\n" (Analysis.Lint.finding_to_string f))
                report.Analysis.Lint.findings
            end;
            match outcome with
            | None -> ()
            | Some (Analysis.Lint.Verified { exports; undefined }) ->
                if not json then
                  Printf.printf "  verify: ok (exports=%d undefined=%d match)\n"
                    exports undefined
            | Some (Analysis.Lint.Skipped reason) ->
                if not json then Printf.printf "  verify: skipped (%s)\n" reason
            | Some (Analysis.Lint.Mismatch { field; predicted; actual }) ->
                Printf.eprintf
                  "ofe: %s: verify mismatch on %s\n  predicted: %s\n  actual:    %s\n"
                  path field
                  (String.concat " " predicted)
                  (String.concat " " actual);
                failed := true
            | Some (Analysis.Lint.Eval_raised msg) ->
                Printf.eprintf
                  "ofe: %s: evaluation raised but analysis predicted success: %s\n"
                  path msg;
                failed := true)
          targets;
        if json then
          print_endline
            (Telemetry.Json.to_string
               (Telemetry.Json.Obj
                  [
                    ("lint", Telemetry.Json.Str "omos.lint/1");
                    ("errors", Telemetry.Json.Num (float_of_int !errs));
                    ("warnings", Telemetry.Json.Num (float_of_int !warns));
                    ("metas", Telemetry.Json.Arr (List.rev !rows));
                  ]))
        else
          Printf.printf "lint: %d meta%s, %d error%s, %d warning%s\n"
            (List.length targets)
            (if List.length targets = 1 then "" else "s")
            !errs
            (if !errs = 1 then "" else "s")
            !warns
            (if !warns = 1 then "" else "s");
        if
          !errs > 0
          || match max_warnings with Some n -> !warns > n | None -> false
        then failed := true)
  in
  let run metas all meta_files workload json max_warnings verify =
    let failed = ref false in
    let code = run failed metas all meta_files workload json max_warnings verify in
    if code = 0 && !failed then 2 else code
  in
  Cmd.v
    (Cmd.info "lint" ~exits:
       [
         Cmd.Exit.info 0 ~doc:"when every linted meta-object is clean.";
         Cmd.Exit.info 1 ~doc:"on input errors (unreadable files, unknown meta-objects).";
         Cmd.Exit.info 2
           ~doc:"on any error finding, a warning budget overrun, or a \
                 $(b,--verify) mismatch.";
       ]
       ~doc:
         "statically analyze meta-object blueprints: predict exports and \
          undefined references without materializing views, and report \
          namespace, operator, and constraint errors before link time")
    Term.(const run $ metas $ all $ meta_files $ workload $ json $ max_warnings $ verify)

(* -- subtree dependence analysis ------------------------------------------- *)

(* Resolve an impact operand: a readable host file is registered as a
   meta-object source (at [at] when given, else under /local/<basename>);
   anything else must already be a bound meta path. *)
let impact_operand (s : Omos.Server.t) ?at (name : string) : string =
  if Sys.file_exists name && not (Sys.is_directory name) then begin
    let ic = open_in name in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let path =
      match at with
      | Some p -> p
      | None -> "/local/" ^ Filename.remove_extension (Filename.basename name)
    in
    Omos.Server.register_meta_source s path src;
    path
  end
  else begin
    ignore (Omos.Server.find_meta s name);
    name
  end

let impact_tree_exn (s : Omos.Server.t) (path : string) : Analysis.Impact.tree =
  match Omos.Server.impact_tree s path with
  | Some t -> t
  | None ->
      raise
        (Omos.Server.Server_error
           (path ^ ": no dependence analysis recorded (not a meta-object?)"))

let verdict_json (v : Analysis.Impact.node_verdict) : Telemetry.Json.t =
  Telemetry.Json.Obj
    ([
       ("path", Telemetry.Json.Str v.Analysis.Impact.v_path);
       ("op", Telemetry.Json.Str v.Analysis.Impact.v_op);
       ("digest", Telemetry.Json.Str v.Analysis.Impact.v_digest);
     ]
    @
    match v.Analysis.Impact.v_verdict with
    | Analysis.Impact.Reused _ -> [ ("verdict", Telemetry.Json.Str "reused") ]
    | Analysis.Impact.Respin { reason } ->
        [
          ("verdict", Telemetry.Json.Str "respin");
          ("reason", Telemetry.Json.Str reason);
        ])

let impact_cmd =
  let old_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"OLD"
             ~doc:"the pre-edit blueprint: a meta-object source file on the \
                   host filesystem, or a meta path already bound in the \
                   quickstart world (e.g. /lib/libc)")
  in
  let new_arg =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"NEW"
             ~doc:"the post-edit blueprint (same operand forms as $(b,OLD))")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"self-diff every meta-object bound in the quickstart world \
                   (each against itself); with $(b,--verify) this discharges \
                   the byte-identity obligation of every stable subtree")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"emit the verdicts as JSON (omos.impact/1)")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"discharge the proofs for real: evaluate each reused \
                   digest's old and new subtrees from scratch (memo table \
                   disabled) and assert the materializations are \
                   byte-identical")
  in
  let run failed old_arg new_arg all json verify =
    handle (fun () ->
        let w = Omos.World.create () in
        let s = w.Omos.World.server in
        let pairs =
          if all then
            List.map
              (fun p -> (p, p))
              (List.sort compare
                 (Omos.Namespace.all_metas (Omos.Server.namespace s)))
          else
            match (old_arg, new_arg) with
            | Some o, Some n -> [ (o, n) ]
            | _ ->
                raise
                  (Omos.Server.Server_error
                     "give OLD and NEW blueprints, or --all")
        in
        let rows = ref [] in
        List.iter
          (fun (old_name, new_name) ->
            let old_path = impact_operand s old_name in
            let old_tree = impact_tree_exn s old_path in
            (* When NEW is a host file, re-register the edit over the old
               binding: the server then computes the verdicts exactly as
               a live [register_meta] of the edited blueprint would. *)
            let new_path, new_tree, d =
              if
                old_name <> new_name
                && Sys.file_exists new_name
                && not (Sys.is_directory new_name)
              then begin
                ignore (impact_operand s ~at:old_path new_name);
                let nt = impact_tree_exn s old_path in
                match Omos.Server.impact_diff s old_path with
                | Some d -> (old_path, nt, d)
                | None ->
                    raise
                      (Omos.Server.Server_error
                         (old_path ^ ": re-registration recorded no diff"))
              end
              else
                let p =
                  if new_name = old_name then old_path
                  else impact_operand s new_name
                in
                let nt = impact_tree_exn s p in
                (p, nt, Analysis.Impact.diff ~old_tree ~new_tree:nt)
            in
            let vo =
              if verify then begin
                (* from-scratch semantics: the memo table must not serve
                   the very materializations we are checking *)
                Omos.Server.set_subtree_reuse s false;
                let eval n = (Omos.Server.eval s n).Blueprint.Mgraph.m in
                let o = Analysis.Impact.verify ~eval ~old_tree ~new_tree d in
                Omos.Server.set_subtree_reuse s true;
                if o.Analysis.Impact.vo_failures <> [] then failed := true;
                Some o
              end
              else None
            in
            if json then
              rows :=
                Telemetry.Json.Obj
                  ([
                     ("old", Telemetry.Json.Str old_path);
                     ("new", Telemetry.Json.Str new_path);
                     ("old_digest",
                      Telemetry.Json.Str d.Analysis.Impact.d_old_digest);
                     ("new_digest",
                      Telemetry.Json.Str d.Analysis.Impact.d_new_digest);
                     ("reused",
                      Telemetry.Json.Num
                        (float_of_int d.Analysis.Impact.d_reused));
                     ("respun",
                      Telemetry.Json.Num
                        (float_of_int d.Analysis.Impact.d_respun));
                     ("spine",
                      Telemetry.Json.Arr
                        (List.map
                           (fun p -> Telemetry.Json.Str p)
                           d.Analysis.Impact.d_spine));
                     ("nodes",
                      Telemetry.Json.Arr
                        (List.map verdict_json d.Analysis.Impact.d_nodes));
                   ]
                  @
                  match vo with
                  | None -> []
                  | Some o ->
                      [
                        ("verify",
                         Telemetry.Json.Obj
                           [
                             ("checked",
                              Telemetry.Json.Num
                                (float_of_int o.Analysis.Impact.vo_checked));
                             ("failures",
                              Telemetry.Json.Arr
                                (List.map
                                   (fun (p, msg) ->
                                     Telemetry.Json.Obj
                                       [
                                         ("path", Telemetry.Json.Str p);
                                         ("error", Telemetry.Json.Str msg);
                                       ])
                                   o.Analysis.Impact.vo_failures));
                           ]);
                      ])
                :: !rows
            else begin
              Printf.printf "impact: %s -> %s\n" old_path new_path;
              if
                d.Analysis.Impact.d_old_digest
                = d.Analysis.Impact.d_new_digest
              then
                Printf.printf
                  "  link-equivalent: root digests match (%s)\n"
                  (String.sub d.Analysis.Impact.d_new_digest 0 12);
              Printf.printf "  %d reused, %d respun (spine length %d)\n"
                d.Analysis.Impact.d_reused d.Analysis.Impact.d_respun
                (List.length d.Analysis.Impact.d_spine);
              List.iter
                (fun (v : Analysis.Impact.node_verdict) ->
                  match v.Analysis.Impact.v_verdict with
                  | Analysis.Impact.Reused _ ->
                      Printf.printf "  reuse  %s [%s] %s\n"
                        v.Analysis.Impact.v_path v.Analysis.Impact.v_op
                        (String.sub v.Analysis.Impact.v_digest 0 12)
                  | Analysis.Impact.Respin { reason } ->
                      Printf.printf "  respin %s [%s]: %s\n"
                        v.Analysis.Impact.v_path v.Analysis.Impact.v_op
                        reason)
                d.Analysis.Impact.d_nodes;
              match vo with
              | None -> ()
              | Some o ->
                  if o.Analysis.Impact.vo_failures = [] then
                    Printf.printf
                      "  verify: %d reused digest%s byte-identical\n"
                      o.Analysis.Impact.vo_checked
                      (if o.Analysis.Impact.vo_checked = 1 then "" else "s")
                  else
                    List.iter
                      (fun (p, msg) ->
                        Printf.eprintf "ofe: %s: verify FAILED at %s: %s\n"
                          new_path p msg)
                      o.Analysis.Impact.vo_failures
            end)
          pairs;
        if json then
          print_endline
            (Telemetry.Json.to_string
               (Telemetry.Json.Obj
                  [
                    ("impact", Telemetry.Json.Str "omos.impact/1");
                    ("pairs", Telemetry.Json.Arr (List.rev !rows));
                  ])))
  in
  let run old_arg new_arg all json verify =
    let failed = ref false in
    let code = run failed old_arg new_arg all json verify in
    if code = 0 && !failed then 2 else code
  in
  Cmd.v
    (Cmd.info "impact" ~exits:
       [
         Cmd.Exit.info 0 ~doc:"when the analysis (and $(b,--verify), if given) succeeds.";
         Cmd.Exit.info 1
           ~doc:"on input errors (unreadable files, unknown meta-objects, \
                 blueprint parse errors).";
         Cmd.Exit.info 2
           ~doc:"when $(b,--verify) finds a reused subtree whose from-scratch \
                 materialization is not byte-identical.";
       ]
       ~doc:
         "subtree dependence analysis for incremental relinking: compare the \
          pre- and post-edit blueprints' content-addressed interface \
          summaries and report, per operator node, whether its materialized \
          view is provably reusable ($(b,reuse): equal stable digest in the \
          old tree) or must be rebuilt ($(b,respin): the first differing \
          interface fact is named). The respun set is the edit's spine — a \
          one-module edit to a large library respins O(depth) nodes, not \
          O(library). $(b,--verify) discharges the proofs by from-scratch \
          evaluation; $(b,--all) self-checks every bound meta-object.")
    Term.(const run $ old_arg $ new_arg $ all $ json $ verify)

(* -- the OMOS request path: tracing & metrics ------------------------------ *)

(* Reset telemetry (world construction does no instantiation work) and
   serve one request with tracing on. *)
let traced_instantiate (w : Omos.World.t) (meta : string) : Omos.Server.response =
  let s = w.Omos.World.server in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let root =
    Telemetry.Span.enter "ofe.trace" ~attrs:[ ("meta", Telemetry.S meta) ]
  in
  let resp = Omos.Server.instantiate s (Omos.Server.library meta) in
  let p = Simos.Kernel.create_process (Omos.Server.kernel s) ~args:[ "trace" ] in
  Omos.Server.map_into s p resp.Omos.Server.built;
  Telemetry.Span.exit root;
  Telemetry.set_enabled false;
  resp

let trace_cmd =
  let meta =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"META" ~doc:"library meta-object path (e.g. /lib/libc)")
  in
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace_event output file")
  in
  let run diagnosed meta meta_file out =
    handle (fun () ->
        let w = Omos.World.create () in
        let s = w.Omos.World.server in
        let meta = pick_meta s meta meta_file in
        with_blueprint_diagnostics s ~meta diagnosed @@ fun () ->
        let resp = traced_instantiate w meta in
        let json = Telemetry.Export.chrome () in
        let oc = open_out out in
        output_string oc json;
        output_string oc "\n";
        close_out oc;
        (* self-validation: parse the export back and inspect the span
           tree, so the command fails loudly if the exporter regresses *)
        let parsed = Telemetry.Json.parse json in
        let names =
          match Telemetry.Json.member "traceEvents" parsed with
          | Some (Telemetry.Json.Arr evs) ->
              List.filter_map
                (fun ev ->
                  match
                    (Telemetry.Json.member "ph" ev, Telemetry.Json.member "name" ev)
                  with
                  | Some (Telemetry.Json.Str "X"), Some (Telemetry.Json.Str n) ->
                      Some n
                  | _ -> None)
                evs
          | _ -> []
        in
        let have n = List.mem n names in
        let st = Omos.Server.cache_stats s in
        Printf.printf "wrote %s\n" out;
        Printf.printf "cache_hit=%b\n" resp.Omos.Server.cache_hit;
        Printf.printf "phases: eval=%b place=%b link=%b map=%b\n"
          (have "blueprint.eval") (have "constraints.place") (have "linker.link")
          (have "kernel.map_image");
        Printf.printf "cache counters agree: hits=%b misses=%b\n"
          (Telemetry.Counter.get "cache.hits" = st.Omos.Cache.hits)
          (Telemetry.Counter.get "cache.misses" = st.Omos.Cache.misses))
  in
  let run meta meta_file out =
    let diagnosed = ref false in
    let code = run diagnosed meta meta_file out in
    if code = 0 && !diagnosed then 2 else code
  in
  Cmd.v
    (Cmd.info "trace" ~exits
       ~doc:
         "instantiate a library meta-object in the quickstart world and export \
          a Chrome trace_event file of the request path")
    Term.(const run $ meta $ meta_file_arg $ out)

let stats_cmd =
  let meta =
    Arg.(value & pos 0 string "/lib/libc"
         & info [] ~docv:"META" ~doc:"meta-object to instantiate before dumping metrics")
  in
  let run violated meta =
    handle (fun () ->
        let w = Omos.World.create () in
        let s = w.Omos.World.server in
        Telemetry.reset ();
        (* exercise the full residency lifecycle so the residency.*
           counters carry signal: build, evict, rebuild *)
        ignore (Omos.Server.instantiate s (Omos.Server.library meta));
        ignore (Omos.Server.evict_to_budget s ~bytes:0);
        ignore (Omos.Server.instantiate s (Omos.Server.library meta));
        let viols = Omos.Residency.check_invariants (Omos.Server.residency s) in
        List.iter
          (fun v ->
            Printf.eprintf "ofe: residency violation: %s\n"
              (Omos.Residency.violation_message v))
          viols;
        print_endline (Telemetry.Export.metrics_json ());
        violated := viols <> [])
  in
  let run meta =
    let violated = ref false in
    let code = run violated meta in
    if code = 0 && !violated then 2 else code
  in
  Cmd.v
    (Cmd.info "stats" ~exits
       ~doc:
         "instantiate a meta-object in the quickstart world and dump the \
          metrics registry (omos.metrics/1 schema)")
    Term.(const run $ meta)

(* -- provenance & profiling ------------------------------------------------ *)

let explain_cmd =
  let meta =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"META" ~doc:"library meta-object path (e.g. /demo/hello)")
  in
  let symbol =
    Arg.(value & opt (some string) None
         & info [ "symbol" ] ~docv:"SYMBOL"
             ~doc:"show the binding decisions behind one symbol")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the provenance record as JSON")
  in
  let run diagnosed meta meta_file symbol json =
    handle (fun () ->
        let w = Omos.World.create () in
        let s = w.Omos.World.server in
        let meta = pick_meta s meta meta_file in
        with_blueprint_diagnostics s ~meta diagnosed @@ fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        Telemetry.Provenance.set_enabled true;
        (* cold build journals every decision; the warm repeat shows the
           cache serving the stored record without relinking *)
        let cold = Omos.Server.instantiate s (Omos.Server.library meta) in
        let warm = Omos.Server.instantiate s (Omos.Server.library meta) in
        Telemetry.Provenance.set_enabled false;
        Telemetry.set_enabled false;
        let e = warm.Omos.Server.built.Omos.Server.entry in
        let prov =
          match e.Omos.Cache.provenance with
          | Some p -> p
          | None ->
              raise (Omos.Server.Server_error ("no provenance recorded for " ^ meta))
        in
        if json then
          print_endline
            (Telemetry.Json.to_string (Telemetry.Provenance.to_json prov))
        else begin
          Printf.printf "meta: %s\n" meta;
          Printf.printf "cold: %s\n"
            (if cold.Omos.Server.cache_hit then "cache hit"
             else "cache miss - evaluated, linked and cached");
          Printf.printf "warm: %s\n"
            (if warm.Omos.Server.cache_hit then
               "cache hit - provenance served from the image cache (no relink)"
             else "cache miss");
          Printf.printf "placement: %s\n" prov.Telemetry.Provenance.p_placement;
          Printf.printf "cache generation: %d\n"
            prov.Telemetry.Provenance.p_generation;
          Printf.printf "operator chain: %s\n"
            (match prov.Telemetry.Provenance.p_ops with
            | [] -> "(none)"
            | ops -> String.concat " -> " ops);
          let binds =
            List.length
              (List.filter
                 (function Telemetry.Provenance.Bind _ -> true | _ -> false)
                 prov.Telemetry.Provenance.p_events)
          in
          Printf.printf "journal: %d events, %d symbol bindings\n"
            (List.length prov.Telemetry.Provenance.p_events)
            binds;
          List.iter
            (fun ev ->
              match ev with
              | Telemetry.Provenance.Interpose _ | Telemetry.Provenance.Reloc _
              | Telemetry.Provenance.Coalesced _ | Telemetry.Provenance.Reused _ ->
                  Printf.printf "  %s\n" (Telemetry.Provenance.event_to_string ev)
              | _ -> ())
            prov.Telemetry.Provenance.p_events;
          Printf.printf "residency: %s\n"
            (Omos.Cache.residency_to_string e.Omos.Cache.residency);
          match symbol with
          | None -> ()
          | Some sym -> (
              match Telemetry.Provenance.events_for prov sym with
              | [] ->
                  raise
                    (Omos.Server.Server_error
                       (Printf.sprintf "no journal events for symbol %s in %s" sym
                          meta))
              | evs ->
                  Printf.printf "symbol %s:\n" sym;
                  List.iter
                    (fun ev ->
                      Printf.printf "  %s\n"
                        (Telemetry.Provenance.event_to_string ev))
                    evs)
        end)
  in
  let run meta meta_file symbol json =
    let diagnosed = ref false in
    let code = run diagnosed meta meta_file symbol json in
    if code = 0 && !diagnosed then 2 else code
  in
  Cmd.v
    (Cmd.info "explain" ~exits
       ~doc:
         "instantiate a library meta-object twice (cold, then warm) in the \
          quickstart world and explain the cached image: placement, operator \
          chain, interpositions, and per-symbol binding decisions")
    Term.(const run $ meta $ meta_file_arg $ symbol $ json)

let profile_cmd =
  let meta =
    Arg.(value & pos 0 string "/lib/libc"
         & info [] ~docv:"META" ~doc:"library meta-object path to profile")
  in
  let folded_out =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"also write folded stacks to $(docv) (flamegraph input)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the cost table as JSON")
  in
  let run diagnosed meta meta_file folded_out json =
    handle (fun () ->
        let w = Omos.World.create () in
        let s = w.Omos.World.server in
        let meta =
          match meta_file with Some f -> register_meta_file s f | None -> meta
        in
        with_blueprint_diagnostics s ~meta diagnosed @@ fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        Telemetry.Profile.set_enabled true;
        let root =
          Telemetry.Span.enter "ofe.profile" ~attrs:[ ("meta", Telemetry.S meta) ]
        in
        let resp = Omos.Server.instantiate s (Omos.Server.library meta) in
        let p = Simos.Kernel.create_process (Omos.Server.kernel s) ~args:[ "profile" ] in
        Omos.Server.map_into s p resp.Omos.Server.built;
        Telemetry.Span.exit root;
        Telemetry.Profile.set_enabled false;
        Telemetry.set_enabled false;
        let total = Telemetry.Profile.total () in
        let folded = Telemetry.Profile.folded () in
        if json then begin
          let rows =
            List.map
              (fun (path, user, system, io) ->
                Telemetry.Json.Obj
                  [
                    ("path", Telemetry.Json.Str path);
                    ("user_us", Telemetry.Json.Num user);
                    ("system_us", Telemetry.Json.Num system);
                    ("io_us", Telemetry.Json.Num io);
                  ])
              (Telemetry.Profile.rows ())
          in
          print_endline
            (Telemetry.Json.to_string
               (Telemetry.Json.Obj
                  [
                    ("meta", Telemetry.Json.Str meta);
                    ("total_us", Telemetry.Json.Num total);
                    ("rows", Telemetry.Json.Arr rows);
                  ]))
        end
        else begin
          Printf.printf "meta: %s\n" meta;
          Printf.printf "total simulated cost: %.1f us\n" total;
          Printf.printf "by operator (innermost span):\n";
          List.iter
            (fun (leaf, us) ->
              Printf.printf "  %-28s %12.1f us  %5.1f%%\n" leaf us
                (if total > 0.0 then 100.0 *. us /. total else 0.0))
            (Telemetry.Profile.by_leaf ());
          Printf.printf "folded stacks:\n";
          List.iter (fun (path, us) -> Printf.printf "  %s %.1f\n" path us) folded
        end;
        match folded_out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            List.iter
              (fun (path, us) -> Printf.fprintf oc "%s %.1f\n" path us)
              folded;
            close_out oc;
            Printf.printf "wrote %s\n" file)
  in
  let run meta meta_file folded_out json =
    let diagnosed = ref false in
    let code = run diagnosed meta meta_file folded_out json in
    if code = 0 && !diagnosed then 2 else code
  in
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:
         "instantiate and map a library meta-object in the quickstart world \
          with the simulated-cost profiler on, and print the per-operator \
          cost table and folded stacks")
    Term.(const run $ meta $ meta_file_arg $ folded_out $ json)

(* -- continuous hotness profiling ------------------------------------------ *)

(* Drive one monitored run of META in a fresh quickstart world so the
   continuous hotness store has events to aggregate: libc is exercised
   by the E1 `ls -laF` workload, the codegen libraries by the codegen
   link-and-run workload. Metas with no known driver are reported as
   such (the store simply records no events for them). *)
let drive_monitored (meta : string) : Omos.Monitor.trace option =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let mon =
    Blueprint.Mgraph.parse (Printf.sprintf "(specialize \"monitor\" %s)" meta)
  in
  let driver =
    if meta = "/lib/libc" then
      Some
        ( Blueprint.Mgraph.Merge
            [ Omos.Schemes.graph_of_objs (Omos.World.ls_client w); mon ],
          Omos.World.ls_laf_args )
    else if List.mem meta Omos.World.codegen_libs then
      Some
        ( Blueprint.Mgraph.Merge
            (Omos.Schemes.graph_of_objs (Omos.World.codegen_client w)
            :: mon
            :: List.filter_map
                 (fun lib ->
                   if lib = meta then None else Some (Blueprint.Mgraph.Name lib))
                 Omos.World.codegen_libs),
          Omos.World.codegen_args )
    else None
  in
  match driver with
  | None -> None
  | Some (graph, args) ->
      let b = Omos.Server.build s (Omos.Server.static ~name:"hotspots-mon" graph) in
      let p = Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ]) ~args in
      ignore (Simos.Kernel.run w.Omos.World.kernel p ());
      Omos.Specializers.last_trace w.Omos.World.specializers

(* The fragment order to audit for META: the per-function split libc
   (same section order as the monolithic image — reordering is a
   per-function decision, paper §4.1) for /lib/libc, else the meta's
   own evaluated fragments. *)
let audit_fragments (meta : string) : Sof.Object_file.t list =
  if meta = "/lib/libc" then
    List.concat_map Workloads.Libc_gen.split_objects Workloads.Libc_gen.section_names
  else
    let w = Omos.World.create () in
    let s = w.Omos.World.server in
    let m = Omos.Server.find_meta s meta in
    let r = Omos.Server.eval s (Blueprint.Meta.effective_graph m ~spec:None) in
    Jigsaw.Module_ops.fragments r.Blueprint.Mgraph.m

let hotspots_cmd =
  let meta =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"META"
             ~doc:"library meta-object path to profile (default /lib/libc)")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"profile every meta-object bound in the quickstart world")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"emit the profile as JSON (omos.hotspots/1)")
  in
  let folded_out =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"also write folded call counts ($(b,meta;function count) \
                   lines, flamegraph input) to $(docv)")
  in
  let audit_flag =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"print the layout-locality audit: text pages the traced \
                   working set touches under the actual fragment order vs the \
                   optimal packed layout vs the profile-reordered layout")
  in
  let run meta meta_file all json folded_out audit_flag =
    handle (fun () ->
        let targets =
          if all then
            let w = Omos.World.create () in
            Omos.Namespace.all_metas (Omos.Server.namespace w.Omos.World.server)
            |> List.sort compare
          else
            [ (match meta_file with
              | Some f ->
                  let w = Omos.World.create () in
                  register_meta_file w.Omos.World.server f
              | None -> Option.value meta ~default:"/lib/libc") ]
        in
        Telemetry.reset ();
        let audited =
          List.filter_map
            (fun target ->
              match drive_monitored target with
              | None -> None
              | Some trace when Omos.Monitor.call_sequence trace = [] -> None
              | Some trace ->
                  (* always audit driven metas: the [--json] export and
                     the health window carry the headroom either way *)
                  Some (target, Omos.Hotspots.audit ~key:target ~trace
                                  (audit_fragments target)))
            targets
          |> List.to_seq |> Hashtbl.of_seq
        in
        if json then print_endline (Telemetry.Export.hotspots_json ())
        else begin
          Printf.printf "window: %d events (cap %d)\n"
            (Telemetry.Hotness.total_events ()) Telemetry.Hotness.window_cap;
          List.iter
            (fun target ->
              match Telemetry.Hotness.stat_for target with
              | None -> Printf.printf "\nmeta: %s\n  no monitored calls in the window\n" target
              | Some st ->
                  Printf.printf "\nmeta: %s\n" target;
                  Printf.printf "  calls: %d across %d routines\n"
                    st.Telemetry.Hotness.hs_calls
                    (List.length st.Telemetry.Hotness.hs_functions);
                  Printf.printf "  top functions:\n";
                  List.iteri
                    (fun i (f, n) ->
                      if i < 8 then Printf.printf "    %-24s %6d\n" f n)
                    st.Telemetry.Hotness.hs_functions;
                  Printf.printf "  top transitions:\n";
                  List.iteri
                    (fun i ((a, b), n) ->
                      if i < 5 then Printf.printf "    %s -> %s (%d)\n" a b n)
                    st.Telemetry.Hotness.hs_transitions;
                  if audit_flag then
                    match Hashtbl.find_opt audited target with
                    | None -> ()
                    | Some a ->
                        Printf.printf "  audit:\n";
                        Printf.printf "    routines called: %d of %d (%d bytes of text)\n"
                          a.Omos.Hotspots.a_routines_called
                          a.Omos.Hotspots.a_routines_total
                          a.Omos.Hotspots.a_bytes_touched;
                        Printf.printf "    pages touched, actual order:   %d\n"
                          a.Omos.Hotspots.a_pages_actual;
                        Printf.printf "    pages touched, optimal packed: %d\n"
                          a.Omos.Hotspots.a_pages_optimal;
                        Printf.printf "    pages touched, after reorder:  %d\n"
                          a.Omos.Hotspots.a_pages_reordered;
                        Printf.printf "    locality headroom: %d pages (%d after reorder)\n"
                          (Omos.Hotspots.headroom a) (Omos.Hotspots.residual a))
            targets
        end;
        match folded_out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            List.iter
              (fun (st : Telemetry.Hotness.stat) ->
                List.iter
                  (fun (f, n) ->
                    Printf.fprintf oc "%s;%s %d\n" st.Telemetry.Hotness.hs_key f n)
                  st.Telemetry.Hotness.hs_functions)
              (Telemetry.Hotness.stats ());
            close_out oc;
            if not json then Printf.printf "wrote %s\n" file)
  in
  Cmd.v
    (Cmd.info "hotspots" ~exits
       ~doc:
         "drive a monitored run of a library meta-object through the \
          continuous hotness store and report windowed call counts, \
          caller→callee transitions, and (with $(b,--audit)) the \
          layout-locality audit: how many text pages the traced working set \
          touches under the actual fragment order versus the optimal packed \
          layout — the locality headroom profile-driven reordering could \
          reclaim (omos.hotspots/1 schema with $(b,--json))")
    Term.(const run $ meta $ meta_file_arg $ all $ json $ folded_out $ audit_flag)

(* -- workload, health & SLO gating ----------------------------------------- *)

let load_spec = function
  | None -> Omos.Workload.default
  | Some path -> Omos.Workload.parse_file path

let spec_file_arg =
  Arg.(value & pos 0 (some file) None
       & info [] ~docv:"SPEC"
           ~doc:"workload spec file (omitted: the built-in default scenario)")

let print_workload_event (e : Omos.Workload.event) =
  Printf.printf
    "req=%d client=%d op=%s target=%s hit=%s cost_us=%.1f wait_us=%.1f\n"
    e.Omos.Workload.w_req e.Omos.Workload.w_client e.Omos.Workload.w_op
    e.Omos.Workload.w_target
    (match e.Omos.Workload.w_hit with
    | Some true -> "true"
    | Some false -> "false"
    | None -> "-")
    e.Omos.Workload.w_cost_us e.Omos.Workload.w_wait_us

let health_summary (snap : Telemetry.Health.snapshot) : string =
  Printf.sprintf
    "# requests=%d window=%d hit_ratio=%.2f p50_us=%.1f p95_us=%.1f \
     p99_us=%.1f mean_us=%.1f max_us=%.1f conflict_rate=%.3f \
     violation_rate=%.3f"
    snap.Telemetry.Health.requests snap.Telemetry.Health.window
    snap.Telemetry.Health.hit_ratio snap.Telemetry.Health.p50_us
    snap.Telemetry.Health.p95_us snap.Telemetry.Health.p99_us
    snap.Telemetry.Health.mean_us snap.Telemetry.Health.max_us
    snap.Telemetry.Health.conflict_rate snap.Telemetry.Health.violation_rate

let workload_cmd =
  let flight =
    Arg.(value & opt (some string) None
         & info [ "flight" ] ~docv:"PREFIX"
             ~doc:"after the run, write the flight recorder to $(docv).json and $(docv).txt")
  in
  let concurrency =
    Arg.(value & opt (some int) None
         & info [ "concurrency" ] ~docv:"N"
             ~doc:"override the spec's pipeline depth: submit up to $(docv) \
                   instantiates to the server's staged pipeline before \
                   awaiting any (1 = serial; dynloads and evictions are \
                   barriers). Deterministic at any depth.")
  in
  let run spec_file flight concurrency =
    handle (fun () ->
        let spec = load_spec spec_file in
        let spec =
          match concurrency with
          | None -> spec
          | Some n when n >= 1 -> { spec with Omos.Workload.concurrency = n }
          | Some _ ->
              raise (Omos.Workload.Spec_error "--concurrency must be >= 1")
        in
        ignore (Omos.Workload.run ~on_event:print_workload_event spec);
        print_endline (health_summary (Telemetry.Health.snapshot ()));
        match flight with
        | None -> ()
        | Some prefix ->
            Telemetry.Flight.dump ~reason:"ofe workload" ~prefix;
            Printf.printf "wrote %s.json, %s.txt\n" prefix prefix)
  in
  Cmd.v
    (Cmd.info "workload" ~exits
       ~doc:
         "run a deterministic multi-client workload (instantiates, dynloads, \
          evictions scheduled off the simulated clock) and stream one line \
          per request: id, client, operation, cache hit, simulated cost. \
          The $(b,concurrency N) spec directive (or $(b,--concurrency)) \
          pipelines instantiates through the server's staged \
          submit/await API; events still stream in submission order.")
    Term.(const run $ spec_file_arg $ flight $ concurrency)

let health_header =
  "   reqs  window   hit%   p50_us   p95_us   p99_us  mean_us   max_us  confl/req  viol/req  hot"

let health_row (snap : Telemetry.Health.snapshot) : string =
  (* the hot column: hottest monitored function plus the audited
     locality headroom, "-" while nothing is monitored *)
  let hot =
    if snap.Telemetry.Health.hot_fn = "-" then "-"
    else
      Printf.sprintf "%s+%.0fpg" snap.Telemetry.Health.hot_fn
        snap.Telemetry.Health.headroom_pages
  in
  Printf.sprintf "%7d %7d %6.1f %8.1f %8.1f %8.1f %8.1f %8.1f %10.3f %9.3f  %s"
    snap.Telemetry.Health.requests snap.Telemetry.Health.window
    (100.0 *. snap.Telemetry.Health.hit_ratio)
    snap.Telemetry.Health.p50_us snap.Telemetry.Health.p95_us
    snap.Telemetry.Health.p99_us snap.Telemetry.Health.mean_us
    snap.Telemetry.Health.max_us snap.Telemetry.Health.conflict_rate
    snap.Telemetry.Health.violation_rate hot

let top_cmd =
  let watch =
    Arg.(value & flag
         & info [ "watch" ]
             ~doc:"print a row as the workload progresses (every $(b,--every) requests)")
  in
  let every =
    Arg.(value & opt int 5
         & info [ "every" ] ~docv:"N" ~doc:"row cadence for $(b,--watch)")
  in
  let run spec_file watch every =
    handle (fun () ->
        if every < 1 then
          raise (Omos.Workload.Spec_error "--every must be >= 1");
        let spec = load_spec spec_file in
        print_endline health_header;
        let served = ref 0 in
        let on_event (_ : Omos.Workload.event) =
          incr served;
          if watch && !served mod every = 0 then
            print_endline (health_row (Telemetry.Health.snapshot ()))
        in
        ignore (Omos.Workload.run ~on_event spec);
        if not (watch && !served mod every = 0) then
          print_endline (health_row (Telemetry.Health.snapshot ())))
  in
  Cmd.v
    (Cmd.info "top" ~exits
       ~doc:
         "run a workload and tabulate rolling health: hit ratio, cost \
          percentiles, conflict and violation rates")
    Term.(const run $ spec_file_arg $ watch $ every)

let health_cmd =
  let slo_file =
    Arg.(required & opt (some file) None
         & info [ "slo" ] ~docv:"FILE" ~doc:"SLO bounds file (key value lines)")
  in
  let run breached slo_file spec_file =
    handle (fun () ->
        let ic = open_in slo_file in
        let slo_text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let slo = Telemetry.Health.parse_slo slo_text in
        let spec = load_spec spec_file in
        ignore (Omos.Workload.run spec);
        let snap = Telemetry.Health.snapshot () in
        let checks = Telemetry.Health.check slo snap in
        List.iter
          (fun (name, bound, actual, ok) ->
            Printf.printf "%-18s bound=%g actual=%g %s\n" name bound actual
              (if ok then "ok" else "FAIL"))
          checks;
        if not (Telemetry.Health.ok checks) then begin
          Printf.eprintf "ofe: SLO violated\n";
          breached := true
        end)
  in
  let run slo_file spec_file =
    let breached = ref false in
    let code = run breached slo_file spec_file in
    if code = 0 && !breached then 2 else code
  in
  Cmd.v
    (Cmd.info "health" ~exits
       ~doc:
         "run a workload and gate its rolling health against an SLO file; \
          exits 2 on any breached bound")
    Term.(const run $ slo_file $ spec_file_arg)

(* -- latency blame over the causal event graph ----------------------------- *)

let blame_cmd =
  let meta =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"META"
             ~doc:"blame one cold build of this library meta-object path")
  in
  let workload =
    Arg.(value & opt (some file) None
         & info [ "workload" ] ~docv:"SPEC"
             ~doc:"blame a whole workload spec run instead of a single build")
  in
  let request =
    Arg.(value & opt (some int) None
         & info [ "request" ] ~docv:"ID"
             ~doc:"also show the critical-path slices of request $(docv)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the blame profile as JSON (omos.blame/1)")
  in
  let folded =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"write flamegraph folded stacks (target;self|wait;category) to $(docv)")
  in
  let what_if =
    Arg.(value & opt (some string) None
         & info [ "what-if" ] ~docv:"KNOB"
             ~doc:"replay the recorded run under a counterfactual knob: \
                   $(b,batch=off), $(b,queue=inf) or $(b,coalesce=off)")
  in
  let run meta meta_file workload request json folded what_if =
    handle (fun () ->
        (match (meta, meta_file, workload) with
        | (Some _, _, Some _) | (_, Some _, Some _) ->
            raise
              (Omos.Server.Server_error
                 "give either a META path or --workload, not both")
        | _ -> ());
        let knob =
          match what_if with
          | None -> None
          | Some s -> (
              match Omos.Blame.knob_of_string s with
              | Some k -> Some k
              | None ->
                  raise
                    (Omos.Server.Server_error
                       ("unknown --what-if knob: " ^ s
                      ^ " (expected batch=off, queue=inf or coalesce=off)")))
        in
        (* record the run with the causal event graph on; the enable
           switch survives the telemetry resets the drivers perform *)
        Telemetry.Causal.set_enabled true;
        (match workload with
        | Some _ ->
            let spec = load_spec workload in
            ignore (Omos.Workload.run spec)
        | None ->
            let w = Omos.World.create () in
            let s = w.Omos.World.server in
            let meta = pick_meta s meta meta_file in
            Telemetry.reset ();
            Telemetry.set_enabled true;
            ignore (Omos.Server.instantiate s (Omos.Server.library meta));
            Telemetry.set_enabled false);
        Telemetry.Causal.set_enabled false;
        let ps = Omos.Blame.paths (Telemetry.Causal.requests ()) in
        if ps = [] then
          raise (Omos.Server.Server_error "no completed requests recorded");
        let prof = Omos.Blame.profile ps in
        let wi = Option.map (fun k -> Omos.Blame.what_if ~knob:k ps) knob in
        let detail =
          match request with
          | None -> None
          | Some id -> (
              match
                List.find_opt (fun p -> p.Omos.Blame.p_id = id) ps
              with
              | Some p -> Some p
              | None ->
                  raise
                    (Omos.Server.Server_error
                       (Printf.sprintf "no completed request %d in this run" id)))
        in
        let wait_frac =
          if prof.Omos.Blame.bp_total_sim_us > 0.0 then
            prof.Omos.Blame.bp_wait_us /. prof.Omos.Blame.bp_total_sim_us
          else 0.0
        in
        (match folded with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            List.iter
              (fun (k, v) -> Printf.fprintf oc "%s %.1f\n" k v)
              (Omos.Blame.folded ps);
            close_out oc);
        if json then begin
          let open Telemetry.Json in
          let stat_json (name, (st : Omos.Blame.stat)) =
            Obj
              [
                ("category", Str name);
                ("total_us", Num st.Omos.Blame.bs_total_us);
                ("frac", Num st.Omos.Blame.bs_frac);
                ("p50_us", Num st.Omos.Blame.bs_p50_us);
                ("p95_us", Num st.Omos.Blame.bs_p95_us);
              ]
          in
          let slice_json (s : Omos.Blame.slice) =
            Obj
              ([
                 ("category", Str (Omos.Blame.category_label s.Omos.Blame.s_cat));
                 ("from_us", Num s.Omos.Blame.s_from);
                 ("until_us", Num s.Omos.Blame.s_until);
                 ("self_us", Num s.Omos.Blame.s_self);
               ]
              @ if s.Omos.Blame.s_on >= 0 then [ ("on", Num (float_of_int s.Omos.Blame.s_on)) ]
                else [])
          in
          let base =
            [
              ("schema", Str "omos.blame/1");
              ("requests", Num (float_of_int prof.Omos.Blame.bp_requests));
              ("total_sim_us", Num prof.Omos.Blame.bp_total_sim_us);
              ("wait_us", Num prof.Omos.Blame.bp_wait_us);
              ("wait_frac", Num wait_frac);
              ( "categories",
                Arr (List.map stat_json prof.Omos.Blame.bp_categories) );
            ]
          in
          let base =
            base
            @ (match wi with
              | None -> []
              | Some wi ->
                  [
                    ( "what_if",
                      Obj
                        [
                          ("knob", Str wi.Omos.Blame.wi_knob);
                          ("recorded_us", Num wi.Omos.Blame.wi_recorded_us);
                          ("predicted_us", Num wi.Omos.Blame.wi_predicted_us);
                          ( "delta_us",
                            Num
                              (wi.Omos.Blame.wi_predicted_us
                              -. wi.Omos.Blame.wi_recorded_us) );
                        ] );
                  ])
            @
            match detail with
            | None -> []
            | Some p ->
                [
                  ( "request",
                    Obj
                      [
                        ("id", Num (float_of_int p.Omos.Blame.p_id));
                        ("target", Str p.Omos.Blame.p_target);
                        ("sim_us", Num p.Omos.Blame.p_sim_us);
                        ("hit", Bool p.Omos.Blame.p_hit);
                        ( "slices",
                          Arr (List.map slice_json p.Omos.Blame.p_slices) );
                      ] );
                ]
          in
          print_endline (to_string (Obj base))
        end
        else begin
          Printf.printf "requests: %d  total_sim_us: %.1f  wait_us: %.1f (%.1f%%)\n"
            prof.Omos.Blame.bp_requests prof.Omos.Blame.bp_total_sim_us
            prof.Omos.Blame.bp_wait_us (100.0 *. wait_frac);
          Printf.printf "%-12s %10s %6s %9s %9s\n" "category" "total_us" "frac"
            "p50_us" "p95_us";
          List.iter
            (fun (name, (st : Omos.Blame.stat)) ->
              Printf.printf "%-12s %10.1f %6.3f %9.1f %9.1f\n" name
                st.Omos.Blame.bs_total_us st.Omos.Blame.bs_frac
                st.Omos.Blame.bs_p50_us st.Omos.Blame.bs_p95_us)
            prof.Omos.Blame.bp_categories;
          (match wi with
          | None -> ()
          | Some wi ->
              Printf.printf
                "what-if %s: recorded_us=%.1f predicted_us=%.1f delta_us=%+.1f\n"
                wi.Omos.Blame.wi_knob wi.Omos.Blame.wi_recorded_us
                wi.Omos.Blame.wi_predicted_us
                (wi.Omos.Blame.wi_predicted_us -. wi.Omos.Blame.wi_recorded_us));
          match detail with
          | None -> ()
          | Some p ->
              Printf.printf "request %d: %s sim_us=%.1f hit=%b\n"
                p.Omos.Blame.p_id p.Omos.Blame.p_target p.Omos.Blame.p_sim_us
                p.Omos.Blame.p_hit;
              List.iter
                (fun (s : Omos.Blame.slice) ->
                  Printf.printf "  [%10.1f, %10.1f) %-12s %10.1f us%s\n"
                    s.Omos.Blame.s_from s.Omos.Blame.s_until
                    (Omos.Blame.category_label s.Omos.Blame.s_cat)
                    (Omos.Blame.slice_us s)
                    (if s.Omos.Blame.s_on >= 0 then
                       Printf.sprintf " on=r%d" s.Omos.Blame.s_on
                     else ""))
                p.Omos.Blame.p_slices
        end;
        match folded with
        | None -> ()
        | Some file -> Printf.printf "wrote %s\n" file)
  in
  Cmd.v
    (Cmd.info "blame" ~exits
       ~doc:
         "record a run with the causal event graph on and attribute every \
          simulated microsecond of request latency: per-stage self-compute \
          vs typed waits (admission queue, place-barrier batching, \
          coalescing onto an in-flight build, scheduler dispatch), with \
          p50/p95 per category. The critical path of each request tiles \
          its submit-to-seal interval exactly — the slices sum to its \
          sim_us. $(b,--what-if) deterministically replays the recorded \
          graph under a counterfactual knob and predicts what the run \
          would have cost; $(b,--folded) writes flamegraph folded stacks.")
    Term.(const run $ meta $ meta_file_arg $ workload $ request $ json $ folded
          $ what_if)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"master seed; each iteration derives its own case seed from \
                   it, so equal seeds reproduce the whole run byte-for-byte")
  in
  let iterations =
    Arg.(value & opt int 100
         & info [ "iterations" ] ~docv:"N" ~doc:"number of generated cases to run")
  in
  let max_modules =
    Arg.(value & opt int 12
         & info [ "max-modules" ] ~docv:"N" ~doc:"module-count bound per case")
  in
  let max_libs =
    Arg.(value & opt int 6
         & info [ "max-libs" ] ~docv:"N" ~doc:"library-count bound per case")
  in
  let replay =
    Arg.(value & opt_all file []
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"replay a committed $(b,omos.fuzzcase/1) file through the \
                   oracles instead of generating (repeatable)")
  in
  let dump =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"FILE"
             ~doc:"on failure, write the minimized case to $(docv)")
  in
  let progress =
    Arg.(value & opt int 50
         & info [ "progress" ] ~docv:"N"
             ~doc:"print a status line every $(docv) iterations (0 = quiet)")
  in
  let run failed seed iterations max_modules max_libs replay dump progress =
    handle (fun () ->
        if replay <> [] then
          List.iter
            (fun file ->
              let ic = open_in file in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              let case = Workloads.Fuzz.of_string text in
              match Omos.Fuzzer.run_case case with
              | Omos.Fuzzer.Pass { clean_libs; events } ->
                  Printf.printf "%s: ok (clean_libs=%d events=%d)\n"
                    (Filename.basename file) clean_libs events
              | Omos.Fuzzer.Fail f ->
                  failed := true;
                  Printf.printf "%s: FAIL oracle=%s\n  %s\n"
                    (Filename.basename file) f.Omos.Fuzzer.fz_oracle
                    f.Omos.Fuzzer.fz_detail)
            replay
        else begin
          let on_iteration i v =
            if progress > 0 && (i + 1) mod progress = 0 then
              match v with
              | Omos.Fuzzer.Pass { clean_libs; events } ->
                  Printf.printf "iter %d/%d ok (clean_libs=%d events=%d)\n"
                    (i + 1) iterations clean_libs events
              | Omos.Fuzzer.Fail _ -> ()
          in
          match
            Omos.Fuzzer.fuzz ~max_modules ~max_libs ~on_iteration ~seed
              ~iterations ()
          with
          | None ->
              Printf.printf "fuzz: %d iterations clean (seed %d)\n" iterations
                seed
          | Some (i, f) ->
              failed := true;
              Printf.printf "fuzz: iteration %d tripped oracle %s\n  %s\n" i
                f.Omos.Fuzzer.fz_oracle f.Omos.Fuzzer.fz_detail;
              let min_case, runs = Omos.Fuzzer.reduce f in
              (match Omos.Fuzzer.run_case min_case with
              | Omos.Fuzzer.Fail f' ->
                  Printf.printf "minimized (%d reducer runs), still %s:\n  %s\n"
                    runs f'.Omos.Fuzzer.fz_oracle f'.Omos.Fuzzer.fz_detail
              | Omos.Fuzzer.Pass _ -> ());
              let text = Workloads.Fuzz.to_string min_case in
              print_string text;
              match dump with
              | None -> ()
              | Some file ->
                  let oc = open_out file in
                  output_string oc text;
                  close_out oc;
                  Printf.printf "wrote %s\n" file
        end)
  in
  let run seed iterations max_modules max_libs replay dump progress =
    let failed = ref false in
    let code = run failed seed iterations max_modules max_libs replay dump progress in
    if code = 0 && !failed then 2 else code
  in
  Cmd.v
    (Cmd.info "fuzz" ~exits
       ~doc:
         "seeded blueprint/workload fuzzing: generate dependency-graph \
          blueprints (version skew, interposition stacks, rename/freeze \
          chains, address-constraint collisions) plus workload scenarios \
          over them, and hold every case to three differential oracles — \
          the lint-vs-evaluator symbol-flow check, residency invariants \
          after every operation, and batched-vs-serial pipeline \
          equivalence (byte-identical fault replay when fault injection \
          is armed). On failure the built-in reducer shrinks the case to \
          a minimal reproduction, printed as $(b,omos.fuzzcase/1) text \
          (and written to $(b,--dump)); the flight recorder ring dumps \
          automatically on the non-zero exit. Deterministic: a fixed \
          $(b,--seed) reproduces the whole run byte-for-byte.")
    Term.(const run $ seed $ iterations $ max_modules $ max_libs $ replay
          $ dump $ progress)

let main =
  Cmd.group
    (Cmd.info "ofe" ~exits
       ~doc:"the Object File Editor: inspect and transform SOF objects")
    [
      info_cmd; symbols_cmd; relocs_cmd; disasm_cmd; exports_cmd; undefined_cmd;
      nm_cmd; size_cmd; strings_cmd;
      compile_cmd; convert_cmd; rename_cmd; copy_as_cmd; merge_cmd;
      lint_cmd; impact_cmd; trace_cmd; stats_cmd; explain_cmd; profile_cmd; hotspots_cmd;
      blame_cmd; workload_cmd; top_cmd; health_cmd; fuzz_cmd;
      unary_op "hide" "hide definitions, freezing internal references" Jigsaw.Module_ops.hide;
      unary_op "restrict" "virtualize definitions (remove, keep references)" Jigsaw.Module_ops.restrict;
      unary_op "show" "hide all but the selected definitions" Jigsaw.Module_ops.show;
      unary_op "project" "virtualize all but the selected definitions" Jigsaw.Module_ops.project;
      unary_op "freeze" "make current bindings permanent" Jigsaw.Module_ops.freeze;
    ]

(* Every run arms the flight recorder's auto-dump: on any non-zero exit
   the ring (when non-empty) is written next to the invocation, so a
   failing request leaves its last ~4k events behind for inspection. *)
let () =
  Telemetry.Flight.set_auto_dump (Some "flight");
  let code = Cmd.eval' ~term_err:2 main in
  if
    code <> 0
    && Telemetry.Flight.trip ~reason:(Printf.sprintf "ofe exit %d" code) ()
  then
    Printf.eprintf "ofe: flight recorder dump written to flight.json, flight.txt\n";
  exit code
