(* Figure 3: symbol renaming and resolution.

   "The source operator can be used to fill in missing variable or
   routine definitions with default values. The rename operation can be
   used ... to rename all references to routines that should never be
   called to the routine _abort, which will produce notable behavior if
   called unintentionally."

   Run with: dune exec examples/rename_resolve.exe *)

(* a library with problems: it references a variable nobody defines and
   calls a routine that must never run *)
let broken_src =
  "extern int undef_var;\n\
   int entry(int x) {\n\
  \  if (x > 1000) { return undefined_routine(x); }\n\
  \  return x + undef_var;\n\
   }\n"

let figure3_blueprint =
  "(merge\n\
  \  ;; resolve an undefined data reference and\n\
  \  ;; reroute undefined routines to \"abort()\"\n\
  \  (source \"c\" \"int undef_var = 0;\")\n\
  \  (rename \"^undefined_routine$\" \"abort\" /lib/lib-with-problems))\n"

let abort_src =
  "int abort() { putstr(\"abort() called!\\n\"); exit(42); return 0; }\n"

let main_src =
  "int main() {\n\
  \  putstr(\"entry(7) = \"); putint(entry(7)); putstr(\"\\n\");\n\
  \  putstr(\"entry(5000) = \"); putint(entry(5000)); putstr(\"\\n\");\n\
  \  return 0;\n\
   }\n"

let () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/lib/lib-with-problems"
    (Minic.Driver.compile ~name:"/lib/lib-with-problems" broken_src);
  Omos.Server.add_fragment s "/obj/abort.o"
    (Minic.Driver.compile ~name:"/obj/abort.o" abort_src);
  Omos.Server.add_fragment s "/obj/main.o"
    (Minic.Driver.compile ~name:"/obj/main.o" main_src);
  Omos.Server.add_fragment s "/obj/crt0.o" (Workloads.Crt0.obj ());

  print_endline "== the repair blueprint (Figure 3) ==";
  print_string figure3_blueprint;

  (* before the repair, the library cannot link *)
  print_endline "\n== without the repair ==";
  (try
     ignore
       (Omos.Server.build s @@ Omos.Server.static ~name:"broken"
          (Blueprint.Mgraph.parse
             "(merge /obj/crt0.o /obj/main.o /obj/abort.o /lib/lib-with-problems /lib/libc)"))
   with Linker.Link.Link_error e ->
     Printf.printf "link fails, as expected: %s\n" (Linker.Link.error_to_string e));

  print_endline "\n== with the repair ==";
  let graph =
    Blueprint.Mgraph.Merge
      [
        Blueprint.Mgraph.Name "/obj/crt0.o";
        Blueprint.Mgraph.Name "/obj/main.o";
        Blueprint.Mgraph.Name "/obj/abort.o";
        Blueprint.Mgraph.parse figure3_blueprint;
        Blueprint.Mgraph.Name "/lib/libc";
      ]
  in
  let b = Omos.Server.build s @@ Omos.Server.static ~name:"repaired" graph in
  let p =
    Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ]) ~args:[ "repaired" ]
  in
  let code = Simos.Kernel.run w.Omos.World.kernel p () in
  print_string (Simos.Proc.stdout_contents p);
  Printf.printf "exit code %d (42 = the rerouted abort fired)\n" code
