(* Dynamic loading of classes into an executing program (paper §5).

   "Via a meta-object, a client program specifies the class to be
   loaded, any specializations to apply, and a list of symbols whose
   bound values are to be returned from OMOS ... allowing the new
   classes to refer to procedures and data structures within the
   client."

   The running SVM client below passes a blueprint string to OMOS
   through the dynload syscall, receives the bound address of a routine
   from the freshly loaded class, and calls it indirectly. The loaded
   class calls BACK into the client (client_scale), demonstrating the
   two-way binding.

   Run with: dune exec examples/dynload_demo.exe *)

let klass_src =
  "int shape_area(int w, int h) { return client_scale(w * h); }\n\
   int shape_perimeter(int w, int h) { return client_scale(2 * (w + h)); }\n"

let client_src =
  "int client_scale(int x) { return x * 10; }\n\
   char bp[] = \"(merge /obj/shape.o)\";\n\
   char sym_area[] = \"shape_area\";\n\
   char sym_perim[] = \"shape_perimeter\";\n\
   int main() {\n\
  \  int f; int g;\n\
  \  putstr(\"loading class /obj/shape.o from OMOS...\\n\");\n\
  \  f = __syscall(130, &bp, &sym_area);\n\
  \  g = __syscall(130, &bp, &sym_perim);\n\
  \  if (f == 0 - 1 || g == 0 - 1) { putstr(\"load failed\\n\"); return 1; }\n\
  \  putstr(\"area(3,4) = \"); putint(__icall(f, 3, 4)); putstr(\"\\n\");\n\
  \  putstr(\"perimeter(3,4) = \"); putint(__icall(g, 3, 4)); putstr(\"\\n\");\n\
  \  return 0;\n\
   }\n"

let () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/obj/shape.o"
    (Minic.Driver.compile ~name:"/obj/shape.o" klass_src);
  let client =
    Minic.Driver.compile ~name:"/obj/dynmain.o" client_src
  in
  (* link client calls to libc for putstr/putint *)
  let libc = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  let b =
    Omos.Server.build s @@ Omos.Server.static ~name:"dynmain"
      ~externals:[ libc.Omos.Server.entry.Omos.Cache.image ]
      (Omos.Schemes.graph_of_objs [ Workloads.Crt0.obj (); client ])
  in
  let dl = Omos.Dynload.create s in
  Omos.Dynload.attach dl w.Omos.World.upcalls ~client_images_of:(fun _ ->
      [ b.Omos.Server.entry.Omos.Cache.image;
        libc.Omos.Server.entry.Omos.Cache.image ]);
  let loadable = Omos.Server.loadable_entry [ libc; b ] in
  let p = Omos.Boot.integrated_exec s loadable ~args:[ "dynmain" ] in
  let code = Simos.Kernel.run w.Omos.World.kernel p () in
  print_string (Simos.Proc.stdout_contents p);
  Printf.printf "exit %d\n" code;
  Printf.printf
    "\n(area 3x4 scaled by the CLIENT's x10 = 120: the loaded class bound\n\
     back into the running program, dld-style, through the OMOS server)\n"
