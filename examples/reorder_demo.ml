(* Monitoring and profile-driven reordering (paper §4.1, §6, [14]).

   OMOS builds a monitored variant of libc (every routine wrapped with
   a logging trampoline), runs ls -laF against it, derives the
   preferred routine order from the trace, and rebuilds the library
   with the used routines packed together.

   Run with: dune exec examples/reorder_demo.exe *)

let () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in

  (* 1. instantiate the monitored library and run the workload *)
  print_endline "== monitoring: (specialize \"monitor\" /lib/libc) ==";
  let graph =
    Blueprint.Mgraph.Merge
      [
        Omos.Schemes.graph_of_objs (Omos.World.ls_client w);
        Blueprint.Mgraph.parse "(specialize \"monitor\" /lib/libc)";
      ]
  in
  let b = Omos.Server.build s @@ Omos.Server.static ~name:"ls-monitored" graph in
  let p =
    Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ])
      ~args:Omos.World.ls_laf_args
  in
  ignore (Simos.Kernel.run w.Omos.World.kernel p ());
  let trace =
    match Omos.Specializers.last_trace w.Omos.World.specializers with
    | Some t -> t
    | None -> failwith "no trace"
  in
  let order = Omos.Monitor.first_call_order trace in
  Printf.printf "%d call events; routines in first-call order:\n  %s\n"
    trace.Omos.Monitor.count
    (String.concat " " order);

  (* 2. reorder a per-function libc by the trace *)
  let frags =
    List.concat_map Workloads.Libc_gen.split_objects Workloads.Libc_gen.section_names
  in
  let reordered = Omos.Reorder.from_trace ~trace frags in
  Printf.printf "\nlibrary rebuilt at function granularity: %d fragments\n"
    (List.length reordered);
  Printf.printf "pages spanned by the routines ls uses:\n";
  Printf.printf "  original order:  %d pages\n"
    (Omos.Reorder.prefix_text_pages frags order);
  Printf.printf "  reordered:       %d pages\n"
    (Omos.Reorder.prefix_text_pages reordered order);
  print_endline
    "\n(the benchmark `bench/main.exe reorder` measures the cold-start\n\
     speedup this buys; the paper reports >10% on average)"
