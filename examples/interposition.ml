(* Figure 2: transparent interposition of a new malloc.

   "In Figure 2, we produce a version of the C library, libc, where a
   new version of malloc has been inserted to trap calls to the
   original routine. References to the native routine in the new
   routine are preserved."

   The blueprint below is the paper's, with our symbol names: stash the
   original malloc under REAL_malloc (copy_as), virtualize the public
   binding (restrict), merge a counting wrapper in, and hide the stash.

   Run with: dune exec examples/interposition.exe *)

let client_src =
  {|int main() {
  int a; int b; int c;
  a = malloc(16); b = malloc(32); c = malloc(8);
  putstr("allocations at offsets: ");
  putint(a - 0x60000000); putstr(" ");
  putint(b - 0x60000000); putstr(" ");
  putint(c - 0x60000000); putstr("\n");
  putstr("malloc calls seen by the trap: ");
  putint(__malloc_count);
  putstr("\n");
  return 0;
}
|}

(* the trap: counts calls, then defers to the original *)
let trap_src =
  {|int __malloc_count = 0;
int malloc(int n) {
  __malloc_count = __malloc_count + 1;
  return REAL_malloc(n);
}
|}

let figure2_blueprint =
  ";; malloc() -> malloc'()  (Figure 2)\n\
   (hide \"^REAL_malloc$\"\n\
  \  (merge\n\
  \    ;; Get rid of the old definition\n\
  \    (restrict \"^malloc$\"\n\
  \      ;; stash a copy of malloc() for later use\n\
  \      (copy_as \"^malloc$\" \"REAL_malloc\"\n\
  \        (merge /obj/crt0.o /obj/use_malloc.o /lib/libc)))\n\
  \    ;; Merge in a new definition\n\
  \    /lib/test_malloc.o))\n"

let () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  Omos.Server.add_fragment s "/obj/crt0.o" (Workloads.Crt0.obj ());
  Omos.Server.add_fragment s "/obj/use_malloc.o"
    (Minic.Driver.compile ~name:"/obj/use_malloc.o"
       ("extern int __malloc_count;\n" ^ client_src));
  Omos.Server.add_fragment s "/lib/test_malloc.o"
    (Minic.Driver.compile ~name:"/lib/test_malloc.o" trap_src);

  let run name graph =
    let b = Omos.Server.build s @@ Omos.Server.static ~name graph in
    let p =
      Omos.Boot.integrated_exec s (Omos.Server.loadable_entry [ b ]) ~args:[ name ]
    in
    ignore (Simos.Kernel.run w.Omos.World.kernel p ());
    print_string (Simos.Proc.stdout_contents p)
  in

  print_endline "== the interposition blueprint (Figure 2) ==";
  print_string figure2_blueprint;

  print_endline "\n== with the trap interposed ==";
  run "trapped" (Blueprint.Mgraph.parse figure2_blueprint);

  (* show that the graph's namespace is what the paper promises *)
  let r = Omos.Server.eval s (Blueprint.Mgraph.parse figure2_blueprint) in
  let exports = Jigsaw.Module_ops.exports r.Blueprint.Mgraph.m in
  Printf.printf "\nmalloc exported: %b, REAL_malloc hidden: %b\n"
    (List.mem "malloc" exports)
    (not (List.mem "REAL_malloc" exports))
