(* Exporting OMOS programs into the Unix namespace (paper §5).

   "In Unix, we normally invoke this loader via the "interpreter"
   feature (#! /bin/omos). This allows us to export entries from the
   OMOS namespace into the Unix namespace, in a portable fashion (as a
   parameter in the file)."

   This demo publishes ls as /bin/ls — a two-line script — and then
   runs it through the perfectly ordinary exec() path. The kernel sees
   the #! line, hands control to the OMOS interpreter, and the cached
   images are mapped in.

   Run with: dune exec examples/publish_demo.exe *)

let () =
  let w = Omos.World.create () in
  let s = w.Omos.World.server in
  let k = w.Omos.World.kernel in
  let reg = Omos.Boot.install_interpreter s in

  (* build the self-contained pieces once, as at installation time *)
  let libc = Omos.Server.build s @@ Omos.Server.library "/lib/libc" in
  let client =
    Omos.Server.build s @@ Omos.Server.static ~name:"ls"
      ~externals:[ libc.Omos.Server.entry.Omos.Cache.image ]
      (Omos.Schemes.graph_of_objs (Omos.World.ls_client w))
  in
  Omos.Boot.publish reg ~path:"/bin/ls" ~name:"/meta/ls" (fun () ->
      Omos.Server.loadable_entry [ libc; client ]);

  Printf.printf "/bin/ls on disk (%d bytes):\n  %s\n"
    (Simos.Fs.disk_usage k.Simos.Kernel.fs "/bin/ls")
    (String.trim (Bytes.to_string (Simos.Fs.read_file k.Simos.Kernel.fs "/bin/ls")));

  print_endline "\nexec(\"/bin/ls\", [\"/data/many\"]):";
  let p = Simos.Kernel.exec k ~path:"/bin/ls" ~args:[ "ls"; "/data/many" ] in
  let code = Simos.Kernel.run k p () in
  List.iteri
    (fun i line -> if i < 5 then print_endline ("  " ^ line))
    (String.split_on_char '\n' (Simos.Proc.stdout_contents p));
  Printf.printf "  ... (exit %d)\n" code;

  (* the same file is visible to ordinary tools as a tiny script, while
     the real images live in the server's cache *)
  let st = Omos.Server.cache_stats s in
  Printf.printf
    "\n'/bin' holds %d bytes; the server cache holds the real %d KB.\n\
     (\"/bin ... can become a filesystem backed only by OMOS\")\n"
    (Simos.Fs.disk_usage k.Simos.Kernel.fs "/bin")
    (st.Omos.Cache.disk_bytes_total / 1024)
