(* Quickstart: the paper's Figure 1 flow, end to end.

   Build the world (kernel + OMOS server + the workload namespace),
   look at the libc meta-object, instantiate `ls` through OMOS
   self-contained shared libraries, and run it twice — the second
   invocation hits the image cache.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* a complete simulated machine with OMOS installed *)
  let w = Omos.World.create () in
  let k = w.Omos.World.kernel in

  print_endline "== The libc meta-object (Figure 1) ==";
  print_string Omos.World.libc_meta_source;

  (* the library class: constraint-placed, cached, shared *)
  let libc = Omos.Server.build w.Omos.World.server @@ Omos.Server.library "/lib/libc" in
  Printf.printf "\nlibc instantiated: text at 0x%x, data at 0x%x (%d relocations bound once)\n"
    libc.Omos.Server.entry.Omos.Cache.text_base
    libc.Omos.Server.entry.Omos.Cache.data_base
    libc.Omos.Server.entry.Omos.Cache.image.Linker.Image.reloc_work;

  (* the client program: (merge /lib/crt0.o /obj/ls.o /lib/libc) *)
  let prog =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs ()
  in

  print_endline "\n== ls /data/one (first invocation: demand loads) ==";
  let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
  let code, out = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args in
  let _, _, e1 = Simos.Clock.since k.Simos.Kernel.clock snap in
  print_string out;
  Printf.printf "(exit %d, %.2f simulated ms)\n" code (e1 /. 1000.0);

  print_endline "\n== ls -laF /data/many (steady state) ==";
  let snap = Simos.Clock.snapshot k.Simos.Kernel.clock in
  let _, out = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_laf_args in
  let _, _, e2 = Simos.Clock.since k.Simos.Kernel.clock snap in
  List.iteri
    (fun i line -> if i < 6 then print_endline line)
    (String.split_on_char '\n' out);
  Printf.printf "... (%.2f simulated ms)\n" (e2 /. 1000.0);

  let st = Omos.Server.cache_stats w.Omos.World.server in
  Printf.printf "\nimage cache: %d hits, %d misses, %d KB\n" st.Omos.Cache.hits
    st.Omos.Cache.misses
    (st.Omos.Cache.disk_bytes_total / 1024);
  Printf.printf "physical memory: %s\n"
    (Format.asprintf "%a" Simos.Phys.pp k.Simos.Kernel.phys)
