(** DeltaBlue: an incremental dataflow constraint solver — the paper's
    §10 future-work port, implemented faithfully after
    Sannella/Freeman-Benson/Maloney/Borning (TR-92-07-05), including
    the two canonical benchmark workloads. *)

exception Cycle
exception Unsatisfiable_required

(** Strengths: smaller is stronger. *)

val required : int
val strong_preferred : int
val preferred : int
val strong_default : int
val normal : int
val weak_default : int
val weakest : int

type variable = {
  vname : string;
  mutable value : int;
  mutable constraints : cons list;
  mutable determined_by : cons option;
  mutable mark : int;
  mutable walk_strength : int;
  mutable stay : bool;
}

(** Constraint kinds and their methods:
    [Stay]/[Edit] determine their variable; [Equal (a, b)] flows either
    way; [Scale (src, scale, offset, dest)] computes
    [dest = src*scale + offset] or its inverse. *)
and ckind =
  | Stay of variable
  | Edit of variable
  | Equal of variable * variable
  | Scale of variable * variable * variable * variable

and cons = { strength : int; kind : ckind; mutable which : int }

type t

val create : unit -> t
val variable : string -> int -> variable

val is_satisfied : cons -> bool

(** [add_constraint p ~strength kind] builds, registers, and
    incrementally satisfies a constraint (walkabout-strength
    propagation). Returns it for later removal.
    @raise Unsatisfiable_required when a required constraint cannot be
    satisfied; @raise Cycle on constraint cycles. *)
val add_constraint : t -> strength:int -> ckind -> cons

(** [remove_constraint p c] removes [c] and re-satisfies anything it
    was holding up. *)
val remove_constraint : t -> cons -> unit

(** An execution plan: constraints in dataflow order. *)
type plan = cons list

(** Plan for re-executing the system after the current edit constraints
    change their variables. *)
val extract_plan_from_edits : t -> plan

val execute_plan : plan -> unit

(** The classic n-variable equality chain benchmark; returns the tail
    value after 100 edits of the head (must be 100). *)
val chain_test : int -> int

(** The classic projection benchmark (scale/offset constraints edited
    from both ends); returns whether propagation stayed consistent. *)
val projection_test : int -> bool
