lib/constraints/db_layout.ml: Deltablue List
