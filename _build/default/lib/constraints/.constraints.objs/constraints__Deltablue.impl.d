lib/constraints/deltablue.ml: Array List Printf Queue
