lib/constraints/deltablue.mli:
