lib/constraints/db_layout.mli:
