lib/constraints/placement.mli: Format
