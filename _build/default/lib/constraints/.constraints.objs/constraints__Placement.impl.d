lib/constraints/placement.ml: Format List Option
