(** DeltaBlue: an incremental dataflow constraint solver.

    Paper §10: "A more sophisticated constraint system, based on the
    University of Washington's Delta-Blue constraint solver, has been
    developed in LISP and is being ported to OMOS and C++." This module
    is that port, done here in OCaml — a faithful implementation of the
    classic algorithm (Sannella/Freeman-Benson/Maloney/Borning,
    TR-92-07-05), including the two canonical workloads (chain and
    projection) used by the benchmark suite.

    The solver maintains a set of constraints over variables, each
    constraint carrying a strength; it keeps the system locally
    predicate-better satisfied using the walkabout-strength propagation
    scheme, and supports incremental addition and removal. *)

exception Cycle
exception Unsatisfiable_required

(* Strengths: smaller is stronger. *)
let required = 0
let strong_preferred = 1
let preferred = 2
let strong_default = 3
let normal = 4
let weak_default = 5
let weakest = 6

let weaker a b = a > b
let weakest_of a b = max a b

type variable = {
  vname : string;
  mutable value : int;
  mutable constraints : cons list;
  mutable determined_by : cons option;
  mutable mark : int;
  mutable walk_strength : int;
  mutable stay : bool;
}

and ckind =
  | Stay of variable
  | Edit of variable
  | Equal of variable * variable (* methods: v2 := v1 | v1 := v2 *)
  | Scale of variable * variable * variable * variable
      (* (src, scale, offset, dest); methods:
         dest := src*scale + offset | src := (dest - offset) / scale *)

and cons = { strength : int; kind : ckind; mutable which : int (* -1 = unsatisfied *) }

type t = { mutable mark_counter : int; mutable edits : cons list }

let create () : t = { mark_counter = 0; edits = [] }

let variable name value =
  {
    vname = name;
    value;
    constraints = [];
    determined_by = None;
    mark = 0;
    walk_strength = weakest;
    stay = true;
  }

let new_mark (p : t) =
  p.mark_counter <- p.mark_counter + 1;
  p.mark_counter

(* -- methods ----------------------------------------------------------- *)

let method_count (c : cons) =
  match c.kind with Stay _ | Edit _ -> 1 | Equal _ | Scale _ -> 2

let output_of (c : cons) (m : int) : variable =
  match (c.kind, m) with
  | (Stay v | Edit v), _ -> v
  | Equal (_, v2), 0 -> v2
  | Equal (v1, _), _ -> v1
  | Scale (_, _, _, dest), 0 -> dest
  | Scale (src, _, _, _), _ -> src

let inputs_of (c : cons) (m : int) : variable list =
  match (c.kind, m) with
  | (Stay _ | Edit _), _ -> []
  | Equal (v1, _), 0 -> [ v1 ]
  | Equal (_, v2), _ -> [ v2 ]
  | Scale (src, scale, offset, _), 0 -> [ src; scale; offset ]
  | Scale (_, scale, offset, dest), _ -> [ dest; scale; offset ]

let is_satisfied (c : cons) = c.which >= 0
let output (c : cons) : variable = output_of c c.which
let inputs (c : cons) : variable list = inputs_of c c.which
let is_input (c : cons) = match c.kind with Edit _ -> true | _ -> false

let execute (c : cons) : unit =
  match (c.kind, c.which) with
  | (Stay _ | Edit _), _ -> ()
  | Equal (v1, v2), 0 -> v2.value <- v1.value
  | Equal (v1, v2), _ -> v1.value <- v2.value
  | Scale (src, scale, offset, dest), 0 ->
      dest.value <- (src.value * scale.value) + offset.value
  | Scale (src, scale, offset, dest), _ ->
      if scale.value = 0 then raise Cycle
      else src.value <- (dest.value - offset.value) / scale.value

(* -- core algorithm ---------------------------------------------------- *)

let variables_of (c : cons) : variable list =
  match c.kind with
  | Stay v | Edit v -> [ v ]
  | Equal (v1, v2) -> [ v1; v2 ]
  | Scale (a, b, c', d) -> [ a; b; c'; d ]

let add_to_graph (c : cons) =
  List.iter (fun v -> v.constraints <- c :: v.constraints) (variables_of c);
  c.which <- -1

let remove_from_graph (c : cons) =
  List.iter
    (fun v -> v.constraints <- List.filter (fun c' -> c' != c) v.constraints)
    (variables_of c);
  c.which <- -1

(* Choose the method with the weakest non-marked output that this
   constraint is strong enough to determine. *)
let choose_method (c : cons) (mark : int) : unit =
  c.which <- -1;
  let best = ref weakest in
  for m = 0 to method_count c - 1 do
    let out = output_of c m in
    if out.mark <> mark && weaker out.walk_strength c.strength then
      if c.which < 0 || weaker out.walk_strength !best then (
        c.which <- m;
        best := out.walk_strength)
  done

let mark_inputs (c : cons) (mark : int) : unit =
  List.iter (fun v -> v.mark <- mark) (inputs c)

let inputs_known (c : cons) (mark : int) : bool =
  List.for_all
    (fun v -> v.mark = mark || v.stay || v.determined_by = None)
    (inputs c)

(* Recompute walk_strength and stay of the constraint's output, and
   execute it if the output is a constant. *)
let recalculate (c : cons) : unit =
  let out = output c in
  out.walk_strength <-
    List.fold_left
      (fun acc v -> weakest_of acc v.walk_strength)
      c.strength (inputs c);
  out.stay <- (not (is_input c)) && List.for_all (fun v -> v.stay) (inputs c);
  if out.stay then execute c

let add_propagate (c : cons) (mark : int) : bool =
  let todo = Queue.create () in
  Queue.add c todo;
  let ok = ref true in
  (try
     while not (Queue.is_empty todo) do
       let d = Queue.pop todo in
       if (output d).mark = mark then (
         ok := false;
         raise Exit);
       recalculate d;
       let out = output d in
       List.iter
         (fun c' ->
           if c' != d && is_satisfied c' && List.memq out (inputs c') then
             Queue.add c' todo)
         out.constraints
     done
   with Exit -> ());
  !ok

let rec satisfy (c : cons) (mark : int) : cons option =
  choose_method c mark;
  if not (is_satisfied c) then
    if c.strength = required then raise Unsatisfiable_required else None
  else (
    mark_inputs c mark;
    let out = output c in
    let overridden = out.determined_by in
    (match overridden with Some o -> o.which <- -1 | None -> ());
    out.determined_by <- Some c;
    if not (add_propagate c mark) then raise Cycle;
    out.mark <- mark;
    overridden)

and incremental_add (p : t) (c : cons) : unit =
  let mark = new_mark p in
  let rec go = function
    | None -> ()
    | Some o -> go (satisfy o mark)
  in
  go (satisfy c mark)

(** [add_constraint p ~strength kind] builds, registers, and
    incrementally satisfies a constraint. Returns it for later
    removal. *)
let add_constraint (p : t) ~strength (kind : ckind) : cons =
  let c = { strength; kind; which = -1 } in
  add_to_graph c;
  incremental_add p c;
  (match kind with Edit _ -> p.edits <- c :: p.edits | _ -> ());
  c

(* Collect unsatisfied downstream constraints of [out], strongest
   first, and try to satisfy them again. *)
let remove_propagate_from (p : t) (out : variable) : unit =
  out.determined_by <- None;
  out.walk_strength <- weakest;
  out.stay <- true;
  let unsatisfied = ref [] in
  let todo = Queue.create () in
  Queue.add out todo;
  while not (Queue.is_empty todo) do
    let v = Queue.pop todo in
    List.iter
      (fun c ->
        if not (is_satisfied c) then unsatisfied := c :: !unsatisfied)
      v.constraints;
    List.iter
      (fun c ->
        if is_satisfied c && List.memq v (inputs c) then (
          recalculate c;
          Queue.add (output c) todo))
      v.constraints
  done;
  let by_strength = List.sort (fun a b -> compare a.strength b.strength) !unsatisfied in
  List.iter (fun c -> incremental_add p c) by_strength

(** [remove_constraint p c] removes [c] and re-satisfies anything it was
    holding up. *)
let remove_constraint (p : t) (c : cons) : unit =
  if is_satisfied c then (
    let out = output c in
    c.which <- -1;
    remove_from_graph c;
    remove_propagate_from p out)
  else remove_from_graph c;
  p.edits <- List.filter (fun c' -> c' != c) p.edits

(* -- plans -------------------------------------------------------------- *)

(** An execution plan: constraints in dataflow order. *)
type plan = cons list

let make_plan (p : t) (sources : cons list) : plan =
  let mark = new_mark p in
  let plan = ref [] in
  let todo = Queue.create () in
  List.iter (fun c -> Queue.add c todo) sources;
  while not (Queue.is_empty todo) do
    let c = Queue.pop todo in
    let out = output c in
    if out.mark <> mark && inputs_known c mark then (
      plan := c :: !plan;
      out.mark <- mark;
      List.iter
        (fun c' ->
          if c' != c && is_satisfied c' && List.memq out (inputs c') then
            Queue.add c' todo)
        out.constraints)
  done;
  List.rev !plan

(** Plan for re-executing the system after the current edit constraints
    change their variables. *)
let extract_plan_from_edits (p : t) : plan =
  let sources =
    List.filter (fun c -> is_input c && is_satisfied c) p.edits
  in
  make_plan p sources

let execute_plan (plan : plan) : unit = List.iter execute plan

(* -- canonical benchmark workloads -------------------------------------- *)

(** [chain_test n] builds the classic n-variable equality chain with a
    stay on the last variable, then measures plan execution by editing
    the head. Returns the final value of the tail (= the edited value)
    so callers can assert correctness. *)
let chain_test (n : int) : int =
  let p = create () in
  let vars = Array.init (n + 1) (fun i -> variable (Printf.sprintf "v%d" i) 0) in
  for i = 0 to n - 1 do
    ignore (add_constraint p ~strength:required (Equal (vars.(i), vars.(i + 1))))
  done;
  ignore (add_constraint p ~strength:strong_default (Stay vars.(n)));
  let edit = add_constraint p ~strength:preferred (Edit vars.(0)) in
  let plan = extract_plan_from_edits p in
  for v = 1 to 100 do
    vars.(0).value <- v;
    execute_plan plan
  done;
  remove_constraint p edit;
  vars.(n).value

(** [projection_test n] builds n scale constraints src*10+1000 = dst,
    edits a src and a dst, and checks propagation both ways. Returns
    true if all re-plans produced consistent values. *)
let projection_test (n : int) : bool =
  let p = create () in
  let scale = variable "scale" 10 in
  let offset = variable "offset" 1000 in
  let srcs = ref [] and dsts = ref [] in
  for i = 0 to n - 1 do
    let src = variable (Printf.sprintf "src%d" i) i in
    let dst = variable (Printf.sprintf "dst%d" i) i in
    srcs := src :: !srcs;
    dsts := dst :: !dsts;
    ignore (add_constraint p ~strength:normal (Stay src));
    ignore (add_constraint p ~strength:required (Scale (src, scale, offset, dst)))
  done;
  let change (v : variable) (value : int) =
    let edit = add_constraint p ~strength:preferred (Edit v) in
    let plan = extract_plan_from_edits p in
    v.value <- value;
    execute_plan plan;
    remove_constraint p edit
  in
  let src0 = List.nth (List.rev !srcs) 0 in
  let dst0 = List.nth (List.rev !dsts) 0 in
  change src0 17;
  let ok1 = dst0.value = 1170 in
  change dst0 1050;
  let ok2 = src0.value = 5 in
  ok1 && ok2
