(** Incremental address-space layout on top of DeltaBlue — the paper's
    §10 port: the bases of a packed run of segments are DeltaBlue
    variables chained by required [base[i+1] = base[i] + size[i]]
    constraints, so moving the origin or resizing one member replans
    every downstream address through an extracted plan. *)

exception Unknown_member of string

type t

(** [create ~base members] lays out [members] (name, size) as a packed
    run starting at [base]. *)
val create : base:int -> (string * int) list -> t

(** Current base address of a member. @raise Unknown_member. *)
val base_of : t -> string -> int

(** Current layout, in order: (name, base, size). *)
val layout : t -> (string * int * int) list

(** Move the whole run: every downstream base replans incrementally. *)
val move : t -> int -> unit

(** Resize one member; members after it shift by the delta. *)
val resize : t -> string -> int -> unit

(** No member overlaps its successor (validity check). *)
val packed : t -> bool
