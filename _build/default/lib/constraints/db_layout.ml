(** Incremental address-space layout on top of DeltaBlue.

    The paper's §10: "A more sophisticated constraint system, based on
    the University of Washington's Delta-Blue constraint solver, has
    been developed in LISP and is being ported to OMOS and C++." This
    module is that port's core idea: the bases of a packed run of
    segments are DeltaBlue variables chained by required constraints

    {v base[i+1] = base[i] * 1 + size[i] v}

    so that moving the run's origin, or resizing one member, replans
    every downstream address incrementally through an extracted plan —
    no global re-layout. *)

type member = {
  m_name : string;
  base : Deltablue.variable;
  size : Deltablue.variable;
}

type t = {
  solver : Deltablue.t;
  one : Deltablue.variable; (* the constant scale *)
  members : member list; (* in address order *)
}

exception Unknown_member of string

(** [create ~base members] lays out [members] (name, size) as a packed
    run starting at [base]. *)
let create ~(base : int) (members : (string * int) list) : t =
  let solver = Deltablue.create () in
  let one = Deltablue.variable "one" 1 in
  ignore (Deltablue.add_constraint solver ~strength:Deltablue.required (Deltablue.Stay one));
  let rec build prev_base acc offset = function
    | [] -> List.rev acc
    | (name, size) :: rest ->
        let size_v = Deltablue.variable (name ^ ".size") size in
        ignore
          (Deltablue.add_constraint solver ~strength:Deltablue.strong_default
             (Deltablue.Stay size_v));
        let base_v =
          match prev_base with
          | None ->
              let v = Deltablue.variable (name ^ ".base") base in
              ignore
                (Deltablue.add_constraint solver ~strength:Deltablue.strong_default
                   (Deltablue.Stay v));
              v
          | Some (pb, psize) ->
              let v = Deltablue.variable (name ^ ".base") (offset) in
              (* v = pb * 1 + psize *)
              ignore
                (Deltablue.add_constraint solver ~strength:Deltablue.required
                   (Deltablue.Scale (pb, one, psize, v)));
              v
        in
        build (Some (base_v, size_v))
          ({ m_name = name; base = base_v; size = size_v } :: acc)
          (offset + size) rest
  in
  let members = build None [] base members in
  { solver; one; members }

let find (t : t) (name : string) : member =
  match List.find_opt (fun m -> m.m_name = name) t.members with
  | Some m -> m
  | None -> raise (Unknown_member name)

(** Current base address of a member. *)
let base_of (t : t) (name : string) : int = (find t name).base.Deltablue.value

(** Current layout, in order: (name, base, size). *)
let layout (t : t) : (string * int * int) list =
  List.map
    (fun m -> (m.m_name, m.base.Deltablue.value, m.size.Deltablue.value))
    t.members

(* Edit one variable and propagate through an extracted plan. *)
let edit (t : t) (v : Deltablue.variable) (value : int) : unit =
  let e = Deltablue.add_constraint t.solver ~strength:Deltablue.preferred (Deltablue.Edit v) in
  let plan = Deltablue.extract_plan_from_edits t.solver in
  v.Deltablue.value <- value;
  Deltablue.execute_plan plan;
  Deltablue.remove_constraint t.solver e

(** Move the whole run: set the first member's base; every downstream
    base is replanned incrementally. *)
let move (t : t) (new_base : int) : unit =
  match t.members with
  | [] -> ()
  | first :: _ -> edit t first.base new_base

(** Resize one member; members after it shift by the delta. *)
let resize (t : t) (name : string) (new_size : int) : unit =
  edit t (find t name).size new_size

(** No member overlaps its successor (validity check for tests). *)
let packed (t : t) : bool =
  let rec go = function
    | a :: (b :: _ as rest) ->
        a.base.Deltablue.value + a.size.Deltablue.value = b.base.Deltablue.value
        && go rest
    | _ -> true
  in
  go t.members
