(** Program invocation through OMOS (paper §5 and the OSF/1 rows of
    Table 1): the portable bootstrap-loader path, the OS-integrated
    exec, and the [#! /bin/omos] interpreter that exports OMOS entries
    into the Unix namespace. *)

(** Size charged for loading the bootstrap loader binary. *)
val bootstrap_binary_bytes : int

(** Launch through the bootstrap loader: a real (small) exec plus one
    IPC round trip to the server, which maps the cached images into the
    new process. Returns the ready process (run it with
    {!Simos.Kernel.run}). *)
val bootstrap_exec :
  Server.t -> Server.loadable -> args:string list -> Simos.Proc.t

(** Launch through the OMOS-integrated exec: "exec sets up an empty
    task and calls OMOS with handles to the task and the OMOS object" —
    task setup plus a direct handoff; no bootstrap binary, no file
    opening, no header parsing. *)
val integrated_exec :
  Server.t -> Server.loadable -> args:string list -> Simos.Proc.t

(** Registry of programs exported into the Unix namespace. *)
type registry

(** The interpreter's path, [/bin/omos]. *)
val interpreter_path : string

(** Register the [#!] interpreter with the server's kernel. *)
val install_interpreter : Server.t -> registry

(** [publish reg ~path ~name loadable] writes [#! /bin/omos name] at
    [path] and registers the program, so a plain [exec path] boots it
    through OMOS. *)
val publish :
  registry -> path:string -> name:string -> (unit -> Server.loadable) -> unit
